// Package busprobe is a participatory urban traffic monitoring system,
// reproducing "Urban Traffic Monitoring with the Help of Bus Riders"
// (Zhou, Jiang, Li — IEEE ICDCS 2015) as a self-contained Go library.
//
// The system turns public buses into traffic probes without cooperating
// transit agencies or GPS: bus riders' phones detect IC-card reader
// beeps, attach a cellular scan to each, and upload anonymous trips; a
// backend matches the scans to a bus-stop fingerprint database with a
// modified Smith–Waterman alignment, clusters them into stop visits,
// resolves the visit sequence under bus-route order constraints, and
// converts inter-stop bus travel times into a city traffic map.
//
// This package is the high-level facade: it assembles the simulated city
// (road grid, bus network, cellular deployment, traffic ground truth),
// the backend server, and the rider campaign, and runs them end to end.
// The building blocks live in internal packages — see DESIGN.md for the
// full map — and the experiment harness regenerating every table and
// figure of the paper lives in internal/eval, driven by
// cmd/busprobe-experiments and the root benchmark suite.
package busprobe

import (
	"context"
	"fmt"

	"busprobe/internal/core/traffic"
	"busprobe/internal/eval"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/server"
	"busprobe/internal/server/stage"
	"busprobe/internal/sim"
)

// Options configures a System. The zero value is NOT usable; start from
// DefaultOptions.
type Options struct {
	// World configures the simulated city (extent, routes, radio,
	// ground-truth traffic).
	World sim.WorldConfig
	// Backend configures the matching, clustering, mapping and
	// estimation stages.
	Backend server.Config
	// SurveyRuns is the number of fingerprint-survey passes per stop
	// platform used to bootstrap the stop database.
	SurveyRuns int
}

// DefaultOptions mirrors the paper's deployment: a 7 km x 4 km city,
// 8 bus routes, ~600 m cell spacing, and the published algorithm
// constants (gamma = 2, epsilon = 0.6, b = 0.5, T = 5 min).
func DefaultOptions() Options {
	return Options{
		World:      sim.DefaultWorldConfig(),
		Backend:    server.DefaultConfig(),
		SurveyRuns: 4,
	}
}

// System is an assembled deployment: city, fingerprint DB, and backend.
type System struct {
	opts Options
	lab  *eval.Lab
	back *server.Backend
}

// New assembles a system from options.
func New(opts Options) (*System, error) {
	if opts.SurveyRuns <= 0 {
		return nil, fmt.Errorf("busprobe: SurveyRuns must be positive")
	}
	lab, err := eval.NewLab(opts.World, opts.SurveyRuns)
	if err != nil {
		return nil, err
	}
	lab.Cfg = opts.Backend
	back, err := lab.NewBackend()
	if err != nil {
		return nil, err
	}
	return &System{opts: opts, lab: lab, back: back}, nil
}

// World returns the simulated city.
func (s *System) World() *sim.World { return s.lab.World }

// Backend returns the traffic-monitoring server core. Use
// server.Handler(sys.Backend()) to serve it over HTTP.
func (s *System) Backend() *server.Backend { return s.back }

// Lab exposes the experiment harness bound to this system's city and
// fingerprint database.
func (s *System) Lab() *eval.Lab { return s.lab }

// RunCampaign simulates a rider data-collection campaign feeding this
// system's backend, returning the campaign statistics. Set
// cfg.UploadBatchSize > 1 to deliver trips through the backend's
// concurrent batch-ingest path.
func (s *System) RunCampaign(ctx context.Context, cfg sim.CampaignConfig) (sim.CampaignStats, error) {
	camp, err := sim.NewCampaign(s.lab.World, cfg, s.back, nil)
	if err != nil {
		return sim.CampaignStats{}, err
	}
	camp.MinuteHook = func(tS float64) { s.back.Advance(tS) }
	return camp.Run(ctx)
}

// IngestBatch feeds pre-recorded trips through the backend's
// concurrent batch-ingest pipeline (workers <= 0 uses the backend's
// configured parallelism), returning the per-trip outcomes in input
// order.
func (s *System) IngestBatch(ctx context.Context, trips []probe.Trip, workers int) []server.TripResult {
	return s.back.ProcessTrips(ctx, trips, workers)
}

// StageMetrics snapshots the backend pipeline's per-stage
// instrumentation counters (runs, items, drops, cumulative duration).
func (s *System) StageMetrics() []stage.Metrics {
	return s.back.StageMetrics()
}

// Traffic returns the current per-segment traffic estimates.
func (s *System) Traffic() map[road.SegmentID]traffic.Estimate {
	return s.back.Traffic()
}
