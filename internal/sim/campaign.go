package sim

import (
	"context"
	"errors"

	"busprobe/internal/clock"
	"fmt"
	"math"
	"sort"

	"busprobe/internal/accel"
	"busprobe/internal/cellular"
	"busprobe/internal/faults"
	"busprobe/internal/geo"
	"busprobe/internal/phone"
	"busprobe/internal/probe"
	"busprobe/internal/stats"
	"busprobe/internal/transit"
)

// CampaignConfig parameterizes a data-collection campaign. The paper's
// deployment ran 2 months with 22 participants; the first stretch saw
// sparse organic ridership and the final 9 days were voucher-incentivized
// intensive riding.
type CampaignConfig struct {
	// Days is the campaign length in simulated days.
	Days int
	// Participants is the number of app-carrying riders.
	Participants int
	// SparseTripsPerDay is each participant's mean daily bus trips in
	// the organic phase.
	SparseTripsPerDay float64
	// IntensiveTripsPerDay applies from IntensiveFromDay onwards.
	IntensiveTripsPerDay float64
	// IntensiveFromDay is the zero-based first intensive day; set >=
	// Days to disable the intensive phase.
	IntensiveFromDay int
	// TickS is the simulation step.
	TickS float64
	// TrainDecoysPerDay is each participant's mean daily encounters
	// with rapid-train card readers (same beep signature, §III-B): the
	// phone hears the beeps while moving like a train, and the
	// accelerometer filter must discard them.
	TrainDecoysPerDay float64
	// UploadBatchSize > 1 buffers concluded trips and delivers them to
	// the uploader in batches of this size when the uploader implements
	// phone.BatchUploader (the backend's concurrent ingest path, or the
	// HTTP client's batch endpoint). Buffered trips reach the backend
	// in conclusion order, so the resulting estimates match immediate
	// upload — only their arrival time shifts to the flush. 0 or 1
	// uploads each trip immediately.
	UploadBatchSize int
	// Faults, when any rate is non-zero, routes every upload through a
	// seeded faults.Injector between the phones and the uploader,
	// subjecting the campaign to loss, duplication, reordering, delay,
	// and corruption. A zero Faults.Seed defaults to Seed^0xfa5.
	Faults faults.Config
	// UploadRetry, when MaxAttempts > 0, wraps the upload path in a
	// phone.RetryUploader (above the injector, so retries re-offer the
	// trip to the fault model). Backoff delays are recorded, not slept —
	// the campaign runs in simulated time.
	UploadRetry phone.RetryConfig
	// ParticipantOffset shifts every participant's global index: rider i
	// of this campaign is rider i+ParticipantOffset of the deployment,
	// with the matching device ID and RNG stream. A cohort-partitioned
	// load run (sim.StreamTrips) uses it to give each cohort's riders
	// identities disjoint from every other cohort's while still deriving
	// them all from one master seed. 0 (the default) is the identity.
	ParticipantOffset int
	// Seed drives all campaign randomness.
	Seed uint64
}

// DefaultCampaignConfig returns a scaled-down campaign preserving the
// paper's structure: sparse riding followed by 9 intensive days with 22
// participants. (Days defaults to 14 rather than the paper's ~60 to keep
// experiment runtimes modest; scale it up freely.)
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Days:                 14,
		Participants:         22,
		SparseTripsPerDay:    1.5,
		IntensiveTripsPerDay: 6,
		IntensiveFromDay:     5,
		TickS:                1,
		Seed:                 1,
	}
}

// Validate rejects broken configurations.
func (c CampaignConfig) Validate() error {
	if c.Days <= 0 || c.Participants <= 0 {
		return fmt.Errorf("sim: campaign needs days and participants: %+v", c)
	}
	if c.TickS <= 0 {
		return fmt.Errorf("sim: non-positive tick %v", c.TickS)
	}
	if c.SparseTripsPerDay < 0 || c.IntensiveTripsPerDay < 0 {
		return fmt.Errorf("sim: negative trip rates")
	}
	if c.UploadBatchSize < 0 {
		return fmt.Errorf("sim: negative upload batch size %d", c.UploadBatchSize)
	}
	if c.ParticipantOffset < 0 {
		return fmt.Errorf("sim: negative participant offset %d", c.ParticipantOffset)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.UploadRetry.MaxAttempts > 0 {
		if err := c.UploadRetry.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// StopVisit is a ground-truth record of one bus-stop service event.
type StopVisit struct {
	BusID   int
	Route   transit.RouteID
	StopIdx int
	Stop    transit.StopID
	ArriveS float64
	DepartS float64
	Beeps   int
	Skipped bool
}

// VisitObserver receives every stop visit (ground truth for
// evaluations). Nil observers are allowed.
type VisitObserver func(v StopVisit)

// CampaignStats summarizes a campaign run.
type CampaignStats struct {
	Visits           int
	SkippedVisits    int
	Beeps            int
	BusRuns          int
	ParticipantTrips int
	ScansTaken       int
	// TrainDecoys counts train-reader beep bursts delivered to (and
	// filtered by) participant phones.
	TrainDecoys int
	// BatchFlushes counts batched-upload deliveries (zero when
	// UploadBatchSize is off). UploadFailures counts trips the upload
	// path rejected for any non-duplicate reason; the three counters
	// after it break the failures down by class. UploadDuplicates counts
	// duplicate-trip rejections, which are not failures — the backend
	// already holds the trip.
	BatchFlushes     int
	UploadFailures   int
	UploadsDropped   int // injected network loss (faults.ErrDropped)
	UploadsShed      int // backend admission gate (probe.ErrOverloaded)
	UploadsInvalid   int // structural rejection (probe.ErrInvalidTrip)
	UploadDuplicates int
	// Fault-injection and retry totals, copied from the injector and
	// retry layers at the end of Run (zero when those layers are off).
	FaultTripsOffered    int
	FaultTripsDropped    int
	FaultTripsDuplicated int
	FaultTripsReordered  int
	FaultTripsDelayed    int
	FaultTripsCorrupted  int
	FaultTripsDelivered  int
	UploadRetries        int
	UploadSpoolRecovered int
	// RidingSeconds totals participant time on buses, the basis of the
	// app's energy cost.
	RidingSeconds float64
	// AppEnergyJ is the modeled energy the data-collection app consumed
	// across all participants (Table III cellular+mic profile).
	AppEnergyJ float64
}

// pState is a participant's lifecycle phase.
type pState int

const (
	pIdle pState = iota
	pWaiting
	pRiding
)

// busScanner adapts the radio deployment to the phone.Scanner interface;
// the campaign points it at the participant's current bus position
// before delivering beeps.
type busScanner struct {
	cells *cellular.Deployment
	pos   geo.XY
	cond  cellular.Condition
	rng   *stats.RNG
	scans *int
}

// ScanAt implements phone.Scanner.
func (s *busScanner) ScanAt(timeS float64) []cellular.Reading {
	*s.scans++
	return s.cells.Scan(s.pos, s.cond, s.rng)
}

// participant is one app-carrying rider.
type participant struct {
	id      int
	agent   *phone.Agent
	scanner *busScanner
	rng     *stats.RNG

	state     pState
	tripQueue []plannedTrip // today's remaining trips, time-sorted
	decoys    []float64     // today's remaining train-decoy times
	decoyRNG  *stats.RNG    // isolated so decoys never shift trip plans
	route     transit.RouteID
	boardIdx  int
	alightIdx int
	boardS    float64 // boarding time of the current ride
	device    phone.DeviceProfile
}

// plannedTrip is a scheduled future ride.
type plannedTrip struct {
	startS    float64
	route     transit.RouteID
	boardIdx  int
	alightIdx int
}

// busRun pairs a bus with its onboard participants.
type busRun struct {
	bus     *Bus
	onboard []*participant
}

// classifyUpload files one trip's delivery outcome into the campaign
// stats, preserving the error identity instead of discarding it.
// Duplicate rejections are idempotent successes, not failures. Returns
// the error when it was a real failure, nil otherwise.
func classifyUpload(err error, st *CampaignStats) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, probe.ErrDuplicateTrip):
		st.UploadDuplicates++
		return nil
	}
	st.UploadFailures++
	switch {
	case errors.Is(err, faults.ErrDropped):
		st.UploadsDropped++
	case errors.Is(err, probe.ErrOverloaded):
		st.UploadsShed++
	case errors.Is(err, probe.ErrInvalidTrip):
		st.UploadsInvalid++
	}
	return err
}

// batchingUploader buffers concluded trips and flushes them through a
// phone.BatchUploader in fixed-size batches, exercising the backend's
// concurrent ingest path. Trips reach the sink in conclusion order.
type batchingUploader struct {
	sink    phone.BatchUploader
	size    int
	buf     []probe.Trip
	stats   *CampaignStats
	lastErr *error
}

// Upload implements phone.Uploader by buffering; delivery errors
// surface at flush time in the campaign stats.
func (u *batchingUploader) Upload(ctx context.Context, trip probe.Trip) error {
	u.buf = append(u.buf, trip)
	if len(u.buf) >= u.size {
		u.flush(ctx)
	}
	return nil
}

// flush delivers the buffered trips as one batch, classifying each
// trip's outcome into the campaign stats.
func (u *batchingUploader) flush(ctx context.Context) {
	if len(u.buf) == 0 {
		return
	}
	u.stats.BatchFlushes++
	for _, err := range u.sink.UploadBatch(ctx, u.buf) {
		if ferr := classifyUpload(err, u.stats); ferr != nil {
			*u.lastErr = ferr
		}
	}
	u.buf = u.buf[:0]
}

// countingUploader classifies immediate (non-batched) uploads into the
// campaign stats on their way to the sink.
type countingUploader struct {
	sink    phone.Uploader
	stats   *CampaignStats
	lastErr *error
}

// Upload implements phone.Uploader.
func (u *countingUploader) Upload(ctx context.Context, trip probe.Trip) error {
	err := u.sink.Upload(ctx, trip)
	if ferr := classifyUpload(err, u.stats); ferr != nil {
		*u.lastErr = ferr
	}
	return err
}

// Campaign orchestrates a full data-collection run over a world,
// delivering concluded participant trips to the uploader (the backend).
// Not safe for concurrent use.
type Campaign struct {
	w        *World
	cfg      CampaignConfig
	uploader phone.Uploader
	observer VisitObserver

	rng    *stats.RNG
	busSeq int
	buses  []*busRun
	// nextSpawn tracks the next scheduled departure per route.
	nextSpawn map[transit.RouteID]float64
	parts     []*participant
	stats     CampaignStats
	// batcher buffers uploads when UploadBatchSize is configured and
	// the uploader supports batch ingest.
	batcher *batchingUploader
	// injector / retrier are the optional fault-injection and retry
	// layers of the upload chain (agents → batcher → retrier →
	// injector → uploader).
	injector *faults.Injector
	retrier  *phone.RetryUploader
	// lastUploadErr retains the most recent real upload failure.
	lastUploadErr error

	// MinuteHook, when set, is invoked once per simulated minute with
	// the current time — the attachment point for live evaluations
	// (periodic traffic-map snapshots, backend clock driving).
	MinuteHook func(tS float64)
}

// NewCampaign prepares a campaign. observer may be nil.
func NewCampaign(w *World, cfg CampaignConfig, uploader phone.Uploader, observer VisitObserver) (*Campaign, error) {
	if w == nil || uploader == nil {
		return nil, fmt.Errorf("sim: nil world or uploader")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Campaign{
		w:         w,
		cfg:       cfg,
		uploader:  uploader,
		observer:  observer,
		rng:       stats.NewRNG(cfg.Seed).Fork("campaign"),
		nextSpawn: make(map[transit.RouteID]float64),
	}
	// Assemble the upload chain inside-out: uploader ← injector ←
	// retrier ← batcher/counter ← agents. The retry layer sits above
	// the injector so every retry re-offers the trip to the fault
	// model (a fresh coin flip, like a fresh radio transmission).
	sink := uploader
	if cfg.Faults.Enabled() {
		fcfg := cfg.Faults
		if fcfg.Seed == 0 {
			fcfg.Seed = cfg.Seed ^ 0xfa5
		}
		inj, err := faults.NewInjector(fcfg, sink)
		if err != nil {
			return nil, err
		}
		c.injector = inj
		sink = inj
	}
	if cfg.UploadRetry.MaxAttempts > 0 {
		// Backoff delays are recorded by the policy but not slept: the
		// campaign runs in simulated time.
		ret, err := phone.NewRetryUploader(cfg.UploadRetry, sink,
			func(context.Context, float64) error { return nil })
		if err != nil {
			return nil, err
		}
		c.retrier = ret
		sink = ret
	}
	agentSink := sink
	if cfg.UploadBatchSize > 1 {
		bsink, ok := sink.(phone.BatchUploader)
		if !ok {
			return nil, fmt.Errorf("sim: UploadBatchSize set but uploader %T has no batch path", sink)
		}
		c.batcher = &batchingUploader{sink: bsink, size: cfg.UploadBatchSize, stats: &c.stats, lastErr: &c.lastUploadErr}
		agentSink = c.batcher
	} else {
		agentSink = &countingUploader{sink: sink, stats: &c.stats, lastErr: &c.lastUploadErr}
	}
	for i := 0; i < cfg.Participants; i++ {
		// The global index keys both the identity and the randomness, so
		// rider gi behaves identically whether simulated in one campaign
		// or as part of an offset cohort.
		gi := i + cfg.ParticipantOffset
		prng := c.rng.Fork(fmt.Sprintf("participant-%d", gi))
		sc := &busScanner{cells: w.Cells, rng: prng.Fork("scan"), scans: &c.stats.ScansTaken}
		agent, err := phone.NewAgent(phone.DefaultAgentConfig(fmt.Sprintf("dev-%02d", gi)), sc, agentSink)
		if err != nil {
			return nil, err
		}
		device := phone.HTCSensation
		if gi%2 == 1 {
			device = phone.NexusOne
		}
		c.parts = append(c.parts, &participant{
			id: i, agent: agent, scanner: sc, rng: prng,
			decoyRNG: prng.Fork("decoys"), device: device,
		})
	}
	return c, nil
}

// Stats returns the run summary.
func (c *Campaign) Stats() CampaignStats { return c.stats }

// Run executes the whole campaign. The context cancels the run between
// days and rides every upload, so an aborted campaign stops promptly
// and in a consistent state (no half-simulated day).
func (c *Campaign) Run(ctx context.Context) (CampaignStats, error) {
	for day := 0; day < c.cfg.Days; day++ {
		if err := ctx.Err(); err != nil {
			return c.stats, err
		}
		if err := c.runDay(ctx, day); err != nil {
			return c.stats, err
		}
		if c.batcher != nil {
			c.batcher.flush(ctx) // bound the buffer to one day's trips
		}
	}
	for _, p := range c.parts {
		p.agent.Flush(ctx) //lint:allow errcheckio Agent.Flush returns no error; per-trip failures are counted in CampaignStats
	}
	if c.batcher != nil {
		c.batcher.flush(ctx)
	}
	// End-of-campaign recovery: drain the retry spool, then deliver the
	// injector's held (delayed / still-reordered) trips.
	if c.retrier != nil {
		c.retrier.FlushSpool(ctx)
	}
	if c.injector != nil {
		c.injector.Flush(ctx) //lint:allow errcheckio Injector.Flush returns no error; delivery failures land in the fault stats
	}
	c.collectFaultStats()
	return c.stats, nil
}

// collectFaultStats copies the injector and retry counters into the
// campaign summary.
func (c *Campaign) collectFaultStats() {
	if c.injector != nil {
		fs := c.injector.Stats()
		c.stats.FaultTripsOffered = fs.Offered
		c.stats.FaultTripsDropped = fs.Dropped
		c.stats.FaultTripsDuplicated = fs.Duplicated
		c.stats.FaultTripsReordered = fs.Reordered
		c.stats.FaultTripsDelayed = fs.Delayed
		c.stats.FaultTripsCorrupted = fs.Corrupted
		c.stats.FaultTripsDelivered = fs.Delivered
	}
	if c.retrier != nil {
		rs := c.retrier.Stats()
		c.stats.UploadRetries = rs.Retries
		c.stats.UploadSpoolRecovered = rs.SpoolRecovered
	}
}

// Injector exposes the fault-injection layer, when configured.
func (c *Campaign) Injector() *faults.Injector { return c.injector }

// Retrier exposes the upload retry layer, when configured.
func (c *Campaign) Retrier() *phone.RetryUploader { return c.retrier }

// LastUploadError returns the most recent real (non-duplicate) upload
// failure the campaign observed, or nil.
func (c *Campaign) LastUploadError() error { return c.lastUploadErr }

// weatherOfDay returns the day's frozen weather in [-1, 1].
func (c *Campaign) weatherOfDay(day int) float64 {
	r := stats.NewRNG(c.cfg.Seed ^ uint64(day)*0x9e3779b97f4a7c15).Fork("weather")
	return r.Range(-1, 1)
}

// tripsPerDay returns the phase-dependent ride rate.
func (c *Campaign) tripsPerDay(day int) float64 {
	if day >= c.cfg.IntensiveFromDay {
		return c.cfg.IntensiveTripsPerDay
	}
	return c.cfg.SparseTripsPerDay
}

// runDay simulates one service day.
func (c *Campaign) runDay(ctx context.Context, day int) error {
	dayStart := float64(day)*clock.DayS + clock.ServiceStartS
	dayEnd := float64(day)*clock.DayS + clock.ServiceEndS
	weather := c.weatherOfDay(day)

	// Stagger the first departures and plan participant trips.
	for i, rt := range c.w.Transit.Routes() {
		c.nextSpawn[rt.ID] = dayStart + float64(i*97)
	}
	for _, p := range c.parts {
		c.planDay(p, day)
	}

	spawnCutoff := dayEnd - 3600 // no departures in the last hour
	lastAgentTick := 0.0
	for t := dayStart; t < dayEnd || len(c.buses) > 0; t += c.cfg.TickS {
		if t > dayEnd+2*3600 {
			return fmt.Errorf("sim: buses still active 2h past service end on day %d", day)
		}
		if t < spawnCutoff {
			c.spawnBuses(t)
		}
		c.startWaiting(t)
		if err := c.tickBuses(t, weather); err != nil {
			return err
		}
		if t-lastAgentTick >= 60 {
			for _, p := range c.parts {
				p.agent.Tick(ctx, t)
			}
			if c.MinuteHook != nil {
				c.MinuteHook(t)
			}
			lastAgentTick = t
		}
	}
	// Midnight: conclude any dangling trips and reset waiting riders.
	for _, p := range c.parts {
		p.agent.Tick(ctx, float64(day+1)*clock.DayS)
		if p.state == pWaiting {
			p.state = pIdle
		}
	}
	return nil
}

// planDay schedules the participant's rides (and train decoys) for the
// day.
func (c *Campaign) planDay(p *participant, day int) {
	p.tripQueue = p.tripQueue[:0]
	p.decoys = p.decoys[:0]
	if c.cfg.TrainDecoysPerDay > 0 {
		nd := p.decoyRNG.Poisson(c.cfg.TrainDecoysPerDay)
		for k := 0; k < nd; k++ {
			p.decoys = append(p.decoys, float64(day)*clock.DayS+clock.ServiceStartS+
				p.decoyRNG.Float64()*(clock.ServiceEndS-clock.ServiceStartS-3600))
		}
		sort.Float64s(p.decoys)
	}
	n := p.rng.Poisson(c.tripsPerDay(day))
	routes := c.w.Transit.Routes()
	for i := 0; i < n; i++ {
		rt := routes[p.rng.Intn(len(routes))]
		nStops := rt.NumStops()
		board := p.rng.Intn(nStops - 1)
		rideLen := 3 + p.rng.Intn(12)
		alight := board + rideLen
		if alight > nStops-1 {
			alight = nStops - 1
		}
		start := float64(day)*clock.DayS + clock.ServiceStartS +
			p.rng.Float64()*(clock.ServiceEndS-clock.ServiceStartS-7200)
		p.tripQueue = append(p.tripQueue, plannedTrip{
			startS:    start,
			route:     rt.ID,
			boardIdx:  board,
			alightIdx: alight,
		})
	}
	sort.Slice(p.tripQueue, func(i, j int) bool {
		return p.tripQueue[i].startS < p.tripQueue[j].startS
	})
}

// startWaiting moves idle participants whose next trip is due to the
// waiting state at their boarding stop, and fires due train decoys.
func (c *Campaign) startWaiting(t float64) {
	for _, p := range c.parts {
		if p.state != pIdle {
			continue
		}
		// Train-station decoy: the phone hears card-reader beeps while
		// the accelerometer says "train"; the agent must record
		// nothing.
		for len(p.decoys) > 0 && t >= p.decoys[0] {
			decoyAt := p.decoys[0]
			p.decoys = p.decoys[1:]
			c.stats.TrainDecoys++
			p.agent.SetMobilityMode(accel.ModeTrain)
			// Station somewhere in the region.
			bbox := c.w.Net.BBox()
			p.scanner.pos = geo.XY{
				X: bbox.MinX + p.decoyRNG.Float64()*bbox.Width(),
				Y: bbox.MinY + p.decoyRNG.Float64()*bbox.Height(),
			}
			p.scanner.cond = cellular.Condition{}
			nb := 1 + p.decoyRNG.Intn(3)
			for k := 0; k < nb; k++ {
				p.agent.OnBeep(decoyAt + float64(k)*2)
			}
			p.agent.SetMobilityMode(accel.ModeStill)
		}
		if len(p.tripQueue) == 0 {
			continue
		}
		next := p.tripQueue[0]
		if t >= next.startS {
			p.tripQueue = p.tripQueue[1:]
			p.state = pWaiting
			p.route = next.route
			p.boardIdx = next.boardIdx
			p.alightIdx = next.alightIdx
		}
	}
}

// spawnBuses dispatches scheduled departures.
func (c *Campaign) spawnBuses(t float64) {
	for _, rt := range c.w.Transit.Routes() {
		for c.nextSpawn[rt.ID] <= t {
			c.nextSpawn[rt.ID] += rt.HeadwayS
			bus, err := NewBus(c.busSeq, rt, c.w.Net)
			if err != nil {
				continue // static route config; cannot fail after world build
			}
			c.busSeq++
			c.stats.BusRuns++
			br := &busRun{bus: bus}
			c.buses = append(c.buses, br)
		}
	}
}

// tickBuses advances every bus and resolves arrivals.
func (c *Campaign) tickBuses(t, weather float64) error {
	alive := c.buses[:0]
	for _, br := range c.buses {
		if br.bus.PendingArrival() {
			c.resolveVisit(br, t, weather)
		}
		arrived, err := br.bus.Advance(t, c.cfg.TickS, c.w.Field)
		if err != nil {
			return err
		}
		if arrived {
			c.resolveVisit(br, t, weather)
		}
		if br.bus.Done() {
			continue
		}
		alive = append(alive, br)
	}
	c.buses = alive
	return nil
}

// resolveVisit handles a bus arrival at a stop: boarding, alighting,
// background taps, dwell vs skip, and sample recording on every onboard
// phone.
func (c *Campaign) resolveVisit(br *busRun, t, weather float64) {
	bus := br.bus
	stopIdx := bus.StopIdx()
	stop := bus.CurrentStop()
	terminal := stopIdx == bus.Route.NumStops()-1

	// Who boards here?
	var boarding []*participant
	if !terminal {
		for _, p := range c.parts {
			if p.state == pWaiting && p.route == bus.Route.ID && p.boardIdx == stopIdx {
				boarding = append(boarding, p)
			}
		}
	}
	// Who alights here?
	var alighting []*participant
	remaining := br.onboard[:0]
	for _, p := range br.onboard {
		if p.alightIdx == stopIdx || terminal {
			alighting = append(alighting, p)
		} else {
			remaining = append(remaining, p)
		}
	}

	background := c.w.Demand.BeepsAtVisit(stop, t, c.rng)
	total := background + len(boarding) + len(alighting)
	c.stats.Visits++

	if total == 0 {
		// Nobody to serve: pass without stopping (§III-D's missing
		// stop; adjacent segments merge at the backend).
		c.stats.SkippedVisits++
		br.onboard = remaining
		_ = bus.Skip()
		c.observe(StopVisit{
			BusID: bus.ID, Route: bus.Route.ID, StopIdx: stopIdx, Stop: stop,
			ArriveS: t, DepartS: t, Skipped: true,
		})
		return
	}

	dwell := 6 + 2.0*float64(total) + math.Abs(c.rng.Norm(0, 1.5))
	beepSpan := math.Min(dwell-1, 1+2.2*float64(total))
	beeps := make([]float64, total)
	for i := range beeps {
		beeps[i] = t + 0.5 + c.rng.Float64()*beepSpan
	}
	sort.Float64s(beeps)
	c.stats.Beeps += total

	// Board first so new riders record this visit's beeps too.
	for _, p := range boarding {
		p.state = pRiding
		p.boardS = t
		p.agent.SetMobilityMode(accel.ModeBus)
	}
	br.onboard = append(remaining, boarding...)

	pos := bus.Pos()
	for _, p := range br.onboard {
		p.scanner.pos = pos
		p.scanner.cond = cellular.Condition{OnBus: true, Weather: weather}
		for _, bt := range beeps {
			p.agent.OnBeep(bt)
		}
	}
	// Alighting riders also heard this visit's beeps (they were onboard
	// through the dwell) — they are in alighting, not br.onboard, so
	// record for them too, then release them.
	for _, p := range alighting {
		p.scanner.pos = pos
		p.scanner.cond = cellular.Condition{OnBus: true, Weather: weather}
		for _, bt := range beeps {
			p.agent.OnBeep(bt)
		}
		p.state = pIdle
		p.agent.SetMobilityMode(accel.ModeStill)
		c.stats.ParticipantTrips++
		rideS := t - p.boardS
		c.stats.RidingSeconds += rideS
		if j, err := p.device.EnergyJ(phone.SettingCellularMicGoertzel, rideS); err == nil {
			c.stats.AppEnergyJ += j
		}
	}

	_ = bus.Dwell(t, dwell)
	c.observe(StopVisit{
		BusID: bus.ID, Route: bus.Route.ID, StopIdx: stopIdx, Stop: stop,
		ArriveS: t, DepartS: t + dwell, Beeps: total,
	})
}

func (c *Campaign) observe(v StopVisit) {
	if c.observer != nil {
		c.observer(v)
	}
}
