package sim

import (
	"busprobe/internal/clock"
	"fmt"
	"math"

	"busprobe/internal/stats"
	"busprobe/internal/transit"
)

// DemandConfig parameterizes the background rider demand: the ordinary
// (non-participant) passengers whose IC-card taps produce the beeps that
// participant phones overhear.
type DemandConfig struct {
	// BaseBeepsPerVisit is the off-peak mean number of card taps
	// (boardings + alightings) when a bus serves a stop.
	BaseBeepsPerVisit float64
	// RushMultiplier scales demand at the rush peaks.
	RushMultiplier float64
	// Seed drives per-stop popularity.
	Seed uint64
}

// DefaultDemandConfig returns the campaign's demand model.
func DefaultDemandConfig() DemandConfig {
	return DemandConfig{BaseBeepsPerVisit: 1.3, RushMultiplier: 2.2, Seed: 1}
}

// Validate rejects broken configurations.
func (c DemandConfig) Validate() error {
	if c.BaseBeepsPerVisit < 0 || c.RushMultiplier < 1 {
		return fmt.Errorf("sim: bad demand config %+v", c)
	}
	return nil
}

// Demand produces beep counts for bus stop visits. Immutable after
// construction; callers supply their own RNG per draw site.
type Demand struct {
	cfg  DemandConfig
	bias map[transit.StopID]float64 // frozen per-stop popularity
}

// NewDemand builds the demand model over the transit DB's stops.
func NewDemand(db *transit.DB, cfg DemandConfig) (*Demand, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed).Fork("demand")
	bias := make(map[transit.StopID]float64, db.NumStops())
	for _, st := range db.Stops() {
		// Stops served by more routes are busier interchange points.
		routes := float64(len(db.RoutesOf(st.ID)))
		bias[st.ID] = stats.Clamp(rng.LogNormal(0, 0.45)*(0.8+0.2*routes), 0.2, 4)
	}
	return &Demand{cfg: cfg, bias: bias}, nil
}

// MeanBeeps returns the expected tap count for a visit to the stop at
// the given time.
func (d *Demand) MeanBeeps(stop transit.StopID, t float64) float64 {
	h := clock.HourOfDay(t)
	rush := math.Exp(-(h-8.5)*(h-8.5)/(2*0.8*0.8)) + math.Exp(-(h-18.0)*(h-18.0)/(2*0.9*0.9))
	diurnal := 1 + (d.cfg.RushMultiplier-1)*rush
	return d.cfg.BaseBeepsPerVisit * diurnal * d.bias[stop]
}

// BeepsAtVisit draws the number of background card taps for one stop
// visit. Zero means nobody boards or alights: the bus skips the stop and
// the trip record merges the adjacent road segments (§III-D).
func (d *Demand) BeepsAtVisit(stop transit.StopID, t float64, rng *stats.RNG) int {
	return rng.Poisson(d.MeanBeeps(stop, t))
}
