package sim

import (
	"context"
	"fmt"

	"busprobe/internal/phone"
	"busprobe/internal/probe"
)

// TripRecorder implements phone.Uploader by recording concluded trips
// instead of processing them, capturing the exact upload stream a
// campaign would hand a backend — including any fault-injected
// duplicates and reorderings, since the campaign's injector sits between
// the phones and the uploader.
type TripRecorder struct {
	Trips []probe.Trip
}

var _ phone.Uploader = (*TripRecorder)(nil)

// Upload implements phone.Uploader.
func (r *TripRecorder) Upload(_ context.Context, trip probe.Trip) error {
	r.Trips = append(r.Trips, trip)
	return nil
}

// RecordTrips runs a campaign against a recorder and returns the upload
// stream in arrival order. Replaying the stream into any backend —
// monolithic or sharded — reproduces the campaign's ingestion exactly,
// which is how the shard-equivalence tests compare deployments on
// identical inputs.
func RecordTrips(ctx context.Context, w *World, cfg CampaignConfig) ([]probe.Trip, CampaignStats, error) {
	rec := &TripRecorder{}
	camp, err := NewCampaign(w, cfg, rec, nil)
	if err != nil {
		return nil, CampaignStats{}, err
	}
	stats, err := camp.Run(ctx)
	if err != nil {
		return nil, stats, err
	}
	if len(rec.Trips) == 0 {
		return nil, stats, fmt.Errorf("sim: campaign concluded no trips")
	}
	return rec.Trips, stats, nil
}
