package sim

import (
	"busprobe/internal/clock"
	"fmt"
	"math"

	"busprobe/internal/geo"
	"busprobe/internal/road"
	"busprobe/internal/stats"
)

// FieldConfig parameterizes the ground-truth traffic field.
type FieldConfig struct {
	// MorningPeakH and EveningPeakH are the rush-hour centers in hours.
	MorningPeakH, EveningPeakH float64
	// MorningDepth and EveningDepth scale how deep the rush slowdowns
	// cut (0..1 of free flow). The paper's region is slower at 08:30
	// than at 17:00 (university shuttles every morning), so the morning
	// default is deeper.
	MorningDepth, EveningDepth float64
	// PeakWidthH is the Gaussian width of each rush bump, in hours.
	PeakWidthH float64
	// FluctAmp is the amplitude of the slow per-segment fluctuation.
	FluctAmp float64
	// FreeFlowRatio is the fraction of the design speed that traffic
	// actually reaches with "little or no traffic": signals, turning
	// vehicles and pedestrians keep observed urban speeds well below
	// the empty-road design speed the Eq. 3 "a" term divides by.
	FreeFlowRatio float64
	// MinFactor floors the congestion factor (gridlock still moves).
	MinFactor float64
	// BusCapKmh is the bus speed limit; buses also run BusFactor times
	// the car speed when uncongested ("usually adhere to more strict
	// speed limits").
	BusCapKmh float64
	// BusFactor scales bus speed relative to cars.
	BusFactor float64
	// TaxiAggressiveness is the extra speed taxis squeeze out in light
	// traffic (the source of Fig. 10's high-speed gap between v_A and
	// v_T).
	TaxiAggressiveness float64
	// Seed drives the frozen per-segment parameters.
	Seed uint64
}

// DefaultFieldConfig returns the experiment configuration.
func DefaultFieldConfig() FieldConfig {
	return FieldConfig{
		MorningPeakH:       8.5,
		EveningPeakH:       18.0,
		MorningDepth:       0.45,
		EveningDepth:       0.32,
		PeakWidthH:         0.9,
		FluctAmp:           0.07,
		FreeFlowRatio:      0.66,
		MinFactor:          0.15,
		BusCapKmh:          62,
		BusFactor:          0.95,
		TaxiAggressiveness: 0.06,
		Seed:               1,
	}
}

// Validate rejects broken configurations.
func (c FieldConfig) Validate() error {
	if c.BusCapKmh <= 0 || c.BusFactor <= 0 {
		return fmt.Errorf("sim: non-positive bus parameters")
	}
	if c.MinFactor <= 0 || c.MinFactor >= 1 {
		return fmt.Errorf("sim: MinFactor %v outside (0,1)", c.MinFactor)
	}
	if c.FreeFlowRatio <= c.MinFactor || c.FreeFlowRatio > 1 {
		return fmt.Errorf("sim: FreeFlowRatio %v outside (MinFactor,1]", c.FreeFlowRatio)
	}
	if c.PeakWidthH <= 0 {
		return fmt.Errorf("sim: non-positive peak width")
	}
	return nil
}

// segParams are the frozen per-segment congestion characteristics.
type segParams struct {
	morningScale float64 // multiplies MorningDepth
	eveningScale float64
	fluctPhase   float64
	fluctFreqH   float64 // fluctuation cycles per hour
}

// Field is the ground-truth automobile speed field v_car(segment, t),
// with derived bus and taxi speeds. Immutable after construction; safe
// for concurrent readers.
type Field struct {
	net *road.Network
	cfg FieldConfig
	seg []segParams
}

// NewField builds the field over a network.
func NewField(net *road.Network, cfg FieldConfig) (*Field, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed).Fork("traffic-field")
	center := netCenter(net)
	maxDist := math.Max(net.BBox().Width(), net.BBox().Height()) / 2
	segs := make([]segParams, net.NumSegments())
	for i, s := range net.Segments() {
		r := rng.ForkN(uint64(i))
		// Segments near the region center congest harder, direction-
		// specific scales capture asymmetric rush flows.
		mid := s.Shape.At(s.LengthM() / 2)
		centrality := 1 - math.Min(1, dist(mid, center)/math.Max(maxDist, 1))
		segs[i] = segParams{
			morningScale: stats.Clamp(0.5+0.8*centrality+r.Norm(0, 0.25), 0.1, 1.6),
			eveningScale: stats.Clamp(0.5+0.8*centrality+r.Norm(0, 0.25), 0.1, 1.6),
			fluctPhase:   r.Range(0, 2*math.Pi),
			fluctFreqH:   r.Range(0.5, 2.0),
		}
	}
	return &Field{net: net, cfg: cfg, seg: segs}, nil
}

func netCenter(net *road.Network) [2]float64 {
	b := net.BBox()
	return [2]float64{(b.MinX + b.MaxX) / 2, (b.MinY + b.MaxY) / 2}
}

func dist(p geo.XY, c [2]float64) float64 {
	return math.Hypot(p.X-c[0], p.Y-c[1])
}

// Config returns the field configuration.
func (f *Field) Config() FieldConfig { return f.cfg }

// CongestionFactor returns the instantaneous fraction of free-flow speed
// on a segment, in [MinFactor, 1.05].
func (f *Field) CongestionFactor(sid road.SegmentID, t float64) float64 {
	p := f.seg[sid]
	h := clock.HourOfDay(t)
	bump := func(center float64) float64 {
		d := h - center
		return math.Exp(-d * d / (2 * f.cfg.PeakWidthH * f.cfg.PeakWidthH))
	}
	factor := f.cfg.FreeFlowRatio * (1 -
		f.cfg.MorningDepth*p.morningScale*bump(f.cfg.MorningPeakH) -
		f.cfg.EveningDepth*p.eveningScale*bump(f.cfg.EveningPeakH) +
		f.cfg.FluctAmp*math.Sin(2*math.Pi*p.fluctFreqH*(t/3600)+p.fluctPhase))
	return stats.Clamp(factor, f.cfg.MinFactor, f.cfg.FreeFlowRatio*1.08)
}

// CarKmh returns the ground-truth automobile speed on a segment.
func (f *Field) CarKmh(sid road.SegmentID, t float64) float64 {
	return f.net.Segment(sid).FreeKmh * f.CongestionFactor(sid, t)
}

// BusKmh returns the in-motion bus speed on a segment: the car speed
// scaled by the bus factor and capped by the bus speed limit.
func (f *Field) BusKmh(sid road.SegmentID, t float64) float64 {
	v := f.CarKmh(sid, t) * f.cfg.BusFactor
	return math.Min(v, f.cfg.BusCapKmh)
}

// TaxiKmh returns the taxi speed on a segment: car speed plus the
// aggressiveness bonus that grows in light traffic (taxis overtake,
// speed, and lane-weave when they can).
func (f *Field) TaxiKmh(sid road.SegmentID, t float64) float64 {
	factor := f.CongestionFactor(sid, t)
	bonus := 1.0
	if factor > 0.5 {
		bonus += f.cfg.TaxiAggressiveness * (factor - 0.5) * 2
	}
	return f.CarKmh(sid, t) * bonus
}
