package sim

import (
	"fmt"

	"busprobe/internal/cellular"
	"busprobe/internal/road"
	"busprobe/internal/transit"
)

// WorldConfig bundles the configuration of every substrate making up the
// simulated city.
type WorldConfig struct {
	Road   road.GridConfig
	Plan   transit.PlanConfig
	Cells  cellular.DeployConfig
	Field  FieldConfig
	Demand DemandConfig
	// Seed, when non-zero, re-derives every substrate seed from one
	// master value so whole worlds are reproducible from a single
	// number.
	Seed uint64
}

// DefaultWorldConfig returns the paper-scale city: 7 km x 4 km grid,
// 8 routes, ~600 m cell spacing.
func DefaultWorldConfig() WorldConfig {
	return WorldConfig{
		Road:   road.DefaultGridConfig(),
		Plan:   transit.DefaultPlanConfig(),
		Cells:  cellular.DefaultDeployConfig(),
		Field:  DefaultFieldConfig(),
		Demand: DefaultDemandConfig(),
		Seed:   1,
	}
}

// World is the assembled city: road network, transit system, radio
// deployment, ground-truth traffic field and rider demand. Immutable
// after construction.
type World struct {
	Cfg     WorldConfig
	Net     *road.Network
	Transit *transit.DB
	Cells   *cellular.Deployment
	Field   *Field
	Demand  *Demand
}

// BuildWorld assembles a world from the configuration.
func BuildWorld(cfg WorldConfig) (*World, error) {
	if cfg.Seed != 0 {
		cfg.Road.Seed = cfg.Seed ^ 0xa11ce
		cfg.Plan.Seed = cfg.Seed ^ 0xb0b
		cfg.Cells.Seed = cfg.Seed ^ 0xce11
		cfg.Field.Seed = cfg.Seed ^ 0xf1e1d
		cfg.Demand.Seed = cfg.Seed ^ 0xdea4d
	}
	net, err := road.GenerateGrid(cfg.Road)
	if err != nil {
		return nil, fmt.Errorf("sim: road network: %w", err)
	}
	db, err := transit.PlanRoutes(net, cfg.Plan)
	if err != nil {
		return nil, fmt.Errorf("sim: transit: %w", err)
	}
	cells, err := cellular.NewDeployment(net.BBox(), cfg.Cells)
	if err != nil {
		return nil, fmt.Errorf("sim: cellular: %w", err)
	}
	field, err := NewField(net, cfg.Field)
	if err != nil {
		return nil, fmt.Errorf("sim: field: %w", err)
	}
	demand, err := NewDemand(db, cfg.Demand)
	if err != nil {
		return nil, fmt.Errorf("sim: demand: %w", err)
	}
	return &World{Cfg: cfg, Net: net, Transit: db, Cells: cells, Field: field, Demand: demand}, nil
}
