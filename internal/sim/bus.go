package sim

import (
	"fmt"

	"busprobe/internal/geo"
	"busprobe/internal/road"
	"busprobe/internal/transit"
)

// busState is the bus's lifecycle phase.
type busState int

const (
	stateAtStop busState = iota // arrival pending a visit decision
	stateDwelling
	stateDriving
	stateDone
)

// Bus is one vehicle driving a route. It advances with fixed time steps
// against the traffic field and emits arrival events the fleet's handler
// resolves into dwells (someone taps) or skips (nobody to serve).
type Bus struct {
	// ID is unique per spawned bus.
	ID int
	// Route is the service being driven.
	Route *transit.Route

	net  *road.Network
	legs []transit.Leg

	state      busState
	stopIdx    int     // stop just reached or dwelled at
	legIdx     int     // leg currently driven (stopIdx -> stopIdx+1)
	segPos     int     // index into legs[legIdx].Segments
	segDistM   float64 // meters into the current segment
	dwellUntil float64
}

// NewBus spawns a bus at the route's first stop; the first arrival event
// (stop index 0) is immediately pending.
func NewBus(id int, route *transit.Route, net *road.Network) (*Bus, error) {
	if route == nil || net == nil {
		return nil, fmt.Errorf("sim: nil route or network")
	}
	if route.NumLegs() < 1 {
		return nil, fmt.Errorf("sim: route %s has no legs", route.ID)
	}
	legs := make([]transit.Leg, route.NumLegs())
	for i := range legs {
		legs[i] = route.Leg(net, i)
	}
	return &Bus{ID: id, Route: route, net: net, legs: legs, state: stateAtStop}, nil
}

// Done reports whether the bus finished its run.
func (b *Bus) Done() bool { return b.state == stateDone }

// StopIdx returns the index of the stop just reached (valid when an
// arrival is pending or during a dwell).
func (b *Bus) StopIdx() int { return b.stopIdx }

// CurrentStop returns the logical stop just reached.
func (b *Bus) CurrentStop() transit.StopID { return b.Route.Stops[b.stopIdx] }

// Pos returns the bus position: the stop location while at a stop, or
// the point along the current segment while driving.
func (b *Bus) Pos() geo.XY {
	switch b.state {
	case stateDriving:
		leg := b.legs[b.legIdx]
		seg := b.net.Segment(leg.Segments[b.segPos])
		return seg.Shape.At(b.segDistM)
	default:
		return b.net.Node(b.stopNode(b.stopIdx)).Pos
	}
}

func (b *Bus) stopNode(i int) road.NodeID {
	if i < len(b.legs) {
		return b.net.Segment(b.legs[i].Segments[0]).From
	}
	last := b.legs[len(b.legs)-1]
	return b.net.Segment(last.Segments[len(last.Segments)-1]).To
}

// PendingArrival reports whether the bus is waiting for a visit
// decision.
func (b *Bus) PendingArrival() bool { return b.state == stateAtStop }

// Dwell resolves a pending arrival into a stop visit lasting dwellS
// seconds from now.
func (b *Bus) Dwell(now, dwellS float64) error {
	if b.state != stateAtStop {
		return fmt.Errorf("sim: bus %d has no pending arrival", b.ID)
	}
	b.state = stateDwelling
	b.dwellUntil = now + dwellS
	return nil
}

// Skip resolves a pending arrival by passing the stop without stopping.
func (b *Bus) Skip() error {
	if b.state != stateAtStop {
		return fmt.Errorf("sim: bus %d has no pending arrival", b.ID)
	}
	b.depart()
	return nil
}

// depart transitions from the current stop onto the next leg, or ends
// the run at the terminal.
func (b *Bus) depart() {
	if b.stopIdx >= len(b.legs) {
		b.state = stateDone
		return
	}
	b.legIdx = b.stopIdx
	b.segPos = 0
	b.segDistM = 0
	b.state = stateDriving
}

// Advance moves the bus dt seconds forward at time now. It returns true
// when the bus has just arrived at its next stop (an arrival event the
// caller must resolve with Dwell or Skip before the next Advance).
func (b *Bus) Advance(now, dt float64, field *Field) (arrived bool, err error) {
	switch b.state {
	case stateDone:
		return false, nil
	case stateAtStop:
		return false, fmt.Errorf("sim: bus %d advanced with unresolved arrival", b.ID)
	case stateDwelling:
		if now+dt >= b.dwellUntil {
			b.depart()
		}
		return false, nil
	}
	// Driving.
	remaining := dt
	leg := b.legs[b.legIdx]
	for remaining > 0 {
		sid := leg.Segments[b.segPos]
		v := field.BusKmh(sid, now) / 3.6 // m/s
		if v <= 0 {
			return false, nil
		}
		segLen := b.net.Segment(sid).LengthM()
		distLeft := segLen - b.segDistM
		tNeed := distLeft / v
		if tNeed > remaining {
			b.segDistM += v * remaining
			return false, nil
		}
		remaining -= tNeed
		b.segPos++
		b.segDistM = 0
		if b.segPos == len(leg.Segments) {
			// Arrived at the next stop.
			b.stopIdx = b.legIdx + 1
			b.state = stateAtStop
			return true, nil
		}
	}
	return false, nil
}
