package sim

import (
	"fmt"

	"busprobe/internal/road"
	"busprobe/internal/stats"
)

// OfficialFeed simulates the transit authority's taxi-AVL traffic data
// (the paper's LTA feed from >1,000 moving taxis), which the evaluation
// uses as "official traffic" v_T. Each (segment, window) value is the
// window-average taxi speed plus frozen sampling noise — a deterministic
// function, so the feed never needs to move actual taxis.
type OfficialFeed struct {
	field *Field
	// WindowS is the aggregation window (the paper plots 5-minute
	// averages).
	WindowS float64
	// noiseSD is the per-window sampling noise (finite taxi counts).
	noiseSD float64
	seed    uint64
}

// NewOfficialFeed returns a feed over the ground-truth field.
func NewOfficialFeed(field *Field, windowS, noiseSD float64, seed uint64) (*OfficialFeed, error) {
	if field == nil {
		return nil, fmt.Errorf("sim: nil field")
	}
	if windowS <= 0 || noiseSD < 0 {
		return nil, fmt.Errorf("sim: bad feed parameters window=%v noise=%v", windowS, noiseSD)
	}
	return &OfficialFeed{field: field, WindowS: windowS, noiseSD: noiseSD, seed: seed}, nil
}

// SpeedKmh returns the official (taxi-derived) speed for the window
// containing time t on a segment.
func (o *OfficialFeed) SpeedKmh(sid road.SegmentID, t float64) float64 {
	w := int(t / o.WindowS)
	mid := (float64(w) + 0.5) * o.WindowS
	base := o.field.TaxiKmh(sid, mid)
	r := stats.NewRNG(o.seed ^ uint64(sid)*0x9e3779b97f4a7c15 ^ uint64(w)*0xbf58476d1ce4e5b9).Fork("lta")
	v := base + r.Norm(0, o.noiseSD)
	if v < 1 {
		v = 1
	}
	return v
}

// WindowStart returns the start time of the window containing t.
func (o *OfficialFeed) WindowStart(t float64) float64 {
	return float64(int(t/o.WindowS)) * o.WindowS
}
