package sim

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"busprobe/internal/probe"
)

// streamTestWorld builds the compact preset world the stream tests
// share.
func streamTestWorld(t *testing.T) *World {
	t.Helper()
	cfg := SmallWorldConfig()
	cfg.Seed = 7
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	return w
}

// streamCampaign is the base one-day campaign the stream tests run.
func streamCampaign(riders int) CampaignConfig {
	cfg := DefaultCampaignConfig()
	cfg.Days = 1
	cfg.Participants = riders
	cfg.SparseTripsPerDay = 1.5
	cfg.IntensiveFromDay = 99 // stays sparse
	cfg.Seed = 11
	return cfg
}

// streamDigest hashes a trip stream: every emitted trip's JSON feeds
// one running hash, so two streams digest equal iff they are
// byte-identical trip for trip, in order.
func streamDigest(t *testing.T, w *World, cfg StreamConfig) (string, StreamStats) {
	t.Helper()
	h := sha256.New()
	st, err := StreamTrips(context.Background(), w, cfg, func(tr probe.Trip) error {
		b, err := json.Marshal(&tr)
		if err != nil {
			return err
		}
		h.Write(b)
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), st
}

// TestStreamTripsDeterministic proves the streaming generator is a pure
// function of its configuration: two runs with the same seed produce a
// byte-identical trip stream, and changing the seed changes it.
func TestStreamTripsDeterministic(t *testing.T) {
	w := streamTestWorld(t)
	cfg := StreamConfig{Campaign: streamCampaign(40), CohortSize: 16}
	d1, st1 := streamDigest(t, w, cfg)
	d2, st2 := streamDigest(t, w, cfg)
	if d1 != d2 {
		t.Fatalf("same seed diverged: %s vs %s", d1, d2)
	}
	if st1.Trips != st2.Trips || st1.Trips == 0 {
		t.Fatalf("trip counts diverged or empty: %d vs %d", st1.Trips, st2.Trips)
	}
	if st1.Cohorts != 3 {
		t.Fatalf("40 riders in cohorts of 16 should run 3 cohorts, got %d", st1.Cohorts)
	}
	other := cfg
	other.Campaign.Seed = 12
	if d3, _ := streamDigest(t, w, other); d3 == d1 {
		t.Fatalf("different seed produced an identical stream")
	}
}

// TestStreamTripsMatchesRecordTrips pins the single-cohort stream to
// sim.RecordTrips: at small scale the generator must be a pure
// refactor of the recorded campaign, trip for trip.
func TestStreamTripsMatchesRecordTrips(t *testing.T) {
	w := streamTestWorld(t)
	ccfg := streamCampaign(12)
	recorded, _, err := RecordTrips(context.Background(), w, ccfg)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	var streamed []probe.Trip
	_, err = StreamTrips(context.Background(), w, StreamConfig{Campaign: ccfg, CohortSize: 64},
		func(tr probe.Trip) error { streamed = append(streamed, tr); return nil })
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if len(streamed) != len(recorded) {
		t.Fatalf("stream emitted %d trips, RecordTrips %d", len(streamed), len(recorded))
	}
	for i := range streamed {
		if !reflect.DeepEqual(streamed[i], recorded[i]) {
			t.Fatalf("trip %d diverged:\nstream: %+v\nrecord: %+v", i, streamed[i], recorded[i])
		}
	}
}

// TestStreamTripsCohortIdentitiesDisjoint proves cohort partitioning
// cannot collide rider identities: every device appears in exactly one
// cohort, so trip IDs stay unique and a downstream dedup set never
// eats a legitimate trip.
func TestStreamTripsCohortIdentitiesDisjoint(t *testing.T) {
	w := streamTestWorld(t)
	seen := map[string]bool{}
	_, err := StreamTrips(context.Background(), w,
		StreamConfig{Campaign: streamCampaign(40), CohortSize: 16},
		func(tr probe.Trip) error {
			if seen[tr.ID] {
				return fmt.Errorf("duplicate trip ID %s across cohorts", tr.ID)
			}
			seen[tr.ID] = true
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("stream emitted no trips")
	}
}

// heapHighWater streams a run, measuring the post-GC heap after every
// cohort, and returns the peak growth over the pre-run baseline.
func heapHighWater(t *testing.T, w *World, riders, cohort int) uint64 {
	t.Helper()
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	var peak uint64
	emitted := 0
	_, err := StreamTrips(context.Background(), w,
		StreamConfig{Campaign: streamCampaign(riders), CohortSize: cohort},
		func(probe.Trip) error {
			emitted++
			if emitted%50 == 0 {
				runtime.GC()
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > base && ms.HeapAlloc-base > peak {
					peak = ms.HeapAlloc - base
				}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if emitted == 0 {
		t.Fatal("stream emitted no trips")
	}
	return peak
}

// TestStreamTripsBoundedMemory asserts the generator's heap is a
// function of the cohort size, not the rider population: growing the
// population 10x with a fixed cohort must keep the post-GC heap
// high-water flat (the working set is one cohort plus the shared
// world).
func TestStreamTripsBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory sweep is slow")
	}
	w := streamTestWorld(t)
	const cohort = 32
	small := heapHighWater(t, w, 60, cohort)
	large := heapHighWater(t, w, 600, cohort)
	// Flat within GC noise: allow a fixed slack, not a factor of the
	// population.
	const slack = 8 << 20
	if large > small+slack {
		t.Fatalf("heap grew with population: %d riders peaked %d bytes over baseline, %d riders %d (slack %d)",
			600, large, 60, small, slack)
	}
}
