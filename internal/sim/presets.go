package sim

import (
	"fmt"

	"busprobe/internal/cellular"
	"busprobe/internal/geo"
	"busprobe/internal/road"
	"busprobe/internal/transit"
)

// SmallWorldConfig is a compact city (4 km x 2.5 km, 4 routes) for
// fast test runs and harness smoke scenarios: the world builds and
// surveys in a fraction of the paper-scale cost while exercising every
// code path (multiple routes sharing stops, the full radio plan).
func SmallWorldConfig() WorldConfig {
	cfg := DefaultWorldConfig()
	cfg.Road.WidthM = 4000
	cfg.Road.HeightM = 2500
	cfg.Plan.RouteIDs = []transit.RouteID{"179", "199", "243", "252"}
	cfg.Plan.MinStops = 8
	cfg.Plan.MaxStops = 14
	return cfg
}

// PresetWorldConfig names the world presets shared by the binaries and
// the lab harness: a server booted with -world NAME and a harness
// deployment built from the same name and seed derive byte-identical
// cities and fingerprint databases.
func PresetWorldConfig(name string) (WorldConfig, error) {
	switch name {
	case "", "paper":
		return DefaultWorldConfig(), nil
	case "small":
		return SmallWorldConfig(), nil
	case "london":
		return LondonWorldConfig(), nil
	}
	return WorldConfig{}, fmt.Errorf("sim: unknown world preset %q (want paper, small, or london)", name)
}

// LondonWorldConfig is a second city preset backing the paper's §VI
// portability claim ("our system can be easily adopted to other urban
// areas with slight modifications"): a denser, larger inner-London-like
// grid, Oyster-style route names, tighter headways, and a different
// radio plan. Only configuration changes — no code paths differ — which
// is exactly the claim.
func LondonWorldConfig() WorldConfig {
	cfg := DefaultWorldConfig()
	cfg.Seed = 0x10d05

	// Inner-London scale: larger extent, tighter blocks, slower design
	// speeds (dense signals, narrow streets).
	cfg.Road.WidthM = 8000
	cfg.Road.HeightM = 5000
	cfg.Road.SpacingM = 400
	cfg.Road.ArterialEvery = 4
	cfg.Road.LocalKmh = 50
	cfg.Road.ArterialKmh = 80
	cfg.Road.JitterM = 60

	// TfL-style route identifiers, higher frequency (London's 75%+
	// route coverage comes from a denser network).
	cfg.Plan.RouteIDs = []transit.RouteID{
		"25", "38", "73", "149", "243", "N25", "W7", "254", "476", "141",
	}
	cfg.Plan.MinStops = 18
	cfg.Plan.MaxStops = 30
	cfg.Plan.HeadwayS = 360

	// Denser urban macro layer.
	cfg.Cells.SpacingM = 500
	cfg.Cells.JitterM = 120

	// Heavier, longer rush (the morning peak spreads).
	cfg.Field.MorningDepth = 0.5
	cfg.Field.EveningDepth = 0.42
	cfg.Field.PeakWidthH = 1.1
	cfg.Field.BusCapKmh = 50 // London buses are slower
	cfg.Field.FreeFlowRatio = 0.6

	// Busier stops.
	cfg.Demand.BaseBeepsPerVisit = 1.8
	return cfg
}

// TwinCityWorld hand-builds a city of two road islands with no
// connection between them — one bus route each — so the transit system
// partitions into two route-closed groups. The generated worlds all
// collapse into one group (their routes interconnect, as real city
// routes do), which makes this the reference world for exercising a
// multi-shard coordinator: campaigns run on it unmodified, and every
// trip belongs unambiguously to one island.
func TwinCityWorld(seed uint64) (*World, error) {
	cfg := DefaultWorldConfig()
	cfg.Seed = seed
	cfg.Road.Seed = seed ^ 0xa11ce
	cfg.Cells.Seed = seed ^ 0xce11
	cfg.Field.Seed = seed ^ 0xf1e1d
	cfg.Demand.Seed = seed ^ 0xdea4d

	const (
		stopsPerIsland = 8
		spacingM       = 500.0
		// Islands sit far apart in both axes: well beyond cell reach, so
		// fingerprints never straddle islands, and beyond the region
		// zone size, so the partitioner lands the groups in different
		// zones.
		eastOffsetX = 9500.0
		eastOffsetY = 2000.0
	)

	var nodes []road.Node
	var segments []*road.Segment
	addPair := func(a, b road.NodeID) {
		fwd := &road.Segment{
			ID:      road.SegmentID(len(segments)),
			From:    a,
			To:      b,
			Shape:   geo.NewPolyline([]geo.XY{nodes[a].Pos, nodes[b].Pos}),
			Class:   road.ClassLocal,
			FreeKmh: cfg.Road.LocalKmh,
		}
		rev := &road.Segment{
			ID:      road.SegmentID(len(segments) + 1),
			From:    b,
			To:      a,
			Shape:   geo.NewPolyline([]geo.XY{nodes[b].Pos, nodes[a].Pos}),
			Class:   road.ClassLocal,
			FreeKmh: cfg.Road.LocalKmh,
		}
		fwd.Reverse = rev.ID
		rev.Reverse = fwd.ID
		segments = append(segments, fwd, rev)
	}
	island := func(offX, offY float64) []road.NodeID {
		ids := make([]road.NodeID, stopsPerIsland)
		for i := 0; i < stopsPerIsland; i++ {
			id := road.NodeID(len(nodes))
			nodes = append(nodes, road.Node{ID: id, Pos: geo.XY{X: offX + float64(i)*spacingM, Y: offY}})
			ids[i] = id
		}
		for i := 0; i+1 < stopsPerIsland; i++ {
			addPair(ids[i], ids[i+1])
		}
		return ids
	}
	west := island(0, 0)
	east := island(eastOffsetX, eastOffsetY)

	net := road.NewNetwork(nodes, segments)
	bl := transit.NewBuilder(net)
	if err := bl.AddRoute("W1", "west line", west, 600); err != nil {
		return nil, fmt.Errorf("sim: twin city: %w", err)
	}
	if err := bl.AddRoute("E1", "east line", east, 600); err != nil {
		return nil, fmt.Errorf("sim: twin city: %w", err)
	}
	db := bl.Build()

	cells, err := cellular.NewDeployment(net.BBox(), cfg.Cells)
	if err != nil {
		return nil, fmt.Errorf("sim: twin city cellular: %w", err)
	}
	field, err := NewField(net, cfg.Field)
	if err != nil {
		return nil, fmt.Errorf("sim: twin city field: %w", err)
	}
	demand, err := NewDemand(db, cfg.Demand)
	if err != nil {
		return nil, fmt.Errorf("sim: twin city demand: %w", err)
	}
	return &World{Cfg: cfg, Net: net, Transit: db, Cells: cells, Field: field, Demand: demand}, nil
}
