package sim

import (
	"busprobe/internal/transit"
)

// LondonWorldConfig is a second city preset backing the paper's §VI
// portability claim ("our system can be easily adopted to other urban
// areas with slight modifications"): a denser, larger inner-London-like
// grid, Oyster-style route names, tighter headways, and a different
// radio plan. Only configuration changes — no code paths differ — which
// is exactly the claim.
func LondonWorldConfig() WorldConfig {
	cfg := DefaultWorldConfig()
	cfg.Seed = 0x10d05

	// Inner-London scale: larger extent, tighter blocks, slower design
	// speeds (dense signals, narrow streets).
	cfg.Road.WidthM = 8000
	cfg.Road.HeightM = 5000
	cfg.Road.SpacingM = 400
	cfg.Road.ArterialEvery = 4
	cfg.Road.LocalKmh = 50
	cfg.Road.ArterialKmh = 80
	cfg.Road.JitterM = 60

	// TfL-style route identifiers, higher frequency (London's 75%+
	// route coverage comes from a denser network).
	cfg.Plan.RouteIDs = []transit.RouteID{
		"25", "38", "73", "149", "243", "N25", "W7", "254", "476", "141",
	}
	cfg.Plan.MinStops = 18
	cfg.Plan.MaxStops = 30
	cfg.Plan.HeadwayS = 360

	// Denser urban macro layer.
	cfg.Cells.SpacingM = 500
	cfg.Cells.JitterM = 120

	// Heavier, longer rush (the morning peak spreads).
	cfg.Field.MorningDepth = 0.5
	cfg.Field.EveningDepth = 0.42
	cfg.Field.PeakWidthH = 1.1
	cfg.Field.BusCapKmh = 50 // London buses are slower
	cfg.Field.FreeFlowRatio = 0.6

	// Busier stops.
	cfg.Demand.BaseBeepsPerVisit = 1.8
	return cfg
}
