// Package sim is the city simulator substituting for the paper's
// physical deployment: a time-varying ground-truth traffic field over the
// road network, buses driving their routes and dwelling at stops, a rider
// demand model producing IC-card beeps, participant phones riding along,
// and the taxi-AVL "official traffic" feed used as the evaluation
// comparator (the paper's LTA data from >1,000 taxis).
//
// Everything runs on a virtual clock (seconds since campaign start) and
// is deterministic given the configuration seed.
package sim

import (
	"fmt"
	"math"
)

// Time constants of the virtual clock.
const (
	// DayS is one simulated day in seconds.
	DayS = 86400.0
	// ServiceStartS is when buses start running (06:00).
	ServiceStartS = 6 * 3600.0
	// ServiceEndS is when bus service ends (23:00).
	ServiceEndS = 23 * 3600.0
)

// TimeOfDayS maps an absolute simulation time to seconds since midnight.
func TimeOfDayS(t float64) float64 {
	tod := math.Mod(t, DayS)
	if tod < 0 {
		tod += DayS
	}
	return tod
}

// HourOfDay maps an absolute simulation time to fractional hours since
// midnight.
func HourOfDay(t float64) float64 { return TimeOfDayS(t) / 3600 }

// DayIndex returns the zero-based simulated day of an absolute time.
func DayIndex(t float64) int { return int(math.Floor(t / DayS)) }

// InServiceHours reports whether buses run at the given time.
func InServiceHours(t float64) bool {
	tod := TimeOfDayS(t)
	return tod >= ServiceStartS && tod < ServiceEndS
}

// ClockTime renders an absolute time as "d2 08:30" for reports.
func ClockTime(t float64) string {
	tod := TimeOfDayS(t)
	return fmt.Sprintf("d%d %02d:%02d", DayIndex(t), int(tod/3600), int(tod/60)%60)
}
