package sim

import (
	"busprobe/internal/clock"
	"context"
	"math"
	"testing"

	"busprobe/internal/geo"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/stats"
	"busprobe/internal/transit"
)

func TestClockHelpers(t *testing.T) {
	if clock.TimeOfDayS(2*clock.DayS+3600) != 3600 {
		t.Error("TimeOfDayS wrong")
	}
	if clock.HourOfDay(clock.DayS+8.5*3600) != 8.5 {
		t.Error("HourOfDay wrong")
	}
	if clock.DayIndex(2.5*clock.DayS) != 2 {
		t.Error("DayIndex wrong")
	}
	if !clock.InServiceHours(7 * 3600) {
		t.Error("07:00 should be in service")
	}
	if clock.InServiceHours(3 * 3600) {
		t.Error("03:00 should not be in service")
	}
	if got := clock.Stamp(clock.DayS + 8*3600 + 30*60); got != "d1 08:30" {
		t.Errorf("ClockTime = %q", got)
	}
}

func smallWorldConfig() WorldConfig {
	cfg := DefaultWorldConfig()
	cfg.Road.WidthM = 3000
	cfg.Road.HeightM = 2000
	cfg.Plan.RouteIDs = []transit.RouteID{"179", "243"}
	cfg.Plan.MinStops = 6
	cfg.Plan.MaxStops = 10
	return cfg
}

func buildSmallWorld(t *testing.T) *World {
	t.Helper()
	w, err := BuildWorld(smallWorldConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildWorld(t *testing.T) {
	w := buildSmallWorld(t)
	if w.Net == nil || w.Transit == nil || w.Cells == nil || w.Field == nil || w.Demand == nil {
		t.Fatal("world incomplete")
	}
	if w.Transit.NumRoutes() != 2 {
		t.Errorf("routes = %d", w.Transit.NumRoutes())
	}
}

func TestBuildWorldDeterministicViaMasterSeed(t *testing.T) {
	a := buildSmallWorld(t)
	b := buildSmallWorld(t)
	if a.Cells.NumTowers() != b.Cells.NumTowers() {
		t.Error("tower counts differ")
	}
	for i := range a.Cells.Towers() {
		if a.Cells.Towers()[i].ID != b.Cells.Towers()[i].ID {
			t.Fatal("tower IDs differ between identical builds")
		}
	}
}

func TestFieldRushHourSlowdown(t *testing.T) {
	w := buildSmallWorld(t)
	f := w.Field
	sid := road.SegmentID(0)
	vRush := f.CarKmh(sid, 8.5*3600)
	vOffPeak := f.CarKmh(sid, 12.5*3600)
	if vRush >= vOffPeak {
		t.Errorf("rush %v not slower than off-peak %v", vRush, vOffPeak)
	}
	free := w.Net.Segment(sid).FreeKmh
	if vOffPeak > free*1.05+1e-9 {
		t.Errorf("off-peak %v exceeds free flow %v", vOffPeak, free)
	}
	if vRush < free*DefaultFieldConfig().MinFactor-1e-9 {
		t.Errorf("rush %v below floor", vRush)
	}
}

func TestFieldBusAndTaxiRelations(t *testing.T) {
	w := buildSmallWorld(t)
	f := w.Field
	for _, tt := range []float64{7 * 3600, 8.5 * 3600, 13 * 3600, 18 * 3600} {
		for sid := 0; sid < 10; sid++ {
			id := road.SegmentID(sid)
			car := f.CarKmh(id, tt)
			bus := f.BusKmh(id, tt)
			taxi := f.TaxiKmh(id, tt)
			if bus > car {
				t.Fatalf("bus %v faster than car %v", bus, car)
			}
			if bus > f.Config().BusCapKmh+1e-9 {
				t.Fatalf("bus %v above cap", bus)
			}
			if taxi < car-1e-9 {
				t.Fatalf("taxi %v slower than car %v", taxi, car)
			}
		}
	}
	// Taxi advantage should be larger in light traffic than at rush.
	id := road.SegmentID(3)
	gapLight := f.TaxiKmh(id, 13*3600) - f.CarKmh(id, 13*3600)
	gapRush := f.TaxiKmh(id, 8.5*3600) - f.CarKmh(id, 8.5*3600)
	if gapLight <= gapRush {
		t.Errorf("taxi gap light %v <= rush %v", gapLight, gapRush)
	}
}

func TestFieldConfigValidation(t *testing.T) {
	w := buildSmallWorld(t)
	bad := DefaultFieldConfig()
	bad.MinFactor = 0
	if _, err := NewField(w.Net, bad); err == nil {
		t.Error("want error for zero MinFactor")
	}
	bad = DefaultFieldConfig()
	bad.BusCapKmh = 0
	if _, err := NewField(w.Net, bad); err == nil {
		t.Error("want error for zero bus cap")
	}
}

func TestDemandDiurnalShape(t *testing.T) {
	w := buildSmallWorld(t)
	d := w.Demand
	stop := w.Transit.Stops()[0].ID
	rush := d.MeanBeeps(stop, 8.5*3600)
	lull := d.MeanBeeps(stop, 13*3600)
	if rush <= lull {
		t.Errorf("rush demand %v not above midday %v", rush, lull)
	}
	rng := stats.NewRNG(5)
	var acc stats.Accumulator
	for i := 0; i < 3000; i++ {
		acc.Add(float64(d.BeepsAtVisit(stop, 13*3600, rng)))
	}
	if math.Abs(acc.Mean()-lull) > 0.15*lull+0.1 {
		t.Errorf("empirical mean %v vs model %v", acc.Mean(), lull)
	}
}

func TestDemandValidation(t *testing.T) {
	w := buildSmallWorld(t)
	if _, err := NewDemand(w.Transit, DemandConfig{BaseBeepsPerVisit: -1, RushMultiplier: 2}); err == nil {
		t.Error("want error for negative base")
	}
	if _, err := NewDemand(w.Transit, DemandConfig{BaseBeepsPerVisit: 1, RushMultiplier: 0.5}); err == nil {
		t.Error("want error for multiplier < 1")
	}
}

func TestBusTraversesRoute(t *testing.T) {
	w := buildSmallWorld(t)
	rt := w.Transit.Routes()[0]
	bus, err := NewBus(1, rt, w.Net)
	if err != nil {
		t.Fatal(err)
	}
	visits := 0
	now := 8 * 3600.0
	for !bus.Done() {
		if bus.PendingArrival() {
			visits++
			if bus.StopIdx() != visits-1 {
				t.Fatalf("visit %d at stop index %d", visits, bus.StopIdx())
			}
			// Alternate dwell and skip.
			if visits%2 == 0 {
				if err := bus.Skip(); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := bus.Dwell(now, 10); err != nil {
					t.Fatal(err)
				}
			}
		}
		arrived, err := bus.Advance(now, 1, w.Field)
		if err != nil {
			t.Fatal(err)
		}
		_ = arrived
		now++
		if now > 8*3600+4*3600 {
			t.Fatal("bus did not finish within 4 simulated hours")
		}
	}
	if visits != rt.NumStops() {
		t.Errorf("visited %d stops, route has %d", visits, rt.NumStops())
	}
}

func TestBusTravelTimeRespondsToCongestion(t *testing.T) {
	w := buildSmallWorld(t)
	rt := w.Transit.Routes()[0]
	runAll := func(start float64) float64 {
		bus, err := NewBus(1, rt, w.Net)
		if err != nil {
			t.Fatal(err)
		}
		now := start
		for !bus.Done() {
			if bus.PendingArrival() {
				if err := bus.Skip(); err != nil { // pure driving time
					t.Fatal(err)
				}
			}
			if _, err := bus.Advance(now, 1, w.Field); err != nil {
				t.Fatal(err)
			}
			now++
		}
		return now - start
	}
	rush := runAll(8.2 * 3600)
	offPeak := runAll(13 * 3600)
	if rush <= offPeak {
		t.Errorf("rush run %v s not slower than off-peak %v s", rush, offPeak)
	}
}

func TestBusAPIErrors(t *testing.T) {
	w := buildSmallWorld(t)
	rt := w.Transit.Routes()[0]
	bus, err := NewBus(1, rt, w.Net)
	if err != nil {
		t.Fatal(err)
	}
	// Advancing with unresolved arrival is a programming error.
	if _, err := bus.Advance(0, 1, w.Field); err == nil {
		t.Error("want error for unresolved arrival")
	}
	if err := bus.Dwell(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := bus.Dwell(0, 10); err == nil {
		t.Error("want error for double dwell")
	}
	if err := bus.Skip(); err == nil {
		t.Error("want error for skip while dwelling")
	}
	if _, err := NewBus(1, nil, w.Net); err == nil {
		t.Error("want error for nil route")
	}
}

func TestOfficialFeed(t *testing.T) {
	w := buildSmallWorld(t)
	feed, err := NewOfficialFeed(w.Field, 300, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sid := road.SegmentID(2)
	// Deterministic within a window.
	a := feed.SpeedKmh(sid, 910)
	b := feed.SpeedKmh(sid, 1190) // same 5-min window [900, 1200)
	if a != b {
		t.Error("same window should give same value")
	}
	if feed.WindowStart(1234) != 1200 {
		t.Errorf("WindowStart = %v", feed.WindowStart(1234))
	}
	// Tracks the diurnal pattern.
	rush := feed.SpeedKmh(sid, 8.5*3600)
	off := feed.SpeedKmh(sid, 13*3600)
	if rush >= off {
		t.Errorf("official rush %v not below off-peak %v", rush, off)
	}
	if _, err := NewOfficialFeed(nil, 300, 2, 1); err == nil {
		t.Error("want error for nil field")
	}
	if _, err := NewOfficialFeed(w.Field, 0, 2, 1); err == nil {
		t.Error("want error for zero window")
	}
}

// tripSink collects campaign uploads.
type tripSink struct {
	trips []probe.Trip
}

func (s *tripSink) Upload(_ context.Context, tr probe.Trip) error {
	s.trips = append(s.trips, tr)
	return nil
}

func TestCampaignEndToEnd(t *testing.T) {
	w := buildSmallWorld(t)
	cfg := DefaultCampaignConfig()
	cfg.Days = 1
	cfg.Participants = 6
	cfg.SparseTripsPerDay = 4
	cfg.IntensiveFromDay = 99
	sink := &tripSink{}
	var visits, skipped int
	camp, err := NewCampaign(w, cfg, sink, func(v StopVisit) {
		visits++
		if v.Skipped {
			skipped++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.BusRuns == 0 || st.Visits == 0 || st.Beeps == 0 {
		t.Fatalf("campaign produced nothing: %+v", st)
	}
	if visits != st.Visits {
		t.Errorf("observer saw %d visits, stats %d", visits, st.Visits)
	}
	if skipped == 0 {
		t.Error("expected some skipped stops (missing-stop path)")
	}
	if len(sink.trips) == 0 {
		t.Fatal("no trips uploaded")
	}
	for _, tr := range sink.trips {
		if err := tr.Validate(); err != nil {
			t.Fatalf("uploaded trip invalid: %v", err)
		}
		if tr.DurationS() < 0 {
			t.Fatal("negative duration")
		}
	}
	if st.ParticipantTrips == 0 {
		t.Error("no participant rides completed")
	}
	// Most riders' trips should span multiple stop visits.
	multi := 0
	for _, tr := range sink.trips {
		if len(tr.Samples) >= 4 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-stop trips recorded")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	run := func() (CampaignStats, int) {
		w := buildSmallWorld(t)
		cfg := DefaultCampaignConfig()
		cfg.Days = 1
		cfg.Participants = 4
		cfg.SparseTripsPerDay = 3
		cfg.IntensiveFromDay = 99
		sink := &tripSink{}
		camp, err := NewCampaign(w, cfg, sink, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := camp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return st, len(sink.trips)
	}
	s1, n1 := run()
	s2, n2 := run()
	if s1 != s2 || n1 != n2 {
		t.Errorf("campaign not deterministic: %+v/%d vs %+v/%d", s1, n1, s2, n2)
	}
}

func TestCampaignValidation(t *testing.T) {
	w := buildSmallWorld(t)
	sink := &tripSink{}
	bad := DefaultCampaignConfig()
	bad.Days = 0
	if _, err := NewCampaign(w, bad, sink, nil); err == nil {
		t.Error("want error for zero days")
	}
	if _, err := NewCampaign(nil, DefaultCampaignConfig(), sink, nil); err == nil {
		t.Error("want error for nil world")
	}
	if _, err := NewCampaign(w, DefaultCampaignConfig(), nil, nil); err == nil {
		t.Error("want error for nil uploader")
	}
}

func TestIntensivePhaseProducesMoreTrips(t *testing.T) {
	w := buildSmallWorld(t)
	run := func(intensiveFrom int) int {
		cfg := DefaultCampaignConfig()
		cfg.Days = 2
		cfg.Participants = 8
		cfg.SparseTripsPerDay = 1
		cfg.IntensiveTripsPerDay = 6
		cfg.IntensiveFromDay = intensiveFrom
		sink := &tripSink{}
		camp, err := NewCampaign(w, cfg, sink, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := camp.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return len(sink.trips)
	}
	sparseOnly := run(99)
	withIntensive := run(0)
	if withIntensive <= sparseOnly {
		t.Errorf("intensive %d not above sparse %d", withIntensive, sparseOnly)
	}
}

func TestTrainDecoysFiltered(t *testing.T) {
	// Train-station decoys must never create trips or samples: the same
	// campaign with and without decoys uploads identical trip counts.
	run := func(decoys float64) (CampaignStats, int) {
		w := buildSmallWorld(t)
		cfg := DefaultCampaignConfig()
		cfg.Days = 1
		cfg.Participants = 6
		cfg.SparseTripsPerDay = 3
		cfg.IntensiveFromDay = 99
		cfg.TrainDecoysPerDay = decoys
		sink := &tripSink{}
		camp, err := NewCampaign(w, cfg, sink, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := camp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return st, len(sink.trips)
	}
	stClean, nClean := run(0)
	stDecoy, nDecoy := run(5)
	if stClean.TrainDecoys != 0 {
		t.Errorf("clean run saw %d decoys", stClean.TrainDecoys)
	}
	if stDecoy.TrainDecoys == 0 {
		t.Fatal("no decoys delivered")
	}
	if nDecoy != nClean {
		t.Errorf("decoys changed trip count: %d vs %d", nDecoy, nClean)
	}
}

func TestCampaignEnergyAccounting(t *testing.T) {
	w := buildSmallWorld(t)
	cfg := DefaultCampaignConfig()
	cfg.Days = 1
	cfg.Participants = 6
	cfg.SparseTripsPerDay = 4
	cfg.IntensiveFromDay = 99
	sink := &tripSink{}
	camp, err := NewCampaign(w, cfg, sink, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.ParticipantTrips == 0 {
		t.Skip("no rides this seed")
	}
	if st.RidingSeconds <= 0 {
		t.Fatal("no riding time recorded")
	}
	if st.AppEnergyJ <= 0 {
		t.Fatal("no energy recorded")
	}
	// Energy per riding second must sit between the two device
	// profiles' app draws (82 and 96 mW -> 0.082..0.096 J/s).
	perS := st.AppEnergyJ / st.RidingSeconds
	if perS < 0.080 || perS > 0.098 {
		t.Errorf("energy rate %v J/s outside profile range", perS)
	}
}

func TestLondonPresetBuilds(t *testing.T) {
	cfg := LondonWorldConfig()
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Transit.NumRoutes() != 10 {
		t.Errorf("routes = %d, want 10", w.Transit.NumRoutes())
	}
	if got := w.Net.BBox().Width(); got < 7800 || got > 8300 {
		t.Errorf("extent = %v", got)
	}
	// London buses are slower than Singapore's.
	if w.Field.Config().BusCapKmh >= DefaultFieldConfig().BusCapKmh {
		t.Error("London bus cap should be lower")
	}
	// The denser plan yields more stops than the default city.
	if w.Transit.NumStops() < 120 {
		t.Errorf("stops = %d", w.Transit.NumStops())
	}
}

func TestBusPosWhileDriving(t *testing.T) {
	w := buildSmallWorld(t)
	rt := w.Transit.Routes()[0]
	bus, err := NewBus(1, rt, w.Net)
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Dwell(0, 5); err != nil {
		t.Fatal(err)
	}
	start := bus.Pos()
	now := 0.0
	// Advance into the driving phase and check the position leaves the
	// stop and stays on the leg's segment geometry.
	for i := 0; i < 30; i++ {
		if _, err := bus.Advance(now, 1, w.Field); err != nil {
			t.Fatal(err)
		}
		now++
	}
	p := bus.Pos()
	if p == start {
		t.Fatal("bus did not move")
	}
	leg := rt.Leg(w.Net, 0)
	onLeg := false
	for _, sid := range leg.Segments {
		shape := w.Net.Segment(sid).Shape
		for s := 0.0; s <= shape.Length(); s += 10 {
			if distXY(shape.At(s), p) < 15 {
				onLeg = true
			}
		}
	}
	if !onLeg {
		t.Errorf("driving position %v off the leg geometry", p)
	}
}

func distXY(a, b geo.XY) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

func TestCampaignStatsAccessor(t *testing.T) {
	w := buildSmallWorld(t)
	cfg := DefaultCampaignConfig()
	cfg.Days = 1
	cfg.Participants = 2
	cfg.SparseTripsPerDay = 1
	cfg.IntensiveFromDay = 99
	camp, err := NewCampaign(w, cfg, &tripSink{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if camp.Stats().BusRuns != 0 {
		t.Error("stats non-zero before run")
	}
	want, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if camp.Stats() != want {
		t.Error("Stats() disagrees with Run result")
	}
}

func TestNegativeTimeOfDay(t *testing.T) {
	if got := clock.TimeOfDayS(-3600); got != clock.DayS-3600 {
		t.Errorf("clock.TimeOfDayS(-3600) = %v", got)
	}
}

func TestCampaignConfigValidation(t *testing.T) {
	base := DefaultCampaignConfig()
	cases := []func(*CampaignConfig){
		func(c *CampaignConfig) { c.Days = 0 },
		func(c *CampaignConfig) { c.Participants = 0 },
		func(c *CampaignConfig) { c.TickS = 0 },
		func(c *CampaignConfig) { c.SparseTripsPerDay = -1 },
		func(c *CampaignConfig) { c.IntensiveTripsPerDay = -1 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFieldValidationMore(t *testing.T) {
	w := buildSmallWorld(t)
	bad := DefaultFieldConfig()
	bad.PeakWidthH = 0
	if _, err := NewField(w.Net, bad); err == nil {
		t.Error("want error for zero peak width")
	}
	bad = DefaultFieldConfig()
	bad.FreeFlowRatio = 0.05 // below MinFactor
	if _, err := NewField(w.Net, bad); err == nil {
		t.Error("want error for FreeFlowRatio below MinFactor")
	}
	bad = DefaultFieldConfig()
	bad.BusFactor = 0
	if _, err := NewField(w.Net, bad); err == nil {
		t.Error("want error for zero bus factor")
	}
}

func TestBuildWorldPropagatesSubErrors(t *testing.T) {
	cfg := smallWorldConfig()
	cfg.Seed = 0 // keep sub-seeds as given
	cfg.Road.SpacingM = 0
	if _, err := BuildWorld(cfg); err == nil {
		t.Error("want error for broken road config")
	}
	cfg = smallWorldConfig()
	cfg.Seed = 0
	cfg.Plan.RouteIDs = nil
	if _, err := BuildWorld(cfg); err == nil {
		t.Error("want error for empty plan")
	}
	cfg = smallWorldConfig()
	cfg.Seed = 0
	cfg.Cells.SpacingM = 0
	if _, err := BuildWorld(cfg); err == nil {
		t.Error("want error for broken cells config")
	}
	cfg = smallWorldConfig()
	cfg.Seed = 0
	cfg.Field.MinFactor = 0
	if _, err := BuildWorld(cfg); err == nil {
		t.Error("want error for broken field config")
	}
	cfg = smallWorldConfig()
	cfg.Seed = 0
	cfg.Demand.BaseBeepsPerVisit = -1
	if _, err := BuildWorld(cfg); err == nil {
		t.Error("want error for broken demand config")
	}
}
