package sim

import (
	"context"
	"fmt"

	"busprobe/internal/probe"
)

// DefaultCohortSize is the number of riders simulated concurrently by
// StreamTrips when the caller does not choose one. It bounds the
// generator's working set: memory scales with the cohort, not the
// deployment, so a million-rider surge costs the same heap as a
// thousand-rider one.
const DefaultCohortSize = 1024

// StreamConfig parameterizes a streaming load-generation run.
type StreamConfig struct {
	// Campaign is the per-rider campaign shape. Participants is the
	// TOTAL rider population of the run; StreamTrips partitions it into
	// cohorts internally. UploadBatchSize must be 0 or 1 — trips are
	// emitted one at a time, in conclusion order.
	Campaign CampaignConfig
	// CohortSize caps how many riders are materialized at once
	// (default DefaultCohortSize).
	CohortSize int
}

// StreamStats summarizes a streaming run.
type StreamStats struct {
	// Riders is the total rider population simulated.
	Riders int
	// Cohorts is how many independent cohorts the population split into.
	Cohorts int
	// Trips counts trips emitted through the callback.
	Trips int
	// Campaign accumulates the per-cohort campaign stats.
	Campaign CampaignStats
}

// emitUploader adapts the stream callback to phone.Uploader so a
// campaign delivers concluded trips straight out of the generator
// without materializing them.
type emitUploader struct {
	emit  func(probe.Trip) error
	trips *int
}

// Upload implements phone.Uploader.
func (u *emitUploader) Upload(_ context.Context, t probe.Trip) error {
	*u.trips++
	return u.emit(t)
}

// StreamTrips generates the upload stream of a cfg.Campaign.Participants-
// rider deployment, delivering each concluded trip to emit instead of
// materializing the population: riders are simulated in cohorts of
// CohortSize, and each cohort's state is released before the next
// starts, so heap stays flat as the rider count grows.
//
// Determinism: the stream is a pure function of the configuration.
// Rider identities and RNG streams key off the rider's global index
// (cohort k covers riders [k*CohortSize, (k+1)*CohortSize) via
// CampaignConfig.ParticipantOffset), so the same seed produces a
// byte-identical stream on every run. With CohortSize >=
// Participants the single cohort runs the exact RecordTrips code path
// and the stream equals its output trip for trip. Across cohort
// boundaries the populations are independent (each cohort rides its
// own deterministic copy of the day's bus service), which models
// disjoint rider sub-fleets rather than one shared fleet — the right
// trade for a load generator that must scale beyond what a monolithic
// simulation can hold.
//
// An emit error aborts the run and is returned; the stats cover what
// was generated up to the abort.
func StreamTrips(ctx context.Context, w *World, cfg StreamConfig, emit func(probe.Trip) error) (StreamStats, error) {
	var out StreamStats
	if w == nil || emit == nil {
		return out, fmt.Errorf("sim: stream needs a world and an emit callback")
	}
	base := cfg.Campaign
	if err := base.Validate(); err != nil {
		return out, err
	}
	if base.UploadBatchSize > 1 {
		return out, fmt.Errorf("sim: stream emits trips one at a time; batch upstream, not in the generator")
	}
	size := cfg.CohortSize
	if size <= 0 {
		size = DefaultCohortSize
	}
	total := base.Participants
	for start := 0; start < total; start += size {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		ccfg := base
		ccfg.Participants = total - start
		if ccfg.Participants > size {
			ccfg.Participants = size
		}
		ccfg.ParticipantOffset = base.ParticipantOffset + start
		camp, err := NewCampaign(w, ccfg, &emitUploader{emit: emit, trips: &out.Trips}, nil)
		if err != nil {
			return out, err
		}
		st, err := camp.Run(ctx)
		out.Campaign.accumulate(st)
		out.Cohorts++
		if err != nil {
			return out, fmt.Errorf("sim: stream cohort %d (riders %d+): %w", out.Cohorts-1, ccfg.ParticipantOffset, err)
		}
	}
	out.Riders = total
	return out, nil
}

// accumulate folds another run's counters into s.
func (s *CampaignStats) accumulate(o CampaignStats) {
	s.Visits += o.Visits
	s.SkippedVisits += o.SkippedVisits
	s.Beeps += o.Beeps
	s.BusRuns += o.BusRuns
	s.ParticipantTrips += o.ParticipantTrips
	s.ScansTaken += o.ScansTaken
	s.TrainDecoys += o.TrainDecoys
	s.BatchFlushes += o.BatchFlushes
	s.UploadFailures += o.UploadFailures
	s.UploadsDropped += o.UploadsDropped
	s.UploadsShed += o.UploadsShed
	s.UploadsInvalid += o.UploadsInvalid
	s.UploadDuplicates += o.UploadDuplicates
	s.FaultTripsOffered += o.FaultTripsOffered
	s.FaultTripsDropped += o.FaultTripsDropped
	s.FaultTripsDuplicated += o.FaultTripsDuplicated
	s.FaultTripsReordered += o.FaultTripsReordered
	s.FaultTripsDelayed += o.FaultTripsDelayed
	s.FaultTripsCorrupted += o.FaultTripsCorrupted
	s.FaultTripsDelivered += o.FaultTripsDelivered
	s.UploadRetries += o.UploadRetries
	s.UploadSpoolRecovered += o.UploadSpoolRecovered
	s.RidingSeconds += o.RidingSeconds
	s.AppEnergyJ += o.AppEnergyJ
}
