package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"busprobe/internal/faults"
	"busprobe/internal/probe"
)

// cannedBatchSink answers UploadBatch with a fixed error per trip ID.
type cannedBatchSink struct {
	errs    map[string]error
	batches int
}

func (s *cannedBatchSink) Upload(_ context.Context, t probe.Trip) error { return s.errs[t.ID] }

func (s *cannedBatchSink) UploadBatch(_ context.Context, trips []probe.Trip) []error {
	s.batches++
	out := make([]error, len(trips))
	for i, t := range trips {
		out[i] = s.errs[t.ID]
	}
	return out
}

func TestBatchFlushClassifiesPerTripErrors(t *testing.T) {
	// One flush carrying every outcome: success, duplicate (absorbed),
	// injected drop, shed, invalid, and an unclassified transport error.
	sink := &cannedBatchSink{errs: map[string]error{
		"ok":      nil,
		"dup":     fmt.Errorf("server: %w", probe.ErrDuplicateTrip),
		"lost":    faults.ErrDropped,
		"shed":    fmt.Errorf("server: %w", probe.ErrOverloaded),
		"invalid": fmt.Errorf("server: %w", probe.ErrInvalidTrip),
		"unknown": errors.New("connection reset"),
	}}
	var st CampaignStats
	var lastErr error
	u := &batchingUploader{sink: sink, size: 100, stats: &st, lastErr: &lastErr}
	for _, id := range []string{"ok", "dup", "lost", "shed", "invalid", "unknown"} {
		if err := u.Upload(context.Background(), probe.Trip{ID: id}); err != nil {
			t.Fatalf("buffered upload %q returned %v", id, err)
		}
	}
	u.flush(context.Background())

	if sink.batches != 1 || st.BatchFlushes != 1 {
		t.Fatalf("batches = %d, flushes = %d", sink.batches, st.BatchFlushes)
	}
	if st.UploadDuplicates != 1 {
		t.Errorf("UploadDuplicates = %d", st.UploadDuplicates)
	}
	if st.UploadFailures != 4 {
		t.Errorf("UploadFailures = %d, want 4 (dup is not a failure)", st.UploadFailures)
	}
	if st.UploadsDropped != 1 || st.UploadsShed != 1 || st.UploadsInvalid != 1 {
		t.Errorf("classified = dropped %d, shed %d, invalid %d",
			st.UploadsDropped, st.UploadsShed, st.UploadsInvalid)
	}
	if lastErr == nil || lastErr.Error() != "connection reset" {
		t.Errorf("lastErr = %v, want the final failing trip's error", lastErr)
	}

	// An empty re-flush is a no-op.
	u.flush(context.Background())
	if st.BatchFlushes != 1 {
		t.Errorf("empty flush counted: %d", st.BatchFlushes)
	}
}

func TestCountingUploaderClassifies(t *testing.T) {
	sink := &cannedBatchSink{errs: map[string]error{
		"dup":  fmt.Errorf("server: %w", probe.ErrDuplicateTrip),
		"lost": faults.ErrDropped,
	}}
	var st CampaignStats
	var lastErr error
	u := &countingUploader{sink: sink, stats: &st, lastErr: &lastErr}
	if err := u.Upload(context.Background(), probe.Trip{ID: "dup"}); !errors.Is(err, probe.ErrDuplicateTrip) {
		t.Fatalf("duplicate error not passed through: %v", err)
	}
	if err := u.Upload(context.Background(), probe.Trip{ID: "lost"}); !errors.Is(err, faults.ErrDropped) {
		t.Fatalf("drop error not passed through: %v", err)
	}
	if st.UploadDuplicates != 1 || st.UploadFailures != 1 || st.UploadsDropped != 1 {
		t.Errorf("stats = %+v", st)
	}
	if !errors.Is(lastErr, faults.ErrDropped) {
		t.Errorf("lastErr = %v", lastErr)
	}
}

func TestCampaignConfigFaultValidation(t *testing.T) {
	cfg := DefaultCampaignConfig()
	cfg.Faults.DropRate = 2
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-range fault rate accepted")
	}
	cfg = DefaultCampaignConfig()
	cfg.UploadRetry.MaxAttempts = 1
	cfg.UploadRetry.JitterFrac = 2
	if err := cfg.Validate(); err == nil {
		t.Error("invalid enabled retry policy accepted")
	}
}
