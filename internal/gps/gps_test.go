package gps

import (
	"math"
	"testing"

	"busprobe/internal/geo"
	"busprobe/internal/stats"
)

func TestErrorModelQuantiles(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, m := range []ErrorModel{StationaryDowntown, OnBusDowntown} {
		e := &stats.ECDF{}
		for i := 0; i < 50000; i++ {
			v, err := m.SampleError(rng)
			if err != nil {
				t.Fatal(err)
			}
			e.Add(v)
		}
		if med := e.Median(); math.Abs(med-m.MedianM)/m.MedianM > 0.05 {
			t.Errorf("%+v: median = %v", m, med)
		}
		if p90 := e.Percentile(90); math.Abs(p90-m.P90M)/m.P90M > 0.05 {
			t.Errorf("%+v: p90 = %v", m, p90)
		}
	}
}

func TestOnBusWorseThanStationary(t *testing.T) {
	rng := stats.NewRNG(2)
	var st, ob stats.Accumulator
	for i := 0; i < 20000; i++ {
		v1, err := StationaryDowntown.SampleError(rng)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := OnBusDowntown.SampleError(rng)
		if err != nil {
			t.Fatal(err)
		}
		st.Add(v1)
		ob.Add(v2)
	}
	if ob.Mean() <= st.Mean() {
		t.Errorf("on-bus error %v not worse than stationary %v", ob.Mean(), st.Mean())
	}
}

func TestInvalidModels(t *testing.T) {
	bad := []ErrorModel{
		{MedianM: 0, P90M: 100},
		{MedianM: -5, P90M: 100},
		{MedianM: 50, P90M: 40},
		{MedianM: 50, P90M: 50},
	}
	rng := stats.NewRNG(3)
	for _, m := range bad {
		if _, err := m.SampleError(rng); err == nil {
			t.Errorf("model %+v should be rejected", m)
		}
		if _, err := NewReceiver(m, 2, rng); err == nil {
			t.Errorf("receiver with model %+v should be rejected", m)
		}
	}
}

func TestNewReceiverValidation(t *testing.T) {
	rng := stats.NewRNG(4)
	if _, err := NewReceiver(StationaryDowntown, 0, rng); err == nil {
		t.Error("want error for zero interval")
	}
	if _, err := NewReceiver(StationaryDowntown, 2, rng); err != nil {
		t.Errorf("valid receiver rejected: %v", err)
	}
}

func TestSampleCentersOnTruth(t *testing.T) {
	rng := stats.NewRNG(5)
	rec, err := NewReceiver(StationaryDowntown, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	truth := geo.XY{X: 1000, Y: 2000}
	var dx, dy stats.Accumulator
	for i := 0; i < 20000; i++ {
		f := rec.Sample(truth, float64(i)*2)
		dx.Add(f.Pos.X - truth.X)
		dy.Add(f.Pos.Y - truth.Y)
		if got := geo.DistM(f.Pos, truth); math.Abs(got-f.ErrM) > 1e-9 {
			t.Fatalf("reported ErrM %v != actual %v", f.ErrM, got)
		}
	}
	// Errors are isotropic, so offsets average out.
	if math.Abs(dx.Mean()) > 3 || math.Abs(dy.Mean()) > 3 {
		t.Errorf("biased fixes: mean offset (%v, %v)", dx.Mean(), dy.Mean())
	}
}

func TestNearestStop(t *testing.T) {
	stops := []geo.XY{{X: 0, Y: 0}, {X: 500, Y: 0}, {X: 1000, Y: 0}}
	fix := Fix{Pos: geo.XY{X: 480, Y: 30}}
	idx, d := NearestStop(fix, stops)
	if idx != 1 {
		t.Errorf("matched stop %d, want 1", idx)
	}
	if math.Abs(d-math.Hypot(20, 30)) > 1e-9 {
		t.Errorf("distance = %v", d)
	}
	if idx, d := NearestStop(fix, nil); idx != -1 || !math.IsInf(d, 1) {
		t.Error("empty candidates should give (-1, +Inf)")
	}
}

func TestGPSConfusesAdjacentStops(t *testing.T) {
	// With 500 m stop spacing and on-bus GPS error, a nontrivial share
	// of fixes taken exactly at a stop match the wrong stop — the
	// paper's motivation for not using GPS.
	rng := stats.NewRNG(6)
	rec, err := NewReceiver(OnBusDowntown, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	stops := make([]geo.XY, 10)
	for i := range stops {
		stops[i] = geo.XY{X: float64(i) * 500, Y: 0}
	}
	wrong := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		f := rec.Sample(stops[5], 0)
		if idx, _ := NearestStop(f, stops); idx != 5 {
			wrong++
		}
	}
	rate := float64(wrong) / trials
	if rate < 0.02 || rate > 0.5 {
		t.Errorf("wrong-stop rate = %v, expected meaningful but not dominant", rate)
	}
}
