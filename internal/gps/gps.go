// Package gps models GPS positioning in the urban canyon, calibrated to
// the paper's Fig. 1 measurement study in downtown Singapore: stationary
// phones see a 40 m median / 175 m 90th-percentile error, and phones on
// buses (attenuated through the vehicle body) see 68 m / 300 m. The
// package exists for the baseline comparison — the system itself avoids
// GPS for exactly these errors and its ~340 mW draw (Table III).
package gps

import (
	"fmt"
	"math"

	"busprobe/internal/geo"
	"busprobe/internal/stats"
)

// ErrorModel is a log-normal radial error distribution specified by its
// median and 90th percentile, the two statistics Fig. 1 reports.
type ErrorModel struct {
	MedianM float64
	P90M    float64
}

// StationaryDowntown is Fig. 1's stationary-phone error distribution.
var StationaryDowntown = ErrorModel{MedianM: 40, P90M: 175}

// OnBusDowntown is Fig. 1's on-bus error distribution (GPS further
// attenuated inside the vehicle).
var OnBusDowntown = ErrorModel{MedianM: 68, P90M: 300}

// z90 is the standard normal 90th-percentile quantile.
const z90 = 1.2815515655446004

// params derives the log-normal (mu, sigma) from the two quantiles.
func (m ErrorModel) params() (mu, sigma float64, err error) {
	if m.MedianM <= 0 || m.P90M <= m.MedianM {
		return 0, 0, fmt.Errorf("gps: invalid error model %+v", m)
	}
	mu = math.Log(m.MedianM)
	sigma = math.Log(m.P90M/m.MedianM) / z90
	return mu, sigma, nil
}

// SampleError draws one radial error magnitude in meters.
func (m ErrorModel) SampleError(rng *stats.RNG) (float64, error) {
	mu, sigma, err := m.params()
	if err != nil {
		return 0, err
	}
	return rng.LogNormal(mu, sigma), nil
}

// Fix is one GPS position report.
type Fix struct {
	// Pos is the reported position (truth plus error).
	Pos geo.XY
	// TimeS is the fix timestamp in simulation seconds.
	TimeS float64
	// ErrM is the true radial error (available in simulation for
	// evaluation; a real receiver does not know it).
	ErrM float64
}

// Receiver simulates a phone GPS receiver at a configured sampling rate.
type Receiver struct {
	model ErrorModel
	// IntervalS is the sampling interval; the paper evaluates 0.5 Hz
	// (2 s) tracking as "already considered very low for vehicle
	// tracking".
	IntervalS float64
	rng       *stats.RNG
}

// NewReceiver returns a receiver with the given error model and sampling
// interval, drawing randomness from rng.
func NewReceiver(model ErrorModel, intervalS float64, rng *stats.RNG) (*Receiver, error) {
	if intervalS <= 0 {
		return nil, fmt.Errorf("gps: non-positive interval %v", intervalS)
	}
	if _, _, err := model.params(); err != nil {
		return nil, err
	}
	return &Receiver{model: model, IntervalS: intervalS, rng: rng}, nil
}

// Sample produces a fix for the true position at the given time.
func (r *Receiver) Sample(truth geo.XY, timeS float64) Fix {
	errM, err := r.model.SampleError(r.rng)
	if err != nil {
		// Model was validated at construction; this cannot happen.
		panic(err)
	}
	theta := r.rng.Range(0, 2*math.Pi)
	return Fix{
		Pos: geo.XY{
			X: truth.X + errM*math.Cos(theta),
			Y: truth.Y + errM*math.Sin(theta),
		},
		TimeS: timeS,
		ErrM:  errM,
	}
}

// PowerMW is the measured continuous-tracking GPS power draw from Table
// III (HTC Sensation: 340 mW; Nexus One: 333 mW).
const PowerMW = 340.0

// NearestStop matches a fix to the closest of the candidate positions,
// the naive map-matching step of a GPS probe baseline. It returns the
// index of the winner and its distance, or (-1, +Inf) for no candidates.
func NearestStop(fix Fix, stops []geo.XY) (int, float64) {
	best, bd := -1, math.Inf(1)
	for i, s := range stops {
		if d := geo.DistM(fix.Pos, s); d < bd {
			best, bd = i, d
		}
	}
	return best, bd
}
