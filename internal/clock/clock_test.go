package clock

import (
	"sync"
	"testing"
	"time"
)

func TestWallAdvances(t *testing.T) {
	var c Clock = Wall{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}

func TestFakeStepsPerRead(t *testing.T) {
	start := time.Date(2015, 6, 29, 9, 0, 0, 0, time.UTC) // ICDCS'15
	f := NewFake(start, time.Millisecond)
	if got := f.Now(); !got.Equal(start) {
		t.Fatalf("first read = %v, want %v", got, start)
	}
	if got := f.Now(); !got.Equal(start.Add(time.Millisecond)) {
		t.Fatalf("second read = %v, want start+1ms", got)
	}
	if d := Since(f, start); d != 2*time.Millisecond {
		t.Fatalf("Since = %v, want 2ms", d)
	}
}

func TestFakeZeroStepFreezes(t *testing.T) {
	start := time.Unix(0, 0)
	f := NewFake(start, 0)
	for i := 0; i < 3; i++ {
		if got := f.Now(); !got.Equal(start) {
			t.Fatalf("read %d = %v, want frozen %v", i, got, start)
		}
	}
	f.Advance(time.Second)
	if got := f.Now(); !got.Equal(start.Add(time.Second)) {
		t.Fatalf("after Advance = %v, want start+1s", got)
	}
}

func TestFakeConcurrentReadsAreDistinct(t *testing.T) {
	f := NewFake(time.Unix(0, 0), time.Nanosecond)
	const n = 64
	var wg sync.WaitGroup
	got := make([]time.Time, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = f.Now()
		}(i)
	}
	wg.Wait()
	seen := make(map[int64]bool, n)
	for _, ts := range got {
		if seen[ts.UnixNano()] {
			t.Fatalf("duplicate fake timestamp %v", ts)
		}
		seen[ts.UnixNano()] = true
	}
}
