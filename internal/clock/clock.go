// Package clock is the sanctioned home of wall-clock access. The
// backend's headline guarantee — byte-identical /v1/traffic across
// monolith vs. N shards and under dup/reorder/delay faults — requires
// that no deterministic path reads the wall clock or the global RNG.
// The busprobe-vet nowallclock analyzer enforces the rule repo-wide:
// time.Now and time.Since are forbidden everywhere except this package
// and sites annotated //lint:allow nowallclock <reason>. Code that
// needs durations (per-stage latency metrics, benchmarks) takes a
// Clock; production passes Wall, tests pass a Fake and get exact,
// reproducible timings.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts "what time is it" so callers can be run against the
// wall clock in production and a deterministic source in tests.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// Wall reads the real wall clock. Use it at entry points (main, HTTP
// handlers, genuine benchmarks); inject it, don't call time.Now.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time {
	return time.Now() //lint:allow nowallclock the one sanctioned wall-clock read
}

// Since returns the elapsed time between c.Now() and t, replacing the
// forbidden argless-now time.Since.
func Since(c Clock, t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Fake is a deterministic clock for tests: it starts at a fixed
// instant and advances by a fixed step on every Now call, so code
// timing an interval with two reads observes exactly one step per
// interval regardless of host speed or scheduling. Safe for concurrent
// use (stage hooks run from many goroutines).
type Fake struct {
	mu   sync.Mutex
	now  time.Time     //lint:guardedby mu
	step time.Duration //lint:guardedby mu
}

// NewFake returns a Fake starting at start that advances by step per
// Now call. A zero step freezes the clock.
func NewFake(start time.Time, step time.Duration) *Fake {
	return &Fake{now: start, step: step}
}

// Now implements Clock: it returns the current fake instant and then
// advances it by the configured step.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.now
	f.now = f.now.Add(f.step)
	return t
}

// Advance moves the fake clock forward by d without consuming a step.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}
