package clock

import (
	"fmt"
	"math"
)

// Virtual-time helpers for the simulated deployment. The simulator, the
// evaluation harness, and the examples all run on one virtual clock —
// float64 seconds since campaign start — and these helpers are its
// single home (they used to live in internal/sim, which left the repo
// with two clock vocabularies).

// Time constants of the virtual clock.
const (
	// DayS is one simulated day in seconds.
	DayS = 86400.0
	// ServiceStartS is when the simulated city's buses start running
	// (06:00).
	ServiceStartS = 6 * 3600.0
	// ServiceEndS is when bus service ends (23:00).
	ServiceEndS = 23 * 3600.0
)

// TimeOfDayS maps an absolute simulation time to seconds since midnight.
func TimeOfDayS(t float64) float64 {
	tod := math.Mod(t, DayS)
	if tod < 0 {
		tod += DayS
	}
	return tod
}

// HourOfDay maps an absolute simulation time to fractional hours since
// midnight.
func HourOfDay(t float64) float64 { return TimeOfDayS(t) / 3600 }

// DayIndex returns the zero-based simulated day of an absolute time.
func DayIndex(t float64) int { return int(math.Floor(t / DayS)) }

// InServiceHours reports whether buses run at the given time.
func InServiceHours(t float64) bool {
	tod := TimeOfDayS(t)
	return tod >= ServiceStartS && tod < ServiceEndS
}

// Stamp renders an absolute virtual time as "d2 08:30" for reports.
func Stamp(t float64) string {
	tod := TimeOfDayS(t)
	return fmt.Sprintf("d%d %02d:%02d", DayIndex(t), int(tod/3600), int(tod/60)%60)
}
