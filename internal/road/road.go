// Package road models the urban road network that buses, taxis and the
// ground-truth traffic field operate on: a directed graph of nodes
// (intersections) and segments (directed road edges with geometry and a
// free-flow speed), plus a generator for synthetic arterial-grid cities
// shaped like the paper's 7 km x 4 km Jurong West study region.
package road

import (
	"fmt"
	"sort"

	"busprobe/internal/geo"
)

// NodeID identifies an intersection.
type NodeID int

// SegmentID identifies a directed road segment.
type SegmentID int

// Class describes the road hierarchy tier of a segment.
type Class int

const (
	// ClassLocal is a minor street (lower free-flow speed).
	ClassLocal Class = iota
	// ClassArterial is a major corridor (higher free-flow speed).
	ClassArterial
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassArterial:
		return "arterial"
	case ClassLocal:
		return "local"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Node is a road-network intersection.
type Node struct {
	ID  NodeID
	Pos geo.XY
}

// Segment is a directed road edge. Two-way roads are represented as two
// segments with swapped endpoints; Reverse links them.
type Segment struct {
	ID      SegmentID
	From    NodeID
	To      NodeID
	Shape   *geo.Polyline
	Class   Class
	FreeKmh float64   // free-flow automobile speed
	Reverse SegmentID // opposite direction, or -1 for one-way
	Name    string
}

// LengthM returns the segment's arc length in meters.
func (s *Segment) LengthM() float64 { return s.Shape.Length() }

// FreeTravelS returns the free-flow traversal time in seconds, the "a"
// term of the paper's Eq. 3 (road length / free travel speed).
func (s *Segment) FreeTravelS() float64 {
	return s.LengthM() / (s.FreeKmh / 3.6)
}

// Network is an immutable road graph. Build one with NewNetwork or the
// grid generator; concurrent readers are safe once built.
type Network struct {
	nodes    []Node
	segments []*Segment
	out      map[NodeID][]SegmentID
}

// NewNetwork assembles a network from nodes and segments. Segment and
// node IDs must be dense, zero-based, and match their slice index; this
// is validated and violations panic, since they indicate construction
// bugs rather than runtime conditions.
func NewNetwork(nodes []Node, segments []*Segment) *Network {
	n := &Network{
		nodes:    make([]Node, len(nodes)),
		segments: make([]*Segment, len(segments)),
		out:      make(map[NodeID][]SegmentID, len(nodes)),
	}
	copy(n.nodes, nodes)
	copy(n.segments, segments)
	for i, nd := range n.nodes {
		if nd.ID != NodeID(i) {
			panic(fmt.Sprintf("road: node at index %d has ID %d", i, nd.ID))
		}
	}
	for i, sg := range n.segments {
		if sg.ID != SegmentID(i) {
			panic(fmt.Sprintf("road: segment at index %d has ID %d", i, sg.ID))
		}
		if int(sg.From) >= len(n.nodes) || int(sg.To) >= len(n.nodes) {
			panic(fmt.Sprintf("road: segment %d references unknown node", i))
		}
		n.out[sg.From] = append(n.out[sg.From], sg.ID)
	}
	for _, ids := range n.out {
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	}
	return n
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumSegments returns the directed segment count.
func (n *Network) NumSegments() int { return len(n.segments) }

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) Node { return n.nodes[id] }

// Segment returns the segment with the given ID.
func (n *Network) Segment(id SegmentID) *Segment { return n.segments[id] }

// Segments returns the underlying segment slice; callers must not modify
// it. (Exposed for iteration-heavy simulation loops.)
func (n *Network) Segments() []*Segment { return n.segments }

// Outgoing returns the IDs of segments leaving the node; callers must not
// modify the returned slice.
func (n *Network) Outgoing(id NodeID) []SegmentID { return n.out[id] }

// TotalLengthM returns the summed length of all directed segments.
func (n *Network) TotalLengthM() float64 {
	var sum float64
	for _, s := range n.segments {
		sum += s.LengthM()
	}
	return sum
}

// UndirectedLengthM returns the summed road length counting each two-way
// pair once, which is the denominator of the paper's coverage ratios.
func (n *Network) UndirectedLengthM() float64 {
	var sum float64
	for _, s := range n.segments {
		if s.Reverse < 0 || s.ID < s.Reverse {
			sum += s.LengthM()
		}
	}
	return sum
}

// BBox returns the bounding box of all node positions.
func (n *Network) BBox() geo.BBox {
	pts := make([]geo.XY, len(n.nodes))
	for i, nd := range n.nodes {
		pts[i] = nd.Pos
	}
	return geo.BBoxOf(pts)
}

// NearestNode returns the ID of the node closest to p. It panics on an
// empty network.
func (n *Network) NearestNode(p geo.XY) NodeID {
	if len(n.nodes) == 0 {
		panic("road: NearestNode on empty network")
	}
	best := NodeID(0)
	bd := geo.DistM(p, n.nodes[0].Pos)
	for _, nd := range n.nodes[1:] {
		if d := geo.DistM(p, nd.Pos); d < bd {
			bd, best = d, nd.ID
		}
	}
	return best
}

// FindSegment returns the segment from one node to another, or -1 if no
// direct edge exists.
func (n *Network) FindSegment(from, to NodeID) SegmentID {
	for _, id := range n.out[from] {
		if n.segments[id].To == to {
			return id
		}
	}
	return -1
}
