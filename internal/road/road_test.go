package road

import (
	"math"
	"testing"

	"busprobe/internal/geo"
)

func mustGrid(t *testing.T, cfg GridConfig) *Network {
	t.Helper()
	n, err := GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func smallCfg() GridConfig {
	cfg := DefaultGridConfig()
	cfg.WidthM = 2000
	cfg.HeightM = 1500
	cfg.SpacingM = 500
	cfg.JitterM = 0
	return cfg
}

func TestGenerateGridCounts(t *testing.T) {
	n := mustGrid(t, smallCfg())
	// 5 cols x 4 rows of nodes.
	if n.NumNodes() != 20 {
		t.Fatalf("nodes = %d, want 20", n.NumNodes())
	}
	// Horizontal: 4 rows * 4 edges; vertical: 5 cols * 3 edges; doubled.
	want := 2 * (4*4 + 5*3)
	if n.NumSegments() != want {
		t.Fatalf("segments = %d, want %d", n.NumSegments(), want)
	}
}

func TestSegmentReversePairing(t *testing.T) {
	n := mustGrid(t, smallCfg())
	for _, s := range n.Segments() {
		r := n.Segment(s.Reverse)
		if r.Reverse != s.ID {
			t.Fatalf("segment %d reverse not mutual", s.ID)
		}
		if r.From != s.To || r.To != s.From {
			t.Fatalf("segment %d reverse endpoints wrong", s.ID)
		}
		if math.Abs(r.LengthM()-s.LengthM()) > 1e-9 {
			t.Fatalf("segment %d reverse length differs", s.ID)
		}
	}
}

func TestGridLengths(t *testing.T) {
	n := mustGrid(t, smallCfg())
	for _, s := range n.Segments() {
		if math.Abs(s.LengthM()-500) > 1e-9 {
			t.Fatalf("segment %d length %v, want 500 (no jitter)", s.ID, s.LengthM())
		}
	}
	if und := n.UndirectedLengthM(); math.Abs(und-n.TotalLengthM()/2) > 1e-6 {
		t.Errorf("undirected %v != total/2 %v", und, n.TotalLengthM()/2)
	}
}

func TestArterialPromotion(t *testing.T) {
	n := mustGrid(t, smallCfg())
	var art, loc int
	for _, s := range n.Segments() {
		switch s.Class {
		case ClassArterial:
			art++
			if s.FreeKmh != 100 {
				t.Fatalf("arterial speed %v", s.FreeKmh)
			}
		case ClassLocal:
			loc++
			if s.FreeKmh != 70 {
				t.Fatalf("local speed %v", s.FreeKmh)
			}
		}
	}
	if art == 0 || loc == 0 {
		t.Fatalf("expected both classes, got %d arterial %d local", art, loc)
	}
}

func TestOutgoingConsistency(t *testing.T) {
	n := mustGrid(t, smallCfg())
	count := 0
	for i := 0; i < n.NumNodes(); i++ {
		for _, sid := range n.Outgoing(NodeID(i)) {
			if n.Segment(sid).From != NodeID(i) {
				t.Fatalf("outgoing list wrong for node %d", i)
			}
			count++
		}
	}
	if count != n.NumSegments() {
		t.Fatalf("outgoing total %d != segments %d", count, n.NumSegments())
	}
}

func TestFindSegment(t *testing.T) {
	n := mustGrid(t, smallCfg())
	s := n.Segment(0)
	if got := n.FindSegment(s.From, s.To); got != s.ID {
		t.Errorf("FindSegment = %d, want %d", got, s.ID)
	}
	if got := n.FindSegment(s.From, s.From); got != -1 {
		t.Errorf("self-loop lookup = %d, want -1", got)
	}
}

func TestNearestNode(t *testing.T) {
	n := mustGrid(t, smallCfg())
	// Node 0 is at (0,0) with no jitter.
	if id := n.NearestNode(geo.XY{X: 10, Y: -20}); id != 0 {
		t.Errorf("NearestNode = %d, want 0", id)
	}
	if id := n.NearestNode(geo.XY{X: 510, Y: 490}); n.Node(id).Pos != (geo.XY{X: 500, Y: 500}) {
		t.Errorf("NearestNode pos = %v", n.Node(id).Pos)
	}
}

func TestBBoxCoversExtent(t *testing.T) {
	n := mustGrid(t, smallCfg())
	b := n.BBox()
	if b.Width() != 2000 || b.Height() != 1500 {
		t.Errorf("bbox %v x %v", b.Width(), b.Height())
	}
}

func TestDefaultConfigScale(t *testing.T) {
	n := mustGrid(t, DefaultGridConfig())
	b := n.BBox()
	// Jitter of 40 m can stretch the box slightly beyond 7000x4000.
	if b.Width() < 6800 || b.Width() > 7200 || b.Height() < 3800 || b.Height() > 4200 {
		t.Errorf("default city extent %v x %v", b.Width(), b.Height())
	}
	if a := b.AreaKm2(); a < 25 || a > 32 {
		t.Errorf("area = %v km2, want ~28", a)
	}
}

func TestGenerateGridDeterministic(t *testing.T) {
	a := mustGrid(t, DefaultGridConfig())
	b := mustGrid(t, DefaultGridConfig())
	if a.NumNodes() != b.NumNodes() {
		t.Fatal("node counts differ")
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Node(NodeID(i)).Pos != b.Node(NodeID(i)).Pos {
			t.Fatalf("node %d position differs between runs", i)
		}
	}
}

func TestGenerateGridSeedChangesJitter(t *testing.T) {
	c1 := DefaultGridConfig()
	c2 := DefaultGridConfig()
	c2.Seed = 99
	a := mustGrid(t, c1)
	b := mustGrid(t, c2)
	same := 0
	for i := 0; i < a.NumNodes(); i++ {
		if a.Node(NodeID(i)).Pos == b.Node(NodeID(i)).Pos {
			same++
		}
	}
	if same == a.NumNodes() {
		t.Error("different seeds produced identical jitter")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []GridConfig{
		{WidthM: 0, HeightM: 100, SpacingM: 10, LocalKmh: 50, ArterialKmh: 70},
		{WidthM: 100, HeightM: 100, SpacingM: 0, LocalKmh: 50, ArterialKmh: 70},
		{WidthM: 100, HeightM: 100, SpacingM: 500, LocalKmh: 50, ArterialKmh: 70},
		{WidthM: 100, HeightM: 100, SpacingM: 50, LocalKmh: 0, ArterialKmh: 70},
	}
	for i, cfg := range bad {
		if _, err := GenerateGrid(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFreeTravelS(t *testing.T) {
	n := mustGrid(t, smallCfg())
	for _, s := range n.Segments() {
		want := s.LengthM() / (s.FreeKmh / 3.6)
		if math.Abs(s.FreeTravelS()-want) > 1e-9 {
			t.Fatalf("FreeTravelS wrong for %d", s.ID)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassArterial.String() != "arterial" || ClassLocal.String() != "local" {
		t.Error("Class.String wrong")
	}
	if Class(9).String() != "class(9)" {
		t.Error("unknown class string wrong")
	}
}
