package road

import (
	"fmt"

	"busprobe/internal/geo"
	"busprobe/internal/stats"
)

// GridConfig parameterizes the synthetic city generator. The defaults
// (see DefaultGridConfig) approximate the paper's study region: a
// 7 km x 4 km area with an arterial grid, minor streets in between, and
// realistic free-flow speeds.
type GridConfig struct {
	// WidthM and HeightM are the city extent in meters.
	WidthM, HeightM float64
	// SpacingM is the distance between adjacent grid streets.
	SpacingM float64
	// ArterialEvery promotes every k-th grid line to an arterial.
	ArterialEvery int
	// LocalKmh and ArterialKmh are free-flow design speeds: what an
	// automobile does on an empty road at 3am. Observed traffic runs
	// well below them (see sim.FieldConfig.FreeFlowRatio); the Eq. 3
	// "a" term divides by these.
	LocalKmh, ArterialKmh float64
	// JitterM randomly perturbs intersection positions to break the
	// perfect grid (0 disables).
	JitterM float64
	// Seed drives all randomness in generation.
	Seed uint64
}

// DefaultGridConfig returns the Jurong-West-like configuration used by
// the experiments: 7 km x 4 km, 500 m blocks, arterials every third line.
func DefaultGridConfig() GridConfig {
	return GridConfig{
		WidthM:        7000,
		HeightM:       4000,
		SpacingM:      500,
		ArterialEvery: 3,
		LocalKmh:      70,
		ArterialKmh:   100,
		JitterM:       40,
		Seed:          1,
	}
}

// Validate checks the configuration for obviously broken values.
func (c GridConfig) Validate() error {
	if c.WidthM <= 0 || c.HeightM <= 0 {
		return fmt.Errorf("road: non-positive extent %vx%v", c.WidthM, c.HeightM)
	}
	if c.SpacingM <= 0 {
		return fmt.Errorf("road: non-positive spacing %v", c.SpacingM)
	}
	if c.WidthM/c.SpacingM < 1 || c.HeightM/c.SpacingM < 1 {
		return fmt.Errorf("road: spacing %v too large for extent", c.SpacingM)
	}
	if c.LocalKmh <= 0 || c.ArterialKmh <= 0 {
		return fmt.Errorf("road: non-positive speeds")
	}
	return nil
}

// GenerateGrid builds a two-way grid city from the configuration. Every
// street is represented by a pair of opposite directed segments whose
// Reverse fields reference each other.
func GenerateGrid(cfg GridConfig) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed).Fork("road-grid")

	cols := int(cfg.WidthM/cfg.SpacingM) + 1
	rows := int(cfg.HeightM/cfg.SpacingM) + 1

	nodes := make([]Node, 0, cols*rows)
	idAt := func(cx, cy int) NodeID { return NodeID(cy*cols + cx) }
	for cy := 0; cy < rows; cy++ {
		for cx := 0; cx < cols; cx++ {
			pos := geo.XY{X: float64(cx) * cfg.SpacingM, Y: float64(cy) * cfg.SpacingM}
			if cfg.JitterM > 0 {
				pos.X += rng.Range(-cfg.JitterM, cfg.JitterM)
				pos.Y += rng.Range(-cfg.JitterM, cfg.JitterM)
			}
			nodes = append(nodes, Node{ID: idAt(cx, cy), Pos: pos})
		}
	}

	var segments []*Segment
	addPair := func(a, b NodeID, class Class, name string) {
		speed := cfg.LocalKmh
		if class == ClassArterial {
			speed = cfg.ArterialKmh
		}
		fwd := &Segment{
			ID:      SegmentID(len(segments)),
			From:    a,
			To:      b,
			Shape:   geo.NewPolyline([]geo.XY{nodes[a].Pos, nodes[b].Pos}),
			Class:   class,
			FreeKmh: speed,
			Name:    name,
		}
		rev := &Segment{
			ID:      SegmentID(len(segments) + 1),
			From:    b,
			To:      a,
			Shape:   geo.NewPolyline([]geo.XY{nodes[b].Pos, nodes[a].Pos}),
			Class:   class,
			FreeKmh: speed,
			Name:    name,
		}
		fwd.Reverse = rev.ID
		rev.Reverse = fwd.ID
		segments = append(segments, fwd, rev)
	}

	classOf := func(line int) Class {
		if cfg.ArterialEvery > 0 && line%cfg.ArterialEvery == 0 {
			return ClassArterial
		}
		return ClassLocal
	}

	// Horizontal streets (west-east) along each row.
	for cy := 0; cy < rows; cy++ {
		for cx := 0; cx+1 < cols; cx++ {
			addPair(idAt(cx, cy), idAt(cx+1, cy), classOf(cy), fmt.Sprintf("H%d", cy))
		}
	}
	// Vertical streets (south-north) along each column.
	for cx := 0; cx < cols; cx++ {
		for cy := 0; cy+1 < rows; cy++ {
			addPair(idAt(cx, cy), idAt(cx, cy+1), classOf(cx), fmt.Sprintf("V%d", cx))
		}
	}

	return NewNetwork(nodes, segments), nil
}
