package transit

import (
	"fmt"

	"busprobe/internal/geo"
	"busprobe/internal/road"
	"busprobe/internal/stats"
)

// PaperRouteIDs are the eight bus services of the paper's experiment
// (§IV-A): routes 179, 199, 241, 243, 252, 257, 182 and a partial 30.
var PaperRouteIDs = []RouteID{"179", "199", "241", "243", "252", "257", "182", "30"}

// PlanConfig parameterizes the synthetic route planner.
type PlanConfig struct {
	// RouteIDs names the routes to plan; its length is the route count.
	RouteIDs []RouteID
	// MinStops and MaxStops bound each route's stop count (one stop per
	// visited node). The paper's routes average ~17 stops (86 stops on
	// 5 routes).
	MinStops, MaxStops int
	// StraightBias is the probability of continuing straight at an
	// intersection when possible; higher values give more realistic
	// corridor-following routes.
	StraightBias float64
	// HeadwayS is the scheduled departure interval per route.
	HeadwayS float64
	// Seed drives the walk.
	Seed uint64
}

// DefaultPlanConfig mirrors the paper's deployment: 8 routes of 15-25
// stops with 8-minute headways.
func DefaultPlanConfig() PlanConfig {
	ids := make([]RouteID, len(PaperRouteIDs))
	copy(ids, PaperRouteIDs)
	return PlanConfig{
		RouteIDs:     ids,
		MinStops:     17,
		MaxStops:     28,
		StraightBias: 0.70,
		HeadwayS:     480,
		Seed:         1,
	}
}

// PlanRoutes generates route node walks over the network and assembles
// the transit DB. Each route is a self-avoiding walk with straight-line
// momentum, started from a point spread around the region so the routes
// jointly cover it.
func PlanRoutes(net *road.Network, cfg PlanConfig) (*DB, error) {
	if len(cfg.RouteIDs) == 0 {
		return nil, fmt.Errorf("transit: no route IDs")
	}
	if cfg.MinStops < 2 || cfg.MaxStops < cfg.MinStops {
		return nil, fmt.Errorf("transit: bad stop bounds [%d,%d]", cfg.MinStops, cfg.MaxStops)
	}
	rng := stats.NewRNG(cfg.Seed).Fork("route-planner")
	bl := NewBuilder(net)
	bbox := net.BBox()
	for i, id := range cfg.RouteIDs {
		walkRNG := rng.Fork(string(id))
		target := cfg.MinStops + walkRNG.Intn(cfg.MaxStops-cfg.MinStops+1)
		var nodes []road.NodeID
		// Retry a few times: self-avoiding walks can box themselves in.
		for attempt := 0; attempt < 64; attempt++ {
			start := spreadStart(net, bbox, i, len(cfg.RouteIDs), walkRNG)
			nodes = selfAvoidingWalk(net, start, target, cfg.StraightBias, walkRNG)
			if len(nodes) >= cfg.MinStops {
				break
			}
		}
		if len(nodes) < cfg.MinStops {
			return nil, fmt.Errorf("transit: could not plan route %s (%d nodes)", id, len(nodes))
		}
		if err := bl.AddRoute(id, "Service "+string(id), nodes, cfg.HeadwayS); err != nil {
			return nil, err
		}
	}
	return bl.Build(), nil
}

// spreadStart picks a walk origin near one of several anchor points
// spread across the region so routes do not all start in one corner.
func spreadStart(net *road.Network, bbox geo.BBox, i, n int, rng *stats.RNG) road.NodeID {
	fx := (float64(i%4) + 0.5) / 4
	fy := (float64((i/4)%2) + 0.5) / 2
	_ = n
	p := geo.XY{
		X: bbox.MinX + fx*bbox.Width() + rng.Range(-500, 500),
		Y: bbox.MinY + fy*bbox.Height() + rng.Range(-500, 500),
	}
	return net.NearestNode(p)
}

// selfAvoidingWalk walks from start toward a target node count,
// preferring to continue in the current heading.
func selfAvoidingWalk(net *road.Network, start road.NodeID, target int, straightBias float64, rng *stats.RNG) []road.NodeID {
	nodes := []road.NodeID{start}
	visited := map[road.NodeID]bool{start: true}
	var heading geo.XY // unit-ish direction of last move
	for len(nodes) < target {
		cur := nodes[len(nodes)-1]
		outs := net.Outgoing(cur)
		// Candidate next nodes not yet visited.
		type cand struct {
			node road.NodeID
			dir  geo.XY
		}
		var cands []cand
		for _, sid := range outs {
			to := net.Segment(sid).To
			if visited[to] {
				continue
			}
			a, b := net.Node(cur).Pos, net.Node(to).Pos
			d := geo.XY{X: b.X - a.X, Y: b.Y - a.Y}
			l := geo.DistM(geo.XY{}, d)
			if l > 0 {
				d.X /= l
				d.Y /= l
			}
			cands = append(cands, cand{node: to, dir: d})
		}
		if len(cands) == 0 {
			break // boxed in
		}
		pick := -1
		if (heading != geo.XY{}) && rng.Bool(straightBias) {
			// Choose the candidate best aligned with the heading if any
			// is roughly straight ahead.
			bestDot := 0.5
			for ci, c := range cands {
				dot := heading.X*c.dir.X + heading.Y*c.dir.Y
				if dot > bestDot {
					bestDot, pick = dot, ci
				}
			}
		}
		if pick < 0 {
			pick = rng.Intn(len(cands))
		}
		next := cands[pick]
		nodes = append(nodes, next.node)
		visited[next.node] = true
		heading = next.dir
	}
	return nodes
}
