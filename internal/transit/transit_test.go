package transit

import (
	"math"
	"testing"

	"busprobe/internal/road"
)

func testNet(t *testing.T) *road.Network {
	t.Helper()
	cfg := road.DefaultGridConfig()
	cfg.WidthM = 3000
	cfg.HeightM = 2000
	cfg.JitterM = 0
	net, err := road.GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// lineNodes returns the node IDs along the bottom row of the grid.
func lineNodes(net *road.Network, n int) []road.NodeID {
	ids := make([]road.NodeID, n)
	for i := range ids {
		ids[i] = road.NodeID(i) // bottom row is contiguous in the grid layout
	}
	return ids
}

func TestBuilderSingleRoute(t *testing.T) {
	net := testNet(t)
	bl := NewBuilder(net)
	nodes := lineNodes(net, 5)
	if err := bl.AddRoute("179", "Service 179", nodes, 480); err != nil {
		t.Fatal(err)
	}
	db := bl.Build()
	if db.NumRoutes() != 1 || db.NumStops() != 5 {
		t.Fatalf("routes=%d stops=%d", db.NumRoutes(), db.NumStops())
	}
	rt := db.Route("179")
	if rt == nil || rt.NumStops() != 5 || rt.NumLegs() != 4 {
		t.Fatalf("route shape wrong: %+v", rt)
	}
	if len(rt.Path) != 4 {
		t.Fatalf("path len = %d", len(rt.Path))
	}
	leg := rt.Leg(net, 0)
	if leg.FromStop != rt.Stops[0] || leg.ToStop != rt.Stops[1] {
		t.Error("leg endpoints wrong")
	}
	if math.Abs(leg.LengthM-500) > 1e-9 {
		t.Errorf("leg length = %v", leg.LengthM)
	}
}

func TestLegBetweenConcatenates(t *testing.T) {
	net := testNet(t)
	bl := NewBuilder(net)
	if err := bl.AddRoute("A", "", lineNodes(net, 6), 480); err != nil {
		t.Fatal(err)
	}
	db := bl.Build()
	rt := db.Route("A")
	leg := rt.LegBetween(net, 1, 4)
	if len(leg.Segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(leg.Segments))
	}
	if math.Abs(leg.LengthM-1500) > 1e-9 {
		t.Errorf("length = %v, want 1500", leg.LengthM)
	}
	if leg.FromStop != rt.Stops[1] || leg.ToStop != rt.Stops[4] {
		t.Error("endpoints wrong")
	}
}

func TestLegBetweenPanicsOnBadRange(t *testing.T) {
	net := testNet(t)
	bl := NewBuilder(net)
	if err := bl.AddRoute("A", "", lineNodes(net, 4), 480); err != nil {
		t.Fatal(err)
	}
	rt := bl.Build().Route("A")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	rt.LegBetween(net, 2, 2)
}

func TestOrderRelation(t *testing.T) {
	net := testNet(t)
	bl := NewBuilder(net)
	if err := bl.AddRoute("A", "", lineNodes(net, 5), 480); err != nil {
		t.Fatal(err)
	}
	db := bl.Build()
	rt := db.Route("A")
	s := rt.Stops
	if db.R(s[0], s[3]) != 1 {
		t.Error("R(forward) should be 1")
	}
	if db.R(s[3], s[0]) != 0 {
		t.Error("R(backward) should be 0")
	}
	if db.R(s[2], s[2]) != 1 {
		t.Error("R(self) should be 1")
	}
	if !db.After(s[0], s[4]) || db.After(s[4], s[0]) {
		t.Error("After wrong")
	}
}

func TestSharedStopsAcrossRoutes(t *testing.T) {
	net := testNet(t)
	bl := NewBuilder(net)
	// Two eastbound routes over overlapping nodes share stops.
	if err := bl.AddRoute("A", "", lineNodes(net, 5), 480); err != nil {
		t.Fatal(err)
	}
	if err := bl.AddRoute("B", "", lineNodes(net, 4), 480); err != nil {
		t.Fatal(err)
	}
	db := bl.Build()
	if db.NumStops() != 5 {
		t.Fatalf("stops = %d, want 5 (shared)", db.NumStops())
	}
	a, b := db.Route("A"), db.Route("B")
	for i := 0; i < 4; i++ {
		if a.Stops[i] != b.Stops[i] {
			t.Fatalf("stop %d not shared", i)
		}
	}
	rts := db.RoutesOf(a.Stops[0])
	if len(rts) != 2 || rts[0] != "A" || rts[1] != "B" {
		t.Errorf("RoutesOf = %v", rts)
	}
}

func TestOppositePlatformsAggregate(t *testing.T) {
	net := testNet(t)
	bl := NewBuilder(net)
	fwd := lineNodes(net, 5)
	rev := make([]road.NodeID, 5)
	for i := range rev {
		rev[i] = fwd[len(fwd)-1-i]
	}
	if err := bl.AddRoute("E", "", fwd, 480); err != nil {
		t.Fatal(err)
	}
	if err := bl.AddRoute("W", "", rev, 480); err != nil {
		t.Fatal(err)
	}
	db := bl.Build()
	if db.NumStops() != 5 {
		t.Fatalf("stops = %d, want 5 aggregated", db.NumStops())
	}
	if db.NumPlatforms() != 10 {
		t.Fatalf("platforms = %d, want 10 (two sides)", db.NumPlatforms())
	}
	for _, st := range db.Stops() {
		if len(st.Platforms) != 2 {
			t.Fatalf("stop %d has %d platforms", st.ID, len(st.Platforms))
		}
		p0 := db.Platform(st.Platforms[0])
		p1 := db.Platform(st.Platforms[1])
		if p0.Side == p1.Side {
			t.Fatal("platform sides not distinct")
		}
		if p0.Pos == p1.Pos {
			t.Fatal("platform positions identical")
		}
		if p0.Stop != st.ID || p1.Stop != st.ID {
			t.Fatal("platform stop backlink wrong")
		}
	}
	// Both directions possible: R holds both ways via the two routes.
	s := db.Route("E").Stops
	if db.R(s[0], s[4]) != 1 || db.R(s[4], s[0]) != 1 {
		t.Error("two-way corridor should allow both orders")
	}
}

func TestAddRouteErrors(t *testing.T) {
	net := testNet(t)
	bl := NewBuilder(net)
	if err := bl.AddRoute("X", "", []road.NodeID{0}, 480); err == nil {
		t.Error("want error for short route")
	}
	if err := bl.AddRoute("X", "", []road.NodeID{0, 1, 0}, 480); err == nil {
		t.Error("want error for revisit")
	}
	// Nodes 0 and 2 are not adjacent.
	if err := bl.AddRoute("X", "", []road.NodeID{0, 2}, 480); err == nil {
		t.Error("want error for disconnected walk")
	}
	if err := bl.AddRoute("X", "", lineNodes(net, 3), 480); err != nil {
		t.Fatal(err)
	}
	if err := bl.AddRoute("X", "", lineNodes(net, 3), 480); err == nil {
		t.Error("want error for duplicate ID")
	}
	bl.Build()
	if err := bl.AddRoute("Y", "", lineNodes(net, 3), 480); err == nil {
		t.Error("want error after Build")
	}
}

func TestStopAtNode(t *testing.T) {
	net := testNet(t)
	bl := NewBuilder(net)
	if err := bl.AddRoute("A", "", lineNodes(net, 3), 480); err != nil {
		t.Fatal(err)
	}
	db := bl.Build()
	if _, ok := db.StopAtNode(0); !ok {
		t.Error("expected stop at node 0")
	}
	if _, ok := db.StopAtNode(road.NodeID(net.NumNodes() - 1)); ok {
		t.Error("unexpected stop at unserved node")
	}
}

func TestPlanRoutesDefault(t *testing.T) {
	cfg := road.DefaultGridConfig()
	net, err := road.GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := DefaultPlanConfig()
	db, err := PlanRoutes(net, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRoutes() != 8 {
		t.Fatalf("routes = %d", db.NumRoutes())
	}
	for _, rt := range db.Routes() {
		if rt.NumStops() < pcfg.MinStops || rt.NumStops() > pcfg.MaxStops {
			t.Errorf("route %s has %d stops, want [%d,%d]",
				rt.ID, rt.NumStops(), pcfg.MinStops, pcfg.MaxStops)
		}
		if len(rt.Path) != rt.NumStops()-1 {
			t.Errorf("route %s path/stop mismatch", rt.ID)
		}
	}
	// The paper's region has >100 stops; with sharing we still expect a
	// dense stop set.
	if db.NumStops() < 80 {
		t.Errorf("only %d stops planned", db.NumStops())
	}
	// Coverage of >=1 route should be substantial (paper: >50%).
	if cov := db.CoverageRatio(1); cov < 0.3 {
		t.Errorf("coverage ratio = %v", cov)
	}
}

func TestPlanRoutesDeterministic(t *testing.T) {
	net, err := road.GenerateGrid(road.DefaultGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := PlanRoutes(net, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanRoutes(net, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStops() != b.NumStops() || a.NumPlatforms() != b.NumPlatforms() {
		t.Fatal("planning not deterministic")
	}
	for i, rt := range a.Routes() {
		other := b.Routes()[i]
		if rt.ID != other.ID || rt.NumStops() != other.NumStops() {
			t.Fatalf("route %d differs", i)
		}
		for j := range rt.Stops {
			if rt.Stops[j] != other.Stops[j] {
				t.Fatalf("route %s stop %d differs", rt.ID, j)
			}
		}
	}
}

func TestPlanRoutesValidation(t *testing.T) {
	net := testNet(t)
	if _, err := PlanRoutes(net, PlanConfig{}); err == nil {
		t.Error("want error for empty config")
	}
	bad := DefaultPlanConfig()
	bad.MinStops, bad.MaxStops = 10, 5
	if _, err := PlanRoutes(net, bad); err == nil {
		t.Error("want error for inverted bounds")
	}
}

func TestStopIndex(t *testing.T) {
	net := testNet(t)
	bl := NewBuilder(net)
	if err := bl.AddRoute("A", "", lineNodes(net, 4), 480); err != nil {
		t.Fatal(err)
	}
	rt := bl.Build().Route("A")
	if rt.StopIndex(rt.Stops[2]) != 2 {
		t.Error("StopIndex wrong")
	}
	if rt.StopIndex(StopID(999)) != -1 {
		t.Error("missing stop should give -1")
	}
}

func TestCoverageByRouteCount(t *testing.T) {
	net := testNet(t)
	bl := NewBuilder(net)
	if err := bl.AddRoute("A", "", lineNodes(net, 4), 480); err != nil {
		t.Fatal(err)
	}
	if err := bl.AddRoute("B", "", lineNodes(net, 3), 480); err != nil {
		t.Fatal(err)
	}
	db := bl.Build()
	counts := db.CoverageByRouteCount()
	twoRoutes := 0
	for _, c := range counts {
		if c == 2 {
			twoRoutes++
		}
	}
	if twoRoutes != 2 {
		t.Errorf("segments with 2 routes = %d, want 2", twoRoutes)
	}
	if db.CoverageRatio(1) <= db.CoverageRatio(2) {
		t.Error("coverage(1) should exceed coverage(2)")
	}
}
