// Package transit models the public bus infrastructure the system leans
// on: physical stop platforms, aggregated logical stops, bus routes as
// ordered stop sequences over the road network, and the route database
// exposing the order relation R(x,y) that constrains trip mapping.
//
// Following §III-B of the paper, platforms on opposite sides of a two-way
// road are aggregated into one logical Stop ("we aggregate the bus stops
// located at the same location but different sides of the road as one");
// the travel direction is recovered from trip timestamps, not from which
// platform was fingerprinted.
package transit

import (
	"fmt"

	"busprobe/internal/geo"
	"busprobe/internal/road"
)

// StopID identifies an aggregated (logical) bus stop.
type StopID int

// PlatformID identifies a physical roadside platform.
type PlatformID int

// RouteID identifies a bus route (service number, e.g. "179").
type RouteID string

// Platform is a physical bus-stop pole on one side of the road. Cellular
// fingerprints are collected at platforms; the matching pipeline operates
// on their aggregated Stop.
type Platform struct {
	ID   PlatformID
	Stop StopID
	Node road.NodeID
	// Side distinguishes the two platforms of a two-way road (0 or 1).
	Side int
	Pos  geo.XY
}

// Stop is an aggregated bus stop: one or two platforms at the same road
// location.
type Stop struct {
	ID        StopID
	Node      road.NodeID
	Name      string
	Pos       geo.XY // centroid of the platforms
	Platforms []PlatformID
}

// Leg is the stretch of road between two consecutive stops of a route:
// the unit at which travel times are observed and traffic is estimated.
type Leg struct {
	FromStop StopID
	ToStop   StopID
	// Segments lists the directed road segments traversed, in order.
	Segments []road.SegmentID
	LengthM  float64
}

// Route is a bus service: an ordered walk over the road network with a
// stop at every visited intersection node.
type Route struct {
	ID   RouteID
	Name string
	// Stops is the ordered list of logical stops served.
	Stops []StopID
	// Platforms is the ordered list of physical platforms served
	// (parallel to Stops).
	Platforms []PlatformID
	// Path is the ordered list of directed road segments driven.
	Path []road.SegmentID
	// stopPathIdx[i] is the index into Path at which stop i's node is
	// the From node; for the terminal stop it equals len(Path), so the
	// leg from stop i to stop j always covers Path[stopPathIdx[i]:
	// stopPathIdx[j]].
	stopPathIdx []int
	// HeadwayS is the scheduled interval between consecutive bus
	// departures, in seconds.
	HeadwayS float64
}

// NumStops returns the number of stops on the route.
func (r *Route) NumStops() int { return len(r.Stops) }

// NumLegs returns the number of inter-stop legs.
func (r *Route) NumLegs() int { return len(r.Stops) - 1 }

// StopIndex returns the position of the stop on the route, or -1.
func (r *Route) StopIndex(s StopID) int {
	for i, id := range r.Stops {
		if id == s {
			return i
		}
	}
	return -1
}

// Leg returns the i-th inter-stop leg. It panics if i is out of range.
func (r *Route) Leg(net *road.Network, i int) Leg {
	if i < 0 || i >= r.NumLegs() {
		panic(fmt.Sprintf("transit: leg %d out of range on route %s", i, r.ID))
	}
	return r.LegBetween(net, i, i+1)
}

// LegBetween returns the leg from stop index i to stop index j > i,
// concatenating intermediate legs. This implements the paper's treatment
// of skipped stops (§III-D): "our method automatically treats the
// combined two adjacent segments as one".
func (r *Route) LegBetween(net *road.Network, i, j int) Leg {
	if i < 0 || j >= r.NumStops() || i >= j {
		panic(fmt.Sprintf("transit: bad leg range [%d,%d] on route %s", i, j, r.ID))
	}
	lo, hi := r.stopPathIdx[i], r.stopPathIdx[j]
	segs := make([]road.SegmentID, hi-lo)
	copy(segs, r.Path[lo:hi])
	var length float64
	for _, sid := range segs {
		length += net.Segment(sid).LengthM()
	}
	return Leg{FromStop: r.Stops[i], ToStop: r.Stops[j], Segments: segs, LengthM: length}
}
