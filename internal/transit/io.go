package transit

import (
	"encoding/json"
	"fmt"
	"io"

	"busprobe/internal/road"
)

// RouteSpec is the interchange representation of one bus route: the
// ordered intersection nodes it drives through (a stop at each). This is
// the "bus route operations are public information readily available on
// the web" input of §III-A — deployments load their city's routes from a
// file instead of using the synthetic planner.
type RouteSpec struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	HeadwayS int    `json:"headwayS"`
	Nodes    []int  `json:"nodes"`
}

// routesFile is the on-disk schema.
type routesFile struct {
	Format int         `json:"format"`
	Routes []RouteSpec `json:"routes"`
}

// routesFormat is the schema version.
const routesFormat = 1

// ParseRoutesJSON reads a route definition file.
func ParseRoutesJSON(r io.Reader) ([]RouteSpec, error) {
	var in routesFile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("transit: parse routes: %w", err)
	}
	if in.Format != routesFormat {
		return nil, fmt.Errorf("transit: unsupported routes format %d", in.Format)
	}
	if len(in.Routes) == 0 {
		return nil, fmt.Errorf("transit: no routes in file")
	}
	return in.Routes, nil
}

// WriteRoutesJSON serializes route specs.
func WriteRoutesJSON(w io.Writer, specs []RouteSpec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(routesFile{Format: routesFormat, Routes: specs}); err != nil {
		return fmt.Errorf("transit: write routes: %w", err)
	}
	return nil
}

// BuildFromSpecs assembles a transit DB from route specs over a road
// network, validating every walk.
func BuildFromSpecs(net *road.Network, specs []RouteSpec) (*DB, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("transit: no route specs")
	}
	bl := NewBuilder(net)
	for _, sp := range specs {
		if sp.ID == "" {
			return nil, fmt.Errorf("transit: route spec without ID")
		}
		if sp.HeadwayS <= 0 {
			return nil, fmt.Errorf("transit: route %s has no headway", sp.ID)
		}
		nodes := make([]road.NodeID, len(sp.Nodes))
		for i, n := range sp.Nodes {
			if n < 0 || n >= net.NumNodes() {
				return nil, fmt.Errorf("transit: route %s references unknown node %d", sp.ID, n)
			}
			nodes[i] = road.NodeID(n)
		}
		name := sp.Name
		if name == "" {
			name = "Service " + sp.ID
		}
		if err := bl.AddRoute(RouteID(sp.ID), name, nodes, float64(sp.HeadwayS)); err != nil {
			return nil, err
		}
	}
	return bl.Build(), nil
}

// ExportSpecs flattens a DB's routes back into specs, inverting
// BuildFromSpecs (node walks are recovered from the route paths).
func (db *DB) ExportSpecs() []RouteSpec {
	out := make([]RouteSpec, 0, len(db.routes))
	for _, rt := range db.routes {
		sp := RouteSpec{
			ID:       string(rt.ID),
			Name:     rt.Name,
			HeadwayS: int(rt.HeadwayS),
		}
		for i, sid := range rt.Path {
			seg := db.net.Segment(sid)
			if i == 0 {
				sp.Nodes = append(sp.Nodes, int(seg.From))
			}
			sp.Nodes = append(sp.Nodes, int(seg.To))
		}
		out = append(out, sp)
	}
	return out
}
