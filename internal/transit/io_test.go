package transit

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuildFromSpecs(t *testing.T) {
	net := testNet(t)
	specs := []RouteSpec{
		{ID: "179", Name: "Service 179", HeadwayS: 480, Nodes: []int{0, 1, 2, 3}},
		{ID: "243", HeadwayS: 600, Nodes: []int{3, 2, 1, 0}},
	}
	db, err := BuildFromSpecs(net, specs)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRoutes() != 2 {
		t.Fatalf("routes = %d", db.NumRoutes())
	}
	rt := db.Route("179")
	if rt.NumStops() != 4 || rt.HeadwayS != 480 {
		t.Errorf("route 179 shape wrong: %+v", rt)
	}
	if db.Route("243").Name != "Service 243" {
		t.Error("default name not applied")
	}
	// Opposite directions aggregate to the same logical stops.
	if db.NumStops() != 4 {
		t.Errorf("stops = %d, want 4", db.NumStops())
	}
}

func TestBuildFromSpecsValidation(t *testing.T) {
	net := testNet(t)
	cases := map[string][]RouteSpec{
		"empty":        {},
		"no id":        {{HeadwayS: 480, Nodes: []int{0, 1}}},
		"no headway":   {{ID: "A", Nodes: []int{0, 1}}},
		"bad node":     {{ID: "A", HeadwayS: 480, Nodes: []int{0, 999999}}},
		"disconnected": {{ID: "A", HeadwayS: 480, Nodes: []int{0, 2}}},
		"revisit":      {{ID: "A", HeadwayS: 480, Nodes: []int{0, 1, 0}}},
	}
	for name, specs := range cases {
		if _, err := BuildFromSpecs(net, specs); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRoutesJSONRoundTrip(t *testing.T) {
	net := testNet(t)
	specs := []RouteSpec{
		{ID: "179", Name: "Service 179", HeadwayS: 480, Nodes: []int{0, 1, 2, 3}},
	}
	var buf bytes.Buffer
	if err := WriteRoutesJSON(&buf, specs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseRoutesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].ID != "179" || len(back[0].Nodes) != 4 {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := BuildFromSpecs(net, back); err != nil {
		t.Fatal(err)
	}
}

func TestParseRoutesJSONErrors(t *testing.T) {
	if _, err := ParseRoutesJSON(strings.NewReader("{nope")); err == nil {
		t.Error("want error for malformed JSON")
	}
	if _, err := ParseRoutesJSON(strings.NewReader(`{"format":9,"routes":[{"id":"A"}]}`)); err == nil {
		t.Error("want error for unknown format")
	}
	if _, err := ParseRoutesJSON(strings.NewReader(`{"format":1,"routes":[]}`)); err == nil {
		t.Error("want error for empty routes")
	}
}

func TestExportSpecsInvertsBuild(t *testing.T) {
	net := testNet(t)
	specs := []RouteSpec{
		{ID: "179", Name: "Service 179", HeadwayS: 480, Nodes: []int{0, 1, 2, 3}},
		{ID: "30", Name: "Service 30", HeadwayS: 720, Nodes: []int{3, 2, 1}},
	}
	db, err := BuildFromSpecs(net, specs)
	if err != nil {
		t.Fatal(err)
	}
	exported := db.ExportSpecs()
	if len(exported) != len(specs) {
		t.Fatalf("exported %d specs", len(exported))
	}
	for i, sp := range exported {
		want := specs[i]
		if sp.ID != want.ID || sp.HeadwayS != want.HeadwayS || sp.Name != want.Name {
			t.Errorf("spec %d header differs: %+v vs %+v", i, sp, want)
		}
		if len(sp.Nodes) != len(want.Nodes) {
			t.Fatalf("spec %d node count %d vs %d", i, len(sp.Nodes), len(want.Nodes))
		}
		for j := range sp.Nodes {
			if sp.Nodes[j] != want.Nodes[j] {
				t.Fatalf("spec %d node %d differs", i, j)
			}
		}
	}
	// Full cycle: rebuild from the export and compare route shapes.
	db2, err := BuildFromSpecs(net, exported)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumStops() != db.NumStops() || db2.NumPlatforms() != db.NumPlatforms() {
		t.Error("rebuild differs from original")
	}
}

func TestPlannedCityExportsAndRebuilds(t *testing.T) {
	// The synthetic planner's output must survive the interchange
	// format, so a generated city can be frozen to a file and reloaded.
	net := testNet(t)
	cfg := DefaultPlanConfig()
	cfg.RouteIDs = []RouteID{"179", "243"}
	cfg.MinStops = 5
	cfg.MaxStops = 8
	db, err := PlanRoutes(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRoutesJSON(&buf, db.ExportSpecs()); err != nil {
		t.Fatal(err)
	}
	specs, err := ParseRoutesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := BuildFromSpecs(net, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, rt := range db.Routes() {
		rt2 := db2.Routes()[i]
		if rt.ID != rt2.ID || rt.NumStops() != rt2.NumStops() {
			t.Fatalf("route %d differs after round trip", i)
		}
		for j := range rt.Stops {
			if rt.Stops[j] != rt2.Stops[j] {
				t.Fatalf("route %s stop %d differs", rt.ID, j)
			}
		}
	}
}
