package transit

import (
	"fmt"
	"sort"

	"busprobe/internal/core/region"
	"busprobe/internal/geo"
	"busprobe/internal/road"
)

// Partition is a route-closed spatial sharding of the transit network:
// every route's stops and path segments land wholly in one shard, so a
// shard can match, map, and estimate any trip ridden on its routes
// without consulting a peer. Routes that share a stop (or a directed
// road segment) are transitively grouped — a shared stop means either
// route could explain a rider's samples there, so splitting the pair
// would split one trip's evidence across dedup sets and estimators.
//
// Groups are placed on the region zone grid (§VI) by the zone of their
// stop centroid, swept in zone order, and assigned greedily to the
// least-loaded shard (by stop count) — deterministic for a given DB, and
// balanced enough that one downtown cluster cannot swallow the city.
type Partition struct {
	shards     int
	groups     int
	routeShard map[RouteID]int
	stopShard  map[StopID]int
	segShard   map[road.SegmentID]int

	routesIn [][]RouteID
	stopsIn  []int
	segsIn   []int
}

// PartitionRoutes builds a route-closed partition of the DB's transit
// network into the given number of shards, using zoneM-sized grid zones
// to order route groups spatially. shards may exceed the number of
// route groups; the surplus shards stay empty.
func PartitionRoutes(db *DB, shards int, zoneM float64) (*Partition, error) {
	if db == nil {
		return nil, fmt.Errorf("transit: nil DB")
	}
	if shards <= 0 {
		return nil, fmt.Errorf("transit: need at least one shard, got %d", shards)
	}
	if zoneM <= 0 {
		return nil, fmt.Errorf("transit: non-positive zone size %v", zoneM)
	}
	routes := db.Routes()
	if len(routes) == 0 {
		return nil, fmt.Errorf("transit: no routes to partition")
	}

	// Union-find over route indices: routes sharing a stop or a directed
	// path segment must be co-sharded.
	parent := make([]int, len(routes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	stopOwner := make(map[StopID]int)
	segOwner := make(map[road.SegmentID]int)
	for i, rt := range routes {
		for _, s := range rt.Stops {
			if j, ok := stopOwner[s]; ok {
				union(i, j)
			} else {
				stopOwner[s] = i
			}
		}
		for _, sid := range rt.Path {
			if j, ok := segOwner[sid]; ok {
				union(i, j)
			} else {
				segOwner[sid] = i
			}
		}
	}

	// Collect groups and their spatial footprint.
	type group struct {
		routes []int
		zone   region.Zone
		minID  RouteID
		stops  int
	}
	byRoot := make(map[int]*group)
	var order []*group
	for i := range routes {
		root := find(i)
		g := byRoot[root]
		if g == nil {
			g = &group{minID: routes[i].ID}
			byRoot[root] = g
			order = append(order, g)
		}
		g.routes = append(g.routes, i)
		if routes[i].ID < g.minID {
			g.minID = routes[i].ID
		}
	}
	for _, g := range order {
		var centroid geo.XY
		seen := make(map[StopID]bool)
		for _, ri := range g.routes {
			for _, s := range routes[ri].Stops {
				if !seen[s] {
					seen[s] = true
					pos := db.Stop(s).Pos
					centroid.X += pos.X
					centroid.Y += pos.Y
				}
			}
		}
		g.stops = len(seen)
		centroid.X /= float64(g.stops)
		centroid.Y /= float64(g.stops)
		g.zone = region.ZoneAt(centroid, zoneM)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].zone != order[j].zone {
			return order[i].zone.Less(order[j].zone)
		}
		return order[i].minID < order[j].minID
	})

	p := &Partition{
		shards:     shards,
		groups:     len(order),
		routeShard: make(map[RouteID]int, len(routes)),
		stopShard:  make(map[StopID]int, db.NumStops()),
		segShard:   make(map[road.SegmentID]int),
		routesIn:   make([][]RouteID, shards),
		stopsIn:    make([]int, shards),
		segsIn:     make([]int, shards),
	}
	load := make([]int, shards) // assigned stop count per shard
	for _, g := range order {
		sh := 0
		for i := 1; i < shards; i++ {
			if load[i] < load[sh] {
				sh = i
			}
		}
		load[sh] += g.stops
		for _, ri := range g.routes {
			rt := routes[ri]
			p.routeShard[rt.ID] = sh
			p.routesIn[sh] = append(p.routesIn[sh], rt.ID)
			for _, s := range rt.Stops {
				if _, ok := p.stopShard[s]; !ok {
					p.stopShard[s] = sh
					p.stopsIn[sh]++
				}
			}
			for _, sid := range rt.Path {
				if _, ok := p.segShard[sid]; !ok {
					p.segShard[sid] = sh
					p.segsIn[sh]++
				}
			}
		}
	}
	for sh := range p.routesIn {
		rts := p.routesIn[sh]
		sort.Slice(rts, func(i, j int) bool { return rts[i] < rts[j] })
	}
	return p, nil
}

// Shards returns the shard count the partition was built for.
func (p *Partition) Shards() int { return p.shards }

// Groups returns how many route-closed groups the network decomposed
// into; at most this many shards are non-empty.
func (p *Partition) Groups() int { return p.groups }

// RouteShard returns the shard owning a route.
func (p *Partition) RouteShard(id RouteID) (int, bool) {
	sh, ok := p.routeShard[id]
	return sh, ok
}

// StopShard returns the shard owning a stop.
func (p *Partition) StopShard(id StopID) (int, bool) {
	sh, ok := p.stopShard[id]
	return sh, ok
}

// SegmentShard returns the shard owning a directed road segment (only
// segments on some route's path are owned).
func (p *Partition) SegmentShard(sid road.SegmentID) (int, bool) {
	sh, ok := p.segShard[sid]
	return sh, ok
}

// RoutesIn returns the routes assigned to a shard, sorted by ID; callers
// must not modify the slice.
func (p *Partition) RoutesIn(shard int) []RouteID { return p.routesIn[shard] }

// StopsIn returns how many stops a shard owns.
func (p *Partition) StopsIn(shard int) int { return p.stopsIn[shard] }

// SegmentsIn returns how many directed segments a shard owns.
func (p *Partition) SegmentsIn(shard int) int { return p.segsIn[shard] }
