package transit

import (
	"testing"
	"testing/quick"

	"busprobe/internal/road"
	"busprobe/internal/stats"
)

// singleRouteDB builds a DB with one linear route for relation-property
// tests.
func singleRouteDB(t *testing.T, n int) *DB {
	t.Helper()
	net := testNet(t)
	bl := NewBuilder(net)
	if err := bl.AddRoute("P", "", lineNodes(net, n), 480); err != nil {
		t.Fatal(err)
	}
	return bl.Build()
}

func TestRReflexiveProperty(t *testing.T) {
	db := singleRouteDB(t, 6)
	stops := db.Route("P").Stops
	f := func(i uint8) bool {
		s := stops[int(i)%len(stops)]
		return db.R(s, s) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRAntisymmetricOnOneWayRoute(t *testing.T) {
	// With a single one-direction route, R(x,y) and R(y,x) cannot both
	// hold for distinct stops.
	db := singleRouteDB(t, 7)
	stops := db.Route("P").Stops
	f := func(a, b uint8) bool {
		x := stops[int(a)%len(stops)]
		y := stops[int(b)%len(stops)]
		if x == y {
			return true
		}
		return !(db.R(x, y) == 1 && db.R(y, x) == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRTransitiveOnOneRoute(t *testing.T) {
	db := singleRouteDB(t, 7)
	stops := db.Route("P").Stops
	f := func(a, b, c uint8) bool {
		x := stops[int(a)%len(stops)]
		y := stops[int(b)%len(stops)]
		z := stops[int(c)%len(stops)]
		if db.R(x, y) == 1 && db.R(y, z) == 1 {
			return db.R(x, z) == 1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLegDecompositionProperty(t *testing.T) {
	// For random stop index pairs i < j, LegBetween equals the
	// concatenation of the unit legs: same length, same segment count.
	net := testNet(t)
	bl := NewBuilder(net)
	if err := bl.AddRoute("Q", "", lineNodes(net, 6), 480); err != nil {
		t.Fatal(err)
	}
	rt := bl.Build().Route("Q")
	rng := stats.NewRNG(11)
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(rt.NumStops() - 1)
		j := i + 1 + rng.Intn(rt.NumStops()-1-i)
		merged := rt.LegBetween(net, i, j)
		var length float64
		var segs int
		for k := i; k < j; k++ {
			leg := rt.Leg(net, k)
			length += leg.LengthM
			segs += len(leg.Segments)
		}
		if segs != len(merged.Segments) {
			t.Fatalf("[%d,%d]: merged %d segments, unit sum %d", i, j, len(merged.Segments), segs)
		}
		if diff := merged.LengthM - length; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("[%d,%d]: merged length %v, unit sum %v", i, j, merged.LengthM, length)
		}
	}
}

func TestPlannedRoutesConnectedProperty(t *testing.T) {
	// Every planned route's consecutive stops are joined by a real
	// directed segment path (the walk is valid in the network).
	cfg := road.DefaultGridConfig()
	net, err := road.GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := PlanRoutes(net, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range db.Routes() {
		for i := 0; i < rt.NumLegs(); i++ {
			leg := rt.Leg(net, i)
			if len(leg.Segments) == 0 {
				t.Fatalf("route %s leg %d empty", rt.ID, i)
			}
			from := db.Stop(leg.FromStop).Node
			to := db.Stop(leg.ToStop).Node
			if net.Segment(leg.Segments[0]).From != from {
				t.Fatalf("route %s leg %d does not start at its stop", rt.ID, i)
			}
			last := leg.Segments[len(leg.Segments)-1]
			if net.Segment(last).To != to {
				t.Fatalf("route %s leg %d does not end at its stop", rt.ID, i)
			}
			// Interior connectivity.
			for k := 1; k < len(leg.Segments); k++ {
				if net.Segment(leg.Segments[k]).From != net.Segment(leg.Segments[k-1]).To {
					t.Fatalf("route %s leg %d disconnected at %d", rt.ID, i, k)
				}
			}
		}
	}
}
