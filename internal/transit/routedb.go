package transit

import (
	"fmt"
	"sort"

	"busprobe/internal/road"
)

// DB is the transit database: all stops, platforms and routes of the
// study region, with precomputed route-order information. It corresponds
// to the paper's "bus routes ... readily available from bus operators"
// offline input. A built DB is immutable and safe for concurrent readers.
type DB struct {
	net       *road.Network
	stops     []Stop
	platforms []Platform
	routes    []*Route
	routeIdx  map[RouteID]*Route
	// after[x] is the set of stops that appear after x on some route:
	// the R(x,y)=1, x!=y case of §III-C(3).
	after map[StopID]map[StopID]bool
	// stopsAtNode maps a road node to the logical stop there, if any.
	stopsAtNode map[road.NodeID]StopID
	// routesOfStop lists the routes serving each stop.
	routesOfStop map[StopID][]RouteID
}

// Network returns the road network the DB is built over.
func (db *DB) Network() *road.Network { return db.net }

// NumStops returns the number of logical stops.
func (db *DB) NumStops() int { return len(db.stops) }

// NumPlatforms returns the number of physical platforms.
func (db *DB) NumPlatforms() int { return len(db.platforms) }

// NumRoutes returns the number of routes.
func (db *DB) NumRoutes() int { return len(db.routes) }

// Stop returns the logical stop with the given ID.
func (db *DB) Stop(id StopID) Stop { return db.stops[id] }

// Platform returns the platform with the given ID.
func (db *DB) Platform(id PlatformID) Platform { return db.platforms[id] }

// Stops returns all logical stops; callers must not modify the slice.
func (db *DB) Stops() []Stop { return db.stops }

// Platforms returns all platforms; callers must not modify the slice.
func (db *DB) Platforms() []Platform { return db.platforms }

// Routes returns all routes; callers must not modify the slice.
func (db *DB) Routes() []*Route { return db.routes }

// Route returns the route with the given ID, or nil.
func (db *DB) Route(id RouteID) *Route { return db.routeIdx[id] }

// StopAtNode returns the logical stop at a road node, if one exists.
func (db *DB) StopAtNode(n road.NodeID) (StopID, bool) {
	id, ok := db.stopsAtNode[n]
	return id, ok
}

// RoutesOf returns the IDs of routes serving the stop; callers must not
// modify the slice.
func (db *DB) RoutesOf(s StopID) []RouteID { return db.routesOfStop[s] }

// R is the paper's route-order relation (§III-C(3)): R(x,y) = 1 if y is
// behind (after) x on some bus route or x == y, and 0 otherwise. Trip
// mapping multiplies candidate-sequence likelihoods by R, zeroing
// transitions a bus could not make.
func (db *DB) R(x, y StopID) float64 {
	if x == y {
		return 1
	}
	if db.after[x][y] {
		return 1
	}
	return 0
}

// After reports whether stop y appears after stop x on some route.
func (db *DB) After(x, y StopID) bool { return db.after[x][y] }

// CoverageByRouteCount returns, for each undirected road pair covered by
// at least one route, how many distinct routes traverse it (in either
// direction), keyed by the lower segment ID of the pair.
func (db *DB) CoverageByRouteCount() map[road.SegmentID]int {
	perSeg := make(map[road.SegmentID]map[RouteID]bool)
	for _, rt := range db.routes {
		for _, sid := range rt.Path {
			key := sid
			if rev := db.net.Segment(sid).Reverse; rev >= 0 && rev < key {
				key = rev
			}
			if perSeg[key] == nil {
				perSeg[key] = make(map[RouteID]bool)
			}
			perSeg[key][rt.ID] = true
		}
	}
	out := make(map[road.SegmentID]int, len(perSeg))
	for sid, rts := range perSeg {
		out[sid] = len(rts)
	}
	return out
}

// CoverageRatio returns the fraction of undirected road length traversed
// by at least minRoutes routes. The paper reports ~80% of roads covered
// by >= 2 routes in the study region and >50% covered by the 8
// experimental routes.
func (db *DB) CoverageRatio(minRoutes int) float64 {
	counts := db.CoverageByRouteCount()
	var covered float64
	for sid, c := range counts {
		if c >= minRoutes {
			covered += db.net.Segment(sid).LengthM()
		}
	}
	total := db.net.UndirectedLengthM()
	if total == 0 {
		return 0
	}
	return covered / total
}

// builder assembles a DB incrementally.
type builder struct {
	db *DB
	// platformAt finds an existing platform by (node, side).
	platformAt map[[2]int]PlatformID
}

// NewBuilder returns a DB builder over the network.
func NewBuilder(net *road.Network) *Builder {
	return &Builder{b: builder{
		db: &DB{
			net:          net,
			routeIdx:     make(map[RouteID]*Route),
			after:        make(map[StopID]map[StopID]bool),
			stopsAtNode:  make(map[road.NodeID]StopID),
			routesOfStop: make(map[StopID][]RouteID),
		},
		platformAt: make(map[[2]int]PlatformID),
	}}
}

// Builder constructs a transit DB route by route. Not safe for concurrent
// use; Build finalizes and returns the immutable DB.
type Builder struct {
	b     builder
	built bool
}

// AddRoute registers a route that visits the given node sequence with a
// stop at every node. Side selection alternates with travel direction so
// that a two-way road gets two platforms per stop location. Returns an
// error if the node walk is not connected in the network or revisits a
// node.
func (bl *Builder) AddRoute(id RouteID, name string, nodes []road.NodeID, headwayS float64) error {
	if bl.built {
		return fmt.Errorf("transit: builder already finalized")
	}
	if len(nodes) < 2 {
		return fmt.Errorf("transit: route %s has %d nodes, need >= 2", id, len(nodes))
	}
	if _, dup := bl.b.db.routeIdx[id]; dup {
		return fmt.Errorf("transit: duplicate route %s", id)
	}
	seen := make(map[road.NodeID]bool, len(nodes))
	for _, n := range nodes {
		if seen[n] {
			return fmt.Errorf("transit: route %s revisits node %d", id, n)
		}
		seen[n] = true
	}
	db := bl.b.db
	path := make([]road.SegmentID, 0, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		sid := db.net.FindSegment(nodes[i], nodes[i+1])
		if sid < 0 {
			return fmt.Errorf("transit: route %s: no segment %d->%d", id, nodes[i], nodes[i+1])
		}
		path = append(path, sid)
	}

	rt := &Route{
		ID:          id,
		Name:        name,
		Path:        path,
		HeadwayS:    headwayS,
		stopPathIdx: make([]int, 0, len(nodes)),
	}
	for i, n := range nodes {
		side := bl.sideForVisit(nodes, i)
		pid := bl.ensurePlatform(n, side)
		plat := db.platforms[pid]
		rt.Platforms = append(rt.Platforms, pid)
		rt.Stops = append(rt.Stops, plat.Stop)
		rt.stopPathIdx = append(rt.stopPathIdx, i)
	}
	db.routes = append(db.routes, rt)
	db.routeIdx[id] = rt

	// Maintain the order relation and per-stop route lists.
	for i, x := range rt.Stops {
		db.routesOfStop[x] = append(db.routesOfStop[x], id)
		if db.after[x] == nil {
			db.after[x] = make(map[StopID]bool)
		}
		for _, y := range rt.Stops[i+1:] {
			db.after[x][y] = true
		}
	}
	return nil
}

// sideForVisit picks the platform side for the i-th node of a walk based
// on the direction of travel through it: eastbound/northbound buses use
// side 0, the opposite direction side 1. This yields two platforms per
// location on two-way corridors, as in the real city.
func (bl *Builder) sideForVisit(nodes []road.NodeID, i int) int {
	net := bl.b.db.net
	var from, to road.NodeID
	switch {
	case i+1 < len(nodes):
		from, to = nodes[i], nodes[i+1]
	default:
		from, to = nodes[i-1], nodes[i]
	}
	a, b := net.Node(from).Pos, net.Node(to).Pos
	dx, dy := b.X-a.X, b.Y-a.Y
	if dx+dy >= 0 {
		return 0
	}
	return 1
}

// ensurePlatform returns the platform at (node, side), creating it and
// its logical stop as needed.
func (bl *Builder) ensurePlatform(n road.NodeID, side int) PlatformID {
	db := bl.b.db
	key := [2]int{int(n), side}
	if pid, ok := bl.b.platformAt[key]; ok {
		return pid
	}
	// Logical stop: one per node.
	sid, ok := db.stopsAtNode[n]
	if !ok {
		sid = StopID(len(db.stops))
		db.stops = append(db.stops, Stop{
			ID:   sid,
			Node: n,
			Name: fmt.Sprintf("S%03d", int(sid)),
			Pos:  db.net.Node(n).Pos,
		})
		db.stopsAtNode[n] = sid
	}
	pid := PlatformID(len(db.platforms))
	pos := db.net.Node(n).Pos
	// Offset the platform ~12 m from the intersection center, one side
	// per direction, so opposite platforms are distinct places in the
	// radio environment (needed for the Fig. 2(c) "effective" analysis).
	off := 12.0
	if side == 1 {
		off = -12.0
	}
	pos.X += off
	pos.Y -= off / 2
	db.platforms = append(db.platforms, Platform{ID: pid, Stop: sid, Node: n, Side: side, Pos: pos})
	st := db.stops[sid]
	st.Platforms = append(st.Platforms, pid)
	db.stops[sid] = st
	bl.b.platformAt[key] = pid
	return pid
}

// Build finalizes the DB. The builder must not be used afterwards.
func (bl *Builder) Build() *DB {
	bl.built = true
	db := bl.b.db
	for s, rts := range db.routesOfStop {
		sort.Slice(rts, func(i, j int) bool { return rts[i] < rts[j] })
		db.routesOfStop[s] = rts
	}
	return db
}
