package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaversineKnown(t *testing.T) {
	// Two points ~1 degree of longitude apart at the equator: ~111.19 km.
	a := Point{Lat: 0, Lon: 0}
	b := Point{Lat: 0, Lon: 1}
	d := HaversineM(a, b)
	if math.Abs(d-111195) > 50 {
		t.Errorf("haversine = %v, want ~111195", d)
	}
}

func TestHaversineZero(t *testing.T) {
	p := Point{Lat: 1.35, Lon: 103.7}
	if d := HaversineM(p, p); d != 0 {
		t.Errorf("distance to self = %v", d)
	}
}

func TestHaversineSymmetric(t *testing.T) {
	f := func(la1, lo1, la2, lo2 float64) bool {
		a := Point{Lat: math.Mod(la1, 80), Lon: math.Mod(lo1, 180)}
		b := Point{Lat: math.Mod(la2, 80), Lon: math.Mod(lo2, 180)}
		if math.IsNaN(a.Lat) || math.IsNaN(a.Lon) || math.IsNaN(b.Lat) || math.IsNaN(b.Lon) {
			return true
		}
		d1, d2 := HaversineM(a, b), HaversineM(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	proj := NewProjection(JurongWestAnchor)
	pts := []Point{
		JurongWestAnchor,
		{Lat: 1.35, Lon: 103.72},
		{Lat: 1.36, Lon: 103.75},
	}
	for _, p := range pts {
		back := proj.ToPoint(proj.ToXY(p))
		if HaversineM(p, back) > 0.01 {
			t.Errorf("round trip moved %v by %v m", p, HaversineM(p, back))
		}
	}
}

func TestProjectionDistanceAgreement(t *testing.T) {
	proj := NewProjection(JurongWestAnchor)
	a := Point{Lat: 1.335, Lon: 103.695}
	b := Point{Lat: 1.355, Lon: 103.745}
	dGeo := HaversineM(a, b)
	dXY := DistM(proj.ToXY(a), proj.ToXY(b))
	if math.Abs(dGeo-dXY)/dGeo > 0.001 {
		t.Errorf("projected distance %v differs from haversine %v", dXY, dGeo)
	}
}

func TestLerp(t *testing.T) {
	a, b := XY{X: 0, Y: 0}, XY{X: 10, Y: 20}
	if m := Lerp(a, b, 0.5); m.X != 5 || m.Y != 10 {
		t.Errorf("midpoint = %v", m)
	}
	if s := Lerp(a, b, 0); s != a {
		t.Errorf("t=0 gives %v", s)
	}
	if e := Lerp(a, b, 1); e != b {
		t.Errorf("t=1 gives %v", e)
	}
}

func TestBBox(t *testing.T) {
	pts := []XY{{1, 2}, {5, -3}, {-2, 7}}
	b := BBoxOf(pts)
	want := BBox{MinX: -2, MinY: -3, MaxX: 5, MaxY: 7}
	if b != want {
		t.Errorf("bbox = %+v, want %+v", b, want)
	}
	if !b.Contains(XY{0, 0}) || b.Contains(XY{6, 0}) {
		t.Error("Contains wrong")
	}
	e := b.Expand(1)
	if e.MinX != -3 || e.MaxY != 8 {
		t.Errorf("Expand wrong: %+v", e)
	}
	if b.Width() != 7 || b.Height() != 10 {
		t.Errorf("dims wrong: %v x %v", b.Width(), b.Height())
	}
	if math.Abs(b.AreaKm2()-70.0/1e6) > 1e-15 {
		t.Errorf("area = %v", b.AreaKm2())
	}
}

func TestBBoxEmpty(t *testing.T) {
	if b := BBoxOf(nil); b != (BBox{}) {
		t.Errorf("empty bbox = %+v", b)
	}
}

func TestPolylineLengthAndAt(t *testing.T) {
	pl := NewPolyline([]XY{{0, 0}, {3, 0}, {3, 4}})
	if pl.Length() != 7 {
		t.Fatalf("length = %v, want 7", pl.Length())
	}
	cases := []struct {
		s    float64
		want XY
	}{
		{-1, XY{0, 0}},
		{0, XY{0, 0}},
		{1.5, XY{1.5, 0}},
		{3, XY{3, 0}},
		{5, XY{3, 2}},
		{7, XY{3, 4}},
		{100, XY{3, 4}},
	}
	for _, c := range cases {
		got := pl.At(c.s)
		if DistM(got, c.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestPolylineAtMonotoneProperty(t *testing.T) {
	pl := NewPolyline([]XY{{0, 0}, {10, 0}, {10, 10}, {20, 10}})
	// Walking forward along s never moves backwards in cumulative distance
	// from the start vertex along the path: check distance from start of
	// successive samples grows along the x+y taxicab structure used here.
	prev := 0.0
	for s := 0.0; s <= pl.Length(); s += 0.5 {
		p := pl.At(s)
		along := p.X + p.Y // for this staircase polyline, arc length == x+y
		if along+1e-9 < prev {
			t.Fatalf("At not monotone at s=%v", s)
		}
		prev = along
	}
}

func TestPolylinePanicsTooShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for short polyline")
		}
	}()
	NewPolyline([]XY{{0, 0}})
}

func TestPolylineCopies(t *testing.T) {
	src := []XY{{0, 0}, {1, 0}}
	pl := NewPolyline(src)
	src[0] = XY{99, 99}
	if pl.Start() != (XY{0, 0}) {
		t.Error("polyline aliased caller slice")
	}
	got := pl.Points()
	got[0] = XY{-1, -1}
	if pl.Start() != (XY{0, 0}) {
		t.Error("Points returned aliased storage")
	}
}

func TestPolylineStartEnd(t *testing.T) {
	pl := NewPolyline([]XY{{1, 2}, {3, 4}})
	if pl.Start() != (XY{1, 2}) || pl.End() != (XY{3, 4}) {
		t.Error("Start/End wrong")
	}
}

func TestPointString(t *testing.T) {
	s := Point{Lat: 1.23456, Lon: 103.7}.String()
	if s != "(1.23456, 103.70000)" {
		t.Errorf("String = %q", s)
	}
}
