package geo

import (
	"math"
	"testing"

	"busprobe/internal/stats"
)

// randomPolyline builds a polyline with 2-10 vertices in a 1 km box.
func randomPolyline(rng *stats.RNG) *Polyline {
	n := 2 + rng.Intn(9)
	pts := make([]XY, n)
	for i := range pts {
		pts[i] = XY{X: rng.Range(0, 1000), Y: rng.Range(0, 1000)}
	}
	return NewPolyline(pts)
}

func TestPolylineEndpointProperty(t *testing.T) {
	rng := stats.NewRNG(21)
	for trial := 0; trial < 300; trial++ {
		pl := randomPolyline(rng)
		if DistM(pl.At(0), pl.Start()) > 1e-9 {
			t.Fatal("At(0) != Start")
		}
		if DistM(pl.At(pl.Length()), pl.End()) > 1e-9 {
			t.Fatal("At(L) != End")
		}
	}
}

func TestPolylineLipschitzProperty(t *testing.T) {
	// Arc-length parameterization is 1-Lipschitz: straight-line distance
	// between two track points never exceeds the arc distance.
	rng := stats.NewRNG(22)
	for trial := 0; trial < 300; trial++ {
		pl := randomPolyline(rng)
		s1 := rng.Range(0, pl.Length())
		s2 := rng.Range(0, pl.Length())
		d := DistM(pl.At(s1), pl.At(s2))
		if d > math.Abs(s2-s1)+1e-9 {
			t.Fatalf("chord %v exceeds arc %v", d, math.Abs(s2-s1))
		}
	}
}

func TestPolylineInsideBBoxProperty(t *testing.T) {
	rng := stats.NewRNG(23)
	for trial := 0; trial < 300; trial++ {
		pl := randomPolyline(rng)
		box := BBoxOf(pl.Points()).Expand(1e-9)
		for k := 0; k < 20; k++ {
			p := pl.At(rng.Range(0, pl.Length()))
			if !box.Contains(p) {
				t.Fatalf("point %v outside hull box %+v", p, box)
			}
		}
	}
}

func TestPolylineLengthIsVertexSumProperty(t *testing.T) {
	rng := stats.NewRNG(24)
	for trial := 0; trial < 300; trial++ {
		pl := randomPolyline(rng)
		pts := pl.Points()
		var sum float64
		for i := 1; i < len(pts); i++ {
			sum += DistM(pts[i-1], pts[i])
		}
		if math.Abs(sum-pl.Length()) > 1e-9 {
			t.Fatalf("length %v != vertex sum %v", pl.Length(), sum)
		}
	}
}

func TestProjectionRoundTripProperty(t *testing.T) {
	proj := NewProjection(JurongWestAnchor)
	rng := stats.NewRNG(25)
	for trial := 0; trial < 500; trial++ {
		p := Point{
			Lat: JurongWestAnchor.Lat + rng.Range(-0.05, 0.05),
			Lon: JurongWestAnchor.Lon + rng.Range(-0.05, 0.05),
		}
		back := proj.ToPoint(proj.ToXY(p))
		if HaversineM(p, back) > 0.01 {
			t.Fatalf("round trip moved %v by %v m", p, HaversineM(p, back))
		}
	}
}

func TestHaversineTriangleInequalityProperty(t *testing.T) {
	rng := stats.NewRNG(26)
	pt := func() Point {
		return Point{Lat: rng.Range(1.2, 1.5), Lon: rng.Range(103.5, 104)}
	}
	for trial := 0; trial < 300; trial++ {
		a, b, c := pt(), pt(), pt()
		if HaversineM(a, c) > HaversineM(a, b)+HaversineM(b, c)+1e-6 {
			t.Fatalf("triangle inequality violated")
		}
	}
}
