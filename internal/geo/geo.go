// Package geo provides the geographic primitives used across busprobe:
// WGS-84 points, a local equirectangular meter projection anchored at the
// study region, haversine distances, polylines with arc-length
// interpolation, and bounding boxes.
//
// The study region in the paper is a 7 km x 4 km (25 km^2 after clipping)
// area of Jurong West, Singapore; Anchor defaults to a point in that
// neighbourhood so synthetic cities land at plausible coordinates.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusM is the mean Earth radius in meters.
const EarthRadiusM = 6371000.0

// Point is a WGS-84 coordinate in degrees.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// XY is a position in a local tangent-plane frame, in meters east (X) and
// north (Y) of the projection anchor.
type XY struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// String renders the point with ~1 m precision.
func (p Point) String() string {
	return fmt.Sprintf("(%.5f, %.5f)", p.Lat, p.Lon)
}

// HaversineM returns the great-circle distance between two points in
// meters.
func HaversineM(a, b Point) float64 {
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dla := (b.Lat - a.Lat) * math.Pi / 180
	dlo := (b.Lon - a.Lon) * math.Pi / 180
	s := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * EarthRadiusM * math.Asin(math.Sqrt(s))
}

// Projection is an equirectangular projection anchored at a reference
// point. It is accurate to well under a meter over the tens of kilometers
// the system operates on, and is invertible.
type Projection struct {
	anchor Point
	cosLat float64
}

// NewProjection returns a projection anchored at the given point.
func NewProjection(anchor Point) *Projection {
	return &Projection{
		anchor: anchor,
		cosLat: math.Cos(anchor.Lat * math.Pi / 180),
	}
}

// JurongWestAnchor is the default projection anchor: the south-west corner
// of the paper's 7 km x 4 km study region in Singapore.
var JurongWestAnchor = Point{Lat: 1.3330, Lon: 103.6900}

// Anchor returns the projection's reference point.
func (p *Projection) Anchor() Point { return p.anchor }

// ToXY projects a geographic point into local meters.
func (p *Projection) ToXY(pt Point) XY {
	return XY{
		X: (pt.Lon - p.anchor.Lon) * math.Pi / 180 * EarthRadiusM * p.cosLat,
		Y: (pt.Lat - p.anchor.Lat) * math.Pi / 180 * EarthRadiusM,
	}
}

// ToPoint inverts the projection.
func (p *Projection) ToPoint(xy XY) Point {
	return Point{
		Lat: p.anchor.Lat + xy.Y/EarthRadiusM*180/math.Pi,
		Lon: p.anchor.Lon + xy.X/(EarthRadiusM*p.cosLat)*180/math.Pi,
	}
}

// DistM returns the Euclidean distance between two local positions.
func DistM(a, b XY) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// Lerp linearly interpolates between two local positions; t in [0,1].
func Lerp(a, b XY, t float64) XY {
	return XY{X: a.X + (b.X-a.X)*t, Y: a.Y + (b.Y-a.Y)*t}
}

// BBox is an axis-aligned bounding box in local meters.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether the box contains the position (inclusive).
func (b BBox) Contains(p XY) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// Expand grows the box by m meters on every side.
func (b BBox) Expand(m float64) BBox {
	return BBox{MinX: b.MinX - m, MinY: b.MinY - m, MaxX: b.MaxX + m, MaxY: b.MaxY + m}
}

// Width returns the box width in meters.
func (b BBox) Width() float64 { return b.MaxX - b.MinX }

// Height returns the box height in meters.
func (b BBox) Height() float64 { return b.MaxY - b.MinY }

// AreaKm2 returns the box area in square kilometers.
func (b BBox) AreaKm2() float64 { return b.Width() * b.Height() / 1e6 }

// BBoxOf computes the bounding box of a non-empty set of positions.
func BBoxOf(pts []XY) BBox {
	if len(pts) == 0 {
		return BBox{}
	}
	b := BBox{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		b.MinX = math.Min(b.MinX, p.X)
		b.MinY = math.Min(b.MinY, p.Y)
		b.MaxX = math.Max(b.MaxX, p.X)
		b.MaxY = math.Max(b.MaxY, p.Y)
	}
	return b
}

// Polyline is an ordered sequence of local positions with cached
// cumulative arc lengths, supporting O(log n) interpolation along its
// length. It is the shape primitive for road segments and bus routes.
type Polyline struct {
	pts []XY
	cum []float64 // cum[i] = arc length from pts[0] to pts[i]
}

// NewPolyline builds a polyline over a copy of pts. It panics if fewer
// than two points are supplied.
func NewPolyline(pts []XY) *Polyline {
	if len(pts) < 2 {
		panic("geo: polyline needs at least two points")
	}
	cp := make([]XY, len(pts))
	copy(cp, pts)
	cum := make([]float64, len(cp))
	for i := 1; i < len(cp); i++ {
		cum[i] = cum[i-1] + DistM(cp[i-1], cp[i])
	}
	return &Polyline{pts: cp, cum: cum}
}

// Length returns the total arc length in meters.
func (pl *Polyline) Length() float64 { return pl.cum[len(pl.cum)-1] }

// Points returns a copy of the vertex list.
func (pl *Polyline) Points() []XY {
	cp := make([]XY, len(pl.pts))
	copy(cp, pl.pts)
	return cp
}

// At returns the position at arc length s from the start, clamping s to
// [0, Length].
func (pl *Polyline) At(s float64) XY {
	if s <= 0 {
		return pl.pts[0]
	}
	if s >= pl.Length() {
		return pl.pts[len(pl.pts)-1]
	}
	// Binary search for the containing segment.
	lo, hi := 0, len(pl.cum)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if pl.cum[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	seg := pl.cum[hi] - pl.cum[lo]
	t := 0.0
	if seg > 0 {
		t = (s - pl.cum[lo]) / seg
	}
	return Lerp(pl.pts[lo], pl.pts[hi], t)
}

// Start returns the first vertex.
func (pl *Polyline) Start() XY { return pl.pts[0] }

// End returns the last vertex.
func (pl *Polyline) End() XY { return pl.pts[len(pl.pts)-1] }
