package store

import (
	"fmt"
	"io"
	"os"
)

// MigrateLegacy adopts a legacy single-file JSONL journal as a store's
// first segment. Only a virgin store migrates — if the directory
// already holds any segment or snapshot, the legacy file is left
// untouched (it was migrated on an earlier boot, or the operator mixed
// configurations and deserves neither file destroyed). The move is a
// rename when the journal lives on the same filesystem, else a
// copy-then-remove. Returns true when a migration happened.
//
// After migration the legacy records are ordinary active-segment
// lines: recovery replays them (a torn final line skips as usual) and
// the store seals and snapshots over them like any other ingest.
func MigrateLegacy(dir, legacyPath string) (bool, error) {
	if legacyPath == "" {
		return false, nil
	}
	if _, err := os.Stat(legacyPath); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("store: stat legacy journal: %w", err)
	}
	ls, err := listDir(dir)
	if err != nil {
		return false, err
	}
	if len(ls.sealed) > 0 || ls.active != nil || len(ls.snaps) > 0 {
		return false, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	dst := activePath(dir, 1)
	if err := os.Rename(legacyPath, dst); err == nil {
		return true, nil
	}
	// Cross-filesystem (or exotic) rename failure: copy then remove.
	if err := copyFile(legacyPath, dst); err != nil {
		return false, err
	}
	if err := os.Remove(legacyPath); err != nil {
		return true, fmt.Errorf("store: remove migrated journal: %w", err)
	}
	return true, nil
}

// copyFile copies src to dst durably (sync before close).
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("store: migrate journal: %w", err)
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: migrate journal: %w", err)
	}
	werr := func() error {
		if _, err := io.Copy(out, in); err != nil {
			return err
		}
		return out.Sync()
	}()
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(dst) //lint:allow errcheckio best-effort cleanup; the half-copied destination is rewritten by the next attempt
		return fmt.Errorf("store: migrate journal: %w", werr)
	}
	return nil
}
