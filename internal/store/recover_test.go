package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestPowerCutTruncateEveryByte is the power-cut property test: build
// a store (sealed segments, a snapshot, an active tail), then for
// every file and every truncation length of that file, recover and
// assert the two safety invariants:
//
//   - recovery never fails (torn or missing data degrades, never errors)
//   - no record is double-counted: the snapshot's covered set and the
//     replayed set are disjoint, and no record replays twice
//
// Completeness is deliberately NOT asserted — cutting power mid-write
// may lose the torn record — but records the snapshot covers must
// survive any truncation of other files, which the snapshot-retention
// rule guarantees.
func TestPowerCutTruncateEveryByte(t *testing.T) {
	master := t.TempDir()
	opts := testOpts(master)
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const covered, tail = 40, 20
	appendRecords(t, s, 0, covered)
	upTo, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, covered)
	for i := range ids {
		ids[i] = 1000000 + i // matches rec(i)'s JSON value
	}
	state, err := json.Marshal(map[string]any{"ids": ids})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(upTo, state); err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s, covered, tail)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(master)
	if err != nil {
		t.Fatal(err)
	}
	cuts := 0
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(master, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(data); n++ {
			cuts++
			checkCut(t, master, ent.Name(), n)
		}
	}
	if cuts < 500 {
		t.Fatalf("only %d truncation points exercised; store too small for the property to mean anything", cuts)
	}
}

func checkCut(t *testing.T, master, victim string, length int) {
	t.Helper()
	dir := cloneDirTruncated(t, master, victim, length)
	r, err := PlanRecovery(testOpts(dir))
	if err != nil {
		t.Fatalf("cut %s@%d: plan: %v", victim, length, err)
	}
	seen := map[int]string{}
	count := func(id int, src string) {
		if prev, dup := seen[id]; dup {
			t.Fatalf("cut %s@%d: record %d double-counted (%s then %s)", victim, length, id, prev, src)
		}
		seen[id] = src
	}
	if r.State != nil {
		var st struct {
			IDs []int `json:"ids"`
		}
		if err := json.Unmarshal(r.State, &st); err != nil {
			t.Fatalf("cut %s@%d: recovered state undecodable: %v", victim, length, err)
		}
		for _, id := range st.IDs {
			count(id, "snapshot")
		}
	}
	if err := r.Replay(context.Background(), func(line []byte) error {
		var recv struct {
			Rec int `json:"rec"`
		}
		if err := json.Unmarshal(line, &recv); err != nil {
			return fmt.Errorf("undecodable replayed line %q: %v", line, err)
		}
		count(recv.Rec, "replay")
		return nil
	}); err != nil {
		t.Fatalf("cut %s@%d: replay: %v", victim, length, err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
}

// cloneDirTruncated copies master into a fresh directory with one file
// truncated to length bytes.
func cloneDirTruncated(t *testing.T, master, victim string, length int) string {
	t.Helper()
	dir, err := os.MkdirTemp(t.TempDir(), "cut")
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(master)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(master, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if ent.Name() == victim {
			data = data[:length]
		}
		if err := os.WriteFile(filepath.Join(dir, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}
