package store

import (
	"context"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"busprobe/internal/clock"
)

func testClock() clock.Clock {
	return clock.NewFake(time.Unix(1700000000, 0), time.Millisecond)
}

func testOpts(dir string) Options {
	return Options{Dir: dir, SegmentBytes: 256, MaxRecordBytes: 4096, Clock: testClock()}
}

// rec renders the i-th test record: fixed width (so segment-roll
// arithmetic is predictable) and valid JSON (a leading 1 digit keeps
// the zero padding from reading as an illegal leading zero).
func rec(i int) []byte {
	return []byte(fmt.Sprintf(`{"rec":1%06d}`, i))
}

func appendRecords(t *testing.T, s *Store, from, n int) {
	t.Helper()
	ctx := context.Background()
	for i := from; i < from+n; i++ {
		if err := s.Append(ctx, rec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// recover replays the directory, returning the plan and the replayed
// lines in order.
func recoverAll(t *testing.T, dir string) (*Recovery, []string) {
	t.Helper()
	r, err := PlanRecovery(testOpts(dir))
	if err != nil {
		t.Fatalf("plan recovery: %v", err)
	}
	var lines []string
	if err := r.Replay(context.Background(), func(line []byte) error {
		lines = append(lines, string(line))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return r, lines
}

func wantLines(t *testing.T, got []string, from, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, g := range got {
		if want := string(rec(from + i)); g != want {
			t.Fatalf("record %d = %q, want %q", i, g, want)
		}
	}
}

func TestAppendRollRecoverFullReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s, 0, 100) // 15-byte lines, 256-byte segments → many rolls
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.LastSealed() == 0 {
		t.Fatal("expected at least one sealed segment")
	}
	r, lines := recoverAll(t, dir)
	if r.Report.Mode != "full-replay" {
		t.Fatalf("mode = %q, want full-replay", r.Report.Mode)
	}
	if r.State != nil {
		t.Fatalf("unexpected snapshot state")
	}
	wantLines(t, lines, 0, 100)
	if r.Report.CorruptSegments != 0 || r.Report.TornTail {
		t.Fatalf("unexpected corruption: %+v", r.Report)
	}
}

func TestSnapshotTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s, 0, 50)
	upTo, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	state := []byte(`{"covers":50}`)
	if err := s.WriteSnapshot(upTo, state); err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s, 50, 20)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, lines := recoverAll(t, dir)
	if r.Report.Mode != "snapshot+tail" {
		t.Fatalf("mode = %q, want snapshot+tail (report %+v)", r.Report.Mode, r.Report)
	}
	if string(r.State) != string(state) {
		t.Fatalf("state = %q, want %q", r.State, state)
	}
	if r.Report.SnapshotSeq != upTo {
		t.Fatalf("snapshot seq = %d, want %d", r.Report.SnapshotSeq, upTo)
	}
	wantLines(t, lines, 50, 20)
}

func TestTornTailSkippedAndTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s, 0, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a record, no newline.
	active := findActive(t, dir)
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"rec":9999`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, lines := recoverAll(t, dir)
	wantLines(t, lines, 0, 10)
	if !r.Report.TornTail {
		t.Fatalf("torn tail not reported: %+v", r.Report)
	}
	if r.Report.RecordsSkipped != 1 {
		t.Fatalf("skipped = %d, want 1", r.Report.RecordsSkipped)
	}
	// Reopen: the torn bytes are truncated and appends continue cleanly.
	s2, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s2, 10, 5)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	r2, lines2 := recoverAll(t, dir)
	wantLines(t, lines2, 0, 15)
	if r2.Report.TornTail || r2.Report.RecordsSkipped != 0 {
		t.Fatalf("reopen did not truncate the torn tail: %+v", r2.Report)
	}
}

func TestCorruptSnapshotFallsBackOneSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s, 0, 30)
	up1, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(up1, []byte(`{"snap":1}`)); err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s, 30, 30)
	up2, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(up2, []byte(`{"snap":2}`)); err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s, 60, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the newest snapshot's state blob.
	corruptFile(t, snapshotPath(dir, up2), -1)
	r, lines := recoverAll(t, dir)
	if r.Report.Mode != "snapshot+tail" {
		t.Fatalf("mode = %q, want snapshot+tail", r.Report.Mode)
	}
	if string(r.State) != `{"snap":1}` {
		t.Fatalf("state = %q, want the older snapshot", r.State)
	}
	if r.Report.SnapshotsSkipped != 1 {
		t.Fatalf("snapshots skipped = %d, want 1", r.Report.SnapshotsSkipped)
	}
	// Tail from the older boundary: records 30..69.
	wantLines(t, lines, 30, 40)
}

func TestMissingMiddleSegmentFallsBackToFullReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s, 0, 20)
	upTo, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(upTo, []byte(`{"snap":1}`)); err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s, 20, 60) // several tail segments
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Remove a sealed tail segment above the snapshot boundary.
	ls, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim segFile
	for _, sf := range ls.sealed {
		if sf.seq > upTo {
			victim = sf
			break
		}
	}
	if victim.path == "" {
		t.Fatal("test needs a sealed segment above the snapshot boundary")
	}
	if err := os.Remove(victim.path); err != nil {
		t.Fatal(err)
	}
	r, lines := recoverAll(t, dir)
	if r.Report.Mode != "full-replay" {
		t.Fatalf("mode = %q, want full-replay (report %+v)", r.Report.Mode, r.Report)
	}
	if r.Report.SnapshotsSkipped != 1 {
		t.Fatalf("snapshots skipped = %d, want 1", r.Report.SnapshotsSkipped)
	}
	// Everything except the deleted segment's records replays, with a
	// note naming the hole.
	if len(lines) >= 80 || len(lines) == 0 {
		t.Fatalf("replayed %d records, want a partial set", len(lines))
	}
	found := false
	for _, n := range r.Report.Notes {
		if strings.Contains(n, "missing segment") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no missing-segment note: %v", r.Report.Notes)
	}
}

func TestCompactKeepsTwoSnapshotsAndTheirTails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	var bounds []uint64
	next := 0
	for snap := 1; snap <= 3; snap++ {
		appendRecords(t, s, next, 30)
		next += 30
		upTo, err := s.Seal()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteSnapshot(upTo, []byte(fmt.Sprintf(`{"snap":%d}`, snap))); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, upTo)
	}
	removed, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("compaction removed nothing")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ls, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.snaps) != 2 {
		t.Fatalf("snapshots after compact = %d, want 2", len(ls.snaps))
	}
	for _, sf := range ls.sealed {
		if sf.seq <= bounds[1] {
			t.Fatalf("segment %08d should have been compacted (<= %08d)", sf.seq, bounds[1])
		}
	}
	// Normal recovery uses the newest snapshot.
	r, _ := recoverAll(t, dir)
	if r.Report.Mode != "snapshot+tail" || string(r.State) != `{"snap":3}` {
		t.Fatalf("post-compact recovery: mode=%q state=%q", r.Report.Mode, r.State)
	}
	// The retention rule's whole point: corrupt the newest snapshot and
	// the previous one must still have its tail intact.
	corruptFile(t, snapshotPath(dir, bounds[2]), -1)
	r2, lines := recoverAll(t, dir)
	if r2.Report.Mode != "snapshot+tail" || string(r2.State) != `{"snap":2}` {
		t.Fatalf("fallback after compact: mode=%q state=%q notes=%v", r2.Report.Mode, r2.State, r2.Report.Notes)
	}
	wantLines(t, lines, 60, 30)
}

func TestOversizedLineSkipped(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.MaxRecordBytes = 64
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := string(rec(1)) + "\n" + strings.Repeat("x", 200) + "\n" + string(rec(2)) + "\n"
	if err := os.WriteFile(activePath(dir, 1), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := PlanRecovery(opts)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	if err := r.Replay(context.Background(), func(line []byte) error {
		lines = append(lines, string(line))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("replayed %d, want 2 (oversized line skipped)", len(lines))
	}
	if r.Report.RecordsSkipped != 1 {
		t.Fatalf("skipped = %d, want 1", r.Report.RecordsSkipped)
	}
	// The writer refuses records it could not replay.
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(context.Background(), []byte(strings.Repeat("y", 100))); err == nil {
		t.Fatal("oversized append accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAdoptFinishesInterruptedSeal(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A crash between footer write and rename leaves a .active file that
	// is internally sealed. Build one by hand.
	var body []byte
	for i := 0; i < 5; i++ {
		body = append(body, rec(i)...)
		body = append(body, '\n')
	}
	footer := sealFooter{Seal: sealMagic, Records: 5, Bytes: int64(len(body)), CRC32: crc32.ChecksumIEEE(body)}
	content := append(body, footer.encode()...)
	content = append(content, '\n')
	if err := os.WriteFile(activePath(dir, 3), content, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s, 5, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sealedPath(dir, 3)); err != nil {
		t.Fatalf("interrupted seal not finished: %v", err)
	}
	r, lines := recoverAll(t, dir)
	wantLines(t, lines, 0, 8)
	if r.Report.CorruptSegments != 0 {
		t.Fatalf("finished seal reads as corrupt: %+v", r.Report)
	}
}

// TestReplaySurvivesOpenFinishingPendingSeal: a plan built before Open
// normalizes the directory must still replay a fully-sealed-but-
// unrenamed active segment after Open finishes the seal (renaming
// .active → .seal out from under the plan). Losing that segment would
// silently drop acked records, and the next compaction would make the
// loss permanent.
func TestReplaySurvivesOpenFinishingPendingSeal(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var body []byte
	for i := 0; i < 5; i++ {
		body = append(body, rec(i)...)
		body = append(body, '\n')
	}
	footer := sealFooter{Seal: sealMagic, Records: 5, Bytes: int64(len(body)), CRC32: crc32.ChecksumIEEE(body)}
	content := append(body, footer.encode()...)
	content = append(content, '\n')
	if err := os.WriteFile(activePath(dir, 3), content, 0o644); err != nil {
		t.Fatal(err)
	}
	// Plan first — the plan's tail references seg-3.active.
	r, err := PlanRecovery(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Open finishes the pending seal: seg-3.active becomes seg-3.seal.
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sealedPath(dir, 3)); err != nil {
		t.Fatalf("open did not finish the pending seal: %v", err)
	}
	var lines []string
	if err := r.Replay(context.Background(), func(line []byte) error {
		lines = append(lines, string(line))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	wantLines(t, lines, 0, 5)
	if r.Report.CorruptSegments != 0 {
		t.Fatalf("renamed segment reported corrupt: %+v", r.Report)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenedVirginDirPlansFresh: recovery paths open the store before
// planning, so a virgin directory holds one empty active segment by
// plan time — that is still a fresh store, not a full replay.
func TestOpenedVirginDirPlansFresh(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	r, lines := recoverAll(t, dir)
	if r.Report.Mode != "fresh" || len(lines) != 0 {
		t.Fatalf("mode=%q lines=%d, want fresh/0", r.Report.Mode, len(lines))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactRemovesStaleCorruptSnapshots: a corrupt snapshot behind
// the retained boundary is dead weight — no recovery uses it — and
// must be deleted instead of accumulating forever. A corrupt snapshot
// at or above the boundary stays.
func TestCompactRemovesStaleCorruptSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	var bounds []uint64
	next := 0
	for snap := 1; snap <= 3; snap++ {
		appendRecords(t, s, next, 30)
		next += 30
		upTo, err := s.Seal()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteSnapshot(upTo, []byte(fmt.Sprintf(`{"snap":%d}`, snap))); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, upTo)
	}
	corruptFile(t, snapshotPath(dir, bounds[0]), -1)
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snapshotPath(dir, bounds[0])); !os.IsNotExist(err) {
		t.Fatalf("stale corrupt snapshot not removed: %v", err)
	}
	ls, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.snaps) != 2 {
		t.Fatalf("snapshots after compact = %d, want 2", len(ls.snaps))
	}
	// Corrupt the NEWEST snapshot: it is above the retained boundary,
	// and with only one valid snapshot left compaction is a no-op that
	// must not delete it.
	corruptFile(t, snapshotPath(dir, bounds[2]), -1)
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snapshotPath(dir, bounds[2])); err != nil {
		t.Fatalf("corrupt newest snapshot deleted by compaction: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotDueSignal(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.SnapshotEvery = 3
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendRecords(t, s, 0, 2)
	select {
	case <-s.SnapshotDue():
		t.Fatal("snapshot due after 2 of 3 appends")
	default:
	}
	appendRecords(t, s, 2, 1)
	select {
	case <-s.SnapshotDue():
	default:
		t.Fatal("snapshot not due after 3 appends")
	}
	upTo, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(upTo, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if got := s.AppendsSinceSnapshot(); got != 0 {
		t.Fatalf("appends since snapshot = %d, want 0", got)
	}
}

func TestRecoveryOfFreshAndMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "never-created")
	r, lines := recoverAll(t, dir)
	if r.Report.Mode != "fresh" || len(lines) != 0 {
		t.Fatalf("mode=%q lines=%d, want fresh/0", r.Report.Mode, len(lines))
	}
}

func TestMigrateLegacyJournal(t *testing.T) {
	base := t.TempDir()
	legacy := filepath.Join(base, "journal.jsonl")
	dir := filepath.Join(base, "store")
	content := string(rec(0)) + "\n" + string(rec(1)) + "\n" + `{"rec":99` // torn tail
	if err := os.WriteFile(legacy, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	migrated, err := MigrateLegacy(dir, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if !migrated {
		t.Fatal("migration did not happen")
	}
	if _, err := os.Stat(legacy); !os.IsNotExist(err) {
		t.Fatalf("legacy journal still present: %v", err)
	}
	r, lines := recoverAll(t, dir)
	wantLines(t, lines, 0, 2)
	if !r.Report.TornTail {
		t.Fatalf("legacy torn tail not reported: %+v", r.Report)
	}
	// A non-virgin store refuses to migrate (and leaves the file alone).
	legacy2 := filepath.Join(base, "journal2.jsonl")
	if err := os.WriteFile(legacy2, []byte(string(rec(5))+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	migrated, err = MigrateLegacy(dir, legacy2)
	if err != nil {
		t.Fatal(err)
	}
	if migrated {
		t.Fatal("non-virgin store migrated")
	}
	if _, err := os.Stat(legacy2); err != nil {
		t.Fatalf("second legacy journal was consumed: %v", err)
	}
	// Migration then Open then append: the legacy lines stay first.
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, s, 2, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, lines = recoverAll(t, dir)
	wantLines(t, lines, 0, 5)
}

// corruptFile flips one byte. Offset -1 means "last byte".
func corruptFile(t *testing.T, path string, offset int64) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if offset < 0 {
		offset = int64(len(b)) - 1
	}
	b[offset] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func findActive(t *testing.T, dir string) string {
	t.Helper()
	ls, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ls.active == nil {
		t.Fatal("no active segment")
	}
	return ls.active.path
}
