package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"busprobe/internal/clock"
)

// snapMagic identifies a snapshot file's header line.
const snapMagic = 1

// snapHeader is the first line of a snapshot file. The StateBytes
// bytes that follow the header's newline are the opaque state blob;
// StateCRC32 (IEEE) covers exactly those bytes.
type snapHeader struct {
	Snap            int    `json:"busprobeSnap"`
	UpTo            uint64 `json:"upTo"`
	WrittenUnixNano int64  `json:"writtenUnixNano"`
	StateBytes      int64  `json:"stateBytes"`
	StateCRC32      uint32 `json:"stateCRC32"`
}

// writeSnapshotFile persists one snapshot atomically: temp file in the
// same directory, sync, rename onto the final name. A crash at any
// point leaves either no snapshot or a complete one — never a partial
// file under the snapshot name (leftover temp files are ignored by
// listDir and overwritten by the next attempt).
func writeSnapshotFile(dir string, upTo uint64, state []byte, clk clock.Clock) error {
	hdr := snapHeader{
		Snap:            snapMagic,
		UpTo:            upTo,
		WrittenUnixNano: clk.Now().UnixNano(),
		StateBytes:      int64(len(state)),
		StateCRC32:      crc32.ChecksumIEEE(state),
	}
	hb, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("store: encode snapshot header: %w", err)
	}
	final := snapshotPath(dir, upTo)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	werr := func() error {
		bw := bufio.NewWriter(f)
		if _, err := bw.Write(hb); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		if _, err := bw.Write(state); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp) //lint:allow errcheckio best-effort cleanup of a temp file the next attempt truncates anyway
		return fmt.Errorf("store: write snapshot: %w", werr)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	return nil
}

// readSnapshotFile loads and verifies one snapshot, returning the
// header and the state blob. Any structural defect — unparsable
// header, short state, checksum mismatch — is an error, which the
// recovery ladder treats as "this snapshot does not exist".
func readSnapshotFile(path string) (snapHeader, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return snapHeader{}, nil, fmt.Errorf("store: open snapshot: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return snapHeader{}, nil, fmt.Errorf("store: snapshot header: %w", err)
	}
	var hdr snapHeader
	if err := json.Unmarshal(bytes.TrimSuffix(line, []byte("\n")), &hdr); err != nil {
		return snapHeader{}, nil, fmt.Errorf("store: snapshot header: %w", err)
	}
	if hdr.Snap != snapMagic {
		return snapHeader{}, nil, fmt.Errorf("store: snapshot header: bad magic %d", hdr.Snap)
	}
	if hdr.StateBytes < 0 {
		return snapHeader{}, nil, fmt.Errorf("store: snapshot header: negative state size")
	}
	state := make([]byte, hdr.StateBytes)
	if _, err := io.ReadFull(br, state); err != nil {
		return snapHeader{}, nil, fmt.Errorf("store: snapshot state: %w", err)
	}
	if got := crc32.ChecksumIEEE(state); got != hdr.StateCRC32 {
		return snapHeader{}, nil, fmt.Errorf("store: snapshot checksum mismatch: got %08x want %08x", got, hdr.StateCRC32)
	}
	return hdr, state, nil
}
