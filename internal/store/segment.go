package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// sealMagic identifies a segment's footer line. A record line never
// starts with this key, so the footer is unambiguous.
const sealMagic = 1

// sealFooter is the final line of a sealed segment. CRC32 (IEEE)
// covers the first Bytes bytes of the file — every record line
// including its newline, and nothing of the footer itself.
type sealFooter struct {
	Seal    int    `json:"busprobeSeal"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	CRC32   uint32 `json:"crc32"`
}

// encode renders the footer as its on-disk line (sans newline).
func (sf sealFooter) encode() []byte {
	b, err := json.Marshal(sf)
	if err != nil {
		// A struct of ints cannot fail to marshal.
		panic(fmt.Sprintf("store: encode seal footer: %v", err))
	}
	return b
}

// parseFooter reports whether line is a seal footer.
func parseFooter(line []byte) (sealFooter, bool) {
	if !bytes.Contains(line, []byte(`"busprobeSeal"`)) {
		return sealFooter{}, false
	}
	var sf sealFooter
	if err := json.Unmarshal(line, &sf); err != nil || sf.Seal != sealMagic {
		return sealFooter{}, false
	}
	return sf, true
}

// lineWriter buffers line appends to a file.
type lineWriter struct {
	bw *bufio.Writer
}

func newLineWriter(w io.Writer) *lineWriter {
	return &lineWriter{bw: bufio.NewWriter(w)}
}

// writeLine appends one record plus newline and flushes, reporting the
// bytes written. A short write surfaces as an error.
func (lw *lineWriter) writeLine(rec []byte) (int, error) {
	if _, err := lw.bw.Write(rec); err != nil {
		return 0, err
	}
	if err := lw.bw.WriteByte('\n'); err != nil {
		return 0, err
	}
	if err := lw.bw.Flush(); err != nil {
		return 0, err
	}
	return len(rec) + 1, nil
}

func (lw *lineWriter) Flush() error { return lw.bw.Flush() }

// segFile is one segment file found in a store directory.
type segFile struct {
	seq  uint64
	path string
}

// snapFile is one snapshot file found in a store directory.
type snapFile struct {
	upTo uint64
	path string
}

// dirListing is a store directory's contents, each class ascending.
type dirListing struct {
	sealed []segFile
	active *segFile
	snaps  []snapFile
}

func (ls dirListing) maxSealed() uint64 {
	if len(ls.sealed) == 0 {
		return 0
	}
	return ls.sealed[len(ls.sealed)-1].seq
}

func (ls dirListing) maxSeq() uint64 {
	m := ls.maxSealed()
	if ls.active != nil && ls.active.seq > m {
		m = ls.active.seq
	}
	return m
}

// listDir scans a store directory. Unrecognized files are ignored (a
// crashed snapshot temp file, an editor backup). Multiple .active
// files — impossible from this writer, conceivable from a botched
// copy — keep only the newest active; older ones are treated as sealed
// segments missing their footer (replay tolerates that).
func listDir(dir string) (dirListing, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return dirListing{}, nil
		}
		return dirListing{}, fmt.Errorf("store: read dir: %w", err)
	}
	var ls dirListing
	var actives []segFile
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		path := filepath.Join(dir, name)
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seal"):
			if seq, ok := parseSeq(name, "seg-", ".seal"); ok {
				ls.sealed = append(ls.sealed, segFile{seq: seq, path: path})
			}
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".active"):
			if seq, ok := parseSeq(name, "seg-", ".active"); ok {
				actives = append(actives, segFile{seq: seq, path: path})
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if upTo, ok := parseSeq(name, "snap-", ".snap"); ok {
				ls.snaps = append(ls.snaps, snapFile{upTo: upTo, path: path})
			}
		}
	}
	sort.Slice(ls.sealed, func(i, j int) bool { return ls.sealed[i].seq < ls.sealed[j].seq })
	sort.Slice(ls.snaps, func(i, j int) bool { return ls.snaps[i].upTo < ls.snaps[j].upTo })
	sort.Slice(actives, func(i, j int) bool { return actives[i].seq < actives[j].seq })
	if len(actives) > 0 {
		a := actives[len(actives)-1]
		ls.active = &a
		ls.sealed = append(ls.sealed, actives[:len(actives)-1]...)
		sort.Slice(ls.sealed, func(i, j int) bool { return ls.sealed[i].seq < ls.sealed[j].seq })
	}
	return ls, nil
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// segScan is what scanSegment learned about a segment file.
type segScan struct {
	// sealed reports a complete seal footer as the file's last line.
	sealed bool
	footer sealFooter
	// goodBytes is the byte length of the complete record lines
	// (newlines included, footer excluded).
	goodBytes int64
	// records counts complete record lines.
	records int
	// crc is the IEEE CRC-32 over the first goodBytes bytes.
	crc uint32
	// tornBytes counts trailing bytes after the last newline — a
	// half-written record from a crash.
	tornBytes int64
}

// scanSegment reads a segment file byte-exactly: every complete line
// counts as a record (content is not parsed — replay does that), the
// last complete line is checked for a seal footer, and anything after
// the final newline is the torn tail. Open uses this to adopt a
// pre-existing active segment with an accurate running checksum.
func scanSegment(path string, maxLine int) (segScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return segScan{}, fmt.Errorf("store: scan segment: %w", err)
	}
	defer f.Close()
	var st segScan
	var last []byte // most recent complete line, not yet folded in
	haveLast := false
	fold := func() {
		st.crc = crc32.Update(st.crc, crc32.IEEETable, last)
		st.crc = crc32.Update(st.crc, crc32.IEEETable, []byte{'\n'})
		st.goodBytes += int64(len(last)) + 1
		st.records++
	}
	br := bufio.NewReader(f)
	var partial []byte
	for {
		chunk, rerr := br.ReadSlice('\n')
		partial = append(partial, chunk...)
		if rerr == bufio.ErrBufferFull {
			continue
		}
		if rerr != nil && rerr != io.EOF {
			return segScan{}, fmt.Errorf("store: scan segment: %w", rerr)
		}
		if n := len(partial); n > 0 && partial[n-1] == '\n' {
			if haveLast {
				fold()
			}
			last = append(last[:0], partial[:n-1]...)
			haveLast = true
			partial = partial[:0]
		}
		if rerr == io.EOF {
			break
		}
	}
	st.tornBytes = int64(len(partial))
	if haveLast {
		if sf, ok := parseFooter(last); ok && st.tornBytes == 0 {
			st.sealed = true
			st.footer = sf
		} else {
			fold()
		}
	}
	return st, nil
}

// ForEachLine feeds every complete line of r to fn, newline stripped.
// Lines longer than maxLine are skipped and counted (they cannot be
// valid records — the writer refuses them — so a huge line means
// corruption, and buffering it fully would let a corrupt file exhaust
// memory). Trailing bytes with no newline are the torn tail. An error
// from fn stops the walk. Exported because it is the line-log reading
// discipline: the legacy journal replay shares it.
func ForEachLine(r io.Reader, maxLine int, fn func(line []byte) error) (torn bool, oversized int, err error) {
	br := bufio.NewReader(r)
	var buf []byte
	over := false
	for {
		// ReadSlice contract: nil error means the chunk ends at the
		// newline (line complete); ErrBufferFull means more of the same
		// line follows; io.EOF means trailing bytes with no newline.
		chunk, rerr := br.ReadSlice('\n')
		if len(chunk) > 0 && !over {
			if len(buf)+len(chunk) > maxLine+1 {
				over = true
				buf = buf[:0]
			} else {
				buf = append(buf, chunk...)
			}
		}
		switch rerr {
		case bufio.ErrBufferFull:
			continue
		case nil:
			if over {
				oversized++
				over = false
			} else if ferr := fn(buf[:len(buf)-1]); ferr != nil {
				return false, oversized, ferr
			}
			buf = buf[:0]
		case io.EOF:
			return over || len(buf) > 0, oversized, nil
		default:
			return false, oversized, fmt.Errorf("store: read segment: %w", rerr)
		}
	}
}
