// Package store is the log-structured durable storage engine behind
// the server's persistence: an append-only record log whose restart
// cost is bounded by recent activity instead of lifetime ingest.
//
// On disk, a store directory holds three kinds of files:
//
//   - seg-NNNNNNNN.active — the one active segment, a JSON-lines record
//     log being appended. At most one exists; a crash can tear its last
//     line, which recovery skips.
//   - seg-NNNNNNNN.seal — sealed segments: the same record lines plus a
//     final footer line carrying a CRC-32 over every byte before it.
//     Sealed segments are immutable; recovery verifies the checksum.
//   - snap-NNNNNNNN.snap — snapshots: an opaque state blob (the
//     server's exported pipeline state) covering every record in
//     segments with sequence <= NNNNNNNN, checksummed and written
//     atomically (temp file + rename).
//
// The active segment rolls into a sealed one when it crosses the size
// threshold. A snapshot is only ever taken at a segment boundary — the
// writer seals the active segment first — so "snapshot upTo K" and
// "replay segments > K" partition the record stream exactly.
// Compaction deletes segments fully covered by the *previous* retained
// snapshot (the newest two snapshots are kept), so a corrupt newest
// snapshot can still fall back one snapshot and find its tail intact.
//
// Recovery (Plan + Plan.Replay) climbs a ladder: newest intact snapshot
// plus its contiguous tail; else the previous snapshot; else a full
// replay of every segment that still exists. Torn active tails and
// individually corrupt lines are skipped and counted, never fatal.
package store

import (
	"context"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"busprobe/internal/clock"
)

// DefaultSegmentBytes is the roll threshold for the active segment.
const DefaultSegmentBytes = 4 << 20

// DefaultMaxRecordBytes bounds one record line; longer lines are
// skipped at replay (they cannot be valid records) and refused at
// append.
const DefaultMaxRecordBytes = 4 << 20

// Options configures a store.
type Options struct {
	// Dir is the store directory, created if needed.
	Dir string
	// SegmentBytes is the active-segment roll threshold
	// (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// MaxRecordBytes bounds one record line (0 = DefaultMaxRecordBytes).
	MaxRecordBytes int
	// SnapshotEvery, when > 0, arms the snapshot signal: after that many
	// records append since the last snapshot, SnapshotDue fires.
	SnapshotEvery int
	// Clock stamps snapshot metadata (nil = clock.Wall).
	Clock clock.Clock
	// SkipSnapshots makes PlanRecovery ignore every snapshot and plan a
	// full replay — the bottom rung of the ladder, reached explicitly
	// when a caller finds a checksum-valid snapshot whose state it
	// cannot decode (a schema change, a cross-version downgrade).
	SkipSnapshots bool
}

// withDefaults fills the zero values in.
func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if o.Clock == nil {
		o.Clock = clock.Wall{}
	}
	return o
}

// Store is the append side of the engine. Safe for concurrent use.
type Store struct {
	opts Options

	mu           sync.Mutex
	f            *os.File    //lint:guardedby mu
	w            *lineWriter //lint:guardedby mu
	activeSeq    uint64      //lint:guardedby mu
	activeBytes  int64       //lint:guardedby mu
	activeRecs   int         //lint:guardedby mu
	activeCRC    uint32      //lint:guardedby mu
	lastSealed   uint64      //lint:guardedby mu
	sinceSnap    int         //lint:guardedby mu
	lastSnapUpTo uint64      //lint:guardedby mu
	closed       bool        //lint:guardedby mu

	// snapDue is the snapshot signal (buffered 1): armed by Options.
	// SnapshotEvery, fired under mu, drained by the snapshotter.
	snapDue chan struct{}
}

// Open opens (creating if needed) a store directory for appending.
// A pre-existing active segment is adopted: its torn final line, if
// any, is truncated away (the record was never durable — recovery has
// already skipped it), and a fully sealed-but-unrenamed active (crash
// between footer and rename) is finished into a sealed segment.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: no directory configured")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ls, err := listDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	s := &Store{opts: opts, snapDue: make(chan struct{}, 1)}
	s.lastSealed = ls.maxSealed()
	if len(ls.snaps) > 0 {
		s.lastSnapUpTo = ls.snaps[len(ls.snaps)-1].upTo
	}
	nextSeq := ls.maxSeq() + 1
	if ls.active != nil {
		adopted, err := s.adoptActive(*ls.active)
		if err != nil {
			return nil, err
		}
		if adopted {
			return s, nil
		}
		// The active was already sealed (crash mid-seal, now finished);
		// fall through and start the next one.
		nextSeq = ls.active.seq + 1
		if ls.active.seq > s.lastSealed {
			s.lastSealed = ls.active.seq
		}
	}
	if err := s.openActiveLocked(nextSeq); err != nil {
		return nil, err
	}
	return s, nil
}

// adoptActive takes over a pre-existing active segment, reporting true
// when it stays active (false when it turned out to be fully sealed and
// was finished into a sealed file).
func (s *Store) adoptActive(sf segFile) (bool, error) {
	st, err := scanSegment(sf.path, s.opts.MaxRecordBytes)
	if err != nil {
		return false, err
	}
	if st.sealed {
		// The footer is already on disk; only the rename was lost.
		if err := os.Rename(sf.path, sealedPath(s.opts.Dir, sf.seq)); err != nil {
			return false, fmt.Errorf("store: finish seal: %w", err)
		}
		return false, nil
	}
	f, err := os.OpenFile(sf.path, os.O_WRONLY, 0o644)
	if err != nil {
		return false, fmt.Errorf("store: reopen active: %w", err)
	}
	if st.tornBytes > 0 {
		if err := f.Truncate(st.goodBytes); err != nil {
			cerr := f.Close()
			return false, fmt.Errorf("store: trim torn tail: %w (close: %v)", err, cerr)
		}
	}
	if _, err := f.Seek(st.goodBytes, 0); err != nil {
		cerr := f.Close()
		return false, fmt.Errorf("store: seek active: %w (close: %v)", err, cerr)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f = f
	s.w = newLineWriter(f)
	s.activeSeq = sf.seq
	s.activeBytes = st.goodBytes
	s.activeRecs = st.records
	s.activeCRC = st.crc
	return true, nil
}

// openActiveLocked creates the active segment file for seq. Callers
// hold mu or have exclusive access (Open).
func (s *Store) openActiveLocked(seq uint64) error {
	path := activePath(s.opts.Dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	s.f = f
	s.w = newLineWriter(f)
	s.activeSeq = seq
	s.activeBytes = 0
	s.activeRecs = 0
	s.activeCRC = 0
	return nil
}

// Append writes one record line durably (flushed to the OS before
// returning) and rolls the active segment when it crosses the size
// threshold. The record must be a single line (no newlines) and fit
// MaxRecordBytes. A canceled context fails the append before anything
// reaches the file.
func (s *Store) Append(ctx context.Context, rec []byte) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if len(rec) >= s.opts.MaxRecordBytes {
		return fmt.Errorf("store: record of %d bytes exceeds the %d-byte line bound", len(rec), s.opts.MaxRecordBytes)
	}
	for _, b := range rec {
		if b == '\n' {
			return fmt.Errorf("store: record contains a newline")
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append to closed store")
	}
	n, err := s.w.writeLine(rec)
	if err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	// Hand the line to the OS before acking: an acked record must
	// survive SIGKILL (the journal this store replaces flushed per
	// append too). Power-cut durability is the snapshot's job — those
	// are fsynced before rename.
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	s.activeCRC = crc32.Update(s.activeCRC, crc32.IEEETable, rec)
	s.activeCRC = crc32.Update(s.activeCRC, crc32.IEEETable, []byte{'\n'})
	s.activeBytes += int64(n)
	s.activeRecs++
	s.sinceSnap++
	if s.activeBytes >= s.opts.SegmentBytes {
		if err := s.sealLocked(); err != nil {
			return err
		}
	}
	if s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		select { //lint:allow lockorder non-blocking send (default case) on a 1-buffered signal channel; cannot block under mu
		case s.snapDue <- struct{}{}:
		default:
		}
	}
	return nil
}

// SnapshotDue signals when SnapshotEvery records have appended since
// the last snapshot. The channel is buffered and level-triggered:
// drain one token, take a snapshot, repeat.
func (s *Store) SnapshotDue() <-chan struct{} { return s.snapDue }

// AppendsSinceSnapshot reports records appended since the last
// WriteSnapshot.
func (s *Store) AppendsSinceSnapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceSnap
}

// Seal closes the active segment into a sealed, checksummed one (a
// no-op when the active segment holds no records) and reports the
// highest sealed sequence — the boundary a snapshot taken now covers.
func (s *Store) Seal() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: seal on closed store")
	}
	if s.activeRecs == 0 {
		return s.lastSealed, nil
	}
	if err := s.sealLocked(); err != nil {
		return 0, err
	}
	return s.lastSealed, nil
}

// sealLocked writes the footer, syncs, renames the active segment to
// its sealed name, and opens the next active segment.
func (s *Store) sealLocked() error {
	seq := s.activeSeq
	footer := sealFooter{Seal: sealMagic, Records: s.activeRecs, Bytes: s.activeBytes, CRC32: s.activeCRC}
	if _, err := s.w.writeLine(footer.encode()); err != nil {
		return fmt.Errorf("store: seal segment %d: %w", seq, err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: seal segment %d: %w", seq, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: sync segment %d: %w", seq, err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("store: close segment %d: %w", seq, err)
	}
	if err := os.Rename(activePath(s.opts.Dir, seq), sealedPath(s.opts.Dir, seq)); err != nil {
		return fmt.Errorf("store: seal segment %d: %w", seq, err)
	}
	s.lastSealed = seq
	return s.openActiveLocked(seq + 1)
}

// WriteSnapshot persists one opaque state blob covering every record in
// segments with sequence <= upTo (normally the value Seal just
// returned). The write is atomic: temp file, sync, rename. It also
// resets the snapshot-due counter.
func (s *Store) WriteSnapshot(upTo uint64, state []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: snapshot on closed store")
	}
	clk := s.opts.Clock
	dir := s.opts.Dir
	s.mu.Unlock()
	if err := writeSnapshotFile(dir, upTo, state, clk); err != nil {
		return err
	}
	s.mu.Lock()
	s.sinceSnap = 0
	if upTo > s.lastSnapUpTo {
		s.lastSnapUpTo = upTo
	}
	s.mu.Unlock()
	return nil
}

// Compact deletes sealed segments fully covered by the previous
// retained snapshot and snapshots older than it — including corrupt
// snapshot files behind that boundary, which no recovery will ever
// use and which would otherwise accumulate forever. The newest two
// valid snapshots are kept so recovery can fall back one snapshot and
// still find that snapshot's tail intact. Concurrent compactions (the
// snapshotter racing a shutdown checkpoint) may each try to remove
// the same file; a remove that loses that race is a success, not an
// error. Returns the number of segment files removed.
func (s *Store) Compact() (int, error) {
	s.mu.Lock()
	dir := s.opts.Dir
	s.mu.Unlock()
	ls, err := listDir(dir)
	if err != nil {
		return 0, err
	}
	// Only checksum-valid snapshots count toward the retained pair:
	// compacting up to a corrupt snapshot would delete the sole copy
	// of its records.
	var valid, invalid []snapFile
	for _, sf := range ls.snaps {
		if _, _, err := readSnapshotFile(sf.path); err == nil {
			valid = append(valid, sf)
		} else {
			invalid = append(invalid, sf)
		}
	}
	if len(valid) < 2 {
		return 0, nil
	}
	keepFrom := valid[len(valid)-2] // previous retained snapshot
	removed := 0
	for _, sf := range ls.sealed {
		if sf.seq <= keepFrom.upTo {
			if err := removeTolerant(sf.path); err != nil {
				return removed, err
			}
			removed++
		}
	}
	for _, sf := range valid[:len(valid)-2] {
		if err := removeTolerant(sf.path); err != nil {
			return removed, err
		}
	}
	// Corrupt snapshots behind the retained boundary are dead weight:
	// the ladder skips them and their covered records live on in the
	// retained snapshots. Newer corrupt ones stay — deleting the
	// newest snapshot's file out from under a concurrent writer that
	// is mid-rename would be needless aggression.
	for _, sf := range invalid {
		if sf.upTo < keepFrom.upTo {
			if err := removeTolerant(sf.path); err != nil {
				return removed, err
			}
		}
	}
	return removed, nil
}

// removeTolerant removes a file, treating "already gone" as success so
// concurrent compactions do not fail each other.
func removeTolerant(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: compact: %w", err)
	}
	return nil
}

// LastSealed reports the highest sealed segment sequence.
func (s *Store) LastSealed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSealed
}

// Close flushes and closes the active segment. The store cannot be
// used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		cerr := s.f.Close()
		return fmt.Errorf("store: close: %w (close: %v)", err, cerr)
	}
	return s.f.Close()
}

// activePath / sealedPath / snapshotPath name the store's files.
func activePath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.active", seq))
}

func sealedPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.seal", seq))
}

func snapshotPath(dir string, upTo uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", upTo))
}
