package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Report is one store directory's recovery outcome, shaped for the
// boot-time recovery artifact (JSON) and the boot log.
type Report struct {
	// Dir is the store directory recovered.
	Dir string `json:"dir"`
	// Mode is how state was rebuilt: "fresh" (empty store),
	// "snapshot+tail" (state import plus tail replay), or
	// "full-replay" (no usable snapshot; every surviving segment
	// replayed).
	Mode string `json:"mode"`
	// SnapshotSeq is the segment boundary of the snapshot used
	// (snapshot+tail mode only).
	SnapshotSeq uint64 `json:"snapshotSeq,omitempty"`
	// SnapshotsSkipped counts snapshots rejected on the way down the
	// ladder (checksum mismatch, missing tail segment).
	SnapshotsSkipped int `json:"snapshotsSkipped,omitempty"`
	// SealedSegments counts sealed segment files present.
	SealedSegments int `json:"sealedSegments"`
	// SegmentsReplayed counts segment files walked during replay.
	SegmentsReplayed int `json:"segmentsReplayed"`
	// RecordsReplayed counts record lines delivered to the replay
	// callback. The caller layers its own accept/reject counts on top.
	RecordsReplayed int `json:"recordsReplayed"`
	// RecordsSkipped counts store-level skips: oversized lines and
	// lines lost to a torn tail.
	RecordsSkipped int `json:"recordsSkipped"`
	// CorruptSegments counts sealed segments whose checksum or footer
	// failed verification (their parseable lines replay anyway).
	CorruptSegments int `json:"corruptSegments,omitempty"`
	// TornTail reports a half-written final record (normal after a
	// crash mid-append).
	TornTail bool `json:"tornTail,omitempty"`
	// Migrated reports that a legacy single-file journal was adopted
	// into this store before recovery.
	Migrated bool `json:"migrated,omitempty"`
	// Notes carries human-readable detail for every degraded decision.
	Notes []string `json:"notes,omitempty"`
}

// Recovery is a recovery decision: which snapshot state to import (if
// any) and which segments to replay after it. Build one with
// PlanRecovery, import State, then call Replay.
type Recovery struct {
	// State is the snapshot blob to import before replaying, nil when
	// no usable snapshot survived.
	State []byte
	// Report accumulates the outcome; Replay updates its counters.
	Report Report

	opts Options
	tail []segFile
}

// PlanRecovery inspects a store directory and picks the cheapest safe
// way back to the pre-crash state:
//
//  1. The newest snapshot whose checksum verifies and whose tail
//     segments (every sequence above its boundary) all exist.
//  2. Failing that, each older snapshot in turn under the same test.
//  3. Failing all snapshots, a full replay of every segment present.
//
// A store directory that does not exist or is empty plans a "fresh"
// recovery with nothing to do. PlanRecovery only reads snapshot files;
// segment contents are verified during Replay.
func PlanRecovery(opts Options) (*Recovery, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: no directory configured")
	}
	ls, err := listDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	r := &Recovery{opts: opts}
	r.Report.Dir = opts.Dir
	r.Report.SealedSegments = len(ls.sealed)
	segs := allSegments(ls)
	if len(segs) == 0 && len(ls.snaps) == 0 {
		r.Report.Mode = "fresh"
		return r, nil
	}
	// A directory holding nothing but one empty active segment is a
	// virgin store that has merely been opened: Open creates the active
	// file eagerly, and recovery paths open the store before planning
	// so the plan matches the normalized directory.
	if len(ls.sealed) == 0 && len(ls.snaps) == 0 && len(segs) == 1 && ls.active != nil {
		if fi, err := os.Stat(ls.active.path); err == nil && fi.Size() == 0 {
			r.Report.Mode = "fresh"
			return r, nil
		}
	}
	if opts.SkipSnapshots {
		r.note("snapshots ignored by request; planning a full replay")
		r.tail = segs
		r.Report.Mode = "full-replay"
		noteGaps(r, segs)
		return r, nil
	}
	for i := len(ls.snaps) - 1; i >= 0; i-- {
		sf := ls.snaps[i]
		hdr, state, err := readSnapshotFile(sf.path)
		if err != nil {
			r.Report.SnapshotsSkipped++
			r.note("snapshot %08d rejected: %v", sf.upTo, err)
			continue
		}
		tail, gap := tailAfter(segs, hdr.UpTo)
		if gap != "" {
			r.Report.SnapshotsSkipped++
			r.note("snapshot %08d unusable: %s", sf.upTo, gap)
			continue
		}
		r.State = state
		r.tail = tail
		r.Report.Mode = "snapshot+tail"
		r.Report.SnapshotSeq = hdr.UpTo
		return r, nil
	}
	r.tail = segs
	r.Report.Mode = "full-replay"
	noteGaps(r, segs)
	return r, nil
}

// allSegments merges sealed and active segments ascending by sequence.
func allSegments(ls dirListing) []segFile {
	segs := append([]segFile(nil), ls.sealed...)
	if ls.active != nil {
		segs = append(segs, *ls.active)
	}
	// listDir keeps sealed ascending and the active has the highest
	// sequence the writer ever assigned, but a hand-edited directory
	// could violate that; re-sorting is cheap insurance.
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j].seq < segs[j-1].seq; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
	return segs
}

// tailAfter selects the segments with sequence above upTo and checks
// contiguity: every sequence in (upTo, maxSeq] must be present, else
// replay would silently drop the records in the hole. A non-empty gap
// description means the snapshot at upTo cannot be used.
func tailAfter(segs []segFile, upTo uint64) ([]segFile, string) {
	var tail []segFile
	for _, sf := range segs {
		if sf.seq > upTo {
			tail = append(tail, sf)
		}
	}
	want := upTo + 1
	for _, sf := range tail {
		if sf.seq != want {
			return nil, fmt.Sprintf("missing tail segment(s) %08d..%08d", want, sf.seq-1)
		}
		want = sf.seq + 1
	}
	return tail, ""
}

// noteGaps records holes in a full-replay segment list — records in
// the holes are gone; the replay covers what survives.
func noteGaps(r *Recovery, segs []segFile) {
	for i := 1; i < len(segs); i++ {
		if segs[i].seq != segs[i-1].seq+1 {
			r.note("missing segment(s) %08d..%08d; replaying what exists", segs[i-1].seq+1, segs[i].seq-1)
		}
	}
}

func (r *Recovery) note(format string, args ...any) {
	r.Report.Notes = append(r.Report.Notes, fmt.Sprintf(format, args...))
}

// resolveSegmentPath finds a planned segment's current file. Between
// planning and replay the segment may have been renamed by Open —
// which finishes a fully-sealed-but-unrenamed active into its sealed
// name — or by a concurrent writer rolling the active segment (the
// coordinator's phased recovery opens every shard's store before the
// replay phase). The rename preserves every record line, so replaying
// the renamed file is exact; without the fallback the whole segment's
// acked records would be skipped as "unreadable" and the next
// compaction would delete them.
func (r *Recovery) resolveSegmentPath(sf segFile) string {
	if _, err := os.Stat(sf.path); err == nil || !os.IsNotExist(err) {
		return sf.path
	}
	var alt string
	switch {
	case strings.HasSuffix(sf.path, ".active"):
		alt = sealedPath(r.opts.Dir, sf.seq)
	case strings.HasSuffix(sf.path, ".seal"):
		alt = activePath(r.opts.Dir, sf.seq)
	default:
		return sf.path
	}
	if _, err := os.Stat(alt); err != nil {
		return sf.path
	}
	r.note("segment %08d renamed to %s since planning; replaying the renamed file", sf.seq, filepath.Base(alt))
	return alt
}

// Replay walks the planned segments in order, delivering every record
// line to fn. Sealed segments are checksum-verified first; a mismatch
// is counted and noted but the segment's parseable lines still replay
// (half a segment beats none). Oversized lines are skipped and
// counted. An error from fn aborts the walk — reserve it for
// cancellation; per-record rejections belong inside fn.
func (r *Recovery) Replay(ctx context.Context, fn func(rec []byte) error) error {
	for _, sf := range r.tail {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("store: replay canceled: %w", err)
		}
		if err := r.replaySegment(sf, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment replays one segment file. Unreadable files are noted
// and skipped (degraded boot); only an fn error propagates.
func (r *Recovery) replaySegment(sf segFile, fn func(rec []byte) error) error {
	path := r.resolveSegmentPath(sf)
	sealed := strings.HasSuffix(path, ".seal")
	if sealed {
		st, err := scanSegment(path, r.opts.MaxRecordBytes)
		switch {
		case err != nil:
			r.Report.CorruptSegments++
			r.note("segment %08d unreadable: %v", sf.seq, err)
			return nil
		case !st.sealed:
			r.Report.CorruptSegments++
			r.note("sealed segment %08d missing its footer; replaying its lines anyway", sf.seq)
		case st.footer.CRC32 != st.crc || st.footer.Bytes != st.goodBytes:
			r.Report.CorruptSegments++
			r.note("sealed segment %08d checksum mismatch (got %08x want %08x); replaying parseable lines", sf.seq, st.crc, st.footer.CRC32)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		r.Report.CorruptSegments++
		r.note("segment %08d unreadable: %v", sf.seq, err)
		return nil
	}
	defer f.Close()
	r.Report.SegmentsReplayed++
	torn, oversized, err := ForEachLine(f, r.opts.MaxRecordBytes, func(line []byte) error {
		if _, ok := parseFooter(line); ok {
			return nil
		}
		if len(line) == 0 {
			return nil
		}
		r.Report.RecordsReplayed++
		return fn(line)
	})
	if err != nil {
		return err
	}
	r.Report.RecordsSkipped += oversized
	if torn {
		r.Report.RecordsSkipped++
		r.Report.TornTail = true
		if sealed {
			r.note("sealed segment %08d has a torn tail", sf.seq)
		} else {
			r.note("active segment %08d has a torn tail (crash mid-append); last record dropped", sf.seq)
		}
	}
	return nil
}
