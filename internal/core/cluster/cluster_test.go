package cluster

import (
	"math"
	"testing"

	"busprobe/internal/stats"
	"busprobe/internal/transit"
)

func el(t float64, stop int, score float64) Element {
	return Element{TimeS: t, Stop: transit.StopID(stop), Score: score}
}

func TestTwoBurstsTwoClusters(t *testing.T) {
	// Two boarding bursts 120 s apart at different stops.
	elems := []Element{
		el(100, 1, 5), el(103, 1, 4.7), el(106, 1, 5.2),
		el(226, 2, 5.1), el(230, 2, 4.9),
	}
	cs, err := Sequence(elems, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("clusters = %d, want 2", len(cs))
	}
	if cs[0].Best().Stop != 1 || cs[1].Best().Stop != 2 {
		t.Errorf("best stops wrong: %+v", cs)
	}
	if cs[0].ArriveS != 100 || cs[0].DepartS != 106 {
		t.Errorf("visit window = [%v,%v]", cs[0].ArriveS, cs[0].DepartS)
	}
	if cs[1].ArriveS != 226 || cs[1].DepartS != 230 {
		t.Errorf("second window = [%v,%v]", cs[1].ArriveS, cs[1].DepartS)
	}
}

func TestNoisyMemberJoinsPool(t *testing.T) {
	// One sample in a tight burst matched a wrong stop; time proximity
	// still pulls it into the cluster, giving a two-candidate pool.
	elems := []Element{
		el(100, 1, 5), el(102, 9, 3), el(104, 1, 5.5), el(106, 1, 4.8),
	}
	cs, err := Sequence(elems, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("clusters = %d, want 1", len(cs))
	}
	c := cs[0]
	if len(c.Candidates) != 2 {
		t.Fatalf("pool size = %d, want 2", len(c.Candidates))
	}
	best := c.Best()
	if best.Stop != 1 {
		t.Errorf("best = %+v", best)
	}
	if math.Abs(best.P-0.75) > 1e-9 {
		t.Errorf("p = %v, want 0.75", best.P)
	}
	wantAvg := (5 + 5.5 + 4.8) / 3
	if math.Abs(best.AvgScore-wantAvg) > 1e-9 {
		t.Errorf("avg = %v, want %v", best.AvgScore, wantAvg)
	}
}

func TestAffinityFormula(t *testing.T) {
	p := DefaultParams()
	a := el(0, 1, 5)
	b := el(10, 1, 6)
	// (30-10)/30 + (7-1)/7 = 0.6667 + 0.8571
	want := 20.0/30 + 6.0/7
	if got := Affinity(a, b, p); math.Abs(got-want) > 1e-9 {
		t.Errorf("affinity = %v, want %v", got, want)
	}
	c := el(10, 2, 6) // different stop: L = 0
	if got := Affinity(a, c, p); math.Abs(got-20.0/30) > 1e-9 {
		t.Errorf("cross-stop affinity = %v", got)
	}
}

func TestEpsilonExtremes(t *testing.T) {
	elems := []Element{
		el(0, 1, 5), el(5, 1, 5), el(60, 2, 5), el(65, 2, 5),
	}
	// Huge epsilon: nothing co-clusters.
	high, err := Sequence(elems, Params{S0: 7, T0: 30, Epsilon: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(high) != 4 {
		t.Errorf("epsilon=10 clusters = %d, want 4", len(high))
	}
	// Very negative epsilon: everything merges.
	low, err := Sequence(elems, Params{S0: 7, T0: 30, Epsilon: -100})
	if err != nil {
		t.Fatal(err)
	}
	if len(low) != 1 {
		t.Errorf("epsilon=-100 clusters = %d, want 1", len(low))
	}
}

func TestSequenceSortsInput(t *testing.T) {
	elems := []Element{el(106, 1, 5), el(100, 1, 5), el(103, 1, 5)}
	cs, err := Sequence(elems, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || cs[0].ArriveS != 100 || cs[0].DepartS != 106 {
		t.Errorf("unsorted input mishandled: %+v", cs)
	}
}

func TestSequenceEmpty(t *testing.T) {
	cs, err := Sequence(nil, DefaultParams())
	if err != nil || cs != nil {
		t.Errorf("empty input: %v %v", cs, err)
	}
}

func TestSequenceBadParams(t *testing.T) {
	if _, err := Sequence([]Element{el(0, 1, 5)}, Params{S0: 0, T0: 30}); err == nil {
		t.Error("want error for zero S0")
	}
	if _, err := Sequence([]Element{el(0, 1, 5)}, Params{S0: 7, T0: 0}); err == nil {
		t.Error("want error for zero T0")
	}
}

func TestInvariantsProperty(t *testing.T) {
	// Invariants over random inputs: every element lands in exactly one
	// cluster, clusters are time-ordered and non-overlapping, candidate
	// p sums to 1, Arrive <= Depart.
	rng := stats.NewRNG(42)
	p := DefaultParams()
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		elems := make([]Element, n)
		tcur := 0.0
		for i := range elems {
			tcur += rng.Range(0, 60)
			elems[i] = el(tcur, 1+rng.Intn(5), rng.Range(2, 7))
		}
		cs, err := Sequence(elems, p)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		prevEnd := math.Inf(-1)
		for _, c := range cs {
			total += len(c.Elements)
			if c.ArriveS > c.DepartS {
				t.Fatalf("trial %d: inverted window %+v", trial, c)
			}
			if c.ArriveS < prevEnd {
				t.Fatalf("trial %d: clusters overlap in time", trial)
			}
			prevEnd = c.DepartS
			var psum float64
			for _, cand := range c.Candidates {
				psum += cand.P
				if cand.P <= 0 || cand.P > 1 {
					t.Fatalf("trial %d: bad candidate p %v", trial, cand.P)
				}
			}
			if math.Abs(psum-1) > 1e-9 {
				t.Fatalf("trial %d: p sums to %v", trial, psum)
			}
			// Pool ordering: descending P.
			for i := 1; i < len(c.Candidates); i++ {
				if c.Candidates[i].P > c.Candidates[i-1].P {
					t.Fatalf("trial %d: pool not ordered", trial)
				}
			}
		}
		if total != n {
			t.Fatalf("trial %d: %d elements in, %d out", trial, n, total)
		}
	}
}

func TestBestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	(&Cluster{}).Best()
}

func TestDwellTimeExtraction(t *testing.T) {
	// A 25 s boarding burst gives a 25 s dwell (departing - arrival).
	elems := []Element{
		el(500, 3, 5), el(508, 3, 5.5), el(515, 3, 6), el(525, 3, 5),
	}
	cs, err := Sequence(elems, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("clusters = %d", len(cs))
	}
	if dwell := cs[0].DepartS - cs[0].ArriveS; dwell != 25 {
		t.Errorf("dwell = %v, want 25", dwell)
	}
}
