// Package cluster implements the paper's per-bus-stop co-clustering
// (§III-C(2)): matched cellular samples that are close in time and agree
// on their matched stop are grouped into one cluster per bus-stop visit,
// from which the visit's arrival and departing times are extracted.
//
// For two samples e_i, e_j with matched stops b_i, b_j and similarity
// scores s_i, s_j, the matching affinity is
//
//	L(e_i, e_j) = (s0 - |s_j - s_i|) / s0   if b_i == b_j, else 0
//
// and the samples co-cluster when
//
//	(t0 - |t_j - t_i|) / t0 + L(e_i, e_j) > ε        (Eq. 1)
//
// with s0 = 7 (maximum similarity score), t0 = 30 s (maximum same-stop
// sample spacing) and ε = 0.6 in the deployed system (Fig. 5 shows the
// accuracy plateau that tolerates ε ∈ [~0.3, ~1.3]).
package cluster

import (
	"fmt"
	"math"
	"sort"

	"busprobe/internal/transit"
)

// Params are the clustering constants of Eq. 1.
type Params struct {
	// S0 is the maximum possible similarity score.
	S0 float64
	// T0 is the maximum time interval between two samples of the same
	// stop visit, in seconds.
	T0 float64
	// Epsilon is the co-clustering threshold.
	Epsilon float64
}

// DefaultParams returns the deployed configuration (s0 = 7, t0 = 30 s,
// ε = 0.6).
func DefaultParams() Params {
	return Params{S0: 7, T0: 30, Epsilon: 0.6}
}

// Validate rejects non-positive constants.
func (p Params) Validate() error {
	if p.S0 <= 0 || p.T0 <= 0 {
		return fmt.Errorf("cluster: non-positive constants %+v", p)
	}
	return nil
}

// Element is one matched cellular sample entering the clustering stage:
// its timestamp, best-match stop, and that match's similarity score.
type Element struct {
	TimeS float64
	Stop  transit.StopID
	Score float64
}

// Candidate is one stop in a cluster's candidate pool, with the paper's
// per-cluster statistics: p, the fraction of the cluster's samples whose
// best match is this stop, and AvgScore, their mean similarity.
type Candidate struct {
	Stop     transit.StopID
	P        float64
	AvgScore float64
}

// Cluster is one inferred bus-stop visit.
type Cluster struct {
	// Elements are the member samples in time order.
	Elements []Element
	// ArriveS and DepartS are the visit's arrival and departing points:
	// the first and last member timestamps (Fig. 6).
	ArriveS float64
	DepartS float64
	// Candidates is the stop pool, ordered by descending p (then
	// descending AvgScore, then stop ID).
	Candidates []Candidate
}

// Best returns the highest-ranked candidate stop. It panics on an empty
// pool, which Sequence never produces.
func (c *Cluster) Best() Candidate {
	if len(c.Candidates) == 0 {
		panic("cluster: empty candidate pool")
	}
	return c.Candidates[0]
}

// Affinity computes the Eq. 1 left-hand side for two elements.
func Affinity(a, b Element, p Params) float64 {
	l := 0.0
	if a.Stop == b.Stop {
		l = (p.S0 - math.Abs(b.Score-a.Score)) / p.S0
	}
	return (p.T0-math.Abs(b.TimeS-a.TimeS))/p.T0 + l
}

// Sequence clusters a trip's matched samples into consecutive bus-stop
// visits. Elements are processed in time order (sorted defensively); an
// element joins the open cluster when its best Eq. 1 affinity against
// any member exceeds ε, otherwise it starts a new cluster. Single-linkage
// keeps a burst of taps together even when one sample matched a noisy
// stop, which is what gives clusters their multi-candidate pools.
func Sequence(elems []Element, p Params) ([]Cluster, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(elems) == 0 {
		return nil, nil
	}
	sorted := make([]Element, len(elems))
	copy(sorted, elems)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].TimeS < sorted[j].TimeS })

	var out []Cluster
	open := []Element{sorted[0]}
	flush := func() {
		out = append(out, finalize(open))
		open = nil
	}
	for _, e := range sorted[1:] {
		best := math.Inf(-1)
		for _, m := range open {
			if a := Affinity(m, e, p); a > best {
				best = a
			}
		}
		if best > p.Epsilon {
			open = append(open, e)
		} else {
			flush()
			open = []Element{e}
		}
	}
	flush()
	return out, nil
}

// finalize computes a cluster's summary statistics from its members.
func finalize(members []Element) Cluster {
	c := Cluster{
		Elements: members,
		ArriveS:  members[0].TimeS,
		DepartS:  members[len(members)-1].TimeS,
	}
	type agg struct {
		n     int
		total float64
	}
	byStop := make(map[transit.StopID]*agg)
	for _, e := range members {
		a := byStop[e.Stop]
		if a == nil {
			a = &agg{}
			byStop[e.Stop] = a
		}
		a.n++
		a.total += e.Score
	}
	for stop, a := range byStop {
		c.Candidates = append(c.Candidates, Candidate{
			Stop:     stop,
			P:        float64(a.n) / float64(len(members)),
			AvgScore: a.total / float64(a.n),
		})
	}
	sort.Slice(c.Candidates, func(i, j int) bool {
		ci, cj := c.Candidates[i], c.Candidates[j]
		if ci.P != cj.P {
			return ci.P > cj.P
		}
		if ci.AvgScore != cj.AvgScore {
			return ci.AvgScore > cj.AvgScore
		}
		return ci.Stop < cj.Stop
	})
	return c
}
