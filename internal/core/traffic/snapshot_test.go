package traffic

import (
	"reflect"
	"sync"
	"testing"

	"busprobe/internal/road"
)

func est(speed float64, reports int) Estimate {
	return Estimate{SpeedKmh: speed, Var: 4, Reports: reports, UpdatedS: 100}
}

func TestNextSnapshotDiff(t *testing.T) {
	s0 := EmptySnapshot()
	if s0.Version != 0 || len(s0.Estimates) != 0 {
		t.Fatalf("empty snapshot: version %d, %d estimates", s0.Version, len(s0.Estimates))
	}

	// First publication: both segments are new at version 1.
	s1 := NextSnapshot(s0, map[road.SegmentID]Estimate{1: est(30, 1), 2: est(40, 1)})
	if s1 == s0 {
		t.Fatal("first publication returned prev")
	}
	if s1.Version != 1 {
		t.Fatalf("version = %d, want 1", s1.Version)
	}
	if s1.ChangedAt[1] != 1 || s1.ChangedAt[2] != 1 {
		t.Fatalf("ChangedAt = %v", s1.ChangedAt)
	}

	// Identical map: no bump, prev returned untouched.
	same := NextSnapshot(s1, map[road.SegmentID]Estimate{1: est(30, 1), 2: est(40, 1)})
	if same != s1 {
		t.Fatalf("value-identical map bumped version to %d", same.Version)
	}

	// One segment moves: only its ChangedAt advances.
	s2 := NextSnapshot(s1, map[road.SegmentID]Estimate{1: est(30, 1), 2: est(35, 2)})
	if s2.Version != 2 {
		t.Fatalf("version = %d, want 2", s2.Version)
	}
	if s2.ChangedAt[1] != 1 {
		t.Errorf("unchanged segment's ChangedAt moved to %d", s2.ChangedAt[1])
	}
	if s2.ChangedAt[2] != 2 {
		t.Errorf("changed segment's ChangedAt = %d, want 2", s2.ChangedAt[2])
	}
}

func TestNextSnapshotRemovalAndReappearance(t *testing.T) {
	s0 := EmptySnapshot()
	s1 := NextSnapshot(s0, map[road.SegmentID]Estimate{1: est(30, 1), 2: est(40, 1)})

	// Segment 2 disappears (a merged view losing a shard).
	s2 := NextSnapshot(s1, map[road.SegmentID]Estimate{1: est(30, 1)})
	if s2.Version != 2 {
		t.Fatalf("removal did not bump: version %d", s2.Version)
	}
	if s2.RemovedAt[2] != 2 {
		t.Fatalf("RemovedAt = %v", s2.RemovedAt)
	}
	if len(s1.RemovedAt) != 0 {
		t.Fatal("removal mutated the previous snapshot's RemovedAt")
	}

	// It reappears: the removal record must clear, and the segment is a
	// fresh change.
	s3 := NextSnapshot(s2, map[road.SegmentID]Estimate{1: est(30, 1), 2: est(41, 2)})
	if s3.Version != 3 {
		t.Fatalf("version = %d, want 3", s3.Version)
	}
	if _, ok := s3.RemovedAt[2]; ok {
		t.Fatal("reappearing segment still recorded as removed")
	}
	if s3.ChangedAt[2] != 3 {
		t.Errorf("reappearing segment's ChangedAt = %d, want 3", s3.ChangedAt[2])
	}
	if s2.RemovedAt[2] != 2 {
		t.Fatal("reappearance mutated the previous snapshot's RemovedAt")
	}
}

func TestDeltaSince(t *testing.T) {
	s := EmptySnapshot()
	s = NextSnapshot(s, map[road.SegmentID]Estimate{3: est(30, 1), 1: est(40, 1)})                // v1
	s = NextSnapshot(s, map[road.SegmentID]Estimate{3: est(30, 1), 1: est(40, 1), 2: est(50, 1)}) // v2
	s = NextSnapshot(s, map[road.SegmentID]Estimate{3: est(31, 2), 2: est(50, 1)})                // v3: 3 changes, 1 removed

	changed, removed := s.DeltaSince(0)
	if want := []road.SegmentID{2, 3}; !reflect.DeepEqual(changed, want) {
		t.Errorf("DeltaSince(0) changed = %v, want %v", changed, want)
	}
	if want := []road.SegmentID{1}; !reflect.DeepEqual(removed, want) {
		t.Errorf("DeltaSince(0) removed = %v, want %v", removed, want)
	}

	changed, removed = s.DeltaSince(2)
	if want := []road.SegmentID{3}; !reflect.DeepEqual(changed, want) {
		t.Errorf("DeltaSince(2) changed = %v, want %v", changed, want)
	}
	if want := []road.SegmentID{1}; !reflect.DeepEqual(removed, want) {
		t.Errorf("DeltaSince(2) removed = %v, want %v", removed, want)
	}

	changed, removed = s.DeltaSince(s.Version)
	if len(changed) != 0 || len(removed) != 0 {
		t.Errorf("DeltaSince(current) = %v / %v, want empty", changed, removed)
	}
}

func TestEstimatorPublishesVersionedSnapshots(t *testing.T) {
	e, err := NewEstimator(DefaultModel(), 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := e.View().Version; v != 0 {
		t.Fatalf("fresh estimator at version %d", v)
	}

	obs := Observation{Segments: []road.SegmentID{7}, LengthM: 500, FreeKmh: 50, BTTSeconds: 80, TimeS: 100}
	if err := e.AddObservation(obs); err != nil {
		t.Fatal(err)
	}
	// The observation sits in an open window: nothing folded, nothing
	// published.
	if v := e.View().Version; v != 0 {
		t.Fatalf("open-window observation published version %d", v)
	}

	e.Advance(600)
	snap := e.View()
	if snap.Version == 0 {
		t.Fatal("fold did not publish")
	}
	if _, ok := snap.Estimates[7]; !ok {
		t.Fatal("published snapshot missing the folded segment")
	}
	if got, ok := e.Get(7); !ok || got != snap.Estimates[7] {
		t.Fatalf("Get = %v/%v, want snapshot value", got, ok)
	}

	// Advancing with nothing pending publishes nothing new.
	before := e.View()
	e.Advance(1200)
	if after := e.View(); after.Version != before.Version {
		t.Fatalf("idle Advance bumped version %d -> %d", before.Version, after.Version)
	}
}

func TestEstimatorSnapshotIsDefensiveCopy(t *testing.T) {
	e, err := NewEstimator(DefaultModel(), 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	obs := Observation{Segments: []road.SegmentID{7}, LengthM: 500, FreeKmh: 50, BTTSeconds: 80, TimeS: 100}
	if err := e.AddObservation(obs); err != nil {
		t.Fatal(err)
	}
	e.Advance(600)

	m := e.Snapshot()
	m[7] = Estimate{SpeedKmh: -1}
	m[999] = Estimate{SpeedKmh: -2}
	if got, _ := e.Get(7); got.SpeedKmh == -1 {
		t.Fatal("mutating Snapshot() leaked into the estimator")
	}
	if _, ok := e.Get(999); ok {
		t.Fatal("inserted key leaked into the estimator")
	}
	if len(e.View().Estimates) != 1 {
		t.Fatalf("published map grew to %d entries", len(e.View().Estimates))
	}
}

func TestEstimatorConcurrentReadersSeeMonotoneVersions(t *testing.T) {
	e, err := NewEstimator(DefaultModel(), 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := e.View()
				if snap.Version < last {
					t.Errorf("version regressed %d -> %d", last, snap.Version)
					return
				}
				last = snap.Version
				// A torn snapshot would show a version bump with a nil map.
				if snap.Version > 0 && snap.Estimates == nil {
					t.Error("versioned snapshot with nil estimates")
					return
				}
				e.Get(7)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		obs := Observation{
			Segments: []road.SegmentID{road.SegmentID(i % 5)},
			LengthM:  500, FreeKmh: 50,
			BTTSeconds: 60 + float64(i%30),
			TimeS:      float64(i) * 40,
		}
		if err := e.AddObservation(obs); err != nil {
			t.Fatal(err)
		}
	}
	e.Advance(20000)
	close(stop)
	wg.Wait()
	if e.View().Version == 0 {
		t.Fatal("campaign published nothing; concurrency check was vacuous")
	}
}
