package traffic

import (
	"fmt"
	"sort"

	"busprobe/internal/road"
)

// State is the estimator's complete durable state, shaped for JSON.
// Everything a restarted estimator needs to continue producing
// byte-identical estimates is here: the fold watermark, every
// segment's belief and retained window reports, and the published
// snapshot's version bookkeeping (so watch clients see a monotone
// version across the restart). Configuration — the transit model, the
// update period, the drift rate — is deliberately NOT state: it comes
// from the deployment, and importing state into a differently
// configured estimator is the operator's decision.
//
// All slices are sorted (segments by ID, windows by index, speeds
// ascending as the estimator keeps them), so exporting twice from the
// same estimator yields byte-identical JSON.
type State struct {
	// WatermarkIdx is the exclusive upper window index already due for
	// folding.
	WatermarkIdx int64 `json:"watermarkIdx"`
	// LateDropped counts reports that arrived after compaction
	// discarded their window.
	LateDropped int `json:"lateDropped,omitempty"`
	// Segments is the per-segment belief + window state, ascending by
	// segment ID.
	Segments []SegmentState `json:"segments"`
	// SnapVersion is the published snapshot's version at export.
	SnapVersion uint64 `json:"snapVersion"`
	// ChangedAt/RemovedAt restore the snapshot's per-segment version
	// marks, ascending by segment ID.
	ChangedAt []VersionMark `json:"changedAt,omitempty"`
	RemovedAt []VersionMark `json:"removedAt,omitempty"`
}

// SegmentState is one road segment's estimator state.
type SegmentState struct {
	Segment road.SegmentID `json:"segment"`
	// Hist is the fused belief as of the watermark.
	Hist Estimate `json:"hist"`
	// Base / BaseIdx checkpoint the belief at the last Compact.
	Base    Estimate `json:"base"`
	BaseIdx int64    `json:"baseIdx"`
	// FoldedIdx is the exclusive upper window index folded into Hist.
	FoldedIdx int64 `json:"foldedIdx"`
	// Windows are the retained report sets, ascending by index.
	Windows []WindowState `json:"windows,omitempty"`
}

// WindowState is one update window's speed reports, sorted ascending.
type WindowState struct {
	Idx    int64     `json:"idx"`
	Speeds []float64 `json:"speeds"`
}

// VersionMark records the snapshot version at which one segment last
// changed (or was removed).
type VersionMark struct {
	Segment road.SegmentID `json:"segment"`
	Version uint64         `json:"version"`
}

// ExportState settles every pending fold and returns the estimator's
// durable state. The export is a deep copy — the estimator keeps
// running and the caller owns the result.
func (e *Estimator) ExportState() *State {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Settle first so the export never carries a dirty flag: the state
	// is then a pure function of the report multiset and watermark.
	if e.settleAllLocked() {
		e.publishLocked()
	}
	st := &State{
		WatermarkIdx: e.watermarkIdx,
		LateDropped:  e.lateDropped,
		Segments:     make([]SegmentState, 0, len(e.segs)),
	}
	for sid, seg := range e.segs {
		ss := SegmentState{
			Segment:   sid,
			Hist:      seg.hist,
			Base:      seg.base,
			BaseIdx:   seg.baseIdx,
			FoldedIdx: seg.foldedIdx,
			Windows:   make([]WindowState, 0, len(seg.windows)),
		}
		for idx, speeds := range seg.windows {
			ss.Windows = append(ss.Windows, WindowState{Idx: idx, Speeds: append([]float64(nil), speeds...)})
		}
		sort.Slice(ss.Windows, func(i, j int) bool { return ss.Windows[i].Idx < ss.Windows[j].Idx })
		st.Segments = append(st.Segments, ss)
	}
	sort.Slice(st.Segments, func(i, j int) bool { return st.Segments[i].Segment < st.Segments[j].Segment })
	snap := e.snap.Load()
	st.SnapVersion = snap.Version
	st.ChangedAt = marksOf(snap.ChangedAt)
	st.RemovedAt = marksOf(snap.RemovedAt)
	return st
}

// ImportState replaces the estimator's state wholesale with a
// previously exported one and republishes the snapshot at its exported
// version, so readers (and watch clients holding a since-version)
// observe exactly the pre-export map. Import into a freshly
// constructed estimator — importing over live state discards it.
func (e *Estimator) ImportState(st *State) error {
	if st == nil {
		return fmt.Errorf("traffic: import nil state")
	}
	segs := make(map[road.SegmentID]*segState, len(st.Segments))
	for _, ss := range st.Segments {
		if _, dup := segs[ss.Segment]; dup {
			return fmt.Errorf("traffic: import: duplicate segment %d", ss.Segment)
		}
		if ss.FoldedIdx < ss.BaseIdx {
			return fmt.Errorf("traffic: import: segment %d folded below its base", ss.Segment)
		}
		seg := &segState{
			hist:      ss.Hist,
			base:      ss.Base,
			baseIdx:   ss.BaseIdx,
			foldedIdx: ss.FoldedIdx,
			windows:   make(map[int64][]float64, len(ss.Windows)),
		}
		for _, w := range ss.Windows {
			if _, dup := seg.windows[w.Idx]; dup {
				return fmt.Errorf("traffic: import: segment %d window %d duplicated", ss.Segment, w.Idx)
			}
			if !sort.Float64sAreSorted(w.Speeds) {
				return fmt.Errorf("traffic: import: segment %d window %d speeds unsorted", ss.Segment, w.Idx)
			}
			seg.windows[w.Idx] = append([]float64(nil), w.Speeds...)
		}
		segs[ss.Segment] = seg
	}
	estimates := make(map[road.SegmentID]Estimate, len(segs))
	for sid, seg := range segs {
		if seg.hist.Reports > 0 {
			estimates[sid] = seg.hist
		}
	}
	snap := &Snapshot{
		Version:   st.SnapVersion,
		Estimates: estimates,
		ChangedAt: marksToMap(st.ChangedAt),
		RemovedAt: marksToMap(st.RemovedAt),
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.segs = segs
	e.watermarkIdx = st.WatermarkIdx
	e.lateDropped = st.LateDropped
	e.snap.Store(snap)
	return nil
}

func marksOf(m map[road.SegmentID]uint64) []VersionMark {
	if len(m) == 0 {
		return nil
	}
	out := make([]VersionMark, 0, len(m))
	for sid, v := range m {
		out = append(out, VersionMark{Segment: sid, Version: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Segment < out[j].Segment })
	return out
}

func marksToMap(marks []VersionMark) map[road.SegmentID]uint64 {
	out := make(map[road.SegmentID]uint64, len(marks))
	for _, m := range marks {
		out[m.Segment] = m.Version
	}
	return out
}
