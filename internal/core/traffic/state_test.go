package traffic

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"busprobe/internal/road"
)

// stateObs builds a deterministic pseudo-random observation stream
// touching a handful of segments across several windows.
func stateObs(n int, seed int64) []Observation {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Observation, 0, n)
	for i := 0; i < n; i++ {
		segs := []road.SegmentID{road.SegmentID(rng.Intn(6))}
		if rng.Intn(3) == 0 {
			segs = append(segs, road.SegmentID(6+rng.Intn(3)))
		}
		out = append(out, Observation{
			Segments:   segs,
			LengthM:    300 + rng.Float64()*500,
			FreeKmh:    40 + rng.Float64()*20,
			BTTSeconds: 40 + rng.Float64()*120,
			TimeS:      rng.Float64() * 8 * DefaultPeriodS,
		})
	}
	return out
}

func feed(t *testing.T, e *Estimator, obs []Observation) {
	t.Helper()
	for _, o := range obs {
		if err := e.AddObservation(o); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStateRoundTripExact: export → JSON → import → export must be
// byte-identical, and the imported estimator must publish the same
// snapshot (same version, same estimates) as the original.
func TestStateRoundTripExact(t *testing.T) {
	e, err := NewEstimator(DefaultModel(), DefaultPeriodS, DefaultDriftVarPerS)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, stateObs(400, 1))
	e.Compact() // exercise base/baseIdx in the export
	feed(t, e, stateObs(200, 2))
	st := e.ExportState()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	e2, err := NewEstimator(DefaultModel(), DefaultPeriodS, DefaultDriftVarPerS)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.ImportState(&decoded); err != nil {
		t.Fatal(err)
	}
	blob2, err := json.Marshal(e2.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("state round-trip not byte-identical:\n%s\nvs\n%s", blob, blob2)
	}
	s1, s2 := e.View(), e2.View()
	if s1.Version != s2.Version {
		t.Fatalf("snapshot version %d != %d after import", s1.Version, s2.Version)
	}
	if !reflect.DeepEqual(s1.Estimates, s2.Estimates) {
		t.Fatal("snapshot estimates differ after import")
	}
	if !reflect.DeepEqual(s1.ChangedAt, s2.ChangedAt) || !reflect.DeepEqual(s1.RemovedAt, s2.RemovedAt) {
		t.Fatal("snapshot version marks differ after import")
	}
}

// TestStateContinuationEquivalence is the property the whole durable
// store rests on: export mid-stream, import into a fresh estimator,
// feed the remaining observations to both — the continuation must
// produce identical estimates and an identical published version to
// the uninterrupted run.
func TestStateContinuationEquivalence(t *testing.T) {
	for _, cut := range []int{0, 1, 137, 350, 599, 600} {
		obs := stateObs(600, 7)
		full, err := NewEstimator(DefaultModel(), DefaultPeriodS, DefaultDriftVarPerS)
		if err != nil {
			t.Fatal(err)
		}
		feed(t, full, obs)
		full.Advance(9 * DefaultPeriodS)

		first, err := NewEstimator(DefaultModel(), DefaultPeriodS, DefaultDriftVarPerS)
		if err != nil {
			t.Fatal(err)
		}
		feed(t, first, obs[:cut])
		st := first.ExportState()
		resumed, err := NewEstimator(DefaultModel(), DefaultPeriodS, DefaultDriftVarPerS)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.ImportState(st); err != nil {
			t.Fatal(err)
		}
		feed(t, resumed, obs[cut:])
		resumed.Advance(9 * DefaultPeriodS)

		a, b := full.View(), resumed.View()
		if !reflect.DeepEqual(a.Estimates, b.Estimates) {
			t.Fatalf("cut %d: estimates diverge after export/import continuation", cut)
		}
		if a.Version != b.Version {
			t.Fatalf("cut %d: version %d != %d", cut, a.Version, b.Version)
		}
	}
}

func TestStateImportRejectsMalformed(t *testing.T) {
	e, err := NewEstimator(DefaultModel(), DefaultPeriodS, DefaultDriftVarPerS)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ImportState(nil); err == nil {
		t.Fatal("nil state accepted")
	}
	if err := e.ImportState(&State{Segments: []SegmentState{{Segment: 1}, {Segment: 1}}}); err == nil {
		t.Fatal("duplicate segment accepted")
	}
	if err := e.ImportState(&State{Segments: []SegmentState{{Segment: 1, BaseIdx: 5, FoldedIdx: 2}}}); err == nil {
		t.Fatal("folded < base accepted")
	}
	bad := &State{Segments: []SegmentState{{Segment: 1, Windows: []WindowState{{Idx: 0, Speeds: []float64{30, 10}}}}}}
	if err := e.ImportState(bad); err == nil {
		t.Fatal("unsorted speeds accepted")
	}
	dupw := &State{Segments: []SegmentState{{Segment: 1, Windows: []WindowState{{Idx: 0}, {Idx: 0}}}}}
	if err := e.ImportState(dupw); err == nil {
		t.Fatal("duplicate window accepted")
	}
}
