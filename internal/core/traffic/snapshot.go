package traffic

import (
	"sort"

	"busprobe/internal/road"
)

// Snapshot is one immutable, versioned traffic map. Publishers build a
// fresh Snapshot on every state change and swap it in atomically;
// readers load the pointer and walk the maps without locking. All three
// maps are read-only after publication — a caller that needs a mutable
// map takes CloneEstimates.
//
// Version is a publisher-local sequence number: it starts at 0 (empty
// map), bumps by exactly one per published change, and never moves
// without a value-visible difference in Estimates. The per-segment
// maps ChangedAt/RemovedAt record the version at which each segment
// last changed or disappeared, which is what lets DeltaSince answer
// "what moved since version V" without retaining any snapshot history.
type Snapshot struct {
	// Version is the publication sequence number (0 = empty initial map).
	Version uint64
	// Estimates maps every covered segment to its fused estimate.
	// Read-only.
	Estimates map[road.SegmentID]Estimate
	// ChangedAt maps every covered segment to the version at which its
	// estimate last changed. Read-only.
	ChangedAt map[road.SegmentID]uint64
	// RemovedAt maps segments no longer covered to the version at which
	// they disappeared (a merged view loses a shard's segments when the
	// shard dies; a single estimator never removes any). Read-only.
	RemovedAt map[road.SegmentID]uint64
}

// EmptySnapshot returns the version-0 empty map every publisher seeds
// its pointer with.
func EmptySnapshot() *Snapshot {
	return &Snapshot{
		Estimates: map[road.SegmentID]Estimate{},
		ChangedAt: map[road.SegmentID]uint64{},
		RemovedAt: map[road.SegmentID]uint64{},
	}
}

// NextSnapshot builds the successor of prev holding estimates, diffing
// the two maps to maintain the per-segment change and removal versions.
// When estimates is value-identical to prev's map it returns prev
// itself — no version bump — so publishers can call it unconditionally
// and store the result only when it differs. The estimates map is owned
// by the returned snapshot and must not be mutated afterwards.
func NextSnapshot(prev *Snapshot, estimates map[road.SegmentID]Estimate) *Snapshot {
	ver := prev.Version + 1
	changed := false
	ca := make(map[road.SegmentID]uint64, len(estimates))
	for sid, est := range estimates {
		if old, ok := prev.Estimates[sid]; ok && old == est {
			ca[sid] = prev.ChangedAt[sid]
		} else {
			ca[sid] = ver
			changed = true
		}
	}
	ra := prev.RemovedAt
	raOwned := false
	ownRA := func() {
		if !raOwned {
			ra = make(map[road.SegmentID]uint64, len(prev.RemovedAt))
			for sid, v := range prev.RemovedAt {
				ra[sid] = v
			}
			raOwned = true
		}
	}
	for sid := range prev.Estimates {
		if _, ok := estimates[sid]; !ok {
			ownRA()
			ra[sid] = ver
			changed = true
		}
	}
	for sid := range estimates {
		if _, ok := ra[sid]; ok {
			ownRA()
			delete(ra, sid)
		}
	}
	if !changed {
		return prev
	}
	return &Snapshot{Version: ver, Estimates: estimates, ChangedAt: ca, RemovedAt: ra}
}

// CloneEstimates returns a mutable copy of the estimate map.
func (s *Snapshot) CloneEstimates() map[road.SegmentID]Estimate {
	out := make(map[road.SegmentID]Estimate, len(s.Estimates))
	for sid, est := range s.Estimates {
		out[sid] = est
	}
	return out
}

// DeltaSince lists the segments whose estimates changed after version
// since and the segments removed after it, both ascending. since = 0
// yields the full map as changes; since >= Version yields two empty
// lists.
func (s *Snapshot) DeltaSince(since uint64) (changed, removed []road.SegmentID) {
	for sid, v := range s.ChangedAt {
		if v > since {
			changed = append(changed, sid)
		}
	}
	for sid, v := range s.RemovedAt {
		if v > since {
			removed = append(removed, sid)
		}
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	return changed, removed
}
