package traffic

import (
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"busprobe/internal/road"
	"busprobe/internal/stats"
)

func TestATTKnownValues(t *testing.T) {
	m := DefaultModel()
	// 500 m at 50 km/h free flow: a = 36 s. BTT 80 s -> ATT 76 s.
	att, err := m.ATTSeconds(500, 50, 80)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(att-76) > 1e-9 {
		t.Errorf("ATT = %v, want 76", att)
	}
	v, err := m.SpeedKmh(500, 50, 80)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-500.0/76*3.6) > 1e-9 {
		t.Errorf("speed = %v", v)
	}
}

func TestModelErrors(t *testing.T) {
	m := DefaultModel()
	if _, err := m.ATTSeconds(0, 50, 10); err == nil {
		t.Error("want error for zero length")
	}
	if _, err := m.ATTSeconds(500, 0, 10); err == nil {
		t.Error("want error for zero free speed")
	}
	if _, err := m.ATTSeconds(500, 50, 0); err == nil {
		t.Error("want error for zero BTT")
	}
	if err := (Model{B: 0}).Validate(); err == nil {
		t.Error("want error for zero B")
	}
}

func TestATTMonotoneInBTT(t *testing.T) {
	m := DefaultModel()
	prev := 0.0
	for btt := 10.0; btt <= 600; btt += 10 {
		att, err := m.ATTSeconds(500, 50, btt)
		if err != nil {
			t.Fatal(err)
		}
		if att <= prev {
			t.Fatalf("ATT not increasing at BTT=%v", btt)
		}
		prev = att
	}
}

func TestFuseMovesTowardObservation(t *testing.T) {
	hist := Estimate{SpeedKmh: 40, Var: 9, Reports: 3}
	out := Fuse(hist, 20, 9)
	if math.Abs(out.SpeedKmh-30) > 1e-9 {
		t.Errorf("equal variances should average: %v", out.SpeedKmh)
	}
	if out.Var >= 9 {
		t.Errorf("variance should contract: %v", out.Var)
	}
	if out.Reports != 4 {
		t.Errorf("reports = %d", out.Reports)
	}
}

func TestFuseWeightsByPrecision(t *testing.T) {
	hist := Estimate{SpeedKmh: 40, Var: 1, Reports: 5} // confident prior
	out := Fuse(hist, 20, 100)                         // noisy observation
	if math.Abs(out.SpeedKmh-40) > 1 {
		t.Errorf("noisy observation moved confident prior to %v", out.SpeedKmh)
	}
	flip := Fuse(Estimate{SpeedKmh: 40, Var: 100, Reports: 5}, 20, 1)
	if math.Abs(flip.SpeedKmh-20) > 1 {
		t.Errorf("confident observation ignored: %v", flip.SpeedKmh)
	}
}

func TestFuseNoPriorAdoptsObservation(t *testing.T) {
	out := Fuse(Estimate{}, 33, 4)
	if out.SpeedKmh != 33 || out.Var != 4 || out.Reports != 1 {
		t.Errorf("no-prior fuse = %+v", out)
	}
}

func TestFuseVarianceContractsProperty(t *testing.T) {
	f := func(v1, v2, s1, s2 float64) bool {
		if math.IsNaN(v1) || math.IsNaN(v2) || math.IsNaN(s1) || math.IsNaN(s2) {
			return true
		}
		h2 := math.Mod(math.Abs(v1), 1000) + 0.1
		s2v := math.Mod(math.Abs(v2), 1000) + 0.1
		hist := Estimate{SpeedKmh: 30 + math.Mod(s1, 40), Var: h2, Reports: 1}
		out := Fuse(hist, 30+math.Mod(s2, 40), s2v)
		return out.Var <= math.Min(h2, s2v)+1e-9 && out.Var > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelOf(t *testing.T) {
	cases := []struct {
		v    float64
		want Level
	}{
		{5, LevelVerySlow}, {19.9, LevelVerySlow}, {20, LevelSlow},
		{29, LevelSlow}, {35, LevelNormal}, {45, LevelFast},
		{50, LevelVeryFast}, {80, LevelVeryFast},
	}
	for _, c := range cases {
		if got := LevelOf(c.v); got != c.want {
			t.Errorf("LevelOf(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if LevelVerySlow.String() != "very slow" || Level(9).String() != "level(9)" {
		t.Error("Level strings wrong")
	}
}

func TestFitBRecoversCoefficient(t *testing.T) {
	rng := stats.NewRNG(5)
	const lengthM, freeKmh, trueB = 500.0, 50.0, 0.55
	a := lengthM / (freeKmh / 3.6)
	var btt, att []float64
	for i := 0; i < 500; i++ {
		b := rng.Range(40, 200)
		btt = append(btt, b)
		att = append(att, a+trueB*b+rng.Norm(0, 3))
	}
	got, err := FitB(lengthM, freeKmh, btt, att)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-trueB) > 0.03 {
		t.Errorf("fit b = %v, want ~%v", got, trueB)
	}
}

func TestFitBErrors(t *testing.T) {
	if _, err := FitB(500, 50, []float64{1}, []float64{1}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := FitB(500, 50, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := FitB(0, 50, []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("want error for zero length")
	}
	if _, err := FitB(500, 50, []float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("want error for degenerate BTT")
	}
}

func newEstimator(t *testing.T) *Estimator {
	t.Helper()
	e, err := NewEstimator(DefaultModel(), DefaultPeriodS, DefaultDriftVarPerS)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func obs(segs []road.SegmentID, btt, at float64) Observation {
	return Observation{
		Segments:   segs,
		LengthM:    500,
		FreeKmh:    50,
		BTTSeconds: btt,
		TimeS:      at,
	}
}

func TestEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(Model{B: 0}, 300, 0); err == nil {
		t.Error("want error for bad model")
	}
	if _, err := NewEstimator(DefaultModel(), 0, 0); err == nil {
		t.Error("want error for zero period")
	}
	if _, err := NewEstimator(DefaultModel(), 300, -1); err == nil {
		t.Error("want error for negative drift")
	}
	e := newEstimator(t)
	if err := e.AddObservation(Observation{}); err == nil {
		t.Error("want error for empty observation")
	}
	if err := e.AddObservation(obs([]road.SegmentID{1}, 0, 10)); err == nil {
		t.Error("want error for zero BTT")
	}
}

func TestEstimatorFoldsAtPeriod(t *testing.T) {
	e := newEstimator(t)
	if err := e.AddObservation(obs([]road.SegmentID{1, 2}, 80, 100)); err != nil {
		t.Fatal(err)
	}
	// Before the first period boundary: nothing folded yet.
	if _, ok := e.Get(1); ok {
		t.Error("estimate visible before fold")
	}
	e.Advance(DefaultPeriodS)
	est, ok := e.Get(1)
	if !ok {
		t.Fatal("estimate missing after fold")
	}
	wantSpeed := 500.0 / 76 * 3.6
	if math.Abs(est.SpeedKmh-wantSpeed) > 1e-9 {
		t.Errorf("speed = %v, want %v", est.SpeedKmh, wantSpeed)
	}
	if est.UpdatedS != DefaultPeriodS {
		t.Errorf("UpdatedS = %v", est.UpdatedS)
	}
	if _, ok := e.Get(2); !ok {
		t.Error("second covered segment missing")
	}
	if _, ok := e.Get(3); ok {
		t.Error("uncovered segment has estimate")
	}
}

func TestEstimatorWindowAveragesThenFuses(t *testing.T) {
	e := newEstimator(t)
	// Two reports in window 1, both on segment 1.
	if err := e.AddObservation(obs([]road.SegmentID{1}, 60, 10)); err != nil {
		t.Fatal(err)
	}
	if err := e.AddObservation(obs([]road.SegmentID{1}, 100, 20)); err != nil {
		t.Fatal(err)
	}
	e.Advance(300)
	first, _ := e.Get(1)
	if first.Reports != 1 {
		t.Errorf("window fold should count as one Bayesian update, got %d", first.Reports)
	}
	// A much slower second window pulls the estimate down.
	if err := e.AddObservation(obs([]road.SegmentID{1}, 400, 310)); err != nil {
		t.Fatal(err)
	}
	e.Advance(600)
	second, _ := e.Get(1)
	if second.Reports != 2 {
		t.Errorf("reports = %d", second.Reports)
	}
	if second.SpeedKmh >= first.SpeedKmh {
		t.Errorf("slow window did not lower estimate: %v -> %v", first.SpeedKmh, second.SpeedKmh)
	}
	if second.Var >= first.Var {
		t.Errorf("variance did not contract: %v -> %v", first.Var, second.Var)
	}
}

func TestEstimatorSnapshotAndCovered(t *testing.T) {
	e := newEstimator(t)
	if err := e.AddObservation(obs([]road.SegmentID{3, 1}, 80, 10)); err != nil {
		t.Fatal(err)
	}
	e.Advance(300)
	snap := e.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot size = %d", len(snap))
	}
	cov := e.CoveredSegments()
	if len(cov) != 2 || cov[0] != 1 || cov[1] != 3 {
		t.Errorf("covered = %v", cov)
	}
}

func TestEstimatorConcurrent(t *testing.T) {
	e := newEstimator(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sid := road.SegmentID(i % 10)
				if err := e.AddObservation(obs([]road.SegmentID{sid}, 50+float64(i), float64(i))); err != nil {
					t.Error(err)
					return
				}
				e.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	e.Advance(1e6)
	if len(e.Snapshot()) == 0 {
		t.Error("no estimates after concurrent load")
	}
}

func TestEstimatorLateObservationTriggersFolds(t *testing.T) {
	e := newEstimator(t)
	if err := e.AddObservation(obs([]road.SegmentID{1}, 80, 10)); err != nil {
		t.Fatal(err)
	}
	// An observation far in the future advances through many periods,
	// folding the pending window on the way.
	if err := e.AddObservation(obs([]road.SegmentID{1}, 90, 10*DefaultPeriodS+1)); err != nil {
		t.Fatal(err)
	}
	est, ok := e.Get(1)
	if !ok || est.Reports != 1 {
		t.Errorf("first window not folded by implicit advance: %+v ok=%v", est, ok)
	}
}

func TestEstimatorOrderInsensitiveProperty(t *testing.T) {
	// The chaos suite's foundation: the settled map is a pure function
	// of the observation multiset and the final watermark, so any
	// delivery order — including late arrivals behind interleaved
	// Advance calls — folds to identical estimates.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 5 + rng.Intn(30)
		obsSet := make([]Observation, n)
		for i := range obsSet {
			obsSet[i] = obs(
				[]road.SegmentID{road.SegmentID(rng.Intn(4)), road.SegmentID(4 + rng.Intn(3))},
				rng.Range(40, 400),
				rng.Range(0, 6*DefaultPeriodS),
			)
		}
		endS := 7 * DefaultPeriodS

		serial := newEstimator(t)
		for _, o := range obsSet {
			if err := serial.AddObservation(o); err != nil {
				return false
			}
		}
		serial.Advance(endS)

		shuffled := newEstimator(t)
		for i, p := range rng.Perm(n) {
			if err := shuffled.AddObservation(obsSet[p]); err != nil {
				return false
			}
			// Interleave settles: late arrivals must refold cleanly.
			if i%3 == 0 {
				shuffled.Advance(rng.Range(0, endS))
				shuffled.Snapshot()
			}
		}
		shuffled.Advance(endS)

		return reflect.DeepEqual(serial.Snapshot(), shuffled.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorCompactBoundsStateAndCountsLate(t *testing.T) {
	e := newEstimator(t)
	if err := e.AddObservation(obs([]road.SegmentID{1}, 80, 10)); err != nil {
		t.Fatal(err)
	}
	e.Advance(DefaultPeriodS)
	before, _ := e.Get(1)
	e.Compact()

	// A report for the compacted window is dropped, not folded.
	if err := e.AddObservation(obs([]road.SegmentID{1}, 400, 20)); err != nil {
		t.Fatal(err)
	}
	e.Advance(2 * DefaultPeriodS)
	if got := e.LateDropped(); got != 1 {
		t.Errorf("LateDropped = %d, want 1", got)
	}
	after, _ := e.Get(1)
	if after != before {
		t.Errorf("compacted-window report changed the estimate: %+v -> %+v", before, after)
	}

	// Reports for live windows still fold normally after compaction.
	if err := e.AddObservation(obs([]road.SegmentID{1}, 400, 2*DefaultPeriodS+10)); err != nil {
		t.Fatal(err)
	}
	e.Advance(3 * DefaultPeriodS)
	final, _ := e.Get(1)
	if final.Reports != before.Reports+1 || final.SpeedKmh >= before.SpeedKmh {
		t.Errorf("post-compaction fold missing: %+v -> %+v", before, final)
	}
}

func TestEstimatorCompactionIdempotentWhenTimely(t *testing.T) {
	// Compacting between settles must not change estimates as long as
	// no report arrives later than the compaction point.
	build := func(compact bool) map[road.SegmentID]Estimate {
		e := newEstimator(t)
		for w := 0; w < 4; w++ {
			at := float64(w)*DefaultPeriodS + 10
			if err := e.AddObservation(obs([]road.SegmentID{1, 2}, 60+20*float64(w), at)); err != nil {
				t.Fatal(err)
			}
			e.Advance(float64(w+1) * DefaultPeriodS)
			if compact {
				e.Compact()
			}
		}
		return e.Snapshot()
	}
	if got, want := build(true), build(false); !reflect.DeepEqual(got, want) {
		t.Errorf("compaction changed timely estimates:\n%v\n%v", got, want)
	}
}
