package traffic

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"busprobe/internal/road"
	"busprobe/internal/stats"
)

// DefaultPeriodS is the paper's traffic-map refresh period T = 5 min.
const DefaultPeriodS = 300.0

// DefaultSingleReportVar is the variance assigned to an update window
// holding a single speed report, for which no sample variance exists.
const DefaultSingleReportVar = 25.0 // (5 km/h)^2

// DefaultDriftVarPerS is the process-noise rate: how fast the historic
// estimate's variance inflates between updates. Eq. 4 alone contracts
// variance monotonically, which would freeze the estimate at the all-day
// mean; traffic drifts (rush hours build and dissolve), so the tracker
// must forget. At 0.02 (km/h)^2/s a 30-minute-old belief has gained
// (6 km/h)^2 of uncertainty — it still dominates a single fresh report
// but yields to a consistent new window, which is what lets Fig. 10's
// v_A follow v_T through the day.
const DefaultDriftVarPerS = 0.02

// Observation is one bus travel-time measurement over the road segments
// between two (possibly non-adjacent, §III-D skipped-stop merging)
// consecutive identified stops of a mapped trip.
type Observation struct {
	// Segments are the directed road segments covered.
	Segments []road.SegmentID
	// LengthM is the total covered length.
	LengthM float64
	// FreeKmh is the free-flow automobile speed over the stretch.
	FreeKmh float64
	// BTTSeconds is the measured bus travel time (departing previous
	// stop to arriving at this one).
	BTTSeconds float64
	// TimeS is the observation timestamp.
	TimeS float64
}

// segState is the per-segment estimator state: the fused historic belief
// plus the retained per-window report sets it was folded from.
type segState struct {
	hist Estimate
	// base / baseIdx checkpoint the belief at the last Compact: windows
	// below baseIdx have been discarded, so the fold chain replays from
	// base instead of from scratch.
	base    Estimate
	baseIdx int64
	// foldedIdx is the exclusive upper window index already folded into
	// hist. Always >= baseIdx.
	foldedIdx int64
	// dirty marks that a report landed in an already-folded window (an
	// out-of-order delivery); the fold chain is replayed from base on
	// the next settle.
	dirty bool
	// windows holds each update window's speed reports, kept sorted so
	// the fold is a pure function of the report multiset — delivery
	// order never changes an estimate.
	windows map[int64][]float64
}

// Estimator maintains the per-segment traffic estimates: observations
// accumulate into periodic update windows, and completed windows are
// folded into the Bayesian belief (Eq. 4) in window order.
//
// Folding is deterministic in the *set* of observations, not their
// arrival order: reports are bucketed by their own timestamps, each
// window's reports are kept sorted, and a report arriving for an
// already-folded window replays the segment's fold chain. Two runs that
// deliver the same observations — in any order, with any interleaving
// of Advance calls — therefore produce byte-identical estimates, which
// is what lets the chaos harness assert that duplicated and reordered
// uploads cannot corrupt the traffic map. Safe for concurrent use.
//
// Reads never take the mutex: every mutator settles the fold eagerly
// and, when any belief changed, publishes a fresh immutable Snapshot
// through an atomic pointer. Because the fold is a pure function of
// the report multiset and the watermark — and only mutators move
// either — settling eagerly at mutation time yields exactly the
// estimates the previous read-time settle produced.
type Estimator struct {
	mu        sync.Mutex
	model     Model
	periodS   float64
	driftPerS float64
	segs      map[road.SegmentID]*segState //lint:guardedby mu
	// watermarkIdx is the exclusive upper window index due for folding:
	// windows below it are complete. It advances with observation and
	// Advance timestamps and never retreats.
	watermarkIdx int64 //lint:guardedby mu
	lateDropped  int   //lint:guardedby mu
	// snap is the published copy-on-write state; Get/Snapshot/View load
	// it without locking. Mutators swap it under mu, so versions are
	// monotone.
	snap atomic.Pointer[Snapshot]
}

// NewEstimator returns an estimator with the given transit model, update
// period, and process-noise rate (use DefaultDriftVarPerS; 0 disables
// forgetting and reduces to pure Eq. 4).
func NewEstimator(model Model, periodS, driftVarPerS float64) (*Estimator, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if periodS <= 0 {
		return nil, fmt.Errorf("traffic: non-positive period %v", periodS)
	}
	if driftVarPerS < 0 {
		return nil, fmt.Errorf("traffic: negative drift rate %v", driftVarPerS)
	}
	e := &Estimator{
		model:     model,
		periodS:   periodS,
		driftPerS: driftVarPerS,
		segs:      make(map[road.SegmentID]*segState),
	}
	e.snap.Store(EmptySnapshot())
	return e, nil
}

// Model returns the transit model in use.
func (e *Estimator) Model() Model { return e.model }

// windowOf buckets a timestamp into its update-window index.
func (e *Estimator) windowOf(tS float64) int64 {
	return int64(math.Floor(tS / e.periodS))
}

// AddObservation converts a bus observation to an automobile speed via
// Eq. 3 and buckets it into the update window of its own timestamp on
// every covered segment (the uniform-speed-along-leg assumption). The
// observation time also advances the fold watermark, so a fresher
// report implicitly completes older windows.
func (e *Estimator) AddObservation(obs Observation) error {
	if len(obs.Segments) == 0 {
		return fmt.Errorf("traffic: observation covers no segments")
	}
	speed, err := e.model.SpeedKmh(obs.LengthM, obs.FreeKmh, obs.BTTSeconds)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	idx := e.windowOf(obs.TimeS)
	advanced := false
	if idx > e.watermarkIdx {
		e.watermarkIdx = idx
		advanced = true
	}
	touched := make([]*segState, 0, len(obs.Segments))
	for _, sid := range obs.Segments {
		st := e.segs[sid]
		if st == nil {
			st = &segState{windows: make(map[int64][]float64)}
			e.segs[sid] = st
		}
		if idx < st.baseIdx {
			// The window was compacted away; the report arrived too
			// late to be honored.
			e.lateDropped++
			continue
		}
		lst := st.windows[idx]
		at := sort.SearchFloat64s(lst, speed)
		lst = append(lst, 0)
		copy(lst[at+1:], lst[at:])
		lst[at] = speed
		st.windows[idx] = lst
		if idx < st.foldedIdx {
			st.dirty = true
		}
		touched = append(touched, st)
	}
	folded := false
	if advanced {
		folded = e.settleAllLocked()
	} else {
		for _, st := range touched {
			if e.settleLocked(st) {
				folded = true
			}
		}
	}
	if folded {
		e.publishLocked()
	}
	return nil
}

// Advance moves the fold watermark to the given time and folds completed
// windows. Call it from the clock driver.
func (e *Estimator) Advance(nowS float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if idx := e.windowOf(nowS); idx > e.watermarkIdx {
		e.watermarkIdx = idx
	}
	if e.settleAllLocked() {
		e.publishLocked()
	}
}

// settleAllLocked folds every segment up to the watermark, reporting
// whether any belief may have changed.
func (e *Estimator) settleAllLocked() bool {
	folded := false
	for _, st := range e.segs {
		if e.settleLocked(st) {
			folded = true
		}
	}
	return folded
}

// settleLocked brings one segment's belief up to the watermark: a dirty
// segment (late report) replays its fold chain from the checkpoint,
// then every complete unfolded window is folded in ascending order.
// Each window folds at its own end boundary regardless of when settle
// runs, so the result depends only on the report multiset and the
// watermark. The return reports whether any fold ran — i.e. whether
// the belief may differ from the published snapshot.
func (e *Estimator) settleLocked(st *segState) bool {
	replayed := false
	if st.dirty {
		st.hist = st.base
		st.foldedIdx = st.baseIdx
		st.dirty = false
		replayed = true
	}
	if st.foldedIdx >= e.watermarkIdx {
		return replayed
	}
	var due []int64
	for idx := range st.windows {
		if idx >= st.foldedIdx && idx < e.watermarkIdx {
			due = append(due, idx)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, idx := range due {
		var acc stats.Accumulator
		for _, v := range st.windows[idx] {
			acc.Add(v)
		}
		v := acc.Mean()
		varV := acc.Var()
		if acc.N() < 2 || varV <= 0 {
			varV = DefaultSingleReportVar
		}
		endS := float64(idx+1) * e.periodS
		st.hist = fuseAt(Inflate(st.hist, endS, e.driftPerS), v, varV, endS)
	}
	st.foldedIdx = e.watermarkIdx
	return replayed || len(due) > 0
}

// publishLocked swaps in a fresh immutable snapshot of every settled
// belief. NextSnapshot diffs against the published state, so a settle
// that refolded to identical values publishes nothing and the version
// only moves on a value-visible change.
func (e *Estimator) publishLocked() {
	prev := e.snap.Load()
	m := make(map[road.SegmentID]Estimate, len(e.segs))
	for sid, st := range e.segs {
		if st.hist.Reports > 0 {
			m[sid] = st.hist
		}
	}
	if next := NextSnapshot(prev, m); next != prev {
		e.snap.Store(next)
	}
}

// Compact checkpoints every segment's belief and discards the folded
// window reports behind it, bounding the estimator's memory on long
// deployments. Reports arriving for a compacted window afterwards are
// dropped and counted by LateDropped — compaction trades unbounded
// reorder tolerance for bounded state, so run it no more often than the
// staleness the upload path can produce.
func (e *Estimator) Compact() {
	e.mu.Lock()
	defer e.mu.Unlock()
	folded := false
	for _, st := range e.segs {
		if e.settleLocked(st) {
			folded = true
		}
		st.base = st.hist
		st.baseIdx = st.foldedIdx
		for idx := range st.windows {
			if idx < st.baseIdx {
				delete(st.windows, idx)
			}
		}
	}
	if folded {
		e.publishLocked()
	}
}

// LateDropped counts reports that arrived after their window was
// compacted away and could not be folded.
func (e *Estimator) LateDropped() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lateDropped
}

// fuseAt is Fuse plus the update timestamp.
func fuseAt(hist Estimate, v, varV, atS float64) Estimate {
	out := Fuse(hist, v, varV)
	out.UpdatedS = atS
	return out
}

// Get returns the fused estimate for a segment, if any window has been
// folded for it yet. Lock-free: it reads the published snapshot.
func (e *Estimator) Get(sid road.SegmentID) (Estimate, bool) {
	est, ok := e.snap.Load().Estimates[sid]
	return est, ok
}

// View returns the current published snapshot: an immutable, shared,
// versioned value readers may hold indefinitely. Lock-free. Callers
// must not mutate its maps.
func (e *Estimator) View() *Snapshot {
	return e.snap.Load()
}

// Snapshot returns the current fused estimate of every segment with at
// least one folded report, as a mutable copy the caller owns.
// Lock-free; use View to avoid the copy.
func (e *Estimator) Snapshot() map[road.SegmentID]Estimate {
	return e.snap.Load().CloneEstimates()
}

// CoveredSegments returns the IDs with folded estimates, ascending.
func (e *Estimator) CoveredSegments() []road.SegmentID {
	snap := e.View()
	out := make([]road.SegmentID, 0, len(snap.Estimates))
	for sid := range snap.Estimates {
		out = append(out, sid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
