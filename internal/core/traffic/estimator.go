package traffic

import (
	"fmt"
	"sort"
	"sync"

	"busprobe/internal/road"
	"busprobe/internal/stats"
)

// DefaultPeriodS is the paper's traffic-map refresh period T = 5 min.
const DefaultPeriodS = 300.0

// DefaultSingleReportVar is the variance assigned to an update window
// holding a single speed report, for which no sample variance exists.
const DefaultSingleReportVar = 25.0 // (5 km/h)^2

// DefaultDriftVarPerS is the process-noise rate: how fast the historic
// estimate's variance inflates between updates. Eq. 4 alone contracts
// variance monotonically, which would freeze the estimate at the all-day
// mean; traffic drifts (rush hours build and dissolve), so the tracker
// must forget. At 0.02 (km/h)^2/s a 30-minute-old belief has gained
// (6 km/h)^2 of uncertainty — it still dominates a single fresh report
// but yields to a consistent new window, which is what lets Fig. 10's
// v_A follow v_T through the day.
const DefaultDriftVarPerS = 0.02

// Observation is one bus travel-time measurement over the road segments
// between two (possibly non-adjacent, §III-D skipped-stop merging)
// consecutive identified stops of a mapped trip.
type Observation struct {
	// Segments are the directed road segments covered.
	Segments []road.SegmentID
	// LengthM is the total covered length.
	LengthM float64
	// FreeKmh is the free-flow automobile speed over the stretch.
	FreeKmh float64
	// BTTSeconds is the measured bus travel time (departing previous
	// stop to arriving at this one).
	BTTSeconds float64
	// TimeS is the observation timestamp.
	TimeS float64
}

// segState is the per-segment estimator state: the fused historic belief
// plus the accumulating current window.
type segState struct {
	hist   Estimate
	window stats.Accumulator
}

// Estimator maintains the per-segment traffic estimates: observations
// accumulate into a window, and every period the window is folded into
// the Bayesian belief (Eq. 4). Safe for concurrent use.
type Estimator struct {
	mu        sync.Mutex
	model     Model
	periodS   float64
	driftPerS float64
	segs      map[road.SegmentID]*segState
	nextS     float64 // next scheduled fold time
}

// NewEstimator returns an estimator with the given transit model, update
// period, and process-noise rate (use DefaultDriftVarPerS; 0 disables
// forgetting and reduces to pure Eq. 4).
func NewEstimator(model Model, periodS, driftVarPerS float64) (*Estimator, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if periodS <= 0 {
		return nil, fmt.Errorf("traffic: non-positive period %v", periodS)
	}
	if driftVarPerS < 0 {
		return nil, fmt.Errorf("traffic: negative drift rate %v", driftVarPerS)
	}
	return &Estimator{
		model:     model,
		periodS:   periodS,
		driftPerS: driftVarPerS,
		segs:      make(map[road.SegmentID]*segState),
		nextS:     periodS,
	}, nil
}

// Model returns the transit model in use.
func (e *Estimator) Model() Model { return e.model }

// AddObservation converts a bus observation to an automobile speed via
// Eq. 3 and adds it to the current window of every covered segment (the
// uniform-speed-along-leg assumption). It also advances the periodic
// fold to the observation time.
func (e *Estimator) AddObservation(obs Observation) error {
	if len(obs.Segments) == 0 {
		return fmt.Errorf("traffic: observation covers no segments")
	}
	speed, err := e.model.SpeedKmh(obs.LengthM, obs.FreeKmh, obs.BTTSeconds)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.advanceLocked(obs.TimeS)
	for _, sid := range obs.Segments {
		st := e.segs[sid]
		if st == nil {
			st = &segState{}
			e.segs[sid] = st
		}
		st.window.Add(speed)
	}
	return nil
}

// Advance folds completed update windows up to the given time. Call it
// from the clock driver; AddObservation also calls it implicitly.
func (e *Estimator) Advance(nowS float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.advanceLocked(nowS)
}

func (e *Estimator) advanceLocked(nowS float64) {
	for e.nextS <= nowS {
		for _, st := range e.segs {
			if st.window.N() == 0 {
				continue
			}
			v := st.window.Mean()
			varV := st.window.Var()
			if st.window.N() < 2 || varV <= 0 {
				varV = DefaultSingleReportVar
			}
			st.hist = fuseAt(Inflate(st.hist, e.nextS, e.driftPerS), v, varV, e.nextS)
			st.window = stats.Accumulator{}
		}
		e.nextS += e.periodS
	}
}

// fuseAt is Fuse plus the update timestamp.
func fuseAt(hist Estimate, v, varV, atS float64) Estimate {
	out := Fuse(hist, v, varV)
	out.UpdatedS = atS
	return out
}

// Get returns the fused estimate for a segment, if any window has been
// folded for it yet.
func (e *Estimator) Get(sid road.SegmentID) (Estimate, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.segs[sid]
	if st == nil || st.hist.Reports == 0 {
		return Estimate{}, false
	}
	return st.hist, true
}

// Snapshot returns the current fused estimate of every segment with at
// least one folded report.
func (e *Estimator) Snapshot() map[road.SegmentID]Estimate {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[road.SegmentID]Estimate, len(e.segs))
	for sid, st := range e.segs {
		if st.hist.Reports > 0 {
			out[sid] = st.hist
		}
	}
	return out
}

// CoveredSegments returns the IDs with folded estimates, ascending.
func (e *Estimator) CoveredSegments() []road.SegmentID {
	snap := e.Snapshot()
	out := make([]road.SegmentID, 0, len(snap))
	for sid := range snap {
		out = append(out, sid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
