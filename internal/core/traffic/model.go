// Package traffic implements the paper's traffic-estimation stage
// (§III-D): converting observed bus travel times (BTT) on inter-stop road
// segments into general automobile travel times (ATT) with the linear
// transit model of Eq. 3, fusing reports from many riders with the
// Bayesian variance-weighted update of Eq. 4, and maintaining the
// per-segment traffic map refreshed every T = 5 minutes.
package traffic

import (
	"fmt"
	"math"
)

// Model is the Eq. 3 transit traffic model: ATT = a + b·BTT, where
// a = road length / free travel speed is an automobile's uncongested
// travel time and b scales how bus delay reflects general congestion.
// The paper's regressions put b in [0.3, 0.8] per segment and fix
// b = 0.5 system-wide.
type Model struct {
	B float64
}

// DefaultModel returns the paper's b = 0.5 setting.
func DefaultModel() Model { return Model{B: 0.5} }

// Validate rejects a non-positive congestion coefficient.
func (m Model) Validate() error {
	if m.B <= 0 {
		return fmt.Errorf("traffic: non-positive model coefficient %v", m.B)
	}
	return nil
}

// ATTSeconds converts a bus travel time over a stretch of road into the
// estimated automobile travel time (both in seconds).
func (m Model) ATTSeconds(lengthM, freeKmh, bttS float64) (float64, error) {
	if lengthM <= 0 || freeKmh <= 0 {
		return 0, fmt.Errorf("traffic: bad segment geometry length=%v free=%v", lengthM, freeKmh)
	}
	if bttS <= 0 {
		return 0, fmt.Errorf("traffic: non-positive BTT %v", bttS)
	}
	a := lengthM / (freeKmh / 3.6)
	return a + m.B*bttS, nil
}

// SpeedKmh converts a bus travel time into the estimated automobile
// speed over the stretch, in km/h.
func (m Model) SpeedKmh(lengthM, freeKmh, bttS float64) (float64, error) {
	att, err := m.ATTSeconds(lengthM, freeKmh, bttS)
	if err != nil {
		return 0, err
	}
	return lengthM / att * 3.6, nil
}

// Estimate is a fused speed belief for one road segment.
type Estimate struct {
	// SpeedKmh is the mean automobile speed estimate.
	SpeedKmh float64
	// Var is the estimate variance ((km/h)^2).
	Var float64
	// Reports counts the observations folded in.
	Reports int
	// UpdatedS is the simulation time of the last Bayesian update.
	UpdatedS float64
}

// Inflate applies process noise to a historic estimate: its variance
// grows linearly with the time since its last update, so stale beliefs
// yield to fresh observations. A zero rate is a no-op.
func Inflate(hist Estimate, nowS, driftVarPerS float64) Estimate {
	if hist.Reports == 0 || driftVarPerS <= 0 {
		return hist
	}
	dt := nowS - hist.UpdatedS
	if dt > 0 {
		hist.Var += driftVarPerS * dt
	}
	return hist
}

// Fuse applies Eq. 4: the precision-weighted combination of the historic
// estimate (v̄, σ̄²) with a new observation window (v, σ²):
//
//	v_new = (v·σ̄² + v̄·σ²) / (σ² + σ̄²)
//	σ²_new = σ²·σ̄² / (σ² + σ̄²)
func Fuse(hist Estimate, newSpeed, newVar float64) Estimate {
	if hist.Reports == 0 {
		// No prior: adopt the observation.
		return Estimate{SpeedKmh: newSpeed, Var: newVar, Reports: 1}
	}
	s2, h2 := newVar, hist.Var
	if s2 <= 0 {
		s2 = 1e-6
	}
	if h2 <= 0 {
		h2 = 1e-6
	}
	return Estimate{
		SpeedKmh: (newSpeed*h2 + hist.SpeedKmh*s2) / (s2 + h2),
		Var:      s2 * h2 / (s2 + h2),
		Reports:  hist.Reports + 1,
	}
}

// Level is a discrete traffic level for map rendering (Fig. 9 uses five
// speed levels).
type Level int

// Traffic levels from most congested to freest.
const (
	LevelVerySlow Level = iota
	LevelSlow
	LevelNormal
	LevelFast
	LevelVeryFast
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelVerySlow:
		return "very slow"
	case LevelSlow:
		return "slow"
	case LevelNormal:
		return "normal"
	case LevelFast:
		return "fast"
	case LevelVeryFast:
		return "very fast"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// LevelOf buckets an automobile speed into the five map levels using the
// paper's Fig. 9 legend boundaries (20/30/40/50 km/h).
func LevelOf(speedKmh float64) Level {
	switch {
	case speedKmh < 20:
		return LevelVerySlow
	case speedKmh < 30:
		return LevelSlow
	case speedKmh < 40:
		return LevelNormal
	case speedKmh < 50:
		return LevelFast
	default:
		return LevelVeryFast
	}
}

// FitB estimates the model coefficient b from paired (BTT, ATT)
// observations on a segment of known geometry, via least squares on
// ATT - a = b·BTT. It is the ablation hook validating the paper's claim
// that b lands in [0.3, 0.8].
func FitB(lengthM, freeKmh float64, bttS, attS []float64) (float64, error) {
	if len(bttS) != len(attS) || len(bttS) < 2 {
		return 0, fmt.Errorf("traffic: need >= 2 paired observations")
	}
	if lengthM <= 0 || freeKmh <= 0 {
		return 0, fmt.Errorf("traffic: bad segment geometry")
	}
	a := lengthM / (freeKmh / 3.6)
	var num, den float64
	for i := range bttS {
		num += bttS[i] * (attS[i] - a)
		den += bttS[i] * bttS[i]
	}
	if den == 0 {
		return 0, fmt.Errorf("traffic: degenerate BTT inputs")
	}
	b := num / den
	if math.IsNaN(b) || math.IsInf(b, 0) {
		return 0, fmt.Errorf("traffic: non-finite fit")
	}
	return b, nil
}
