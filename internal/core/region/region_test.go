package region

import (
	"math"
	"testing"

	"busprobe/internal/core/traffic"
	"busprobe/internal/geo"
	"busprobe/internal/road"
)

func testNet(t *testing.T) *road.Network {
	t.Helper()
	cfg := road.DefaultGridConfig()
	cfg.WidthM = 4000
	cfg.HeightM = 3000
	cfg.JitterM = 0
	net, err := road.GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// estimateAtRatio fabricates an estimate at a fraction of design speed.
func estimateAtRatio(net *road.Network, sid road.SegmentID, ratio float64) traffic.Estimate {
	return traffic.Estimate{SpeedKmh: net.Segment(sid).FreeKmh * ratio, Var: 4, Reports: 3}
}

func TestInferValidation(t *testing.T) {
	net := testNet(t)
	if _, err := Infer(nil, map[road.SegmentID]traffic.Estimate{1: {}}, DefaultConfig()); err == nil {
		t.Error("want error for nil network")
	}
	if _, err := Infer(net, nil, DefaultConfig()); err == nil {
		t.Error("want error for no estimates")
	}
	bad := DefaultConfig()
	bad.ZoneM = 0
	if _, err := Infer(net, map[road.SegmentID]traffic.Estimate{1: estimateAtRatio(net, 1, 0.5)}, bad); err == nil {
		t.Error("want error for zero zone size")
	}
	bad = DefaultConfig()
	bad.NeighborRadius = 0
	if _, err := Infer(net, map[road.SegmentID]traffic.Estimate{1: estimateAtRatio(net, 1, 0.5)}, bad); err == nil {
		t.Error("want error for zero radius")
	}
}

func TestOverallIndexIsWeightedMean(t *testing.T) {
	net := testNet(t)
	est := map[road.SegmentID]traffic.Estimate{
		0: estimateAtRatio(net, 0, 0.4),
		2: estimateAtRatio(net, 2, 0.8),
	}
	m, err := Infer(net, est, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Equal-length segments: plain mean.
	if got := m.OverallIndex(); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("overall = %v, want 0.6", got)
	}
}

func TestCoveredZonePredictsItsOwnIndex(t *testing.T) {
	net := testNet(t)
	// Cover several segments near the origin at ratio 0.5.
	est := make(map[road.SegmentID]traffic.Estimate)
	for sid := 0; sid < 8; sid += 2 {
		est[road.SegmentID(sid)] = estimateAtRatio(net, road.SegmentID(sid), 0.5)
	}
	m, err := Infer(net, est, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.CoveredZones() == 0 {
		t.Fatal("no covered zones")
	}
	// A covered segment's prediction should be ~0.5 x design.
	seg := net.Segment(0)
	want := seg.FreeKmh * 0.5
	if got := m.PredictKmh(0); math.Abs(got-want) > 0.05*want {
		t.Errorf("PredictKmh(0) = %v, want ~%v", got, want)
	}
}

func TestUncoveredZoneBorrowsFromNeighbors(t *testing.T) {
	net := testNet(t)
	// Congest only the west side; ask about an uncovered point nearby.
	est := make(map[road.SegmentID]traffic.Estimate)
	for _, s := range net.Segments() {
		mid := s.Shape.At(s.LengthM() / 2)
		if mid.X < 1000 {
			est[s.ID] = estimateAtRatio(net, s.ID, 0.3)
		}
	}
	if len(est) == 0 {
		t.Fatal("no west segments")
	}
	m, err := Infer(net, est, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A point just east of the covered area borrows the ~0.3 index.
	idx := m.ZoneIndex(geo.XY{X: 1500, Y: 1500})
	if math.Abs(idx-0.3) > 0.1 {
		t.Errorf("borrowed index = %v, want ~0.3", idx)
	}
	// A point far beyond the radius falls back to the overall index.
	far := m.ZoneIndex(geo.XY{X: 50000, Y: 50000})
	if math.Abs(far-m.OverallIndex()) > 1e-9 {
		t.Errorf("far index = %v, want overall %v", far, m.OverallIndex())
	}
}

func TestSpatialGradientRecovered(t *testing.T) {
	// Cover half the network with a west-congested/east-free pattern
	// and check predictions on the *uncovered* half recover the
	// gradient.
	net := testNet(t)
	ratioOf := func(mid geo.XY) float64 {
		if mid.X < 2000 {
			return 0.3
		}
		return 0.7
	}
	est := make(map[road.SegmentID]traffic.Estimate)
	for _, s := range net.Segments() {
		if s.ID%2 == 0 { // cover every other segment
			mid := s.Shape.At(s.LengthM() / 2)
			est[s.ID] = estimateAtRatio(net, s.ID, ratioOf(mid))
		}
	}
	m, err := Infer(net, est, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var errSum float64
	n := 0
	for _, s := range net.Segments() {
		if s.ID%2 == 0 {
			continue // only evaluate uncovered segments
		}
		mid := s.Shape.At(s.LengthM() / 2)
		truth := s.FreeKmh * ratioOf(mid)
		errSum += math.Abs(m.PredictKmh(s.ID)-truth) / truth
		n++
	}
	if n == 0 {
		t.Fatal("no uncovered segments evaluated")
	}
	if rel := errSum / float64(n); rel > 0.2 {
		t.Errorf("mean relative prediction error %v on uncovered half", rel)
	}
}

func TestThinCoverageFallback(t *testing.T) {
	net := testNet(t)
	// One short covered segment below MinCoveredLengthM still yields a
	// usable model (single-zone fallback).
	cfg := DefaultConfig()
	cfg.MinCoveredLengthM = 1e9
	est := map[road.SegmentID]traffic.Estimate{3: estimateAtRatio(net, 3, 0.5)}
	m, err := Infer(net, est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.CoveredZones() == 0 {
		t.Error("fallback should keep at least one zone")
	}
	if v := m.PredictKmh(100); v <= 0 {
		t.Errorf("prediction %v", v)
	}
}
