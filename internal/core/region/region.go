// Package region implements the paper's first future-work item (§VI):
// "deriving the overall traffic of a region from the bus covered road
// segments". Bus routes cover about half the road network; this package
// extrapolates the covered segments' estimates to the rest of the city
// through a zone model.
//
// The city is partitioned into square zones. Each zone's congestion
// index is the length-weighted mean of (estimated speed / design speed)
// over the covered segments inside it; zones without covered segments
// borrow from their neighbours by inverse-distance weighting. An
// uncovered segment's speed is then predicted as its design speed times
// its zone's index. This mirrors the sparse-probe inference literature
// the paper cites ([9], [13]) at the level of fidelity the data supports.
package region

import (
	"fmt"
	"math"

	"busprobe/internal/core/traffic"
	"busprobe/internal/geo"
	"busprobe/internal/road"
)

// Config parameterizes the zone model.
type Config struct {
	// ZoneM is the square zone edge length.
	ZoneM float64
	// MinCoveredLengthM is the covered road length a zone needs before
	// its own index is trusted (below it, neighbours dominate).
	MinCoveredLengthM float64
	// NeighborRadius is how many zone rings to borrow from when a zone
	// has no coverage.
	NeighborRadius int
}

// DefaultConfig returns 1 km zones.
func DefaultConfig() Config {
	return Config{ZoneM: 1000, MinCoveredLengthM: 300, NeighborRadius: 3}
}

// Validate rejects broken configurations.
func (c Config) Validate() error {
	if c.ZoneM <= 0 {
		return fmt.Errorf("region: non-positive zone size %v", c.ZoneM)
	}
	if c.NeighborRadius < 1 {
		return fmt.Errorf("region: neighbor radius must be >= 1")
	}
	return nil
}

// Zone addresses one square cell of the city-wide zone grid. The same
// grid that extrapolates traffic (§VI) also gives any city position a
// stable discrete address, which the backend's spatial sharding uses to
// order route groups deterministically.
type Zone struct{ X, Y int }

// ZoneAt maps a position to its zone on a grid of zoneM-sized squares.
func ZoneAt(p geo.XY, zoneM float64) Zone {
	return Zone{X: int(math.Floor(p.X / zoneM)), Y: int(math.Floor(p.Y / zoneM))}
}

// Less orders zones column-major (X, then Y), the deterministic sweep
// order the shard partitioner assigns route groups in.
func (z Zone) Less(o Zone) bool {
	if z.X != o.X {
		return z.X < o.X
	}
	return z.Y < o.Y
}

// zoneKey addresses a zone (internal alias of Zone).
type zoneKey = Zone

// zoneAgg accumulates a zone's covered evidence.
type zoneAgg struct {
	ratioLen float64 // sum of (speed/design) * length
	length   float64 // covered length
}

// Model is a fitted regional traffic model. Build one per map refresh
// with Infer; it is immutable afterwards.
type Model struct {
	cfg     Config
	net     *road.Network
	zones   map[zoneKey]float64 // congestion index per zone with coverage
	overall float64             // city-wide length-weighted index
}

// Infer fits the zone model from the current per-segment estimates.
func Infer(net *road.Network, estimates map[road.SegmentID]traffic.Estimate, cfg Config) (*Model, error) {
	if net == nil {
		return nil, fmt.Errorf("region: nil network")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(estimates) == 0 {
		return nil, fmt.Errorf("region: no covered segments to infer from")
	}
	agg := make(map[zoneKey]*zoneAgg)
	var totalRatioLen, totalLen float64
	for sid, est := range estimates {
		seg := net.Segment(sid)
		ratio := est.SpeedKmh / seg.FreeKmh
		mid := seg.Shape.At(seg.LengthM() / 2)
		key := zoneOf(mid, cfg.ZoneM)
		a := agg[key]
		if a == nil {
			a = &zoneAgg{}
			agg[key] = a
		}
		a.ratioLen += ratio * seg.LengthM()
		a.length += seg.LengthM()
		totalRatioLen += ratio * seg.LengthM()
		totalLen += seg.LengthM()
	}
	m := &Model{
		cfg:     cfg,
		net:     net,
		zones:   make(map[zoneKey]float64, len(agg)),
		overall: totalRatioLen / totalLen,
	}
	for key, a := range agg {
		if a.length >= cfg.MinCoveredLengthM {
			m.zones[key] = a.ratioLen / a.length
		}
	}
	if len(m.zones) == 0 {
		// Coverage too thin everywhere; fall back to one city zone.
		for key, a := range agg {
			m.zones[key] = a.ratioLen / a.length
		}
	}
	return m, nil
}

// zoneOf maps a position to its zone.
func zoneOf(p geo.XY, zoneM float64) zoneKey { return ZoneAt(p, zoneM) }

// OverallIndex returns the city-wide congestion index: the
// length-weighted mean speed/design ratio over covered roads.
func (m *Model) OverallIndex() float64 { return m.overall }

// ZoneIndex returns the congestion index at a position: the zone's own
// index if covered, otherwise an inverse-distance blend of covered
// neighbours within the configured radius, otherwise the city overall.
func (m *Model) ZoneIndex(p geo.XY) float64 {
	key := zoneOf(p, m.cfg.ZoneM)
	if idx, ok := m.zones[key]; ok {
		return idx
	}
	var wsum, vsum float64
	for dx := -m.cfg.NeighborRadius; dx <= m.cfg.NeighborRadius; dx++ {
		for dy := -m.cfg.NeighborRadius; dy <= m.cfg.NeighborRadius; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nb := zoneKey{X: key.X + dx, Y: key.Y + dy}
			idx, ok := m.zones[nb]
			if !ok {
				continue
			}
			d := math.Hypot(float64(dx), float64(dy))
			w := 1 / (d * d)
			wsum += w
			vsum += w * idx
		}
	}
	if wsum == 0 {
		return m.overall
	}
	return vsum / wsum
}

// PredictKmh predicts the automobile speed of any road segment — covered
// or not — as design speed times the local zone index.
func (m *Model) PredictKmh(sid road.SegmentID) float64 {
	seg := m.net.Segment(sid)
	mid := seg.Shape.At(seg.LengthM() / 2)
	return seg.FreeKmh * m.ZoneIndex(mid)
}

// CoveredZones returns how many zones carry their own index.
func (m *Model) CoveredZones() int { return len(m.zones) }
