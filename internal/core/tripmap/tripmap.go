// Package tripmap implements the paper's per-trip mapping stage
// (§III-C(3)): given the time-ordered cluster sequence of a trip, each
// with a pool of candidate bus stops, find the stop sequence S* that
// maximizes the Eq. 2 likelihood
//
//	S* = argmax_S { p_1(S_1)·s̄_1(S_1) +
//	                Σ_{i≥2} p_i(S_i)·s̄_i(S_i)·R(S_{i-1}, S_i) }
//
// where p and s̄ are the per-cluster candidate statistics and R is the
// route-order relation (1 when a bus can reach S_i after S_{i-1} on some
// route, or when the stops are equal; 0 otherwise).
//
// The paper describes the search over all N = Π B_k candidate sequences.
// Because the objective is a sum of per-step terms whose coupling is only
// between adjacent clusters, a Viterbi-style dynamic program finds the
// identical argmax in O(n·B²); Resolve uses the DP and ResolveBrute keeps
// the paper's literal enumeration for cross-checking.
package tripmap

import (
	"fmt"
	"math"

	"busprobe/internal/core/cluster"
	"busprobe/internal/transit"
)

// OrderRelation is the route-order oracle R(x, y). *transit.DB
// implements it.
type OrderRelation interface {
	R(x, y transit.StopID) float64
}

var _ OrderRelation = (*transit.DB)(nil)

// Visit is one resolved bus-stop visit of a mapped trip.
type Visit struct {
	Stop transit.StopID
	// ArriveS and DepartS carry over the cluster's visit window.
	ArriveS float64
	DepartS float64
	// Confidence is the winning candidate's within-cluster support p.
	Confidence float64
}

// Result is a mapped trip trajectory.
type Result struct {
	Visits []Visit
	// Score is the maximized Eq. 2 objective.
	Score float64
}

// Resolve maps a trip's cluster sequence to its maximum-likelihood stop
// sequence using the exact dynamic program.
func Resolve(clusters []cluster.Cluster, order OrderRelation) (Result, error) {
	if order == nil {
		return Result{}, fmt.Errorf("tripmap: nil order relation")
	}
	n := len(clusters)
	if n == 0 {
		return Result{}, nil
	}
	for i, c := range clusters {
		if len(c.Candidates) == 0 {
			return Result{}, fmt.Errorf("tripmap: cluster %d has no candidates", i)
		}
	}

	// dp[i][c]: best prefix objective ending with candidate c at cluster
	// i; from[i][c]: argmax predecessor index.
	dp := make([][]float64, n)
	from := make([][]int, n)
	for i := range dp {
		dp[i] = make([]float64, len(clusters[i].Candidates))
		from[i] = make([]int, len(clusters[i].Candidates))
	}
	for c, cand := range clusters[0].Candidates {
		dp[0][c] = cand.P * cand.AvgScore
		from[0][c] = -1
	}
	for i := 1; i < n; i++ {
		for c, cand := range clusters[i].Candidates {
			w := cand.P * cand.AvgScore
			best, bestPrev := math.Inf(-1), 0
			for pc, prevCand := range clusters[i-1].Candidates {
				v := dp[i-1][pc] + w*order.R(prevCand.Stop, cand.Stop)
				if v > best {
					best, bestPrev = v, pc
				}
			}
			dp[i][c] = best
			from[i][c] = bestPrev
		}
	}

	// Pick the best terminal candidate (ties broken by candidate order,
	// which is deterministic: descending p, then score, then stop ID).
	bestC, bestV := 0, math.Inf(-1)
	for c, v := range dp[n-1] {
		if v > bestV {
			bestC, bestV = c, v
		}
	}

	visits := make([]Visit, n)
	for i, c := n-1, bestC; i >= 0; i-- {
		cand := clusters[i].Candidates[c]
		visits[i] = Visit{
			Stop:       cand.Stop,
			ArriveS:    clusters[i].ArriveS,
			DepartS:    clusters[i].DepartS,
			Confidence: cand.P,
		}
		c = from[i][c]
	}
	return Result{Visits: visits, Score: bestV}, nil
}

// MaxBruteSequences bounds ResolveBrute's enumeration; beyond it the
// call refuses rather than exploding.
const MaxBruteSequences = 1 << 22

// ResolveBrute enumerates all N = Π B_k candidate sequences and scores
// Eq. 2 directly — the paper's literal formulation. It exists to
// cross-check Resolve and for didactic value; use Resolve in production.
func ResolveBrute(clusters []cluster.Cluster, order OrderRelation) (Result, error) {
	if order == nil {
		return Result{}, fmt.Errorf("tripmap: nil order relation")
	}
	n := len(clusters)
	if n == 0 {
		return Result{}, nil
	}
	total := 1
	for i, c := range clusters {
		if len(c.Candidates) == 0 {
			return Result{}, fmt.Errorf("tripmap: cluster %d has no candidates", i)
		}
		total *= len(c.Candidates)
		if total > MaxBruteSequences {
			return Result{}, fmt.Errorf("tripmap: %d sequences exceed brute-force cap", total)
		}
	}

	idx := make([]int, n)
	best := math.Inf(-1)
	bestIdx := make([]int, n)
	for {
		var score float64
		for i := 0; i < n; i++ {
			cand := clusters[i].Candidates[idx[i]]
			w := cand.P * cand.AvgScore
			if i == 0 {
				score += w
			} else {
				prev := clusters[i-1].Candidates[idx[i-1]]
				score += w * order.R(prev.Stop, cand.Stop)
			}
		}
		if score > best {
			best = score
			copy(bestIdx, idx)
		}
		// Advance the mixed-radix counter.
		k := n - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < len(clusters[k].Candidates) {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			break
		}
	}

	visits := make([]Visit, n)
	for i := range visits {
		cand := clusters[i].Candidates[bestIdx[i]]
		visits[i] = Visit{
			Stop:       cand.Stop,
			ArriveS:    clusters[i].ArriveS,
			DepartS:    clusters[i].DepartS,
			Confidence: cand.P,
		}
	}
	return Result{Visits: visits, Score: best}, nil
}
