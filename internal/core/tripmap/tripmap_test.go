package tripmap

import (
	"math"
	"testing"

	"busprobe/internal/core/cluster"
	"busprobe/internal/road"
	"busprobe/internal/stats"
	"busprobe/internal/transit"
)

// Aliases keeping the transit-DB integration test readable.
type roadNodeID = road.NodeID

func roadDefault() road.GridConfig {
	cfg := road.DefaultGridConfig()
	cfg.WidthM = 3000
	cfg.HeightM = 2000
	cfg.JitterM = 0
	return cfg
}

func roadGrid(cfg road.GridConfig) (*road.Network, error) {
	return road.GenerateGrid(cfg)
}

// orderFunc adapts a function to the OrderRelation interface.
type orderFunc func(x, y transit.StopID) float64

func (f orderFunc) R(x, y transit.StopID) float64 { return f(x, y) }

// lineOrder returns R for a single linear route 0 -> 1 -> ... -> n-1.
func lineOrder() orderFunc {
	return func(x, y transit.StopID) float64 {
		if x == y || y > x {
			return 1
		}
		return 0
	}
}

func cl(arrive, depart float64, cands ...cluster.Candidate) cluster.Cluster {
	return cluster.Cluster{ArriveS: arrive, DepartS: depart, Candidates: cands}
}

func cand(stop int, p, avg float64) cluster.Candidate {
	return cluster.Candidate{Stop: transit.StopID(stop), P: p, AvgScore: avg}
}

func TestResolveCleanTrip(t *testing.T) {
	clusters := []cluster.Cluster{
		cl(100, 110, cand(1, 1, 5)),
		cl(200, 210, cand(2, 1, 5.5)),
		cl(300, 310, cand(3, 1, 6)),
	}
	res, err := Resolve(clusters, lineOrder())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Visits) != 3 {
		t.Fatalf("visits = %d", len(res.Visits))
	}
	for i, v := range res.Visits {
		if v.Stop != transit.StopID(i+1) {
			t.Errorf("visit %d stop = %d", i, v.Stop)
		}
		if v.Confidence != 1 {
			t.Errorf("visit %d confidence = %v", i, v.Confidence)
		}
	}
	if res.Visits[0].ArriveS != 100 || res.Visits[0].DepartS != 110 {
		t.Error("visit window not carried over")
	}
	want := 5 + 5.5 + 6.0
	if math.Abs(res.Score-want) > 1e-9 {
		t.Errorf("score = %v, want %v", res.Score, want)
	}
}

func TestRouteConstraintOverridesPopularity(t *testing.T) {
	// The middle cluster's most popular candidate (stop 9) is not
	// reachable from stop 1 on any route; Eq. 2 zeroes its term, so the
	// less popular but route-consistent stop 2 wins overall.
	order := orderFunc(func(x, y transit.StopID) float64 {
		if x == y {
			return 1
		}
		ok := map[[2]transit.StopID]bool{
			{1, 2}: true, {2, 3}: true, {1, 3}: true,
		}
		if ok[[2]transit.StopID{x, y}] {
			return 1
		}
		return 0
	})
	clusters := []cluster.Cluster{
		cl(0, 10, cand(1, 1, 6)),
		cl(100, 110, cand(9, 0.6, 5), cand(2, 0.4, 5)),
		cl(200, 210, cand(3, 1, 6)),
	}
	res, err := Resolve(clusters, order)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visits[1].Stop != 2 {
		t.Errorf("middle visit = %d, want 2 (route-consistent)", res.Visits[1].Stop)
	}
	// Expected objective: 6 + 0.4*5 + 6.
	if math.Abs(res.Score-14) > 1e-9 {
		t.Errorf("score = %v, want 14", res.Score)
	}
}

func TestResolveEmptyAndErrors(t *testing.T) {
	res, err := Resolve(nil, lineOrder())
	if err != nil || len(res.Visits) != 0 {
		t.Errorf("empty input: %+v %v", res, err)
	}
	if _, err := Resolve([]cluster.Cluster{{}}, lineOrder()); err == nil {
		t.Error("want error for empty candidate pool")
	}
	if _, err := Resolve([]cluster.Cluster{cl(0, 1, cand(1, 1, 5))}, nil); err == nil {
		t.Error("want error for nil order")
	}
	if _, err := ResolveBrute([]cluster.Cluster{{}}, lineOrder()); err == nil {
		t.Error("brute: want error for empty pool")
	}
	if _, err := ResolveBrute(nil, nil); err == nil {
		t.Error("brute: want error for nil order")
	}
}

func TestDPEqualsBruteForceProperty(t *testing.T) {
	// On random instances the DP and the paper's literal enumeration
	// must agree on the maximized objective (argmax sequences may
	// differ under exact ties, the score may not).
	rng := stats.NewRNG(77)
	// Random sparse order relation over 8 stops, reflexive.
	for trial := 0; trial < 300; trial++ {
		allowed := make(map[[2]transit.StopID]bool)
		for i := 0; i < 20; i++ {
			x := transit.StopID(rng.Intn(8))
			y := transit.StopID(rng.Intn(8))
			allowed[[2]transit.StopID{x, y}] = true
		}
		order := orderFunc(func(x, y transit.StopID) float64 {
			if x == y || allowed[[2]transit.StopID{x, y}] {
				return 1
			}
			return 0
		})
		n := 1 + rng.Intn(5)
		clusters := make([]cluster.Cluster, n)
		tcur := 0.0
		for i := range clusters {
			k := 1 + rng.Intn(3)
			cands := make([]cluster.Candidate, k)
			for j := range cands {
				cands[j] = cand(rng.Intn(8), rng.Range(0.1, 1), rng.Range(2, 7))
			}
			tcur += rng.Range(60, 300)
			clusters[i] = cl(tcur, tcur+rng.Range(5, 30), cands...)
		}
		dp, err := Resolve(clusters, order)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := ResolveBrute(clusters, order)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp.Score-bf.Score) > 1e-9 {
			t.Fatalf("trial %d: DP score %v != brute %v", trial, dp.Score, bf.Score)
		}
		if len(dp.Visits) != len(bf.Visits) {
			t.Fatalf("trial %d: visit counts differ", trial)
		}
	}
}

func TestBruteForceCap(t *testing.T) {
	// 23 clusters of 2 candidates exceed 2^22.
	clusters := make([]cluster.Cluster, 23)
	for i := range clusters {
		clusters[i] = cl(float64(i*100), float64(i*100+10),
			cand(1, 0.5, 5), cand(2, 0.5, 5))
	}
	if _, err := ResolveBrute(clusters, lineOrder()); err == nil {
		t.Error("want error beyond enumeration cap")
	}
	// The DP handles it fine.
	if _, err := Resolve(clusters, lineOrder()); err != nil {
		t.Errorf("DP failed: %v", err)
	}
}

func TestResolveDeterministic(t *testing.T) {
	clusters := []cluster.Cluster{
		cl(0, 10, cand(1, 0.5, 5), cand(2, 0.5, 5)),
		cl(100, 110, cand(3, 0.5, 5), cand(4, 0.5, 5)),
	}
	a, err := Resolve(clusters, lineOrder())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := Resolve(clusters, lineOrder())
		if err != nil {
			t.Fatal(err)
		}
		for j := range a.Visits {
			if a.Visits[j].Stop != b.Visits[j].Stop {
				t.Fatal("resolution not deterministic")
			}
		}
	}
}

func TestRealTransitDBOrder(t *testing.T) {
	// Wire the real transit.DB in as the OrderRelation.
	cfg := roadDefault()
	net, err := roadGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bl := transit.NewBuilder(net)
	nodes := []int{0, 1, 2, 3, 4}
	ids := make([]roadNodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = roadNodeID(n)
	}
	if err := bl.AddRoute("T", "", ids, 480); err != nil {
		t.Fatal(err)
	}
	db := bl.Build()
	rt := db.Route("T")
	clusters := []cluster.Cluster{
		cl(0, 10, cand(int(rt.Stops[0]), 1, 6)),
		cl(100, 110, cand(int(rt.Stops[4]), 0.5, 5), cand(int(rt.Stops[2]), 0.5, 5)),
		cl(200, 210, cand(int(rt.Stops[3]), 1, 6)),
	}
	res, err := Resolve(clusters, db)
	if err != nil {
		t.Fatal(err)
	}
	// Stop[4] cannot be followed by Stop[3]; stop[2] keeps the chain
	// alive (its successor term counts), so it must win.
	if res.Visits[1].Stop != rt.Stops[2] {
		t.Errorf("visit 1 = %d, want %d", res.Visits[1].Stop, rt.Stops[2])
	}
}
