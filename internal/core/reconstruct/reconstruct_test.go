package reconstruct

import (
	"math"
	"testing"

	"busprobe/internal/core/tripmap"
	"busprobe/internal/geo"
	"busprobe/internal/sim"
	"busprobe/internal/transit"
)

func testWorld(t *testing.T) *sim.World {
	t.Helper()
	cfg := sim.DefaultWorldConfig()
	cfg.Road.WidthM = 3000
	cfg.Road.HeightM = 2000
	cfg.Plan.RouteIDs = []transit.RouteID{"179"}
	cfg.Plan.MinStops = 8
	cfg.Plan.MaxStops = 12
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func visitsFor(rt *transit.Route, idxs []int, times [][2]float64) []tripmap.Visit {
	out := make([]tripmap.Visit, len(idxs))
	for i, idx := range idxs {
		out[i] = tripmap.Visit{
			Stop:    rt.Stops[idx],
			ArriveS: times[i][0],
			DepartS: times[i][1],
		}
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	w := testWorld(t)
	rt := w.Transit.Routes()[0]
	if _, err := Build(nil, rt, nil); err == nil {
		t.Error("want error for nil network")
	}
	if _, err := Build(w.Net, rt, nil); err == nil {
		t.Error("want error for no visits")
	}
	// Inverted dwell window.
	bad := visitsFor(rt, []int{0}, [][2]float64{{100, 50}})
	if _, err := Build(w.Net, rt, bad); err == nil {
		t.Error("want error for inverted window")
	}
	// Out-of-order stops.
	bad = visitsFor(rt, []int{3, 1}, [][2]float64{{0, 10}, {100, 110}})
	if _, err := Build(w.Net, rt, bad); err == nil {
		t.Error("want error for out-of-order visits")
	}
	// Time travel between visits.
	bad = visitsFor(rt, []int{0, 1}, [][2]float64{{0, 100}, {50, 120}})
	if _, err := Build(w.Net, rt, bad); err == nil {
		t.Error("want error for overlapping times")
	}
	// Stop not on route.
	notOn := []tripmap.Visit{{Stop: transit.StopID(9999), ArriveS: 0, DepartS: 1}}
	if _, err := Build(w.Net, rt, notOn); err == nil {
		t.Error("want error for foreign stop")
	}
}

func TestDwellAndMotionPhases(t *testing.T) {
	w := testWorld(t)
	rt := w.Transit.Routes()[0]
	visits := visitsFor(rt, []int{0, 1}, [][2]float64{{100, 120}, {220, 240}})
	tr, err := Build(w.Net, rt, visits)
	if err != nil {
		t.Fatal(err)
	}
	if tr.StartS() != 100 || tr.EndS() != 240 {
		t.Errorf("span [%v, %v]", tr.StartS(), tr.EndS())
	}
	// During the first dwell, the bus stands at stop 0.
	p0, ok := tr.At(110)
	if !ok {
		t.Fatal("no position during dwell")
	}
	stop0 := w.Net.Segment(rt.Leg(w.Net, 0).Segments[0]).Shape.Start()
	if geo.DistM(p0, stop0) > 1e-6 {
		t.Errorf("dwell position %v, want %v", p0, stop0)
	}
	// Mid-leg the bus is halfway along the geometry.
	leg := rt.Leg(w.Net, 0)
	mid, ok := tr.At(170)
	if !ok {
		t.Fatal("no position mid-leg")
	}
	wantDist := leg.LengthM / 2
	start := w.Net.Segment(leg.Segments[0]).Shape.Start()
	if math.Abs(geo.DistM(mid, start)-wantDist) > leg.LengthM*0.05 {
		t.Errorf("mid-leg position %v m from start, want ~%v", geo.DistM(mid, start), wantDist)
	}
	// Outside the span.
	if _, ok := tr.At(50); ok {
		t.Error("position before start")
	}
	if _, ok := tr.At(500); ok {
		t.Error("position after end")
	}
}

func TestSkippedStopLegGeometry(t *testing.T) {
	w := testWorld(t)
	rt := w.Transit.Routes()[0]
	// Visits at stops 0 and 3 (1, 2 skipped): the motion phase covers
	// the merged geometry.
	visits := visitsFor(rt, []int{0, 3}, [][2]float64{{0, 10}, {310, 320}})
	tr, err := Build(w.Net, rt, visits)
	if err != nil {
		t.Fatal(err)
	}
	merged := rt.LegBetween(w.Net, 0, 3)
	// The end of the motion phase lands at stop 3.
	end, ok := tr.At(310)
	if !ok {
		t.Fatal("no position at arrival")
	}
	lastSeg := w.Net.Segment(merged.Segments[len(merged.Segments)-1])
	if geo.DistM(end, lastSeg.Shape.End()) > 1 {
		t.Errorf("arrival position %v, want %v", end, lastSeg.Shape.End())
	}
}

func TestSample(t *testing.T) {
	w := testWorld(t)
	rt := w.Transit.Routes()[0]
	visits := visitsFor(rt, []int{0, 1, 2}, [][2]float64{{0, 10}, {70, 85}, {150, 160}})
	tr, err := Build(w.Net, rt, visits)
	if err != nil {
		t.Fatal(err)
	}
	pts := tr.Sample(5)
	if len(pts) < 20 {
		t.Fatalf("samples = %d", len(pts))
	}
	var moving, dwelling int
	for i, p := range pts {
		if i > 0 && p.TimeS <= pts[i-1].TimeS {
			t.Fatal("samples not time-ordered")
		}
		if p.Moving {
			moving++
		} else {
			dwelling++
		}
	}
	if moving == 0 || dwelling == 0 {
		t.Errorf("phases unrepresented: moving=%d dwelling=%d", moving, dwelling)
	}
	if tr.Sample(0) != nil {
		t.Error("zero step should be nil")
	}
}

// TestAgainstSimulatedBus drives a real simulated bus, logs its true
// positions, reconstructs the trajectory from the visit record alone,
// and checks the track error stays within a stop spacing.
func TestAgainstSimulatedBus(t *testing.T) {
	w := testWorld(t)
	rt := w.Transit.Routes()[0]
	bus, err := sim.NewBus(1, rt, w.Net)
	if err != nil {
		t.Fatal(err)
	}
	type truthPt struct {
		t   float64
		pos geo.XY
	}
	var truth []truthPt
	var visits []tripmap.Visit
	now := 9 * 3600.0
	for !bus.Done() {
		if bus.PendingArrival() {
			idx := bus.StopIdx()
			arrive := now
			if err := bus.Dwell(now, 12); err != nil {
				t.Fatal(err)
			}
			visits = append(visits, tripmap.Visit{
				Stop:    rt.Stops[idx],
				ArriveS: arrive,
				DepartS: arrive + 12,
			})
		}
		if _, err := bus.Advance(now, 1, w.Field); err != nil {
			t.Fatal(err)
		}
		truth = append(truth, truthPt{t: now, pos: bus.Pos()})
		now++
	}
	tr, err := Build(w.Net, rt, visits)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 0
	for _, tp := range truth {
		pos, ok := tr.At(tp.t)
		if !ok {
			continue
		}
		sum += geo.DistM(pos, tp.pos)
		n++
	}
	if n == 0 {
		t.Fatal("no overlapping samples")
	}
	mean := sum / float64(n)
	if mean > 120 {
		t.Errorf("mean reconstruction error %v m", mean)
	}
	t.Logf("mean reconstruction error: %.1f m over %d samples", mean, n)
}
