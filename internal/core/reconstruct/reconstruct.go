// Package reconstruct rebuilds a bus's continuous trajectory from the
// sparse output of trip mapping: the sequence of identified stop visits
// with their arrival and departing times. Between consecutive stops the
// bus is placed along the route's road geometry at the constant speed
// implied by the measured leg travel time; during a visit it stands at
// the stop.
//
// This is the system's answer to trajectory mapping without GPS (the
// CTrack-style problem the paper cites): bus-stop anchors plus route
// geometry suffice to localize the vehicle at every instant, which is
// what lets the backend attribute travel time to road segments.
package reconstruct

import (
	"fmt"
	"sort"

	"busprobe/internal/core/tripmap"
	"busprobe/internal/geo"
	"busprobe/internal/road"
	"busprobe/internal/transit"
)

// Point is a reconstructed position sample.
type Point struct {
	TimeS float64
	Pos   geo.XY
	// Moving is false while the bus dwells at a stop.
	Moving bool
}

// phase is one homogeneous piece of the trajectory.
type phase struct {
	startS, endS float64
	// shape is nil for a dwell (fixed at pos); otherwise the bus moves
	// along it at constant speed.
	shape *geo.Polyline
	pos   geo.XY
}

// Trajectory is a reconstructed, continuous bus track. Immutable; safe
// for concurrent readers.
type Trajectory struct {
	phases []phase
}

// Build reconstructs a trajectory from a trip's mapped visits along a
// route. Visits must be time-ordered and their stops must appear on the
// route in travel order; pairs that do not (mapping noise) produce an
// error, matching the backend's own discard policy.
func Build(net *road.Network, rt *transit.Route, visits []tripmap.Visit) (*Trajectory, error) {
	if net == nil || rt == nil {
		return nil, fmt.Errorf("reconstruct: nil network or route")
	}
	if len(visits) == 0 {
		return nil, fmt.Errorf("reconstruct: no visits")
	}
	var phases []phase
	stopPos := func(s transit.StopID) (geo.XY, error) {
		idx := rt.StopIndex(s)
		if idx < 0 {
			return geo.XY{}, fmt.Errorf("reconstruct: stop %d not on route %s", s, rt.ID)
		}
		// The stop sits at the From node of its leg (or the terminal To
		// node); the leg shape starts there.
		if idx < rt.NumLegs() {
			leg := rt.Leg(net, idx)
			return net.Segment(leg.Segments[0]).Shape.Start(), nil
		}
		last := rt.Leg(net, rt.NumLegs()-1)
		return net.Segment(last.Segments[len(last.Segments)-1]).Shape.End(), nil
	}

	for i, v := range visits {
		if v.DepartS < v.ArriveS {
			return nil, fmt.Errorf("reconstruct: visit %d has inverted window", i)
		}
		pos, err := stopPos(v.Stop)
		if err != nil {
			return nil, err
		}
		phases = append(phases, phase{startS: v.ArriveS, endS: v.DepartS, pos: pos})
		if i+1 == len(visits) {
			break
		}
		next := visits[i+1]
		fi, ti := rt.StopIndex(v.Stop), rt.StopIndex(next.Stop)
		if fi < 0 || ti <= fi {
			return nil, fmt.Errorf("reconstruct: visits %d->%d not in route order", i, i+1)
		}
		if next.ArriveS < v.DepartS {
			return nil, fmt.Errorf("reconstruct: visit %d arrives before %d departs", i+1, i)
		}
		leg := rt.LegBetween(net, fi, ti)
		var pts []geo.XY
		for si, sid := range leg.Segments {
			shape := net.Segment(sid).Shape.Points()
			if si > 0 {
				shape = shape[1:] // drop the duplicated joint vertex
			}
			pts = append(pts, shape...)
		}
		if len(pts) >= 2 {
			phases = append(phases, phase{
				startS: v.DepartS,
				endS:   next.ArriveS,
				shape:  geo.NewPolyline(pts),
			})
		}
	}
	return &Trajectory{phases: phases}, nil
}

// StartS returns the trajectory's first covered instant.
func (tr *Trajectory) StartS() float64 { return tr.phases[0].startS }

// EndS returns the trajectory's last covered instant.
func (tr *Trajectory) EndS() float64 { return tr.phases[len(tr.phases)-1].endS }

// At returns the reconstructed position at time t, with ok=false outside
// the covered span.
func (tr *Trajectory) At(t float64) (geo.XY, bool) {
	if t < tr.StartS() || t > tr.EndS() {
		return geo.XY{}, false
	}
	// Binary search for the containing phase.
	i := sort.Search(len(tr.phases), func(i int) bool { return tr.phases[i].endS >= t })
	if i == len(tr.phases) {
		i--
	}
	ph := tr.phases[i]
	if ph.shape == nil {
		return ph.pos, true
	}
	span := ph.endS - ph.startS
	frac := 0.0
	if span > 0 {
		frac = (t - ph.startS) / span
	}
	return ph.shape.At(frac * ph.shape.Length()), true
}

// Sample returns points every stepS across the covered span.
func (tr *Trajectory) Sample(stepS float64) []Point {
	if stepS <= 0 {
		return nil
	}
	var out []Point
	for t := tr.StartS(); t <= tr.EndS(); t += stepS {
		pos, ok := tr.At(t)
		if !ok {
			continue
		}
		moving := true
		i := sort.Search(len(tr.phases), func(i int) bool { return tr.phases[i].endS >= t })
		if i < len(tr.phases) && tr.phases[i].shape == nil {
			moving = false
		}
		out = append(out, Point{TimeS: t, Pos: pos, Moving: moving})
	}
	return out
}
