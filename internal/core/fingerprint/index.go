package fingerprint

import (
	"sort"

	"busprobe/internal/cellular"
	"busprobe/internal/transit"
)

// The inverted index accelerates per-sample matching: since the
// Smith–Waterman score of two fingerprints with no shared cell ID is
// exactly zero, only stops sharing at least one tower with the sample
// can clear any positive γ. The index maps cell ID → stops whose stored
// fingerprint contains it, so MatchAll aligns against the handful of
// stops around the sample instead of the whole city (the paper's region
// already has >100 stops; a city has thousands).
//
// The index is maintained incrementally by Put and used automatically
// when γ > 0; results are identical to the full scan, which the tests
// assert.

// indexAddLocked registers a fingerprint's cells. Caller holds the write lock.
func (db *DB) indexAddLocked(stop transit.StopID, fp cellular.Fingerprint) {
	for _, c := range fp {
		db.index[c] = append(db.index[c], stop)
	}
}

// indexRemoveLocked unregisters a fingerprint's cells. Caller holds the write
// lock.
func (db *DB) indexRemoveLocked(stop transit.StopID, fp cellular.Fingerprint) {
	for _, c := range fp {
		list := db.index[c]
		out := list[:0]
		for _, s := range list {
			if s != stop {
				out = append(out, s)
			}
		}
		if len(out) == 0 {
			delete(db.index, c)
		} else {
			db.index[c] = out
		}
	}
}

// candidateStopsLocked returns the stops sharing at least one cell ID with the
// sample, deduplicated and sorted. Caller holds a read lock.
func (db *DB) candidateStopsLocked(sample cellular.Fingerprint) []transit.StopID {
	seen := make(map[transit.StopID]bool)
	var out []transit.StopID
	for _, c := range sample {
		for _, s := range db.index[c] {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
