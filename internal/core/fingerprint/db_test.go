package fingerprint

import (
	"sync"
	"testing"

	"busprobe/internal/cellular"
	"busprobe/internal/stats"
	"busprobe/internal/transit"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := NewDB(DefaultScoring(), DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewDBValidation(t *testing.T) {
	if _, err := NewDB(Scoring{Match: 0}, 2); err == nil {
		t.Error("want error for bad scoring")
	}
	if _, err := NewDB(DefaultScoring(), -1); err == nil {
		t.Error("want error for negative gamma")
	}
}

func TestPutGet(t *testing.T) {
	db := newTestDB(t)
	if err := db.Put(1, fp(10, 20, 30)); err != nil {
		t.Fatal(err)
	}
	got, ok := db.Get(1)
	if !ok || !got.Equal(fp(10, 20, 30)) {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := db.Get(2); ok {
		t.Error("unexpected entry for stop 2")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	if err := db.Put(1, nil); err == nil {
		t.Error("want error for empty fingerprint")
	}
}

func TestPutCopiesAndGetCopies(t *testing.T) {
	db := newTestDB(t)
	src := fp(1, 2, 3)
	if err := db.Put(5, src); err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	got, _ := db.Get(5)
	if got[0] != 1 {
		t.Error("Put aliased caller slice")
	}
	got[1] = 98
	again, _ := db.Get(5)
	if again[1] != 2 {
		t.Error("Get returned aliased storage")
	}
}

func TestStopsSorted(t *testing.T) {
	db := newTestDB(t)
	for _, id := range []transit.StopID{5, 1, 3} {
		if err := db.Put(id, fp(int(id), 100)); err != nil {
			t.Fatal(err)
		}
	}
	stops := db.Stops()
	if len(stops) != 3 || stops[0] != 1 || stops[1] != 3 || stops[2] != 5 {
		t.Errorf("Stops = %v", stops)
	}
}

func TestMatchBestAndThreshold(t *testing.T) {
	db := newTestDB(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Put(1, fp(1, 2, 3, 4, 5)))
	must(db.Put(2, fp(6, 7, 8, 9)))
	must(db.Put(3, fp(1, 2, 10, 11)))

	m, ok := db.Match(fp(1, 2, 3, 4))
	if !ok || m.Stop != 1 {
		t.Fatalf("Match = %+v, %v", m, ok)
	}
	if m.Score < 4-1e-9 {
		t.Errorf("score = %v", m.Score)
	}

	// A sample sharing too little with anything is rejected by gamma.
	if _, ok := db.Match(fp(100, 101, 1)); ok {
		t.Error("noisy sample should be rejected")
	}
	if got := db.MatchAll(nil); got != nil {
		t.Error("empty sample should give nil")
	}
}

func TestMatchAllOrdering(t *testing.T) {
	db := newTestDB(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Put(1, fp(1, 2, 3, 4)))
	must(db.Put(2, fp(1, 2, 3, 9)))
	all := db.MatchAll(fp(1, 2, 3, 4))
	if len(all) != 2 {
		t.Fatalf("candidates = %d", len(all))
	}
	if all[0].Stop != 1 || all[0].Score < all[1].Score {
		t.Errorf("ordering wrong: %+v", all)
	}
}

func TestMatchTieBreakOnCommonIDs(t *testing.T) {
	db := newTestDB(t)
	// Both stops align the sample prefix {1,2,3} perfectly (score 3),
	// but stop 2 shares an extra ID (4) outside the alignment.
	if err := db.Put(1, fp(1, 2, 3, 7, 8)); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(2, fp(1, 2, 3, 9, 4)); err != nil {
		t.Fatal(err)
	}
	sample := fp(1, 2, 3, 4)
	all := db.MatchAll(sample)
	if len(all) != 2 {
		t.Fatalf("candidates = %d", len(all))
	}
	if all[0].Score != all[1].Score {
		t.Skipf("scores unequal (%v vs %v); tie-break not exercised", all[0].Score, all[1].Score)
	}
	if all[0].Stop != 2 {
		t.Errorf("tie broken to stop %d, want 2 (more common IDs)", all[0].Stop)
	}
}

func TestPutFromSamplesPicksMedoid(t *testing.T) {
	db := newTestDB(t)
	samples := []cellular.Fingerprint{
		fp(1, 2, 3, 4, 5),   // canonical
		fp(1, 2, 3, 5, 4),   // minor swap
		fp(1, 2, 3, 4, 6),   // one tower differs
		fp(9, 8, 7, 60, 61), // outlier run
	}
	if err := db.PutFromSamples(7, samples); err != nil {
		t.Fatal(err)
	}
	got, ok := db.Get(7)
	if !ok {
		t.Fatal("no entry stored")
	}
	if got.Equal(samples[3]) {
		t.Error("outlier chosen as representative")
	}
	if err := db.PutFromSamples(8, nil); err == nil {
		t.Error("want error for no samples")
	}
}

func TestDBConcurrentAccess(t *testing.T) {
	db := newTestDB(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				stop := transit.StopID((w*200 + i) % 50)
				if err := db.Put(stop, fp(w, i%10, 3, 4)); err != nil {
					t.Error(err)
					return
				}
				db.Match(fp(w, i%10, 3, 4))
				db.Stops()
			}
		}(w)
	}
	wg.Wait()
}

func TestIndexedMatchEqualsFullScan(t *testing.T) {
	// The inverted index must produce byte-identical results to the
	// exhaustive scan across random databases and samples.
	rngSeed := uint64(1234)
	rng := statsNewRNG(rngSeed)
	for trial := 0; trial < 50; trial++ {
		indexed := newTestDB(t)                 // gamma = 2 -> indexed path
		full, err := NewDB(DefaultScoring(), 0) // gamma = 0 -> full scan
		if err != nil {
			t.Fatal(err)
		}
		nStops := 5 + rng.Intn(30)
		for s := 0; s < nStops; s++ {
			n := 3 + rng.Intn(5)
			entry := make(cellular.Fingerprint, n)
			for i := range entry {
				entry[i] = cellular.CellID(rng.Intn(60))
			}
			if err := indexed.Put(transit.StopID(s), entry); err != nil {
				t.Fatal(err)
			}
			if err := full.Put(transit.StopID(s), entry); err != nil {
				t.Fatal(err)
			}
		}
		for q := 0; q < 20; q++ {
			sample := make(cellular.Fingerprint, 3+rng.Intn(5))
			for i := range sample {
				sample[i] = cellular.CellID(rng.Intn(60))
			}
			got := indexed.MatchAll(sample)
			// Reference: full scan filtered at gamma 2.
			var want []Match
			for _, m := range full.MatchAll(sample) {
				if m.Score >= 2 {
					want = append(want, m)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: indexed %d matches, full %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: match %d differs: %+v vs %+v", trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestIndexMaintainedOnReplace(t *testing.T) {
	db := newTestDB(t)
	if err := db.Put(1, fp(10, 20, 30)); err != nil {
		t.Fatal(err)
	}
	// Replace with a disjoint fingerprint: old cells must no longer
	// find the stop.
	if err := db.Put(1, fp(40, 50, 60)); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Match(fp(10, 20, 30)); ok {
		t.Error("stale index entry matched old cells")
	}
	if m, ok := db.Match(fp(40, 50, 60)); !ok || m.Stop != 1 {
		t.Error("replaced fingerprint not matchable")
	}
}

// statsNewRNG avoids importing stats at top level twice.
func statsNewRNG(seed uint64) *stats.RNG { return stats.NewRNG(seed) }

func BenchmarkMatchCityScaleIndexed(b *testing.B) {
	db, sample := cityScaleDB(b, 2)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.MatchAll(sample)
	}
}

func BenchmarkMatchCityScaleFullScan(b *testing.B) {
	db, sample := cityScaleDB(b, 0) // gamma 0 disables the index
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.MatchAll(sample)
	}
}

// cityScaleDB builds a 5000-stop database with localized tower reuse.
func cityScaleDB(b *testing.B, gamma float64) (*DB, cellular.Fingerprint) {
	b.Helper()
	db, err := NewDB(DefaultScoring(), gamma)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(9)
	for s := 0; s < 5000; s++ {
		base := (s / 4) * 3 // neighbouring stops share towers
		entry := make(cellular.Fingerprint, 6)
		for i := range entry {
			entry[i] = cellular.CellID(base + rng.Intn(10))
		}
		if err := db.Put(transit.StopID(s), entry); err != nil {
			b.Fatal(err)
		}
	}
	return db, fp(3000, 3001, 3004, 3007, 3009)
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	if err := db.Put(1, fp(10, 20, 30)); err != nil {
		t.Fatal(err)
	}
	if !db.Delete(1) {
		t.Fatal("existing entry not deleted")
	}
	if db.Delete(1) {
		t.Fatal("double delete reported true")
	}
	if _, ok := db.Get(1); ok {
		t.Error("entry still present")
	}
	// Index entries must be gone too.
	if _, ok := db.Match(fp(10, 20, 30)); ok {
		t.Error("deleted stop still matchable")
	}
	if db.Len() != 0 {
		t.Errorf("Len = %d", db.Len())
	}
}
