package fingerprint

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"busprobe/internal/transit"
)

func populatedDB(t *testing.T) *DB {
	t.Helper()
	db := newTestDB(t)
	entries := map[transit.StopID][]int{
		3: {10, 20, 30},
		1: {40, 50},
		7: {60, 70, 80, 90},
	}
	for stop, cells := range entries {
		if err := db.Put(stop, fp(cells...)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestPersistRoundTrip(t *testing.T) {
	db := populatedDB(t)
	var buf bytes.Buffer
	n, err := db.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("entries = %d, want %d", back.Len(), db.Len())
	}
	if back.Gamma() != db.Gamma() || back.Scoring() != db.Scoring() {
		t.Error("parameters lost")
	}
	for _, stop := range db.Stops() {
		want, _ := db.Get(stop)
		got, ok := back.Get(stop)
		if !ok || !got.Equal(want) {
			t.Errorf("stop %d: %v vs %v", stop, got, want)
		}
	}
}

func TestPersistDeterministic(t *testing.T) {
	db := populatedDB(t)
	var a, b bytes.Buffer
	if _, err := db.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := db.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialization not deterministic")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader("{nope")); err == nil {
		t.Error("want error for malformed JSON")
	}
	if _, err := ReadFrom(strings.NewReader(`{"format":99}`)); err == nil {
		t.Error("want error for unknown format")
	}
	// Bad scoring inside the file.
	if _, err := ReadFrom(strings.NewReader(`{"format":1,"match":0,"gamma":2}`)); err == nil {
		t.Error("want error for invalid scoring")
	}
	// Empty fingerprint entry.
	if _, err := ReadFrom(strings.NewReader(
		`{"format":1,"match":1,"mismatch":0.3,"gap":0.3,"gamma":2,"entries":[{"stop":1,"cells":[]}]}`)); err == nil {
		t.Error("want error for empty entry")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := populatedDB(t)
	path := filepath.Join(t.TempDir(), "stops.fpdb")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Errorf("entries = %d", back.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.fpdb")); err == nil {
		t.Error("want error for missing file")
	}
	if err := db.SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Error("want error for unwritable path")
	}
}

func TestPersistEmptyDB(t *testing.T) {
	db := newTestDB(t)
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("entries = %d", back.Len())
	}
}
