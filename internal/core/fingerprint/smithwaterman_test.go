package fingerprint

import (
	"math"
	"testing"
	"testing/quick"

	"busprobe/internal/cellular"
	"busprobe/internal/stats"
)

// fp builds a fingerprint from ints.
func fp(ids ...int) cellular.Fingerprint {
	out := make(cellular.Fingerprint, len(ids))
	for i, v := range ids {
		out[i] = cellular.CellID(v)
	}
	return out
}

func TestTableIExample(t *testing.T) {
	// The paper's Table I: c_upload = {1,2,3,4,5}, c_database = {1,7,3,5}
	// scores 2.4 from 3 matches, 1 gap, 1 mismatch at penalty 0.3.
	sc := DefaultScoring()
	got := Similarity(fp(1, 2, 3, 4, 5), fp(1, 7, 3, 5), sc)
	if math.Abs(got-2.4) > 1e-9 {
		t.Fatalf("score = %v, want 2.4", got)
	}
	al := Align(fp(1, 2, 3, 4, 5), fp(1, 7, 3, 5), sc)
	if math.Abs(al.Score-2.4) > 1e-9 {
		t.Errorf("align score = %v", al.Score)
	}
	if al.Matches != 3 || al.Mismatches != 1 || al.Gaps != 1 {
		t.Errorf("composition = %+v, want 3 match / 1 mismatch / 1 gap", al)
	}
}

func TestIdenticalSequencesScoreLength(t *testing.T) {
	sc := DefaultScoring()
	a := fp(10, 20, 30, 40, 50, 60)
	if got := Similarity(a, a, sc); math.Abs(got-6) > 1e-9 {
		t.Errorf("self score = %v, want 6", got)
	}
}

func TestDisjointSequencesScoreZero(t *testing.T) {
	sc := DefaultScoring()
	if got := Similarity(fp(1, 2, 3), fp(4, 5, 6), sc); got != 0 {
		t.Errorf("disjoint score = %v, want 0", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	sc := DefaultScoring()
	if Similarity(nil, fp(1, 2), sc) != 0 || Similarity(fp(1), nil, sc) != 0 {
		t.Error("empty input should score 0")
	}
	if al := Align(nil, nil, sc); al != (Alignment{}) {
		t.Error("empty Align should be zero")
	}
}

func TestSimilaritySymmetric(t *testing.T) {
	sc := DefaultScoring()
	f := func(av, bv []uint8) bool {
		a := make(cellular.Fingerprint, 0, len(av)%8)
		for _, v := range av[:len(av)%8] {
			a = append(a, cellular.CellID(v%10))
		}
		b := make(cellular.Fingerprint, 0, len(bv)%8)
		for _, v := range bv[:len(bv)%8] {
			b = append(b, cellular.CellID(v%10))
		}
		return math.Abs(Similarity(a, b, sc)-Similarity(b, a, sc)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarityBoundsProperty(t *testing.T) {
	// 0 <= score <= Match * min(len(a), len(b)).
	sc := DefaultScoring()
	rng := stats.NewRNG(7)
	for trial := 0; trial < 500; trial++ {
		a := make(cellular.Fingerprint, rng.Intn(9))
		b := make(cellular.Fingerprint, rng.Intn(9))
		for i := range a {
			a[i] = cellular.CellID(rng.Intn(12))
		}
		for i := range b {
			b[i] = cellular.CellID(rng.Intn(12))
		}
		s := Similarity(a, b, sc)
		maxLen := len(a)
		if len(b) < maxLen {
			maxLen = len(b)
		}
		if s < 0 || s > sc.Match*float64(maxLen)+1e-9 {
			t.Fatalf("score %v out of bounds for %v vs %v", s, a, b)
		}
	}
}

func TestAlignScoreMatchesSimilarity(t *testing.T) {
	sc := DefaultScoring()
	rng := stats.NewRNG(8)
	for trial := 0; trial < 300; trial++ {
		a := make(cellular.Fingerprint, 1+rng.Intn(8))
		b := make(cellular.Fingerprint, 1+rng.Intn(8))
		for i := range a {
			a[i] = cellular.CellID(rng.Intn(10))
		}
		for i := range b {
			b[i] = cellular.CellID(rng.Intn(10))
		}
		s := Similarity(a, b, sc)
		al := Align(a, b, sc)
		if math.Abs(s-al.Score) > 1e-9 {
			t.Fatalf("Similarity %v != Align.Score %v for %v vs %v", s, al.Score, a, b)
		}
		// Composition must reproduce the score.
		recomputed := sc.Match*float64(al.Matches) -
			sc.Mismatch*float64(al.Mismatches) - sc.Gap*float64(al.Gaps)
		if math.Abs(recomputed-al.Score) > 1e-9 {
			t.Fatalf("composition %+v does not reproduce score %v", al, al.Score)
		}
	}
}

func TestPrefixScoreMonotoneInSharedPrefix(t *testing.T) {
	// Growing the shared prefix never lowers the score.
	sc := DefaultScoring()
	base := fp(1, 2, 3, 4, 5, 6, 7)
	prev := -1.0
	for k := 1; k <= len(base); k++ {
		s := Similarity(base[:k], base, sc)
		if s < prev {
			t.Fatalf("score decreased at prefix %d: %v < %v", k, s, prev)
		}
		prev = s
	}
}

func TestPerturbationsStayAboveGamma(t *testing.T) {
	// The realistic scan perturbations — an adjacent-rank swap, a
	// dropped weakest tower, an extra spurious tower — must all keep
	// the score comfortably above the γ = 2 acceptance threshold, which
	// is what makes same-stop matching robust (Fig. 2(b)).
	sc := DefaultScoring()
	ref := fp(1, 2, 3, 4, 5)
	cases := map[string]cellular.Fingerprint{
		"swap":    fp(1, 3, 2, 4, 5),
		"missing": fp(1, 2, 3, 4),
		"extra":   fp(1, 2, 3, 4, 5, 99),
		"both":    fp(2, 1, 3, 5, 99),
	}
	for name, sample := range cases {
		if s := Similarity(sample, ref, sc); s < DefaultGamma {
			t.Errorf("%s: score %v below gamma", name, s)
		}
	}
}

func TestScoringValidate(t *testing.T) {
	good := DefaultScoring()
	if err := good.Validate(); err != nil {
		t.Errorf("default scoring rejected: %v", err)
	}
	for _, bad := range []Scoring{
		{Match: 0, Mismatch: 0.3, Gap: 0.3},
		{Match: -1, Mismatch: 0.3, Gap: 0.3},
		{Match: 1, Mismatch: -0.3, Gap: 0.3},
		{Match: 1, Mismatch: 0.3, Gap: -0.3},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("scoring %+v accepted", bad)
		}
	}
}

func TestCommonIDs(t *testing.T) {
	if n := CommonIDs(fp(1, 2, 3), fp(3, 2, 9)); n != 2 {
		t.Errorf("common = %d, want 2", n)
	}
	if n := CommonIDs(fp(1, 1, 2), fp(1, 5)); n != 1 {
		t.Errorf("duplicate handling: common = %d, want 1", n)
	}
	if n := CommonIDs(nil, fp(1)); n != 0 {
		t.Errorf("empty common = %d", n)
	}
}

func BenchmarkSimilarity7x7(b *testing.B) {
	sc := DefaultScoring()
	x := fp(1, 2, 3, 4, 5, 6, 7)
	y := fp(2, 1, 3, 9, 5, 6, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Similarity(x, y, sc)
	}
}

func BenchmarkAlign7x7(b *testing.B) {
	sc := DefaultScoring()
	x := fp(1, 2, 3, 4, 5, 6, 7)
	y := fp(2, 1, 3, 9, 5, 6, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Align(x, y, sc)
	}
}
