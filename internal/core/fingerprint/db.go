package fingerprint

import (
	"fmt"
	"sort"
	"sync"

	"busprobe/internal/cellular"
	"busprobe/internal/transit"
)

// DefaultGamma is the acceptance threshold γ for per-sample matching:
// samples whose best similarity falls below it are discarded as noise.
// The paper sets γ = 2 from the Fig. 2 measurement study.
const DefaultGamma = 2.0

// Match is one candidate result of matching an uploaded cellular sample
// against the database.
type Match struct {
	Stop   transit.StopID
	Score  float64
	Common int // number of shared cell IDs (tie-breaker)
}

// DB is the bus-stop fingerprint database (§III-B "Bus stop database").
// It stores one representative fingerprint per logical stop and serves
// per-sample matching. It is safe for concurrent use: matching takes a
// read lock, updates a write lock, supporting the paper's online/offline
// database update model.
type DB struct {
	mu      sync.RWMutex
	entries map[transit.StopID]cellular.Fingerprint //lint:guardedby mu
	// index maps cell ID -> stops whose fingerprint contains it; see
	// index.go.
	index   map[cellular.CellID][]transit.StopID //lint:guardedby mu
	scoring Scoring
	gamma   float64
}

// NewDB returns an empty database with the given scoring and γ
// threshold.
func NewDB(scoring Scoring, gamma float64) (*DB, error) {
	if err := scoring.Validate(); err != nil {
		return nil, err
	}
	if gamma < 0 {
		return nil, fmt.Errorf("fingerprint: negative gamma %v", gamma)
	}
	return &DB{
		entries: make(map[transit.StopID]cellular.Fingerprint),
		index:   make(map[cellular.CellID][]transit.StopID),
		scoring: scoring,
		gamma:   gamma,
	}, nil
}

// Scoring returns the alignment weights in use.
func (db *DB) Scoring() Scoring { return db.scoring }

// Gamma returns the acceptance threshold.
func (db *DB) Gamma() float64 { return db.gamma }

// Len returns the number of fingerprinted stops.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Put stores (or replaces) the fingerprint of a stop. The fingerprint is
// copied.
func (db *DB) Put(stop transit.StopID, fp cellular.Fingerprint) error {
	if len(fp) == 0 {
		return fmt.Errorf("fingerprint: empty fingerprint for stop %d", stop)
	}
	cp := make(cellular.Fingerprint, len(fp))
	copy(cp, fp)
	db.mu.Lock()
	if old, ok := db.entries[stop]; ok {
		db.indexRemoveLocked(stop, old)
	}
	db.entries[stop] = cp
	db.indexAddLocked(stop, cp)
	db.mu.Unlock()
	return nil
}

// Delete removes a stop's fingerprint (e.g. a decommissioned stop). It
// reports whether an entry existed.
func (db *DB) Delete(stop transit.StopID) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	fp, ok := db.entries[stop]
	if !ok {
		return false
	}
	db.indexRemoveLocked(stop, fp)
	delete(db.entries, stop)
	return true
}

// Get returns the stored fingerprint for a stop, if any.
func (db *DB) Get(stop transit.StopID) (cellular.Fingerprint, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	fp, ok := db.entries[stop]
	if !ok {
		return nil, false
	}
	cp := make(cellular.Fingerprint, len(fp))
	copy(cp, fp)
	return cp, true
}

// Stops returns the fingerprinted stop IDs in ascending order.
func (db *DB) Stops() []transit.StopID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]transit.StopID, 0, len(db.entries))
	for id := range db.entries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PutFromSamples selects a representative fingerprint from several
// collection runs and stores it: the sample with the highest total
// similarity to the other samples wins (§IV-A: "the sample with the
// highest similarity with the rest samples is chosen as the
// fingerprint").
func (db *DB) PutFromSamples(stop transit.StopID, samples []cellular.Fingerprint) error {
	if len(samples) == 0 {
		return fmt.Errorf("fingerprint: no samples for stop %d", stop)
	}
	bestIdx, bestTotal := 0, -1.0
	for i, s := range samples {
		var total float64
		for j, o := range samples {
			if i == j {
				continue
			}
			total += Similarity(s, o, db.scoring)
		}
		if total > bestTotal {
			bestIdx, bestTotal = i, total
		}
	}
	return db.Put(stop, samples[bestIdx])
}

// MatchAll scores a sample against the stored stops and returns the
// candidates at or above γ, best first. Ordering is by score, then by
// common-ID count, then ascending stop ID for determinism. With γ > 0
// the inverted index restricts alignment to stops sharing a tower with
// the sample (zero-overlap pairs score exactly 0 and cannot qualify);
// γ = 0 falls back to the exhaustive scan so every stop can be returned.
func (db *DB) MatchAll(sample cellular.Fingerprint) []Match {
	if len(sample) == 0 {
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.gamma > 0 {
		return db.matchIndexedLocked(sample)
	}
	return db.matchScanLocked(sample)
}

// matchIndexedLocked aligns the sample against the index candidates
// only. Caller holds a read lock and guarantees γ > 0, so skipping
// zero-overlap stops (which score exactly 0) cannot change the result.
func (db *DB) matchIndexedLocked(sample cellular.Fingerprint) []Match {
	var out []Match
	for _, stop := range db.candidateStopsLocked(sample) {
		fp := db.entries[stop]
		score := Similarity(sample, fp, db.scoring)
		if score >= db.gamma {
			out = append(out, Match{Stop: stop, Score: score, Common: CommonIDs(sample, fp)})
		}
	}
	sortMatches(out)
	return out
}

// matchScanLocked aligns the sample against every stored stop. Caller
// holds a read lock.
func (db *DB) matchScanLocked(sample cellular.Fingerprint) []Match {
	var out []Match
	for stop, fp := range db.entries {
		score := Similarity(sample, fp, db.scoring)
		if score >= db.gamma {
			out = append(out, Match{Stop: stop, Score: score, Common: CommonIDs(sample, fp)})
		}
	}
	sortMatches(out)
	return out
}

// matchAllScan is the exhaustive-scan reference implementation of
// MatchAll, kept for the equivalence tests and benchmarks that compare
// the inverted-index path against it.
func (db *DB) matchAllScan(sample cellular.Fingerprint) []Match {
	if len(sample) == 0 {
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.matchScanLocked(sample)
}

// sortMatches orders candidates best-first with deterministic ties.
func sortMatches(out []Match) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Common != out[j].Common {
			return out[i].Common > out[j].Common
		}
		return out[i].Stop < out[j].Stop
	})
}

// Match returns the best candidate for a sample, applying the γ filter
// and the common-ID tie-break. ok is false when no stop clears γ — the
// paper discards such samples "without further processing".
func (db *DB) Match(sample cellular.Fingerprint) (Match, bool) {
	all := db.MatchAll(sample)
	if len(all) == 0 {
		return Match{}, false
	}
	return all[0], true
}
