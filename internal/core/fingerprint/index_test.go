package fingerprint

import (
	"reflect"
	"testing"

	"busprobe/internal/cellular"
	"busprobe/internal/stats"
	"busprobe/internal/transit"
)

// candidates reads the inverted index the way MatchAll does.
func candidates(db *DB, sample cellular.Fingerprint) []transit.StopID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.candidateStopsLocked(sample)
}

func TestCandidateStopsAfterReplace(t *testing.T) {
	db := newTestDB(t)
	if err := db.Put(1, fp(10, 20, 30)); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(2, fp(20, 40)); err != nil {
		t.Fatal(err)
	}
	if got := candidates(db, fp(20)); !reflect.DeepEqual(got, []transit.StopID{1, 2}) {
		t.Fatalf("candidates(20) = %v, want [1 2]", got)
	}

	// Replace stop 1 with a partially overlapping fingerprint: cell 10
	// must forget it, cell 20 must keep it exactly once, cell 99 must
	// learn it.
	if err := db.Put(1, fp(20, 99)); err != nil {
		t.Fatal(err)
	}
	if got := candidates(db, fp(10)); len(got) != 0 {
		t.Errorf("candidates(10) = %v after replace, want none", got)
	}
	if got := candidates(db, fp(20, 20, 20)); !reflect.DeepEqual(got, []transit.StopID{1, 2}) {
		t.Errorf("candidates(20 x3) = %v, want deduped [1 2]", got)
	}
	if got := candidates(db, fp(99)); !reflect.DeepEqual(got, []transit.StopID{1}) {
		t.Errorf("candidates(99) = %v, want [1]", got)
	}
}

func TestCandidateStopsAfterRemoveCycles(t *testing.T) {
	db := newTestDB(t)
	// Churn one stop through put/replace/delete cycles while a stable
	// neighbour shares its cells; the index must never leak stale stops
	// or lose live ones.
	if err := db.Put(7, fp(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 5; cycle++ {
		if err := db.Put(8, fp(2, 3, 4)); err != nil {
			t.Fatal(err)
		}
		if got := candidates(db, fp(2)); !reflect.DeepEqual(got, []transit.StopID{7, 8}) {
			t.Fatalf("cycle %d: candidates(2) = %v, want [7 8]", cycle, got)
		}
		if err := db.Put(8, fp(4, 5)); err != nil { // replace away from 2,3
			t.Fatal(err)
		}
		if got := candidates(db, fp(2, 3)); !reflect.DeepEqual(got, []transit.StopID{7}) {
			t.Fatalf("cycle %d: candidates(2,3) = %v after replace, want [7]", cycle, got)
		}
		if !db.Delete(8) {
			t.Fatalf("cycle %d: delete failed", cycle)
		}
		if got := candidates(db, fp(4, 5)); len(got) != 0 {
			t.Fatalf("cycle %d: candidates(4,5) = %v after delete, want none", cycle, got)
		}
	}
	// The stable stop survives all the churn.
	if got := candidates(db, fp(1, 2, 3)); !reflect.DeepEqual(got, []transit.StopID{7}) {
		t.Errorf("candidates(1,2,3) = %v, want [7]", got)
	}
	// Interior index state: no cell may list a deleted stop.
	db.mu.RLock()
	for c, stops := range db.index {
		for _, s := range stops {
			if _, ok := db.entries[s]; !ok {
				t.Errorf("index[%d] lists deleted stop %d", c, s)
			}
		}
	}
	db.mu.RUnlock()
}

func TestMatchAllIndexedEqualsScanProperty(t *testing.T) {
	// Property: on the SAME database (same γ), the indexed path and the
	// exhaustive scan return identical matches for random samples —
	// including after replace and delete churn.
	rng := stats.NewRNG(4242)
	for trial := 0; trial < 40; trial++ {
		db := newTestDB(t)
		nStops := 5 + rng.Intn(40)
		for s := 0; s < nStops; s++ {
			entry := make(cellular.Fingerprint, 3+rng.Intn(6))
			for i := range entry {
				entry[i] = cellular.CellID(rng.Intn(80))
			}
			if err := db.Put(transit.StopID(s), entry); err != nil {
				t.Fatal(err)
			}
		}
		// Churn: replace a few entries, delete a few.
		for k := 0; k < nStops/4; k++ {
			s := transit.StopID(rng.Intn(nStops))
			if rng.Bool(0.5) {
				entry := make(cellular.Fingerprint, 3+rng.Intn(6))
				for i := range entry {
					entry[i] = cellular.CellID(rng.Intn(80))
				}
				if err := db.Put(s, entry); err != nil {
					t.Fatal(err)
				}
			} else {
				db.Delete(s)
			}
		}
		for q := 0; q < 25; q++ {
			sample := make(cellular.Fingerprint, 3+rng.Intn(6))
			for i := range sample {
				sample[i] = cellular.CellID(rng.Intn(80))
			}
			got := db.MatchAll(sample)
			want := db.matchAllScan(sample)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d query %d: indexed %+v != scan %+v", trial, q, got, want)
			}
		}
	}
}
