package fingerprint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"busprobe/internal/cellular"
	"busprobe/internal/stats"
	"busprobe/internal/transit"
)

// benchResult is one BENCH_match.json row.
type benchResult struct {
	Stops   int     `json:"stops"`
	Variant string  `json:"variant"` // "indexed" or "scan"
	NsPerOp int64   `json:"nsPerOp"`
	Speedup float64 `json:"speedup,omitempty"` // scan / indexed, on the scan row
}

// benchDB builds an n-stop database with localized tower reuse (the
// city-scale pattern: neighbouring stops share towers, distant ones
// don't) plus a query sample from the middle of town.
func benchDB(b *testing.B, n int) (*DB, cellular.Fingerprint) {
	b.Helper()
	db, err := NewDB(DefaultScoring(), DefaultGamma)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(uint64(n) ^ 0xbe)
	for s := 0; s < n; s++ {
		base := (s / 4) * 3
		entry := make(cellular.Fingerprint, 6)
		for i := range entry {
			entry[i] = cellular.CellID(base + rng.Intn(10))
		}
		if err := db.Put(transit.StopID(s), entry); err != nil {
			b.Fatal(err)
		}
	}
	mid := (n / 8) * 3
	return db, fp(mid, mid+1, mid+4, mid+7, mid+9)
}

// BenchmarkMatchAll compares the inverted-index match path against the
// exhaustive scan at growing database sizes and writes the measurements
// to BENCH_match.json at the repo root. The indexed path's advantage
// should grow roughly linearly with the stop count, since the candidate
// set stays local while the scan grows with the city.
func BenchmarkMatchAll(b *testing.B) {
	var results []benchResult
	for _, n := range []int{100, 1000, 10000} {
		db, sample := benchDB(b, n)
		var indexedNs, scanNs int64
		b.Run(fmt.Sprintf("stops=%d/indexed", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db.MatchAll(sample)
			}
			indexedNs = b.Elapsed().Nanoseconds() / int64(b.N)
		})
		b.Run(fmt.Sprintf("stops=%d/scan", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db.matchAllScan(sample)
			}
			scanNs = b.Elapsed().Nanoseconds() / int64(b.N)
		})
		var speedup float64
		if indexedNs > 0 {
			speedup = float64(scanNs) / float64(indexedNs)
		}
		results = append(results,
			benchResult{Stops: n, Variant: "indexed", NsPerOp: indexedNs},
			benchResult{Stops: n, Variant: "scan", NsPerOp: scanNs, Speedup: speedup},
		)
	}
	writeBenchJSON(b, "BENCH_match.json", results)
}

// writeBenchJSON drops a machine-readable result file at the repo root
// (found by walking up to go.mod); failures are logged, not fatal — a
// read-only checkout must not fail the benchmark.
func writeBenchJSON(b *testing.B, name string, v any) {
	b.Helper()
	dir, err := os.Getwd()
	if err != nil {
		b.Logf("bench json: getwd: %v", err)
		return
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			b.Logf("bench json: no go.mod above %s", dir)
			return
		}
		dir = parent
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		b.Logf("bench json: encode: %v", err)
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Logf("bench json: write: %v", err)
		return
	}
	b.Logf("wrote %s", path)
}
