package fingerprint

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"busprobe/internal/cellular"
	"busprobe/internal/transit"
)

// fileFormat is the on-disk schema version; bump on breaking changes.
const fileFormat = 1

// dbFile is the serialized database.
type dbFile struct {
	Format  int         `json:"format"`
	Match   float64     `json:"match"`
	Mis     float64     `json:"mismatch"`
	Gap     float64     `json:"gap"`
	Gamma   float64     `json:"gamma"`
	Entries []dbFileRow `json:"entries"`
}

// dbFileRow is one stop's fingerprint.
type dbFileRow struct {
	Stop  int   `json:"stop"`
	Cells []int `json:"cells"`
}

// WriteTo serializes the database (scoring, gamma, and all entries) as
// JSON. The survey is the system's most expensive offline asset (§IV-A
// collected it manually over 8 routes); persisting it lets deployments
// restart without re-surveying.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	db.mu.RLock()
	out := dbFile{
		Format: fileFormat,
		Match:  db.scoring.Match,
		Mis:    db.scoring.Mismatch,
		Gap:    db.scoring.Gap,
		Gamma:  db.gamma,
	}
	for stop, fp := range db.entries {
		row := dbFileRow{Stop: int(stop), Cells: make([]int, len(fp))}
		for i, c := range fp {
			row.Cells[i] = int(c)
		}
		out.Entries = append(out.Entries, row)
	}
	db.mu.RUnlock()
	// Deterministic output: sort rows by stop.
	sort.Slice(out.Entries, func(i, j int) bool {
		return out.Entries[i].Stop < out.Entries[j].Stop
	})
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	if err := enc.Encode(out); err != nil {
		return cw.n, fmt.Errorf("fingerprint: encode: %w", err)
	}
	return cw.n, nil
}

// ReadFrom deserializes a database previously written with WriteTo.
func ReadFrom(r io.Reader) (*DB, error) {
	var in dbFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("fingerprint: decode: %w", err)
	}
	if in.Format != fileFormat {
		return nil, fmt.Errorf("fingerprint: unsupported format %d (want %d)", in.Format, fileFormat)
	}
	db, err := NewDB(Scoring{Match: in.Match, Mismatch: in.Mis, Gap: in.Gap}, in.Gamma)
	if err != nil {
		return nil, err
	}
	for _, row := range in.Entries {
		fp := make(cellular.Fingerprint, len(row.Cells))
		for i, c := range row.Cells {
			fp[i] = cellular.CellID(c)
		}
		if err := db.Put(transit.StopID(row.Stop), fp); err != nil {
			return nil, fmt.Errorf("fingerprint: stop %d: %w", row.Stop, err)
		}
	}
	return db, nil
}

// SaveFile writes the database to a file path.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fingerprint: %w", err)
	}
	bw := bufio.NewWriter(f)
	if _, err := db.WriteTo(bw); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := bw.Flush(); err != nil {
		return errors.Join(fmt.Errorf("fingerprint: %w", err), f.Close())
	}
	return f.Close()
}

// LoadFile reads a database from a file path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fingerprint: %w", err)
	}
	defer f.Close()
	return ReadFrom(bufio.NewReader(f))
}

// countingWriter tracks bytes written for the io.WriterTo-style return.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
