// Package fingerprint implements the paper's cellular-fingerprint
// machinery (§III-A, §III-C(1)): the modified Smith–Waterman local
// alignment that scores the similarity of two rank-ordered cell-ID sets,
// and the bus-stop fingerprint database with the per-sample matching and
// γ-threshold filtering of the backend's first pipeline stage.
//
// The modification relative to textbook Smith–Waterman is the input
// domain: sequences are cell IDs ordered by received signal strength,
// so the alignment scores rank agreement and ignores absolute RSS, which
// varies with weather, time and vehicle attenuation while the rank order
// largely persists.
package fingerprint

import (
	"fmt"

	"busprobe/internal/cellular"
)

// Scoring holds the alignment weights. Match is added per aligned equal
// pair; Mismatch and Gap are positive penalties subtracted per aligned
// unequal pair and per skipped element respectively.
type Scoring struct {
	Match    float64
	Mismatch float64
	Gap      float64
}

// DefaultScoring is the paper's tuned setting: the mismatch penalty was
// swept over 0.1-0.9 and 0.3 gave the best matching accuracy; the same
// cost is used for gaps (Table I scores {1,2,3,4,5} vs {1,7,3,5} at
// 3 matches - 1 gap - 1 mismatch = 2.4).
func DefaultScoring() Scoring {
	return Scoring{Match: 1, Mismatch: 0.3, Gap: 0.3}
}

// Validate rejects non-positive match rewards and negative penalties.
func (s Scoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("fingerprint: non-positive match reward %v", s.Match)
	}
	if s.Mismatch < 0 || s.Gap < 0 {
		return fmt.Errorf("fingerprint: negative penalties %+v", s)
	}
	return nil
}

// Alignment is the result of a local alignment: the similarity score and
// the composition of the optimal local alignment (as in Table I).
type Alignment struct {
	Score      float64
	Matches    int
	Mismatches int
	Gaps       int
}

// Similarity returns the Smith–Waterman similarity score of two
// fingerprints. It is Align without the traceback, saving the pointer
// matrix on the hot path.
func Similarity(a, b cellular.Fingerprint, sc Scoring) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0
	}
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	var best float64
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			diag := prev[j-1]
			if a[i-1] == b[j-1] {
				diag += sc.Match
			} else {
				diag -= sc.Mismatch
			}
			v := diag
			if up := prev[j] - sc.Gap; up > v {
				v = up
			}
			if left := cur[j-1] - sc.Gap; left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// Align computes the optimal local alignment with a traceback, reporting
// the match/mismatch/gap composition.
func Align(a, b cellular.Fingerprint, sc Scoring) Alignment {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return Alignment{}
	}
	// h holds scores, from holds traceback pointers:
	// 0 stop, 1 diagonal, 2 up (gap in b), 3 left (gap in a).
	h := make([][]float64, n+1)
	from := make([][]uint8, n+1)
	for i := range h {
		h[i] = make([]float64, m+1)
		from[i] = make([]uint8, m+1)
	}
	var best float64
	bi, bj := 0, 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			diag := h[i-1][j-1]
			if a[i-1] == b[j-1] {
				diag += sc.Match
			} else {
				diag -= sc.Mismatch
			}
			v, f := diag, uint8(1)
			if up := h[i-1][j] - sc.Gap; up > v {
				v, f = up, 2
			}
			if left := h[i][j-1] - sc.Gap; left > v {
				v, f = left, 3
			}
			if v <= 0 {
				v, f = 0, 0
			}
			h[i][j] = v
			from[i][j] = f
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	al := Alignment{Score: best}
	for i, j := bi, bj; i > 0 && j > 0 && from[i][j] != 0; {
		switch from[i][j] {
		case 1:
			if a[i-1] == b[j-1] {
				al.Matches++
			} else {
				al.Mismatches++
			}
			i--
			j--
		case 2:
			al.Gaps++
			i--
		case 3:
			al.Gaps++
			j--
		}
	}
	return al
}

// CommonIDs returns the number of cell IDs present in both fingerprints,
// the paper's tie-breaker when two stops score equally.
func CommonIDs(a, b cellular.Fingerprint) int {
	set := make(map[cellular.CellID]bool, len(a))
	for _, c := range a {
		set[c] = true
	}
	n := 0
	for _, c := range b {
		if set[c] {
			n++
			set[c] = false // count each ID once
		}
	}
	return n
}
