// Package arrival implements bus arrival-time prediction on top of the
// live traffic map — the application the authors' prior MobiSys'12 work
// provided and §VI positions this system to feed ("predicting bus
// arrival time with mobile phone based participatory sensing").
//
// Given a bus known to have departed stop i of a route at time t, the
// predictor walks the remaining legs, converting each covered road
// segment's estimated automobile travel time back to bus travel time by
// inverting the Eq. 3 transit model (BTT = (ATT - a) / b), falling back
// to design-speed travel scaled by a default congestion assumption on
// uncovered segments, and adding an expected dwell per intermediate
// stop.
package arrival

import (
	"fmt"

	"busprobe/internal/core/traffic"
	"busprobe/internal/road"
	"busprobe/internal/transit"
)

// Config tunes the predictor.
type Config struct {
	// Model is the Eq. 3 transit model to invert (use the backend's).
	Model traffic.Model
	// DwellS is the expected dwell at each intermediate stop.
	DwellS float64
	// FallbackRatio is the assumed speed/design ratio on segments
	// without estimates.
	FallbackRatio float64
	// BusCapKmh caps the implied bus speed (schedules and speed
	// governors bound buses regardless of traffic).
	BusCapKmh float64
	// MinKmh floors the implied bus speed.
	MinKmh float64
	// MeasuredOverheadS corrects a systematic of the traffic map's
	// inputs: the backend's BTT runs from the last card tap at one stop
	// to the first tap at the next (Fig. 6), so each measured leg
	// carries a few seconds of stationary time that is not driving.
	// The Eq. 3 inversion would otherwise double-count it against
	// DwellS. Subtracted per leg, proportional to the live-covered
	// share.
	MeasuredOverheadS float64
}

// DefaultConfig mirrors the deployed system's assumptions.
func DefaultConfig() Config {
	return Config{
		Model:             traffic.DefaultModel(),
		DwellS:            14,
		FallbackRatio:     0.6,
		BusCapKmh:         62,
		MinKmh:            4,
		MeasuredOverheadS: 5,
	}
}

// Validate rejects broken configurations.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.DwellS < 0 || c.FallbackRatio <= 0 || c.FallbackRatio > 1 {
		return fmt.Errorf("arrival: bad dwell/fallback %+v", c)
	}
	if c.BusCapKmh <= c.MinKmh || c.MinKmh <= 0 {
		return fmt.Errorf("arrival: bad speed bounds %+v", c)
	}
	if c.MeasuredOverheadS < 0 {
		return fmt.Errorf("arrival: negative overhead %v", c.MeasuredOverheadS)
	}
	return nil
}

// TrafficSource supplies per-segment estimates; *traffic.Estimator
// implements it.
type TrafficSource interface {
	Get(sid road.SegmentID) (traffic.Estimate, bool)
}

var _ TrafficSource = (*traffic.Estimator)(nil)

// Prediction is one downstream stop's forecast.
type Prediction struct {
	StopIdx int
	Stop    transit.StopID
	ArriveS float64
	// CoveredFrac is the fraction of the predicted driving time that
	// came from live estimates rather than the fallback assumption.
	CoveredFrac float64
}

// Predictor forecasts arrivals over a transit network.
type Predictor struct {
	cfg Config
	net *road.Network
}

// NewPredictor returns a predictor over the road network.
func NewPredictor(net *road.Network, cfg Config) (*Predictor, error) {
	if net == nil {
		return nil, fmt.Errorf("arrival: nil network")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Predictor{cfg: cfg, net: net}, nil
}

// Predict forecasts arrival times at every stop after fromIdx for a bus
// that departs stop fromIdx of the route at departS, using the current
// traffic estimates.
func (p *Predictor) Predict(rt *transit.Route, fromIdx int, departS float64, src TrafficSource) ([]Prediction, error) {
	if rt == nil {
		return nil, fmt.Errorf("arrival: nil route")
	}
	if src == nil {
		return nil, fmt.Errorf("arrival: nil traffic source")
	}
	if fromIdx < 0 || fromIdx >= rt.NumStops()-1 {
		return nil, fmt.Errorf("arrival: fromIdx %d out of range", fromIdx)
	}
	now := departS
	var out []Prediction
	for i := fromIdx; i < rt.NumLegs(); i++ {
		leg := rt.Leg(p.net, i)
		var legS, coveredS float64
		for _, sid := range leg.Segments {
			segS, covered := p.segmentBusTime(sid, src)
			legS += segS
			if covered {
				coveredS += segS
			}
		}
		frac := 0.0
		if legS > 0 {
			frac = coveredS / legS
		}
		// Remove the tap-window bias embedded in live-derived times,
		// never cutting a leg below half its raw prediction.
		correction := p.cfg.MeasuredOverheadS * frac
		if correction > legS/2 {
			correction = legS / 2
		}
		now += legS - correction
		out = append(out, Prediction{
			StopIdx:     i + 1,
			Stop:        rt.Stops[i+1],
			ArriveS:     now,
			CoveredFrac: frac,
		})
		// Dwell before departing the intermediate stop (not added after
		// the final arrival).
		if i+1 < rt.NumLegs() {
			now += p.cfg.DwellS
		}
	}
	return out, nil
}

// segmentBusTime predicts the bus traversal time of one segment and
// whether a live estimate backed it.
func (p *Predictor) segmentBusTime(sid road.SegmentID, src TrafficSource) (float64, bool) {
	seg := p.net.Segment(sid)
	length := seg.LengthM()
	est, ok := src.Get(sid)
	var busKmh float64
	if ok && est.SpeedKmh > 0 {
		// Invert Eq. 3: ATT = a + b·BTT, with ATT from the estimate.
		attS := length / (est.SpeedKmh / 3.6)
		aS := seg.FreeTravelS()
		bttS := (attS - aS) / p.cfg.Model.B
		if bttS > 0 {
			busKmh = length / bttS * 3.6
		} else {
			// Estimate at/above design speed: bus runs at its cap.
			busKmh = p.cfg.BusCapKmh
		}
	} else {
		busKmh = seg.FreeKmh * p.cfg.FallbackRatio
		ok = false
	}
	if busKmh > p.cfg.BusCapKmh {
		busKmh = p.cfg.BusCapKmh
	}
	if busKmh < p.cfg.MinKmh {
		busKmh = p.cfg.MinKmh
	}
	return length / (busKmh / 3.6), ok
}
