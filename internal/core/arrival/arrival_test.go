package arrival

import (
	"math"
	"testing"

	"busprobe/internal/core/traffic"
	"busprobe/internal/road"
	"busprobe/internal/transit"
)

// fixedSource serves canned estimates.
type fixedSource map[road.SegmentID]traffic.Estimate

func (f fixedSource) Get(sid road.SegmentID) (traffic.Estimate, bool) {
	e, ok := f[sid]
	return e, ok
}

func testRoute(t *testing.T) (*road.Network, *transit.Route) {
	t.Helper()
	cfg := road.DefaultGridConfig()
	cfg.WidthM = 3000
	cfg.HeightM = 2000
	cfg.JitterM = 0
	net, err := road.GenerateGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bl := transit.NewBuilder(net)
	nodes := []road.NodeID{0, 1, 2, 3, 4, 5}
	if err := bl.AddRoute("A", "", nodes, 480); err != nil {
		t.Fatal(err)
	}
	return net, bl.Build().Route("A")
}

func TestNewPredictorValidation(t *testing.T) {
	net, _ := testRoute(t)
	if _, err := NewPredictor(nil, DefaultConfig()); err == nil {
		t.Error("want error for nil network")
	}
	bad := DefaultConfig()
	bad.FallbackRatio = 0
	if _, err := NewPredictor(net, bad); err == nil {
		t.Error("want error for zero fallback")
	}
	bad = DefaultConfig()
	bad.BusCapKmh = 1
	if _, err := NewPredictor(net, bad); err == nil {
		t.Error("want error for cap below floor")
	}
	bad = DefaultConfig()
	bad.Model.B = 0
	if _, err := NewPredictor(net, bad); err == nil {
		t.Error("want error for bad model")
	}
}

func TestPredictValidation(t *testing.T) {
	net, rt := testRoute(t)
	p, err := NewPredictor(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(nil, 0, 0, fixedSource{}); err == nil {
		t.Error("want error for nil route")
	}
	if _, err := p.Predict(rt, 0, 0, nil); err == nil {
		t.Error("want error for nil source")
	}
	if _, err := p.Predict(rt, -1, 0, fixedSource{}); err == nil {
		t.Error("want error for negative index")
	}
	if _, err := p.Predict(rt, rt.NumStops()-1, 0, fixedSource{}); err == nil {
		t.Error("want error for terminal index")
	}
}

func TestPredictShape(t *testing.T) {
	net, rt := testRoute(t)
	p, err := NewPredictor(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	preds, err := p.Predict(rt, 1, 1000, fixedSource{})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != rt.NumStops()-2 {
		t.Fatalf("predictions = %d, want %d", len(preds), rt.NumStops()-2)
	}
	prev := 1000.0
	for i, pr := range preds {
		if pr.StopIdx != i+2 {
			t.Errorf("prediction %d stop index %d", i, pr.StopIdx)
		}
		if pr.ArriveS <= prev {
			t.Errorf("arrivals not increasing at %d", i)
		}
		prev = pr.ArriveS
		if pr.Stop != rt.Stops[pr.StopIdx] {
			t.Errorf("stop mismatch at %d", i)
		}
		if pr.CoveredFrac != 0 {
			t.Errorf("no estimates given, but covered frac %v", pr.CoveredFrac)
		}
	}
}

func TestCongestionDelaysPrediction(t *testing.T) {
	net, rt := testRoute(t)
	p, err := NewPredictor(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Free-ish traffic estimates vs congested ones on every segment.
	free := fixedSource{}
	congested := fixedSource{}
	for i := 0; i < rt.NumLegs(); i++ {
		for _, sid := range rt.Leg(net, i).Segments {
			free[sid] = traffic.Estimate{SpeedKmh: net.Segment(sid).FreeKmh * 0.5, Reports: 2}
			congested[sid] = traffic.Estimate{SpeedKmh: net.Segment(sid).FreeKmh * 0.18, Reports: 2}
		}
	}
	pf, err := p.Predict(rt, 0, 0, free)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := p.Predict(rt, 0, 0, congested)
	if err != nil {
		t.Fatal(err)
	}
	last := len(pf) - 1
	if pc[last].ArriveS <= pf[last].ArriveS {
		t.Errorf("congested ETA %v not later than free ETA %v",
			pc[last].ArriveS, pf[last].ArriveS)
	}
	if pf[last].CoveredFrac != 1 {
		t.Errorf("fully covered route reports frac %v", pf[last].CoveredFrac)
	}
}

func TestInversionRoundTrip(t *testing.T) {
	// If the estimate came from a bus at speed v via Eq. 3, the
	// predictor's inversion should recover that bus speed.
	net, rt := testRoute(t)
	cfg := DefaultConfig()
	p, err := NewPredictor(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sid := rt.Leg(net, 0).Segments[0]
	seg := net.Segment(sid)
	busKmh := 30.0
	bttS := seg.LengthM() / (busKmh / 3.6)
	attKmh, err := cfg.Model.SpeedKmh(seg.LengthM(), seg.FreeKmh, bttS)
	if err != nil {
		t.Fatal(err)
	}
	src := fixedSource{sid: traffic.Estimate{SpeedKmh: attKmh, Reports: 1}}
	gotS, covered := p.segmentBusTime(sid, src)
	if !covered {
		t.Fatal("estimate not used")
	}
	if math.Abs(gotS-bttS) > 1e-6 {
		t.Errorf("inverted bus time %v, want %v", gotS, bttS)
	}
}

func TestCapAndFloorApplied(t *testing.T) {
	net, rt := testRoute(t)
	cfg := DefaultConfig()
	p, err := NewPredictor(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sid := rt.Leg(net, 0).Segments[0]
	seg := net.Segment(sid)
	// Estimate at design speed implies non-positive BTT -> cap.
	src := fixedSource{sid: traffic.Estimate{SpeedKmh: seg.FreeKmh * 1.2, Reports: 1}}
	sCap, _ := p.segmentBusTime(sid, src)
	wantCap := seg.LengthM() / (cfg.BusCapKmh / 3.6)
	if math.Abs(sCap-wantCap) > 1e-9 {
		t.Errorf("cap time %v, want %v", sCap, wantCap)
	}
	// Absurdly slow estimate floors at MinKmh.
	src[sid] = traffic.Estimate{SpeedKmh: 0.5, Reports: 1}
	sFloor, _ := p.segmentBusTime(sid, src)
	wantFloor := seg.LengthM() / (cfg.MinKmh / 3.6)
	if math.Abs(sFloor-wantFloor) > 1e-9 {
		t.Errorf("floor time %v, want %v", sFloor, wantFloor)
	}
}
