package accel

import (
	"math"
	"testing"
)

func synth(t *testing.T, mode Mode, seed uint64) []float64 {
	t.Helper()
	cfg := DefaultTraceConfig()
	cfg.Seed = seed
	trace, err := Synthesize(mode, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestSynthesizeLength(t *testing.T) {
	trace := synth(t, ModeBus, 1)
	if len(trace) != 3000 {
		t.Fatalf("length = %d, want 3000", len(trace))
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize(ModeBus, TraceConfig{SampleRate: 0, DurationS: 1}); err == nil {
		t.Error("want error for zero rate")
	}
	if _, err := Synthesize(ModeBus, TraceConfig{SampleRate: 50, DurationS: 0}); err == nil {
		t.Error("want error for zero duration")
	}
	if _, err := Synthesize(Mode(42), DefaultTraceConfig()); err == nil {
		t.Error("want error for unknown mode")
	}
}

func TestTracesHoverAroundGravity(t *testing.T) {
	for _, mode := range []Mode{ModeStill, ModeBus, ModeTrain} {
		trace := synth(t, mode, 2)
		var sum float64
		for _, v := range trace {
			sum += v
		}
		mean := sum / float64(len(trace))
		if math.Abs(mean-Gravity) > 1.0 {
			t.Errorf("%v trace mean %v far from gravity", mode, mean)
		}
	}
}

func TestVarianceOrdering(t *testing.T) {
	c := DefaultClassifier()
	for seed := uint64(1); seed <= 10; seed++ {
		still := c.Variance(synth(t, ModeStill, seed))
		train := c.Variance(synth(t, ModeTrain, seed))
		bus := c.Variance(synth(t, ModeBus, seed))
		if !(still < train && train < bus) {
			t.Errorf("seed %d: variance ordering violated: still=%v train=%v bus=%v",
				seed, still, train, bus)
		}
	}
}

func TestClassifierSeparatesBusFromTrain(t *testing.T) {
	c := DefaultClassifier()
	busOK, trainOK := 0, 0
	const trials = 30
	for seed := uint64(1); seed <= trials; seed++ {
		if c.IsBusLike(synth(t, ModeBus, seed)) {
			busOK++
		}
		if !c.IsBusLike(synth(t, ModeTrain, seed)) {
			trainOK++
		}
	}
	if busOK < trials*9/10 {
		t.Errorf("bus recall %d/%d", busOK, trials)
	}
	if trainOK < trials*9/10 {
		t.Errorf("train rejection %d/%d", trainOK, trials)
	}
}

func TestClassifyThreeWay(t *testing.T) {
	c := DefaultClassifier()
	if got := c.Classify(synth(t, ModeStill, 3)); got != ModeStill {
		t.Errorf("still classified as %v", got)
	}
	if got := c.Classify(synth(t, ModeBus, 3)); got != ModeBus {
		t.Errorf("bus classified as %v", got)
	}
	if got := c.Classify(synth(t, ModeTrain, 3)); got != ModeTrain {
		t.Errorf("train classified as %v", got)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := synth(t, ModeBus, 5)
	b := synth(t, ModeBus, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("traces differ for same seed")
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeBus.String() != "bus" || ModeTrain.String() != "train" || ModeStill.String() != "still" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func TestVarianceEmptyTrace(t *testing.T) {
	c := DefaultClassifier()
	if c.Variance(nil) != 0 {
		t.Error("empty variance should be 0")
	}
	if c.IsBusLike(nil) {
		t.Error("empty trace should not be bus-like")
	}
}
