// Package accel models the accelerometer path of §III-B: synthetic
// acceleration-magnitude traces for phones riding buses, rapid trains, or
// standing still, and the variance-threshold classifier the paper uses to
// discard beep detections made at train stations ("buses usually move
// with frequent acceleration, deceleration and turns, while rapid trains
// are operated more smoothly").
package accel

import (
	"fmt"

	"busprobe/internal/stats"
)

// Mode is the mobility context of a trace.
type Mode int

const (
	// ModeStill is a phone at rest (standing at a stop, pocketed).
	ModeStill Mode = iota
	// ModeBus is a phone riding a public bus.
	ModeBus
	// ModeTrain is a phone riding a rapid (MRT) train.
	ModeTrain
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeStill:
		return "still"
	case ModeBus:
		return "bus"
	case ModeTrain:
		return "train"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Gravity is standard gravity in m/s^2; traces are magnitudes around it.
const Gravity = 9.81

// TraceConfig parameterizes trace synthesis.
type TraceConfig struct {
	// SampleRate is the accelerometer rate in Hz (typically 50).
	SampleRate int
	// DurationS is the trace length in seconds.
	DurationS float64
	// Seed drives the randomness.
	Seed uint64
}

// DefaultTraceConfig returns a 60 s, 50 Hz trace configuration.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{SampleRate: 50, DurationS: 60, Seed: 1}
}

// Synthesize renders an acceleration-magnitude trace (m/s^2) for the
// mobility mode. Bus traces alternate accelerate / cruise / brake / dwell
// phases with strong engine vibration and turn transients; train traces
// have long, gentle acceleration ramps and low vibration; still traces
// carry only hand/pocket jitter.
func Synthesize(mode Mode, cfg TraceConfig) ([]float64, error) {
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("accel: non-positive sample rate %d", cfg.SampleRate)
	}
	if cfg.DurationS <= 0 {
		return nil, fmt.Errorf("accel: non-positive duration %v", cfg.DurationS)
	}
	rng := stats.NewRNG(cfg.Seed).Fork("accel-" + mode.String())
	n := int(cfg.DurationS * float64(cfg.SampleRate))
	out := make([]float64, n)
	dt := 1.0 / float64(cfg.SampleRate)

	switch mode {
	case ModeStill:
		for i := range out {
			out[i] = Gravity + rng.Norm(0, 0.03)
		}
	case ModeBus:
		synthVehicle(out, rng, dt, vehicleParams{
			phaseMeanS: 7, accelMag: 1.3, accelJit: 0.4,
			vibration: 0.35, turnRate: 0.05, turnMag: 1.0,
		})
	case ModeTrain:
		synthVehicle(out, rng, dt, vehicleParams{
			phaseMeanS: 35, accelMag: 0.45, accelJit: 0.1,
			vibration: 0.08, turnRate: 0.002, turnMag: 0.2,
		})
	default:
		return nil, fmt.Errorf("accel: unknown mode %v", mode)
	}
	return out, nil
}

// vehicleParams captures the kinematic texture of a vehicle type.
type vehicleParams struct {
	phaseMeanS float64 // mean duration of each motion phase
	accelMag   float64 // typical longitudinal acceleration magnitude
	accelJit   float64 // phase-to-phase variation of the magnitude
	vibration  float64 // white vibration noise sigma
	turnRate   float64 // probability per sample of a lateral transient
	turnMag    float64 // lateral transient magnitude
}

// synthVehicle fills out with a phase-structured vehicle trace.
func synthVehicle(out []float64, rng *stats.RNG, dt float64, p vehicleParams) {
	// Phases cycle: accelerate (+a), cruise (0), brake (-a), dwell (0).
	phase := 0
	remaining := rng.Exp(p.phaseMeanS)
	longAcc := 0.0
	for i := range out {
		remaining -= dt
		if remaining <= 0 {
			phase = (phase + 1) % 4
			remaining = rng.Exp(p.phaseMeanS)
			switch phase {
			case 0:
				longAcc = p.accelMag + rng.Norm(0, p.accelJit)
			case 2:
				longAcc = -(p.accelMag + rng.Norm(0, p.accelJit))
			default:
				longAcc = 0
			}
		}
		lat := 0.0
		if rng.Bool(p.turnRate) {
			lat = rng.Norm(0, p.turnMag)
		}
		// Magnitude approximation: gravity plus horizontal components
		// folded in (the phone measures |g + a|; for small a this is
		// close to g + a_parallel + noise).
		out[i] = Gravity + longAcc + lat + rng.Norm(0, p.vibration)
	}
}

// Classifier implements the paper's variance-threshold filter. Traces
// whose magnitude variance exceeds BusThreshold look like bus rides;
// smoother traces look like trains (or stillness) and their beep
// detections are discarded.
type Classifier struct {
	// BusThreshold is the minimum magnitude variance ((m/s^2)^2) for a
	// trace to be accepted as bus riding.
	BusThreshold float64
}

// DefaultClassifier returns the threshold used by the system.
func DefaultClassifier() Classifier {
	return Classifier{BusThreshold: 0.25}
}

// Variance returns the sample variance of a trace.
func (c Classifier) Variance(trace []float64) float64 {
	var acc stats.Accumulator
	for _, v := range trace {
		acc.Add(v)
	}
	return acc.Var()
}

// IsBusLike reports whether the trace's variance clears the bus
// threshold.
func (c Classifier) IsBusLike(trace []float64) bool {
	return c.Variance(trace) > c.BusThreshold
}

// Classify buckets a trace into a mobility mode using two variance
// bands: below stillCeiling it is still, above BusThreshold it is a bus,
// in between a train.
func (c Classifier) Classify(trace []float64) Mode {
	const stillCeiling = 0.005
	v := c.Variance(trace)
	switch {
	case v <= stillCeiling:
		return ModeStill
	case v > c.BusThreshold:
		return ModeBus
	default:
		return ModeTrain
	}
}
