package stats

import (
	"fmt"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution function over a sample.
// It is the workhorse behind every CDF figure in the paper (Figs. 1, 2(b),
// 2(c), 11). The zero value is an empty distribution; Add observations and
// call Sort (or any query method, which sorts lazily) before reading.
type ECDF struct {
	xs     []float64
	sorted bool
}

// NewECDF builds an ECDF over a copy of the sample.
func NewECDF(sample []float64) *ECDF {
	xs := make([]float64, len(sample))
	copy(xs, sample)
	return &ECDF{xs: xs}
}

// Add appends one observation.
func (e *ECDF) Add(x float64) {
	e.xs = append(e.xs, x)
	e.sorted = false
}

// N returns the number of observations.
func (e *ECDF) N() int { return len(e.xs) }

// Sort orders the underlying sample; queries call it automatically.
func (e *ECDF) Sort() {
	if !e.sorted {
		sort.Float64s(e.xs)
		e.sorted = true
	}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	e.Sort()
	i := sort.SearchFloat64s(e.xs, x)
	// Advance past ties so the CDF is right-continuous and includes x.
	for i < len(e.xs) && e.xs[i] <= x {
		i++
	}
	return float64(i) / float64(len(e.xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the nearest-rank
// method. It panics on an empty distribution.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.xs) == 0 {
		panic("stats: Quantile of empty ECDF")
	}
	e.Sort()
	if q <= 0 {
		return e.xs[0]
	}
	if q >= 1 {
		return e.xs[len(e.xs)-1]
	}
	i := int(q * float64(len(e.xs)))
	if i >= len(e.xs) {
		i = len(e.xs) - 1
	}
	return e.xs[i]
}

// Median returns the 0.5 quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Points samples the CDF at n evenly spaced abscissae between the sample
// min and max, returning (x, P(X<=x)) pairs suitable for plotting or for
// the experiment tables.
func (e *ECDF) Points(n int) [][2]float64 {
	if len(e.xs) == 0 || n <= 0 {
		return nil
	}
	e.Sort()
	lo, hi := e.xs[0], e.xs[len(e.xs)-1]
	pts := make([][2]float64, 0, n)
	if hi == lo {
		return append(pts, [2]float64{lo, 1})
	}
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts = append(pts, [2]float64{x, e.At(x)})
	}
	return pts
}

// Table renders the CDF at the given abscissae as an aligned two-column
// text table with the given value label, for the experiment reports.
func (e *ECDF) Table(label string, xs []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%14s  %8s\n", label, "CDF")
	for _, x := range xs {
		fmt.Fprintf(&b, "%14.2f  %8.4f\n", x, e.At(x))
	}
	return b.String()
}

// Percentile is shorthand for Quantile(p/100).
func (e *ECDF) Percentile(p float64) float64 { return e.Quantile(p / 100) }

// Quantiles computes several quantiles in one pass.
func (e *ECDF) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = e.Quantile(q)
	}
	return out
}
