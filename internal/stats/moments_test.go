package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Var() != 0 || a.StdDev() != 0 {
		t.Error("zero-value accumulator should report zeros")
	}
}

func TestAccumulatorKnown(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if m := a.Mean(); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if v := a.Var(); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("var = %v, want %v", v, 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3)
	if a.Var() != 0 {
		t.Error("variance of single sample must be 0")
	}
	if a.Min() != 3 || a.Max() != 3 {
		t.Error("min/max of single sample must equal it")
	}
}

func TestAccumulatorMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var a Accumulator
		var sum float64
		for _, x := range xs {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naive := ss / float64(len(xs)-1)
		scale := math.Max(1, naive)
		return math.Abs(a.Var()-naive)/scale < 1e-6 &&
			math.Abs(a.Mean()-mean) < 1e-6*math.Max(1, math.Abs(mean))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRelStdDev(t *testing.T) {
	var a Accumulator
	a.Add(90)
	a.Add(110)
	want := a.StdDev() / 100
	if got := a.RelStdDev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("RelStdDev = %v, want %v", got, want)
	}
	var zero Accumulator
	zero.Add(0)
	if zero.RelStdDev() != 0 {
		t.Error("RelStdDev with zero mean should be 0")
	}
}

func TestLinregKnownLine(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit, err := Linreg(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-1) > 1e-12 || math.Abs(fit.B-2) > 1e-12 {
		t.Errorf("fit = %+v, want A=1 B=2", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if p := fit.Predict(10); math.Abs(p-21) > 1e-12 {
		t.Errorf("Predict(10) = %v", p)
	}
}

func TestLinregNoisy(t *testing.T) {
	r := NewRNG(77)
	var x, y []float64
	for i := 0; i < 5000; i++ {
		xi := r.Range(0, 100)
		x = append(x, xi)
		y = append(y, 4+0.5*xi+r.Norm(0, 2))
	}
	fit, err := Linreg(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.B-0.5) > 0.01 {
		t.Errorf("slope = %v, want ~0.5", fit.B)
	}
	if math.Abs(fit.A-4) > 0.5 {
		t.Errorf("intercept = %v, want ~4", fit.A)
	}
}

func TestLinregErrors(t *testing.T) {
	if _, err := Linreg([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := Linreg([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := Linreg([]float64{2, 2, 2}, []float64{1, 2, 3}); err != ErrDegenerate {
		t.Errorf("want ErrDegenerate for zero-variance x, got %v", err)
	}
}

func TestMeanAndClamp(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
}
