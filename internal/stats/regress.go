package stats

import (
	"errors"
	"math"
)

// ErrDegenerate is returned when a regression input has no variance in x
// or too few points to fit.
var ErrDegenerate = errors.New("stats: degenerate regression input")

// LinearFit holds the result of an ordinary-least-squares fit y = A + B·x.
// The paper fits its transit traffic model ATT = a + b·BTT (Eq. 3) this
// way, reporting b in [0.3, 0.8] across road segments.
type LinearFit struct {
	A  float64 // intercept
	B  float64 // slope
	R2 float64 // coefficient of determination
	N  int     // number of points
}

// Linreg fits y = A + B·x by ordinary least squares.
func Linreg(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, errors.New("stats: mismatched regression inputs")
	}
	n := len(x)
	if n < 2 {
		return LinearFit{}, ErrDegenerate
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrDegenerate
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return LinearFit{A: a, B: b, R2: r2, N: n}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.A + f.B*x }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, x))
}
