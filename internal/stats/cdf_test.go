package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFWithTies(t *testing.T) {
	e := NewECDF([]float64{2, 2, 2, 5})
	if got := e.At(2); got != 0.75 {
		t.Errorf("At(2) = %v, want 0.75 (ties included)", got)
	}
	if got := e.At(1.99); got != 0 {
		t.Errorf("At(1.99) = %v, want 0", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	var e ECDF
	if e.At(3) != 0 {
		t.Error("empty ECDF should return 0")
	}
	if e.Points(5) != nil {
		t.Error("empty ECDF Points should be nil")
	}
}

func TestECDFQuantile(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	e := NewECDF(xs)
	if m := e.Median(); m != 51 {
		t.Errorf("median = %v, want 51 (nearest rank)", m)
	}
	if q := e.Quantile(0); q != 1 {
		t.Errorf("q0 = %v, want 1", q)
	}
	if q := e.Quantile(1); q != 100 {
		t.Errorf("q1 = %v, want 100", q)
	}
	if p := e.Percentile(90); p != 91 {
		t.Errorf("p90 = %v, want 91", p)
	}
}

func TestECDFQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty Quantile")
		}
	}()
	(&ECDF{}).Quantile(0.5)
}

func TestECDFAddAfterQuery(t *testing.T) {
	e := NewECDF([]float64{1, 3})
	_ = e.At(2)
	e.Add(2)
	if got := e.At(2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("At(2) after Add = %v, want 2/3", got)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probe []float64) bool {
		if len(raw) == 0 {
			return true
		}
		// Sanitize NaN/Inf out of the quick-generated input.
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewECDF(xs)
		var ps []float64
		for _, p := range probe {
			if !math.IsNaN(p) && !math.IsInf(p, 0) {
				ps = append(ps, p)
			}
		}
		sort.Float64s(ps)
		prev := -1.0
		for _, p := range ps {
			v := e.At(p)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{0, 10})
	pts := e.Points(11)
	if len(pts) != 11 {
		t.Fatalf("got %d points, want 11", len(pts))
	}
	if pts[0][0] != 0 || pts[10][0] != 10 {
		t.Errorf("endpoints wrong: %v %v", pts[0], pts[10])
	}
	if pts[10][1] != 1 {
		t.Errorf("final CDF value %v, want 1", pts[10][1])
	}
}

func TestECDFPointsDegenerate(t *testing.T) {
	e := NewECDF([]float64{5, 5, 5})
	pts := e.Points(4)
	if len(pts) != 1 || pts[0][0] != 5 || pts[0][1] != 1 {
		t.Errorf("degenerate Points = %v", pts)
	}
}

func TestECDFTable(t *testing.T) {
	e := NewECDF([]float64{1, 2})
	s := e.Table("score", []float64{0, 1, 2})
	if !strings.Contains(s, "score") || !strings.Contains(s, "1.0000") {
		t.Errorf("table output unexpected:\n%s", s)
	}
}

func TestNewECDFCopies(t *testing.T) {
	src := []float64{3, 1, 2}
	e := NewECDF(src)
	e.Sort()
	if src[0] != 3 {
		t.Error("NewECDF mutated caller slice")
	}
}

func TestQuantiles(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	qs := e.Quantiles(0.1, 0.5, 0.9)
	if len(qs) != 3 || qs[0] > qs[1] || qs[1] > qs[2] {
		t.Errorf("Quantiles not monotone: %v", qs)
	}
}
