package stats

import "math"

// Accumulator tracks running mean and variance with Welford's online
// algorithm, plus min/max. The zero value is an empty accumulator.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or 0 if empty.
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance, or 0 for fewer than two
// observations.
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest observation, or 0 if empty.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 if empty.
func (a *Accumulator) Max() float64 { return a.max }

// RelStdDev returns the relative standard deviation (stddev/mean) as used
// by the paper's Table III parentheses, or 0 when the mean is 0.
func (a *Accumulator) RelStdDev() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.StdDev() / math.Abs(a.mean)
}
