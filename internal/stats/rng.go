// Package stats provides the deterministic random-number machinery and
// the small statistical toolkit (accumulators, empirical CDFs, quantiles,
// linear regression) shared by the busprobe simulator and evaluation
// harness.
//
// Every source of randomness in the repository flows through an *RNG so
// that whole campaigns are reproducible from a single seed. Independent
// sub-streams are derived with Fork, which hashes a label into the parent
// state; two forks with different labels are statistically independent,
// and forking does not perturb the parent stream.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. The zero value is a valid generator seeded with 0; prefer
// NewRNG to make the seed explicit.
//
// RNG is not safe for concurrent use; fork one stream per goroutine.
type RNG struct {
	state uint64
	// spare holds a cached second normal deviate from the polar method.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent generator from the current generator state
// and a label, without advancing the parent. Equal (state, label) pairs
// always yield the same child, which is what makes per-entity streams
// (per tower, per bus, per rider) reproducible regardless of the order in
// which entities are created.
func (r *RNG) Fork(label string) *RNG {
	h := r.state
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3 // FNV-1a prime, then splitmix finalizer below
	}
	return &RNG{state: mix64(h)}
}

// ForkN derives an independent generator from an integer label.
func (r *RNG) ForkN(n uint64) *RNG {
	return &RNG{state: mix64(r.state ^ mix64(n+0x9e3779b97f4a7c15))}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform deviate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform deviate in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normal deviate with the given mean and standard
// deviation, using the Marsaglia polar method.
func (r *RNG) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.StdNorm()
}

// StdNorm returns a standard normal deviate.
func (r *RNG) StdNorm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// LogNormal returns a deviate whose logarithm is normal with parameters
// mu and sigma (the parameters of the underlying normal, not the moments
// of the log-normal itself).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponential deviate with the given mean. It is used for
// inter-arrival times (riders, taxis dispatch).
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Poisson returns a Poisson deviate with the given mean, using Knuth's
// method for small means and a normal approximation above 30.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(r.Norm(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
