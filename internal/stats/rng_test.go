package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestForkIndependentOfParentPosition(t *testing.T) {
	a := NewRNG(7)
	child1 := a.Fork("tower")
	// Forking must not advance the parent.
	b := NewRNG(7)
	child2 := b.Fork("tower")
	for i := 0; i < 100; i++ {
		if child1.Uint64() != child2.Uint64() {
			t.Fatalf("forks of equal state diverged at %d", i)
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("fork advanced parent stream")
	}
}

func TestForkLabelsIndependent(t *testing.T) {
	r := NewRNG(9)
	c1 := r.Fork("alpha")
	c2 := r.Fork("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct labels produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64RangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(4)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestStdNormMoments(t *testing.T) {
	r := NewRNG(5)
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(r.StdNorm())
	}
	if m := acc.Mean(); math.Abs(m) > 0.02 {
		t.Errorf("mean = %v, want ~0", m)
	}
	if s := acc.StdDev(); math.Abs(s-1) > 0.02 {
		t.Errorf("stddev = %v, want ~1", s)
	}
}

func TestNormShiftScale(t *testing.T) {
	r := NewRNG(6)
	var acc Accumulator
	for i := 0; i < 100000; i++ {
		acc.Add(r.Norm(10, 3))
	}
	if m := acc.Mean(); math.Abs(m-10) > 0.1 {
		t.Errorf("mean = %v, want ~10", m)
	}
	if s := acc.StdDev(); math.Abs(s-3) > 0.1 {
		t.Errorf("stddev = %v, want ~3", s)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(8)
	var acc Accumulator
	for i := 0; i < 100000; i++ {
		v := r.Exp(5)
		if v < 0 {
			t.Fatalf("negative exponential deviate %v", v)
		}
		acc.Add(v)
	}
	if m := acc.Mean(); math.Abs(m-5) > 0.15 {
		t.Errorf("mean = %v, want ~5", m)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(10)
	for _, mean := range []float64{0.5, 3, 12, 40} {
		var acc Accumulator
		for i := 0; i < 50000; i++ {
			acc.Add(float64(r.Poisson(mean)))
		}
		if m := acc.Mean(); math.Abs(m-mean) > 0.1*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := NewRNG(11)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
	if v := r.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(12)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRangeBounds(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(14)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", got)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(15)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}
