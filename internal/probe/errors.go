package probe

import "errors"

// Transport-neutral upload rejection sentinels. The backend (and its
// HTTP client) wrap these so the phone-side retry logic can classify
// failures with errors.Is without importing the server package:
//
//   - ErrDuplicateTrip: the trip was already ingested. Retrying is
//     pointless but harmless — an upload that died after the server
//     committed it looks exactly like this, so retry layers treat it as
//     success (idempotent delivery).
//   - ErrInvalidTrip: the trip fails structural validation. Permanent;
//     retrying cannot help.
//   - ErrOverloaded: the backend shed the upload under load. Transient;
//     retry after backing off.
var (
	ErrDuplicateTrip = errors.New("duplicate trip")
	ErrInvalidTrip   = errors.New("invalid trip")
	ErrOverloaded    = errors.New("backend overloaded")
)
