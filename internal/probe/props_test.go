package probe

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"busprobe/internal/cellular"
	"busprobe/internal/stats"
)

// genTrip builds a structurally valid random trip.
func genTrip(rng *stats.RNG) Trip {
	trip := Trip{ID: "t", DeviceID: "d"}
	t := rng.Range(0, 1000)
	n := 1 + rng.Intn(20)
	for i := 0; i < n; i++ {
		t += rng.Range(0, 120)
		k := 1 + rng.Intn(7)
		rs := make([]cellular.Reading, k)
		rss := rng.Range(-60, -50)
		for j := range rs {
			rs[j] = cellular.Reading{Cell: cellular.CellID(rng.Intn(1000)), RSS: rss}
			rss -= rng.Range(0, 8)
		}
		trip.Samples = append(trip.Samples, Sample{TimeS: t, Readings: rs})
	}
	return trip
}

func TestValidTripsSurviveJSONProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		trip := genTrip(rng)
		if err := trip.Validate(); err != nil {
			return false
		}
		data, err := json.Marshal(&trip)
		if err != nil {
			return false
		}
		var back Trip
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		if back.Validate() != nil {
			return false
		}
		if len(back.Samples) != len(trip.Samples) {
			return false
		}
		for i := range back.Samples {
			if back.Samples[i].TimeS != trip.Samples[i].TimeS {
				return false
			}
			if !back.Samples[i].Fingerprint().Equal(trip.Samples[i].Fingerprint()) {
				return false
			}
		}
		return back.DurationS() == trip.DurationS()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortThenValidateProperty(t *testing.T) {
	// Any shuffled valid trip becomes valid again after SortSamples.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		trip := genTrip(rng)
		// Shuffle.
		perm := rng.Perm(len(trip.Samples))
		shuffled := make([]Sample, len(trip.Samples))
		for i, p := range perm {
			shuffled[i] = trip.Samples[p]
		}
		trip.Samples = shuffled
		trip.SortSamples()
		return trip.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
