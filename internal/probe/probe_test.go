package probe

import (
	"encoding/json"
	"testing"

	"busprobe/internal/cellular"
)

func sample(t float64, cells ...int) Sample {
	rs := make([]cellular.Reading, len(cells))
	for i, c := range cells {
		rs[i] = cellular.Reading{Cell: cellular.CellID(c), RSS: -60 - float64(i)}
	}
	return Sample{TimeS: t, Readings: rs}
}

func validTrip() Trip {
	return Trip{
		ID:       "trip-1",
		DeviceID: "dev-1",
		Samples:  []Sample{sample(10, 1, 2), sample(20, 3, 4)},
	}
}

func TestValidateOK(t *testing.T) {
	trip := validTrip()
	if err := trip.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := map[string]func(*Trip){
		"no id":         func(tr *Trip) { tr.ID = "" },
		"no samples":    func(tr *Trip) { tr.Samples = nil },
		"negative time": func(tr *Trip) { tr.Samples[0].TimeS = -1 },
		"out of order":  func(tr *Trip) { tr.Samples[1].TimeS = 5 },
		"no readings":   func(tr *Trip) { tr.Samples[0].Readings = nil },
		"rss unordered": func(tr *Trip) { tr.Samples[0].Readings[0].RSS = -99 },
	}
	for name, mutate := range cases {
		trip := validTrip()
		mutate(&trip)
		if err := trip.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSortSamples(t *testing.T) {
	trip := Trip{ID: "x", Samples: []Sample{sample(20, 1), sample(10, 2)}}
	trip.SortSamples()
	if trip.Samples[0].TimeS != 10 {
		t.Error("not sorted")
	}
	if err := trip.Validate(); err != nil {
		t.Errorf("sorted trip invalid: %v", err)
	}
}

func TestDurationS(t *testing.T) {
	trip := validTrip()
	if trip.DurationS() != 10 {
		t.Errorf("duration = %v", trip.DurationS())
	}
	short := Trip{ID: "s", Samples: []Sample{sample(5, 1)}}
	if short.DurationS() != 0 {
		t.Error("single-sample duration should be 0")
	}
}

func TestFingerprint(t *testing.T) {
	s := sample(1, 7, 8, 9)
	fp := s.Fingerprint()
	if !fp.Equal(cellular.Fingerprint{7, 8, 9}) {
		t.Errorf("fingerprint = %v", fp)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	trip := validTrip()
	data, err := json.Marshal(&trip)
	if err != nil {
		t.Fatal(err)
	}
	var back Trip
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != trip.ID || len(back.Samples) != len(trip.Samples) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Samples[0].Readings[0].Cell != 1 {
		t.Error("readings lost")
	}
	if err := back.Validate(); err != nil {
		t.Error(err)
	}
}
