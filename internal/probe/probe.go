// Package probe defines the wire format of the participatory sensing
// data: the timestamped cellular samples a rider's phone records at each
// detected IC-card beep, and the trip envelope it uploads to the backend
// (§III-B "the sensing data on the mobile phone thus record a sequence of
// timestamped cellular samples in the trip").
//
// Types here marshal to JSON for the HTTP upload path and are consumed
// directly by the backend pipeline in the in-process path.
package probe

import (
	"fmt"
	"sort"

	"busprobe/internal/cellular"
)

// Sample is one beep-triggered cellular measurement.
type Sample struct {
	// TimeS is the sample timestamp in seconds since campaign start
	// (simulation time).
	TimeS float64 `json:"t"`
	// Readings are the visible cell towers ordered by descending RSS.
	Readings []cellular.Reading `json:"cells"`
}

// Fingerprint returns the ordered cell-ID set of the sample.
func (s Sample) Fingerprint() cellular.Fingerprint {
	return cellular.FingerprintOf(s.Readings)
}

// Trip is one independent bus trip recorded by a rider's phone. Trips
// are anonymous: DeviceID is a random per-install token used only to
// de-duplicate, never to identify.
type Trip struct {
	ID       string   `json:"id"`
	DeviceID string   `json:"device"`
	Samples  []Sample `json:"samples"`
}

// Validate checks structural invariants of an uploaded trip: non-empty,
// time-ordered samples, each with at least one reading in descending RSS
// order. The backend rejects invalid uploads at the door.
func (t *Trip) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("probe: trip without ID")
	}
	if len(t.Samples) == 0 {
		return fmt.Errorf("probe: trip %s has no samples", t.ID)
	}
	prev := -1.0
	for i, s := range t.Samples {
		if s.TimeS < 0 {
			return fmt.Errorf("probe: trip %s sample %d has negative time", t.ID, i)
		}
		if s.TimeS < prev {
			return fmt.Errorf("probe: trip %s samples out of order at %d", t.ID, i)
		}
		prev = s.TimeS
		if len(s.Readings) == 0 {
			return fmt.Errorf("probe: trip %s sample %d has no readings", t.ID, i)
		}
		for j := 1; j < len(s.Readings); j++ {
			if s.Readings[j].RSS > s.Readings[j-1].RSS {
				return fmt.Errorf("probe: trip %s sample %d readings not RSS-ordered", t.ID, i)
			}
		}
	}
	return nil
}

// SortSamples orders the samples by time, restoring the invariant for
// trips assembled from unordered parts.
func (t *Trip) SortSamples() {
	sort.SliceStable(t.Samples, func(i, j int) bool {
		return t.Samples[i].TimeS < t.Samples[j].TimeS
	})
}

// DurationS returns the time span covered by the trip's samples.
func (t *Trip) DurationS() float64 {
	if len(t.Samples) < 2 {
		return 0
	}
	return t.Samples[len(t.Samples)-1].TimeS - t.Samples[0].TimeS
}
