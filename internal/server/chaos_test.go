package server

import (
	"busprobe/internal/clock"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"busprobe/internal/faults"
	"busprobe/internal/phone"
	"busprobe/internal/probe"
	"busprobe/internal/sim"
)

// runChaosCampaign runs the standard one-day test campaign against a
// fresh backend with the given fault-injection and retry layers, then
// settles the estimator past the campaign's end so the traffic map is
// fully folded.
func runChaosCampaign(t *testing.T, w *sim.World, fcfg faults.Config, retry phone.RetryConfig, batch int) (*sim.Campaign, sim.CampaignStats, *Backend) {
	t.Helper()
	b := testBackend(t, w)
	cfg := sim.DefaultCampaignConfig()
	cfg.Days = 1
	cfg.Participants = 6
	cfg.Seed = 11
	cfg.UploadBatchSize = batch
	cfg.Faults = fcfg
	cfg.UploadRetry = retry
	camp, err := sim.NewCampaign(w, cfg, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	camp.MinuteHook = func(tS float64) { b.Advance(tS) }
	st, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b.Advance(float64(cfg.Days) * clock.DayS)
	return camp, st, b
}

// trafficBytes renders the /v1/traffic response of any serving API.
func trafficBytes(tb testing.TB, b API) []byte {
	tb.Helper()
	rec := httptest.NewRecorder()
	Handler(b).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traffic", nil))
	if rec.Code != http.StatusOK {
		tb.Fatalf("/v1/traffic status = %d", rec.Code)
	}
	return rec.Body.Bytes()
}

func TestChaosEquivalenceDupReorder(t *testing.T) {
	// The tentpole acceptance bar: a campaign whose uploads are
	// duplicated, reordered, and delayed — but never lost — must
	// produce a byte-identical /v1/traffic response to the clean run.
	// Duplicates die at the dedup gate and the estimator folds each
	// observation into the window of its own timestamp, so delivery
	// order cannot leak into the map.
	w := testWorld(t)
	_, cleanStats, clean := runChaosCampaign(t, w, faults.Config{}, phone.RetryConfig{}, 0)
	fcfg := faults.Config{
		Seed:        77,
		DupRate:     0.3,
		ReorderRate: 0.3,
		DelayRate:   0.1,
	}
	camp, chaosStats, chaos := runChaosCampaign(t, w, fcfg, phone.RetryConfig{}, 0)

	fs := camp.Injector().Stats()
	if fs.Duplicated == 0 || fs.Reordered+fs.Delayed == 0 {
		t.Fatalf("fault campaign injected nothing: %+v", fs)
	}
	if camp.Injector().Pending() != 0 {
		t.Errorf("%d trips still held after Run", camp.Injector().Pending())
	}
	if cleanStats.ParticipantTrips != chaosStats.ParticipantTrips {
		t.Fatalf("campaigns diverged before upload: %d vs %d rides",
			cleanStats.ParticipantTrips, chaosStats.ParticipantTrips)
	}

	cleanMap, chaosMap := trafficBytes(t, clean), trafficBytes(t, chaos)
	if !bytes.Equal(cleanMap, chaosMap) {
		t.Errorf("traffic maps diverged under duplicate+reorder faults:\nclean %d bytes, chaos %d bytes",
			len(cleanMap), len(chaosMap))
	}

	// The duplicates must be visible in the backend counters even
	// though the map is unchanged.
	cb, xb := clean.Stats(), chaos.Stats()
	if xb.DuplicateTrips != fs.Duplicated {
		t.Errorf("backend saw %d duplicates, injector made %d", xb.DuplicateTrips, fs.Duplicated)
	}
	if got, want := xb.TripsReceived-xb.DuplicateTrips, cb.TripsReceived; got != want {
		t.Errorf("unique trips %d != clean %d", got, want)
	}
}

func TestChaosDropCampaignCounters(t *testing.T) {
	// Acceptance: a 20% drop-rate campaign completes with consistent
	// counters — every offer is accounted for as delivered or dropped,
	// and the backend received exactly what the injector delivered.
	w := testWorld(t)
	fcfg := faults.Config{Seed: 77, DropRate: 0.2}
	retry := phone.DefaultRetryConfig(99)
	camp, st, b := runChaosCampaign(t, w, fcfg, retry, 8)

	fs := camp.Injector().Stats()
	if fs.Offered == 0 || fs.Dropped == 0 {
		t.Fatalf("campaign too small to exercise drops: %+v", fs)
	}
	// Conservation: offers either deliver or drop (dup rate is 0).
	if fs.Delivered != fs.Offered-fs.Dropped+fs.Duplicated {
		t.Errorf("injector leaked trips: delivered %d, offered %d, dropped %d, duplicated %d",
			fs.Delivered, fs.Offered, fs.Dropped, fs.Duplicated)
	}
	bs := b.Stats()
	if bs.TripsReceived != fs.Delivered {
		t.Errorf("backend received %d trips, injector delivered %d", bs.TripsReceived, fs.Delivered)
	}
	accepted := bs.TripsReceived - bs.DuplicateTrips - bs.TripsRejected
	if accepted <= 0 {
		t.Fatalf("no trips accepted: %+v", bs)
	}
	// The retry layer must have recovered part of the loss.
	if st.UploadRetries == 0 {
		t.Error("20%% drop rate produced no retries")
	}
	if st.FaultTripsDropped != fs.Dropped || st.FaultTripsOffered != fs.Offered {
		t.Errorf("campaign stats diverged from injector: %+v vs %+v", st, fs)
	}
	// Every surfaced failure is an injected drop in this scenario.
	if st.UploadFailures != st.UploadsDropped {
		t.Errorf("failures %d != dropped %d", st.UploadFailures, st.UploadsDropped)
	}
	if st.UploadFailures > 0 {
		if lastErr := camp.LastUploadError(); !errors.Is(lastErr, faults.ErrDropped) {
			t.Errorf("last upload error = %v, want faults.ErrDropped", lastErr)
		}
	}
	// The map still exists: a 20% loss degrades, it must not destroy.
	if len(b.Traffic()) == 0 {
		t.Error("no traffic estimates after 20%% drop campaign")
	}
}

func TestBatchSheddingUnderLoad(t *testing.T) {
	// With the admission gate saturated, POST /v1/trips/batch answers
	// 429 + Retry-After, counts the shed trips, and surfaces them in
	// the admission pseudo-stage; releasing the slot lets the retry in.
	w := testWorld(t)
	cfg := DefaultConfig()
	cfg.MaxInflightBatches = 1
	fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(cfg, w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}

	release, ok := b.AdmitBatch(0) // occupy the only slot
	if !ok {
		t.Fatal("could not acquire the admission slot")
	}
	trips := batchCorpus(t, w, 3)
	if _, err := client.UploadTrips(context.Background(), trips); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated upload error = %v, want ErrOverloaded", err)
	}
	// The phone-side classification sees the same sentinel chain.
	if !errors.Is(ErrOverloaded, probe.ErrOverloaded) {
		t.Error("server sentinel does not wrap the probe sentinel")
	}
	st := b.Stats()
	if st.BatchesShed != 1 || st.TripsShed != len(trips) {
		t.Errorf("shed counters = %+v", st)
	}
	ms := b.StageMetrics()
	adm := ms[len(ms)-1]
	if adm.Stage != "admission" || adm.Dropped != int64(len(trips)) {
		t.Errorf("admission row = %+v", adm)
	}

	release()
	out, err := client.UploadTrips(context.Background(), trips)
	if err != nil {
		t.Fatalf("post-release upload: %v", err)
	}
	if out.Accepted != len(trips) {
		t.Errorf("accepted %d of %d after release", out.Accepted, len(trips))
	}
	if st := b.Stats(); st.TripsReceived != len(trips) {
		t.Errorf("stats after recovery = %+v", st)
	}
}

func TestBatchSheddingConcurrent(t *testing.T) {
	// Race-detector coverage for the gate itself: many concurrent batch
	// posts against capacity 1 must neither panic nor lose accounting —
	// every batch either ingests fully or is shed fully.
	w := testWorld(t)
	cfg := DefaultConfig()
	cfg.MaxInflightBatches = 1
	fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(cfg, w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()

	trips := batchCorpus(t, w, 8)
	const posts = 6
	codes := make(chan int, posts)
	for i := 0; i < posts; i++ {
		go func() {
			client, err := NewClient(srv.URL, srv.Client())
			if err != nil {
				codes <- 0
				return
			}
			if _, err := client.UploadTrips(context.Background(), trips); errors.Is(err, ErrOverloaded) {
				codes <- http.StatusTooManyRequests
			} else if err != nil {
				codes <- 0
			} else {
				codes <- http.StatusOK
			}
		}()
	}
	okN, shedN := 0, 0
	for i := 0; i < posts; i++ {
		switch <-codes {
		case http.StatusOK:
			okN++
		case http.StatusTooManyRequests:
			shedN++
		default:
			t.Error("batch post failed outright")
		}
	}
	if okN == 0 {
		t.Fatal("every batch was shed")
	}
	st := b.Stats()
	if st.BatchesShed != shedN || st.TripsShed != shedN*len(trips) {
		t.Errorf("shed %d batches over %d posts, stats %+v", shedN, posts, st)
	}
	// Admitted batches fully ingested: first one accepts all, later
	// ones are all duplicates.
	if got := st.TripsReceived; got != okN*len(trips) {
		t.Errorf("trips received = %d, want %d", got, okN*len(trips))
	}
}

func TestClientNilHTTPClientGetsTimeout(t *testing.T) {
	c, err := NewClient("http://127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.http == http.DefaultClient {
		t.Fatal("nil httpClient fell back to the timeout-less http.DefaultClient")
	}
	if c.http.Timeout != DefaultClientTimeout {
		t.Errorf("default client timeout = %v, want %v", c.http.Timeout, DefaultClientTimeout)
	}
}

func TestClientStalledBackendTimesOut(t *testing.T) {
	// Regression for the hang: a stalled backend must fail the request
	// once the client timeout elapses instead of blocking forever.
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer srv.Close()
	defer close(stall)

	c, err := NewClient(srv.URL, &http.Client{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var healthy bool
	var upErr error
	go func() {
		defer close(done)
		healthy = c.Healthy(context.Background())
		upErr = c.Upload(context.Background(), probe.Trip{ID: "stall", DeviceID: "d"})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("client hung on a stalled backend")
	}
	if healthy {
		t.Error("Healthy() = true for a stalled backend")
	}
	if upErr == nil {
		t.Error("Upload succeeded against a stalled backend")
	}
}

func TestRequestTimeoutHandler(t *testing.T) {
	// With RequestTimeoutS set, a handler stuck past the budget answers
	// 503 instead of pinning the connection.
	w := testWorld(t)
	cfg := DefaultConfig()
	cfg.RequestTimeoutS = 0.05
	cfg.StageHook = func(_ context.Context, stage string, in, out, dropped int, d time.Duration) {
		if stage == "match" {
			time.Sleep(300 * time.Millisecond)
		}
	}
	fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(cfg, w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()

	trip, _ := rideTrip(t, w, 0, 0, 4, "slow-trip")
	body, _ := json.Marshal(&trip)
	resp, err := srv.Client().Post(srv.URL+"/v1/trips", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("slow request status = %d, want 503", resp.StatusCode)
	}
}
