package server

import (
	"context"

	"busprobe/internal/core/arrival"
	"busprobe/internal/core/region"
	"busprobe/internal/core/traffic"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/server/stage"
	"busprobe/internal/transit"
)

// API is the serving surface the HTTP layer (and in-process callers)
// talk to: either a monolithic Backend or a sharded Coordinator. Writes
// route through ProcessTrip / IngestBatch; reads are merged views that a
// Coordinator fans in across its shards.
type API interface {
	// ProcessTrip ingests one trip (validate, dedup, journal,
	// pipeline). The context bounds admission and carries the trace.
	ProcessTrip(ctx context.Context, trip probe.Trip) (ProcessedTrip, error)
	// IngestBatch ingests a batch behind the admission gate; shed trips
	// fail with ErrOverloaded.
	IngestBatch(ctx context.Context, trips []probe.Trip) []TripResult
	// Stats returns the aggregated work counters.
	Stats() Stats
	// StageMetrics returns the per-stage instrumentation, aggregated
	// across shards without double counting.
	StageMetrics() []stage.Metrics
	// Traffic returns the merged traffic map as a mutable copy the
	// caller owns; mutating it never touches served state.
	Traffic() map[road.SegmentID]traffic.Estimate
	// TrafficSnapshot returns the current immutable, versioned traffic
	// snapshot. Lock-free on a Backend; a Coordinator serves its cached
	// merge, re-merging only when a shard's version moved. Callers must
	// not mutate the snapshot's maps.
	TrafficSnapshot() *traffic.Snapshot
	// TrafficSegment returns one segment's estimate, if any.
	TrafficSegment(sid road.SegmentID) (traffic.Estimate, bool)
	// Advance drives the estimator clocks.
	Advance(nowS float64)
	// Config returns the serving configuration.
	Config() Config
	// RegionModel infers the §VI zone model over the merged snapshot.
	RegionModel() (*region.Model, error)
	// RouteStatuses digests the merged map into per-route travel times.
	RouteStatuses(departS float64) ([]RouteStatus, error)
	// PredictArrivals forecasts downstream ETAs from the merged map.
	PredictArrivals(routeID transit.RouteID, fromIdx int, departS float64) ([]arrival.Prediction, error)
	// ShardStatuses reports per-shard footprint and counters (one row
	// for a monolithic backend).
	ShardStatuses() []ShardStatus
}

// ShardStatus is one shard's partition footprint, topology, health, and
// work counters — the /v1/shards observability row. Addr is LocalAddr
// for an in-process shard and the shard process's base URL otherwise;
// LastProbe carries the outcome of the coordinator's most recent probe
// or fan-out call against the shard ("ok", "unprobed", or the error).
type ShardStatus struct {
	Shard     int    `json:"shard"`
	Addr      string `json:"addr"`
	Remote    bool   `json:"remote"`
	Healthy   bool   `json:"healthy"`
	LastProbe string `json:"lastProbe"`
	Routes    int    `json:"routes"`
	Stops     int    `json:"stops"`
	Segments  int    `json:"segments"`
	Stats     Stats  `json:"stats"`
}

var (
	_ API = (*Backend)(nil)
	_ API = (*Coordinator)(nil)
)
