package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"busprobe/internal/phone"
	"busprobe/internal/probe"
	"busprobe/internal/store"
)

// Journal is an append-only JSON-lines log of uploaded trips. The
// backend's pipeline state (estimates, dedup set) lives in memory; on
// restart the journal replays every stored trip through the pipeline,
// rebuilding the traffic map from the raw crowd data — the cheapest
// durable representation, since trips are small and processing is fast.
type Journal struct {
	mu sync.Mutex
	f  *os.File      //lint:guardedby mu
	w  *bufio.Writer //lint:guardedby mu
}

// OpenJournal opens (creating if needed) a journal for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: open journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f)}, nil
}

// Append writes one trip record. Safe for concurrent use. A canceled
// context fails the append before anything reaches the buffer, so a
// draining server never half-writes a record for a caller that left.
func (j *Journal) Append(ctx context.Context, trip probe.Trip) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("server: journal append: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	enc := json.NewEncoder(j.w)
	if err := enc.Encode(&trip); err != nil {
		return fmt.Errorf("server: journal append: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("server: journal flush: %w", err)
	}
	return nil
}

// Close flushes and closes the underlying file. A flush failure does
// not skip the close, and neither error is dropped.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return errors.Join(j.w.Flush(), j.f.Close())
}

// TripProcessor ingests one trip; both *Backend and *Coordinator
// qualify, so journal replay rebuilds monolithic and sharded
// deployments through the same path.
type TripProcessor interface {
	ProcessTrip(ctx context.Context, trip probe.Trip) (ProcessedTrip, error)
}

// ReplayJournal feeds every journaled trip through the sink's pipeline.
// The journal is line-oriented, so a torn final line from a crash — or a
// corrupt line anywhere in the file — skips that record and keeps
// replaying; malformed lines, oversized lines (longer than any upload
// the server accepts, so they can only be corruption), and pipeline
// rejections (duplicates, invalid trips) are counted, not fatal. Only
// an unreadable file is an error.
func ReplayJournal(ctx context.Context, path string, sink TripProcessor) (replayed, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("server: open journal: %w", err)
	}
	defer f.Close()
	torn, oversized, err := store.ForEachLine(f, maxUploadBytes, func(raw []byte) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("server: replay canceled: %w", err)
		}
		line := bytes.TrimSpace(raw)
		if len(line) == 0 {
			return nil
		}
		var trip probe.Trip
		if err := json.Unmarshal(line, &trip); err != nil {
			skipped++
			return nil
		}
		if _, err := sink.ProcessTrip(ctx, trip); err != nil {
			if ctx.Err() != nil {
				return err
			}
			skipped++
			return nil
		}
		replayed++
		return nil
	})
	skipped += oversized
	if torn {
		skipped++
	}
	if err != nil {
		return replayed, skipped, err
	}
	return replayed, skipped, nil
}

// ReplayReport is one shard journal's replay outcome.
type ReplayReport struct {
	// Path is the journal file replayed.
	Path string
	// Shard is the file's position in the multi-process layout
	// (<path>.shardN), or 0 for a monolithic journal.
	Shard int
	// Missing marks a journal file that does not exist — normal for a
	// shard that never ingested, or a fresh deployment.
	Missing bool
	// Replayed counts trips fed back through the pipeline.
	Replayed int
	// Skipped counts malformed lines and pipeline rejections.
	Skipped int
	// Err records a failure reading this shard's file. The other
	// shards' journals still replay; the deployment boots degraded
	// rather than dark.
	Err string
}

// ReplayJournals replays a multi-process deployment's journal files in
// shard order through one sink, reporting per-shard counts. A missing
// file is recorded, not fatal: shard processes journal independently,
// so a shard that never took a trip (or was added since the last run)
// simply has no file yet. Torn or corrupt lines inside a file are
// skipped per ReplayJournal. An unreadable file is recorded on its
// shard's report (Err) and the remaining shards keep replaying — one
// lost disk must not take down the whole city's recovery. Only
// cancellation aborts the walk.
func ReplayJournals(ctx context.Context, paths []string, sink TripProcessor) ([]ReplayReport, error) {
	out := make([]ReplayReport, len(paths))
	for i, p := range paths {
		out[i] = ReplayReport{Path: p, Shard: i}
		if _, err := os.Stat(p); err != nil {
			out[i].Missing = true
			continue
		}
		r, s, err := ReplayJournal(ctx, p, sink)
		out[i].Replayed, out[i].Skipped = r, s
		if err != nil {
			if ctx.Err() != nil {
				return out, err
			}
			out[i].Err = err.Error()
		}
	}
	return out, nil
}

// JournaledUploader persists each trip before processing it, giving
// at-most-once durability for the upload path: a trip is either in the
// journal (and will replay) or was never acknowledged.
type JournaledUploader struct {
	Journal *Journal
	Backend *Backend
}

var _ phone.Uploader = (*JournaledUploader)(nil)

// Upload implements phone.Uploader.
func (u *JournaledUploader) Upload(ctx context.Context, trip probe.Trip) error {
	if err := u.Journal.Append(ctx, trip); err != nil {
		return err
	}
	return u.Backend.Upload(ctx, trip)
}
