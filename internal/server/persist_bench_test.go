package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"busprobe/internal/clock"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/probe"
	"busprobe/internal/sim"
	"busprobe/internal/store"
)

// The restart benchmark: how long a store-backed backend takes to come
// back after a crash, with and without a snapshot. The committed
// BENCH_store.json anchors the headline property — at 10⁵ replayed
// trips, a snapshot restart must be at least minSpeedupX faster than a
// full replay — and carries the smoke tolerances CI gates PRs against
// at a smaller scale (see TestStoreBenchSmoke).

// storeBenchPath is the committed baseline, relative to this package.
const storeBenchPath = "../../BENCH_store.json"

// storeBenchSchema versions the baseline document.
const storeBenchSchema = "busprobe-store-bench/1"

// storeBenchBaseline is the committed BENCH_store.json document.
type storeBenchBaseline struct {
	Schema string `json:"schema"`
	Note   string `json:"note"`
	// Trips is the corpus size the headline numbers were measured at.
	Trips int `json:"trips"`
	// TailTrips is how many trips landed after the last checkpoint —
	// the tail a snapshot restart replays.
	TailTrips int `json:"tailTrips"`
	// FullReplayS / SnapshotRestartS are the measured recovery times.
	FullReplayS      float64 `json:"fullReplayS"`
	SnapshotRestartS float64 `json:"snapshotRestartS"`
	// SpeedupX = FullReplayS / SnapshotRestartS.
	SpeedupX float64 `json:"speedupX"`
	// MinSpeedupX is the acceptance floor the committed numbers must
	// clear (the PR contract: >= 10 at >= 1e5 trips).
	MinSpeedupX float64 `json:"minSpeedupX"`
	// SmokeTrips / SmokeMinSpeedupX shape the CI smoke gate: a cheap
	// re-measurement at SmokeTrips must still show SmokeMinSpeedupX.
	SmokeTrips       int     `json:"smokeTrips"`
	SmokeMinSpeedupX float64 `json:"smokeMinSpeedupX"`
}

func loadStoreBaseline(tb testing.TB) storeBenchBaseline {
	tb.Helper()
	data, err := os.ReadFile(storeBenchPath)
	if err != nil {
		tb.Fatalf("committed store baseline: %v", err)
	}
	var base storeBenchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		tb.Fatalf("parse %s: %v", storeBenchPath, err)
	}
	if base.Schema != storeBenchSchema {
		tb.Fatalf("%s schema %q, want %q", storeBenchPath, base.Schema, storeBenchSchema)
	}
	return base
}

// benchWorld is twinWorld for any testing.TB (benchmarks included).
func benchWorld(tb testing.TB) (*sim.World, *fingerprint.DB) {
	tb.Helper()
	w, err := sim.TwinCityWorld(5)
	if err != nil {
		tb.Fatal(err)
	}
	fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, DefaultConfig(), 7)
	if err != nil {
		tb.Fatal(err)
	}
	return w, fpdb
}

// benchCorpus expands the recorded twin-city corpus to n trips by
// cloning with rewritten IDs: each clone is a distinct upload to the
// dedup set but costs no extra simulation time to produce.
func benchCorpus(tb testing.TB, w *sim.World, n int) []probe.Trip {
	tb.Helper()
	cfg := sim.DefaultCampaignConfig()
	cfg.Days = 2
	cfg.Participants = 14
	cfg.Seed = 11
	seed, _, err := sim.RecordTrips(context.Background(), w, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if len(seed) == 0 {
		tb.Fatal("empty seed corpus")
	}
	out := make([]probe.Trip, 0, n)
	for len(out) < n {
		for _, tr := range seed {
			if len(out) >= n {
				break
			}
			c := tr
			c.ID = fmt.Sprintf("%s~x%d", tr.ID, len(out))
			out = append(out, c)
		}
	}
	return out
}

func benchStoreOpts(dir string, skipSnapshots bool) store.Options {
	return store.Options{
		Dir:           dir,
		Clock:         clock.NewFake(time.Unix(1_700_000_000, 0), 0),
		SkipSnapshots: skipSnapshots,
	}
}

// prepareRestartDir builds the store a crashed server would leave
// behind: the whole corpus appended, with one checkpoint taken
// tailTrips from the end. The same directory serves both recovery
// modes — SkipSnapshots flips a full replay of the identical records.
func prepareRestartDir(tb testing.TB, w *sim.World, fpdb *fingerprint.DB, dir string, trips []probe.Trip, tailTrips int) {
	tb.Helper()
	bk, err := NewBackend(DefaultConfig(), w.Transit, fpdb)
	if err != nil {
		tb.Fatal(err)
	}
	rec, err := RecoverBackendStore(context.Background(), benchStoreOpts(dir, false), "", bk)
	if err != nil {
		tb.Fatal(err)
	}
	cut := len(trips) - tailTrips
	for _, tr := range trips[:cut] {
		if _, err := bk.ProcessTrip(context.Background(), tr); err != nil {
			tb.Fatal(err)
		}
	}
	if err := bk.Checkpoint(); err != nil {
		tb.Fatal(err)
	}
	for _, tr := range trips[cut:] {
		if _, err := bk.ProcessTrip(context.Background(), tr); err != nil {
			tb.Fatal(err)
		}
	}
	if err := rec.Log().Close(); err != nil {
		tb.Fatal(err)
	}
}

// recoverOnce rebuilds a fresh backend from dir and returns the
// recovery wall time.
func recoverOnce(tb testing.TB, w *sim.World, fpdb *fingerprint.DB, dir string, skipSnapshots bool) (time.Duration, *Backend, *StoreRecovery) {
	tb.Helper()
	bk, err := NewBackend(DefaultConfig(), w.Transit, fpdb)
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now() //lint:allow nowallclock the benchmark measures real restart wall time; the recovered pipeline itself runs on the injected fake clock
	rec, err := RecoverBackendStore(context.Background(), benchStoreOpts(dir, skipSnapshots), "", bk)
	if err != nil {
		tb.Fatal(err)
	}
	elapsed := time.Since(start) //lint:allow nowallclock real elapsed time is the measurement under test
	if err := rec.Log().Close(); err != nil {
		tb.Fatal(err)
	}
	return elapsed, bk, rec
}

// restartTrips picks the benchmark corpus size: BUSPROBE_RESTART_TRIPS
// overrides the quick default (the committed baseline is measured at
// 1e5; see TestStoreBenchMeasure).
func restartTrips() int {
	if s := os.Getenv("BUSPROBE_RESTART_TRIPS"); s != "" {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err == nil && n > 0 {
			return n
		}
	}
	return 5000
}

// BenchmarkRestart times crash recovery from one prepared store
// directory in both modes. Run the committed headline scale with
// BUSPROBE_RESTART_TRIPS=100000.
func BenchmarkRestart(b *testing.B) {
	n := restartTrips()
	tail := n / 100
	if tail < 1 {
		tail = 1
	}
	w, fpdb := benchWorld(b)
	trips := benchCorpus(b, w, n)
	dir := b.TempDir()
	prepareRestartDir(b, w, fpdb, dir, trips, tail)

	b.Run("snapshot-tail", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			elapsed, _, rec := recoverOnce(b, w, fpdb, dir, false)
			if rec.Report.Mode != "snapshot+tail" {
				b.Fatalf("mode %q, want snapshot+tail", rec.Report.Mode)
			}
			b.ReportMetric(elapsed.Seconds(), "s/restart")
		}
	})
	b.Run("full-replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			elapsed, _, rec := recoverOnce(b, w, fpdb, dir, true)
			if rec.Report.Mode != "full-replay" {
				b.Fatalf("mode %q, want full-replay", rec.Report.Mode)
			}
			b.ReportMetric(elapsed.Seconds(), "s/restart")
		}
	})
}

// measureRestart runs the benchmark protocol once at n trips and
// returns both recovery times, after proving the two recovered
// backends serve byte-identical traffic (a speedup over a wrong
// restart would be worthless).
func measureRestart(tb testing.TB, n int) (full, snap time.Duration, tail int) {
	tb.Helper()
	tail = n / 100
	if tail < 1 {
		tail = 1
	}
	w, fpdb := benchWorld(tb)
	trips := benchCorpus(tb, w, n)
	dir := tb.TempDir()
	prepareRestartDir(tb, w, fpdb, dir, trips, tail)

	snap, snapBk, snapRec := recoverOnce(tb, w, fpdb, dir, false)
	if snapRec.Report.Mode != "snapshot+tail" || !snapRec.SnapshotImported {
		tb.Fatalf("snapshot recovery degraded: %+v", snapRec.Report)
	}
	if snapRec.TripsReplayed > tail {
		tb.Fatalf("snapshot restart replayed %d trips, expected <= tail of %d", snapRec.TripsReplayed, tail)
	}
	full, fullBk, fullRec := recoverOnce(tb, w, fpdb, dir, true)
	if fullRec.Report.Mode != "full-replay" {
		tb.Fatalf("forced full replay ran in mode %q", fullRec.Report.Mode)
	}
	if fullRec.TripsReplayed != n {
		tb.Fatalf("full replay replayed %d trips of %d", fullRec.TripsReplayed, n)
	}
	snapBk.Advance(3 * clock.DayS)
	fullBk.Advance(3 * clock.DayS)
	if sb, fb := trafficBytes(tb, snapBk), trafficBytes(tb, fullBk); string(sb) != string(fb) {
		tb.Fatal("snapshot and full-replay recoveries disagree on /v1/traffic")
	}
	return full, snap, tail
}

// TestStoreBenchBaseline gates the committed BENCH_store.json: the
// headline numbers must be internally consistent and clear the PR
// acceptance floor (>= 10x at >= 1e5 trips). It reads the file only —
// re-measurement is TestStoreBenchSmoke's job.
func TestStoreBenchBaseline(t *testing.T) {
	base := loadStoreBaseline(t)
	if base.Trips < 100000 {
		t.Errorf("baseline measured at %d trips, want >= 100000", base.Trips)
	}
	if base.MinSpeedupX < 10 {
		t.Errorf("baseline floor %.1fx, the PR contract is >= 10x", base.MinSpeedupX)
	}
	if base.SnapshotRestartS <= 0 || base.FullReplayS <= 0 {
		t.Fatalf("non-positive timings: full %.4fs snap %.4fs", base.FullReplayS, base.SnapshotRestartS)
	}
	ratio := base.FullReplayS / base.SnapshotRestartS
	if diff := ratio - base.SpeedupX; diff > 0.1 || diff < -0.1 {
		t.Errorf("speedupX %.2f inconsistent with timings (%.2f)", base.SpeedupX, ratio)
	}
	if base.SpeedupX < base.MinSpeedupX {
		t.Errorf("committed speedup %.2fx under the %.1fx floor", base.SpeedupX, base.MinSpeedupX)
	}
	if base.SmokeTrips <= 0 || base.SmokeMinSpeedupX <= 1 {
		t.Errorf("smoke gate unset: trips %d, min %.2fx", base.SmokeTrips, base.SmokeMinSpeedupX)
	}
}

// TestStoreBenchSmoke re-measures the restart speedup at the
// baseline's smoke scale and gates it against the committed tolerance.
// Opt-in (CI's store-bench-smoke step): set BUSPROBE_STORE_BENCH=smoke.
func TestStoreBenchSmoke(t *testing.T) {
	if os.Getenv("BUSPROBE_STORE_BENCH") != "smoke" {
		t.Skip("set BUSPROBE_STORE_BENCH=smoke to run the gated smoke measurement")
	}
	base := loadStoreBaseline(t)
	full, snap, tail := measureRestart(t, base.SmokeTrips)
	speedup := full.Seconds() / snap.Seconds()
	t.Logf("smoke: %d trips (tail %d): full %.4fs, snapshot %.4fs, %.1fx (floor %.1fx)",
		base.SmokeTrips, tail, full.Seconds(), snap.Seconds(), speedup, base.SmokeMinSpeedupX)
	if speedup < base.SmokeMinSpeedupX {
		t.Errorf("smoke speedup %.2fx under the committed %.2fx floor", speedup, base.SmokeMinSpeedupX)
	}
}

// TestStoreBenchMeasure produces BENCH_store.json. Opt-in: set
// BUSPROBE_STORE_BENCH=full (and optionally BUSPROBE_RESTART_TRIPS,
// default 100000); the document lands at BUSPROBE_STORE_BENCH_OUT or
// the committed path.
func TestStoreBenchMeasure(t *testing.T) {
	if os.Getenv("BUSPROBE_STORE_BENCH") != "full" {
		t.Skip("set BUSPROBE_STORE_BENCH=full to regenerate the baseline")
	}
	n := 100000
	if s := os.Getenv("BUSPROBE_RESTART_TRIPS"); s != "" {
		fmt.Sscanf(s, "%d", &n) //lint:allow errcheckio a malformed override falls back to the default scale below
	}
	if n < 100000 {
		t.Fatalf("baseline must be measured at >= 1e5 trips, got %d", n)
	}
	full, snap, tail := measureRestart(t, n)
	base := storeBenchBaseline{
		Schema: storeBenchSchema,
		Note: fmt.Sprintf("Measured %s on the dev container via TestStoreBenchMeasure: one store of %d replayed trips, checkpoint %d trips from the end. Smoke gate re-measures at smokeTrips on every PR (store-bench-smoke).",
			time.Now().Format("2006-01-02"), n, tail), //lint:allow nowallclock the baseline note records the real measurement date, like the other BENCH_* notes
		Trips:            n,
		TailTrips:        tail,
		FullReplayS:      roundS(full),
		SnapshotRestartS: roundS(snap),
		SpeedupX:         roundX(full.Seconds() / snap.Seconds()),
		MinSpeedupX:      10,
		SmokeTrips:       4000,
		SmokeMinSpeedupX: 5,
	}
	out := os.Getenv("BUSPROBE_STORE_BENCH_OUT")
	if out == "" {
		out = storeBenchPath
	}
	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: full %.4fs, snapshot %.4fs, %.1fx", filepath.Clean(out), full.Seconds(), snap.Seconds(), base.SpeedupX)
}

func roundS(d time.Duration) float64 { return float64(d.Milliseconds()) / 1000 }

func roundX(x float64) float64 { return float64(int(x*10)) / 10 }
