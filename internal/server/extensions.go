package server

import (
	"fmt"

	"busprobe/internal/core/arrival"
	"busprobe/internal/core/reconstruct"
	"busprobe/internal/core/region"
	"busprobe/internal/core/tripmap"
	"busprobe/internal/transit"
)

// RegionModel infers the §VI regional traffic model from the backend's
// current per-segment estimates. Inference only reads the map, so it
// works off the published snapshot without a copy.
func (b *Backend) RegionModel() (*region.Model, error) {
	return region.Infer(b.transit.Network(), b.est.View().Estimates, region.DefaultConfig())
}

// ReconstructTrip rebuilds the continuous bus trajectory of a processed
// trip from its mapped visits: the route best supporting the visit
// sequence provides the geometry, and visits that break that route's
// order (mapping noise) are dropped, mirroring the observation stage's
// discard policy. At least two ordered visits must survive.
func (b *Backend) ReconstructTrip(visits []VisitRecord) (*reconstruct.Trajectory, error) {
	if len(visits) < 2 {
		return nil, fmt.Errorf("server: need at least two visits")
	}
	mapped := make([]visit, len(visits))
	for i, v := range visits {
		mapped[i] = tripmap.Visit(v)
	}
	routes := b.rankRoutesByVisitSupport(mapped)
	if len(routes) == 0 {
		return nil, fmt.Errorf("server: no routes in transit DB")
	}
	rt := routes[0]
	// Keep the longest order-consistent subsequence on the chosen route
	// (greedy: visits must strictly advance along it).
	var kept []tripmap.Visit
	prevIdx := -1
	for _, v := range mapped {
		idx := rt.StopIndex(v.Stop)
		if idx <= prevIdx {
			continue
		}
		kept = append(kept, v)
		prevIdx = idx
	}
	if len(kept) < 2 {
		return nil, fmt.Errorf("server: fewer than two visits fit route %s", rt.ID)
	}
	return reconstruct.Build(b.transit.Network(), rt, kept)
}

// PredictArrivals forecasts arrival times at the stops after fromIdx of
// a route, for a bus departing that stop at departS, using the live
// traffic map.
func (b *Backend) PredictArrivals(routeID transit.RouteID, fromIdx int, departS float64) ([]arrival.Prediction, error) {
	return predictArrivals(b.transit, routeID, fromIdx, departS, b.est)
}

// predictArrivals is the prediction read path shared by the monolithic
// Backend (local estimator) and the Coordinator (merged fan-in source).
func predictArrivals(tdb *transit.DB, routeID transit.RouteID, fromIdx int, departS float64, src arrival.TrafficSource) ([]arrival.Prediction, error) {
	rt := tdb.Route(routeID)
	if rt == nil {
		return nil, fmt.Errorf("server: unknown route %q", routeID)
	}
	pred, err := arrival.NewPredictor(tdb.Network(), arrival.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return pred.Predict(rt, fromIdx, departS, src)
}

// RouteStatus summarizes one route's current conditions.
type RouteStatus struct {
	Route       transit.RouteID
	Stops       int
	LengthM     float64
	EndToEndS   float64 // predicted full-route travel time right now
	CoveredFrac float64 // share of the drive time backed by live data
}

// RouteStatuses returns every route's live end-to-end travel time at the
// given departure time, the rider-facing digest of the traffic map.
func (b *Backend) RouteStatuses(departS float64) ([]RouteStatus, error) {
	return routeStatuses(b.transit, departS, b.est)
}

// routeStatuses is the digest read path shared by Backend and
// Coordinator; src is the local estimator or the merged fan-in view.
func routeStatuses(tdb *transit.DB, departS float64, src arrival.TrafficSource) ([]RouteStatus, error) {
	pred, err := arrival.NewPredictor(tdb.Network(), arrival.DefaultConfig())
	if err != nil {
		return nil, err
	}
	net := tdb.Network()
	var out []RouteStatus
	for _, rt := range tdb.Routes() {
		preds, err := pred.Predict(rt, 0, departS, src)
		if err != nil {
			return nil, err
		}
		last := preds[len(preds)-1]
		var lengthM, covered float64
		for i := 0; i < rt.NumLegs(); i++ {
			lengthM += rt.Leg(net, i).LengthM
		}
		for _, p := range preds {
			covered += p.CoveredFrac
		}
		out = append(out, RouteStatus{
			Route:       rt.ID,
			Stops:       rt.NumStops(),
			LengthM:     lengthM,
			EndToEndS:   last.ArriveS - departS,
			CoveredFrac: covered / float64(len(preds)),
		})
	}
	return out, nil
}
