package server

import (
	"context"
	"runtime"
	"sync"

	"busprobe/internal/phone"
	"busprobe/internal/probe"
)

// TripResult pairs one batch entry with its outcome.
type TripResult struct {
	Trip ProcessedTrip
	Err  error
}

var _ phone.BatchUploader = (*Backend)(nil)

// ProcessTrips ingests a batch of uploads, fanning the CPU-bound
// stages — per-sample Smith–Waterman matching and the clustering /
// mapping / extraction behind it — across a worker pool. workers <= 0
// uses Config.IngestWorkers, itself defaulting to GOMAXPROCS.
//
// The result is deterministic and identical to a serial ProcessTrip
// loop over the same slice: admission (validation, dedup, journaling)
// runs sequentially in input order, the stage computations fan out,
// and estimator folding plus counter application are re-serialized in
// input order. When OnlineUpdate is enabled the batch degrades to the
// serial path, because later trips' matching must observe earlier
// trips' fingerprint refreshes.
func (b *Backend) ProcessTrips(ctx context.Context, trips []probe.Trip, workers int) []TripResult {
	res := make([]TripResult, len(trips))
	if len(trips) == 0 {
		return res
	}
	if workers <= 0 {
		workers = b.cfg.IngestWorkers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(trips) {
		workers = len(trips)
	}
	// One checkpoint read lock covers the whole batch — all three
	// phases, so a checkpoint cut falls between batches, never between a
	// trip's log record and its fold. The serial path below must call
	// processTrip (not ProcessTrip) to avoid a nested RLock, which could
	// deadlock against a writer queued between the two acquisitions.
	b.checkpointMu.RLock()
	defer b.checkpointMu.RUnlock()
	if b.cfg.OnlineUpdate || workers == 1 {
		for i, trip := range trips {
			out, err := b.processTrip(ctx, trip)
			res[i] = TripResult{Trip: out, Err: err}
		}
		return res
	}

	// Per-trip contexts are derived once and reused across the three
	// phases: with observability on, each derivation allocates (trace ID
	// string + context node), and the phases would otherwise repeat it.
	tripCtxs := make([]context.Context, len(trips))
	for i := range trips {
		tripCtxs[i] = b.tripCtx(ctx, trips[i])
	}

	// Phase 1 — ordered admission: validate, dedup, journal. Duplicate
	// IDs within the batch resolve exactly as serial ingestion would
	// (first occurrence wins).
	admitted := make([]bool, len(trips))
	for i := range trips {
		if err := b.admit(tripCtxs[i], trips[i]); err != nil {
			res[i].Err = err
			continue
		}
		admitted[i] = true
	}

	// Phase 2 — concurrent stage computation over the admitted trips.
	work := make([]tripWork, len(trips))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				work[i] = b.compute(tripCtxs[i], trips[i])
			}
		}()
	}
	for i := range trips {
		if admitted[i] {
			idx <- i //lint:allow lockorder bounded send: the phase-2 workers drain idx until close, so this cannot block past the batch's own compute
		}
	}
	close(idx)
	wg.Wait()

	// Phase 3 — ordered fold: estimator updates and per-trip counters
	// land in input order, keeping batch output byte-identical to a
	// serial ProcessTrip loop.
	for i := range trips {
		if !admitted[i] {
			continue
		}
		b.fold(tripCtxs[i], &work[i])
		res[i] = TripResult{Trip: work[i].out, Err: work[i].err}
	}
	return res
}

// IngestBatch is the gated batch-ingest entry point: the batch passes
// the admission gate first (a shed batch fails every trip with
// ErrOverloaded, exactly as the HTTP endpoint answers 429), then runs
// through ProcessTrips with the configured parallelism.
func (b *Backend) IngestBatch(ctx context.Context, trips []probe.Trip) []TripResult {
	release, ok := b.AdmitBatch(len(trips))
	if !ok {
		res := make([]TripResult, len(trips))
		for i := range res {
			res[i].Err = ErrOverloaded
		}
		return res
	}
	defer release()
	return b.ProcessTrips(ctx, trips, 0)
}

// UploadBatch implements phone.BatchUploader over IngestBatch.
func (b *Backend) UploadBatch(ctx context.Context, trips []probe.Trip) []error {
	errs := make([]error, len(trips))
	for i, r := range b.IngestBatch(ctx, trips) {
		errs[i] = r.Err
	}
	return errs
}
