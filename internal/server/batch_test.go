package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"busprobe/internal/probe"
	"busprobe/internal/sim"
)

// batchCorpus fabricates n distinct trips over both test routes.
func batchCorpus(t *testing.T, w *sim.World, n int) []probe.Trip {
	t.Helper()
	trips := make([]probe.Trip, n)
	for i := range trips {
		trips[i], _ = rideTrip(t, w, i%2, 0, 4+i%3, fmt.Sprintf("batch-%d", i))
	}
	return trips
}

func TestBatchIngestMatchesSerial(t *testing.T) {
	// The acceptance bar for the concurrent path: per-trip results,
	// counters, and the fused traffic map must be byte-identical to a
	// serial ProcessTrip loop over the same slice.
	w := testWorld(t)
	trips := batchCorpus(t, w, 12)

	serial := testBackend(t, w)
	var serialRes []TripResult
	for _, trip := range trips {
		out, err := serial.ProcessTrip(context.Background(), trip)
		serialRes = append(serialRes, TripResult{Trip: out, Err: err})
	}

	batched := testBackend(t, w)
	batchRes := batched.ProcessTrips(context.Background(), trips, 4)

	if len(batchRes) != len(serialRes) {
		t.Fatalf("result count %d != %d", len(batchRes), len(serialRes))
	}
	for i := range serialRes {
		if !reflect.DeepEqual(batchRes[i].Trip, serialRes[i].Trip) {
			t.Errorf("trip %d diverged:\nserial %+v\nbatch  %+v",
				i, serialRes[i].Trip, batchRes[i].Trip)
		}
		if (batchRes[i].Err == nil) != (serialRes[i].Err == nil) {
			t.Errorf("trip %d error mismatch: %v vs %v", i, serialRes[i].Err, batchRes[i].Err)
		}
	}
	if ss, bs := serial.Stats(), batched.Stats(); ss != bs {
		t.Errorf("stats diverged:\nserial %+v\nbatch  %+v", ss, bs)
	}
	if st, bt := serial.Traffic(), batched.Traffic(); !reflect.DeepEqual(st, bt) {
		t.Errorf("traffic maps diverged: %d vs %d segments", len(st), len(bt))
	}
}

func TestBatchIngestRejections(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	good, _ := rideTrip(t, w, 0, 0, 4, "batch-good")
	prior, _ := rideTrip(t, w, 0, 0, 4, "batch-prior")
	if _, err := b.ProcessTrip(context.Background(), prior); err != nil {
		t.Fatal(err)
	}
	batch := []probe.Trip{
		good,
		{},    // invalid: no ID, no samples
		good,  // duplicate within the batch; first occurrence wins
		prior, // duplicate of an earlier serial ingest
	}
	res := b.ProcessTrips(context.Background(), batch, 4)
	if res[0].Err != nil {
		t.Errorf("good trip rejected: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, ErrInvalidTrip) {
		t.Errorf("invalid trip error = %v", res[1].Err)
	}
	if !errors.Is(res[2].Err, ErrDuplicateTrip) {
		t.Errorf("in-batch duplicate error = %v", res[2].Err)
	}
	if !errors.Is(res[3].Err, ErrDuplicateTrip) {
		t.Errorf("cross-ingest duplicate error = %v", res[3].Err)
	}
	st := b.Stats()
	if st.TripsRejected != 1 || st.DuplicateTrips != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBatchIngestOnlineUpdateFallsBackToSerial(t *testing.T) {
	// OnlineUpdate mutates the fingerprint DB mid-pipeline, so the batch
	// path must degrade to ordered serial processing — results must
	// still match a plain loop.
	w := testWorld(t)
	cfg := DefaultConfig()
	cfg.OnlineUpdate = true
	mk := func() *Backend {
		fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewBackend(cfg, w.Transit, fpdb)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	trips := batchCorpus(t, w, 6)
	serial := mk()
	for _, trip := range trips {
		if _, err := serial.ProcessTrip(context.Background(), trip); err != nil {
			t.Fatal(err)
		}
	}
	batched := mk()
	for i, r := range batched.ProcessTrips(context.Background(), trips, 4) {
		if r.Err != nil {
			t.Fatalf("trip %d: %v", i, r.Err)
		}
	}
	if ss, bs := serial.Stats(), batched.Stats(); ss != bs {
		t.Errorf("stats diverged:\nserial %+v\nbatch  %+v", ss, bs)
	}
}

func TestUploadBatchErrorAlignment(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	good, _ := rideTrip(t, w, 0, 0, 4, "ub-good")
	errs := b.UploadBatch(context.Background(), []probe.Trip{good, {}})
	if len(errs) != 2 {
		t.Fatalf("errs = %d", len(errs))
	}
	if errs[0] != nil {
		t.Errorf("good trip: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrInvalidTrip) {
		t.Errorf("invalid trip: %v", errs[1])
	}
}

func TestHTTPUploadStatusCodes(t *testing.T) {
	// Satellite of the sentinel errors: the single-trip endpoint must
	// answer 409 for duplicates and 400 for invalid uploads.
	w := testWorld(t)
	b := testBackend(t, w)
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	trip, _ := rideTrip(t, w, 0, 0, 4, "http-dup")
	if err := client.Upload(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	post := func(tr probe.Trip) int {
		t.Helper()
		body, err := json.Marshal(&tr)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Post(srv.URL+"/v1/trips", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(trip); code != http.StatusConflict {
		t.Errorf("duplicate upload status = %d, want 409", code)
	}
	if code := post(probe.Trip{}); code != http.StatusBadRequest {
		t.Errorf("invalid upload status = %d, want 400", code)
	}
}

func TestHTTPBatchEndpoint(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	trips := batchCorpus(t, w, 5)
	trips = append(trips, probe.Trip{}) // one invalid straggler
	out, err := client.UploadTrips(context.Background(), trips)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 5 || out.Rejected != 1 {
		t.Errorf("accepted=%d rejected=%d", out.Accepted, out.Rejected)
	}
	if len(out.Results) != 6 {
		t.Fatalf("results = %d", len(out.Results))
	}
	for i := 0; i < 5; i++ {
		if !out.Results[i].Accepted || out.Results[i].TripID != trips[i].ID {
			t.Errorf("row %d = %+v", i, out.Results[i])
		}
	}
	if out.Results[5].Accepted || out.Results[5].Error == "" {
		t.Errorf("invalid row = %+v", out.Results[5])
	}
	if st := b.Stats(); st.TripsReceived != 6 {
		t.Errorf("stats = %+v", st)
	}
	// The batch uploader interface over HTTP reports per-row errors,
	// classified with the server sentinels via the row code.
	errs := client.UploadBatch(context.Background(), trips[:1])
	if !errors.Is(errs[0], ErrDuplicateTrip) {
		t.Errorf("re-upload over batch endpoint = %v, want ErrDuplicateTrip", errs[0])
	}
	// Pipeline metrics are served and ordered, with the admission gate
	// appended as a pseudo-stage.
	ms, err := client.PipelineMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 || ms[0].Stage != "match" || ms[4].Stage != "estimate" || ms[5].Stage != "admission" {
		t.Fatalf("pipeline metrics = %+v", ms)
	}
	if ms[5].ItemsIn != 7 || ms[5].ItemsOut != 7 || ms[5].Dropped != 0 {
		t.Errorf("admission row = %+v", ms[5])
	}
	if ms[0].Runs == 0 {
		t.Error("match stage shows no runs after ingesting trips")
	}
}

func TestCampaignBatchedUploads(t *testing.T) {
	// End-to-end: a campaign with UploadBatchSize delivers through the
	// backend's concurrent batch path and loses nothing.
	w := testWorld(t)
	run := func(batch int) (sim.CampaignStats, Stats) {
		t.Helper()
		b := testBackend(t, w)
		cfg := sim.DefaultCampaignConfig()
		cfg.Days = 1
		cfg.Participants = 6
		cfg.Seed = 11
		cfg.UploadBatchSize = batch
		camp, err := sim.NewCampaign(w, cfg, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		camp.MinuteHook = func(tS float64) { b.Advance(tS) }
		st, err := camp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return st, b.Stats()
	}
	immediate, immediateBS := run(0)
	batched, batchedBS := run(8)
	if batched.BatchFlushes == 0 {
		t.Error("batched campaign never flushed")
	}
	if batched.UploadFailures != 0 {
		t.Errorf("upload failures = %d", batched.UploadFailures)
	}
	if immediateBS.TripsReceived == 0 {
		t.Fatal("campaign produced no trips")
	}
	if batchedBS.TripsReceived != immediateBS.TripsReceived {
		t.Errorf("batched path lost trips: %d != %d",
			batchedBS.TripsReceived, immediateBS.TripsReceived)
	}
	_ = immediate
}

func TestProcessTripsEmptyAndWorkerClamp(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	if res := b.ProcessTrips(context.Background(), nil, 4); len(res) != 0 {
		t.Errorf("nil batch returned %d results", len(res))
	}
	// More workers than trips must clamp, not deadlock.
	trips := batchCorpus(t, w, 2)
	done := make(chan []TripResult, 1)
	go func() { done <- b.ProcessTrips(context.Background(), trips, 64) }()
	select {
	case res := <-done:
		for i, r := range res {
			if r.Err != nil {
				t.Errorf("trip %d: %v", i, r.Err)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("batch ingest deadlocked")
	}
}
