package server

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"

	"busprobe/internal/core/traffic"
	"busprobe/internal/probe"
	"busprobe/internal/server/stage"
	"busprobe/internal/store"
)

// TripLog is the backend's durable trip sink: admit() appends every
// accepted upload before processing it. Both the legacy single-file
// *Journal and the log-structured *StoreLog satisfy it.
type TripLog interface {
	Append(ctx context.Context, trip probe.Trip) error
}

var (
	_ TripLog = (*Journal)(nil)
	_ TripLog = (*StoreLog)(nil)
)

// PersistentStateSchema versions the snapshot state blob. A snapshot
// carrying another schema is skipped down the recovery ladder.
const PersistentStateSchema = "busprobe-state/1"

// PersistentState is the backend's complete durable state: everything
// a snapshot must capture so that "import state + replay tail" equals
// "replay everything". All slices are sorted, so exporting twice from
// a quiesced backend is byte-identical.
type PersistentState struct {
	// Schema is PersistentStateSchema.
	Schema string `json:"schema"`
	// Seen is the dedup set: every accepted trip ID, ascending.
	Seen []string `json:"seen"`
	// Scatter is the cross-shard fold idempotency record, ascending by
	// key: replayed or retried scatter groups with a recorded key
	// return the recorded outcome instead of folding twice.
	Scatter []ScatterOutcome `json:"scatter,omitempty"`
	// Pending is the cross-shard groups this shard computed whose
	// delivery to their owner had not succeeded by export time,
	// ascending by key. A snapshot must carry them: once it covers the
	// originating trip's record, compaction may delete the only other
	// copy, and without this field a transient peer outage would turn
	// into a permanently missing fold on the owner.
	Pending []PendingScatter `json:"pending,omitempty"`
	// Stats are the work counters at export.
	Stats Stats `json:"stats"`
	// Estimator is the traffic estimator's window/belief state.
	Estimator *traffic.State `json:"estimator"`
}

// ScatterOutcome is one recorded cross-shard fold.
type ScatterOutcome struct {
	Key string               `json:"key"`
	Out stage.EstimateOutput `json:"out"`
}

// PendingScatter is one cross-shard observation group still awaiting
// delivery to its owner shard.
type PendingScatter struct {
	Key   string                `json:"key"`
	Owner int                   `json:"owner"`
	Obs   []traffic.Observation `json:"obs"`
}

// ExportState captures the backend's durable state. Safe to call on a
// live backend, but only a checkpoint-quiesced export (Checkpoint) is
// guaranteed consistent with a segment boundary — a concurrent trip
// could otherwise land its journal record and its fold on opposite
// sides of the export.
func (b *Backend) ExportState() *PersistentState {
	b.scatterMu.Lock()
	defer b.scatterMu.Unlock()
	return b.exportStateScatterLocked()
}

// exportStateScatterLocked builds the state document. Callers hold
// scatterMu; the other locks are taken (and released) per field.
func (b *Backend) exportStateScatterLocked() *PersistentState {
	st := &PersistentState{Schema: PersistentStateSchema, Estimator: b.est.ExportState()}
	b.dedupMu.Lock()
	st.Seen = make([]string, 0, len(b.seen))
	for id := range b.seen {
		st.Seen = append(st.Seen, id)
	}
	b.dedupMu.Unlock()
	sort.Strings(st.Seen)
	b.statsMu.Lock()
	st.Stats = b.stats
	b.statsMu.Unlock()
	if len(b.scatterSeen) > 0 {
		st.Scatter = make([]ScatterOutcome, 0, len(b.scatterSeen))
		for k, out := range b.scatterSeen {
			st.Scatter = append(st.Scatter, ScatterOutcome{Key: k, Out: out})
		}
		sort.Slice(st.Scatter, func(i, j int) bool { return st.Scatter[i].Key < st.Scatter[j].Key })
	}
	if len(b.scatterPending) > 0 {
		st.Pending = make([]PendingScatter, 0, len(b.scatterPending))
		for k, p := range b.scatterPending {
			st.Pending = append(st.Pending, PendingScatter{Key: k, Owner: p.owner, Obs: p.obs})
		}
		sort.Slice(st.Pending, func(i, j int) bool { return st.Pending[i].Key < st.Pending[j].Key })
	}
	return st
}

// ImportState replaces the backend's durable state wholesale with a
// previously exported one. Import into a freshly constructed backend
// before attaching any log and before any ingestion; a failed import
// leaves the backend untouched.
func (b *Backend) ImportState(st *PersistentState) error {
	if st == nil {
		return fmt.Errorf("server: import nil state")
	}
	if st.Schema != PersistentStateSchema {
		return fmt.Errorf("server: state schema %q, want %q", st.Schema, PersistentStateSchema)
	}
	seen := make(map[string]bool, len(st.Seen))
	for _, id := range st.Seen {
		seen[id] = true
	}
	scatter := make(map[string]stage.EstimateOutput, len(st.Scatter))
	for _, sc := range st.Scatter {
		if _, dup := scatter[sc.Key]; dup {
			return fmt.Errorf("server: state has duplicate scatter key %q", sc.Key)
		}
		scatter[sc.Key] = sc.Out
	}
	pending := make(map[string]pendingScatter, len(st.Pending))
	for _, p := range st.Pending {
		if _, dup := pending[p.Key]; dup {
			return fmt.Errorf("server: state has duplicate pending scatter key %q", p.Key)
		}
		pending[p.Key] = pendingScatter{owner: p.Owner, obs: p.Obs}
	}
	if st.Estimator == nil {
		return fmt.Errorf("server: state has no estimator")
	}
	if err := b.est.ImportState(st.Estimator); err != nil {
		return err
	}
	b.dedupMu.Lock()
	b.seen = seen
	b.dedupMu.Unlock()
	b.scatterMu.Lock()
	b.scatterSeen = scatter
	b.scatterPending = pending
	b.scatterMu.Unlock()
	b.statsMu.Lock()
	b.stats = st.Stats
	b.statsMu.Unlock()
	return nil
}

// storeRecord is the store's record envelope. Kind "trip" carries one
// accepted upload; kind "scatter" carries one cross-shard observation
// group received for folding. A line with no kind is a legacy journal
// record: a bare trip JSON object, as migrated single-file journals
// contain.
type storeRecord struct {
	Kind string                `json:"kind,omitempty"`
	Trip *probe.Trip           `json:"trip,omitempty"`
	Key  string                `json:"key,omitempty"`
	Obs  []traffic.Observation `json:"obs,omitempty"`
}

const (
	recKindTrip    = "trip"
	recKindScatter = "scatter"
)

// decodeStoreRecord parses one record line, handling the legacy
// bare-trip form. ok is false for lines that are not records at all.
func decodeStoreRecord(line []byte) (storeRecord, bool) {
	var rec storeRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return storeRecord{}, false
	}
	switch rec.Kind {
	case recKindTrip:
		if rec.Trip == nil {
			return storeRecord{}, false
		}
		return rec, true
	case recKindScatter:
		return rec, true
	case "":
		// Legacy journal line: the whole object is the trip.
		var trip probe.Trip
		if err := json.Unmarshal(line, &trip); err != nil {
			return storeRecord{}, false
		}
		return storeRecord{Kind: recKindTrip, Trip: &trip}, true
	default:
		// A record kind from the future: skip, never guess.
		return storeRecord{}, false
	}
}

// StoreLog adapts a *store.Store to the backend's append points: trips
// on the upload path (TripLog) and scatter groups on the cross-shard
// fold path. Safe for concurrent use (the store serializes appends).
type StoreLog struct {
	s *store.Store
}

// NewStoreLog wraps an open store.
func NewStoreLog(s *store.Store) *StoreLog { return &StoreLog{s: s} }

// Store exposes the underlying store (checkpointing, tests).
func (l *StoreLog) Store() *store.Store { return l.s }

// Append implements TripLog: one "trip" record line.
func (l *StoreLog) Append(ctx context.Context, trip probe.Trip) error {
	line, err := json.Marshal(storeRecord{Kind: recKindTrip, Trip: &trip})
	if err != nil {
		return fmt.Errorf("server: encode trip record: %w", err)
	}
	return l.s.Append(ctx, line)
}

// AppendScatter persists one received cross-shard observation group
// under its idempotency key, so the receiving shard's own replay
// restores folds whose originating trip lives in a peer's log.
func (l *StoreLog) AppendScatter(ctx context.Context, key string, obs []traffic.Observation) error {
	line, err := json.Marshal(storeRecord{Kind: recKindScatter, Key: key, Obs: obs})
	if err != nil {
		return fmt.Errorf("server: encode scatter record: %w", err)
	}
	return l.s.Append(ctx, line)
}

// Close flushes and closes the underlying store.
func (l *StoreLog) Close() error { return l.s.Close() }

// AttachStore wires both of the backend's append points to the store
// log: accepted trips and received scatter groups. Attach AFTER
// recovery, like AttachJournal — RecoverBackendStore and RecoverStores
// sequence this themselves.
func (b *Backend) AttachStore(l *StoreLog) {
	b.attachScatterLog(l)
	b.AttachTripLog(l)
}

// AttachTripLog makes the backend append every accepted trip to the
// log. Attach AFTER replay, or replayed trips would be re-journaled.
func (b *Backend) AttachTripLog(l TripLog) {
	b.dedupMu.Lock()
	b.journal = l
	b.dedupMu.Unlock()
}

// attachScatterLog makes FoldScatter persist received groups.
func (b *Backend) attachScatterLog(l *StoreLog) {
	b.scatterMu.Lock()
	b.scatterLog = l
	b.scatterMu.Unlock()
}

// Checkpoint writes a snapshot at a sealed segment boundary and
// compacts the store behind it. The sequence quiesces ingestion for
// the seal + export only (trips hold checkpointMu.RLock across
// admit→fold, received scatters hold scatterMu across append→fold, so
// under both write locks no record can land on one side of the
// boundary with its fold on the other); the snapshot write and the
// compaction run after the locks drop.
func (b *Backend) Checkpoint() error {
	b.scatterMu.Lock()
	sl := b.scatterLog
	b.scatterMu.Unlock()
	if sl == nil {
		return fmt.Errorf("server: checkpoint without an attached store")
	}
	// Re-deliver pending cross-shard groups before the cut: this
	// snapshot may cover (and its compaction delete) the originating
	// trip records, leaving the exported Pending list as those groups'
	// only route to their owners. Drain what can be drained; the rest
	// exports below and retries at the next checkpoint or recovery.
	b.RetryPendingScatters(context.Background()) //lint:allow ctxpropagate checkpoints run from the snapshotter and shutdown with no request in flight; durability work must not be cut short by a caller's deadline
	b.checkpointMu.Lock()
	b.scatterMu.Lock() //lint:allow lockorder deliberate checkpointMu>scatterMu order, the only place both are held; FoldScatter takes scatterMu alone so the cut cannot deadlock
	upTo, err := sl.s.Seal()
	var blob []byte
	if err == nil {
		blob, err = json.Marshal(b.exportStateScatterLocked())
	}
	b.scatterMu.Unlock()
	b.checkpointMu.Unlock()
	if err != nil {
		return err
	}
	if err := sl.s.WriteSnapshot(upTo, blob); err != nil {
		return err
	}
	_, err = sl.s.Compact()
	return err
}

// ShardStoreDir names one shard's store directory under a deployment's
// base store directory. Every topology uses it — a monolith is shard 0
// — so converting a monolith to a sharded deployment (or back) finds
// the data where it expects it. Changing the shard COUNT invalidates
// snapshots and logs (trips would replay onto different owners);
// recover such a deployment by replaying every shard's store through a
// coordinator with the new count, into fresh directories.
func ShardStoreDir(base string, shard int) string {
	return filepath.Join(base, fmt.Sprintf("shard%d", shard))
}

// StoreRecovery is one backend's recovery outcome: the store-level
// report plus the pipeline-level replay counts.
type StoreRecovery struct {
	// Shard is the backend's shard index (0 for a monolith).
	Shard int `json:"shard"`
	// Report is the store's recovery report (mode, snapshot used,
	// segments walked, corruption notes).
	Report store.Report `json:"report"`
	// TripsReplayed counts tail trips accepted by the pipeline.
	TripsReplayed int `json:"tripsReplayed"`
	// TripsSkipped counts tail lines that were not replayable trips:
	// undecodable records and pipeline rejections (duplicates already
	// covered by the snapshot never occur on an intact store — the
	// checkpoint cut is exact — so a nonzero rejection count here means
	// a degraded recovery re-walked records a snapshot already covers).
	TripsSkipped int `json:"tripsSkipped"`
	// ScatterReplayed counts received-scatter records refolded.
	ScatterReplayed int `json:"scatterReplayed"`
	// SnapshotImported reports that a snapshot state blob was loaded.
	SnapshotImported bool `json:"snapshotImported"`
	// Err records a per-shard recovery failure (degraded boot: the
	// other shards keep recovering).
	Err string `json:"err,omitempty"`

	log *StoreLog
}

// Log returns the opened store log (attached to the backend by the
// recovery that produced this).
func (r *StoreRecovery) Log() *StoreLog { return r.log }

// RecoverBackendStore restores one backend from its store directory
// and leaves the store attached and appending:
//
//  1. A legacy single-file journal at legacyJournal (if any, and only
//     into a virgin store) is migrated in as the first segment.
//  2. The store opens for appending. Opening comes BEFORE planning
//     because Open normalizes the directory — a fully-sealed-but-
//     unrenamed active segment (crash between footer write and
//     rename) is finished into its sealed name, a torn active tail is
//     trimmed — and a plan built against the pre-normalization paths
//     would skip the renamed segment's acked records as "unreadable"
//     at replay time, after which compaction would delete them.
//  3. The recovery ladder picks a snapshot; its state imports into the
//     backend. A checksum-valid snapshot whose state fails to decode
//     falls all the way to a full replay.
//  4. The tail replays in record order: trips re-process (their
//     cross-shard groups re-scatter under the original idempotency
//     keys; the shard's own replayed scatter records fold without
//     re-appending), so after replay the backend is byte-identical to
//     one that never crashed.
//  5. Both append points attach, and cross-shard groups the snapshot
//     listed as pending are re-delivered (best-effort: an unreachable
//     owner keeps them pending for the next checkpoint's retry).
//
// The backend must be freshly constructed. The error return is for
// failures that leave the backend unusable (directory unreadable,
// store unopenable); data-level corruption degrades inside the report
// instead.
func RecoverBackendStore(ctx context.Context, opts store.Options, legacyJournal string, b *Backend) (*StoreRecovery, error) {
	rec := &StoreRecovery{Shard: b.shardIdx}
	migrated, err := store.MigrateLegacy(opts.Dir, legacyJournal)
	if err != nil {
		return nil, err
	}
	s, err := store.Open(opts)
	if err != nil {
		return nil, err
	}
	plan, err := planShardRecovery(opts, migrated, b, rec)
	if err == nil {
		err = recoverReplay(ctx, plan, b, rec)
	}
	if err != nil {
		_ = s.Close() //lint:allow errcheckio best-effort close on a recovery that already failed; the close error cannot outrank the cause
		return nil, err
	}
	rec.log = NewStoreLog(s)
	b.attachScatterLog(rec.log)
	b.AttachTripLog(rec.log)
	rec.Report = plan.Report
	b.RetryPendingScatters(ctx)
	return rec, nil
}

// recoverReplay walks the planned tail through the backend's pipeline.
// Scatter appends during replay go to peers only: re-processing this
// shard's own trips re-scatters their cross-shard groups (the
// receiving backend records them durably, or suppresses them as
// duplicates), while this shard's own received-scatter records refold
// locally without re-appending.
func recoverReplay(ctx context.Context, plan *store.Recovery, b *Backend, rec *StoreRecovery) error {
	return plan.Replay(ctx, func(line []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		r, ok := decodeStoreRecord(line)
		if !ok {
			rec.TripsSkipped++
			return nil
		}
		switch r.Kind {
		case recKindTrip:
			if _, err := b.ProcessTrip(ctx, *r.Trip); err != nil {
				if ctx.Err() != nil {
					return err
				}
				rec.TripsSkipped++
				return nil
			}
			rec.TripsReplayed++
		case recKindScatter:
			b.foldScatterReplay(ctx, r.Key, r.Obs)
			rec.ScatterReplayed++
		}
		return nil
	})
}

// RecoverStores restores every in-process shard of a coordinator from
// per-shard store directories under base (ShardStoreDir), phase by
// phase so cross-shard scatters replayed by one shard land on peers
// that have already imported their snapshots:
//
//	phase 1: every shard migrates, opens its store (normalizing the
//	         directory BEFORE the plan is built, so the plan's segment
//	         paths match what is on disk at replay time), plans +
//	         imports its snapshot, and attaches its scatter log;
//	phase 2: every shard replays its tail in shard order;
//	phase 3: pending cross-shard groups restored from snapshots are
//	         re-delivered — every peer has imported and replayed by
//	         now, so deliveries land on recovered estimators;
//	phase 4: trip logs attach.
//
// A shard whose recovery fails is recorded (Err) and left fresh — the
// remaining shards still recover (degraded boot, matching the
// degraded-read philosophy). The error return is reserved for context
// cancellation.
func (c *Coordinator) RecoverStores(ctx context.Context, base string, opts store.Options, legacyJournals []string) ([]*StoreRecovery, error) {
	recs := make([]*StoreRecovery, len(c.backends))
	plans := make([]*store.Recovery, len(c.backends))
	for i, b := range c.backends {
		if b == nil {
			return nil, fmt.Errorf("server: shard %d is remote; it recovers its own store", i)
		}
		recs[i] = &StoreRecovery{Shard: i}
		shardOpts := opts
		shardOpts.Dir = ShardStoreDir(base, i)
		legacy := ""
		if i < len(legacyJournals) {
			legacy = legacyJournals[i]
		}
		migrated, err := store.MigrateLegacy(shardOpts.Dir, legacy)
		if err != nil {
			recs[i].Err = err.Error()
			continue
		}
		s, err := store.Open(shardOpts)
		if err != nil {
			recs[i].Err = err.Error()
			continue
		}
		plan, err := planShardRecovery(shardOpts, migrated, b, recs[i])
		if err != nil {
			recs[i].Err = err.Error()
			_ = s.Close() //lint:allow errcheckio best-effort close; the shard boots fresh without a log and the plan error is the cause worth reporting
			continue
		}
		plans[i] = plan
		recs[i].log = NewStoreLog(s)
		b.attachScatterLog(recs[i].log)
	}
	for i, plan := range plans {
		if plan == nil {
			continue
		}
		if err := recoverReplay(ctx, plan, c.backends[i], recs[i]); err != nil {
			if ctx.Err() != nil {
				return recs, err
			}
			recs[i].Err = err.Error()
		}
		recs[i].Report = plan.Report
	}
	for i := range plans {
		if plans[i] == nil {
			continue
		}
		c.backends[i].RetryPendingScatters(ctx)
	}
	for i := range plans {
		if plans[i] == nil || recs[i].log == nil {
			continue
		}
		c.backends[i].AttachTripLog(recs[i].log)
	}
	return recs, nil
}

// planShardRecovery is the shared plan+import step of
// RecoverBackendStore and the coordinator's phased variant. Callers
// migrate any legacy journal and Open the store FIRST — Open
// normalizes the directory, and a plan built before normalization
// would replay paths that no longer exist.
func planShardRecovery(opts store.Options, migrated bool, b *Backend, rec *StoreRecovery) (*store.Recovery, error) {
	plan, err := store.PlanRecovery(opts)
	if err != nil {
		return nil, err
	}
	plan.Report.Migrated = migrated
	if plan.State == nil {
		rec.Report = plan.Report
		return plan, nil
	}
	var st PersistentState
	ierr := json.Unmarshal(plan.State, &st)
	if ierr == nil {
		ierr = b.ImportState(&st)
	}
	if ierr != nil {
		full := opts
		full.SkipSnapshots = true
		plan, err = store.PlanRecovery(full)
		if err != nil {
			return nil, err
		}
		plan.Report.Migrated = migrated
		plan.Report.Notes = append(plan.Report.Notes,
			fmt.Sprintf("snapshot state not importable (%v); fell back to full replay", ierr))
	} else {
		rec.SnapshotImported = true
	}
	rec.Report = plan.Report
	return plan, nil
}

// AttachStores gives each in-process shard its own store log (one per
// shard, in shard order), both append points. Attach AFTER recovery,
// as with AttachJournals.
func (c *Coordinator) AttachStores(ls []*StoreLog) error {
	if len(ls) != len(c.shards) {
		return fmt.Errorf("server: %d store logs for %d shards", len(ls), len(c.shards))
	}
	for i, b := range c.backends {
		if b == nil {
			return fmt.Errorf("server: shard %d is remote; it persists in its own process", i)
		}
		b.AttachStore(ls[i])
	}
	return nil
}
