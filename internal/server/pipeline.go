package server

import (
	"busprobe/internal/cellular"
	"busprobe/internal/core/cluster"
	"busprobe/internal/core/traffic"
	"busprobe/internal/core/tripmap"
	"busprobe/internal/road"
	"busprobe/internal/transit"
)

// visit mirrors tripmap.Visit; VisitRecord converts from it.
type visit = tripmap.Visit

// cellularFP aliases the fingerprint type for the online-update path.
type cellularFP = cellular.Fingerprint

// tripResolve runs the per-trip ML mapping.
func tripResolve(clusters []cluster.Cluster, tdb *transit.DB) ([]visit, error) {
	res, err := tripmap.Resolve(clusters, tdb)
	if err != nil {
		return nil, err
	}
	return res.Visits, nil
}

// observations converts a mapped visit sequence into per-leg traffic
// observations. For each consecutive visit pair the bus travel time is
// BTT = arrive(next) - depart(prev) (§III-D); the covered road segments
// come from a route serving both stops in order. Visits whose stop pair
// no route serves in order (mapping noise) and travel times implying
// implausible speeds are discarded.
func (b *Backend) observations(visits []visit) (obs []traffic.Observation, discarded int) {
	if len(visits) < 2 {
		return nil, 0
	}
	routes := b.rankRoutesByVisitSupport(visits)
	net := b.transit.Network()
	for i := 0; i+1 < len(visits); i++ {
		from, to := visits[i], visits[i+1]
		if from.Stop == to.Stop {
			continue // repeated resolution of the same stop; no motion
		}
		btt := to.ArriveS - from.DepartS
		if btt <= 0 {
			discarded++
			continue
		}
		leg, ok := b.legBetween(routes, from.Stop, to.Stop)
		if !ok {
			discarded++
			continue
		}
		speedKmh := leg.LengthM / btt * 3.6
		if speedKmh < b.cfg.MinSpeedKmh || speedKmh > b.cfg.MaxSpeedKmh {
			discarded++
			continue
		}
		freeKmh := legFreeKmh(net, leg)
		obs = append(obs, traffic.Observation{
			Segments:   leg.Segments,
			LengthM:    leg.LengthM,
			FreeKmh:    freeKmh,
			BTTSeconds: btt,
			TimeS:      to.ArriveS,
		})
	}
	return obs, discarded
}

// rankRoutesByVisitSupport orders the routes by how many of the trip's
// consecutive visit pairs they serve in order, so legs are attributed to
// the route the rider most plausibly took.
func (b *Backend) rankRoutesByVisitSupport(visits []visit) []*transit.Route {
	type scored struct {
		rt *transit.Route
		n  int
	}
	all := b.transit.Routes()
	ranked := make([]scored, 0, len(all))
	for _, rt := range all {
		n := 0
		for i := 0; i+1 < len(visits); i++ {
			fi := rt.StopIndex(visits[i].Stop)
			ti := rt.StopIndex(visits[i+1].Stop)
			if fi >= 0 && ti > fi {
				n++
			}
		}
		ranked = append(ranked, scored{rt: rt, n: n})
	}
	// Stable selection sort by descending support keeps determinism and
	// is tiny (route counts are single digits).
	for i := 0; i < len(ranked); i++ {
		best := i
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].n > ranked[best].n {
				best = j
			}
		}
		ranked[i], ranked[best] = ranked[best], ranked[i]
	}
	out := make([]*transit.Route, len(ranked))
	for i, s := range ranked {
		out[i] = s.rt
	}
	return out
}

// legBetween finds the road stretch between two stops on the
// best-supported route serving them in order. The pair may skip
// intermediate stops (nobody tapped there): LegBetween concatenates the
// intermediate legs, implementing the §III-D merge.
func (b *Backend) legBetween(routes []*transit.Route, from, to transit.StopID) (transit.Leg, bool) {
	net := b.transit.Network()
	for _, rt := range routes {
		fi := rt.StopIndex(from)
		if fi < 0 {
			continue
		}
		ti := rt.StopIndex(to)
		if ti <= fi {
			continue
		}
		return rt.LegBetween(net, fi, ti), true
	}
	return transit.Leg{}, false
}

// legFreeKmh returns the harmonic-mean free-flow speed over a leg
// (total length / total free-flow time), which is the free speed the
// Eq. 3 "a" term needs for a multi-segment stretch.
func legFreeKmh(net *road.Network, leg transit.Leg) float64 {
	var timeS float64
	for _, sid := range leg.Segments {
		timeS += net.Segment(sid).FreeTravelS()
	}
	if timeS <= 0 {
		return 0
	}
	return leg.LengthM / timeS * 3.6
}
