package server

import (
	"context"

	"busprobe/internal/cellular"
	"busprobe/internal/core/traffic"
	"busprobe/internal/core/tripmap"
	"busprobe/internal/road"
	"busprobe/internal/server/stage"
	"busprobe/internal/transit"
)

// The stage logic itself lives in internal/server/stage; this file
// keeps the backend-level aliases and thin delegators the query
// extensions and white-box tests use.

// visit mirrors tripmap.Visit; VisitRecord converts from it.
type visit = tripmap.Visit

// cellularFP aliases the fingerprint type for the online-update path.
type cellularFP = cellular.Fingerprint

// observations runs the extraction stage: a mapped visit sequence
// becomes per-leg traffic observations (§III-D).
func (b *Backend) observations(ctx context.Context, visits []visit) (obs []traffic.Observation, discarded int) {
	out := b.pipe.Extract.Run(ctx, stage.ExtractInput{Visits: visits})
	return out.Observations, out.Discarded
}

// rankRoutesByVisitSupport orders the routes by how many of the trip's
// consecutive visit pairs they serve in order.
func (b *Backend) rankRoutesByVisitSupport(visits []visit) []*transit.Route {
	return b.pipe.Extract.RankRoutesByVisitSupport(visits)
}

// legBetween finds the road stretch between two stops on the
// best-supported route serving them in order.
func (b *Backend) legBetween(routes []*transit.Route, from, to transit.StopID) (transit.Leg, bool) {
	return b.pipe.Extract.LegBetween(routes, from, to)
}

// legFreeKmh returns the harmonic-mean free-flow speed over a leg.
func legFreeKmh(net *road.Network, leg transit.Leg) float64 {
	return stage.LegFreeKmh(net, leg)
}
