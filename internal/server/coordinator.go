package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"busprobe/internal/obs"

	"busprobe/internal/core/arrival"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/core/region"
	"busprobe/internal/core/traffic"
	"busprobe/internal/phone"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/server/stage"
	"busprobe/internal/transit"
)

// Coordinator shards the backend by city region: the transit network is
// split into route-closed groups on the region zone grid
// (transit.PartitionRoutes), and each shard is a full Backend — its own
// dedup set, stage pipeline, admission gate, journal, and estimator —
// over the shared transit and fingerprint databases. Uploads route to
// their home shard by fingerprint pre-match; reads fan in across shards
// and merge deterministically.
//
// The coordinator dispatches through the Shard boundary, so a shard can
// be an in-process *Backend (NewCoordinator) or an independent process
// reached over the wire protocol (NewRemoteCoordinator) — the routing,
// scatter, and merge logic is identical either way, and a remote
// coordinator holds no per-trip state of its own.
//
// The merged traffic map is byte-identical to a monolithic Backend fed
// the same trips, by construction:
//
//   - Trip routing is content-deterministic, so a duplicated upload
//     lands on the same shard and dies at that shard's dedup set.
//   - Each shard computes trips against the full databases, so a trip's
//     matched visits and extracted observations are exactly the
//     monolith's.
//   - Observations scatter to the shard owning their segments under a
//     deterministic idempotency key, so each segment's report multiset
//     lives in exactly one shard and folds exactly once even when the
//     scatter crosses a wire and gets retried — and the PR 2 estimator
//     is a pure function of (report multiset, watermark), making the
//     union of shard snapshots equal to the monolith snapshot once
//     clocks advance together.
//
// Safe for concurrent use.
type Coordinator struct {
	cfg      Config
	tdb      *transit.DB
	fpdb     *fingerprint.DB
	part     *transit.Partition
	shards   []Shard
	backends []*Backend // per-shard *Backend for in-process shards, nil for remote

	// healthMu guards health, the per-shard outcome of the most recent
	// probe or fan-out call. Reads merge around unhealthy shards
	// (degraded-but-alive) instead of wedging the city-wide view.
	healthMu sync.Mutex
	health   []shardHealth //lint:guardedby healthMu

	// merged caches the fan-in traffic merge keyed by the shard version
	// vector that built it: a read whose fetched vector matches serves
	// the cached snapshot untouched, and only a moved shard version (or
	// a health transition) triggers a re-merge. mergeMu serializes the
	// re-merge itself — readers that lose the TryLock race serve the
	// current cache instead of queueing, so reads never pile up behind
	// one another.
	mergeMu sync.Mutex
	merged  atomic.Pointer[mergedTraffic]
}

// mergedTraffic is one cached fan-in merge: the coordinator-versioned
// snapshot plus the shard version vector it was built from.
type mergedTraffic struct {
	snap *traffic.Snapshot
	vec  []shardVersion
}

// shardVersion is one entry of the merge's version vector: whether the
// shard answered, and at which published version.
type shardVersion struct {
	ok      bool
	version uint64
}

// vecEqual reports whether two version vectors describe the same shard
// states.
func vecEqual(a, b []shardVersion) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shardHealth is the coordinator's view of one shard's liveness.
type shardHealth struct {
	healthy   bool
	lastProbe string
}

var (
	_ phone.Uploader      = (*Coordinator)(nil)
	_ phone.BatchUploader = (*Coordinator)(nil)
)

// NewCoordinator assembles a coordinator with the given number of
// in-process region shards over the shared transit and fingerprint
// databases. One shard degenerates to a monolith behind the same API.
// Shards may outnumber route groups; the surplus shards simply stay
// empty.
func NewCoordinator(cfg Config, tdb *transit.DB, fpdb *fingerprint.DB, shards int) (*Coordinator, error) {
	c, err := newCoordinator(cfg, tdb, fpdb, shards)
	if err != nil {
		return nil, err
	}
	// Shards are built without the observability core (NewBackend would
	// self-register every one as shard "0") and registered explicitly
	// under their own labels below.
	shardCfg := cfg
	shardCfg.Obs = nil
	for i := 0; i < shards; i++ {
		b, err := NewBackend(shardCfg, tdb, fpdb)
		if err != nil {
			return nil, err
		}
		if cfg.Obs != nil {
			b.RegisterObs(cfg.Obs, strconv.Itoa(i))
		}
		c.backends = append(c.backends, b)
		c.shards = append(c.shards, localShard{b})
	}
	c.registerObs(cfg.Obs)
	// Installed after every shard exists: the scatter can target any
	// peer's estimator.
	for i, b := range c.backends {
		b.shardIdx = i
		b.obsOwner = c.ownerShard
		b.obsScatter = c.scatter
	}
	return c, nil
}

// NewRemoteCoordinator assembles a stateless coordinator tier over
// already-running shard processes, one per address in shard order. The
// coordinator rebuilds the same deterministic partition the shard
// processes derived from the shared databases, routes uploads by
// fingerprint pre-match exactly as the in-process coordinator does, and
// merges reads across the wire. It holds no trip state: any number of
// coordinator processes can front the same shard tier.
func NewRemoteCoordinator(cfg Config, tdb *transit.DB, fpdb *fingerprint.DB, addrs []string) (*Coordinator, error) {
	c, err := newCoordinator(cfg, tdb, fpdb, len(addrs))
	if err != nil {
		return nil, err
	}
	for _, addr := range addrs {
		c.backends = append(c.backends, nil)
		c.shards = append(c.shards, NewRemoteShard(addr))
	}
	c.registerObs(cfg.Obs)
	return c, nil
}

// newCoordinator builds the shard-implementation-independent core: the
// deterministic route partition and the health table.
func newCoordinator(cfg Config, tdb *transit.DB, fpdb *fingerprint.DB, shards int) (*Coordinator, error) {
	if tdb == nil || fpdb == nil {
		return nil, fmt.Errorf("server: nil transit or fingerprint DB")
	}
	if shards < 1 {
		return nil, fmt.Errorf("server: coordinator needs at least one shard")
	}
	part, err := transit.PartitionRoutes(tdb, shards, region.DefaultConfig().ZoneM)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, tdb: tdb, fpdb: fpdb, part: part}
	c.health = make([]shardHealth, shards)
	for i := range c.health {
		c.health[i] = shardHealth{healthy: true, lastProbe: "unprobed"}
	}
	return c, nil
}

// ownerShard names the shard owning an observation's road segments (a
// leg's segments all belong to one route, hence one shard). Unowned
// segments fold on the home shard.
func (c *Coordinator) ownerShard(o traffic.Observation) (int, bool) {
	if len(o.Segments) > 0 {
		return c.part.SegmentShard(o.Segments[0])
	}
	return 0, false
}

// scatter forwards one cross-shard observation group to its owner.
func (c *Coordinator) scatter(ctx context.Context, owner int, key string, obsGroup []traffic.Observation) (stage.EstimateOutput, error) {
	out, err := c.shards[owner].Scatter(ctx, key, obsGroup)
	c.noteShard(owner, err)
	return out, err
}

// noteShard records the outcome of a call to shard i in the health
// table.
func (c *Coordinator) noteShard(i int, err error) {
	h := shardHealth{healthy: true, lastProbe: "ok"}
	if err != nil {
		h = shardHealth{healthy: false, lastProbe: err.Error()}
	}
	c.healthMu.Lock()
	c.health[i] = h
	c.healthMu.Unlock()
}

// shardHealthAt snapshots shard i's health row.
func (c *Coordinator) shardHealthAt(i int) shardHealth {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	return c.health[i]
}

// ProbeShards checks every shard's readiness concurrently, records the
// outcomes in the health table served by GET /v1/shards, and returns
// the joined errors of the shards that failed (nil when all are ready).
func (c *Coordinator) ProbeShards(ctx context.Context) error {
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			err := sh.Ready(ctx)
			if err != nil {
				err = fmt.Errorf("shard %d (%s): %w", i, sh.Addr(), err)
			}
			c.noteShard(i, err)
			errs[i] = err
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Config returns the serving configuration.
func (c *Coordinator) Config() Config { return c.cfg }

// Partition exposes the route-closed shard assignment.
func (c *Coordinator) Partition() *transit.Partition { return c.part }

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Shards exposes the underlying in-process shard backends (read-mostly;
// used by evaluations and tests). Entries are nil for remote shards.
func (c *Coordinator) Shards() []*Backend { return c.backends }

// ShardFor routes a trip to its home shard by fingerprint pre-match: the
// first sample whose best match clears γ names a stop, and that stop's
// shard takes the trip. The decision depends only on trip content, so a
// duplicated upload routes identically and is absorbed by the home
// shard's dedup set. Trips matching nothing fall back to shard 0 (they
// produce no visits anywhere, so only the counter placement varies).
func (c *Coordinator) ShardFor(trip probe.Trip) int {
	for _, s := range trip.Samples {
		m, ok := c.fpdb.Match(s.Fingerprint())
		if !ok {
			continue
		}
		if sh, ok := c.part.StopShard(m.Stop); ok {
			return sh
		}
	}
	return 0
}

// ProcessTrip routes one trip to its home shard and ingests it there.
func (c *Coordinator) ProcessTrip(ctx context.Context, trip probe.Trip) (ProcessedTrip, error) {
	return c.shards[c.ShardFor(trip)].ProcessTrip(ctx, trip)
}

// Upload implements phone.Uploader.
func (c *Coordinator) Upload(ctx context.Context, trip probe.Trip) error {
	_, err := c.ProcessTrip(ctx, trip)
	return err
}

// splitByShard groups batch indices by home shard, preserving input
// order within each shard.
func (c *Coordinator) splitByShard(trips []probe.Trip) [][]int {
	idxs := make([][]int, len(c.shards))
	for i, trip := range trips {
		sh := c.ShardFor(trip)
		idxs[sh] = append(idxs[sh], i)
	}
	return idxs
}

// runSharded fans a batch out to its home shards (one goroutine per
// non-empty shard) and reassembles per-trip results in input order.
// Within a shard trips keep their relative order, so per-shard dedup and
// fold semantics match serial ingestion.
func (c *Coordinator) runSharded(trips []probe.Trip, run func(sh int, sub []probe.Trip) []TripResult) []TripResult {
	res := make([]TripResult, len(trips))
	var wg sync.WaitGroup
	for sh, idxs := range c.splitByShard(trips) {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			sub := make([]probe.Trip, len(idxs))
			for k, i := range idxs {
				sub[k] = trips[i]
			}
			for k, r := range run(sh, sub) {
				res[idxs[k]] = r
			}
		}(sh, idxs)
	}
	wg.Wait()
	return res
}

// ProcessTrips ingests a batch without admission gating, fanning
// sub-batches to their home shards. The context rides the scatter into
// every shard's admission and stage runs.
func (c *Coordinator) ProcessTrips(ctx context.Context, trips []probe.Trip, workers int) []TripResult {
	return c.runSharded(trips, func(sh int, sub []probe.Trip) []TripResult {
		return c.shards[sh].ProcessTrips(ctx, sub, workers)
	})
}

// IngestBatch ingests a batch with per-shard admission: each home
// shard's sub-batch passes that shard's gate, so a saturated region
// sheds its own trips (ErrOverloaded, surfaced as 429s that feed the
// phone-side retry/backoff machinery) while the rest of the city keeps
// ingesting.
func (c *Coordinator) IngestBatch(ctx context.Context, trips []probe.Trip) []TripResult {
	return c.runSharded(trips, func(sh int, sub []probe.Trip) []TripResult {
		return c.shards[sh].IngestBatch(ctx, sub)
	})
}

// UploadBatch implements phone.BatchUploader over IngestBatch.
func (c *Coordinator) UploadBatch(ctx context.Context, trips []probe.Trip) []error {
	errs := make([]error, len(trips))
	for i, r := range c.IngestBatch(ctx, trips) {
		errs[i] = r.Err
	}
	return errs
}

// Stats sums the shards' counters. Each trip is counted by exactly one
// shard (its home), so the sum never double-counts. Unreachable shards
// contribute nothing (degraded reads).
func (c *Coordinator) Stats() Stats {
	var out Stats
	for i, sh := range c.shards {
		s, err := sh.Stats(context.Background()) //lint:allow ctxpropagate reads stay ctx-free: shard read RPCs carry their own transport timeout
		c.noteShard(i, err)
		if err != nil {
			continue
		}
		out.add(s)
		out.BatchesShed += s.BatchesShed
		out.TripsShed += s.TripsShed
	}
	return out
}

// StageMetrics merges the shards' per-stage counters by stage name
// (stage.Merge), yielding one city-wide row per stage plus the summed
// admission pseudo-stage. Unreachable shards are skipped.
func (c *Coordinator) StageMetrics() []stage.Metrics {
	groups := make([][]stage.Metrics, 0, len(c.shards))
	for i, sh := range c.shards {
		ms, err := sh.StageMetrics(context.Background()) //lint:allow ctxpropagate reads stay ctx-free: shard read RPCs carry their own transport timeout
		c.noteShard(i, err)
		if err != nil {
			continue
		}
		groups = append(groups, ms)
	}
	return stage.Merge(groups...)
}

// Traffic fans in across shards and merges the snapshots, returning a
// mutable copy the caller owns. The scatter gives every segment exactly
// one owning estimator, so the union is disjoint and merge order cannot
// matter. An unreachable shard's segments drop out of the merged view
// until it returns (degraded-but-alive reads).
func (c *Coordinator) Traffic() map[road.SegmentID]traffic.Estimate {
	return c.TrafficSnapshot().CloneEstimates()
}

// TrafficSnapshot returns the merged, coordinator-versioned traffic
// snapshot. The fan-out itself is cheap — a pointer load per in-process
// shard, a conditional GET (usually 304) per remote one — and the merge
// only re-runs when the fetched shard version vector differs from the
// cached one, so RouteStatuses / PredictArrivals / watch pollers reuse
// one merge instead of re-merging per read. The coordinator keeps its
// own version sequence over the merged map (shard versions are local
// sequences and cannot be combined into one), maintained by
// traffic.NextSnapshot so deltas account for segments a dead shard
// dropped out of the view.
func (c *Coordinator) TrafficSnapshot() *traffic.Snapshot {
	parts := make([]*traffic.Snapshot, len(c.shards))
	vec := make([]shardVersion, len(c.shards))
	for i, sh := range c.shards {
		snap, err := sh.Traffic(context.Background()) //lint:allow ctxpropagate reads stay ctx-free: shard read RPCs carry their own transport timeout
		c.noteShard(i, err)
		if err != nil {
			continue
		}
		parts[i] = snap
		vec[i] = shardVersion{ok: true, version: snap.Version}
	}
	cached := c.merged.Load()
	if cached != nil && vecEqual(cached.vec, vec) {
		return cached.snap
	}
	if cached != nil {
		if !c.mergeMu.TryLock() {
			// Another reader is already re-merging this state change;
			// serve the current map instead of queueing behind it.
			return cached.snap
		}
	} else {
		c.mergeMu.Lock()
	}
	defer c.mergeMu.Unlock()
	if cached = c.merged.Load(); cached != nil && vecEqual(cached.vec, vec) {
		return cached.snap
	}
	m := make(map[road.SegmentID]traffic.Estimate)
	for _, p := range parts {
		if p == nil {
			continue
		}
		for sid, est := range p.Estimates {
			m[sid] = est
		}
	}
	prev := traffic.EmptySnapshot()
	if cached != nil {
		prev = cached.snap
	}
	next := traffic.NextSnapshot(prev, m)
	c.merged.Store(&mergedTraffic{snap: next, vec: vec})
	return next
}

// TrafficSegment reads one segment from its owning shard.
func (c *Coordinator) TrafficSegment(sid road.SegmentID) (traffic.Estimate, bool) {
	if sh, ok := c.part.SegmentShard(sid); ok {
		est, ok, err := c.shards[sh].TrafficSegment(context.Background(), sid) //lint:allow ctxpropagate reads stay ctx-free: shard read RPCs carry their own transport timeout
		c.noteShard(sh, err)
		if err != nil {
			return traffic.Estimate{}, false
		}
		return est, ok
	}
	return traffic.Estimate{}, false
}

// Advance drives every shard's estimator clock, keeping the shard
// watermarks in lockstep with a monolithic deployment's.
func (c *Coordinator) Advance(nowS float64) {
	for i, sh := range c.shards {
		c.noteShard(i, sh.Advance(context.Background(), nowS)) //lint:allow ctxpropagate clock ticks must reach every shard even when a caller's request ctx has expired
	}
}

// snapshotSource adapts one merged traffic snapshot to
// arrival.TrafficSource, so route and arrival predictions see the
// city-wide map without a per-segment fan-out (one read per shard
// instead of one RPC per segment when shards are remote).
type snapshotSource map[road.SegmentID]traffic.Estimate

func (s snapshotSource) Get(sid road.SegmentID) (traffic.Estimate, bool) {
	est, ok := s[sid]
	return est, ok
}

// RegionModel infers the §VI zone model over the cached merge
// (inference only reads the map, so no copy is taken).
func (c *Coordinator) RegionModel() (*region.Model, error) {
	return region.Infer(c.tdb.Network(), c.TrafficSnapshot().Estimates, region.DefaultConfig())
}

// RouteStatuses digests the merged map into per-route travel times,
// reusing the cached merge instead of re-fanning out.
func (c *Coordinator) RouteStatuses(departS float64) ([]RouteStatus, error) {
	return routeStatuses(c.tdb, departS, snapshotSource(c.TrafficSnapshot().Estimates))
}

// PredictArrivals forecasts downstream ETAs from the merged map,
// reusing the cached merge instead of re-fanning out.
func (c *Coordinator) PredictArrivals(routeID transit.RouteID, fromIdx int, departS float64) ([]arrival.Prediction, error) {
	return predictArrivals(c.tdb, routeID, fromIdx, departS, snapshotSource(c.TrafficSnapshot().Estimates))
}

// AttachJournals gives each shard its own journal (one per shard, in
// shard order). Attach AFTER replay, as with Backend.AttachJournal.
// Only valid for in-process shards: a remote shard process journals
// locally behind its own flag.
func (c *Coordinator) AttachJournals(js []*Journal) error {
	if len(js) != len(c.shards) {
		return fmt.Errorf("server: %d journals for %d shards", len(js), len(c.shards))
	}
	for i, b := range c.backends {
		if b == nil {
			return fmt.Errorf("server: shard %d is remote; it journals in its own process", i)
		}
		b.AttachJournal(js[i])
	}
	return nil
}

// registerObs projects the coordinator's partition footprint into the
// metrics registry: shard count plus per-shard route/stop/segment
// gauges, labeled consistently with the per-shard stage series.
func (c *Coordinator) registerObs(core *obs.Core) {
	if core == nil {
		return
	}
	reg := core.Registry
	reg.GaugeFunc("busprobe_shards", "Region shards behind the coordinator.",
		func() float64 { return float64(len(c.shards)) })
	for i := range c.shards {
		i := i
		sl := obs.Label{Name: "shard", Value: strconv.Itoa(i)}
		reg.GaugeFunc("busprobe_shard_routes", "Routes owned by the shard.",
			func() float64 { return float64(len(c.part.RoutesIn(i))) }, sl)
		reg.GaugeFunc("busprobe_shard_stops", "Stops owned by the shard.",
			func() float64 { return float64(c.part.StopsIn(i)) }, sl)
		reg.GaugeFunc("busprobe_shard_segments", "Road segments owned by the shard.",
			func() float64 { return float64(c.part.SegmentsIn(i)) }, sl)
		reg.GaugeFunc("busprobe_shard_healthy", "1 when the shard's last probe or call succeeded.",
			func() float64 {
				if c.shardHealthAt(i).healthy {
					return 1
				}
				return 0
			}, sl)
	}
}

// ShardStatuses reports each shard's partition footprint, topology
// (address, local vs remote), health, and counters. An unreachable
// shard still gets a row — with Healthy false and the probe error in
// LastProbe — so operators see the full topology at a glance.
func (c *Coordinator) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, len(c.shards))
	for i, sh := range c.shards {
		stats, err := sh.Stats(context.Background()) //lint:allow ctxpropagate reads stay ctx-free: shard read RPCs carry their own transport timeout
		c.noteShard(i, err)
		h := c.shardHealthAt(i)
		out[i] = ShardStatus{
			Shard:     i,
			Addr:      sh.Addr(),
			Remote:    sh.Addr() != LocalAddr,
			Healthy:   h.healthy,
			LastProbe: h.lastProbe,
			Routes:    len(c.part.RoutesIn(i)),
			Stops:     c.part.StopsIn(i),
			Segments:  c.part.SegmentsIn(i),
			Stats:     stats,
		}
	}
	return out
}
