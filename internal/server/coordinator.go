package server

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"busprobe/internal/obs"

	"busprobe/internal/core/arrival"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/core/region"
	"busprobe/internal/core/traffic"
	"busprobe/internal/phone"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/server/stage"
	"busprobe/internal/transit"
)

// Coordinator shards the backend by city region: the transit network is
// split into route-closed groups on the region zone grid
// (transit.PartitionRoutes), and each shard is a full Backend — its own
// dedup set, stage pipeline, admission gate, journal, and estimator —
// over the shared transit and fingerprint databases. Uploads route to
// their home shard by fingerprint pre-match; reads fan in across shards
// and merge deterministically.
//
// The merged traffic map is byte-identical to a monolithic Backend fed
// the same trips, by construction:
//
//   - Trip routing is content-deterministic, so a duplicated upload
//     lands on the same shard and dies at that shard's dedup set.
//   - Each shard computes trips against the full databases, so a trip's
//     matched visits and extracted observations are exactly the
//     monolith's.
//   - Observations scatter to the estimator owning their segments
//     (Backend.obsRoute), so each segment's report multiset lives in
//     exactly one shard — and the PR 2 estimator is a pure function of
//     (report multiset, watermark), making the union of shard snapshots
//     equal to the monolith snapshot once clocks advance together.
//
// Safe for concurrent use.
type Coordinator struct {
	cfg    Config
	tdb    *transit.DB
	fpdb   *fingerprint.DB
	part   *transit.Partition
	shards []*Backend
}

var (
	_ phone.Uploader      = (*Coordinator)(nil)
	_ phone.BatchUploader = (*Coordinator)(nil)
)

// NewCoordinator assembles a coordinator with the given number of region
// shards over the shared transit and fingerprint databases. One shard
// degenerates to a monolith behind the same API. Shards may outnumber
// route groups; the surplus shards simply stay empty.
func NewCoordinator(cfg Config, tdb *transit.DB, fpdb *fingerprint.DB, shards int) (*Coordinator, error) {
	if tdb == nil || fpdb == nil {
		return nil, fmt.Errorf("server: nil transit or fingerprint DB")
	}
	part, err := transit.PartitionRoutes(tdb, shards, region.DefaultConfig().ZoneM)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, tdb: tdb, fpdb: fpdb, part: part}
	// Shards are built without the observability core (NewBackend would
	// self-register every one as shard "0") and registered explicitly
	// under their own labels below.
	shardCfg := cfg
	shardCfg.Obs = nil
	for i := 0; i < shards; i++ {
		b, err := NewBackend(shardCfg, tdb, fpdb)
		if err != nil {
			return nil, err
		}
		if cfg.Obs != nil {
			b.RegisterObs(cfg.Obs, strconv.Itoa(i))
		}
		c.shards = append(c.shards, b)
	}
	c.registerObs(cfg.Obs)
	// Installed after every shard exists: the scatter can target any
	// peer's estimate stage.
	for _, b := range c.shards {
		b.obsRoute = c.ownerStage
	}
	return c, nil
}

// ownerStage routes one observation to the estimate stage of the shard
// owning its road segments (a leg's segments all belong to one route,
// hence one shard). Unowned segments fold on the home shard.
func (c *Coordinator) ownerStage(o traffic.Observation) *stage.Estimator {
	if len(o.Segments) > 0 {
		if sh, ok := c.part.SegmentShard(o.Segments[0]); ok {
			return c.shards[sh].pipe.Estimate
		}
	}
	return nil
}

// Config returns the serving configuration.
func (c *Coordinator) Config() Config { return c.cfg }

// Partition exposes the route-closed shard assignment.
func (c *Coordinator) Partition() *transit.Partition { return c.part }

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Shards exposes the underlying shard backends (read-mostly; used by
// evaluations and tests).
func (c *Coordinator) Shards() []*Backend { return c.shards }

// ShardFor routes a trip to its home shard by fingerprint pre-match: the
// first sample whose best match clears γ names a stop, and that stop's
// shard takes the trip. The decision depends only on trip content, so a
// duplicated upload routes identically and is absorbed by the home
// shard's dedup set. Trips matching nothing fall back to shard 0 (they
// produce no visits anywhere, so only the counter placement varies).
func (c *Coordinator) ShardFor(trip probe.Trip) int {
	for _, s := range trip.Samples {
		m, ok := c.fpdb.Match(s.Fingerprint())
		if !ok {
			continue
		}
		if sh, ok := c.part.StopShard(m.Stop); ok {
			return sh
		}
	}
	return 0
}

// ProcessTrip routes one trip to its home shard and ingests it there.
func (c *Coordinator) ProcessTrip(ctx context.Context, trip probe.Trip) (ProcessedTrip, error) {
	return c.shards[c.ShardFor(trip)].ProcessTrip(ctx, trip)
}

// Upload implements phone.Uploader.
func (c *Coordinator) Upload(ctx context.Context, trip probe.Trip) error {
	_, err := c.ProcessTrip(ctx, trip)
	return err
}

// splitByShard groups batch indices by home shard, preserving input
// order within each shard.
func (c *Coordinator) splitByShard(trips []probe.Trip) [][]int {
	idxs := make([][]int, len(c.shards))
	for i, trip := range trips {
		sh := c.ShardFor(trip)
		idxs[sh] = append(idxs[sh], i)
	}
	return idxs
}

// runSharded fans a batch out to its home shards (one goroutine per
// non-empty shard) and reassembles per-trip results in input order.
// Within a shard trips keep their relative order, so per-shard dedup and
// fold semantics match serial ingestion.
func (c *Coordinator) runSharded(trips []probe.Trip, run func(sh int, sub []probe.Trip) []TripResult) []TripResult {
	res := make([]TripResult, len(trips))
	var wg sync.WaitGroup
	for sh, idxs := range c.splitByShard(trips) {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			sub := make([]probe.Trip, len(idxs))
			for k, i := range idxs {
				sub[k] = trips[i]
			}
			for k, r := range run(sh, sub) {
				res[idxs[k]] = r
			}
		}(sh, idxs)
	}
	wg.Wait()
	return res
}

// ProcessTrips ingests a batch without admission gating, fanning
// sub-batches to their home shards. The context rides the scatter into
// every shard's admission and stage runs.
func (c *Coordinator) ProcessTrips(ctx context.Context, trips []probe.Trip, workers int) []TripResult {
	return c.runSharded(trips, func(sh int, sub []probe.Trip) []TripResult {
		return c.shards[sh].ProcessTrips(ctx, sub, workers)
	})
}

// IngestBatch ingests a batch with per-shard admission: each home
// shard's sub-batch passes that shard's gate, so a saturated region
// sheds its own trips (ErrOverloaded) while the rest of the city keeps
// ingesting.
func (c *Coordinator) IngestBatch(ctx context.Context, trips []probe.Trip) []TripResult {
	return c.runSharded(trips, func(sh int, sub []probe.Trip) []TripResult {
		return c.shards[sh].IngestBatch(ctx, sub)
	})
}

// UploadBatch implements phone.BatchUploader over IngestBatch.
func (c *Coordinator) UploadBatch(ctx context.Context, trips []probe.Trip) []error {
	errs := make([]error, len(trips))
	for i, r := range c.IngestBatch(ctx, trips) {
		errs[i] = r.Err
	}
	return errs
}

// Stats sums the shards' counters. Each trip is counted by exactly one
// shard (its home), so the sum never double-counts.
func (c *Coordinator) Stats() Stats {
	var out Stats
	for _, b := range c.shards {
		s := b.Stats()
		out.add(s)
		out.BatchesShed += s.BatchesShed
		out.TripsShed += s.TripsShed
	}
	return out
}

// StageMetrics merges the shards' per-stage counters by stage name
// (stage.Merge), yielding one city-wide row per stage plus the summed
// admission pseudo-stage.
func (c *Coordinator) StageMetrics() []stage.Metrics {
	groups := make([][]stage.Metrics, len(c.shards))
	for i, b := range c.shards {
		groups[i] = b.StageMetrics()
	}
	return stage.Merge(groups...)
}

// Traffic fans in across shards and merges the snapshots. The scatter
// gives every segment exactly one owning estimator, so the union is
// disjoint and merge order cannot matter.
func (c *Coordinator) Traffic() map[road.SegmentID]traffic.Estimate {
	out := make(map[road.SegmentID]traffic.Estimate)
	for _, b := range c.shards {
		for sid, est := range b.Traffic() {
			out[sid] = est
		}
	}
	return out
}

// TrafficSegment reads one segment from its owning shard.
func (c *Coordinator) TrafficSegment(sid road.SegmentID) (traffic.Estimate, bool) {
	if sh, ok := c.part.SegmentShard(sid); ok {
		return c.shards[sh].TrafficSegment(sid)
	}
	return traffic.Estimate{}, false
}

// Advance drives every shard's estimator clock, keeping the shard
// watermarks in lockstep with a monolithic deployment's.
func (c *Coordinator) Advance(nowS float64) {
	for _, b := range c.shards {
		b.Advance(nowS)
	}
}

// mergedSource adapts the fan-in read path to arrival.TrafficSource, so
// route and arrival predictions see the city-wide map.
type mergedSource struct{ c *Coordinator }

func (s mergedSource) Get(sid road.SegmentID) (traffic.Estimate, bool) {
	return s.c.TrafficSegment(sid)
}

// RegionModel infers the §VI zone model over the merged snapshot.
func (c *Coordinator) RegionModel() (*region.Model, error) {
	return region.Infer(c.tdb.Network(), c.Traffic(), region.DefaultConfig())
}

// RouteStatuses digests the merged map into per-route travel times.
func (c *Coordinator) RouteStatuses(departS float64) ([]RouteStatus, error) {
	return routeStatuses(c.tdb, departS, mergedSource{c})
}

// PredictArrivals forecasts downstream ETAs from the merged map.
func (c *Coordinator) PredictArrivals(routeID transit.RouteID, fromIdx int, departS float64) ([]arrival.Prediction, error) {
	return predictArrivals(c.tdb, routeID, fromIdx, departS, mergedSource{c})
}

// AttachJournals gives each shard its own journal (one per shard, in
// shard order). Attach AFTER replay, as with Backend.AttachJournal.
func (c *Coordinator) AttachJournals(js []*Journal) error {
	if len(js) != len(c.shards) {
		return fmt.Errorf("server: %d journals for %d shards", len(js), len(c.shards))
	}
	for i, b := range c.shards {
		b.AttachJournal(js[i])
	}
	return nil
}

// registerObs projects the coordinator's partition footprint into the
// metrics registry: shard count plus per-shard route/stop/segment
// gauges, labeled consistently with the per-shard stage series.
func (c *Coordinator) registerObs(core *obs.Core) {
	if core == nil {
		return
	}
	reg := core.Registry
	reg.GaugeFunc("busprobe_shards", "Region shards behind the coordinator.",
		func() float64 { return float64(len(c.shards)) })
	for i := range c.shards {
		i := i
		sl := obs.Label{Name: "shard", Value: strconv.Itoa(i)}
		reg.GaugeFunc("busprobe_shard_routes", "Routes owned by the shard.",
			func() float64 { return float64(len(c.part.RoutesIn(i))) }, sl)
		reg.GaugeFunc("busprobe_shard_stops", "Stops owned by the shard.",
			func() float64 { return float64(c.part.StopsIn(i)) }, sl)
		reg.GaugeFunc("busprobe_shard_segments", "Road segments owned by the shard.",
			func() float64 { return float64(c.part.SegmentsIn(i)) }, sl)
	}
}

// ShardStatuses reports each shard's partition footprint and counters.
func (c *Coordinator) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, len(c.shards))
	for i, b := range c.shards {
		out[i] = ShardStatus{
			Shard:    i,
			Routes:   len(c.part.RoutesIn(i)),
			Stops:    c.part.StopsIn(i),
			Segments: c.part.SegmentsIn(i),
			Stats:    b.Stats(),
		}
	}
	return out
}
