// Package server implements the backend of the system (Fig. 4): trip
// ingestion (in-process and HTTP), the three-stage trajectory-mapping
// pipeline (per-sample matching → per-bus-stop clustering → per-trip
// mapping), traffic estimation over the mapped legs, and the query API
// serving the resulting traffic map.
package server

import (
	"fmt"
	"sync"

	"busprobe/internal/core/cluster"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/core/traffic"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/transit"
)

// Config bundles the backend's tunables, defaulting to the paper's
// deployed values.
type Config struct {
	// Scoring are the Smith–Waterman weights.
	Scoring fingerprint.Scoring
	// Gamma is the per-sample acceptance threshold.
	Gamma float64
	// Cluster are the Eq. 1 co-clustering constants.
	Cluster cluster.Params
	// Model is the Eq. 3 transit traffic model.
	Model traffic.Model
	// PeriodS is the traffic-map refresh period (T = 5 min).
	PeriodS float64
	// DriftVarPerS is the estimator's process-noise rate.
	DriftVarPerS float64
	// MinSpeedKmh / MaxSpeedKmh bound plausible leg observations;
	// out-of-range travel times are discarded as noise.
	MinSpeedKmh, MaxSpeedKmh float64
	// OnlineUpdate enables Fig. 4's online database path: confidently
	// mapped stop visits refresh that stop's fingerprint, letting the
	// database track radio-environment drift without re-surveying.
	OnlineUpdate bool
	// OnlineUpdateMinConf is the visit confidence required before its
	// samples may touch the database.
	OnlineUpdateMinConf float64
	// OnlineUpdateMinSamples is the minimum sample count of the visit's
	// cluster before an update is considered.
	OnlineUpdateMinSamples int
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Scoring:      fingerprint.DefaultScoring(),
		Gamma:        fingerprint.DefaultGamma,
		Cluster:      cluster.DefaultParams(),
		Model:        traffic.DefaultModel(),
		PeriodS:      traffic.DefaultPeriodS,
		DriftVarPerS: traffic.DefaultDriftVarPerS,
		MinSpeedKmh:  2,
		MaxSpeedKmh:  90,

		OnlineUpdate:           false, // opt in; offline survey is authoritative by default
		OnlineUpdateMinConf:    0.9,
		OnlineUpdateMinSamples: 3,
	}
}

// Stats counts the backend's work.
type Stats struct {
	TripsReceived    int
	TripsRejected    int
	DuplicateTrips   int
	SamplesReceived  int
	SamplesMatched   int
	SamplesDiscarded int
	Clusters         int
	VisitsMapped     int
	Observations     int
	ObsDiscarded     int
}

// ProcessedTrip reports how one trip moved through the pipeline.
type ProcessedTrip struct {
	TripID       string
	Samples      int
	Matched      int
	Clusters     int
	Visits       []VisitRecord
	Observations int
}

// VisitRecord is one resolved stop visit of a processed trip.
type VisitRecord struct {
	Stop       transit.StopID
	ArriveS    float64
	DepartS    float64
	Confidence float64
}

// Backend is the traffic-monitoring server core. It implements
// phone.Uploader for in-process deployments; the HTTP layer wraps it for
// networked ones. Safe for concurrent use.
type Backend struct {
	cfg     Config
	transit *transit.DB
	fpdb    *fingerprint.DB
	est     *traffic.Estimator

	mu      sync.Mutex
	seen    map[string]bool
	stats   Stats
	journal *Journal
}

// NewBackend assembles a backend over the transit database and the
// pre-built stop fingerprint database.
func NewBackend(cfg Config, tdb *transit.DB, fpdb *fingerprint.DB) (*Backend, error) {
	if tdb == nil || fpdb == nil {
		return nil, fmt.Errorf("server: nil transit or fingerprint DB")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.MinSpeedKmh <= 0 || cfg.MaxSpeedKmh <= cfg.MinSpeedKmh {
		return nil, fmt.Errorf("server: bad speed bounds [%v, %v]", cfg.MinSpeedKmh, cfg.MaxSpeedKmh)
	}
	est, err := traffic.NewEstimator(cfg.Model, cfg.PeriodS, cfg.DriftVarPerS)
	if err != nil {
		return nil, err
	}
	return &Backend{
		cfg:     cfg,
		transit: tdb,
		fpdb:    fpdb,
		est:     est,
		seen:    make(map[string]bool),
	}, nil
}

// Config returns the backend configuration.
func (b *Backend) Config() Config { return b.cfg }

// Transit returns the transit database.
func (b *Backend) Transit() *transit.DB { return b.transit }

// FingerprintDB returns the stop fingerprint database.
func (b *Backend) FingerprintDB() *fingerprint.DB { return b.fpdb }

// Stats returns a snapshot of the work counters.
func (b *Backend) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Upload implements phone.Uploader: validate, deduplicate, process.
func (b *Backend) Upload(trip probe.Trip) error {
	_, err := b.ProcessTrip(trip)
	return err
}

// ProcessTrip runs one trip through the full pipeline and folds its
// observations into the traffic estimator.
func (b *Backend) ProcessTrip(trip probe.Trip) (ProcessedTrip, error) {
	b.mu.Lock()
	b.stats.TripsReceived++
	if err := trip.Validate(); err != nil {
		b.stats.TripsRejected++
		b.mu.Unlock()
		return ProcessedTrip{}, fmt.Errorf("server: rejecting upload: %w", err)
	}
	if b.seen[trip.ID] {
		b.stats.DuplicateTrips++
		b.mu.Unlock()
		return ProcessedTrip{}, fmt.Errorf("server: duplicate trip %s", trip.ID)
	}
	b.seen[trip.ID] = true
	b.stats.SamplesReceived += len(trip.Samples)
	journal := b.journal
	b.mu.Unlock()

	// Persist accepted uploads before processing; a journaling failure
	// fails the upload so the client retries rather than silently
	// losing durability.
	if journal != nil {
		if err := journal.Append(trip); err != nil {
			return ProcessedTrip{}, err
		}
	}

	out := ProcessedTrip{TripID: trip.ID, Samples: len(trip.Samples)}

	// Stage 1: per-sample matching with the γ filter.
	var elems []cluster.Element
	for _, s := range trip.Samples {
		m, ok := b.fpdb.Match(s.Fingerprint())
		if !ok {
			continue
		}
		elems = append(elems, cluster.Element{TimeS: s.TimeS, Stop: m.Stop, Score: m.Score})
	}
	out.Matched = len(elems)

	b.mu.Lock()
	b.stats.SamplesMatched += len(elems)
	b.stats.SamplesDiscarded += len(trip.Samples) - len(elems)
	b.mu.Unlock()

	if len(elems) == 0 {
		return out, nil
	}

	// Stage 2: per-bus-stop clustering.
	clusters, err := cluster.Sequence(elems, b.cfg.Cluster)
	if err != nil {
		return out, err
	}
	out.Clusters = len(clusters)

	// Stage 3: per-trip ML mapping under route constraints.
	mapped, err := tripResolve(clusters, b.transit)
	if err != nil {
		return out, err
	}
	for _, v := range mapped {
		out.Visits = append(out.Visits, VisitRecord(v))
	}

	// Fig. 4's online database path: high-confidence visits refresh
	// their stop's fingerprint.
	if b.cfg.OnlineUpdate {
		b.onlineUpdate(trip, clusters, mapped)
	}

	// Stage 4: leg travel times → traffic observations.
	obs, discarded := b.observations(mapped)
	for _, o := range obs {
		if err := b.est.AddObservation(o); err != nil {
			discarded++
			continue
		}
		out.Observations++
	}

	b.mu.Lock()
	b.stats.Clusters += len(clusters)
	b.stats.VisitsMapped += len(mapped)
	b.stats.Observations += out.Observations
	b.stats.ObsDiscarded += discarded
	b.mu.Unlock()
	return out, nil
}

// onlineUpdate refreshes stop fingerprints from confidently mapped
// visits: the visit's raw samples plus the stored fingerprint form a
// pool and the medoid wins, so a drifting radio environment (tower swap,
// re-planned cells) gradually replaces the survey without losing it to
// one noisy trip.
func (b *Backend) onlineUpdate(trip probe.Trip, clusters []cluster.Cluster, mapped []visit) {
	// Fingerprints by sample timestamp (duplicate timestamps queue).
	byTime := make(map[float64][]cellularFP, len(trip.Samples))
	for _, s := range trip.Samples {
		byTime[s.TimeS] = append(byTime[s.TimeS], s.Fingerprint())
	}
	take := func(t float64) (cellularFP, bool) {
		q := byTime[t]
		if len(q) == 0 {
			return nil, false
		}
		fp := q[0]
		byTime[t] = q[1:]
		return fp, true
	}
	for i, v := range mapped {
		if i >= len(clusters) {
			break
		}
		c := clusters[i]
		if v.Confidence < b.cfg.OnlineUpdateMinConf || len(c.Elements) < b.cfg.OnlineUpdateMinSamples {
			continue
		}
		var pool []cellularFP
		for _, e := range c.Elements {
			if fp, ok := take(e.TimeS); ok {
				pool = append(pool, fp)
			}
		}
		if len(pool) < b.cfg.OnlineUpdateMinSamples {
			continue
		}
		if cur, ok := b.fpdb.Get(v.Stop); ok {
			pool = append(pool, cur)
		}
		// Best-effort: a failed update never fails the trip.
		_ = b.fpdb.PutFromSamples(v.Stop, pool)
	}
}

// AttachJournal makes the backend append every accepted trip to the
// journal. Attach AFTER ReplayJournal, or replayed trips would be
// re-journaled.
func (b *Backend) AttachJournal(j *Journal) {
	b.mu.Lock()
	b.journal = j
	b.mu.Unlock()
}

// Advance drives the estimator's periodic refresh from the caller's
// clock.
func (b *Backend) Advance(nowS float64) { b.est.Advance(nowS) }

// Traffic returns the current fused estimate per covered road segment.
func (b *Backend) Traffic() map[road.SegmentID]traffic.Estimate {
	return b.est.Snapshot()
}

// Estimator exposes the underlying traffic estimator (read-mostly; used
// by evaluations).
func (b *Backend) Estimator() *traffic.Estimator { return b.est }
