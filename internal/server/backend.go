// Package server implements the backend of the system (Fig. 4): trip
// ingestion (in-process and HTTP, serial and concurrent batch), the
// stage-oriented trajectory-mapping pipeline (per-sample matching →
// per-bus-stop clustering → per-trip mapping → observation extraction
// → estimation, see internal/server/stage), traffic estimation over
// the mapped legs, and the query API serving the resulting traffic
// map.
package server

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"busprobe/internal/obs"

	"busprobe/internal/core/cluster"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/core/traffic"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/server/stage"
	"busprobe/internal/transit"
)

// Sentinel upload-rejection errors. The HTTP layer maps them to status
// codes (400 / 409 / 429); in-process callers distinguish them with
// errors.Is instead of string matching. Each wraps the transport-neutral
// probe sentinel, so phone-side retry policy can classify rejections
// without importing this package.
var (
	// ErrInvalidTrip marks uploads failing probe.Trip validation.
	ErrInvalidTrip = fmt.Errorf("server: %w", probe.ErrInvalidTrip)
	// ErrDuplicateTrip marks re-uploads of an already-ingested trip ID.
	ErrDuplicateTrip = fmt.Errorf("server: %w", probe.ErrDuplicateTrip)
	// ErrOverloaded marks uploads shed by the admission gate.
	ErrOverloaded = fmt.Errorf("server: %w", probe.ErrOverloaded)
)

// Config bundles the backend's tunables, defaulting to the paper's
// deployed values.
type Config struct {
	// Scoring are the Smith–Waterman weights.
	Scoring fingerprint.Scoring
	// Gamma is the per-sample acceptance threshold.
	Gamma float64
	// Cluster are the Eq. 1 co-clustering constants.
	Cluster cluster.Params
	// Model is the Eq. 3 transit traffic model.
	Model traffic.Model
	// PeriodS is the traffic-map refresh period (T = 5 min).
	PeriodS float64
	// DriftVarPerS is the estimator's process-noise rate.
	DriftVarPerS float64
	// MinSpeedKmh / MaxSpeedKmh bound plausible leg observations;
	// out-of-range travel times are discarded as noise.
	MinSpeedKmh, MaxSpeedKmh float64
	// IngestWorkers caps the goroutines a batch ingest (ProcessTrips /
	// UploadBatch) fans the CPU-bound stages across. <= 0 uses
	// GOMAXPROCS.
	IngestWorkers int
	// MaxInflightBatches bounds concurrently admitted batch ingests;
	// beyond it the admission gate sheds the batch (HTTP 429 with
	// Retry-After). 0 disables shedding.
	MaxInflightBatches int
	// RequestTimeoutS bounds each HTTP request's handling time; slow
	// requests get 503. 0 disables the per-request timeout.
	RequestTimeoutS float64
	// Obs, when non-nil, is the unified observability core: backend
	// counters and per-stage durations register into its metrics
	// registry, and every stage run of a traced trip emits a span. Nil
	// disables observability at zero cost. A standalone Backend
	// registers itself as shard "0"; a Coordinator re-registers each
	// shard under its own label instead.
	Obs *obs.Core
	// StageHook, when non-nil, observes every pipeline stage run
	// (counters + duration). It must be safe for concurrent use.
	StageHook stage.Hook
	// OnlineUpdate enables Fig. 4's online database path: confidently
	// mapped stop visits refresh that stop's fingerprint, letting the
	// database track radio-environment drift without re-surveying.
	OnlineUpdate bool
	// OnlineUpdateMinConf is the visit confidence required before its
	// samples may touch the database.
	OnlineUpdateMinConf float64
	// OnlineUpdateMinSamples is the minimum sample count of the visit's
	// cluster before an update is considered.
	OnlineUpdateMinSamples int
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Scoring:      fingerprint.DefaultScoring(),
		Gamma:        fingerprint.DefaultGamma,
		Cluster:      cluster.DefaultParams(),
		Model:        traffic.DefaultModel(),
		PeriodS:      traffic.DefaultPeriodS,
		DriftVarPerS: traffic.DefaultDriftVarPerS,
		MinSpeedKmh:  2,
		MaxSpeedKmh:  90,

		OnlineUpdate:           false, // opt in; offline survey is authoritative by default
		OnlineUpdateMinConf:    0.9,
		OnlineUpdateMinSamples: 3,
	}
}

// Stats counts the backend's work.
type Stats struct {
	TripsReceived    int
	TripsRejected    int
	DuplicateTrips   int
	SamplesReceived  int
	SamplesMatched   int
	SamplesDiscarded int
	Clusters         int
	VisitsMapped     int
	Observations     int
	ObsDiscarded     int
	// BatchesShed / TripsShed count batch uploads (and the trips they
	// carried) refused by the admission gate under load.
	BatchesShed int
	TripsShed   int
}

// add accumulates a per-trip counter delta.
func (s *Stats) add(d Stats) {
	s.TripsReceived += d.TripsReceived
	s.TripsRejected += d.TripsRejected
	s.DuplicateTrips += d.DuplicateTrips
	s.SamplesReceived += d.SamplesReceived
	s.SamplesMatched += d.SamplesMatched
	s.SamplesDiscarded += d.SamplesDiscarded
	s.Clusters += d.Clusters
	s.VisitsMapped += d.VisitsMapped
	s.Observations += d.Observations
	s.ObsDiscarded += d.ObsDiscarded
}

// ProcessedTrip reports how one trip moved through the pipeline.
type ProcessedTrip struct {
	TripID       string
	Samples      int
	Matched      int
	Clusters     int
	Visits       []VisitRecord
	Observations int
}

// VisitRecord is one resolved stop visit of a processed trip.
type VisitRecord struct {
	Stop       transit.StopID
	ArriveS    float64
	DepartS    float64
	Confidence float64
}

// Backend is the traffic-monitoring server core. It implements
// phone.Uploader (and phone.BatchUploader) for in-process deployments;
// the HTTP layer wraps it for networked ones. Safe for concurrent use.
type Backend struct {
	cfg     Config
	transit *transit.DB
	fpdb    *fingerprint.DB
	est     *traffic.Estimator
	pipe    *stage.Pipeline

	// The backend's mutable state is split across independent locks so
	// ingestion never serializes against query traffic: dedupMu guards
	// the duplicate-suppression set and the trip log handle, statsMu
	// guards the work counters, and the estimator and fingerprint DB
	// carry their own internal synchronization.
	dedupMu sync.Mutex
	seen    map[string]bool //lint:guardedby dedupMu
	journal TripLog         //lint:guardedby dedupMu

	// checkpointMu is the checkpoint consistency cut: every trip holds
	// the read side across admission (log append) AND fold, so under the
	// write side no trip can be on one side of a segment boundary with
	// its estimator effect on the other. Received cross-shard scatters
	// take scatterMu instead (Checkpoint holds both; FoldScatter must
	// never block on checkpointMu or two shards checkpointing while
	// scattering to each other would deadlock).
	checkpointMu sync.RWMutex

	statsMu sync.Mutex
	stats   Stats //lint:guardedby statsMu

	// gate bounds concurrently admitted batch ingests (nil = unbounded);
	// admission holds the per-stage-style counters for /v1/pipeline.
	gate      chan struct{}
	admission stage.Metrics //lint:guardedby statsMu

	// Scatter topology, set before any ingestion (by a Coordinator or a
	// shard process) and read-only afterwards. obsOwner names the shard
	// index owning an observation's road segments; shardIdx is this
	// backend's own index. Observations owned elsewhere are handed to
	// obsScatter as one group per owner under a deterministic
	// idempotency key, so a trip whose best-matching route lives on
	// another shard still folds into the city-wide map exactly once —
	// even when the scatter crosses a wire and gets retried. A nil
	// obsOwner folds everything locally (monolithic deployment).
	shardIdx   int
	obsOwner   func(traffic.Observation) (int, bool)
	obsScatter func(ctx context.Context, owner int, key string, obs []traffic.Observation) (stage.EstimateOutput, error)

	// scatterMu guards scatterSeen — the idempotency record of cross-
	// shard scatter groups folded into THIS backend's estimator — and
	// scatterLog, the store these received groups persist to. A group's
	// key is derived from (trip ID, owner shard), so a retried scatter
	// RPC — or a peer replaying its log after a restart — returns the
	// recorded outcome instead of double-counting reports. FoldScatter
	// holds scatterMu across dup-check → append → fold → record, making
	// the group's durability and its estimator effect atomic against a
	// checkpoint (which seals and exports under the same lock).
	scatterMu   sync.Mutex
	scatterSeen map[string]stage.EstimateOutput //lint:guardedby scatterMu
	scatterLog  *StoreLog                       //lint:guardedby scatterMu

	// scatterPending records cross-shard groups THIS backend computed
	// whose delivery to their owner failed: key → (owner, group). They
	// are retried before every checkpoint export and after recovery,
	// and the still-undelivered remainder rides inside the snapshot
	// state (PersistentState.Pending) — once a checkpoint covers the
	// originating trip's record, compaction may delete the only other
	// copy, so without this record a transient peer outage would turn
	// into a permanently missing fold.
	scatterPending map[string]pendingScatter //lint:guardedby scatterMu

	// obsCore / obsShard are set by RegisterObs (before any ingestion,
	// read-only afterwards): the observability core this backend reports
	// into and the shard label its series carry.
	obsCore  *obs.Core
	obsShard string
}

// NewBackend assembles a backend over the transit database and the
// pre-built stop fingerprint database.
func NewBackend(cfg Config, tdb *transit.DB, fpdb *fingerprint.DB) (*Backend, error) {
	if tdb == nil || fpdb == nil {
		return nil, fmt.Errorf("server: nil transit or fingerprint DB")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.MinSpeedKmh <= 0 || cfg.MaxSpeedKmh <= cfg.MinSpeedKmh {
		return nil, fmt.Errorf("server: bad speed bounds [%v, %v]", cfg.MinSpeedKmh, cfg.MaxSpeedKmh)
	}
	if cfg.MaxInflightBatches < 0 {
		return nil, fmt.Errorf("server: negative max inflight batches %d", cfg.MaxInflightBatches)
	}
	if cfg.RequestTimeoutS < 0 {
		return nil, fmt.Errorf("server: negative request timeout %v", cfg.RequestTimeoutS)
	}
	est, err := traffic.NewEstimator(cfg.Model, cfg.PeriodS, cfg.DriftVarPerS)
	if err != nil {
		return nil, err
	}
	var gate chan struct{}
	if cfg.MaxInflightBatches > 0 {
		gate = make(chan struct{}, cfg.MaxInflightBatches)
	}
	b := &Backend{
		gate:      gate,
		admission: stage.Metrics{Stage: "admission"},
		cfg:       cfg,
		transit:   tdb,
		fpdb:      fpdb,
		est:       est,
		pipe: stage.New(fpdb, tdb, est, stage.Config{
			Cluster:     cfg.Cluster,
			MinSpeedKmh: cfg.MinSpeedKmh,
			MaxSpeedKmh: cfg.MaxSpeedKmh,
			Hook:        cfg.StageHook,
		}),
		seen:           make(map[string]bool),
		scatterSeen:    make(map[string]stage.EstimateOutput),
		scatterPending: make(map[string]pendingScatter),
	}
	if cfg.Obs != nil {
		b.RegisterObs(cfg.Obs, "0")
	}
	return b, nil
}

// Config returns the backend configuration.
func (b *Backend) Config() Config { return b.cfg }

// Transit returns the transit database.
func (b *Backend) Transit() *transit.DB { return b.transit }

// FingerprintDB returns the stop fingerprint database.
func (b *Backend) FingerprintDB() *fingerprint.DB { return b.fpdb }

// Pipeline exposes the stage components (read-mostly; used by
// evaluations and instrumentation).
func (b *Backend) Pipeline() *stage.Pipeline { return b.pipe }

// StageMetrics snapshots the per-stage instrumentation counters in
// pipeline order, with the batch admission gate appended as a
// pseudo-stage (runs = gate decisions, items in = trips offered, items
// out = trips admitted, dropped = trips shed).
func (b *Backend) StageMetrics() []stage.Metrics {
	ms := b.pipe.Metrics()
	b.statsMu.Lock()
	adm := b.admission
	b.statsMu.Unlock()
	return append(ms, adm)
}

// AdmitBatch asks the admission gate for a slot for a batch of n trips.
// On success, the caller must invoke the returned release exactly once
// when the ingest finishes. A saturated gate sheds the batch: ok is
// false and the shed counters are updated.
func (b *Backend) AdmitBatch(n int) (release func(), ok bool) {
	if b.gate == nil {
		b.statsMu.Lock()
		b.admission.Runs++
		b.admission.ItemsIn += int64(n)
		b.admission.ItemsOut += int64(n)
		b.statsMu.Unlock()
		return func() {}, true
	}
	select {
	case b.gate <- struct{}{}:
		b.statsMu.Lock()
		b.admission.Runs++
		b.admission.ItemsIn += int64(n)
		b.admission.ItemsOut += int64(n)
		b.statsMu.Unlock()
		return func() { <-b.gate }, true
	default:
		b.statsMu.Lock()
		b.admission.Runs++
		b.admission.ItemsIn += int64(n)
		b.admission.Dropped += int64(n)
		b.stats.BatchesShed++
		b.stats.TripsShed += n
		b.statsMu.Unlock()
		return nil, false
	}
}

// Stats returns a snapshot of the work counters. Counters are applied
// in one critical section per trip, so a snapshot never shows a
// half-processed trip.
func (b *Backend) Stats() Stats {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return b.stats
}

// Upload implements phone.Uploader: validate, deduplicate, process.
func (b *Backend) Upload(ctx context.Context, trip probe.Trip) error {
	_, err := b.ProcessTrip(ctx, trip)
	return err
}

// ProcessTrip runs one trip through the full stage pipeline and folds
// its observations into the traffic estimator. It is a thin
// composition over the pipeline phases: admission (validate, dedup,
// journal), the CPU-bound stage computation, and the ordered fold
// (estimation + counters). The context bounds admission and carries
// the trip's trace: when observability is on, a trip arriving without
// a trace ID gets its deterministic one (obs.TripTrace), and the whole
// run is bracketed by a "trip" span after the per-stage spans.
func (b *Backend) ProcessTrip(ctx context.Context, trip probe.Trip) (ProcessedTrip, error) {
	// Hold the checkpoint cut's read side across admit→fold so a
	// checkpoint never splits this trip's log record from its estimator
	// effect. The batch path takes the same lock once per batch and
	// calls processTrip directly.
	b.checkpointMu.RLock()
	defer b.checkpointMu.RUnlock()
	return b.processTrip(ctx, trip)
}

// processTrip is ProcessTrip without the checkpoint read lock; callers
// must hold it.
func (b *Backend) processTrip(ctx context.Context, trip probe.Trip) (ProcessedTrip, error) {
	ctx = b.tripCtx(ctx, trip)
	span := b.startSpan()
	if err := b.admit(ctx, trip); err != nil {
		return ProcessedTrip{}, err
	}
	w := b.compute(ctx, trip)
	b.fold(ctx, &w)
	b.endSpan(ctx, span, "trip", obs.Attr{Key: "trip", Value: trip.ID})
	return w.out, w.err
}

// tripCtx guarantees a traced context for one trip when observability
// is on; with it off, the context passes through untouched.
func (b *Backend) tripCtx(ctx context.Context, trip probe.Trip) context.Context {
	if b.obsCore == nil {
		return ctx
	}
	return obs.EnsureTrip(ctx, trip.ID)
}

// admit validates, deduplicates, and journals one upload. It takes
// only the dedup lock, so admission never contends with stats readers
// or estimator queries. Rejection counters are applied in a single
// critical section, keeping Stats() trip-atomic.
func (b *Backend) admit(ctx context.Context, trip probe.Trip) error {
	if err := ctx.Err(); err != nil {
		// The caller is gone; do not take the trip (it was never
		// acknowledged, so the phone's retry layer still owns it).
		return err
	}
	if err := trip.Validate(); err != nil {
		b.statsMu.Lock()
		b.stats.TripsReceived++
		b.stats.TripsRejected++
		b.statsMu.Unlock()
		return fmt.Errorf("%w: %v", ErrInvalidTrip, err)
	}
	b.dedupMu.Lock()
	dup := b.seen[trip.ID]
	if !dup {
		b.seen[trip.ID] = true
	}
	journal := b.journal
	b.dedupMu.Unlock()
	if dup {
		b.statsMu.Lock()
		b.stats.TripsReceived++
		b.stats.DuplicateTrips++
		b.statsMu.Unlock()
		return fmt.Errorf("%w %s", ErrDuplicateTrip, trip.ID)
	}
	// Persist accepted uploads before processing; a journaling failure
	// fails the upload so the client retries rather than silently
	// losing durability.
	if journal != nil {
		if err := journal.Append(ctx, trip); err != nil {
			// The trip never became durable: un-mark it so the client's
			// retry is admitted. A phantom ID here would reject the
			// retry as a duplicate for the backend's lifetime — and a
			// snapshot would persist the phantom across restarts,
			// losing the trip forever. Still under checkpointMu's read
			// side, so no checkpoint can export between mark and unmark.
			b.dedupMu.Lock()
			delete(b.seen, trip.ID)
			b.dedupMu.Unlock()
			return err
		}
	}
	return nil
}

// tripWork carries one admitted trip's pipeline products between the
// (possibly concurrent) compute phase and the ordered fold phase.
type tripWork struct {
	out          ProcessedTrip
	obs          []traffic.Observation
	obsDiscarded int
	delta        Stats
	err          error
}

// compute runs the CPU-bound stages — matching, clustering, mapping,
// observation extraction — for one admitted trip. It touches no
// backend-wide mutable state except the fingerprint DB (internally
// synchronized, and written only on the opt-in online-update path), so
// any number of computes may run concurrently.
func (b *Backend) compute(ctx context.Context, trip probe.Trip) tripWork {
	w := tripWork{out: ProcessedTrip{TripID: trip.ID, Samples: len(trip.Samples)}}
	w.delta.TripsReceived = 1
	w.delta.SamplesReceived = len(trip.Samples)

	// Stage 1: per-sample matching with the γ filter.
	m := b.pipe.Match.Run(ctx, stage.MatchInput{Samples: trip.Samples})
	w.out.Matched = len(m.Elements)
	w.delta.SamplesMatched = len(m.Elements)
	w.delta.SamplesDiscarded = m.Discarded
	if len(m.Elements) == 0 {
		return w
	}

	// Stage 2: per-bus-stop clustering.
	cl, err := b.pipe.Cluster.Run(ctx, stage.ClusterInput{Elements: m.Elements})
	if err != nil {
		w.err = err
		return w
	}
	w.out.Clusters = len(cl.Clusters)

	// Stage 3: per-trip ML mapping under route constraints.
	mp, err := b.pipe.Map.Run(ctx, stage.MapInput{Clusters: cl.Clusters})
	if err != nil {
		w.err = err
		return w
	}
	for _, v := range mp.Visits {
		w.out.Visits = append(w.out.Visits, VisitRecord(v))
	}

	// Fig. 4's online database path: high-confidence visits refresh
	// their stop's fingerprint.
	if b.cfg.OnlineUpdate {
		b.onlineUpdate(trip, cl.Clusters, mp.Visits)
	}

	// Stage 4: leg travel times → traffic observations.
	ex := b.pipe.Extract.Run(ctx, stage.ExtractInput{Visits: mp.Visits})
	w.obs = ex.Observations
	w.obsDiscarded = ex.Discarded
	w.delta.Clusters = len(cl.Clusters)
	w.delta.VisitsMapped = len(mp.Visits)
	return w
}

// fold applies one computed trip's effects: stage 5 (estimator
// updates), then the whole trip's counters in a single critical
// section. The batch path calls fold in input order, so batch results
// are identical to serial ingestion.
func (b *Backend) fold(ctx context.Context, w *tripWork) {
	if w.err == nil {
		var folded, discarded int
		if b.obsOwner == nil {
			est := b.pipe.Estimate.Run(ctx, stage.EstimateInput{Observations: w.obs})
			folded, discarded = est.Folded, est.Discarded
		} else {
			// Sharded scatter: group the trip's observations by owning
			// shard (first-appearance order) and fold each group on its
			// owner, so every segment's report multiset lives in exactly
			// one estimator and the fan-in merge stays exact. Groups
			// owned by this backend (or by no shard) fold locally; the
			// rest travel through obsScatter under a deterministic key,
			// making a retried or replayed scatter fold-once.
			var owners []int
			byOwner := make(map[int][]traffic.Observation)
			for _, o := range w.obs {
				owner, ok := b.obsOwner(o)
				if !ok {
					owner = b.shardIdx
				}
				if _, seen := byOwner[owner]; !seen {
					owners = append(owners, owner)
				}
				byOwner[owner] = append(byOwner[owner], o)
			}
			for _, owner := range owners {
				var est stage.EstimateOutput
				if owner == b.shardIdx {
					est = b.pipe.Estimate.Run(ctx, stage.EstimateInput{Observations: byOwner[owner]})
				} else {
					key := scatterKey(w.out.TripID, owner)
					var err error
					est, err = b.obsScatter(ctx, owner, key, byOwner[owner])
					if err != nil {
						// The owner is unreachable: the trip is already
						// admitted and journaled, so its remaining
						// groups keep folding and the failure surfaces
						// to the caller. The lost group is not gone —
						// log replay re-scatters it under the same key,
						// and for the day a checkpoint covers the
						// trip's record (compaction then deletes it)
						// the group is remembered as pending: retried
						// before every export and carried inside the
						// snapshot until the owner acknowledges it. The
						// owner's idempotency record keeps folded
						// groups from doubling either way.
						b.notePendingScatter(key, owner, byOwner[owner])
						w.err = fmt.Errorf("server: scatter to shard %d: %w", owner, err)
						continue
					}
					b.resolvePendingScatter(key)
				}
				folded += est.Folded
				discarded += est.Discarded
			}
		}
		w.out.Observations = folded
		w.delta.Observations = folded
		w.delta.ObsDiscarded = w.obsDiscarded + discarded
	}
	b.statsMu.Lock()
	b.stats.add(w.delta)
	b.statsMu.Unlock()
}

// scatterKey derives the idempotency key of one trip's observation
// group bound for one owner shard. A trip has exactly one home shard
// and at most one group per owner, so (trip ID, owner) names the group
// uniquely — and deterministically across retries and journal replays.
func scatterKey(tripID string, owner int) string {
	return tripID + "#" + strconv.Itoa(owner)
}

// pendingScatter is one cross-shard observation group awaiting
// re-delivery to its owner shard.
type pendingScatter struct {
	owner int
	obs   []traffic.Observation
}

// notePendingScatter remembers a group whose delivery failed, keyed by
// its idempotency key, for retry (RetryPendingScatters) and snapshot
// export.
func (b *Backend) notePendingScatter(key string, owner int, group []traffic.Observation) {
	b.scatterMu.Lock()
	b.scatterPending[key] = pendingScatter{owner: owner, obs: group}
	b.scatterMu.Unlock()
}

// resolvePendingScatter drops a delivered group's pending entry, if
// any — a replayed trip may re-scatter a group an imported snapshot
// still lists as pending.
func (b *Backend) resolvePendingScatter(key string) {
	b.scatterMu.Lock()
	delete(b.scatterPending, key)
	b.scatterMu.Unlock()
}

// RetryPendingScatters re-delivers cross-shard observation groups
// whose earlier delivery failed, in key order. A delivered group
// leaves the pending set and its fold lands in the stats — the
// original fold never counted it, and if the owner had in fact folded
// the "lost" delivery, its idempotency record returns that recorded
// outcome instead of doubling. A failing delivery keeps its entry for
// the next retry; entries also ride inside snapshots
// (PersistentState.Pending), so a group whose originating trip record
// has been compacted away still reaches its owner after a restart.
// Returns the number of groups still pending.
func (b *Backend) RetryPendingScatters(ctx context.Context) int {
	b.scatterMu.Lock()
	pend := make(map[string]pendingScatter, len(b.scatterPending))
	for k, p := range b.scatterPending {
		pend[k] = p
	}
	b.scatterMu.Unlock()
	if len(pend) == 0 || b.obsScatter == nil {
		return len(pend)
	}
	keys := make([]string, 0, len(pend))
	for k := range pend {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	remaining := 0
	for _, key := range keys {
		p := pend[key]
		out, err := b.obsScatter(ctx, p.owner, key, p.obs)
		if err != nil {
			remaining++
			continue
		}
		b.resolvePendingScatter(key)
		b.statsMu.Lock()
		b.stats.Observations += out.Folded
		b.stats.ObsDiscarded += out.Discarded
		b.statsMu.Unlock()
	}
	return remaining
}

// FoldScatter folds one cross-shard observation group into this
// backend's estimator, exactly once per idempotency key: a key already
// folded returns its recorded outcome without touching the estimator.
// Keys are retained for the backend's lifetime (the same order of
// growth as the trip dedup set); an empty key bypasses the record.
// With a store attached, the group is persisted (a "scatter" record in
// THIS shard's log) before folding — the originating trip lives in a
// peer's log, so without the local record a restart would lose the
// fold. An append failure aborts before the estimator is touched; the
// home shard's retry re-delivers under the same key. The whole
// sequence holds scatterMu, so a checkpoint (same lock) always cuts
// between whole groups.
func (b *Backend) FoldScatter(ctx context.Context, key string, obs []traffic.Observation) (stage.EstimateOutput, error) {
	return b.foldScatter(ctx, key, obs, true)
}

// foldScatterReplay refolds a scatter record read back from this
// shard's own log during recovery: same dedup and fold, no re-append.
func (b *Backend) foldScatterReplay(ctx context.Context, key string, obs []traffic.Observation) stage.EstimateOutput {
	out, _ := b.foldScatter(ctx, key, obs, false)
	return out
}

func (b *Backend) foldScatter(ctx context.Context, key string, obs []traffic.Observation, persist bool) (stage.EstimateOutput, error) {
	b.scatterMu.Lock()
	defer b.scatterMu.Unlock()
	if key != "" {
		if out, dup := b.scatterSeen[key]; dup {
			return out, nil
		}
	}
	if persist && b.scatterLog != nil && key != "" {
		if err := b.scatterLog.AppendScatter(ctx, key, obs); err != nil {
			return stage.EstimateOutput{}, err
		}
	}
	out := b.pipe.Estimate.Run(ctx, stage.EstimateInput{Observations: obs})
	if key != "" {
		b.scatterSeen[key] = out
	}
	return out, nil
}

// onlineUpdate refreshes stop fingerprints from confidently mapped
// visits: the visit's raw samples plus the stored fingerprint form a
// pool and the medoid wins, so a drifting radio environment (tower swap,
// re-planned cells) gradually replaces the survey without losing it to
// one noisy trip.
func (b *Backend) onlineUpdate(trip probe.Trip, clusters []cluster.Cluster, mapped []visit) {
	// Fingerprints by sample timestamp (duplicate timestamps queue).
	byTime := make(map[float64][]cellularFP, len(trip.Samples))
	for _, s := range trip.Samples {
		byTime[s.TimeS] = append(byTime[s.TimeS], s.Fingerprint())
	}
	take := func(t float64) (cellularFP, bool) {
		q := byTime[t]
		if len(q) == 0 {
			return nil, false
		}
		fp := q[0]
		byTime[t] = q[1:]
		return fp, true
	}
	for i, v := range mapped {
		if i >= len(clusters) {
			break
		}
		c := clusters[i]
		if v.Confidence < b.cfg.OnlineUpdateMinConf || len(c.Elements) < b.cfg.OnlineUpdateMinSamples {
			continue
		}
		var pool []cellularFP
		for _, e := range c.Elements {
			if fp, ok := take(e.TimeS); ok {
				pool = append(pool, fp)
			}
		}
		if len(pool) < b.cfg.OnlineUpdateMinSamples {
			continue
		}
		if cur, ok := b.fpdb.Get(v.Stop); ok {
			pool = append(pool, cur)
		}
		// Best-effort: a failed update never fails the trip.
		_ = b.fpdb.PutFromSamples(v.Stop, pool)
	}
}

// AttachJournal makes the backend append every accepted trip to the
// legacy single-file journal. Attach AFTER ReplayJournal, or replayed
// trips would be re-journaled. New deployments attach a store instead
// (AttachStore / RecoverBackendStore).
func (b *Backend) AttachJournal(j *Journal) {
	var l TripLog
	if j != nil {
		l = j
	}
	b.AttachTripLog(l)
}

// Advance drives the estimator's periodic refresh from the caller's
// clock.
func (b *Backend) Advance(nowS float64) { b.est.Advance(nowS) }

// Traffic returns the current fused estimate per covered road segment,
// as a mutable copy the caller owns — mutating it never corrupts the
// served snapshot. Lock-free (a pointer load plus the copy); hot read
// paths use TrafficSnapshot to skip the copy.
func (b *Backend) Traffic() map[road.SegmentID]traffic.Estimate {
	return b.est.Snapshot()
}

// TrafficSnapshot returns the estimator's current published snapshot:
// an immutable, versioned value served by a lock-free pointer load.
// Callers must not mutate its maps.
func (b *Backend) TrafficSnapshot() *traffic.Snapshot {
	return b.est.View()
}

// TrafficSegment returns one segment's fused estimate, if any.
// Lock-free.
func (b *Backend) TrafficSegment(sid road.SegmentID) (traffic.Estimate, bool) {
	return b.est.Get(sid)
}

// ShardStatuses reports the backend as a single all-owning shard, so the
// monolithic and sharded deployments share one observability surface.
func (b *Backend) ShardStatuses() []ShardStatus {
	return []ShardStatus{{
		Shard:     0,
		Addr:      LocalAddr,
		Healthy:   true,
		LastProbe: "ok",
		Routes:    b.transit.NumRoutes(),
		Stops:     b.transit.NumStops(),
		Segments:  b.transit.Network().NumSegments(),
		Stats:     b.Stats(),
	}}
}

// Estimator exposes the underlying traffic estimator (read-mostly; used
// by evaluations).
func (b *Backend) Estimator() *traffic.Estimator { return b.est }
