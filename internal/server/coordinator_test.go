package server

import (
	"busprobe/internal/clock"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"busprobe/internal/core/fingerprint"
	"busprobe/internal/faults"
	"busprobe/internal/probe"
	"busprobe/internal/sim"
)

// twinWorld builds the two-island city whose routes partition into two
// route-closed groups, plus its surveyed fingerprint DB — the reference
// fixture for multi-shard tests.
func twinWorld(t *testing.T) (*sim.World, *fingerprint.DB) {
	t.Helper()
	w, err := sim.TwinCityWorld(5)
	if err != nil {
		t.Fatal(err)
	}
	fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return w, fpdb
}

// twinCorpus records a twin-city campaign's upload stream, optionally
// fault-injected. Both islands must contribute trips, or a multi-shard
// test would silently degenerate to one shard.
func twinCorpus(t *testing.T, w *sim.World, fcfg faults.Config) []probe.Trip {
	t.Helper()
	cfg := sim.DefaultCampaignConfig()
	cfg.Days = 2
	cfg.Participants = 14
	cfg.Seed = 11
	cfg.Faults = fcfg
	trips, _, err := sim.RecordTrips(context.Background(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return trips
}

// replayInto feeds a corpus trip-by-trip, absorbing duplicate
// rejections (fault-injected corpora contain duplicates by design) and
// failing on anything else.
func replayInto(t *testing.T, sink TripProcessor, trips []probe.Trip) {
	t.Helper()
	for _, trip := range trips {
		if _, err := sink.ProcessTrip(context.Background(), trip); err != nil && !errors.Is(err, ErrDuplicateTrip) {
			t.Fatal(err)
		}
	}
}

func newTwinCoordinator(t *testing.T, w *sim.World, fpdb *fingerprint.DB, shards int) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(DefaultConfig(), w.Transit, fpdb, shards)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestShardEquivalence(t *testing.T) {
	// The tentpole acceptance bar: on the same campaign, a 4-shard
	// coordinator must produce a byte-identical /v1/traffic response to
	// a 1-shard coordinator and to the monolithic backend — with and
	// without fault injection (duplication, reordering, delay).
	w, fpdb := twinWorld(t)
	for _, tc := range []struct {
		name string
		fcfg faults.Config
	}{
		{"clean", faults.Config{}},
		{"faulted", faults.Config{Seed: 77, DupRate: 0.3, ReorderRate: 0.3, DelayRate: 0.1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			trips := twinCorpus(t, w, tc.fcfg)

			mono, err := NewBackend(DefaultConfig(), w.Transit, fpdb)
			if err != nil {
				t.Fatal(err)
			}
			one := newTwinCoordinator(t, w, fpdb, 1)
			four := newTwinCoordinator(t, w, fpdb, 4)
			replayInto(t, mono, trips)
			replayInto(t, one, trips)
			replayInto(t, four, trips)
			for _, api := range []API{mono, one, four} {
				api.Advance(3 * clock.DayS)
			}

			wantTraffic := trafficBytes(t, mono)
			if len(mono.Traffic()) == 0 {
				t.Fatal("campaign produced no estimates; equivalence is vacuous")
			}
			if got := trafficBytes(t, one); !bytes.Equal(got, wantTraffic) {
				t.Errorf("1-shard coordinator /v1/traffic differs from monolith")
			}
			if got := trafficBytes(t, four); !bytes.Equal(got, wantTraffic) {
				t.Errorf("4-shard coordinator /v1/traffic differs from monolith")
			}

			// The sharding must be real: both islands' shards ingested.
			busy := 0
			for _, st := range four.ShardStatuses() {
				if st.Stats.TripsReceived > 0 {
					busy++
				}
			}
			if busy < 2 {
				t.Fatalf("only %d shards received trips; twin-city corpus should span 2", busy)
			}

			// Aggregated counters match the monolith's exactly: every
			// trip and observation is counted by exactly one shard.
			if monoStats, fourStats := mono.Stats(), four.Stats(); monoStats != fourStats {
				t.Errorf("4-shard Stats() = %+v, monolith %+v", fourStats, monoStats)
			}

			// Merged stage metrics match on every counter except the
			// estimate stage's run count and timings: the scatter runs
			// that stage once per (trip, owner shard) group instead of
			// once per trip, but items in/out — the observations folded —
			// must agree.
			monoStages, fourStages := mono.StageMetrics(), four.StageMetrics()
			if len(monoStages) != len(fourStages) {
				t.Fatalf("stage row count %d vs %d", len(fourStages), len(monoStages))
			}
			for i, m := range monoStages {
				f := fourStages[i]
				if f.Stage != m.Stage {
					t.Fatalf("stage %d name %q vs %q", i, f.Stage, m.Stage)
				}
				m.DurationNs, f.DurationNs = 0, 0
				if m.Stage == "estimate" {
					m.Runs, f.Runs = 0, 0
				}
				if f != m {
					t.Errorf("stage %q merged metrics %+v, monolith %+v", m.Stage, f, m)
				}
			}
		})
	}
}

func TestShardForRoutesByIsland(t *testing.T) {
	// Every trip must land on the shard owning the stops it matched, and
	// the twin-city corpus must exercise at least two shards.
	w, fpdb := twinWorld(t)
	four := newTwinCoordinator(t, w, fpdb, 4)
	part := four.Partition()
	trips := twinCorpus(t, w, faults.Config{})
	seen := make(map[int]int)
	for _, trip := range trips {
		sh := four.ShardFor(trip)
		seen[sh]++
		// The contract: the first sample whose best match clears γ names
		// the home shard. (Later samples can disagree — a tower in the
		// gap between islands occasionally straddles both with a lucky
		// shadow-fade draw — but the first match is what routes.)
		want := 0
		for _, s := range trip.Samples {
			m, ok := fpdb.Match(s.Fingerprint())
			if !ok {
				continue
			}
			if ws, ok := part.StopShard(m.Stop); ok {
				want = ws
			}
			break
		}
		if sh != want {
			t.Fatalf("trip %s routed to shard %d, want %d (first matching sample)", trip.ID, sh, want)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("corpus exercised shards %v, want at least 2", seen)
	}
	// Deterministic: re-routing the same trips gives the same answers.
	for _, trip := range trips {
		if four.ShardFor(trip) != four.ShardFor(trip) {
			t.Fatal("ShardFor not deterministic")
		}
	}
}

func TestPerShardShedding(t *testing.T) {
	// Saturating one region's admission gate must shed that region's
	// trips with 429/ErrOverloaded while the other shard keeps
	// ingesting, and the aggregate counters must reflect the shed
	// without double counting.
	w, fpdb := twinWorld(t)
	cfg := DefaultConfig()
	cfg.MaxInflightBatches = 1
	coord, err := NewCoordinator(cfg, w.Transit, fpdb, 2)
	if err != nil {
		t.Fatal(err)
	}
	trips := twinCorpus(t, w, faults.Config{})
	byShard := make(map[int][]probe.Trip)
	for _, trip := range trips {
		sh := coord.ShardFor(trip)
		byShard[sh] = append(byShard[sh], trip)
	}
	if len(byShard[0]) == 0 || len(byShard[1]) == 0 {
		t.Fatalf("corpus does not span both shards: %d/%d", len(byShard[0]), len(byShard[1]))
	}

	// Occupy shard 0's only batch slot; shard 1's gate stays open.
	release, ok := coord.Shards()[0].AdmitBatch(0)
	if !ok {
		t.Fatal("could not occupy shard 0's gate")
	}

	mixed := append(append([]probe.Trip{}, byShard[0][0]), byShard[1]...)
	res := coord.IngestBatch(context.Background(), mixed)
	if !errors.Is(res[0].Err, ErrOverloaded) {
		t.Errorf("saturated shard's trip: err = %v, want ErrOverloaded", res[0].Err)
	}
	for i := 1; i < len(res); i++ {
		if errors.Is(res[i].Err, ErrOverloaded) {
			t.Errorf("healthy shard's trip %d shed", i)
		}
	}

	// Over HTTP: a mixed batch answers 200 with per-row codes...
	h := Handler(coord)
	body, _ := json.Marshal([]probe.Trip{byShard[0][1], byShard[1][0]})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/trips/batch", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("mixed batch status = %d, want 200", rec.Code)
	}
	var out BatchUploadResponseJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Code != "overloaded" {
		t.Errorf("row 0 code = %q, want overloaded", out.Results[0].Code)
	}
	if out.Results[1].Code == "overloaded" {
		t.Error("healthy shard's row shed over HTTP")
	}

	// ...and a batch aimed entirely at the saturated shard answers 429.
	body, _ = json.Marshal([]probe.Trip{byShard[0][2]})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/trips/batch", bytes.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated-shard batch status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	release()

	// Aggregation without double counting: coordinator totals are the
	// exact sums of the per-shard rows, and only shard 0 shed.
	statuses := coord.ShardStatuses()
	var shedBatches, shedTrips, received int
	for _, st := range statuses {
		shedBatches += st.Stats.BatchesShed
		shedTrips += st.Stats.TripsShed
		received += st.Stats.TripsReceived
	}
	agg := coord.Stats()
	if agg.BatchesShed != shedBatches || agg.TripsShed != shedTrips || agg.TripsReceived != received {
		t.Errorf("aggregate %+v does not sum per-shard rows (batches %d, trips %d, received %d)",
			agg, shedBatches, shedTrips, received)
	}
	if statuses[1].Stats.TripsShed != 0 {
		t.Errorf("healthy shard reports %d shed trips", statuses[1].Stats.TripsShed)
	}
	if agg.TripsShed == 0 || agg.BatchesShed == 0 {
		t.Errorf("nothing shed: %+v", agg)
	}

	// The merged /v1/pipeline admission row matches the aggregate too.
	rows := coord.StageMetrics()
	found := false
	for _, m := range rows {
		if m.Stage == "admission" {
			found = true
			if m.Dropped != int64(shedTrips) {
				t.Errorf("admission row dropped = %d, want %d", m.Dropped, shedTrips)
			}
		}
	}
	if !found {
		t.Error("no admission row in merged stage metrics")
	}

	// After release, the saturated shard ingests again.
	res = coord.IngestBatch(context.Background(), []probe.Trip{byShard[0][3]})
	if res[0].Err != nil {
		t.Errorf("post-release ingest failed: %v", res[0].Err)
	}
}

func TestCoordinatorJournalReplay(t *testing.T) {
	// Per-shard journals must rebuild the merged traffic map through the
	// coordinator replay path, surviving a corrupt line mid-file.
	w, fpdb := twinWorld(t)
	coord := newTwinCoordinator(t, w, fpdb, 2)
	dir := t.TempDir()
	paths := []string{dir + "/j.shard0", dir + "/j.shard1"}
	journals := make([]*Journal, 2)
	for i, p := range paths {
		j, err := OpenJournal(p)
		if err != nil {
			t.Fatal(err)
		}
		journals[i] = j
	}
	if err := coord.AttachJournals(journals); err != nil {
		t.Fatal(err)
	}
	if err := coord.AttachJournals(journals[:1]); err == nil {
		t.Error("AttachJournals accepted wrong journal count")
	}

	trips := twinCorpus(t, w, faults.Config{})
	replayInto(t, coord, trips)
	for _, j := range journals {
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	coord.Advance(3 * clock.DayS)
	want := trafficBytes(t, coord)
	if len(coord.Traffic()) == 0 {
		t.Fatal("no estimates before restart")
	}

	// "Restart" with a fresh coordinator, replaying every shard journal
	// through the coordinator (content-deterministic routing sends each
	// trip back to its home shard).
	rebuilt := newTwinCoordinator(t, w, fpdb, 2)
	var replayed, skipped int
	for _, p := range paths {
		r, s, err := ReplayJournal(context.Background(), p, rebuilt)
		if err != nil {
			t.Fatal(err)
		}
		replayed += r
		skipped += s
	}
	if replayed == 0 || skipped != 0 {
		t.Fatalf("replayed=%d skipped=%d", replayed, skipped)
	}
	rebuilt.Advance(3 * clock.DayS)
	if got := trafficBytes(t, rebuilt); !bytes.Equal(got, want) {
		t.Error("rebuilt coordinator traffic differs")
	}
}
