package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"busprobe/internal/core/traffic"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/server/stage"
)

// ErrShardUnavailable marks a shard process the coordinator could not
// reach (transport failure or unexpected status). The HTTP layer maps
// it to 502; the phone-side retry policy treats it like any other
// transient failure and retries with backoff.
var ErrShardUnavailable = fmt.Errorf("server: shard unavailable")

// scatterAttempts bounds one scatter's delivery tries. Scatter is the
// one call worth retrying inside the shard tier: the trip is already
// admitted and journaled on its home shard, so giving up turns a
// transient network blip into a trip failure, while the idempotency key
// makes the extra deliveries harmless.
const scatterAttempts = 3

// RemoteShard speaks the shard wire protocol to one shard process. It
// implements Shard, so a Coordinator dispatches to it exactly as it
// does to an in-process backend; contexts ride the hop (cancellation
// and the X-Busprobe-Trace header, via Client.post).
type RemoteShard struct {
	cli *Client
	// retrySleep pauses before scatter attempt n (n ≥ 1), returning
	// early with the context's error if the caller gives up. Injectable
	// so tests retry without real delays.
	retrySleep func(ctx context.Context, attempt int) error

	// trafficMu guards lastTraffic, the most recent snapshot fetched
	// from this shard. Traffic revalidates it with If-None-Match, so an
	// idle shard answers 304 and no estimate body crosses the wire.
	trafficMu   sync.Mutex
	lastTraffic *traffic.Snapshot //lint:guardedby trafficMu
}

var _ Shard = (*RemoteShard)(nil)

// NewRemoteShard returns a client for the shard process at addr (e.g.
// "http://127.0.0.1:9001"), with the default request timeout and a
// capped exponential pause between scatter retries.
func NewRemoteShard(addr string) *RemoteShard {
	return &RemoteShard{
		cli:        &Client{baseURL: strings.TrimRight(addr, "/"), http: &http.Client{Timeout: DefaultClientTimeout}},
		retrySleep: scatterPause,
	}
}

// scatterPause waits 50ms·2^(attempt-1) or until the context ends.
func scatterPause(ctx context.Context, attempt int) error {
	d := 50 * time.Millisecond << (attempt - 1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// unavailable wraps a transport-level failure against this shard so
// callers (and the coordinator's public HTTP layer) can classify it.
func (s *RemoteShard) unavailable(op string, err error) error {
	return fmt.Errorf("%s %s: %v: %w", op, s.cli.baseURL, err, ErrShardUnavailable)
}

// Addr names the shard process's base URL.
func (s *RemoteShard) Addr() string { return s.cli.baseURL }

// ProcessTrip forwards one routed trip. Rejections come back as the
// same sentinels the in-process path returns, rebuilt from the wire
// code, so the coordinator's upload responses are indistinguishable
// from a monolith's.
func (s *RemoteShard) ProcessTrip(ctx context.Context, trip probe.Trip) (ProcessedTrip, error) {
	body, err := json.Marshal(&trip)
	if err != nil {
		return ProcessedTrip{}, fmt.Errorf("server: encode trip: %w", err)
	}
	resp, err := s.cli.post(ctx, "/internal/v1/trip", body)
	if err != nil {
		return ProcessedTrip{}, s.unavailable("server: forward trip to", err)
	}
	defer resp.Body.Close()
	var out shardTripJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return ProcessedTrip{}, s.unavailable("server: forward trip to", err)
	}
	if rej := shardErr(out.Code, out.Error); rej != nil {
		return out.Trip, rej
	}
	if resp.StatusCode != http.StatusAccepted {
		return out.Trip, s.unavailable("server: forward trip to", fmt.Errorf("status %d", resp.StatusCode))
	}
	return out.Trip, nil
}

// batch forwards a routed sub-batch and rebuilds per-trip results in
// input order. A transport failure fails every trip in the sub-batch
// with ErrShardUnavailable — the phones retry, the home shard's dedup
// set absorbs any that did land.
func (s *RemoteShard) batch(ctx context.Context, trips []probe.Trip, path string) []TripResult {
	res := make([]TripResult, len(trips))
	fail := func(err error) []TripResult {
		for i := range res {
			res[i] = TripResult{Err: err}
		}
		return res
	}
	body, err := json.Marshal(trips)
	if err != nil {
		return fail(fmt.Errorf("server: encode batch: %w", err))
	}
	resp, err := s.cli.post(ctx, path, body)
	if err != nil {
		return fail(s.unavailable("server: forward batch to", err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fail(s.unavailable("server: forward batch to",
			fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))))
	}
	var out shardBatchJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fail(s.unavailable("server: forward batch to", err))
	}
	if len(out.Results) != len(trips) {
		return fail(s.unavailable("server: forward batch to",
			fmt.Errorf("%d results for %d trips", len(out.Results), len(trips))))
	}
	for i, row := range out.Results {
		res[i] = TripResult{Trip: row.Trip, Err: shardErr(row.Code, row.Error)}
	}
	return res
}

// ProcessTrips forwards an ungated sub-batch.
func (s *RemoteShard) ProcessTrips(ctx context.Context, trips []probe.Trip, workers int) []TripResult {
	return s.batch(ctx, trips, fmt.Sprintf("/internal/v1/trips?workers=%d", workers))
}

// IngestBatch forwards a sub-batch behind the shard's admission gate;
// shed trips come back as per-row ErrOverloaded, which the public
// layer surfaces as 429s feeding the phone retry/backoff machinery.
func (s *RemoteShard) IngestBatch(ctx context.Context, trips []probe.Trip) []TripResult {
	return s.batch(ctx, trips, "/internal/v1/trips?gated=1")
}

// Scatter delivers one cross-shard observation group, retrying
// transient failures up to scatterAttempts times. The idempotency key
// makes the retry safe: a delivery whose response was lost already
// recorded its outcome on the owner, and the retried call gets that
// recorded outcome back instead of folding twice.
func (s *RemoteShard) Scatter(ctx context.Context, key string, obsGroup []traffic.Observation) (stage.EstimateOutput, error) {
	body, err := json.Marshal(scatterRequestJSON{Key: key, Observations: obsGroup})
	if err != nil {
		return stage.EstimateOutput{}, fmt.Errorf("server: encode scatter: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt < scatterAttempts; attempt++ {
		if attempt > 0 {
			if err := s.retrySleep(ctx, attempt); err != nil {
				break
			}
		}
		out, err := s.scatterOnce(ctx, body)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return stage.EstimateOutput{}, s.unavailable("server: scatter to", lastErr)
}

// scatterOnce is one delivery attempt.
func (s *RemoteShard) scatterOnce(ctx context.Context, body []byte) (stage.EstimateOutput, error) {
	resp, err := s.cli.post(ctx, "/internal/v1/scatter", body)
	if err != nil {
		return stage.EstimateOutput{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return stage.EstimateOutput{}, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var out scatterResponseJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return stage.EstimateOutput{}, err
	}
	return stage.EstimateOutput{Folded: out.Folded, Discarded: out.Discarded}, nil
}

// Stats fetches the shard's work counters.
func (s *RemoteShard) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	if err := s.cli.getJSON(ctx, "/internal/v1/stats", &out); err != nil {
		return Stats{}, s.unavailable("server: stats from", err)
	}
	return out, nil
}

// StageMetrics fetches the shard's per-stage instrumentation.
func (s *RemoteShard) StageMetrics(ctx context.Context) ([]stage.Metrics, error) {
	var out []stage.Metrics
	if err := s.cli.getJSON(ctx, "/internal/v1/pipeline", &out); err != nil {
		return nil, s.unavailable("server: pipeline from", err)
	}
	return out, nil
}

// Traffic fetches the shard's versioned segment→estimate snapshot,
// revalidating the cached one with If-None-Match so an unchanged shard
// answers 304 and ships no body. encoding/json round-trips the float64
// fields bit-exactly, so the coordinator's merged map matches an
// in-process merge byte for byte. The returned snapshot carries only
// Version and Estimates (see Shard.Traffic); it is shared across calls
// and must not be mutated.
func (s *RemoteShard) Traffic(ctx context.Context) (*traffic.Snapshot, error) {
	s.trafficMu.Lock()
	cached := s.lastTraffic
	s.trafficMu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.cli.baseURL+"/internal/v1/traffic", nil)
	if err != nil {
		return nil, s.unavailable("server: traffic from", err)
	}
	if cached != nil {
		req.Header.Set("If-None-Match", trafficETag(cached.Version))
	}
	resp, err := s.cli.http.Do(req)
	if err != nil {
		return nil, s.unavailable("server: traffic from", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return cached, nil
	case http.StatusOK:
		var out shardTrafficJSON
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, s.unavailable("server: traffic from", err)
		}
		if out.Estimates == nil {
			out.Estimates = map[road.SegmentID]traffic.Estimate{}
		}
		snap := &traffic.Snapshot{Version: out.Version, Estimates: out.Estimates}
		s.trafficMu.Lock()
		s.lastTraffic = snap
		s.trafficMu.Unlock()
		return snap, nil
	default:
		return nil, s.unavailable("server: traffic from", fmt.Errorf("status %d", resp.StatusCode))
	}
}

// TrafficSegment reads one segment's estimate from the shard.
func (s *RemoteShard) TrafficSegment(ctx context.Context, sid road.SegmentID) (traffic.Estimate, bool, error) {
	var out segmentLookupJSON
	path := fmt.Sprintf("/internal/v1/traffic/segment?id=%d", int(sid))
	if err := s.cli.getJSON(ctx, path, &out); err != nil {
		return traffic.Estimate{}, false, s.unavailable("server: segment from", err)
	}
	return out.Estimate, out.Found, nil
}

// Advance drives the shard's estimator clock.
func (s *RemoteShard) Advance(ctx context.Context, nowS float64) error {
	body, err := json.Marshal(advanceRequestJSON{NowS: nowS})
	if err != nil {
		return fmt.Errorf("server: encode advance: %w", err)
	}
	resp, err := s.cli.post(ctx, "/internal/v1/advance", body)
	if err != nil {
		return s.unavailable("server: advance", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return s.unavailable("server: advance", fmt.Errorf("status %d", resp.StatusCode))
	}
	return nil
}

// Ready probes the shard process's readiness.
func (s *RemoteShard) Ready(ctx context.Context) error {
	var out shardReadyJSON
	if err := s.cli.getJSON(ctx, "/internal/v1/ready", &out); err != nil {
		return s.unavailable("server: probe", err)
	}
	if !out.Ready {
		return s.unavailable("server: probe", fmt.Errorf("shard reports not ready"))
	}
	return nil
}
