package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"busprobe/internal/core/fingerprint"
	"busprobe/internal/core/region"
	"busprobe/internal/core/traffic"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/server/stage"
	"busprobe/internal/transit"
)

// The shard wire protocol. A shard process mounts these endpoints next
// to the public read API; the coordinator tier dispatches to them
// through RemoteShard:
//
//	POST /internal/v1/trip            ingest one routed trip
//	POST /internal/v1/trips           ingest a routed sub-batch
//	                                  (?gated=1 → admission gate,
//	                                   ?workers=N → ungated worker count)
//	POST /internal/v1/scatter         fold a cross-shard observation
//	                                  group, exactly once per key
//	POST /internal/v1/advance         drive the estimator clock
//	GET  /internal/v1/traffic         versioned segment→estimate snapshot
//	                                  ({version, estimates}; answers with
//	                                  ETag + X-Busprobe-Traffic-Version and
//	                                  304 on If-None-Match, so a coordinator
//	                                  polling an idle shard moves no body)
//	GET  /internal/v1/traffic/segment one segment's estimate
//	GET  /internal/v1/stats           work counters
//	GET  /internal/v1/pipeline        per-stage instrumentation
//	GET  /internal/v1/ready           readiness probe
//
// Bodies are JSON. encoding/json renders float64 with the shortest
// round-tripping representation, so estimates survive the hop
// bit-exactly and the coordinator's merged /v1/traffic stays
// byte-identical to a monolith's.

// shardTripJSON is one routed trip's outcome on the shard wire: the
// full ProcessedTrip (not just counts, so the coordinator's public
// upload response is byte-identical to a monolith's) plus the
// machine-readable rejection class of uploadCode.
type shardTripJSON struct {
	Trip  ProcessedTrip `json:"trip"`
	Error string        `json:"error,omitempty"`
	Code  string        `json:"code,omitempty"`
}

// shardBatchJSON carries a sub-batch's outcomes in input order.
type shardBatchJSON struct {
	Results []shardTripJSON `json:"results"`
}

// scatterRequestJSON is one cross-shard observation group under its
// idempotency key.
type scatterRequestJSON struct {
	Key          string                `json:"key"`
	Observations []traffic.Observation `json:"observations"`
}

// scatterResponseJSON reports the group's fold outcome.
type scatterResponseJSON struct {
	Folded    int `json:"folded"`
	Discarded int `json:"discarded"`
}

// advanceRequestJSON drives the shard's estimator watermark.
type advanceRequestJSON struct {
	NowS float64 `json:"nowS"`
}

// shardTrafficJSON is one shard's versioned snapshot on the wire. Only
// the version and the estimate map travel: the coordinator diffs its
// own merged view to maintain delta state, so shipping the shard-local
// change maps would be dead weight on every fan-in.
type shardTrafficJSON struct {
	Version   uint64                              `json:"version"`
	Estimates map[road.SegmentID]traffic.Estimate `json:"estimates"`
}

// segmentLookupJSON answers a single-segment read; Found false means
// the shard holds no estimate for the segment.
type segmentLookupJSON struct {
	Found    bool             `json:"found"`
	Estimate traffic.Estimate `json:"estimate"`
}

// shardReadyJSON answers the readiness probe.
type shardReadyJSON struct {
	Ready bool `json:"ready"`
}

// shardErr rebuilds a wire rejection as the matching sentinel error, so
// a coordinator classifies remote rejections exactly like in-process
// ones (and the HTTP layer re-derives the same status code).
func shardErr(code, msg string) error {
	switch code {
	case "":
		return nil
	case "duplicate":
		return fmt.Errorf("upload rejected: %s: %w", msg, ErrDuplicateTrip)
	case "invalid":
		return fmt.Errorf("upload rejected: %s: %w", msg, ErrInvalidTrip)
	case "overloaded":
		return fmt.Errorf("upload rejected: %s: %w", msg, ErrOverloaded)
	default:
		return fmt.Errorf("server: shard rejected trip: %s", msg)
	}
}

// NewShardBackend assembles the backend of one shard process: a full
// Backend over the shared databases, plus the scatter topology that
// sends observations owned by peer shards across the wire. addrs lists
// every shard process's base URL in shard order (including this one's
// own slot, which is never dialed — its groups fold locally). The
// partition is rebuilt deterministically from the databases, so every
// shard process and every coordinator derive the same ownership map
// without any coordination traffic.
func NewShardBackend(cfg Config, tdb *transit.DB, fpdb *fingerprint.DB, shardID int, addrs []string) (*Backend, error) {
	if shardID < 0 || shardID >= len(addrs) {
		return nil, fmt.Errorf("server: shard id %d outside %d shard addrs", shardID, len(addrs))
	}
	part, err := transit.PartitionRoutes(tdb, len(addrs), region.DefaultConfig().ZoneM)
	if err != nil {
		return nil, err
	}
	// Built without the obs core so the backend can register under its
	// real shard label instead of the monolith's "0".
	shardCfg := cfg
	shardCfg.Obs = nil
	b, err := NewBackend(shardCfg, tdb, fpdb)
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		b.RegisterObs(cfg.Obs, strconv.Itoa(shardID))
	}
	peers := make([]*RemoteShard, len(addrs))
	for i, addr := range addrs {
		if i == shardID {
			continue
		}
		peers[i] = NewRemoteShard(addr)
	}
	b.shardIdx = shardID
	b.obsOwner = func(o traffic.Observation) (int, bool) {
		if len(o.Segments) > 0 {
			return part.SegmentShard(o.Segments[0])
		}
		return 0, false
	}
	b.obsScatter = func(ctx context.Context, owner int, key string, group []traffic.Observation) (stage.EstimateOutput, error) {
		return peers[owner].Scatter(ctx, key, group)
	}
	return b, nil
}

// NewShardHandler returns the HTTP surface of one shard process: the
// internal wire protocol above, plus the public read API for direct
// inspection (/healthz, /metrics, /v1/traffic, ...). The public write
// endpoints answer 421 Misdirected Request — a rider upload sent
// straight to a shard would bypass the coordinator's
// content-deterministic routing and could land a duplicate on a second
// dedup set.
func NewShardHandler(b *Backend, hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", NewHandler(b, hc))

	misdirected := func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "shard process: uploads go through the coordinator tier",
			http.StatusMisdirectedRequest)
	}
	mux.HandleFunc("/v1/trips", misdirected)
	mux.HandleFunc("/v1/trips/batch", misdirected)

	mux.HandleFunc("/internal/v1/trip", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		r = traceCtx(r)
		var trip probe.Trip
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes))
		if err := dec.Decode(&trip); err != nil {
			writeJSON(w, http.StatusBadRequest, shardTripJSON{Error: "malformed JSON: " + err.Error(), Code: "error"})
			return
		}
		res, err := b.ProcessTrip(r.Context(), trip)
		if err != nil {
			writeJSON(w, uploadStatus(err), shardTripJSON{Trip: res, Error: err.Error(), Code: uploadCode(err)})
			return
		}
		writeJSON(w, http.StatusAccepted, shardTripJSON{Trip: res})
	})

	mux.HandleFunc("/internal/v1/trips", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		r = traceCtx(r)
		var trips []probe.Trip
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchUploadBytes))
		if err := dec.Decode(&trips); err != nil {
			http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		var results []TripResult
		if r.URL.Query().Get("gated") == "1" {
			results = b.IngestBatch(r.Context(), trips)
		} else {
			workers, _ := strconv.Atoi(r.URL.Query().Get("workers"))
			results = b.ProcessTrips(r.Context(), trips, workers)
		}
		out := shardBatchJSON{Results: make([]shardTripJSON, len(results))}
		for i, res := range results {
			row := shardTripJSON{Trip: res.Trip}
			if res.Err != nil {
				row.Error = res.Err.Error()
				row.Code = uploadCode(res.Err)
			}
			out.Results[i] = row
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("/internal/v1/scatter", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		r = traceCtx(r)
		var req scatterRequestJSON
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes))
		if err := dec.Decode(&req); err != nil {
			http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		out, err := b.FoldScatter(r.Context(), req.Key, req.Observations)
		if err != nil {
			// Durability failed before the fold; the home shard retries
			// under the same key.
			http.Error(w, "scatter not persisted: "+err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, scatterResponseJSON{Folded: out.Folded, Discarded: out.Discarded})
	})

	mux.HandleFunc("/internal/v1/advance", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req advanceRequestJSON
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes))
		if err := dec.Decode(&req); err != nil {
			http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		b.Advance(req.NowS)
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("/internal/v1/traffic", func(w http.ResponseWriter, r *http.Request) {
		snap := b.TrafficSnapshot()
		if trafficHeaders(w, r, snap.Version) {
			return
		}
		writeJSON(w, http.StatusOK, shardTrafficJSON{Version: snap.Version, Estimates: snap.Estimates})
	})

	mux.HandleFunc("/internal/v1/traffic/segment", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(strings.TrimSpace(r.URL.Query().Get("id")))
		if err != nil {
			http.Error(w, "bad segment id", http.StatusBadRequest)
			return
		}
		est, ok := b.TrafficSegment(road.SegmentID(id))
		writeJSON(w, http.StatusOK, segmentLookupJSON{Found: ok, Estimate: est})
	})

	mux.HandleFunc("/internal/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, b.Stats())
	})

	mux.HandleFunc("/internal/v1/pipeline", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, b.StageMetrics())
	})

	mux.HandleFunc("/internal/v1/ready", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, shardReadyJSON{Ready: true})
	})

	return mux
}
