package server

import (
	"context"
	"time"

	"busprobe/internal/obs"
	"busprobe/internal/server/stage"
)

// This file wires the backend into the unified observability core
// (internal/obs): existing atomically-maintained counters — backend
// stats, per-stage instrumentation, the admission pseudo-stage — are
// projected into the metrics registry as scrape-time collectors, so
// /v1/stats and /v1/pipeline remain the source of truth and nothing is
// counted twice. Stage latency histograms and trace spans ride the
// stage hook, chained behind any user-installed hook.

// startSpan marks a span start on the observability clock; the zero
// time when observability is off.
func (b *Backend) startSpan() time.Time {
	if b.obsCore == nil {
		return time.Time{}
	}
	return b.obsCore.Clock.Now()
}

// endSpan emits one completed span for the traced request, if any.
func (b *Backend) endSpan(ctx context.Context, start time.Time, name string, attrs ...obs.Attr) {
	if b.obsCore == nil {
		return
	}
	tr := obs.TraceID(ctx)
	if tr == "" {
		return
	}
	attrs = append(attrs, obs.Attr{Key: "shard", Value: b.obsShard})
	b.obsCore.Tracer.Emit(tr, name, start, b.obsCore.Clock.Now(), attrs...)
}

// RegisterObs plugs the backend into an observability core under the
// given shard label. It registers scrape-time collectors for the work
// counters and per-stage instrumentation, creates the per-stage
// latency histograms, and chains span emission onto the stage hook.
// Like AttachJournal and the observation router, it must run before
// any ingestion; a Coordinator calls it once per shard with distinct
// labels (NewBackend self-registers as shard "0" when Config.Obs is
// set, which is why the coordinator builds its shards without it).
func (b *Backend) RegisterObs(core *obs.Core, shard string) {
	if core == nil {
		return
	}
	b.obsCore = core
	b.obsShard = shard
	reg := core.Registry
	sl := obs.Label{Name: "shard", Value: shard}

	statCtr := func(name, help string, get func(Stats) int) {
		reg.CounterFunc(name, help, func() float64 { return float64(get(b.Stats())) }, sl)
	}
	statCtr("busprobe_trips_received_total", "Trips offered to the pipeline, accepted or not.",
		func(s Stats) int { return s.TripsReceived })
	statCtr("busprobe_trips_rejected_total", "Trips failing structural validation.",
		func(s Stats) int { return s.TripsRejected })
	statCtr("busprobe_trips_duplicate_total", "Re-uploads absorbed by the dedup set.",
		func(s Stats) int { return s.DuplicateTrips })
	statCtr("busprobe_trips_shed_total", "Trips refused by the batch admission gate.",
		func(s Stats) int { return s.TripsShed })
	statCtr("busprobe_samples_received_total", "Cellular samples carried by received trips.",
		func(s Stats) int { return s.SamplesReceived })
	statCtr("busprobe_samples_matched_total", "Samples clearing the γ matching filter.",
		func(s Stats) int { return s.SamplesMatched })
	statCtr("busprobe_visits_mapped_total", "Stop visits resolved by trip mapping.",
		func(s Stats) int { return s.VisitsMapped })
	statCtr("busprobe_observations_total", "Leg observations folded into the estimator.",
		func(s Stats) int { return s.Observations })

	if b.gate != nil {
		reg.GaugeFunc("busprobe_inflight_batches",
			"Batch ingests currently holding an admission slot.",
			func() float64 { return float64(len(b.gate)) }, sl)
	}

	reg.GaugeFunc("busprobe_traffic_snapshot_version",
		"Published traffic-snapshot version (monotone per process).",
		func() float64 { return float64(b.est.View().Version) }, sl)
	// Snapshot freshness is reported in the pipeline's own timeline —
	// the latest fold timestamp in the published map — rather than as a
	// wall-clock age, so scrapes of a quiescent backend stay
	// byte-stable under the deterministic test clock. An operator's
	// alert on staleness compares this watermark against the ingest
	// feed's current time.
	reg.GaugeFunc("busprobe_traffic_snapshot_updated_seconds",
		"Latest estimate-update timestamp (campaign seconds) in the published traffic snapshot.",
		func() float64 {
			var latest float64
			for _, est := range b.est.View().Estimates {
				if est.UpdatedS > latest {
					latest = est.UpdatedS
				}
			}
			return latest
		}, sl)

	const (
		runsName    = "busprobe_stage_runs_total"
		runsHelp    = "Completed runs per pipeline stage."
		inName      = "busprobe_stage_items_in_total"
		inHelp      = "Items offered to each pipeline stage."
		outName     = "busprobe_stage_items_out_total"
		outHelp     = "Items surviving each pipeline stage."
		droppedName = "busprobe_stage_dropped_total"
		droppedHelp = "Items discarded by each pipeline stage."
		durName     = "busprobe_stage_duration_seconds"
		durHelp     = "Per-run latency of each pipeline stage."
	)
	hists := make(map[string]*obs.Histogram, 8)
	for _, st := range b.pipe.Stages() {
		st := st
		stl := obs.Label{Name: "stage", Value: st.Name()}
		reg.CounterFunc(runsName, runsHelp,
			func() float64 { return float64(st.Metrics().Runs) }, sl, stl)
		reg.CounterFunc(inName, inHelp,
			func() float64 { return float64(st.Metrics().ItemsIn) }, sl, stl)
		reg.CounterFunc(outName, outHelp,
			func() float64 { return float64(st.Metrics().ItemsOut) }, sl, stl)
		reg.CounterFunc(droppedName, droppedHelp,
			func() float64 { return float64(st.Metrics().Dropped) }, sl, stl)
		hists[st.Name()] = reg.Histogram(durName, durHelp, obs.LatencyBuckets, sl, stl)
	}
	// The admission gate reports as the same pseudo-stage /v1/pipeline
	// appends, read under the same lock that maintains it.
	admSnap := func(get func(stage.Metrics) int64) func() float64 {
		return func() float64 {
			b.statsMu.Lock()
			m := b.admission
			b.statsMu.Unlock()
			return float64(get(m))
		}
	}
	adml := obs.Label{Name: "stage", Value: "admission"}
	reg.CounterFunc(runsName, runsHelp, admSnap(func(m stage.Metrics) int64 { return m.Runs }), sl, adml)
	reg.CounterFunc(inName, inHelp, admSnap(func(m stage.Metrics) int64 { return m.ItemsIn }), sl, adml)
	reg.CounterFunc(outName, outHelp, admSnap(func(m stage.Metrics) int64 { return m.ItemsOut }), sl, adml)
	reg.CounterFunc(droppedName, droppedHelp, admSnap(func(m stage.Metrics) int64 { return m.Dropped }), sl, adml)

	// Chain histogram observation and span emission behind whatever
	// hook the configuration installed. Span boundaries are derived
	// from the hook's measured duration on the core clock, so a trip's
	// match→cluster→map→estimate path is reconstructable per shard.
	for _, st := range b.pipe.Stages() {
		prev := st.CurrentHook()
		hist := hists[st.Name()]
		// Hoisted out of the hook: the span name and attr slice are
		// per-stage constants, and Emit retains (never mutates) the
		// slice, so sharing one backing array across spans keeps the
		// hot path free of per-run allocations.
		spanName := "stage." + st.Name()
		attrs := []obs.Attr{{Key: "shard", Value: shard}}
		st.SetHook(func(ctx context.Context, name string, in, out, dropped int, d time.Duration) {
			if prev != nil {
				prev(ctx, name, in, out, dropped, d)
			}
			hist.Observe(d.Seconds())
			if tr := obs.TraceID(ctx); tr != "" {
				end := core.Clock.Now()
				core.Tracer.Emit(tr, spanName, end.Add(-d), end, attrs...)
			}
		})
	}
}
