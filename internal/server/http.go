package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"busprobe/internal/core/traffic"
	"busprobe/internal/obs"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/transit"
)

// SegmentEstimateJSON is one row of the traffic-map API response.
type SegmentEstimateJSON struct {
	Segment  int     `json:"segment"`
	SpeedKmh float64 `json:"speedKmh"`
	Var      float64 `json:"var"`
	Reports  int     `json:"reports"`
	UpdatedS float64 `json:"updatedS"`
	Level    string  `json:"level"`
}

// TrafficVersionHeader carries the snapshot version every traffic read
// answers with, public and internal alike.
const TrafficVersionHeader = "X-Busprobe-Traffic-Version"

// trafficETag renders a snapshot version as the strong entity tag the
// traffic endpoints use for If-None-Match revalidation.
func trafficETag(version uint64) string {
	return `"v` + strconv.FormatUint(version, 10) + `"`
}

// etagMatch reports whether an If-None-Match header value names the
// entity tag (exactly, or in a comma-separated list, or as "*").
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == etag || part == "*" {
			return true
		}
	}
	return false
}

// trafficHeaders stamps a traffic response with its snapshot version
// and ETag, answering true when the client's If-None-Match already
// names this version and a 304 was written instead of a body.
func trafficHeaders(w http.ResponseWriter, r *http.Request, version uint64) bool {
	etag := trafficETag(version)
	w.Header().Set(TrafficVersionHeader, strconv.FormatUint(version, 10))
	w.Header().Set("ETag", etag)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// TrafficWatchJSON is the /v1/traffic/watch response: the delta between
// the client's version and the served snapshot. A client applying
// Changed and Removed to its since-version map holds exactly the map a
// fresh GET /v1/traffic would return at Version.
type TrafficWatchJSON struct {
	// Version is the snapshot version the delta brings the client to.
	Version uint64 `json:"version"`
	// Since echoes the effective base version (0 after a resync).
	Since uint64 `json:"since"`
	// Resync is set when the requested since version is ahead of the
	// served snapshot (a restarted server); the delta is the full map
	// from version 0 and the client must drop its local state first.
	Resync bool `json:"resync,omitempty"`
	// Changed lists the segments whose estimates changed after Since,
	// ascending by segment.
	Changed []SegmentEstimateJSON `json:"changed"`
	// Removed lists the segments that left the map after Since,
	// ascending (a shard dropping out of a coordinator's merged view).
	Removed []int `json:"removed,omitempty"`
}

// UploadResponseJSON acknowledges a trip upload. Code carries the
// machine-readable rejection class ("duplicate", "invalid",
// "overloaded", or empty) so batch clients can classify per-row
// failures without string-matching Error.
type UploadResponseJSON struct {
	Accepted     bool   `json:"accepted"`
	TripID       string `json:"tripId"`
	Visits       int    `json:"visits"`
	Observations int    `json:"observations"`
	Error        string `json:"error,omitempty"`
	Code         string `json:"code,omitempty"`
}

// BatchUploadResponseJSON acknowledges a batched trip upload with one
// row per submitted trip, in input order.
type BatchUploadResponseJSON struct {
	Accepted int                  `json:"accepted"`
	Rejected int                  `json:"rejected"`
	Results  []UploadResponseJSON `json:"results,omitempty"`
	Error    string               `json:"error,omitempty"`
}

// maxUploadBytes bounds one trip upload (a day-long trip is ~100 KiB).
const maxUploadBytes = 4 << 20

// maxBatchUploadBytes bounds one batched upload.
const maxBatchUploadBytes = 64 << 20

// uploadStatus maps a rejection to its HTTP status: sentinel errors
// get distinguishable codes (409 duplicate, 400 invalid, 429 shed) so
// clients need not string-match; anything else is a 422.
func uploadStatus(err error) int {
	switch {
	case errors.Is(err, ErrDuplicateTrip):
		return http.StatusConflict
	case errors.Is(err, ErrInvalidTrip):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShardUnavailable):
		return http.StatusBadGateway
	default:
		return http.StatusUnprocessableEntity
	}
}

// uploadCode is the machine-readable rejection class for a row.
func uploadCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDuplicateTrip):
		return "duplicate"
	case errors.Is(err, ErrInvalidTrip):
		return "invalid"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrShardUnavailable):
		return "unavailable"
	default:
		return "error"
	}
}

// uploadRow renders one trip outcome as a response row.
func uploadRow(tripID string, res ProcessedTrip, err error) UploadResponseJSON {
	if err != nil {
		return UploadResponseJSON{TripID: tripID, Error: err.Error(), Code: uploadCode(err)}
	}
	return UploadResponseJSON{
		Accepted:     true,
		TripID:       res.TripID,
		Visits:       len(res.Visits),
		Observations: res.Observations,
	}
}

// Handler returns the serving HTTP API over a monolithic Backend or a
// sharded Coordinator — the responses are identical either way (the
// coordinator's reads fan in and merge deterministically):
//
//	POST /v1/trips            upload one probe.Trip (JSON)
//	POST /v1/trips/batch      upload a JSON array of trips (concurrent ingest)
//	GET  /v1/traffic          full traffic-map snapshot (versioned: ETag +
//	                          X-Busprobe-Traffic-Version, If-None-Match → 304)
//	GET  /v1/traffic/watch?since=V&waitS=S   long-poll for the delta past
//	                          version V (since omitted/0 → full map)
//	GET  /v1/traffic/segment?id=N   one segment's estimate
//	GET  /v1/region           inferred regional congestion index
//	GET  /v1/routes?depart=T  per-route live end-to-end travel times
//	GET  /v1/arrivals?route=R&stop=I&depart=T   downstream ETAs
//	GET  /v1/stats            pipeline counters
//	GET  /v1/pipeline         per-stage instrumentation counters
//	GET  /v1/shards           per-shard footprint and counters
//	GET  /healthz             liveness
func Handler(b API) http.Handler { return NewHandler(b, HandlerConfig{}) }

// HandlerConfig extends the API handler with the observability
// surfaces.
type HandlerConfig struct {
	// Obs, when non-nil, mounts the Prometheus exposition at
	// GET /metrics and wraps the API in request counting + latency
	// histograms (busprobe_http_*).
	Obs *obs.Core
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// NewHandler returns the serving API plus the configured observability
// endpoints. The per-request timeout wraps only the /v1 surface:
// /metrics scrapes and pprof profiles have their own lifecycles (a
// 30-second CPU profile is not a stuck request).
func NewHandler(b API, hc HandlerConfig) http.Handler {
	api := apiMux(b, hc.Obs)
	var handler http.Handler = api
	if s := b.Config().RequestTimeoutS; s > 0 {
		handler = http.TimeoutHandler(api, time.Duration(s*float64(time.Second)), "request timed out")
	}
	if hc.Obs == nil && !hc.Pprof {
		return handler
	}
	outer := http.NewServeMux()
	outer.Handle("/", handler)
	if hc.Obs != nil {
		outer.Handle("/metrics", hc.Obs.Registry.Handler())
	}
	if hc.Pprof {
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return outer
}

// traceCtx lifts the trace header, if any, into the request context so
// the pipeline's spans join the caller's trace.
func traceCtx(r *http.Request) *http.Request {
	if tr := r.Header.Get(obs.TraceHeader); tr != "" {
		return r.WithContext(obs.WithTrace(r.Context(), tr))
	}
	return r
}

// apiMux builds the /v1 + /healthz surface.
func apiMux(b API, core *obs.Core) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok") //lint:allow errcheckio a failed liveness write means the prober is gone; there is no one left to tell
	})
	mux.HandleFunc("/v1/trips", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var trip probe.Trip
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes))
		if err := dec.Decode(&trip); err != nil {
			writeJSON(w, http.StatusBadRequest, UploadResponseJSON{Error: "malformed JSON: " + err.Error()})
			return
		}
		res, err := b.ProcessTrip(r.Context(), trip)
		if err != nil {
			writeJSON(w, uploadStatus(err), uploadRow(trip.ID, res, err))
			return
		}
		writeJSON(w, http.StatusAccepted, uploadRow(trip.ID, res, nil))
	})
	mux.HandleFunc("/v1/trips/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var trips []probe.Trip
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchUploadBytes))
		if err := dec.Decode(&trips); err != nil {
			writeJSON(w, http.StatusBadRequest, BatchUploadResponseJSON{Error: "malformed JSON: " + err.Error()})
			return
		}
		// Admission is per shard inside IngestBatch: on a coordinator a
		// saturated region sheds only its own trips (per-row
		// "overloaded" codes) while the rest of the batch ingests. Only
		// a batch shed in full keeps the 429 + Retry-After answer.
		results := b.IngestBatch(r.Context(), trips)
		shedAll := len(results) > 0
		for _, res := range results {
			if !errors.Is(res.Err, ErrOverloaded) {
				shedAll = false
				break
			}
		}
		if shedAll {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, BatchUploadResponseJSON{
				Rejected: len(trips),
				Error:    ErrOverloaded.Error(),
			})
			return
		}
		out := BatchUploadResponseJSON{Results: make([]UploadResponseJSON, len(results))}
		for i, res := range results {
			out.Results[i] = uploadRow(trips[i].ID, res.Trip, res.Err)
			if res.Err != nil {
				out.Rejected++
			} else {
				out.Accepted++
			}
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("/v1/pipeline", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, b.StageMetrics())
	})
	mux.HandleFunc("/v1/traffic", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		snap := b.TrafficSnapshot()
		if trafficHeaders(w, r, snap.Version) {
			return
		}
		rows := make([]SegmentEstimateJSON, 0, len(snap.Estimates))
		for sid, est := range snap.Estimates {
			rows = append(rows, estimateJSON(sid, est))
		}
		sortRows(rows)
		writeJSON(w, http.StatusOK, rows)
	})
	mux.HandleFunc("/v1/traffic/watch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		var since uint64
		if s := q.Get("since"); s != "" {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				http.Error(w, "bad since version", http.StatusBadRequest)
				return
			}
			since = v
		}
		waitS := defaultWatchWaitS
		if s := q.Get("waitS"); s != "" {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v < 0 {
				http.Error(w, "bad waitS", http.StatusBadRequest)
				return
			}
			waitS = v
		}
		if waitS > maxWatchWaitS {
			waitS = maxWatchWaitS
		}
		// The long poll must resolve inside the per-request timeout
		// wrapping the /v1 surface, or TimeoutHandler would cut it off
		// mid-wait and answer 503 for a healthy server.
		if rt := b.Config().RequestTimeoutS; rt > 0 && waitS > rt/2 {
			waitS = rt / 2
		}
		snap, resync := watchSnapshot(r.Context(), b, since, waitS)
		if resync {
			since = 0
		}
		if trafficHeaders(w, r, snap.Version) {
			return
		}
		changed, removed := snap.DeltaSince(since)
		out := TrafficWatchJSON{
			Version: snap.Version,
			Since:   since,
			Resync:  resync,
			Changed: make([]SegmentEstimateJSON, 0, len(changed)),
		}
		for _, sid := range changed {
			out.Changed = append(out.Changed, estimateJSON(sid, snap.Estimates[sid]))
		}
		for _, sid := range removed {
			out.Removed = append(out.Removed, int(sid))
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("/v1/traffic/segment", func(w http.ResponseWriter, r *http.Request) {
		idStr := r.URL.Query().Get("id")
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil {
			http.Error(w, "bad segment id", http.StatusBadRequest)
			return
		}
		est, ok := b.TrafficSegment(road.SegmentID(id))
		if !ok {
			http.Error(w, "no estimate for segment", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, estimateJSON(road.SegmentID(id), est))
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, b.Stats())
	})
	mux.HandleFunc("/v1/shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, b.ShardStatuses())
	})
	mux.HandleFunc("/v1/region", func(w http.ResponseWriter, r *http.Request) {
		model, err := b.RegionModel()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, RegionJSON{
			OverallIndex: model.OverallIndex(),
			CoveredZones: model.CoveredZones(),
		})
	})
	mux.HandleFunc("/v1/routes", func(w http.ResponseWriter, r *http.Request) {
		departS, err := strconv.ParseFloat(r.URL.Query().Get("depart"), 64)
		if err != nil {
			http.Error(w, "need depart parameter", http.StatusBadRequest)
			return
		}
		statuses, err := b.RouteStatuses(departS)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		rows := make([]RouteStatusJSON, len(statuses))
		for i, s := range statuses {
			rows[i] = RouteStatusJSON{
				Route:       string(s.Route),
				Stops:       s.Stops,
				LengthM:     s.LengthM,
				EndToEndS:   s.EndToEndS,
				CoveredFrac: s.CoveredFrac,
			}
		}
		writeJSON(w, http.StatusOK, rows)
	})
	mux.HandleFunc("/v1/arrivals", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		routeID := transit.RouteID(q.Get("route"))
		fromIdx, err1 := strconv.Atoi(q.Get("stop"))
		departS, err2 := strconv.ParseFloat(q.Get("depart"), 64)
		if routeID == "" || err1 != nil || err2 != nil {
			http.Error(w, "need route, stop and depart parameters", http.StatusBadRequest)
			return
		}
		preds, err := b.PredictArrivals(routeID, fromIdx, departS)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		rows := make([]ArrivalJSON, len(preds))
		for i, p := range preds {
			rows[i] = ArrivalJSON{
				StopIdx:     p.StopIdx,
				Stop:        int(p.Stop),
				ArriveS:     p.ArriveS,
				CoveredFrac: p.CoveredFrac,
			}
		}
		writeJSON(w, http.StatusOK, rows)
	})
	var handler http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mux.ServeHTTP(w, traceCtx(r))
	})
	if core != nil {
		handler = obsMiddleware(core, handler)
	}
	return handler
}

// defaultWatchWaitS is how long /v1/traffic/watch holds a poll open
// waiting for the snapshot version to move past the client's.
const defaultWatchWaitS = 25.0

// maxWatchWaitS caps a client-requested watch wait.
const maxWatchWaitS = 60.0

// watchPollInterval is the wake-up cadence of one held watch poll. The
// handler polls the snapshot pointer rather than subscribing, so the
// read path needs no registration structure at all — a pointer load
// every few tens of milliseconds per held watcher is far cheaper than
// the full-map reads the watch replaces.
const watchPollInterval = 20 * time.Millisecond

// watchSnapshot resolves one watch poll: it returns as soon as the
// published snapshot's version exceeds since, or after waitS seconds
// with whatever is current (an unchanged version yields an empty
// delta). A since ahead of the served version — the server restarted
// and its sequence reset — reports resync, and the caller serves the
// full map from version 0.
func watchSnapshot(ctx context.Context, b API, since uint64, waitS float64) (snap *traffic.Snapshot, resync bool) {
	snap = b.TrafficSnapshot()
	if snap.Version > since {
		return snap, false
	}
	if since > snap.Version {
		return snap, true
	}
	if waitS <= 0 {
		return snap, false
	}
	deadline := time.NewTimer(time.Duration(waitS * float64(time.Second)))
	defer deadline.Stop()
	poll := time.NewTicker(watchPollInterval)
	defer poll.Stop()
	for {
		select {
		case <-ctx.Done():
			return snap, false
		case <-deadline.C:
			return b.TrafficSnapshot(), false
		case <-poll.C:
			snap = b.TrafficSnapshot()
			if snap.Version != since {
				return snap, snap.Version < since
			}
		}
	}
}

// apiPaths are the endpoints the HTTP metrics label by; anything else
// (404s, probes) collapses into "other" so label cardinality stays
// bounded.
var apiPaths = map[string]bool{
	"/healthz": true, "/v1/trips": true, "/v1/trips/batch": true,
	"/v1/pipeline": true, "/v1/traffic": true, "/v1/traffic/segment": true,
	"/v1/traffic/watch": true, "/v1/stats": true, "/v1/shards": true,
	"/v1/region": true, "/v1/routes": true, "/v1/arrivals": true,
}

// obsMiddleware counts requests and observes their latency per known
// path on the core clock.
func obsMiddleware(core *obs.Core, next http.Handler) http.Handler {
	reg := core.Registry
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if !apiPaths[path] {
			path = "other"
		}
		pl := obs.Label{Name: "path", Value: path}
		start := core.Clock.Now()
		next.ServeHTTP(w, r)
		reg.Counter("busprobe_http_requests_total", "HTTP requests served, by path.", pl).Inc()
		reg.Histogram("busprobe_http_request_duration_seconds",
			"HTTP request latency, by path.", obs.LatencyBuckets, pl).
			Observe(core.Clock.Now().Sub(start).Seconds())
	})
}

// RegionJSON is the /v1/region response.
type RegionJSON struct {
	OverallIndex float64 `json:"overallIndex"`
	CoveredZones int     `json:"coveredZones"`
}

// RouteStatusJSON is one /v1/routes row.
type RouteStatusJSON struct {
	Route       string  `json:"route"`
	Stops       int     `json:"stops"`
	LengthM     float64 `json:"lengthM"`
	EndToEndS   float64 `json:"endToEndS"`
	CoveredFrac float64 `json:"coveredFrac"`
}

// ArrivalJSON is one /v1/arrivals row.
type ArrivalJSON struct {
	StopIdx     int     `json:"stopIdx"`
	Stop        int     `json:"stop"`
	ArriveS     float64 `json:"arriveS"`
	CoveredFrac float64 `json:"coveredFrac"`
}

func estimateJSON(sid road.SegmentID, est traffic.Estimate) SegmentEstimateJSON {
	return SegmentEstimateJSON{
		Segment:  int(sid),
		SpeedKmh: est.SpeedKmh,
		Var:      est.Var,
		Reports:  est.Reports,
		UpdatedS: est.UpdatedS,
		Level:    traffic.LevelOf(est.SpeedKmh).String(),
	}
}

func sortRows(rows []SegmentEstimateJSON) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Segment < rows[j].Segment })
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already on the wire; an encode failure here
	// means the client disconnected mid-body, and the server has no
	// channel left to report it on.
	_ = json.NewEncoder(w).Encode(v) //lint:allow errcheckio headers already sent; nothing can be done about a mid-body disconnect
}
