package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"busprobe/internal/clock"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/core/traffic"
	"busprobe/internal/faults"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/server/stage"
	"busprobe/internal/sim"
	"busprobe/internal/store"
)

// storeTestOpts sizes segments small enough that a modest corpus rolls
// through several of them.
func storeTestOpts(dir string) store.Options {
	return store.Options{
		Dir:          dir,
		SegmentBytes: 32 << 10,
		Clock:        clock.NewFake(time.Unix(1_700_000_000, 0), 0),
	}
}

// twinFixture caches the twin world per test.
type twinFixture struct {
	world *sim.World
	fpdb  *fingerprint.DB
}

func newTwinFixture(t *testing.T) *twinFixture {
	t.Helper()
	w, fpdb := twinWorld(t)
	return &twinFixture{world: w, fpdb: fpdb}
}

// recoverFresh builds a new backend over the twin world and recovers it
// from dir, returning the backend and its recovery.
func recoverFresh(t *testing.T, fx *twinFixture, dir string, legacy string) (*Backend, *StoreRecovery) {
	t.Helper()
	b, err := NewBackend(DefaultConfig(), fx.world.Transit, fx.fpdb)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverBackendStore(context.Background(), storeTestOpts(dir), legacy, b)
	if err != nil {
		t.Fatal(err)
	}
	return b, rec
}

// TestStoreRestartByteIdentical is the tentpole acceptance property for
// the monolith: process a corpus against a store-backed backend with a
// mid-stream checkpoint, reboot from the directory, and the served
// traffic map must be byte-identical to an uninterrupted in-memory run.
func TestStoreRestartByteIdentical(t *testing.T) {
	fx := newTwinFixture(t)
	trips := twinCorpus(t, fx.world, faults.Config{})
	if len(trips) < 20 {
		t.Fatalf("corpus too small (%d trips) to cut meaningfully", len(trips))
	}
	cut := len(trips) / 2

	// Reference: uninterrupted, no persistence.
	ref, err := NewBackend(DefaultConfig(), fx.world.Transit, fx.fpdb)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, ref, trips)
	ref.Advance(3 * clock.DayS)
	want := trafficBytes(t, ref)
	if len(ref.Traffic()) == 0 {
		t.Fatal("corpus produced no estimates; the test is vacuous")
	}

	dir := t.TempDir()
	first, rec := recoverFresh(t, fx, dir, "")
	if rec.Report.Mode != "fresh" {
		t.Fatalf("virgin dir recovered in mode %q, want fresh", rec.Report.Mode)
	}
	replayInto(t, first, trips[:cut])
	if err := first.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	replayInto(t, first, trips[cut:])
	if err := rec.Log().Close(); err != nil {
		t.Fatal(err)
	}

	second, rec2 := recoverFresh(t, fx, dir, "")
	if rec2.Report.Mode != "snapshot+tail" {
		t.Fatalf("recovered in mode %q, want snapshot+tail (report: %+v)", rec2.Report.Mode, rec2.Report)
	}
	if !rec2.SnapshotImported {
		t.Fatal("no snapshot state imported")
	}
	if rec2.TripsReplayed == 0 {
		t.Fatal("tail replay touched no trips; the checkpoint cut is untested")
	}
	if rec2.TripsReplayed >= len(trips) {
		t.Fatalf("replayed %d trips of %d — the snapshot saved nothing", rec2.TripsReplayed, len(trips))
	}
	second.Advance(3 * clock.DayS)
	if got := trafficBytes(t, second); !bytes.Equal(got, want) {
		t.Error("recovered /v1/traffic differs from the uninterrupted run")
	}
	if ws, rs := ref.Stats(), second.Stats(); ws != rs {
		t.Errorf("recovered stats %+v, want %+v", rs, ws)
	}
}

// TestStoreFullReplayWithoutSnapshot: a store that never checkpointed
// recovers by full replay and still serves the identical map.
func TestStoreFullReplayWithoutSnapshot(t *testing.T) {
	fx := newTwinFixture(t)
	trips := twinCorpus(t, fx.world, faults.Config{})

	ref, err := NewBackend(DefaultConfig(), fx.world.Transit, fx.fpdb)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, ref, trips)
	ref.Advance(3 * clock.DayS)
	want := trafficBytes(t, ref)

	dir := t.TempDir()
	first, rec := recoverFresh(t, fx, dir, "")
	replayInto(t, first, trips)
	if err := rec.Log().Close(); err != nil {
		t.Fatal(err)
	}
	second, rec2 := recoverFresh(t, fx, dir, "")
	if rec2.Report.Mode != "full-replay" {
		t.Fatalf("recovered in mode %q, want full-replay", rec2.Report.Mode)
	}
	second.Advance(3 * clock.DayS)
	if got := trafficBytes(t, second); !bytes.Equal(got, want) {
		t.Error("full-replay /v1/traffic differs from the uninterrupted run")
	}
}

// TestStoreSnapshotSchemaFallback: a snapshot whose blob passes its
// checksum but does not decode as PersistentState (a schema from
// another build) must drop recovery to a full replay, not fail boot.
func TestStoreSnapshotSchemaFallback(t *testing.T) {
	fx := newTwinFixture(t)
	trips := twinCorpus(t, fx.world, faults.Config{})

	dir := t.TempDir()
	first, rec := recoverFresh(t, fx, dir, "")
	replayInto(t, first, trips)
	// Seal and snapshot by hand with a foreign blob.
	s := rec.Log().Store()
	upTo, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(upTo, []byte(`{"schema":"busprobe-state/999"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ref, err := NewBackend(DefaultConfig(), fx.world.Transit, fx.fpdb)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, ref, trips)
	ref.Advance(3 * clock.DayS)
	want := trafficBytes(t, ref)

	second, rec2 := recoverFresh(t, fx, dir, "")
	if rec2.Report.Mode != "full-replay" {
		t.Fatalf("recovered in mode %q, want full-replay (report: %+v)", rec2.Report.Mode, rec2.Report)
	}
	if rec2.SnapshotImported {
		t.Fatal("foreign snapshot state reported as imported")
	}
	second.Advance(3 * clock.DayS)
	if got := trafficBytes(t, second); !bytes.Equal(got, want) {
		t.Error("fallback /v1/traffic differs from the uninterrupted run")
	}
}

// TestStoreScatterDurability: a cross-shard scatter group persisted in
// the receiving shard's log must survive a restart even though its
// originating trip lives elsewhere — the fold is rebuilt from the
// "scatter" record, dedup key intact.
func TestStoreScatterDurability(t *testing.T) {
	fx := newTwinFixture(t)
	dir := t.TempDir()
	first, rec := recoverFresh(t, fx, dir, "")
	group := []traffic.Observation{{
		Segments: []road.SegmentID{2}, LengthM: 500, FreeKmh: 40, BTTSeconds: 70, TimeS: 60,
	}}
	if _, err := first.FoldScatter(context.Background(), "t1#0", group); err != nil {
		t.Fatal(err)
	}
	first.Advance(3600)
	want, ok := first.TrafficSegment(2)
	if !ok || want.Reports == 0 {
		t.Fatalf("scatter did not fold: %+v", want)
	}
	if err := rec.Log().Close(); err != nil {
		t.Fatal(err)
	}

	second, rec2 := recoverFresh(t, fx, dir, "")
	if rec2.ScatterReplayed != 1 {
		t.Fatalf("ScatterReplayed = %d, want 1 (report: %+v)", rec2.ScatterReplayed, rec2.Report)
	}
	second.Advance(3600)
	got, ok := second.TrafficSegment(2)
	if !ok || got != want {
		t.Fatalf("recovered scatter estimate %+v, want %+v", got, want)
	}
	// The idempotency record survived too: re-delivery must not re-fold.
	out, err := second.FoldScatter(context.Background(), "t1#0", group)
	if err != nil {
		t.Fatal(err)
	}
	if out.Folded == 0 {
		t.Fatal("replayed key returned a zero outcome, want the recorded one")
	}
	second.Advance(7200)
	if again, _ := second.TrafficSegment(2); again.Reports != got.Reports {
		t.Fatalf("re-delivered scatter double-counted: %d reports, want %d", again.Reports, got.Reports)
	}
}

// TestCoordinatorStoreRecovery: a sharded deployment checkpoints and
// reboots through per-shard store directories and serves the identical
// merged map.
func TestCoordinatorStoreRecovery(t *testing.T) {
	fx := newTwinFixture(t)
	trips := twinCorpus(t, fx.world, faults.Config{})
	cut := len(trips) / 2

	ref := newTwinCoordinator(t, fx.world, fx.fpdb, 2)
	replayInto(t, ref, trips)
	ref.Advance(3 * clock.DayS)
	want := trafficBytes(t, ref)

	base := t.TempDir()
	first := newTwinCoordinator(t, fx.world, fx.fpdb, 2)
	recs, err := first.RecoverStores(context.Background(), base, storeTestOpts(""), nil)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, first, trips[:cut])
	for _, b := range first.Shards() {
		if err := b.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	replayInto(t, first, trips[cut:])
	for _, r := range recs {
		if r.Err != "" {
			t.Fatalf("shard %d recovery: %s", r.Shard, r.Err)
		}
		if err := r.Log().Close(); err != nil {
			t.Fatal(err)
		}
	}

	second := newTwinCoordinator(t, fx.world, fx.fpdb, 2)
	recs2, err := second.RecoverStores(context.Background(), base, storeTestOpts(""), nil)
	if err != nil {
		t.Fatal(err)
	}
	replayedShards := 0
	for _, r := range recs2 {
		if r.Err != "" {
			t.Fatalf("shard %d recovery: %s", r.Shard, r.Err)
		}
		if r.Report.Mode == "snapshot+tail" {
			replayedShards++
		}
	}
	if replayedShards == 0 {
		t.Fatal("no shard recovered from a snapshot; the checkpoint path is untested")
	}
	second.Advance(3 * clock.DayS)
	if got := trafficBytes(t, second); !bytes.Equal(got, want) {
		t.Error("recovered 2-shard /v1/traffic differs from the uninterrupted run")
	}
}

// TestStoreLegacyJournalMigration: a deployment carrying a single-file
// journal boots onto the store by adopting the journal as the first
// segment, replaying it, and serving the identical map.
func TestStoreLegacyJournalMigration(t *testing.T) {
	fx := newTwinFixture(t)
	trips := twinCorpus(t, fx.world, faults.Config{})

	legacy := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	for _, trip := range trips {
		if err := j.Append(context.Background(), trip); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	ref, err := NewBackend(DefaultConfig(), fx.world.Transit, fx.fpdb)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, ref, trips)
	ref.Advance(3 * clock.DayS)
	want := trafficBytes(t, ref)

	dir := t.TempDir()
	b, rec := recoverFresh(t, fx, dir, legacy)
	if !rec.Report.Migrated {
		t.Fatal("legacy journal not migrated")
	}
	if rec.TripsReplayed != len(trips) {
		t.Fatalf("replayed %d trips from migrated journal, want %d", rec.TripsReplayed, len(trips))
	}
	if _, err := os.Stat(legacy); !os.IsNotExist(err) {
		t.Fatal("legacy journal still present after migration")
	}
	b.Advance(3 * clock.DayS)
	if got := trafficBytes(t, b); !bytes.Equal(got, want) {
		t.Error("migrated /v1/traffic differs from the uninterrupted run")
	}

	// The migrated store keeps working: new trips append and a
	// checkpoint lands.
	if err := b.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Log().Close(); err != nil {
		t.Fatal(err)
	}
	b2, rec2 := recoverFresh(t, fx, dir, legacy)
	if rec2.Report.Mode != "snapshot+tail" {
		t.Fatalf("post-migration recovery mode %q, want snapshot+tail", rec2.Report.Mode)
	}
	b2.Advance(3 * clock.DayS)
	if got := trafficBytes(t, b2); !bytes.Equal(got, want) {
		t.Error("post-migration checkpointed recovery differs")
	}
}

// TestCheckpointRequiresStore: a backend without an attached store
// cannot checkpoint.
func TestCheckpointRequiresStore(t *testing.T) {
	fx := newTwinFixture(t)
	b, err := NewBackend(DefaultConfig(), fx.world.Transit, fx.fpdb)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Checkpoint(); err == nil {
		t.Fatal("checkpoint without a store succeeded")
	}
}

// TestCheckpointUnderConcurrentIngest: checkpoints racing a concurrent
// upload stream must neither deadlock nor tear a trip across the cut —
// recovery still reproduces the uninterrupted map.
func TestCheckpointUnderConcurrentIngest(t *testing.T) {
	fx := newTwinFixture(t)
	trips := twinCorpus(t, fx.world, faults.Config{})

	ref, err := NewBackend(DefaultConfig(), fx.world.Transit, fx.fpdb)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, ref, trips)
	ref.Advance(3 * clock.DayS)
	want := trafficBytes(t, ref)

	dir := t.TempDir()
	first, rec := recoverFresh(t, fx, dir, "")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := first.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Serial ingestion (order determinism is the reference's property,
	// not under test here — the race with Checkpoint is).
	for _, trip := range trips {
		if _, err := first.ProcessTrip(context.Background(), trip); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if err := rec.Log().Close(); err != nil {
		t.Fatal(err)
	}

	second, _ := recoverFresh(t, fx, dir, "")
	second.Advance(3 * clock.DayS)
	if got := trafficBytes(t, second); !bytes.Equal(got, want) {
		t.Error("recovery after racing checkpoints differs from the uninterrupted run")
	}
}

// TestPersistentStateExportDeterministic: two exports from the same
// quiesced backend must be byte-identical (sorted slices, no map
// ordering leaks) — the property snapshot round-trips rest on.
// TestRecoverStoresSurvivesPendingSeal: a crash between a segment's
// footer write and its rename leaves a fully-sealed file under its
// .active name. Recovery opens the store first (finishing the rename)
// and only then plans, so the plan never references the vanished
// .active path — under the old order the whole segment was skipped as
// unreadable and its acked trips silently lost.
func TestRecoverStoresSurvivesPendingSeal(t *testing.T) {
	fx := newTwinFixture(t)
	trips := twinCorpus(t, fx.world, faults.Config{})

	ref := newTwinCoordinator(t, fx.world, fx.fpdb, 2)
	replayInto(t, ref, trips)
	ref.Advance(3 * clock.DayS)
	want := trafficBytes(t, ref)

	base := t.TempDir()
	first := newTwinCoordinator(t, fx.world, fx.fpdb, 2)
	recs, err := first.RecoverStores(context.Background(), base, storeTestOpts(""), nil)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, first, trips)
	for _, r := range recs {
		if err := r.Log().Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Crash-shape each shard directory: seal the active segment but put
	// it back under its .active name — the on-disk state after a crash
	// between footer write and rename.
	crafted := 0
	for i := range recs {
		dir := ShardStoreDir(base, i)
		sealsBefore, err := filepath.Glob(filepath.Join(dir, "*.seal"))
		if err != nil {
			t.Fatal(err)
		}
		s, err := store.Open(storeTestOpts(dir))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		seals, err := filepath.Glob(filepath.Join(dir, "*.seal"))
		if err != nil {
			t.Fatal(err)
		}
		if len(seals) == len(sealsBefore) {
			continue // this shard's active segment held no records
		}
		unrenamed := strings.TrimSuffix(seals[len(seals)-1], ".seal") + ".active"
		if err := os.Rename(seals[len(seals)-1], unrenamed); err != nil {
			t.Fatal(err)
		}
		actives, err := filepath.Glob(filepath.Join(dir, "*.active"))
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range actives {
			if a != unrenamed { // the empty segment Seal rolled to
				if err := os.Remove(a); err != nil {
					t.Fatal(err)
				}
			}
		}
		crafted++
	}
	if crafted == 0 {
		t.Fatal("no shard had a sealable active segment; the test is vacuous")
	}

	second := newTwinCoordinator(t, fx.world, fx.fpdb, 2)
	recs2, err := second.RecoverStores(context.Background(), base, storeTestOpts(""), nil)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for _, r := range recs2 {
		if r.Err != "" {
			t.Fatalf("shard %d recovery: %s", r.Shard, r.Err)
		}
		if r.Report.CorruptSegments != 0 {
			t.Fatalf("shard %d reported %d corrupt segments: %+v", r.Shard, r.Report.CorruptSegments, r.Report)
		}
		replayed += r.TripsReplayed
	}
	if replayed != len(trips) {
		t.Fatalf("replayed %d trips of %d — the pending-seal segment was skipped", replayed, len(trips))
	}
	second.Advance(3 * clock.DayS)
	if got := trafficBytes(t, second); !bytes.Equal(got, want) {
		t.Error("recovered /v1/traffic differs from the uninterrupted run")
	}
}

// flakyTripLog fails Append on demand, standing in for a full disk.
type flakyTripLog struct{ fail bool }

func (l *flakyTripLog) Append(ctx context.Context, trip probe.Trip) error {
	if l.fail {
		return errors.New("injected append failure")
	}
	return nil
}

// TestAdmitUnmarksSeenOnJournalFailure: a trip whose journal append
// fails was never durable, so its ID must not linger in the dedup set
// — a phantom entry would reject the client's retry forever and a
// snapshot would persist the phantom, losing the trip across restarts.
func TestAdmitUnmarksSeenOnJournalFailure(t *testing.T) {
	fx := newTwinFixture(t)
	trips := twinCorpus(t, fx.world, faults.Config{})
	b, err := NewBackend(DefaultConfig(), fx.world.Transit, fx.fpdb)
	if err != nil {
		t.Fatal(err)
	}
	log := &flakyTripLog{fail: true}
	b.AttachTripLog(log)
	ctx := context.Background()
	if _, err := b.ProcessTrip(ctx, trips[0]); err == nil {
		t.Fatal("journaling failure did not fail the upload")
	}
	if st := b.ExportState(); len(st.Seen) != 0 {
		t.Fatalf("phantom trip ID exported after journaling failure: %v", st.Seen)
	}
	log.fail = false
	if _, err := b.ProcessTrip(ctx, trips[0]); err != nil {
		t.Fatalf("retry after journaling failure rejected: %v", err)
	}
	if _, err := b.ProcessTrip(ctx, trips[0]); !errors.Is(err, ErrDuplicateTrip) {
		t.Fatalf("true duplicate not rejected: %v", err)
	}
}

// TestPendingScatterDurableAcrossCompaction: observation groups whose
// cross-shard delivery failed must survive checkpoints that compact
// away the trip records which produced them. The sender carries them
// as pending inside its snapshot and recovery retries them, so a
// reboot with the peer healthy converges on the unfailed map.
func TestPendingScatterDurableAcrossCompaction(t *testing.T) {
	fx := newTwinFixture(t)
	trips := twinCorpus(t, fx.world, faults.Config{})
	cut := len(trips) / 2

	ref := newTwinCoordinator(t, fx.world, fx.fpdb, 2)
	replayInto(t, ref, trips)
	ref.Advance(3 * clock.DayS)
	want := trafficBytes(t, ref)

	base := t.TempDir()
	first := newTwinCoordinator(t, fx.world, fx.fpdb, 2)
	recs, err := first.RecoverStores(context.Background(), base, storeTestOpts(""), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Break cross-shard delivery for the whole first run: every scatter
	// fails, so the sending shard must remember the group as pending.
	outage := true
	for _, b := range first.Shards() {
		orig := b.obsScatter
		b.obsScatter = func(ctx context.Context, owner int, key string, obs []traffic.Observation) (stage.EstimateOutput, error) {
			if outage {
				return stage.EstimateOutput{}, errors.New("injected scatter outage")
			}
			return orig(ctx, owner, key, obs)
		}
	}
	ingest := func(batch []probe.Trip) int {
		failed := 0
		for _, trip := range batch {
			if _, err := first.ProcessTrip(context.Background(), trip); err != nil {
				failed++
			}
		}
		return failed
	}
	if ingest(trips[:cut]) == 0 {
		t.Fatal("no first-half trip crossed shards; compaction coverage is vacuous")
	}
	// Two checkpoints with ingest in between: the second one's
	// compaction deletes the segments holding the first half's trip
	// records, so log replay alone can no longer reproduce the failed
	// groups.
	for _, b := range first.Shards() {
		if err := b.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	ingest(trips[cut:])
	for _, b := range first.Shards() {
		if err := b.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	pending := 0
	for _, b := range first.Shards() {
		pending += len(b.ExportState().Pending)
	}
	if pending == 0 {
		t.Fatal("scatter outage produced no pending groups")
	}
	for _, r := range recs {
		if err := r.Log().Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Reboot with scatter healthy: recovery retries the pending groups.
	second := newTwinCoordinator(t, fx.world, fx.fpdb, 2)
	recs2, err := second.RecoverStores(context.Background(), base, storeTestOpts(""), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs2 {
		if r.Err != "" {
			t.Fatalf("shard %d recovery: %s", r.Shard, r.Err)
		}
	}
	for i, b := range second.Shards() {
		if n := len(b.ExportState().Pending); n != 0 {
			t.Fatalf("shard %d still holds %d pending groups after recovery retry", i, n)
		}
	}
	second.Advance(3 * clock.DayS)
	if got := trafficBytes(t, second); !bytes.Equal(got, want) {
		t.Error("recovered /v1/traffic differs from the unfailed run; pending scatters were lost")
	}
}

func TestPersistentStateExportDeterministic(t *testing.T) {
	fx := newTwinFixture(t)
	trips := twinCorpus(t, fx.world, faults.Config{})
	b, err := NewBackend(DefaultConfig(), fx.world.Transit, fx.fpdb)
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, b, trips[:10])
	group := []traffic.Observation{{
		Segments: []road.SegmentID{2}, LengthM: 500, FreeKmh: 40, BTTSeconds: 70, TimeS: 60,
	}}
	if _, err := b.FoldScatter(context.Background(), "x#1", group); err != nil {
		t.Fatal(err)
	}
	b.notePendingScatter("z#1", 1, group)
	b.notePendingScatter("a#0", 0, group)
	a1, err := json.Marshal(b.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := json.Marshal(b.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1, a2) {
		t.Fatal("two exports of the same state differ")
	}
	// Export → import → export round-trips byte-identically, pending
	// groups included.
	b2, err := NewBackend(DefaultConfig(), fx.world.Transit, fx.fpdb)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.ImportState(b.ExportState()); err != nil {
		t.Fatal(err)
	}
	a3, err := json.Marshal(b2.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1, a3) {
		t.Fatal("export→import→export is not identical")
	}
}
