package stage

import (
	"context"

	"busprobe/internal/clock"

	"busprobe/internal/core/cluster"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/core/traffic"
	"busprobe/internal/core/tripmap"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/transit"
)

// Matcher is stage 1: per-sample Smith–Waterman matching against the
// stop fingerprint database with the γ acceptance filter. This is the
// pipeline's hot path; the fingerprint DB is internally synchronized,
// so many Matcher runs may proceed concurrently.
type Matcher struct {
	instrument
	db *fingerprint.DB
}

// MatchInput is one trip's raw cellular samples.
type MatchInput struct {
	Samples []probe.Sample
}

// MatchOutput is the γ survivors as cluster elements.
type MatchOutput struct {
	Elements []cluster.Element
	// Discarded counts samples below the γ threshold.
	Discarded int
}

// NewMatcher builds the matching stage over a fingerprint database.
func NewMatcher(db *fingerprint.DB, hook Hook) *Matcher {
	return &Matcher{instrument: instrument{name: "match", hook: hook}, db: db}
}

// Run matches every sample, keeping those that clear γ.
func (m *Matcher) Run(ctx context.Context, in MatchInput) MatchOutput {
	start := m.now()
	var elems []cluster.Element
	for _, s := range in.Samples {
		mt, ok := m.db.Match(s.Fingerprint())
		if !ok {
			continue
		}
		elems = append(elems, cluster.Element{TimeS: s.TimeS, Stop: mt.Stop, Score: mt.Score})
	}
	out := MatchOutput{Elements: elems, Discarded: len(in.Samples) - len(elems)}
	m.observe(ctx, len(in.Samples), len(elems), out.Discarded, start)
	return out
}

// Clusterer is stage 2: Eq. 1 per-bus-stop co-clustering of matched
// samples into stop-visit candidates.
type Clusterer struct {
	instrument
	params cluster.Params
}

// ClusterInput is the matched elements of one trip, time-ordered.
type ClusterInput struct {
	Elements []cluster.Element
}

// ClusterOutput is the visit-candidate clusters.
type ClusterOutput struct {
	Clusters []cluster.Cluster
}

// NewClusterer builds the clustering stage with the Eq. 1 constants.
func NewClusterer(params cluster.Params, hook Hook) *Clusterer {
	return &Clusterer{instrument: instrument{name: "cluster", hook: hook}, params: params}
}

// Run co-clusters the elements.
func (c *Clusterer) Run(ctx context.Context, in ClusterInput) (ClusterOutput, error) {
	start := c.now()
	clusters, err := cluster.Sequence(in.Elements, c.params)
	if err != nil {
		c.observe(ctx, len(in.Elements), 0, 0, start)
		return ClusterOutput{}, err
	}
	c.observe(ctx, len(in.Elements), len(clusters), 0, start)
	return ClusterOutput{Clusters: clusters}, nil
}

// Mapper is stage 3: per-trip maximum-likelihood mapping of the
// cluster sequence onto stops under bus-route order constraints
// (Eq. 2).
type Mapper struct {
	instrument
	transit *transit.DB
}

// MapInput is one trip's visit-candidate clusters.
type MapInput struct {
	Clusters []cluster.Cluster
}

// MapOutput is the resolved stop-visit sequence.
type MapOutput struct {
	Visits []tripmap.Visit
}

// NewMapper builds the mapping stage over the transit database.
func NewMapper(tdb *transit.DB, hook Hook) *Mapper {
	return &Mapper{instrument: instrument{name: "map", hook: hook}, transit: tdb}
}

// Run resolves the cluster sequence to stop visits.
func (m *Mapper) Run(ctx context.Context, in MapInput) (MapOutput, error) {
	start := m.now()
	res, err := tripmap.Resolve(in.Clusters, m.transit)
	if err != nil {
		m.observe(ctx, len(in.Clusters), 0, 0, start)
		return MapOutput{}, err
	}
	m.observe(ctx, len(in.Clusters), len(res.Visits), 0, start)
	return MapOutput{Visits: res.Visits}, nil
}

// Extractor is stage 4: consecutive visit pairs become per-leg traffic
// observations (BTT = arrive(next) − depart(prev), §III-D), attributed
// to the route best supporting the visit sequence. Pairs no route
// serves in order and travel times implying implausible speeds are
// discarded as mapping noise.
type Extractor struct {
	instrument
	transit                  *transit.DB
	minSpeedKmh, maxSpeedKmh float64
}

// ExtractInput is one trip's resolved visit sequence.
type ExtractInput struct {
	Visits []tripmap.Visit
}

// ExtractOutput is the surviving leg observations.
type ExtractOutput struct {
	Observations []traffic.Observation
	// Discarded counts visit pairs dropped as noise (unordered,
	// unserved, or implausibly fast/slow).
	Discarded int
}

// NewExtractor builds the observation-extraction stage. Speeds outside
// [minSpeedKmh, maxSpeedKmh] are discarded.
func NewExtractor(tdb *transit.DB, minSpeedKmh, maxSpeedKmh float64, hook Hook) *Extractor {
	return &Extractor{
		instrument:  instrument{name: "extract", hook: hook},
		transit:     tdb,
		minSpeedKmh: minSpeedKmh,
		maxSpeedKmh: maxSpeedKmh,
	}
}

// Run converts the visit sequence into per-leg traffic observations.
func (e *Extractor) Run(ctx context.Context, in ExtractInput) ExtractOutput {
	start := e.now()
	out := e.extract(in.Visits)
	e.observe(ctx, len(in.Visits), len(out.Observations), out.Discarded, start)
	return out
}

func (e *Extractor) extract(visits []tripmap.Visit) ExtractOutput {
	if len(visits) < 2 {
		return ExtractOutput{}
	}
	var out ExtractOutput
	routes := e.RankRoutesByVisitSupport(visits)
	net := e.transit.Network()
	for i := 0; i+1 < len(visits); i++ {
		from, to := visits[i], visits[i+1]
		if from.Stop == to.Stop {
			continue // repeated resolution of the same stop; no motion
		}
		btt := to.ArriveS - from.DepartS
		if btt <= 0 {
			out.Discarded++
			continue
		}
		leg, ok := e.LegBetween(routes, from.Stop, to.Stop)
		if !ok {
			out.Discarded++
			continue
		}
		speedKmh := leg.LengthM / btt * 3.6
		if speedKmh < e.minSpeedKmh || speedKmh > e.maxSpeedKmh {
			out.Discarded++
			continue
		}
		freeKmh := LegFreeKmh(net, leg)
		out.Observations = append(out.Observations, traffic.Observation{
			Segments:   leg.Segments,
			LengthM:    leg.LengthM,
			FreeKmh:    freeKmh,
			BTTSeconds: btt,
			TimeS:      to.ArriveS,
		})
	}
	return out
}

// RankRoutesByVisitSupport orders the routes by how many of the trip's
// consecutive visit pairs they serve in order, so legs are attributed
// to the route the rider most plausibly took.
func (e *Extractor) RankRoutesByVisitSupport(visits []tripmap.Visit) []*transit.Route {
	type scored struct {
		rt *transit.Route
		n  int
	}
	all := e.transit.Routes()
	ranked := make([]scored, 0, len(all))
	for _, rt := range all {
		n := 0
		for i := 0; i+1 < len(visits); i++ {
			fi := rt.StopIndex(visits[i].Stop)
			ti := rt.StopIndex(visits[i+1].Stop)
			if fi >= 0 && ti > fi {
				n++
			}
		}
		ranked = append(ranked, scored{rt: rt, n: n})
	}
	// Stable selection sort by descending support keeps determinism and
	// is tiny (route counts are single digits).
	for i := 0; i < len(ranked); i++ {
		best := i
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].n > ranked[best].n {
				best = j
			}
		}
		ranked[i], ranked[best] = ranked[best], ranked[i]
	}
	out := make([]*transit.Route, len(ranked))
	for i, s := range ranked {
		out[i] = s.rt
	}
	return out
}

// LegBetween finds the road stretch between two stops on the
// best-supported route serving them in order. The pair may skip
// intermediate stops (nobody tapped there): LegBetween concatenates the
// intermediate legs, implementing the §III-D merge.
func (e *Extractor) LegBetween(routes []*transit.Route, from, to transit.StopID) (transit.Leg, bool) {
	net := e.transit.Network()
	for _, rt := range routes {
		fi := rt.StopIndex(from)
		if fi < 0 {
			continue
		}
		ti := rt.StopIndex(to)
		if ti <= fi {
			continue
		}
		return rt.LegBetween(net, fi, ti), true
	}
	return transit.Leg{}, false
}

// LegFreeKmh returns the harmonic-mean free-flow speed over a leg
// (total length / total free-flow time), which is the free speed the
// Eq. 3 "a" term needs for a multi-segment stretch.
func LegFreeKmh(net *road.Network, leg transit.Leg) float64 {
	var timeS float64
	for _, sid := range leg.Segments {
		timeS += net.Segment(sid).FreeTravelS()
	}
	if timeS <= 0 {
		return 0
	}
	return leg.LengthM / timeS * 3.6
}

// Estimator is stage 5: observations fold into the Bayesian per-segment
// traffic estimator (Eq. 4). The estimator is internally synchronized,
// but fold order affects the fused numbers, so callers serialize Run
// calls when determinism matters (the batch-ingest path folds in input
// order).
type Estimator struct {
	instrument
	est *traffic.Estimator
}

// EstimateInput is one trip's extracted observations.
type EstimateInput struct {
	Observations []traffic.Observation
}

// EstimateOutput counts the folded and rejected observations.
type EstimateOutput struct {
	Folded    int
	Discarded int
}

// NewEstimatorStage builds the estimation sink over a traffic
// estimator.
func NewEstimatorStage(est *traffic.Estimator, hook Hook) *Estimator {
	return &Estimator{instrument: instrument{name: "estimate", hook: hook}, est: est}
}

// Run folds the observations into the estimator; individually invalid
// observations are dropped, never failing the trip.
func (e *Estimator) Run(ctx context.Context, in EstimateInput) EstimateOutput {
	start := e.now()
	var out EstimateOutput
	for _, o := range in.Observations {
		if err := e.est.AddObservation(o); err != nil {
			out.Discarded++
			continue
		}
		out.Folded++
	}
	e.observe(ctx, len(in.Observations), out.Folded, out.Discarded, start)
	return out
}

// Pipeline composes the five Fig. 4 stages in order.
type Pipeline struct {
	Match    *Matcher
	Cluster  *Clusterer
	Map      *Mapper
	Extract  *Extractor
	Estimate *Estimator
}

// Config bundles the stage tunables a pipeline needs beyond its
// databases.
type Config struct {
	// Cluster are the Eq. 1 co-clustering constants.
	Cluster cluster.Params
	// MinSpeedKmh / MaxSpeedKmh bound plausible leg observations.
	MinSpeedKmh, MaxSpeedKmh float64
	// Hook, when non-nil, observes every stage run.
	Hook Hook
	// Clock, when non-nil, replaces the wall clock behind per-stage
	// duration metrics; tests pass a clock.Fake for determinism.
	Clock clock.Clock
}

// New assembles a pipeline over the fingerprint database, transit
// database, and traffic estimator.
func New(fpdb *fingerprint.DB, tdb *transit.DB, est *traffic.Estimator, cfg Config) *Pipeline {
	p := &Pipeline{
		Match:    NewMatcher(fpdb, cfg.Hook),
		Cluster:  NewClusterer(cfg.Cluster, cfg.Hook),
		Map:      NewMapper(tdb, cfg.Hook),
		Extract:  NewExtractor(tdb, cfg.MinSpeedKmh, cfg.MaxSpeedKmh, cfg.Hook),
		Estimate: NewEstimatorStage(est, cfg.Hook),
	}
	if cfg.Clock != nil {
		p.Match.SetClock(cfg.Clock)
		p.Cluster.SetClock(cfg.Clock)
		p.Map.SetClock(cfg.Clock)
		p.Extract.SetClock(cfg.Clock)
		p.Estimate.SetClock(cfg.Clock)
	}
	return p
}

// Stages lists the components in pipeline order.
func (p *Pipeline) Stages() []Stage {
	return []Stage{p.Match, p.Cluster, p.Map, p.Extract, p.Estimate}
}

// Metrics snapshots every stage's counters in pipeline order.
func (p *Pipeline) Metrics() []Metrics {
	stages := p.Stages()
	out := make([]Metrics, len(stages))
	for i, s := range stages {
		out[i] = s.Metrics()
	}
	return out
}
