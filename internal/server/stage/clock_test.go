package stage

import (
	"context"
	"sync"
	"testing"
	"time"

	"busprobe/internal/clock"
	"busprobe/internal/core/cluster"
	"busprobe/internal/core/traffic"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/transit"
)

// TestFixedClockMakesDurationsDeterministic pins per-stage DurationNs
// exactly: with a stepping Fake clock, each Run reads the clock twice
// (start, observe), so every run contributes exactly one step.
func TestFixedClockMakesDurationsDeterministic(t *testing.T) {
	const step = 5 * time.Millisecond
	m := NewMatcher(emptyFingerprintDB(t), nil)
	m.SetClock(clock.NewFake(time.Unix(1000, 0), step))

	const runs = 4
	for i := 0; i < runs; i++ {
		m.Run(context.Background(), MatchInput{Samples: []probe.Sample{sampleAt(float64(i))}})
	}
	got := m.Metrics()
	if want := int64(runs) * int64(step); got.DurationNs != want {
		t.Fatalf("DurationNs = %d, want %d (deterministic under Fake clock)", got.DurationNs, want)
	}
	if got.Runs != runs {
		t.Fatalf("Runs = %d, want %d", got.Runs, runs)
	}
}

// TestPipelineClockConfigReachesEveryStage proves Config.Clock is wired
// into all five stages, and hooks see the same pinned durations.
func TestPipelineClockConfigReachesEveryStage(t *testing.T) {
	const step = time.Millisecond
	tdb := transit.NewBuilder(road.NewNetwork(nil, nil)).Build()
	est, err := traffic.NewEstimator(traffic.DefaultModel(), traffic.DefaultPeriodS, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var hookDs []time.Duration
	p := New(emptyFingerprintDB(t), tdb, est, Config{
		Cluster:     cluster.DefaultParams(),
		MinSpeedKmh: 1,
		MaxSpeedKmh: 100,
		Hook: func(_ context.Context, _ string, _, _, _ int, d time.Duration) {
			mu.Lock()
			hookDs = append(hookDs, d)
			mu.Unlock()
		},
		Clock: clock.NewFake(time.Unix(0, 0), step),
	})

	p.Match.Run(context.Background(), MatchInput{})
	if _, err := p.Cluster.Run(context.Background(), ClusterInput{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Map.Run(context.Background(), MapInput{}); err != nil {
		t.Fatal(err)
	}
	p.Extract.Run(context.Background(), ExtractInput{})
	p.Estimate.Run(context.Background(), EstimateInput{})

	for _, m := range p.Metrics() {
		if m.DurationNs != int64(step) {
			t.Fatalf("stage %s DurationNs = %d, want %d", m.Stage, m.DurationNs, int64(step))
		}
	}
	if len(hookDs) != 5 {
		t.Fatalf("hook fired %d times, want 5", len(hookDs))
	}
	for i, d := range hookDs {
		if d != step {
			t.Fatalf("hook observation %d duration = %v, want %v", i, d, step)
		}
	}
}
