package stage

import (
	"context"
	"sync"
	"testing"
	"time"

	"busprobe/internal/cellular"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/probe"
)

func emptyFingerprintDB(t *testing.T) *fingerprint.DB {
	t.Helper()
	db, err := fingerprint.NewDB(fingerprint.DefaultScoring(), fingerprint.DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func sampleAt(tS float64) probe.Sample {
	return probe.Sample{
		TimeS:    tS,
		Readings: []cellular.Reading{{Cell: 1, RSS: -60}, {Cell: 2, RSS: -70}},
	}
}

func TestMatcherEmptyDBDropsEverything(t *testing.T) {
	m := NewMatcher(emptyFingerprintDB(t), nil)
	in := MatchInput{Samples: []probe.Sample{sampleAt(1), sampleAt(2), sampleAt(3)}}
	out := m.Run(context.Background(), in)
	if len(out.Elements) != 0 {
		t.Errorf("empty DB matched %d samples", len(out.Elements))
	}
	if out.Discarded != 3 {
		t.Errorf("discarded = %d, want 3", out.Discarded)
	}
	got := m.Metrics()
	if got.Stage != "match" || got.Runs != 1 || got.ItemsIn != 3 || got.ItemsOut != 0 || got.Dropped != 3 {
		t.Errorf("metrics = %+v", got)
	}
}

func TestInstrumentAccumulatesAcrossRuns(t *testing.T) {
	m := NewMatcher(emptyFingerprintDB(t), nil)
	m.Run(context.Background(), MatchInput{Samples: []probe.Sample{sampleAt(1), sampleAt(2)}})
	m.Run(context.Background(), MatchInput{Samples: []probe.Sample{sampleAt(3)}})
	got := m.Metrics()
	if got.Runs != 2 || got.ItemsIn != 3 || got.Dropped != 3 {
		t.Errorf("metrics = %+v", got)
	}
	if got.DurationNs < 0 {
		t.Errorf("negative duration %d", got.DurationNs)
	}
	if got.Duration() != time.Duration(got.DurationNs) {
		t.Error("Duration() disagrees with DurationNs")
	}
}

func TestHookObservesEveryRun(t *testing.T) {
	type call struct {
		stage            string
		in, out, dropped int
	}
	var mu sync.Mutex
	var calls []call
	hook := func(_ context.Context, stage string, itemsIn, itemsOut, dropped int, d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		calls = append(calls, call{stage, itemsIn, itemsOut, dropped})
	}
	m := NewMatcher(emptyFingerprintDB(t), hook)
	m.Run(context.Background(), MatchInput{Samples: []probe.Sample{sampleAt(1), sampleAt(2)}})
	m.Run(context.Background(), MatchInput{})
	if len(calls) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(calls))
	}
	if calls[0] != (call{"match", 2, 0, 2}) {
		t.Errorf("first call = %+v", calls[0])
	}
	if calls[1] != (call{"match", 0, 0, 0}) {
		t.Errorf("second call = %+v", calls[1])
	}
}

func TestPipelineMetricsOrder(t *testing.T) {
	// Construction and metrics never touch the databases, so nil
	// dependencies are fine here.
	p := New(nil, nil, nil, Config{})
	want := []string{"match", "cluster", "map", "extract", "estimate"}
	ms := p.Metrics()
	if len(ms) != len(want) {
		t.Fatalf("metrics rows = %d, want %d", len(ms), len(want))
	}
	for i, m := range ms {
		if m.Stage != want[i] {
			t.Errorf("stage %d = %q, want %q", i, m.Stage, want[i])
		}
		if m.Runs != 0 || m.ItemsIn != 0 {
			t.Errorf("fresh stage %q has counts: %+v", m.Stage, m)
		}
	}
	stages := p.Stages()
	for i, s := range stages {
		if s.Name() != want[i] {
			t.Errorf("Stages()[%d] = %q, want %q", i, s.Name(), want[i])
		}
	}
}

func TestMetricsConcurrentReads(t *testing.T) {
	// Metrics snapshots must be safe while runs are in flight.
	m := NewMatcher(emptyFingerprintDB(t), nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.Run(context.Background(), MatchInput{Samples: []probe.Sample{sampleAt(float64(i))}})
				_ = m.Metrics()
			}
		}()
	}
	wg.Wait()
	got := m.Metrics()
	if got.Runs != 200 || got.ItemsIn != 200 {
		t.Errorf("metrics after concurrent runs = %+v", got)
	}
}
