// Package stage decomposes the backend's Fig. 4 processing pipeline
// into named, independently instrumented components: per-sample
// matching, per-bus-stop co-clustering, per-trip ML mapping,
// observation extraction, and traffic estimation. Each stage has a
// typed input/output record and per-stage counters (runs, items,
// drops, cumulative duration), so stages can be swapped, measured, and
// scaled independently — the backend's ProcessTrip is a thin
// composition over them, and the concurrent batch-ingest path runs the
// CPU-bound stages from many goroutines at once.
package stage

import (
	"context"
	"sync/atomic"
	"time"

	"busprobe/internal/clock"
)

// Metrics is a point-in-time snapshot of one stage's counters.
type Metrics struct {
	Stage      string `json:"stage"`
	Runs       int64  `json:"runs"`
	ItemsIn    int64  `json:"itemsIn"`
	ItemsOut   int64  `json:"itemsOut"`
	Dropped    int64  `json:"dropped"`
	DurationNs int64  `json:"durationNs"`
}

// Duration returns the stage's cumulative run time.
func (m Metrics) Duration() time.Duration { return time.Duration(m.DurationNs) }

// Hook observes one completed stage run (counters + duration). The
// context is the run's request context — it carries the trip's trace
// ID, which is how the observability layer turns stage runs into
// spans. Hooks must be safe for concurrent use: the batch-ingest path
// runs stages from many goroutines. Hooks must not block; they run on
// the ingest hot path.
type Hook func(ctx context.Context, stage string, itemsIn, itemsOut, dropped int, d time.Duration)

// Stage is the common surface of every pipeline component.
type Stage interface {
	// Name identifies the stage ("match", "cluster", "map", "extract",
	// "estimate").
	Name() string
	// Metrics snapshots the stage's counters.
	Metrics() Metrics
	// SetHook replaces the stage's run hook (before any ingestion).
	SetHook(h Hook)
	// CurrentHook returns the installed hook, so layers chain instead
	// of displacing each other.
	CurrentHook() Hook
	// SetClock overrides the clock behind duration metrics.
	SetClock(c clock.Clock)
}

// instrument carries a stage's identity and counters; every concrete
// stage embeds one. The counters are atomics so concurrent stage runs
// never block each other — or a Metrics reader — on a lock. Durations
// are read through an injected clock.Clock (wall by default), so tests
// pin per-stage DurationNs exactly and production metrics cost one
// interface call.
type instrument struct {
	name string
	hook Hook
	clk  clock.Clock // nil means wall clock

	runs       atomic.Int64
	itemsIn    atomic.Int64
	itemsOut   atomic.Int64
	dropped    atomic.Int64
	durationNs atomic.Int64
}

// SetClock overrides the clock used for duration metrics. Tests inject
// a clock.Fake to make per-stage DurationNs deterministic; a nil or
// unset clock reads wall time.
func (i *instrument) SetClock(c clock.Clock) { i.clk = c }

// SetHook replaces the stage's run hook. Like SetClock (and the
// backend's observation router), it must be called before any
// ingestion; the field is read-only once stages run concurrently.
func (i *instrument) SetHook(h Hook) { i.hook = h }

// CurrentHook returns the installed hook (nil if none), so an
// observability layer can chain rather than displace it.
func (i *instrument) CurrentHook() Hook { return i.hook }

// now reads the stage's clock.
func (i *instrument) now() time.Time {
	if i.clk != nil {
		return i.clk.Now()
	}
	return clock.Wall{}.Now()
}

// Name implements Stage.
func (i *instrument) Name() string { return i.name }

// Metrics implements Stage.
func (i *instrument) Metrics() Metrics {
	return Metrics{
		Stage:      i.name,
		Runs:       i.runs.Load(),
		ItemsIn:    i.itemsIn.Load(),
		ItemsOut:   i.itemsOut.Load(),
		Dropped:    i.dropped.Load(),
		DurationNs: i.durationNs.Load(),
	}
}

// Merge sums per-stage snapshots by stage name, preserving the order in
// which names first appear. A sharded deployment merges its shards'
// pipelines with it: every shard reports the same stage names, so the
// result has one row per stage with city-wide totals and no double
// counting.
func Merge(groups ...[]Metrics) []Metrics {
	var order []string
	byName := make(map[string]*Metrics)
	for _, ms := range groups {
		for _, m := range ms {
			agg := byName[m.Stage]
			if agg == nil {
				order = append(order, m.Stage)
				cp := m
				byName[m.Stage] = &cp
				continue
			}
			agg.Runs += m.Runs
			agg.ItemsIn += m.ItemsIn
			agg.ItemsOut += m.ItemsOut
			agg.Dropped += m.Dropped
			agg.DurationNs += m.DurationNs
		}
	}
	out := make([]Metrics, len(order))
	for i, name := range order {
		out[i] = *byName[name]
	}
	return out
}

// observe folds one completed run into the counters and fires the
// hook, if any.
func (i *instrument) observe(ctx context.Context, in, out, dropped int, start time.Time) {
	d := i.now().Sub(start)
	i.runs.Add(1)
	i.itemsIn.Add(int64(in))
	i.itemsOut.Add(int64(out))
	i.dropped.Add(int64(dropped))
	i.durationNs.Add(int64(d))
	if i.hook != nil {
		i.hook(ctx, i.name, in, out, dropped, d)
	}
}
