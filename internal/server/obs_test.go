package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"busprobe/internal/clock"
	"busprobe/internal/faults"
	"busprobe/internal/obs"
)

var obsEpoch = time.Date(2015, 6, 29, 0, 0, 0, 0, time.UTC)

func fakeObsCore() *obs.Core {
	return obs.NewCore(clock.NewFake(obsEpoch, time.Microsecond))
}

// TestTrafficByteIdenticalWithObs is the acceptance bar for the
// observability layer: enabling it must not perturb the product. The
// same corpus replayed through an instrumented and a bare deployment —
// monolithic and 4-shard — must yield byte-identical /v1/traffic.
func TestTrafficByteIdenticalWithObs(t *testing.T) {
	w, fpdb := twinWorld(t)
	trips := twinCorpus(t, w, faults.Config{})

	bare, err := NewBackend(DefaultConfig(), w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}
	obsCfg := DefaultConfig()
	obsCfg.Obs = fakeObsCore()
	instrumented, err := NewBackend(obsCfg, w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}

	fourBare := newTwinCoordinator(t, w, fpdb, 4)
	fourObsCfg := DefaultConfig()
	fourObsCfg.Obs = fakeObsCore()
	fourObs, err := NewCoordinator(fourObsCfg, w.Transit, fpdb, 4)
	if err != nil {
		t.Fatal(err)
	}

	for _, api := range []API{bare, instrumented, fourBare, fourObs} {
		replayInto(t, api, trips)
		api.Advance(3 * clock.DayS)
	}

	want := trafficBytes(t, bare)
	if len(bare.Traffic()) == 0 {
		t.Fatal("campaign produced no estimates; equivalence is vacuous")
	}
	if got := trafficBytes(t, instrumented); !bytes.Equal(got, want) {
		t.Errorf("monolith /v1/traffic changed with observability enabled")
	}
	if got := trafficBytes(t, fourBare); !bytes.Equal(got, want) {
		t.Errorf("bare 4-shard /v1/traffic differs from monolith")
	}
	if got := trafficBytes(t, fourObs); !bytes.Equal(got, want) {
		t.Errorf("instrumented 4-shard /v1/traffic differs from monolith")
	}

	// The instrumentation must actually have fired.
	if obsCfg.Obs.Tracer.Emitted() == 0 {
		t.Error("monolith tracer emitted no spans")
	}
	if fourObsCfg.Obs.Tracer.Emitted() == 0 {
		t.Error("sharded tracer emitted no spans")
	}
}

// TestTripTraceReconstruction processes one clean trip and reconstructs
// its path from the trace: every pipeline stage it crossed appears as a
// span of the trip's deterministic trace, in execution order, tagged
// with the owning shard.
func TestTripTraceReconstruction(t *testing.T) {
	w := testWorld(t)
	fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	core := fakeObsCore()
	cfg.Obs = core
	b, err := NewBackend(cfg, w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}

	trip, _ := rideTrip(t, w, 0, 0, 5, "traced-1")
	if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
		t.Fatal(err)
	}

	spans := core.Tracer.Spans(obs.TripTrace("traced-1"))
	if len(spans) == 0 {
		t.Fatal("no spans for the trip trace")
	}
	var names []string
	for i, sp := range spans {
		if sp.Span != i {
			t.Errorf("span %d has index %d; per-trace indices must be sequential", i, sp.Span)
		}
		names = append(names, sp.Name)
		shard := ""
		for _, a := range sp.Attrs {
			if a.Key == "shard" {
				shard = a.Value
			}
		}
		if shard != "0" {
			t.Errorf("span %q shard attr = %q, want \"0\"", sp.Name, shard)
		}
		if sp.End.Before(sp.Start) {
			t.Errorf("span %q ends before it starts", sp.Name)
		}
	}
	// The full Fig. 4 path, then the enclosing trip span last.
	for _, want := range []string{"stage.match", "stage.cluster", "stage.map", "stage.extract", "stage.estimate", "trip"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("trace lacks %q span (have %v)", want, names)
		}
	}
	if names[len(names)-1] != "trip" {
		t.Errorf("last span = %q, want the enclosing \"trip\" span", names[len(names)-1])
	}

	// Stage order within the trace follows the pipeline.
	idx := func(name string) int {
		for i, n := range names {
			if n == name {
				return i
			}
		}
		return -1
	}
	if !(idx("stage.match") < idx("stage.cluster") && idx("stage.cluster") < idx("stage.map")) {
		t.Errorf("stage spans out of pipeline order: %v", names)
	}
}

// TestHTTPTraceHeaderJoinsSpans checks the wire contract: a caller
// sending X-Busprobe-Trace sees the pipeline's spans under its own
// trace ID instead of the trip-derived one.
func TestHTTPTraceHeaderJoinsSpans(t *testing.T) {
	w := testWorld(t)
	fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	core := fakeObsCore()
	cfg.Obs = core
	b, err := NewBackend(cfg, w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(b, HandlerConfig{Obs: core})

	trip, _ := rideTrip(t, w, 0, 0, 5, "hdr-1")
	body, err := json.Marshal(trip)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/trips", bytes.NewReader(body))
	req.Header.Set(obs.TraceHeader, "req-abc")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("upload status = %d: %s", rec.Code, rec.Body.String())
	}

	if spans := core.Tracer.Spans("req-abc"); len(spans) == 0 {
		t.Error("no spans joined the caller-provided trace")
	}
	if spans := core.Tracer.Spans(obs.TripTrace("hdr-1")); len(spans) != 0 {
		t.Error("trip-derived trace used despite a caller-provided trace ID")
	}
}

// TestMetricsEndpointExposition uploads through the instrumented
// handler and checks the scrape: backend counters, stage histograms,
// and HTTP series all expose, and repeated scrapes of a quiescent
// backend are byte-stable under the fake clock.
func TestMetricsEndpointExposition(t *testing.T) {
	w := testWorld(t)
	fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	core := fakeObsCore()
	cfg.Obs = core
	b, err := NewBackend(cfg, w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(b, HandlerConfig{Obs: core})

	trip, _ := rideTrip(t, w, 0, 0, 5, "scrape-1")
	body, err := json.Marshal(trip)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/trips", bytes.NewReader(body)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("upload status = %d", rec.Code)
	}

	scrape := func() string {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/metrics status = %d", rec.Code)
		}
		return rec.Body.String()
	}
	got := scrape()
	for _, want := range []string{
		`busprobe_trips_received_total{shard="0"} 1`,
		`busprobe_stage_runs_total{shard="0",stage="match"} 1`,
		`busprobe_stage_duration_seconds_bucket{shard="0",stage="estimate",le="+Inf"}`,
		`busprobe_stage_runs_total{shard="0",stage="admission"}`,
		`busprobe_http_requests_total{path="/v1/trips"} 1`,
		"# TYPE busprobe_stage_duration_seconds histogram",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape lacks %q", want)
		}
	}

	// Quiescent backend, fake clock: /v1/stats projections and
	// histograms must not drift between scrapes... except the HTTP
	// series counting the scrapes themselves; mask those lines.
	stable := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "busprobe_http_") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if a, b := stable(scrape()), stable(scrape()); a != b {
		t.Errorf("quiescent scrapes differ:\n%s\nvs\n%s", a, b)
	}
}

// TestPprofGate: the profiling surface only exists when asked for.
func TestPprofGate(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)

	on := NewHandler(b, HandlerConfig{Pprof: true})
	rec := httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof index with -pprof = %d, want 200", rec.Code)
	}

	off := NewHandler(b, HandlerConfig{})
	rec = httptest.NewRecorder()
	off.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code == http.StatusOK {
		t.Errorf("pprof index without -pprof = %d, want non-200", rec.Code)
	}
}

// TestProcessTripHonorsContext: a canceled request context must stop
// admission before any state changes.
func TestProcessTripHonorsContext(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	trip, _ := rideTrip(t, w, 0, 0, 5, "ctx-1")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.ProcessTrip(ctx, trip); err == nil {
		t.Fatal("ProcessTrip accepted a trip on a canceled context")
	}
	if st := b.Stats(); st.TripsReceived != 0 {
		t.Errorf("canceled upload still counted: %+v", st)
	}
	// The same trip must remain ingestible afterwards (no dedup residue).
	if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
		t.Fatalf("trip poisoned by canceled attempt: %v", err)
	}
}
