package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"busprobe/internal/obs"
	"busprobe/internal/phone"
	"busprobe/internal/probe"
	"busprobe/internal/server/stage"
)

// DefaultClientTimeout bounds a client request when the caller does not
// supply its own http.Client. Without it, a stalled backend would hang
// Upload and Healthy forever.
const DefaultClientTimeout = 15 * time.Second

// Client talks to a backend over its HTTP API. It implements
// phone.Uploader, so simulated phones can upload over a real network
// path.
type Client struct {
	baseURL string
	http    *http.Client
}

var (
	_ phone.Uploader      = (*Client)(nil)
	_ phone.BatchUploader = (*Client)(nil)
)

// NewClient returns a client for the backend at baseURL (e.g.
// "http://127.0.0.1:8080"). A nil httpClient gets a private client with
// DefaultClientTimeout, never the timeout-less http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("server: empty base URL")
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: DefaultClientTimeout}
	}
	return &Client{baseURL: strings.TrimRight(baseURL, "/"), http: httpClient}, nil
}

// statusErr maps a rejection status to the matching sentinel so callers
// classify HTTP rejections exactly like in-process ones; unknown
// statuses map to nil.
func statusErr(status int) error {
	switch status {
	case http.StatusConflict:
		return ErrDuplicateTrip
	case http.StatusBadRequest:
		return ErrInvalidTrip
	case http.StatusTooManyRequests:
		return ErrOverloaded
	case http.StatusBadGateway:
		return ErrShardUnavailable
	default:
		return nil
	}
}

// post sends a JSON body with the request context; a trace ID in the
// context rides the X-Busprobe-Trace header, so server-side spans join
// the caller's trace across the network hop.
func (c *Client) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tr := obs.TraceID(ctx); tr != "" {
		req.Header.Set(obs.TraceHeader, tr)
	}
	return c.http.Do(req)
}

// Upload posts one trip. Rejections carry the server sentinels: 409 →
// ErrDuplicateTrip, 400 → ErrInvalidTrip, 429 → ErrOverloaded. The
// context cancels the round trip and propagates the caller's trace.
func (c *Client) Upload(ctx context.Context, trip probe.Trip) error {
	body, err := json.Marshal(&trip)
	if err != nil {
		return fmt.Errorf("server: encode trip: %w", err)
	}
	resp, err := c.post(ctx, "/v1/trips", body)
	if err != nil {
		return fmt.Errorf("server: upload: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		if sent := statusErr(resp.StatusCode); sent != nil {
			return fmt.Errorf("upload rejected (%d): %s: %w", resp.StatusCode, strings.TrimSpace(string(msg)), sent)
		}
		return fmt.Errorf("server: upload rejected (%d): %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// UploadTrips posts a batch of trips through the server's concurrent
// ingest endpoint, returning the per-trip outcomes in input order.
func (c *Client) UploadTrips(ctx context.Context, trips []probe.Trip) (BatchUploadResponseJSON, error) {
	var out BatchUploadResponseJSON
	body, err := json.Marshal(trips)
	if err != nil {
		return out, fmt.Errorf("server: encode batch: %w", err)
	}
	resp, err := c.post(ctx, "/v1/trips/batch", body)
	if err != nil {
		return out, fmt.Errorf("server: batch upload: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		if resp.StatusCode == http.StatusTooManyRequests {
			return out, fmt.Errorf("batch upload shed (retry after %s): %w",
				resp.Header.Get("Retry-After"), ErrOverloaded)
		}
		return out, fmt.Errorf("server: batch upload rejected (%d): %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("server: batch upload: decode: %w", err)
	}
	return out, nil
}

// UploadBatch implements phone.BatchUploader over UploadTrips: errs[i]
// reports trip i's outcome.
func (c *Client) UploadBatch(ctx context.Context, trips []probe.Trip) []error {
	errs := make([]error, len(trips))
	out, err := c.UploadTrips(ctx, trips)
	if err != nil || len(out.Results) != len(trips) {
		if err == nil {
			err = fmt.Errorf("server: batch upload: %d results for %d trips", len(out.Results), len(trips))
		}
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	for i, row := range out.Results {
		if row.Accepted {
			continue
		}
		switch row.Code {
		case "duplicate":
			errs[i] = fmt.Errorf("upload rejected: %s: %w", row.Error, ErrDuplicateTrip)
		case "invalid":
			errs[i] = fmt.Errorf("upload rejected: %s: %w", row.Error, ErrInvalidTrip)
		case "overloaded":
			errs[i] = fmt.Errorf("upload rejected: %s: %w", row.Error, ErrOverloaded)
		default:
			errs[i] = fmt.Errorf("server: upload rejected: %s", row.Error)
		}
	}
	return errs
}

// PipelineMetrics fetches the backend's per-stage instrumentation
// counters.
func (c *Client) PipelineMetrics(ctx context.Context) ([]stage.Metrics, error) {
	var out []stage.Metrics
	if err := c.getJSON(ctx, "/v1/pipeline", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Traffic fetches the full traffic-map snapshot.
func (c *Client) Traffic(ctx context.Context) ([]SegmentEstimateJSON, error) {
	var out []SegmentEstimateJSON
	if err := c.getJSON(ctx, "/v1/traffic", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// TrafficWatch long-polls /v1/traffic/watch for the delta past version
// since, holding the poll up to waitS seconds (0 = return immediately,
// negative = server default). The context must outlive the wait —
// callers using the default http.Client should keep waitS under
// DefaultClientTimeout.
func (c *Client) TrafficWatch(ctx context.Context, since uint64, waitS float64) (TrafficWatchJSON, error) {
	var out TrafficWatchJSON
	path := fmt.Sprintf("/v1/traffic/watch?since=%d", since)
	if waitS >= 0 {
		path += fmt.Sprintf("&waitS=%g", waitS)
	}
	err := c.getJSON(ctx, path, &out)
	return out, err
}

// Stats fetches the backend counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.getJSON(ctx, "/v1/stats", &out)
	return out, err
}

// Shards fetches the per-shard footprint and counters (one row for a
// monolithic backend).
func (c *Client) Shards(ctx context.Context) ([]ShardStatus, error) {
	var out []ShardStatus
	if err := c.getJSON(ctx, "/v1/shards", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Region fetches the inferred regional congestion summary.
func (c *Client) Region(ctx context.Context) (RegionJSON, error) {
	var out RegionJSON
	err := c.getJSON(ctx, "/v1/region", &out)
	return out, err
}

// Arrivals fetches downstream ETAs for a bus departing stop index
// fromIdx of a route at departS.
func (c *Client) Arrivals(ctx context.Context, route string, fromIdx int, departS float64) ([]ArrivalJSON, error) {
	var out []ArrivalJSON
	path := fmt.Sprintf("/v1/arrivals?route=%s&stop=%d&depart=%g", route, fromIdx, departS)
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Healthy reports whether the backend answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return fmt.Errorf("server: GET %s: %w", path, err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("server: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("server: GET %s: decode: %w", path, err)
	}
	return nil
}
