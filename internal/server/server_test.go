package server

import (
	"busprobe/internal/clock"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"busprobe/internal/cellular"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/probe"
	"busprobe/internal/sim"
	"busprobe/internal/stats"
	"busprobe/internal/transit"
)

// testWorld builds a compact world shared by the server tests.
func testWorld(t *testing.T) *sim.World {
	t.Helper()
	cfg := sim.DefaultWorldConfig()
	cfg.Road.WidthM = 3000
	cfg.Road.HeightM = 2000
	cfg.Plan.RouteIDs = []transit.RouteID{"179", "243"}
	cfg.Plan.MinStops = 6
	cfg.Plan.MaxStops = 10
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testBackend(t *testing.T, w *sim.World) *Backend {
	t.Helper()
	fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(DefaultConfig(), w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// rideTrip fabricates a realistic trip along a route: samples at each
// visited stop with scans taken at the platform, 2 beeps per stop.
func rideTrip(t *testing.T, w *sim.World, routeIdx, from, to int, id string) (probe.Trip, []transit.StopID) {
	t.Helper()
	rt := w.Transit.Routes()[routeIdx]
	if to > rt.NumStops()-1 {
		to = rt.NumStops() - 1
	}
	rng := stats.NewRNG(99).Fork(id)
	trip := probe.Trip{ID: id, DeviceID: "dev-test"}
	var truth []transit.StopID
	timeS := 8 * 3600.0
	for i := from; i <= to; i++ {
		stop := w.Transit.Stop(rt.Stops[i])
		truth = append(truth, stop.ID)
		for k := 0; k < 2; k++ {
			readings := w.Cells.Scan(stop.Pos, cellular.Condition{OnBus: true}, rng)
			trip.Samples = append(trip.Samples, probe.Sample{
				TimeS:    timeS + float64(k)*3,
				Readings: readings,
			})
		}
		timeS += 70 + rng.Range(0, 20) // drive to next stop
	}
	return trip, truth
}

func TestBuildFingerprintDBCoversAllStops(t *testing.T) {
	w := testWorld(t)
	fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if fpdb.Len() != w.Transit.NumStops() {
		t.Errorf("fingerprinted %d of %d stops", fpdb.Len(), w.Transit.NumStops())
	}
	if _, err := BuildFingerprintDB(w.Cells, w.Transit, 0, DefaultConfig(), 7); err == nil {
		t.Error("want error for zero runs")
	}
	if _, err := BuildFingerprintDB(nil, w.Transit, 2, DefaultConfig(), 7); err == nil {
		t.Error("want error for nil deployment")
	}
}

func TestBackendValidation(t *testing.T) {
	w := testWorld(t)
	fpdb, err := fingerprint.NewDB(fingerprint.DefaultScoring(), fingerprint.DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBackend(DefaultConfig(), nil, fpdb); err == nil {
		t.Error("want error for nil transit DB")
	}
	bad := DefaultConfig()
	bad.MinSpeedKmh = 0
	if _, err := NewBackend(bad, w.Transit, fpdb); err == nil {
		t.Error("want error for bad speed bounds")
	}
}

func TestPipelineMapsCleanTrip(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	trip, truth := rideTrip(t, w, 0, 1, 6, "trip-clean")
	res, err := b.ProcessTrip(context.Background(), trip)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != len(trip.Samples) {
		t.Errorf("samples = %d", res.Samples)
	}
	if len(res.Visits) < len(truth)-1 {
		t.Fatalf("mapped %d visits, truth has %d stops", len(res.Visits), len(truth))
	}
	// Count correctly identified stops (order-aligned tolerant check:
	// each mapped visit should be in the truth sequence).
	correct := 0
	for i, v := range res.Visits {
		if i < len(truth) && v.Stop == truth[i] {
			correct++
		}
	}
	if correct < len(res.Visits)*7/10 {
		t.Errorf("only %d/%d visits correct (truth %v, got %+v)",
			correct, len(res.Visits), truth, res.Visits)
	}
	if res.Observations == 0 {
		t.Error("no traffic observations extracted")
	}
	b.Advance(9 * 3600)
	if len(b.Traffic()) == 0 {
		t.Error("no traffic estimates after advance")
	}
}

func TestTrafficSpeedPlausible(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	trip, _ := ridLongTrip(t, w)
	if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	b.Advance(10 * 3600)
	for sid, est := range b.Traffic() {
		if est.SpeedKmh < 2 || est.SpeedKmh > 90 {
			t.Errorf("segment %d speed %v implausible", sid, est.SpeedKmh)
		}
	}
}

// ridLongTrip is rideTrip over most of route 0.
func ridLongTrip(t *testing.T, w *sim.World) (probe.Trip, []transit.StopID) {
	rt := w.Transit.Routes()[0]
	return rideTrip(t, w, 0, 0, rt.NumStops()-1, "trip-long")
}

func TestDuplicateTripRejected(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	trip, _ := rideTrip(t, w, 0, 1, 4, "trip-dup")
	if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ProcessTrip(context.Background(), trip); err == nil {
		t.Error("duplicate accepted")
	}
	if b.Stats().DuplicateTrips != 1 {
		t.Errorf("stats = %+v", b.Stats())
	}
}

func TestInvalidTripRejected(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	bad := probe.Trip{ID: "", Samples: nil}
	if _, err := b.ProcessTrip(context.Background(), bad); err == nil {
		t.Error("invalid trip accepted")
	}
	if b.Stats().TripsRejected != 1 {
		t.Errorf("stats = %+v", b.Stats())
	}
}

func TestNoiseSamplesDiscarded(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	// Fabricate a trip whose samples carry junk cell IDs unseen in the
	// database: all samples fall below gamma and are dropped.
	trip := probe.Trip{ID: "junk", DeviceID: "d"}
	for i := 0; i < 5; i++ {
		trip.Samples = append(trip.Samples, probe.Sample{
			TimeS: float64(100 + i*40),
			Readings: []cellular.Reading{
				{Cell: cellular.CellID(900001 + i), RSS: -60},
				{Cell: cellular.CellID(900100 + i), RSS: -70},
			},
		})
	}
	res, err := b.ProcessTrip(context.Background(), trip)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 0 || len(res.Visits) != 0 {
		t.Errorf("junk trip produced matches: %+v", res)
	}
	if b.Stats().SamplesDiscarded != 5 {
		t.Errorf("stats = %+v", b.Stats())
	}
}

func TestCampaignIntoBackend(t *testing.T) {
	// Full integration: simulated campaign uploads into the backend
	// in-process; the backend produces a traffic map.
	w := testWorld(t)
	b := testBackend(t, w)
	cfg := sim.DefaultCampaignConfig()
	cfg.Days = 1
	cfg.Participants = 8
	cfg.SparseTripsPerDay = 4
	cfg.IntensiveFromDay = 99
	camp, err := sim.NewCampaign(w, cfg, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := camp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	b.Advance(clock.DayS)
	st := b.Stats()
	if st.TripsReceived == 0 || st.VisitsMapped == 0 {
		t.Fatalf("backend saw nothing: %+v", st)
	}
	if st.Observations == 0 {
		t.Fatalf("no observations: %+v", st)
	}
	snap := b.Traffic()
	if len(snap) == 0 {
		t.Fatal("empty traffic map")
	}
	// Matched share should be high: the radio model and matcher are
	// tuned so most samples clear gamma.
	matchRate := float64(st.SamplesMatched) / float64(st.SamplesReceived)
	if matchRate < 0.7 {
		t.Errorf("match rate = %v", matchRate)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()

	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if !client.Healthy(context.Background()) {
		t.Fatal("backend not healthy")
	}
	trip, _ := rideTrip(t, w, 0, 0, 5, "http-trip")
	if err := client.Upload(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	b.Advance(10 * 3600)
	rows, err := client.Traffic(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no traffic rows over HTTP")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Segment < rows[i-1].Segment {
			t.Fatal("rows not sorted")
		}
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.TripsReceived != 1 {
		t.Errorf("stats over HTTP = %+v", st)
	}
	// Duplicate via HTTP is a 422.
	if err := client.Upload(context.Background(), trip); err == nil {
		t.Error("duplicate accepted over HTTP")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()

	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/v1/trips", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON gave %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(srv.URL + "/v1/trips")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/trips gave %d", resp.StatusCode)
	}
	// Unknown segment.
	resp, err = http.Get(srv.URL + "/v1/traffic/segment?id=99999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown segment gave %d", resp.StatusCode)
	}
	// Bad segment id.
	resp, err = http.Get(srv.URL + "/v1/traffic/segment?id=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad segment id gave %d", resp.StatusCode)
	}
}

func TestHTTPSegmentEndpoint(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()
	trip, _ := ridLongTrip(t, w)
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Upload(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	b.Advance(12 * 3600)
	rows, err := client.Traffic(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	var got SegmentEstimateJSON
	resp, err := http.Get(srv.URL + "/v1/traffic/segment?id=" + strconv.Itoa(rows[0].Segment))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.SpeedKmh-rows[0].SpeedKmh) > 1e-9 {
		t.Errorf("segment endpoint mismatch: %v vs %v", got.SpeedKmh, rows[0].SpeedKmh)
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient("", nil); err == nil {
		t.Error("want error for empty URL")
	}
	c, err := NewClient("http://127.0.0.1:1", nil) // nothing listening
	if err != nil {
		t.Fatal(err)
	}
	if c.Healthy(context.Background()) {
		t.Error("dead endpoint reported healthy")
	}
	if err := c.Upload(context.Background(), probe.Trip{ID: "x", Samples: []probe.Sample{{TimeS: 1, Readings: []cellular.Reading{{Cell: 1, RSS: -60}}}}}); err == nil {
		t.Error("upload to dead endpoint succeeded")
	}
}

func TestHTTPRegionAndArrivals(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	// Before any estimates: region inference is unavailable (503).
	if _, err := client.Region(context.Background()); err == nil {
		t.Error("region should fail with no estimates")
	}
	trip, _ := ridLongTrip(t, w)
	if err := client.Upload(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	b.Advance(12 * 3600)
	region, err := client.Region(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if region.OverallIndex <= 0 || region.OverallIndex >= 1.2 {
		t.Errorf("overall index = %v", region.OverallIndex)
	}
	if region.CoveredZones == 0 {
		t.Error("no covered zones")
	}

	rt := w.Transit.Routes()[0]
	preds, err := client.Arrivals(context.Background(), string(rt.ID), 0, 13*3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != rt.NumStops()-1 {
		t.Fatalf("predictions = %d", len(preds))
	}
	prev := 13 * 3600.0
	for _, p := range preds {
		if p.ArriveS <= prev {
			t.Fatal("ETAs not increasing")
		}
		prev = p.ArriveS
	}
	// Bad requests.
	for _, path := range []string{
		"/v1/arrivals",
		"/v1/arrivals?route=&stop=0&depart=1",
		"/v1/arrivals?route=" + string(rt.ID) + "&stop=abc&depart=1",
		"/v1/arrivals?route=" + string(rt.ID) + "&stop=0&depart=xyz",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s gave %d", path, resp.StatusCode)
		}
	}
	// Unknown route is a 422.
	resp, err := http.Get(srv.URL + "/v1/arrivals?route=nope&stop=0&depart=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown route gave %d", resp.StatusCode)
	}
}

func TestHTTPRouteStatuses(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	srv := httptest.NewServer(Handler(b))
	defer srv.Close()
	trip, _ := ridLongTrip(t, w)
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Upload(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	b.Advance(12 * 3600)

	var rows []RouteStatusJSON
	resp, err := http.Get(srv.URL + "/v1/routes?depart=46800")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != w.Transit.NumRoutes() {
		t.Fatalf("routes = %d", len(rows))
	}
	for _, r := range rows {
		if r.EndToEndS <= 0 || r.LengthM <= 0 || r.Stops < 2 {
			t.Errorf("degenerate route status %+v", r)
		}
		if r.CoveredFrac < 0 || r.CoveredFrac > 1 {
			t.Errorf("covered frac %v", r.CoveredFrac)
		}
	}
	// Route 0 carried the trip, so it should have live coverage.
	if rows[0].CoveredFrac == 0 {
		t.Error("probed route has no live coverage")
	}
	// Missing depart is a 400.
	resp2, err := http.Get(srv.URL + "/v1/routes")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("missing depart gave %d", resp2.StatusCode)
	}
}
