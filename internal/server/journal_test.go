package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalAppendAndReplay(t *testing.T) {
	w := testWorld(t)
	b1 := testBackend(t, w)
	path := filepath.Join(t.TempDir(), "trips.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	up := &JournaledUploader{Journal: j, Backend: b1}
	for k := 0; k < 4; k++ {
		trip, _ := rideTrip(t, w, 0, 0, 6, fmt.Sprintf("journal-%d", k))
		if err := up.Upload(context.Background(), trip); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	b1.Advance(12 * 3600)
	want := b1.Traffic()
	if len(want) == 0 {
		t.Fatal("no estimates before restart")
	}

	// "Restart": a fresh backend rebuilt purely from the journal.
	b2 := testBackend(t, w)
	replayed, skipped, err := ReplayJournal(context.Background(), path, b2)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 4 || skipped != 0 {
		t.Fatalf("replayed=%d skipped=%d", replayed, skipped)
	}
	b2.Advance(12 * 3600)
	got := b2.Traffic()
	if len(got) != len(want) {
		t.Fatalf("rebuilt map has %d segments, want %d", len(got), len(want))
	}
	for sid, w1 := range want {
		w2, ok := got[sid]
		if !ok || w1.SpeedKmh != w2.SpeedKmh || w1.Reports != w2.Reports {
			t.Fatalf("segment %d differs after replay: %+v vs %+v", sid, w1, w2)
		}
	}
}

func TestReplaySkipsDuplicatesAndGarbage(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	path := filepath.Join(t.TempDir(), "trips.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	trip, _ := rideTrip(t, w, 0, 0, 4, "dup-journal")
	if err := j.Append(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(context.Background(), trip); err != nil { // duplicate record
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Torn tail: simulate a crash mid-write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"torn","samples":[{`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	replayed, skipped, err := ReplayJournal(context.Background(), path, b)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Errorf("replayed = %d, want 1", replayed)
	}
	if skipped != 2 { // duplicate + torn tail
		t.Errorf("skipped = %d, want 2", skipped)
	}
}

func TestReplaySkipsCorruptMiddleLine(t *testing.T) {
	// A corrupt line in the MIDDLE of the journal (a partial write that
	// later appends happened to follow, or disk damage) must cost only
	// that record: everything after it still replays.
	w := testWorld(t)
	b1 := testBackend(t, w)
	path := filepath.Join(t.TempDir(), "trips.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := rideTrip(t, w, 0, 0, 5, "mid-1")
	if err := j.Append(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"id\":\"garbled\",\"sam\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := rideTrip(t, w, 1, 0, 5, "mid-2")
	if err := j.Append(context.Background(), last); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, skipped, err := ReplayJournal(context.Background(), path, b1)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 2 {
		t.Errorf("replayed = %d, want 2 (records after the corrupt line must survive)", replayed)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if _, err := b1.ProcessTrip(context.Background(), last); err == nil {
		t.Error("trip after the corrupt line was not replayed")
	}
}

func TestReplayMissingFile(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	if _, _, err := ReplayJournal(context.Background(), filepath.Join(t.TempDir(), "nope.jsonl"), b); err == nil {
		t.Error("want error for missing journal")
	}
}

func TestOpenJournalBadPath(t *testing.T) {
	if _, err := OpenJournal(filepath.Join(t.TempDir(), "no", "dir", "j.jsonl")); err == nil {
		t.Error("want error for unwritable path")
	}
}

func TestAttachedJournalCapturesUploads(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	path := filepath.Join(t.TempDir(), "attached.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	b.AttachJournal(j)
	trip, _ := rideTrip(t, w, 0, 0, 4, "attached-1")
	if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	// Duplicates are rejected before journaling.
	if _, err := b.ProcessTrip(context.Background(), trip); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := testBackend(t, w)
	replayed, skipped, err := ReplayJournal(context.Background(), path, b2)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 || skipped != 0 {
		t.Errorf("replayed=%d skipped=%d, want 1/0 (dup not journaled)", replayed, skipped)
	}
}
