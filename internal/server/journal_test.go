package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalAppendAndReplay(t *testing.T) {
	w := testWorld(t)
	b1 := testBackend(t, w)
	path := filepath.Join(t.TempDir(), "trips.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	up := &JournaledUploader{Journal: j, Backend: b1}
	for k := 0; k < 4; k++ {
		trip, _ := rideTrip(t, w, 0, 0, 6, fmt.Sprintf("journal-%d", k))
		if err := up.Upload(context.Background(), trip); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	b1.Advance(12 * 3600)
	want := b1.Traffic()
	if len(want) == 0 {
		t.Fatal("no estimates before restart")
	}

	// "Restart": a fresh backend rebuilt purely from the journal.
	b2 := testBackend(t, w)
	replayed, skipped, err := ReplayJournal(context.Background(), path, b2)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 4 || skipped != 0 {
		t.Fatalf("replayed=%d skipped=%d", replayed, skipped)
	}
	b2.Advance(12 * 3600)
	got := b2.Traffic()
	if len(got) != len(want) {
		t.Fatalf("rebuilt map has %d segments, want %d", len(got), len(want))
	}
	for sid, w1 := range want {
		w2, ok := got[sid]
		if !ok || w1.SpeedKmh != w2.SpeedKmh || w1.Reports != w2.Reports {
			t.Fatalf("segment %d differs after replay: %+v vs %+v", sid, w1, w2)
		}
	}
}

func TestReplaySkipsDuplicatesAndGarbage(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	path := filepath.Join(t.TempDir(), "trips.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	trip, _ := rideTrip(t, w, 0, 0, 4, "dup-journal")
	if err := j.Append(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(context.Background(), trip); err != nil { // duplicate record
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Torn tail: simulate a crash mid-write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"torn","samples":[{`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	replayed, skipped, err := ReplayJournal(context.Background(), path, b)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Errorf("replayed = %d, want 1", replayed)
	}
	if skipped != 2 { // duplicate + torn tail
		t.Errorf("skipped = %d, want 2", skipped)
	}
}

func TestReplaySkipsCorruptMiddleLine(t *testing.T) {
	// A corrupt line in the MIDDLE of the journal (a partial write that
	// later appends happened to follow, or disk damage) must cost only
	// that record: everything after it still replays.
	w := testWorld(t)
	b1 := testBackend(t, w)
	path := filepath.Join(t.TempDir(), "trips.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := rideTrip(t, w, 0, 0, 5, "mid-1")
	if err := j.Append(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"id\":\"garbled\",\"sam\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := rideTrip(t, w, 1, 0, 5, "mid-2")
	if err := j.Append(context.Background(), last); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, skipped, err := ReplayJournal(context.Background(), path, b1)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 2 {
		t.Errorf("replayed = %d, want 2 (records after the corrupt line must survive)", replayed)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if _, err := b1.ProcessTrip(context.Background(), last); err == nil {
		t.Error("trip after the corrupt line was not replayed")
	}
}

func TestReplaySkipsOversizedLine(t *testing.T) {
	// A line longer than any upload the server accepts can only be
	// corruption (the append path never writes one). It must cost only
	// itself — not the whole replay, as the old scanner-based reader
	// did when sc.Err() surfaced ErrTooLong.
	w := testWorld(t)
	b := testBackend(t, w)
	path := filepath.Join(t.TempDir(), "trips.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := rideTrip(t, w, 0, 0, 5, "over-1")
	if err := j.Append(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, maxUploadBytes+16)
	for i := range huge {
		huge[i] = 'x'
	}
	huge[len(huge)-1] = '\n'
	if _, err := f.Write(huge); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := rideTrip(t, w, 1, 0, 5, "over-2")
	if err := j.Append(context.Background(), last); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, skipped, err := ReplayJournal(context.Background(), path, b)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 2 {
		t.Errorf("replayed = %d, want 2 (records after the oversized line must survive)", replayed)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1 (the oversized line)", skipped)
	}
}

func TestReplayJournalsContinuesPastUnreadableShard(t *testing.T) {
	// One shard's unreadable journal must not abort the whole
	// multi-shard replay: its failure lands on its own report and the
	// remaining shards still rebuild.
	w := testWorld(t)
	b := testBackend(t, w)
	dir := t.TempDir()
	paths := []string{
		filepath.Join(dir, "trips.jsonl.shard0"),
		filepath.Join(dir, "trips.jsonl.shard1"),
		filepath.Join(dir, "trips.jsonl.shard2"),
	}
	for i, p := range paths {
		if i == 1 {
			// Exists but unreadable as a journal: a directory.
			if err := os.Mkdir(p, 0o755); err != nil {
				t.Fatal(err)
			}
			continue
		}
		j, err := OpenJournal(p)
		if err != nil {
			t.Fatal(err)
		}
		trip, _ := rideTrip(t, w, i%2, 0, 5, fmt.Sprintf("shard-%d", i))
		if err := j.Append(context.Background(), trip); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	reports, err := ReplayJournals(context.Background(), paths, b)
	if err != nil {
		t.Fatalf("unreadable shard aborted the replay: %v", err)
	}
	if reports[0].Replayed != 1 || reports[0].Err != "" {
		t.Errorf("shard 0: %+v, want 1 replayed and no error", reports[0])
	}
	if reports[1].Err == "" {
		t.Error("shard 1's unreadable journal left no error on its report")
	}
	if reports[2].Replayed != 1 || reports[2].Err != "" {
		t.Errorf("shard 2: %+v, want 1 replayed and no error (must run after the failed shard)", reports[2])
	}
}

func TestReplayMissingFile(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	if _, _, err := ReplayJournal(context.Background(), filepath.Join(t.TempDir(), "nope.jsonl"), b); err == nil {
		t.Error("want error for missing journal")
	}
}

func TestOpenJournalBadPath(t *testing.T) {
	if _, err := OpenJournal(filepath.Join(t.TempDir(), "no", "dir", "j.jsonl")); err == nil {
		t.Error("want error for unwritable path")
	}
}

func TestAttachedJournalCapturesUploads(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	path := filepath.Join(t.TempDir(), "attached.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	b.AttachJournal(j)
	trip, _ := rideTrip(t, w, 0, 0, 4, "attached-1")
	if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	// Duplicates are rejected before journaling.
	if _, err := b.ProcessTrip(context.Background(), trip); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := testBackend(t, w)
	replayed, skipped, err := ReplayJournal(context.Background(), path, b2)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 || skipped != 0 {
		t.Errorf("replayed=%d skipped=%d, want 1/0 (dup not journaled)", replayed, skipped)
	}
}
