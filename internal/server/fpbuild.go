package server

import (
	"fmt"

	"busprobe/internal/cellular"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/stats"
	"busprobe/internal/transit"
)

// BuildFingerprintDB performs the paper's war-free site survey (§IV-A):
// for every logical stop it collects `runs` cellular samples at each
// platform under varied conditions (standing and on a bus, different
// weather) and stores the sample most similar to the rest as the stop's
// fingerprint. Opposite-side platforms contribute to the same logical
// stop, implementing the §III-A aggregation.
func BuildFingerprintDB(cells *cellular.Deployment, tdb *transit.DB, runs int, cfg Config, seed uint64) (*fingerprint.DB, error) {
	if cells == nil || tdb == nil {
		return nil, fmt.Errorf("server: nil deployment or transit DB")
	}
	if runs <= 0 {
		return nil, fmt.Errorf("server: need at least one survey run, got %d", runs)
	}
	db, err := fingerprint.NewDB(cfg.Scoring, cfg.Gamma)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed).Fork("fp-survey")
	for _, st := range tdb.Stops() {
		var samples []cellular.Fingerprint
		for r := 0; r < runs; r++ {
			cond := cellular.Condition{
				OnBus:   r%2 == 1,
				Weather: rng.Range(-1, 1),
			}
			for _, pid := range st.Platforms {
				p := tdb.Platform(pid)
				fp := cells.ScanFingerprint(p.Pos, cond, rng)
				if len(fp) > 0 {
					samples = append(samples, fp)
				}
			}
		}
		if len(samples) == 0 {
			return nil, fmt.Errorf("server: stop %d has no cellular coverage", st.ID)
		}
		if err := db.PutFromSamples(st.ID, samples); err != nil {
			return nil, err
		}
	}
	return db, nil
}
