package server

import (
	"busprobe/internal/clock"
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"busprobe/internal/cellular"
	"busprobe/internal/core/cluster"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/core/tripmap"
	"busprobe/internal/geo"
	"busprobe/internal/probe"
	"busprobe/internal/transit"
)

// visitAt builds a mapped visit for white-box observation tests.
func visitAt(stop transit.StopID, arrive, depart float64) tripmap.Visit {
	return tripmap.Visit{Stop: stop, ArriveS: arrive, DepartS: depart, Confidence: 1}
}

func TestObservationsAdjacentStops(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	rt := w.Transit.Routes()[0]
	// Visits at stops 0 and 1, 70 s apart.
	visits := []tripmap.Visit{
		visitAt(rt.Stops[0], 100, 110),
		visitAt(rt.Stops[1], 180, 195),
	}
	obs, discarded := b.observations(context.Background(), visits)
	if discarded != 0 {
		t.Errorf("discarded = %d", discarded)
	}
	if len(obs) != 1 {
		t.Fatalf("observations = %d", len(obs))
	}
	o := obs[0]
	if o.BTTSeconds != 70 {
		t.Errorf("BTT = %v, want 70 (arrive(j) - depart(i))", o.BTTSeconds)
	}
	leg := rt.Leg(w.Transit.Network(), 0)
	if math.Abs(o.LengthM-leg.LengthM) > 1e-9 {
		t.Errorf("length = %v, want %v", o.LengthM, leg.LengthM)
	}
	if len(o.Segments) != len(leg.Segments) {
		t.Errorf("segments = %d, want %d", len(o.Segments), len(leg.Segments))
	}
	if o.TimeS != 180 {
		t.Errorf("timestamp = %v, want arrival time", o.TimeS)
	}
}

func TestObservationsMergeSkippedStop(t *testing.T) {
	// §III-D: a missing intermediate stop merges the adjacent segments
	// into one observation.
	w := testWorld(t)
	b := testBackend(t, w)
	rt := w.Transit.Routes()[0]
	visits := []tripmap.Visit{
		visitAt(rt.Stops[1], 100, 110),
		visitAt(rt.Stops[3], 250, 260), // stop 2 skipped
	}
	obs, discarded := b.observations(context.Background(), visits)
	if discarded != 0 || len(obs) != 1 {
		t.Fatalf("obs=%d discarded=%d", len(obs), discarded)
	}
	merged := rt.LegBetween(w.Transit.Network(), 1, 3)
	if math.Abs(obs[0].LengthM-merged.LengthM) > 1e-9 {
		t.Errorf("merged length = %v, want %v", obs[0].LengthM, merged.LengthM)
	}
	if len(obs[0].Segments) != len(merged.Segments) {
		t.Errorf("merged segments = %d, want %d", len(obs[0].Segments), len(merged.Segments))
	}
}

func TestObservationsDiscardImplausible(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	rt := w.Transit.Routes()[0]
	cases := []struct {
		name   string
		visits []tripmap.Visit
	}{
		{"negative btt", []tripmap.Visit{
			visitAt(rt.Stops[0], 100, 200),
			visitAt(rt.Stops[1], 150, 160), // arrives before departing prev
		}},
		{"teleport speed", []tripmap.Visit{
			visitAt(rt.Stops[0], 100, 110),
			visitAt(rt.Stops[1], 110.5, 120), // 500 m in 0.5 s
		}},
		{"stalled", []tripmap.Visit{
			visitAt(rt.Stops[0], 100, 110),
			visitAt(rt.Stops[1], 100000, 100100), // absurdly slow
		}},
		{"unordered pair", []tripmap.Visit{
			visitAt(rt.Stops[3], 100, 110),
			visitAt(rt.Stops[1], 200, 210), // backwards on the route
		}},
	}
	for _, c := range cases {
		obs, discarded := b.observations(context.Background(), c.visits)
		if len(obs) != 0 || discarded != 1 {
			t.Errorf("%s: obs=%d discarded=%d", c.name, len(obs), discarded)
		}
	}
}

func TestObservationsRepeatedStopSkipped(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	rt := w.Transit.Routes()[0]
	visits := []tripmap.Visit{
		visitAt(rt.Stops[0], 100, 110),
		visitAt(rt.Stops[0], 130, 140), // same stop resolved twice
		visitAt(rt.Stops[1], 210, 220),
	}
	obs, discarded := b.observations(context.Background(), visits)
	if discarded != 0 {
		t.Errorf("discarded = %d", discarded)
	}
	if len(obs) != 1 {
		t.Fatalf("observations = %d, want 1 (repeat pair contributes none)", len(obs))
	}
}

func TestObservationsEmptyAndSingle(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	rt := w.Transit.Routes()[0]
	if obs, d := b.observations(context.Background(), nil); obs != nil || d != 0 {
		t.Error("nil visits should be empty")
	}
	if obs, d := b.observations(context.Background(), []tripmap.Visit{visitAt(rt.Stops[0], 1, 2)}); obs != nil || d != 0 {
		t.Error("single visit should be empty")
	}
}

func TestRankRoutesByVisitSupport(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	rt := w.Transit.Routes()[0]
	visits := []tripmap.Visit{
		visitAt(rt.Stops[0], 100, 110),
		visitAt(rt.Stops[1], 200, 210),
		visitAt(rt.Stops[2], 300, 310),
	}
	ranked := b.rankRoutesByVisitSupport(visits)
	if len(ranked) != w.Transit.NumRoutes() {
		t.Fatalf("ranked = %d routes", len(ranked))
	}
	if ranked[0].ID != rt.ID {
		t.Errorf("top route = %s, want %s", ranked[0].ID, rt.ID)
	}
}

func TestLegFreeKmhHarmonicMean(t *testing.T) {
	w := testWorld(t)
	rt := w.Transit.Routes()[0]
	net := w.Transit.Network()
	leg := rt.LegBetween(net, 0, 3)
	got := legFreeKmh(net, leg)
	var timeS float64
	for _, sid := range leg.Segments {
		timeS += net.Segment(sid).FreeTravelS()
	}
	want := leg.LengthM / timeS * 3.6
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("legFreeKmh = %v, want %v", got, want)
	}
	if got <= 0 {
		t.Error("free speed must be positive")
	}
}

func TestBackendWithEmptyFingerprintDB(t *testing.T) {
	// Failure injection: a backend whose DB was never surveyed drops
	// every sample but never crashes.
	w := testWorld(t)
	empty, err := fingerprint.NewDB(fingerprint.DefaultScoring(), fingerprint.DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(DefaultConfig(), w.Transit, empty)
	if err != nil {
		t.Fatal(err)
	}
	trip, _ := rideTrip(t, w, 0, 0, 4, "empty-db-trip")
	res, err := b.ProcessTrip(context.Background(), trip)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 0 || len(res.Visits) != 0 {
		t.Errorf("empty DB produced matches: %+v", res)
	}
	if len(b.Traffic()) != 0 {
		t.Error("traffic estimates from nothing")
	}
}

func TestConcurrentUploads(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trip, _ := rideTrip(t, w, i%2, 0, 5, fmt.Sprintf("conc-%d", i))
			if err := b.Upload(context.Background(), trip); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := b.Stats().TripsReceived; got != 16 {
		t.Errorf("trips received = %d", got)
	}
}

func TestUploadReportsPipelineCounts(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	trip, truth := rideTrip(t, w, 0, 0, 5, "counted")
	res, err := b.ProcessTrip(context.Background(), trip)
	if err != nil {
		t.Fatal(err)
	}
	if res.TripID != "counted" {
		t.Errorf("trip ID = %q", res.TripID)
	}
	if res.Clusters == 0 || res.Clusters > len(truth)+1 {
		t.Errorf("clusters = %d for %d true stops", res.Clusters, len(truth))
	}
	st := b.Stats()
	if st.VisitsMapped != len(res.Visits) {
		t.Errorf("stats visits %d != result %d", st.VisitsMapped, len(res.Visits))
	}
}

// TestTripWithForeignSamples injects samples scanned far outside the
// study region into an otherwise clean trip; the gamma filter must drop
// them without corrupting the mapped trajectory.
func TestTripWithForeignSamples(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	trip, truth := rideTrip(t, w, 0, 0, 5, "foreign")
	// Replace every third sample's readings with junk towers.
	for i := 0; i < len(trip.Samples); i += 3 {
		for j := range trip.Samples[i].Readings {
			trip.Samples[i].Readings[j].Cell += 1 << 20
		}
	}
	res, err := b.ProcessTrip(context.Background(), trip)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched == 0 {
		t.Fatal("all samples dropped")
	}
	correct := 0
	for i, v := range res.Visits {
		if i < len(truth) && v.Stop == truth[i] {
			correct++
		}
	}
	if correct < len(res.Visits)*6/10 {
		t.Errorf("trajectory corrupted by junk samples: %d/%d", correct, len(res.Visits))
	}
}

func TestStatsStringableFields(t *testing.T) {
	// Guard the JSON field names the HTTP API exposes.
	var s Stats
	s.TripsReceived = 1
	out := fmt.Sprintf("%+v", s)
	for _, field := range []string{"TripsReceived", "SamplesMatched", "Observations"} {
		if !strings.Contains(out, field) {
			t.Errorf("stats missing field %s", field)
		}
	}
}

var _ = clock.DayS // virtual-time helpers now live in internal/clock

func TestOnlineDatabaseUpdate(t *testing.T) {
	// Fig. 4's online path: with OnlineUpdate enabled, confidently
	// mapped visits refresh the stop fingerprints toward the current
	// radio environment.
	w := testWorld(t)
	cfg := DefaultConfig()
	cfg.OnlineUpdate = true
	fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(cfg, w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}
	rt := w.Transit.Routes()[0]
	stop := rt.Stops[2]
	before, _ := fpdb.Get(stop)

	// Several clean trips through the stop; at least one should refresh
	// the entry (the medoid of fresh samples usually differs from the
	// 4-run survey pick).
	changed := false
	for k := 0; k < 6; k++ {
		trip, _ := rideTrip(t, w, 0, 0, rt.NumStops()-1, fmt.Sprintf("online-%d", k))
		if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
			t.Fatal(err)
		}
		after, _ := fpdb.Get(stop)
		if !after.Equal(before) {
			changed = true
			break
		}
	}
	if !changed {
		t.Log("fingerprint unchanged (medoid stable); verifying matching still works")
	}
	// Whatever happened, the DB must still identify the stop.
	trip, truth := rideTrip(t, w, 0, 0, rt.NumStops()-1, "online-verify")
	res, err := b.ProcessTrip(context.Background(), trip)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, v := range res.Visits {
		if i < len(truth) && v.Stop == truth[i] {
			correct++
		}
	}
	if correct < len(res.Visits)*7/10 {
		t.Errorf("accuracy degraded after online updates: %d/%d", correct, len(res.Visits))
	}
}

func TestOnlineUpdateDisabledLeavesDBUntouched(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w) // OnlineUpdate off by default
	fpdb := b.FingerprintDB()
	rt := w.Transit.Routes()[0]
	var before []cellularFP
	for _, s := range rt.Stops {
		fp, _ := fpdb.Get(s)
		before = append(before, fp)
	}
	trip, _ := rideTrip(t, w, 0, 0, rt.NumStops()-1, "no-update")
	if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	for i, s := range rt.Stops {
		fp, _ := fpdb.Get(s)
		if !fp.Equal(before[i]) {
			t.Fatalf("stop %d fingerprint changed with updates disabled", s)
		}
	}
}

func TestReconstructTrip(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	trip, _ := ridLongTrip(t, w)
	res, err := b.ProcessTrip(context.Background(), trip)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.ReconstructTrip(res.Visits)
	if err != nil {
		t.Fatal(err)
	}
	if tr.EndS() <= tr.StartS() {
		t.Fatal("degenerate trajectory span")
	}
	// The reconstructed track should pass near the true stop platforms.
	rt := w.Transit.Routes()[0]
	pos, ok := tr.At(tr.StartS())
	if !ok {
		t.Fatal("no position at start")
	}
	start := w.Transit.Stop(rt.Stops[0]).Pos
	if d := distM(pos, start); d > 100 {
		t.Errorf("start position %v m from first stop", d)
	}
	// Too few visits is an error.
	if _, err := b.ReconstructTrip(res.Visits[:1]); err == nil {
		t.Error("want error for single visit")
	}
	if _, err := b.ReconstructTrip(nil); err == nil {
		t.Error("want error for no visits")
	}
}

// distM avoids importing geo for one call.
func distM(a, b geo.XY) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

func TestOnlineUpdateGating(t *testing.T) {
	// White-box: low-confidence visits and too-small clusters never
	// touch the database; confident, well-sampled ones do.
	w := testWorld(t)
	cfg := DefaultConfig()
	cfg.OnlineUpdate = true
	fpdb, err := BuildFingerprintDB(w.Cells, w.Transit, 4, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(cfg, w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}
	rt := w.Transit.Routes()[0]
	stop := rt.Stops[1]
	before, _ := fpdb.Get(stop)

	mk := func(times []float64) (probe.Trip, []cluster.Cluster, []visit) {
		trip := probe.Trip{ID: "gate", DeviceID: "d"}
		var elems []cluster.Element
		for _, ts := range times {
			trip.Samples = append(trip.Samples, probe.Sample{
				TimeS:    ts,
				Readings: []cellular.Reading{{Cell: 1, RSS: -60}, {Cell: 2, RSS: -70}},
			})
			elems = append(elems, cluster.Element{TimeS: ts, Stop: stop, Score: 5})
		}
		cl := []cluster.Cluster{{Elements: elems, ArriveS: times[0], DepartS: times[len(times)-1]}}
		return trip, cl, []visit{{Stop: stop, ArriveS: times[0], DepartS: times[len(times)-1], Confidence: 1}}
	}

	// Too few samples: gate holds.
	trip, cl, vs := mk([]float64{10, 12})
	b.onlineUpdate(trip, cl, vs)
	after, _ := fpdb.Get(stop)
	if !after.Equal(before) {
		t.Fatal("two-sample cluster updated the DB")
	}
	// Low confidence: gate holds.
	trip, cl, vs = mk([]float64{10, 12, 14, 16})
	vs[0].Confidence = 0.5
	b.onlineUpdate(trip, cl, vs)
	after, _ = fpdb.Get(stop)
	if !after.Equal(before) {
		t.Fatal("low-confidence visit updated the DB")
	}
	// Confident and well-sampled: the pool {1,2}-style samples replace
	// the entry (they are mutually identical, so the medoid is one of
	// them, differing from the surveyed fingerprint).
	trip, cl, vs = mk([]float64{10, 12, 14, 16})
	b.onlineUpdate(trip, cl, vs)
	after, _ = fpdb.Get(stop)
	if after.Equal(before) {
		t.Fatal("confident cluster did not update the DB")
	}
	if !after.Equal(cellular.Fingerprint{1, 2}) {
		t.Errorf("updated fingerprint = %v", after)
	}
}

func TestRankRoutesSkippedStopsStillSupport(t *testing.T) {
	// A visit pair that skips intermediate stops (nobody tapped there)
	// still counts as support for the serving route: StopIndex order is
	// what matters, not adjacency.
	w := testWorld(t)
	b := testBackend(t, w)
	rt := w.Transit.Routes()[0]
	visits := []tripmap.Visit{
		visitAt(rt.Stops[0], 100, 110),
		visitAt(rt.Stops[3], 400, 410), // skips stops 1 and 2
	}
	ranked := b.rankRoutesByVisitSupport(visits)
	if ranked[0].ID != rt.ID {
		t.Errorf("top route = %s, want %s (skipped-stop pair must count)", ranked[0].ID, rt.ID)
	}
}

func TestRankRoutesTieBreakDeterminism(t *testing.T) {
	// With no visits every route ties at zero support; the ranking must
	// be stable (registration order) and identical across calls.
	w := testWorld(t)
	b := testBackend(t, w)
	base := w.Transit.Routes()
	for trial := 0; trial < 3; trial++ {
		ranked := b.rankRoutesByVisitSupport(nil)
		if len(ranked) != len(base) {
			t.Fatalf("ranked %d routes, want %d", len(ranked), len(base))
		}
		for i := range ranked {
			if ranked[i].ID != base[i].ID {
				t.Fatalf("trial %d: tied ranking reordered: pos %d = %s, want %s",
					trial, i, ranked[i].ID, base[i].ID)
			}
		}
	}
}

func TestLegBetweenMergesSkippedStops(t *testing.T) {
	// legBetween over a pair that skips intermediate stops returns the
	// concatenation of the intermediate legs (§III-D merge).
	w := testWorld(t)
	b := testBackend(t, w)
	rt := w.Transit.Routes()[0]
	net := w.Transit.Network()
	routes := b.rankRoutesByVisitSupport([]tripmap.Visit{
		visitAt(rt.Stops[0], 0, 1),
		visitAt(rt.Stops[3], 2, 3),
	})
	leg, ok := b.legBetween(routes, rt.Stops[0], rt.Stops[3])
	if !ok {
		t.Fatal("no leg for skipped-stop pair")
	}
	want := rt.LegBetween(net, 0, 3)
	if math.Abs(leg.LengthM-want.LengthM) > 1e-9 {
		t.Errorf("merged length = %v, want %v", leg.LengthM, want.LengthM)
	}
	var sumM float64
	for i := 0; i < 3; i++ {
		sumM += rt.Leg(net, i).LengthM
	}
	if math.Abs(leg.LengthM-sumM) > 1e-9 {
		t.Errorf("merged length %v != sum of intermediate legs %v", leg.LengthM, sumM)
	}
}

func TestLegBetweenUnservedPair(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	rt := w.Transit.Routes()[0]
	routes := b.rankRoutesByVisitSupport(nil)
	// A stop no route knows: unmatchable in either position.
	ghost := transit.StopID(1 << 20)
	if _, ok := b.legBetween(routes, ghost, rt.Stops[1]); ok {
		t.Error("leg found from unknown stop")
	}
	if _, ok := b.legBetween(routes, rt.Stops[1], ghost); ok {
		t.Error("leg found to unknown stop")
	}
	// Same stop twice: never "in order" (ti <= fi) on any route.
	if _, ok := b.legBetween(routes, rt.Stops[1], rt.Stops[1]); ok {
		t.Error("leg found for identical stops")
	}
	// A reversed pair is only served if some route runs them that way;
	// verify legBetween agrees with a direct scan of the route set.
	from, to := rt.Stops[3], rt.Stops[1]
	served := false
	for _, r := range routes {
		fi, ti := r.StopIndex(from), r.StopIndex(to)
		if fi >= 0 && ti > fi {
			served = true
			break
		}
	}
	if _, ok := b.legBetween(routes, from, to); ok != served {
		t.Errorf("legBetween(reversed) = %v, route scan says %v", ok, served)
	}
}

func TestBackendAccessors(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	if b.Config().Gamma != DefaultConfig().Gamma {
		t.Error("Config accessor wrong")
	}
	if b.Transit() != w.Transit {
		t.Error("Transit accessor wrong")
	}
}
