package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"busprobe/internal/core/traffic"
	"busprobe/internal/faults"
	"busprobe/internal/road"
)

// watchGet issues one /v1/traffic/watch request against the handler and
// decodes the response.
func watchGet(t *testing.T, h http.Handler, since uint64, waitS float64) TrafficWatchJSON {
	t.Helper()
	rec := httptest.NewRecorder()
	path := fmt.Sprintf("/v1/traffic/watch?since=%d&waitS=%g", since, waitS)
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("watch status = %d: %s", rec.Code, rec.Body.String())
	}
	var out TrafficWatchJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("watch decode: %v", err)
	}
	return out
}

// renderRows renders estimate rows exactly as /v1/traffic does, so
// reconstructed maps can be compared byte-for-byte against a fresh GET.
func renderRows(t *testing.T, m map[int]SegmentEstimateJSON) []byte {
	t.Helper()
	rows := make([]SegmentEstimateJSON, 0, len(m))
	for _, row := range m {
		rows = append(rows, row)
	}
	sortRows(rows)
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, rows)
	return rec.Body.Bytes()
}

// applyWatch folds one watch delta into a client-side row map.
func applyWatch(m map[int]SegmentEstimateJSON, out TrafficWatchJSON) {
	if out.Resync {
		for sid := range m {
			delete(m, sid)
		}
	}
	for _, row := range out.Changed {
		m[row.Segment] = row
	}
	for _, sid := range out.Removed {
		delete(m, sid)
	}
}

func TestTrafficConditionalGet(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	h := Handler(b)

	trip, _ := rideTrip(t, w, 0, 1, 6, "trip-etag")
	if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	b.Advance(9 * 3600)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traffic", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/traffic status = %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")
	verHdr := rec.Header().Get(TrafficVersionHeader)
	if etag == "" || verHdr == "" {
		t.Fatalf("missing ETag (%q) or version header (%q)", etag, verHdr)
	}
	ver, err := strconv.ParseUint(verHdr, 10, 64)
	if err != nil || ver == 0 {
		t.Fatalf("version header %q not a positive integer", verHdr)
	}
	if want := trafficETag(ver); etag != want {
		t.Fatalf("ETag %q does not encode version %d (want %q)", etag, ver, want)
	}

	// Unchanged snapshot: the conditional GET moves no body.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/traffic", nil)
	req.Header.Set("If-None-Match", etag)
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("conditional GET status = %d, want 304", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("304 carried %d body bytes", rec.Body.Len())
	}
	if got := rec.Header().Get("ETag"); got != etag {
		t.Fatalf("304 ETag = %q, want %q", got, etag)
	}

	// Wildcard and list forms must match too.
	for _, hdr := range []string{"*", `"v999", ` + etag} {
		rec = httptest.NewRecorder()
		req = httptest.NewRequest(http.MethodGet, "/v1/traffic", nil)
		req.Header.Set("If-None-Match", hdr)
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status = %d, want 304", hdr, rec.Code)
		}
	}

	// New fold → new version: the stale tag no longer matches.
	trip2, _ := rideTrip(t, w, 1, 0, 5, "trip-etag-2")
	if _, err := b.ProcessTrip(context.Background(), trip2); err != nil {
		t.Fatal(err)
	}
	b.Advance(10 * 3600)
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodGet, "/v1/traffic", nil)
	req.Header.Set("If-None-Match", etag)
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stale conditional GET status = %d, want 200", rec.Code)
	}
	if got := rec.Header().Get("ETag"); got == etag {
		t.Fatal("ETag did not move after a new fold")
	}
}

func TestTrafficWatchDeltaReconstruction(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	h := Handler(b)

	trip, _ := rideTrip(t, w, 0, 1, 6, "trip-watch-1")
	if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	b.Advance(9 * 3600)

	// since=0 serves the full map.
	view := map[int]SegmentEstimateJSON{}
	out := watchGet(t, h, 0, 0)
	if out.Version == 0 || out.Since != 0 || out.Resync {
		t.Fatalf("initial watch = %+v", out)
	}
	if len(out.Changed) == 0 {
		t.Fatal("initial watch carried no rows")
	}
	applyWatch(view, out)
	if got, want := renderRows(t, view), trafficBytes(t, b); !bytes.Equal(got, want) {
		t.Fatalf("full-map watch differs from GET /v1/traffic:\n%s\nvs\n%s", got, want)
	}

	// Fold more data; the delta since the last seen version must carry
	// the reconstruction to byte equality with a fresh GET.
	trip2, _ := rideTrip(t, w, 1, 0, 5, "trip-watch-2")
	if _, err := b.ProcessTrip(context.Background(), trip2); err != nil {
		t.Fatal(err)
	}
	b.Advance(10 * 3600)

	out2 := watchGet(t, h, out.Version, 0)
	if out2.Version <= out.Version {
		t.Fatalf("version did not advance: %d -> %d", out.Version, out2.Version)
	}
	if out2.Since != out.Version || out2.Resync {
		t.Fatalf("delta watch = %+v", out2)
	}
	if len(out2.Changed) == 0 {
		t.Fatal("delta watch carried no rows after new fold")
	}
	applyWatch(view, out2)
	if got, want := renderRows(t, view), trafficBytes(t, b); !bytes.Equal(got, want) {
		t.Fatalf("delta-reconstructed map differs from GET /v1/traffic:\n%s\nvs\n%s", got, want)
	}

	// Caught up: an immediate poll returns an empty delta at the same
	// version.
	out3 := watchGet(t, h, out2.Version, 0)
	if out3.Version != out2.Version || len(out3.Changed) != 0 || len(out3.Removed) != 0 {
		t.Fatalf("caught-up watch = %+v", out3)
	}
}

func TestTrafficWatchResync(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	h := Handler(b)

	trip, _ := rideTrip(t, w, 0, 1, 6, "trip-resync")
	if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	b.Advance(9 * 3600)

	// A client version from a previous server life: the watch must tell
	// the client to drop its map and serves everything from zero.
	out := watchGet(t, h, 1<<40, 0)
	if !out.Resync {
		t.Fatal("ahead-of-server since did not resync")
	}
	if out.Since != 0 {
		t.Fatalf("resync since = %d, want 0", out.Since)
	}
	view := map[int]SegmentEstimateJSON{9999: {Segment: 9999}}
	applyWatch(view, out)
	if got, want := renderRows(t, view), trafficBytes(t, b); !bytes.Equal(got, want) {
		t.Fatal("resync reconstruction differs from GET /v1/traffic")
	}
}

func TestTrafficWatchLongPollWakesOnPublish(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	h := Handler(b)

	trip, _ := rideTrip(t, w, 0, 1, 6, "trip-poll-seed")
	if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	b.Advance(9 * 3600)
	base := b.TrafficSnapshot().Version

	done := make(chan TrafficWatchJSON, 1)
	go func() {
		done <- watchGet(t, h, base, 30)
	}()
	// Give the poll time to park, then publish.
	time.Sleep(50 * time.Millisecond)
	trip2, _ := rideTrip(t, w, 1, 0, 5, "trip-poll-wake")
	if _, err := b.ProcessTrip(context.Background(), trip2); err != nil {
		t.Fatal(err)
	}
	b.Advance(10 * 3600)

	select {
	case out := <-done:
		if out.Version <= base {
			t.Fatalf("woken watch at version %d, want > %d", out.Version, base)
		}
		if len(out.Changed) == 0 {
			t.Fatal("woken watch carried no delta")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not wake on publish")
	}
}

func TestTrafficDefensiveCopies(t *testing.T) {
	w := testWorld(t)
	b := testBackend(t, w)
	trip, _ := rideTrip(t, w, 0, 1, 6, "trip-copy")
	if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
		t.Fatal(err)
	}
	b.Advance(9 * 3600)

	want := trafficBytes(t, b)
	m := b.Traffic()
	if len(m) == 0 {
		t.Fatal("no estimates; copy check is vacuous")
	}
	for sid := range m {
		m[sid] = traffic.Estimate{SpeedKmh: -1}
	}
	m[road.SegmentID(1<<20)] = traffic.Estimate{}
	if got := trafficBytes(t, b); !bytes.Equal(got, want) {
		t.Fatal("mutating Backend.Traffic()'s return corrupted /v1/traffic")
	}

	// Same contract on the coordinator tier.
	wTwin, fpdb := twinWorld(t)
	c := newTwinCoordinator(t, wTwin, fpdb, 2)
	replayInto(t, c, twinCorpus(t, wTwin, faults.Config{}))
	c.Advance(12 * 3600)
	wantC := trafficBytes(t, c)
	mc := c.Traffic()
	if len(mc) == 0 {
		t.Fatal("coordinator produced no estimates; copy check is vacuous")
	}
	for sid := range mc {
		mc[sid] = traffic.Estimate{SpeedKmh: -1}
	}
	if got := trafficBytes(t, c); !bytes.Equal(got, wantC) {
		t.Fatal("mutating Coordinator.Traffic()'s return corrupted /v1/traffic")
	}
}

func TestCoordinatorSnapshotCacheStable(t *testing.T) {
	w, fpdb := twinWorld(t)
	c := newTwinCoordinator(t, w, fpdb, 2)
	replayInto(t, c, twinCorpus(t, w, faults.Config{}))
	c.Advance(12 * 3600)

	first := c.TrafficSnapshot()
	if first.Version == 0 || len(first.Estimates) == 0 {
		t.Fatalf("merged snapshot empty: version %d, %d estimates", first.Version, len(first.Estimates))
	}
	// No shard moved: repeated reads serve the identical merged object,
	// no re-merge, no version churn.
	for i := 0; i < 3; i++ {
		if again := c.TrafficSnapshot(); again != first {
			t.Fatalf("idle re-read rebuilt the merge (version %d -> %d)", first.Version, again.Version)
		}
	}

	// A shard folds new data: the vector moves and the merge re-runs at
	// the next version.
	c.Advance(13*3600 + 1)
	if c.TrafficSnapshot() == first {
		// Advance may not fold anything new if all windows were settled;
		// force a distinguishable state check rather than failing hard.
		t.Skip("advance folded nothing new; cache invalidation not exercised")
	}
	second := c.TrafficSnapshot()
	if second.Version < first.Version {
		t.Fatalf("merged version regressed %d -> %d", first.Version, second.Version)
	}
}

func TestReadHammerUnderIngest(t *testing.T) {
	// Satellite 3: lock-free reads stay consistent while batches fold.
	// Under -race this doubles as the torn-snapshot detector.
	w := testWorld(t)
	b := testBackend(t, w)
	h := Handler(b)

	var corpus [][2]int
	for i := 0; i < 12; i++ {
		corpus = append(corpus, [2]int{i % 2, i})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := b.TrafficSnapshot()
				if snap.Version < last {
					t.Errorf("snapshot version regressed %d -> %d", last, snap.Version)
					return
				}
				if snap.Version > 0 && len(snap.Estimates) == 0 {
					t.Error("torn snapshot: version > 0 with empty map")
					return
				}
				last = snap.Version
				b.Traffic()
				b.TrafficSegment(road.SegmentID(int(last) % 64))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			out := watchGet(t, h, last, 0.05)
			if out.Version < last && !out.Resync {
				t.Errorf("watch version regressed %d -> %d", last, out.Version)
				return
			}
			last = out.Version
		}
	}()

	for i, c := range corpus {
		trip, _ := rideTrip(t, w, c[0], 0, 4+i%4, fmt.Sprintf("hammer-%d", i))
		if _, err := b.ProcessTrip(context.Background(), trip); err != nil {
			t.Fatal(err)
		}
		b.Advance(9*3600 + float64(i)*600)
	}
	close(stop)
	wg.Wait()
	if b.TrafficSnapshot().Version == 0 {
		t.Fatal("hammer campaign published nothing; the check was vacuous")
	}
}
