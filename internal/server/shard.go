package server

import (
	"context"

	"busprobe/internal/core/traffic"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/server/stage"
)

// LocalAddr is the Shard address of an in-process shard.
const LocalAddr = "local"

// Shard is the coordinator's dispatch boundary: everything it needs
// from one region shard, whether that shard is an in-process *Backend
// or an independent process reached over the wire protocol
// (RemoteShard). Writes carry a context for cancellation and trace
// propagation; reads return an error so a dead shard degrades the
// merged view instead of wedging it.
//
// The contract that keeps the merged traffic map byte-identical across
// deployments: a trip forwarded to its home shard is processed exactly
// as a monolith would process it, and a Scatter call folds its
// observation group into this shard's estimator exactly once per
// idempotency key — a retried scatter (lost response, replayed
// journal) returns the recorded outcome instead of folding again.
type Shard interface {
	// Addr names the shard's location: LocalAddr for an in-process
	// backend, the base URL for a remote shard process.
	Addr() string
	// ProcessTrip ingests one trip already routed to this shard.
	ProcessTrip(ctx context.Context, trip probe.Trip) (ProcessedTrip, error)
	// ProcessTrips ingests a routed sub-batch without admission gating.
	ProcessTrips(ctx context.Context, trips []probe.Trip, workers int) []TripResult
	// IngestBatch ingests a routed sub-batch behind this shard's
	// admission gate; a saturated shard sheds with ErrOverloaded.
	IngestBatch(ctx context.Context, trips []probe.Trip) []TripResult
	// Scatter folds one cross-shard observation group into this shard's
	// estimator, exactly once per key.
	Scatter(ctx context.Context, key string, obs []traffic.Observation) (stage.EstimateOutput, error)
	// Stats snapshots the shard's work counters.
	Stats(ctx context.Context) (Stats, error)
	// StageMetrics snapshots the shard's per-stage instrumentation.
	StageMetrics(ctx context.Context) ([]stage.Metrics, error)
	// Traffic returns the shard's current versioned estimate snapshot.
	// Version and Estimates are always populated; the per-segment delta
	// maps travel only on locally-published snapshots (a RemoteShard
	// reconstructs Version + Estimates from the wire and leaves them
	// nil — the coordinator diffs its own merged view instead). The
	// snapshot is immutable: callers must not modify its maps.
	Traffic(ctx context.Context) (*traffic.Snapshot, error)
	// TrafficSegment reads one segment's estimate, if this shard has one.
	TrafficSegment(ctx context.Context, sid road.SegmentID) (traffic.Estimate, bool, error)
	// Advance drives the shard's estimator clock.
	Advance(ctx context.Context, nowS float64) error
	// Ready probes the shard's readiness to take traffic.
	Ready(ctx context.Context) error
}

// localShard adapts an in-process *Backend to the Shard boundary. The
// adapter is free: reads cannot fail and contexts pass straight
// through, so an N-in-process-shard coordinator behaves exactly as it
// did before the boundary became an interface.
type localShard struct{ b *Backend }

var _ Shard = localShard{}

func (s localShard) Addr() string { return LocalAddr }

func (s localShard) ProcessTrip(ctx context.Context, trip probe.Trip) (ProcessedTrip, error) {
	return s.b.ProcessTrip(ctx, trip)
}

func (s localShard) ProcessTrips(ctx context.Context, trips []probe.Trip, workers int) []TripResult {
	return s.b.ProcessTrips(ctx, trips, workers)
}

func (s localShard) IngestBatch(ctx context.Context, trips []probe.Trip) []TripResult {
	return s.b.IngestBatch(ctx, trips)
}

func (s localShard) Scatter(ctx context.Context, key string, obs []traffic.Observation) (stage.EstimateOutput, error) {
	return s.b.FoldScatter(ctx, key, obs)
}

func (s localShard) Stats(context.Context) (Stats, error) { return s.b.Stats(), nil }

func (s localShard) StageMetrics(context.Context) ([]stage.Metrics, error) {
	return s.b.StageMetrics(), nil
}

func (s localShard) Traffic(context.Context) (*traffic.Snapshot, error) {
	return s.b.TrafficSnapshot(), nil
}

func (s localShard) TrafficSegment(_ context.Context, sid road.SegmentID) (traffic.Estimate, bool, error) {
	est, ok := s.b.TrafficSegment(sid)
	return est, ok, nil
}

func (s localShard) Advance(_ context.Context, nowS float64) error {
	s.b.Advance(nowS)
	return nil
}

func (s localShard) Ready(context.Context) error { return nil }
