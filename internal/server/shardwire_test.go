package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"busprobe/internal/clock"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/core/traffic"
	"busprobe/internal/faults"
	"busprobe/internal/obs"
	"busprobe/internal/probe"
	"busprobe/internal/road"
	"busprobe/internal/sim"
)

// shardTier is a multi-process deployment stood up on real TCP sockets:
// n shard processes (each a NewShardBackend behind NewShardHandler on
// its own listener) and a stateless remote coordinator over them.
type shardTier struct {
	coord    *Coordinator
	addrs    []string
	backends []*Backend
	srvs     []*http.Server
}

// startShardTier listens first (so every shard knows all peer
// addresses before any backend exists), then starts the shard servers
// and builds the coordinator. wrap, when non-nil, decorates shard i's
// handler (fault injection, header capture).
func startShardTier(t *testing.T, w *sim.World, fpdb *fingerprint.DB, n int, cfg Config, wrap func(i int, h http.Handler) http.Handler) *shardTier {
	t.Helper()
	tier := &shardTier{addrs: make([]string, n), backends: make([]*Backend, n), srvs: make([]*http.Server, n)}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		tier.addrs[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		b, err := NewShardBackend(cfg, w.Transit, fpdb, i, tier.addrs)
		if err != nil {
			t.Fatal(err)
		}
		tier.backends[i] = b
		var h http.Handler = NewShardHandler(b, HandlerConfig{})
		if wrap != nil {
			h = wrap(i, h)
		}
		srv := &http.Server{Handler: h}
		tier.srvs[i] = srv
		ln := lns[i]
		go func() { _ = srv.Serve(ln) }()
	}
	t.Cleanup(func() {
		for _, s := range tier.srvs {
			_ = s.Close()
		}
	})
	coord, err := NewRemoteCoordinator(cfg, w.Transit, fpdb, tier.addrs)
	if err != nil {
		t.Fatal(err)
	}
	tier.coord = coord
	if err := coord.ProbeShards(context.Background()); err != nil {
		t.Fatalf("shard tier not ready: %v", err)
	}
	return tier
}

// kill hard-stops shard i's server: the coordinator's next call to it
// fails at the socket, as if the process died.
func (tier *shardTier) kill(i int) { _ = tier.srvs[i].Close() }

func TestShardProcsEquivalenceOverSockets(t *testing.T) {
	// The tentpole acceptance bar, over the wire: a monolith, a 2-shard
	// in-process coordinator, and 2 shard PROCESSES behind a remote
	// coordinator — all fed the same campaign over real TCP sockets —
	// must answer byte-identical /v1/traffic, clean and under
	// dup/reorder/delay fault injection.
	w, fpdb := twinWorld(t)
	for _, tc := range []struct {
		name string
		fcfg faults.Config
	}{
		{"clean", faults.Config{}},
		{"faulted", faults.Config{Seed: 77, DupRate: 0.3, ReorderRate: 0.3, DelayRate: 0.1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			trips := twinCorpus(t, w, tc.fcfg)

			mono, err := NewBackend(DefaultConfig(), w.Transit, fpdb)
			if err != nil {
				t.Fatal(err)
			}
			inproc := newTwinCoordinator(t, w, fpdb, 2)
			tier := startShardTier(t, w, fpdb, 2, DefaultConfig(), nil)

			// The coordinator tier is itself served over a real socket;
			// uploads travel client → coordinator → shard process.
			front := httptest.NewServer(NewHandler(tier.coord, HandlerConfig{}))
			defer front.Close()
			client, err := NewClient(front.URL, front.Client())
			if err != nil {
				t.Fatal(err)
			}

			replayInto(t, mono, trips)
			replayInto(t, inproc, trips)
			for _, trip := range trips {
				if err := client.Upload(context.Background(), trip); err != nil && !errors.Is(err, ErrDuplicateTrip) {
					t.Fatal(err)
				}
			}
			mono.Advance(3 * clock.DayS)
			inproc.Advance(3 * clock.DayS)
			tier.coord.Advance(3 * clock.DayS)

			want := trafficBytes(t, mono)
			if len(mono.Traffic()) == 0 {
				t.Fatal("campaign produced no estimates; equivalence is vacuous")
			}
			if got := trafficBytes(t, inproc); !bytes.Equal(got, want) {
				t.Errorf("in-process coordinator /v1/traffic differs from monolith")
			}
			resp, err := http.Get(front.URL + "/v1/traffic")
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("shard-process coordinator /v1/traffic differs from monolith")
			}

			// Both shard processes must have taken real traffic.
			busy := 0
			for _, st := range tier.coord.ShardStatuses() {
				if st.Stats.TripsReceived > 0 {
					busy++
				}
				if !st.Remote || st.Addr == LocalAddr {
					t.Errorf("shard %d reported as local: %+v", st.Shard, st)
				}
			}
			if busy < 2 {
				t.Fatalf("only %d shard processes received trips", busy)
			}

			// Counters survive the wire: the remote sum equals the
			// monolith's, trip for trip.
			if monoStats, wireStats := mono.Stats(), tier.coord.Stats(); monoStats != wireStats {
				t.Errorf("remote-tier Stats() = %+v, monolith %+v", wireStats, monoStats)
			}
		})
	}
}

func TestScatterIdempotentAcrossRetry(t *testing.T) {
	// The mid-scatter kill: the owner folds the group but the response
	// dies on the wire. The home shard's retry must get the RECORDED
	// outcome back, not fold the group twice.
	w, fpdb := twinWorld(t)
	b, err := NewBackend(DefaultConfig(), w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewShardHandler(b, HandlerConfig{})
	var kills int32
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/internal/v1/scatter" && atomic.AddInt32(&kills, 1) == 1 {
			// Deliver the request — the fold happens — then cut the
			// connection before the response escapes.
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			conn, _, err := rw.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		inner.ServeHTTP(rw, r)
	}))
	defer srv.Close()

	rs := NewRemoteShard(srv.URL)
	rs.retrySleep = func(context.Context, int) error { return nil }

	seg := road.SegmentID(1)
	group := []traffic.Observation{{
		Segments: []road.SegmentID{seg}, LengthM: 800, FreeKmh: 50, BTTSeconds: 90, TimeS: 600,
	}}
	out, err := rs.Scatter(context.Background(), "trip-x#0", group)
	if err != nil {
		t.Fatalf("scatter with lost response: %v", err)
	}
	if out.Folded != 1 || out.Discarded != 0 {
		t.Errorf("scatter outcome = %+v, want 1 folded", out)
	}
	if got := atomic.LoadInt32(&kills); got < 2 {
		t.Fatalf("scatter endpoint hit %d times; the kill/retry never happened", got)
	}
	if runs := estimateRuns(t, b); runs != 1 {
		t.Errorf("estimate stage ran %d times, want 1 — the retried scatter double-counted", runs)
	}
	b.Advance(3600)
	est, ok := b.TrafficSegment(seg)
	if !ok {
		t.Fatal("no estimate after scatter")
	}
	if est.Reports != 1 {
		t.Errorf("segment reports = %d, want 1", est.Reports)
	}

	// A journal-replay-style re-send of the same key is also absorbed.
	again, err := rs.Scatter(context.Background(), "trip-x#0", group)
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Errorf("replayed scatter outcome = %+v, want recorded %+v", again, out)
	}
	if runs := estimateRuns(t, b); runs != 1 {
		t.Errorf("estimate stage ran %d times after replayed key, want 1", runs)
	}
}

// estimateRuns reads the estimate stage's fold count — the ground truth
// for "this group was folded exactly once".
func estimateRuns(t *testing.T, b *Backend) int64 {
	t.Helper()
	for _, m := range b.StageMetrics() {
		if m.Stage == "estimate" {
			return m.Runs
		}
	}
	t.Fatal("no estimate stage in metrics")
	return 0
}

func TestFoldScatterKeyedOnce(t *testing.T) {
	// The in-process half of the idempotency contract.
	w, fpdb := twinWorld(t)
	b, err := NewBackend(DefaultConfig(), w.Transit, fpdb)
	if err != nil {
		t.Fatal(err)
	}
	group := []traffic.Observation{{
		Segments: []road.SegmentID{2}, LengthM: 500, FreeKmh: 40, BTTSeconds: 70, TimeS: 60,
	}}
	first, err := b.FoldScatter(context.Background(), "k1", group)
	if err != nil {
		t.Fatal(err)
	}
	second, err := b.FoldScatter(context.Background(), "k1", group)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("second fold = %+v, want recorded %+v", second, first)
	}
	if runs := estimateRuns(t, b); runs != 1 {
		t.Errorf("estimate stage ran %d times for one key, want 1", runs)
	}
	// An empty key bypasses the record: each fold reaches the estimator.
	if _, err := b.FoldScatter(context.Background(), "", group); err != nil {
		t.Fatal(err)
	}
	if _, err := b.FoldScatter(context.Background(), "", group); err != nil {
		t.Fatal(err)
	}
	if runs := estimateRuns(t, b); runs != 3 {
		t.Errorf("estimate stage ran %d times, want 3 (unkeyed folds are not deduped)", runs)
	}
	b.Advance(3600)
	if est, ok := b.TrafficSegment(2); !ok || est.Reports == 0 {
		t.Errorf("no estimate on the folded segment: %+v", est)
	}
}

func TestShardPublicWritesMisdirected(t *testing.T) {
	// A rider upload aimed straight at a shard process must bounce with
	// 421: it would bypass the coordinator's content-deterministic
	// routing. Reads keep working.
	w, fpdb := twinWorld(t)
	tier := startShardTier(t, w, fpdb, 2, DefaultConfig(), nil)
	for _, path := range []string{"/v1/trips", "/v1/trips/batch"} {
		resp, err := http.Post(tier.addrs[0]+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Errorf("POST %s on shard = %d, want 421", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(tier.addrs[0] + "/v1/traffic")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/traffic on shard = %d, want 200", resp.StatusCode)
	}
}

func TestRemoteShardBackpressure(t *testing.T) {
	// A saturated shard process sheds with per-row overloaded codes that
	// survive the two hops (shard → coordinator → public client) and
	// surface as the 429s the phone retry machinery feeds on.
	w, fpdb := twinWorld(t)
	cfg := DefaultConfig()
	cfg.MaxInflightBatches = 1
	tier := startShardTier(t, w, fpdb, 2, cfg, nil)
	trips := twinCorpus(t, w, faults.Config{})
	byShard := make(map[int][]probe.Trip)
	for _, trip := range trips {
		sh := tier.coord.ShardFor(trip)
		byShard[sh] = append(byShard[sh], trip)
	}
	if len(byShard[0]) < 3 || len(byShard[1]) == 0 {
		t.Fatalf("corpus does not span both shards: %d/%d", len(byShard[0]), len(byShard[1]))
	}

	// Occupy shard 0's only batch slot in its own process.
	release, ok := tier.backends[0].AdmitBatch(0)
	if !ok {
		t.Fatal("could not occupy shard 0's gate")
	}

	mixed := []probe.Trip{byShard[0][0], byShard[1][0]}
	res := tier.coord.IngestBatch(context.Background(), mixed)
	if !errors.Is(res[0].Err, ErrOverloaded) {
		t.Errorf("saturated shard's trip err = %v, want ErrOverloaded across the wire", res[0].Err)
	}
	if errors.Is(res[1].Err, ErrOverloaded) {
		t.Error("healthy shard's trip shed")
	}

	// Through the public coordinator endpoint: a batch aimed entirely at
	// the saturated shard answers 429 + Retry-After.
	front := httptest.NewServer(NewHandler(tier.coord, HandlerConfig{}))
	defer front.Close()
	body, _ := json.Marshal([]probe.Trip{byShard[0][1]})
	resp, err := http.Post(front.URL+"/v1/trips/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated-shard batch = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	release()

	// After release the shard ingests again.
	res = tier.coord.IngestBatch(context.Background(), []probe.Trip{byShard[0][2]})
	if res[0].Err != nil {
		t.Errorf("post-release ingest failed: %v", res[0].Err)
	}
}

func TestTracePropagatesAcrossShardHop(t *testing.T) {
	// The X-Busprobe-Trace header must ride coordinator → shard, so a
	// trip's stage spans on the shard join the upload's trace.
	w, fpdb := twinWorld(t)
	var got atomic.Value
	tier := startShardTier(t, w, fpdb, 2, DefaultConfig(), func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/internal/v1/") {
				if tr := r.Header.Get(obs.TraceHeader); tr != "" {
					got.Store(tr)
				}
			}
			h.ServeHTTP(rw, r)
		})
	})
	trips := twinCorpus(t, w, faults.Config{})
	ctx := obs.WithTrace(context.Background(), "trace-busride-1")
	if _, err := tier.coord.ProcessTrip(ctx, trips[0]); err != nil {
		t.Fatal(err)
	}
	if tr, _ := got.Load().(string); tr != "trace-busride-1" {
		t.Errorf("shard saw trace %q, want trace-busride-1", tr)
	}
}

func TestDegradedReadsAfterShardDeath(t *testing.T) {
	// Killing one shard process mid-run must leave the coordinator
	// serving: merged reads drop the dead shard's segments, /v1/shards
	// reports it unhealthy with the probe error, and the survivor's
	// data stays.
	w, fpdb := twinWorld(t)
	tier := startShardTier(t, w, fpdb, 2, DefaultConfig(), nil)
	trips := twinCorpus(t, w, faults.Config{})
	replayInto(t, tier.coord, trips)
	tier.coord.Advance(3 * clock.DayS)
	full := tier.coord.Traffic()
	if len(full) == 0 {
		t.Fatal("no estimates before the kill")
	}
	aliveOnly, err := tier.backends[0].Traffic(), error(nil)
	_ = err

	tier.kill(1)

	degraded := tier.coord.Traffic()
	if len(degraded) == 0 || len(degraded) >= len(full) {
		t.Fatalf("degraded map has %d segments (full %d); want the survivor's slice only", len(degraded), len(full))
	}
	if len(degraded) != len(aliveOnly) {
		t.Errorf("degraded map %d segments, survivor holds %d", len(degraded), len(aliveOnly))
	}
	if err := tier.coord.ProbeShards(context.Background()); err == nil {
		t.Error("ProbeShards reported a dead shard ready")
	}
	statuses := tier.coord.ShardStatuses()
	if !statuses[0].Healthy {
		t.Errorf("surviving shard reported unhealthy: %+v", statuses[0])
	}
	if statuses[1].Healthy || statuses[1].LastProbe == "ok" || statuses[1].LastProbe == "" {
		t.Errorf("dead shard status = %+v, want unhealthy with the probe error", statuses[1])
	}
	if !statuses[1].Remote || statuses[1].Addr != tier.addrs[1] {
		t.Errorf("dead shard topology row = %+v", statuses[1])
	}

	// The public surface stays alive end to end.
	front := httptest.NewServer(NewHandler(tier.coord, HandlerConfig{}))
	defer front.Close()
	client, err := NewClient(front.URL, front.Client())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := client.Traffic(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(degraded) {
		t.Errorf("/v1/traffic rows = %d, want %d", len(rows), len(degraded))
	}
	shardRows, err := client.Shards(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(shardRows) != 2 || shardRows[1].Healthy {
		t.Errorf("/v1/shards rows = %+v", shardRows)
	}
}

func TestReplayJournalsReportsPerShard(t *testing.T) {
	// Satellite 3: multi-process journal replay must survive a missing
	// shard file and lines truncated mid-record, reporting per-shard
	// skipped counts instead of aborting.
	w, fpdb := twinWorld(t)
	coord := newTwinCoordinator(t, w, fpdb, 2)
	trips := twinCorpus(t, w, faults.Config{})
	if len(trips) < 4 {
		t.Fatalf("corpus too small: %d", len(trips))
	}

	dir := t.TempDir()
	paths := []string{dir + "/j.shard0", dir + "/j.shard1", dir + "/j.shard2"}

	// Shard 0: two intact records, then a record truncated mid-line, as
	// a crash mid-append leaves it.
	line := func(tr probe.Trip) []byte {
		b, err := json.Marshal(&tr)
		if err != nil {
			t.Fatal(err)
		}
		return append(b, '\n')
	}
	var f0 bytes.Buffer
	f0.Write(line(trips[0]))
	f0.Write(line(trips[1]))
	torn := line(trips[2])
	f0.Write(torn[:len(torn)/2])
	if err := os.WriteFile(paths[0], f0.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// Shard 1: missing entirely (a shard that never ingested).
	// Shard 2: a corrupt line BETWEEN intact records.
	var f2 bytes.Buffer
	f2.Write(line(trips[3]))
	f2.WriteString("{not json at all\n")
	f2.Write(line(trips[4]))
	if err := os.WriteFile(paths[2], f2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	reports, err := ReplayJournals(context.Background(), paths, coord)
	if err != nil {
		t.Fatalf("ReplayJournals aborted: %v", err)
	}
	if len(reports) != 3 {
		t.Fatalf("%d reports, want 3", len(reports))
	}
	r0, r1, r2 := reports[0], reports[1], reports[2]
	if r0.Missing || r0.Replayed != 2 || r0.Skipped != 1 {
		t.Errorf("shard 0 report = %+v, want 2 replayed / 1 skipped (torn tail)", r0)
	}
	if !r1.Missing || r1.Replayed != 0 || r1.Skipped != 0 {
		t.Errorf("shard 1 report = %+v, want missing", r1)
	}
	if r2.Missing || r2.Replayed != 2 || r2.Skipped != 1 {
		t.Errorf("shard 2 report = %+v, want 2 replayed / 1 skipped (corrupt middle)", r2)
	}
	for i, r := range reports {
		if r.Shard != i || r.Path != paths[i] {
			t.Errorf("report %d mislabeled: %+v", i, r)
		}
	}
	if got := coord.Stats().TripsReceived; got != 4 {
		t.Errorf("replayed trips reached the pipeline: %d, want 4", got)
	}
}

func TestRemoteShardUnavailableClassification(t *testing.T) {
	// A dead shard surfaces as ErrShardUnavailable, which the public
	// layer maps to 502 — distinguishable from a 4xx rejection so phone
	// retry policy treats it as transient.
	rs := NewRemoteShard("http://127.0.0.1:1") // nothing listens here
	rs.retrySleep = func(context.Context, int) error { return nil }
	if _, err := rs.ProcessTrip(context.Background(), probe.Trip{ID: "x", DeviceID: "d"}); !errors.Is(err, ErrShardUnavailable) {
		t.Errorf("dead shard ProcessTrip err = %v, want ErrShardUnavailable", err)
	}
	if _, err := rs.Scatter(context.Background(), "k", nil); !errors.Is(err, ErrShardUnavailable) {
		t.Errorf("dead shard Scatter err = %v, want ErrShardUnavailable", err)
	}
	if status := uploadStatus(fmt.Errorf("wrap: %w", ErrShardUnavailable)); status != http.StatusBadGateway {
		t.Errorf("uploadStatus(ErrShardUnavailable) = %d, want 502", status)
	}
	if code := uploadCode(fmt.Errorf("wrap: %w", ErrShardUnavailable)); code != "unavailable" {
		t.Errorf("uploadCode = %q, want unavailable", code)
	}
}
