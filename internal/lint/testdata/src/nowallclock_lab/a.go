// Package nowallclock_lab is the harness-shaped fixture for the
// nowallclock analyzer: a scenario latency recorder that stamps and
// times requests. The naive shape — reading the wall clock directly —
// must be flagged at every site, while the injected-clock shape the
// real lab.LatencyRecorder uses stays clean, proving the analyzer
// holds the harness to the same discipline as the serving path.
package nowallclock_lab

import "time"

// clock is the injected abstraction (mirrors busprobe/internal/clock).
type clock interface {
	Now() time.Time
}

// naiveRecorder times requests straight off the wall clock: not
// reproducible under a fake clock, so every read is a violation.
type naiveRecorder struct {
	samples []float64
}

func (r *naiveRecorder) start() time.Time {
	return time.Now() // want `wall clock: time\.Now`
}

func (r *naiveRecorder) stop(start time.Time) {
	r.samples = append(r.samples, time.Since(start).Seconds()) // want `wall clock: time\.Since`
}

func (r *naiveRecorder) stamp() {
	r.samples = append(r.samples, float64(time.Now().UnixNano())) // want `wall clock: time\.Now`
}

// labRecorder is the clean shape: all reads go through the injected
// clock, so a fake clock yields exact, reproducible percentiles.
type labRecorder struct {
	clk     clock
	samples []float64
}

func (r *labRecorder) start() time.Time {
	return r.clk.Now()
}

func (r *labRecorder) stop(start time.Time) {
	r.samples = append(r.samples, r.clk.Now().Sub(start).Seconds())
}
