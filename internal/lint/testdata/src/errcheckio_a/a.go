// Package errcheckio_a is the failing fixture for the errcheckio
// analyzer: silently and blank-discarded errors from Close/Flush/
// Sync/Encode and from fmt.Fprint* onto real writers are flagged;
// handled errors, deferred closes, and local-buffer rendering are not.
package errcheckio_a

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type journal struct {
	f *os.File
}

func drops(j *journal, enc *json.Encoder, w *os.File) {
	j.f.Close()           // want `dropped error from j\.f\.Close on an I/O path`
	enc.Encode(1)         // want `dropped error from enc\.Encode on an I/O path`
	j.f.Sync()            // want `dropped error from j\.f\.Sync on an I/O path`
	fmt.Fprintln(w, "ok") // want `dropped error from fmt\.Fprintln`
}

func blanks(f *os.File, w *os.File) {
	_ = f.Close()                      // want `discarded error from f\.Close on an I/O path`
	_ = json.NewEncoder(w).Encode(nil) // want `discarded error from json\.NewEncoder\(\)\.Encode on an I/O path`
}

// handled, deferred, and buffer-bound writes are all clean.
func clean(f *os.File) (string, error) {
	defer f.Close() // deferred close on a read path is idiomatic
	var b strings.Builder
	fmt.Fprintf(&b, "rows=%d\n", 3) // &buf writes cannot fail
	if err := f.Sync(); err != nil {
		return "", err
	}
	return b.String(), f.Close()
}

// nested proves drops inside function literals passed as call
// arguments (the HTTP handler-registration shape) are still seen.
func nested(register func(string, func(*os.File)), w *os.File) {
	register("/healthz", func(f *os.File) {
		fmt.Fprintln(f, "ok") // want `dropped error from fmt\.Fprintln`
	})
}

// justified documents an intentional discard.
func justified(w *os.File) {
	_ = w.Close() //lint:allow errcheckio best-effort cleanup on the error path; the primary error is already being returned
}
