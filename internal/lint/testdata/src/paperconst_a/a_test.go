// Test files sweep off-canon constants deliberately (epsilon
// sensitivity, gamma ablations) and are exempt from paperconst — no
// line here may produce a diagnostic.
package paperconst_a

import "busprobe/internal/core/cluster"

func sweep() []cluster.Params {
	return []cluster.Params{
		cluster.Params{S0: 7, T0: 30, Epsilon: 0.2},
		cluster.Params{S0: 7, T0: 30, Epsilon: 0.6},
		cluster.Params{S0: 7, T0: 30, Epsilon: 1.0},
	}
}
