// Package paperconst_a is the cross-package fixture for the
// paperconst analyzer: it plays the role of a consumer package
// re-stating the canonical ICDCS'15 constants as literals instead of
// referencing the named defaults in their defining packages.
package paperconst_a

import (
	"busprobe/internal/core/cluster"
	"busprobe/internal/core/fingerprint"
	"busprobe/internal/core/traffic"
)

// tuned shadows all three Eq. 1 clustering constants at once.
func tuned() cluster.Params {
	return cluster.Params{
		S0:      7,   // want `paper constant S0 spelled as a literal`
		T0:      30,  // want `paper constant T0 spelled as a literal`
		Epsilon: 0.6, // want `paper constant Epsilon spelled as a literal`
	}
}

// offCanon is flagged too: a divergent literal outside the defining
// package is hand-tuning in the wrong place, canonical value or not.
func offCanon() cluster.Params {
	p := cluster.DefaultParams()
	p.T0 = 45                            // assignments through the named default are fine
	return cluster.Params{Epsilon: -0.2} // want `paper constant Epsilon`
}

func model() traffic.Model {
	return traffic.Model{B: 0.5} // want `paper constant B spelled as a literal`
}

func db() (*fingerprint.DB, error) {
	return fingerprint.NewDB(fingerprint.DefaultScoring(), 2) // want `paper constant passed as a literal; use fingerprint\.DefaultGamma`
}

func estimator(m traffic.Model) (*traffic.Estimator, error) {
	return traffic.NewEstimator(m, 300, 0.02) // want `paper constant passed as a literal; use traffic\.DefaultPeriodS`
}

// clean references the named defaults — nothing to flag.
func clean() (cluster.Params, traffic.Model, float64) {
	return cluster.DefaultParams(), traffic.DefaultModel(), fingerprint.DefaultGamma
}

// justified keeps a literal with an explanation.
func justified() traffic.Model {
	return traffic.Model{B: 0.55} //lint:allow paperconst per-segment regression fit from Fig. 7, not the system-wide b
}
