// Package nowallclock_a is the failing fixture for the nowallclock
// analyzer: wall-clock reads, implicit-now durations, and global
// math/rand draws must all be flagged, while explicit generators and
// justified //lint:allow sites stay clean.
package nowallclock_a

import (
	"math/rand"
	"time"
)

func deadline() time.Time {
	return time.Now() // want `wall clock: time\.Now`
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want `wall clock: time\.Since`
}

func jitter() float64 {
	return rand.Float64() // want `global math/rand: rand\.Float64`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand: rand\.Shuffle`
}

// seeded constructs an explicit generator — not a global draw, so it
// is not flagged (the generator is seedable and deterministic).
func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// bootstamp is an allowlisted entry point: the justified annotation
// suppresses the diagnostic.
func bootstamp() time.Time {
	return time.Now() //lint:allow nowallclock process boot timestamp for the banner, never in a deterministic path
}

// unjustified shows that an allow comment without a reason does not
// suppress — every escape hatch must explain itself.
func unjustified() time.Time {
	//lint:allow nowallclock
	return time.Now() // want `wall clock: time\.Now`
}
