// Package snapshotmut_a is the fixture for the snapshotmut analyzer:
// writes to maps reachable from a published traffic.Snapshot — direct,
// through an alias, or after publishing a map into a Snapshot literal —
// are flagged; copies, fresh maps, reads, and justified allows are not.
package snapshotmut_a

import (
	"busprobe/internal/core/traffic"
	"busprobe/internal/road"
)

// directWrite mutates a snapshot's map in place.
func directWrite(s *traffic.Snapshot, sid road.SegmentID, est traffic.Estimate) {
	s.Estimates[sid] = est // want `map owned by a traffic\.Snapshot assigned through \(s\.Estimates\) outside its constructor`
}

// directDelete removes a key from a snapshot's map.
func directDelete(s *traffic.Snapshot, sid road.SegmentID) {
	delete(s.RemovedAt, sid) // want `map owned by a traffic\.Snapshot deleted from \(s\.RemovedAt\) outside its constructor`
}

// fieldWrite replaces a snapshot field wholesale.
func fieldWrite(s *traffic.Snapshot) {
	s.ChangedAt = nil // want `field s\.ChangedAt of a traffic\.Snapshot assigned outside its constructor`
}

// versionBump mutates the version counter of a published snapshot.
func versionBump(s *traffic.Snapshot) {
	s.Version++ // want `field s\.Version of a traffic\.Snapshot incremented outside its constructor`
}

// aliasWrite writes through a local alias of the snapshot's map.
func aliasWrite(s *traffic.Snapshot, sid road.SegmentID, est traffic.Estimate) {
	m := s.Estimates
	m[sid] = est // want `m aliases a traffic\.Snapshot map and is assigned through without copying first`
}

// copyBeforeWrite is the sanctioned idiom: reassigning the alias from
// a fresh map clears the taint.
func copyBeforeWrite(s *traffic.Snapshot, sid road.SegmentID, est traffic.Estimate) map[road.SegmentID]traffic.Estimate {
	m := s.Estimates
	m = make(map[road.SegmentID]traffic.Estimate, len(s.Estimates))
	m[sid] = est
	return m
}

// cloneWrite mutates a copy returned by an accessor: call results are
// never snapshot-backed by contract.
func cloneWrite(s *traffic.Snapshot, sid road.SegmentID, est traffic.Estimate) {
	m := s.CloneEstimates()
	m[sid] = est
}

// constructThenMutate publishes a map into a Snapshot literal and then
// keeps writing to it — the classic construct-then-tweak bug.
func constructThenMutate(sid road.SegmentID, est traffic.Estimate) *traffic.Snapshot {
	m := map[road.SegmentID]traffic.Estimate{}
	snap := &traffic.Snapshot{Version: 1, Estimates: m}
	m[sid] = est // want `m aliases a traffic\.Snapshot map and is assigned through without copying first`
	return snap
}

// buildThenPublish writes first and publishes last: clean.
func buildThenPublish(sid road.SegmentID, est traffic.Estimate) *traffic.Snapshot {
	m := map[road.SegmentID]traffic.Estimate{}
	m[sid] = est
	return traffic.NextSnapshot(traffic.EmptySnapshot(), m)
}

// readOnly never writes: clean.
func readOnly(s *traffic.Snapshot, sid road.SegmentID) (traffic.Estimate, bool) {
	est, ok := s.Estimates[sid]
	return est, ok
}

// justified carries an allow with a reason.
func justified(s *traffic.Snapshot, sid road.SegmentID, est traffic.Estimate) {
	s.Estimates[sid] = est //lint:allow snapshotmut test-only fixture seeding before the snapshot is shared
}
