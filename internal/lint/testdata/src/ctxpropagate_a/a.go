// Package ctxpropagate_a is the fixture for the ctxpropagate analyzer:
// context.Background/TODO in library code and exported blocking API
// without a ctx parameter are flagged; threaded contexts, unexported
// helpers, non-blocking selects, ServeHTTP, and justified allows are
// not.
package ctxpropagate_a

import (
	"context"
	"net/http"
)

type Server struct {
	jobs chan int
	gate chan struct{}
}

type worker struct {
	jobs chan int
}

// rootInLibrary materializes a context mid-stack: rule 1.
func rootInLibrary() error {
	ctx := context.Background() // want `context\.Background\(\) detaches this path from the caller's cancellation`
	return ctx.Err()
}

// todoInLibrary is the same finding for TODO.
func todoInLibrary() error {
	ctx := context.TODO() // want `context\.TODO\(\) detaches this path from the caller's cancellation`
	return ctx.Err()
}

// Enqueue is exported and performs a channel send with no ctx: rule 2.
func (s *Server) Enqueue(job int) { // want `exported Enqueue performs a channel send but takes no context\.Context`
	s.jobs <- job
}

// Next is exported and receives: rule 2.
func (s *Server) Next() int { // want `exported Next performs a channel receive but takes no context\.Context`
	return <-s.jobs
}

// Wait selects with no default: rule 2.
func (s *Server) Wait(done chan struct{}) { // want `exported Wait selects on channels but takes no context\.Context`
	select {
	case <-done:
	case j := <-s.jobs:
		_ = j
	}
}

// Drain ranges over a channel: rule 2.
func (s *Server) Drain() int { // want `exported Drain ranges over a channel but takes no context\.Context`
	n := 0
	for range s.jobs {
		n++
	}
	return n
}

// Process calls a context-taking callee but offers its own callers no
// way to bound it: rule 2.
func (s *Server) Process() error { // want `exported Process calls a context-taking function but takes no context\.Context`
	return process(context.TODO(), 1) // want `context\.TODO\(\) detaches this path`
}

func process(ctx context.Context, job int) error {
	_ = job
	return ctx.Err()
}

// EnqueueCtx threads a ctx: clean.
func (s *Server) EnqueueCtx(ctx context.Context, job int) error {
	select {
	case s.jobs <- job:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryEnqueue uses the non-blocking admission-gate idiom (select with
// default): clean.
func (s *Server) TryEnqueue(job int) bool {
	select {
	case s.gate <- struct{}{}:
		return true
	default:
		return false
	}
}

// enqueue is unexported: not public API, rule 2 does not apply.
func (s *Server) enqueue(job int) {
	s.jobs <- job
}

// Push is exported but its receiver type is not: skipped.
func (w *worker) Push(job int) {
	w.jobs <- job
}

// ServeHTTP has its signature fixed by net/http; the ctx arrives
// inside the request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.jobs <- 0
	_ = r.Context()
}

// DetachedRead documents its ctx-free contract with an allow on the
// Background root; the annotation also quiets rule 2 on the
// declaration.
func (s *Server) DetachedRead() int {
	ctx := context.Background() //lint:allow ctxpropagate read path stays ctx-free by design, bounded by transport timeout
	_ = ctx
	return <-s.jobs
}
