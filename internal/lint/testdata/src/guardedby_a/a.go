// Package guardedby_a is the fixture for the guardedby analyzer:
// annotated fields accessed without the named mutex are flagged;
// accesses under Lock/defer-Unlock, in Locked-suffixed helpers and
// constructors, and justified allows are not.
package guardedby_a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //lint:guardedby mu

	statsMu sync.Mutex
	stats   map[string]int //lint:guardedby statsMu

	free int // unannotated: never checked
}

// newCounter is a constructor: fields are initialized before the value
// is shared, so no lock is required.
func newCounter() *counter {
	c := &counter{}
	c.stats = make(map[string]int)
	c.n = 0
	return c
}

func (c *counter) bumpBare() {
	c.n++ // want `c\.n is guarded by mu but accessed without c\.mu held`
}

func (c *counter) bumpHeld() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) bumpDeferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// wrongLock holds the other mutex: the guard names a specific sibling.
func (c *counter) wrongLock() {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	c.n++ // want `c\.n is guarded by mu but accessed without c\.mu held`
}

// afterRelease: the held set shrinks at Unlock.
func (c *counter) afterRelease() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want `c\.n is guarded by mu but accessed without c\.mu held`
}

// mapGuard: a second guard pairs with its own fields, and branch
// bodies inherit a copy of the held set.
func (c *counter) mapGuard(k string) int {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if v, ok := c.stats[k]; ok {
		return v
	}
	c.stats[k] = 1
	return 1
}

// closureUnderLock: a function literal created while the lock is held
// is checked as locked code.
func (c *counter) closureUnderLock() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() { c.n++ }
}

// bareClosure: a literal with no lock in scope is flagged.
func (c *counter) bareClosure() func() {
	return func() {
		c.n++ // want `c\.n is guarded by mu but accessed without c\.mu held`
	}
}

// resetLocked runs under the caller's lock by contract (Locked
// suffix) and is exempt.
func (c *counter) resetLocked() {
	c.n = 0
	c.stats = nil
}

// justified carries an allow with a reason.
func (c *counter) justified() int {
	return c.n //lint:allow guardedby snapshot read tolerated: monotone counter, staleness is fine
}

// unannotated fields are never checked.
func (c *counter) freeAccess() {
	c.free++
}
