// Package lockorder_a is the failing fixture for the lockorder
// analyzer: channel operations, hook invocations, and nested lock
// acquisitions under a held mutex are flagged; the same operations
// after release — or spawned onto another goroutine — are not.
package lockorder_a

import "sync"

type backend struct {
	mu      sync.Mutex
	statsMu sync.Mutex
	gate    chan struct{}
	hook    func(string, int)
}

func (b *backend) sendWhileLocked() {
	b.mu.Lock()
	b.gate <- struct{}{} // want `channel send on b\.gate while holding b\.mu`
	b.mu.Unlock()
}

func (b *backend) recvWhileDeferLocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	<-b.gate // want `channel receive from b\.gate while holding b\.mu`
}

func (b *backend) selectWhileLocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `select while holding b\.mu`
	case b.gate <- struct{}{}:
	default:
	}
}

func (b *backend) hookWhileLocked(n int) {
	b.mu.Lock()
	b.hook("stage", n) // want `hook b\.hook invoked while holding b\.mu`
	b.mu.Unlock()
}

func (b *backend) nestedLocks() {
	b.mu.Lock()
	b.statsMu.Lock() // want `b\.statsMu\.Lock acquired while b\.mu is still held`
	b.statsMu.Unlock()
	b.mu.Unlock()
}

// afterRelease shows the same operations are clean once the lock is
// dropped — the scan tracks Unlock.
func (b *backend) afterRelease(n int) {
	b.mu.Lock()
	b.mu.Unlock()
	b.gate <- struct{}{}
	b.hook("stage", n)
	b.statsMu.Lock()
	b.statsMu.Unlock()
}

// detached spawns the channel work onto another goroutine, which runs
// outside the critical section.
func (b *backend) detached() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() { b.gate <- struct{}{} }()
}

// justified documents an intentional nesting.
func (b *backend) justified() {
	b.mu.Lock()
	//lint:allow lockorder statsMu is strictly ordered after mu repo-wide; see DESIGN.md §6e
	b.statsMu.Lock()
	b.statsMu.Unlock()
	b.mu.Unlock()
}
