// Package maporder_a is the fixture for the maporder analyzer: map
// ranges whose iteration order escapes into output (writes to a sink,
// unsorted self-appends) are flagged; sorted accumulations, loop-local
// slices, aggregations, and justified allows are not.
package maporder_a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

type row struct {
	ID   int
	Text string
}

// writeUnsorted streams entries in map order: always a finding.
func writeUnsorted(w io.Writer, m map[int]string) {
	for k, v := range m {
		fmt.Fprintf(w, "%d=%s\n", k, v) // want `map iteration order written to w inside range over m`
	}
}

// builderUnsorted hits the Write-method shape on a strings.Builder.
func builderUnsorted(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `map iteration order written to b inside range over m`
	}
	return b.String()
}

// accumulateUnsorted self-appends into an escaping slice that is never
// sorted.
func accumulateUnsorted(m map[int]string) []row {
	var rows []row
	for k, v := range m {
		rows = append(rows, row{ID: k, Text: v}) // want `rows accumulates in map iteration order from range over m and is never sorted`
	}
	return rows
}

// accumulateSorted is the repo's range-append-sort idiom: clean.
func accumulateSorted(m map[int]string) []row {
	var rows []row
	for k, v := range m {
		rows = append(rows, row{ID: k, Text: v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return rows
}

// sortedKeys iterates a sorted key slice — the recommended shape.
func sortedKeys(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// loopLocal appends to a slice declared inside the loop: it dies with
// the iteration, no order escapes.
func loopLocal(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		doubled = append(doubled, vs...)
		total += len(doubled)
	}
	return total
}

// aggregate has no escaping order at all: clean.
func aggregate(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// justified carries an allow with a reason.
func justified(w io.Writer, m map[int]string) {
	for _, v := range m {
		fmt.Fprintln(w, v) //lint:allow maporder debug dump, order is irrelevant to the reader
	}
}
