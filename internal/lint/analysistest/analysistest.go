// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest for the dependency-free
// framework in internal/lint/analysis.
//
// Fixtures live under <testdata>/src/<pkg>/*.go. A line that should
// trigger a diagnostic carries a trailing comment of the form
//
//	// want "regexp"            one expected diagnostic
//	// want "re1" "re2"         several diagnostics on the same line
//	// want `backquoted too`
//
// Every diagnostic must match a want on its line and every want must
// be matched by a diagnostic — unexpected and missing findings are
// both test failures, so a fixture proves the analyzer fires AND that
// its clean lines stay clean.
//
// Fixture packages are fully type-checked before the analyzer runs,
// exactly like real units under the driver: imports of busprobe
// packages resolve against the enclosing module, everything else
// against the standard library's source importer. One loader is
// shared across every Run in the process, so the stdlib cost is paid
// once per test binary. A fixture that fails to type-check fails the
// test — fixtures are real code.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"busprobe/internal/lint/analysis"
	"busprobe/internal/lint/loader"
)

// sharedLoader memoizes type-checked dependencies across every fixture
// in the test binary. Guarded by loaderMu: analyzer tests may run from
// multiple packages' test binaries, but within one binary Run may be
// called from parallel subtests.
var (
	loaderMu     sync.Mutex
	sharedLoader *loader.Loader
)

func fixtureLoader() *loader.Loader {
	if sharedLoader == nil {
		root, modPath, err := loader.ModuleRoot(TestData())
		if err != nil {
			panic(fmt.Sprintf("analysistest: locate module root: %v", err))
		}
		sharedLoader = loader.New(token.NewFileSet(), root, modPath)
	}
	return sharedLoader
}

// TestData returns the absolute path of the lint suite's shared
// testdata directory (internal/lint/testdata), resolved relative to
// this source file so analyzer tests in sibling packages all share one
// fixture tree.
func TestData() string {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	// …/internal/lint/analysistest/analysistest.go → …/internal/lint/testdata
	return filepath.Join(filepath.Dir(filepath.Dir(thisFile)), "testdata")
}

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run applies the analyzer to each fixture package and diffs its
// diagnostics against the // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, filepath.Join(testdata, "src", pkg), pkg, a)
	}
}

func runOne(t *testing.T, dir, pkg string, a *analysis.Analyzer) {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()
	ld := fixtureLoader()
	fset := ld.Fset
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", pkg, err)
	}
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: parse: %v", pkg, err)
		}
		files = append(files, f)
		ws, err := collectWants(fset, f)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		wants = append(wants, ws...)
	}
	if len(files) == 0 {
		t.Fatalf("%s: fixture package %s has no Go files", pkg, dir)
	}

	tpkg, info, err := ld.CheckPackage(pkg, files)
	if err != nil {
		t.Fatalf("%s: typecheck fixture: %v", pkg, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Path:      pkg,
		Pkg:       tpkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkg, a.Name, err)
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		if !claim(wants, filepath.Base(posn.Filename), posn.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s",
				pkg, filepath.Base(posn.Filename), posn.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q",
				pkg, w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches the message.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses the // want comments of one file.
func collectWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			posn := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
			pats, err := splitPatterns(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: malformed want: %v", posn.Filename, posn.Line, err)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", posn.Filename, posn.Line, p, err)
				}
				out = append(out, &expectation{
					file: filepath.Base(posn.Filename),
					line: posn.Line,
					re:   re,
					raw:  p,
				})
			}
		}
	}
	return out, nil
}

// splitPatterns tokenizes `"re1" "re2"` / backquoted pattern lists.
func splitPatterns(s string) ([]string, error) {
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted pattern")
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted pattern")
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("pattern must be quoted, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty pattern list")
	}
	return out, nil
}
