// Package paperconst keeps the paper's canonical constants (Zhou et
// al., ICDCS 2015) defined in exactly one place each:
//
//	γ  = 2     fingerprint.DefaultGamma   (matching acceptance)
//	s₀ = 7     cluster.DefaultParams      (Eq. 1 co-clustering)
//	t₀ = 30 s  cluster.DefaultParams
//	ε  = 0.6   cluster.DefaultParams
//	b  = 0.5   traffic.DefaultModel       (Eq. 3 transit model)
//	T  = 300 s traffic.DefaultPeriodS     (map refresh period)
//
// Outside the defining packages, writing a numeric literal where one
// of these parameters is expected — cluster.Params{S0: 7, …},
// traffic.Model{B: 0.5}, fingerprint.NewDB(sc, 2),
// traffic.NewEstimator(m, 300, …) — re-states tuning that must happen
// in one place, and is flagged. Reference the named default instead.
// Test files are exempt (they sweep off-canon values deliberately), as
// are sites annotated //lint:allow paperconst <reason>.
package paperconst

import (
	"go/ast"
	"go/token"

	"busprobe/internal/lint/analysis"
)

// Analyzer is the paperconst check.
var Analyzer = &analysis.Analyzer{
	Name: "paperconst",
	Doc: "flag numeric literals that shadow the canonical paper " +
		"constants (γ, s₀, t₀, ε, b, T) outside their defining packages",
	Run: run,
}

// Defining packages own their constants and may spell them as
// literals.
var definingPkgs = map[string]bool{
	"busprobe/internal/core/cluster":     true,
	"busprobe/internal/core/fingerprint": true,
	"busprobe/internal/core/traffic":     true,
}

// paramFields maps a qualified composite-literal type to the keyed
// fields that carry paper constants, and the named default to use.
var paramFields = map[string]map[string]string{
	"busprobe/internal/core/cluster.Params": {
		"S0":      "cluster.DefaultParams()",
		"T0":      "cluster.DefaultParams()",
		"Epsilon": "cluster.DefaultParams()",
	},
	"busprobe/internal/core/traffic.Model": {
		"B": "traffic.DefaultModel()",
	},
}

// paramArgs maps a qualified constructor to the 0-based argument
// position that carries a paper constant, and the named default.
var paramArgs = map[string]struct {
	arg  int
	hint string
}{
	"busprobe/internal/core/fingerprint.NewDB":    {1, "fingerprint.DefaultGamma"},
	"busprobe/internal/core/traffic.NewEstimator": {1, "traffic.DefaultPeriodS"},
}

func run(pass *analysis.Pass) error {
	if definingPkgs[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		imports := analysis.ImportAliases(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				checkComposite(pass, imports, x)
			case *ast.CallExpr:
				checkCall(pass, imports, x)
			}
			return true
		})
	}
	return nil
}

// qualifiedName resolves a selector expression like cluster.Params to
// "busprobe/internal/core/cluster.Params" via the file's imports.
func qualifiedName(imports map[string]string, e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	path := imports[x.Name]
	if path == "" {
		return ""
	}
	return path + "." + sel.Sel.Name
}

func checkComposite(pass *analysis.Pass, imports map[string]string, lit *ast.CompositeLit) {
	fields := paramFields[qualifiedName(imports, lit.Type)]
	if fields == nil {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		hint, tracked := fields[key.Name]
		if !tracked || !isNumericLiteral(kv.Value) {
			continue
		}
		if pass.Allowed(kv.Pos(), "paperconst") {
			continue
		}
		pass.Reportf(kv.Pos(),
			"paper constant %s spelled as a literal outside its defining package; start from %s (or annotate //lint:allow paperconst <reason>)",
			key.Name, hint)
	}
}

func checkCall(pass *analysis.Pass, imports map[string]string, call *ast.CallExpr) {
	spec, ok := paramArgs[qualifiedName(imports, call.Fun)]
	if !ok || spec.arg >= len(call.Args) {
		return
	}
	arg := call.Args[spec.arg]
	if !isNumericLiteral(arg) || pass.Allowed(arg.Pos(), "paperconst") {
		return
	}
	pass.Reportf(arg.Pos(),
		"paper constant passed as a literal; use %s (or annotate //lint:allow paperconst <reason>)",
		spec.hint)
}

// isNumericLiteral matches 7, 0.6, and negated forms like -100.
func isNumericLiteral(e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = u.X
	}
	if b, ok := e.(*ast.BasicLit); ok {
		return b.Kind == token.INT || b.Kind == token.FLOAT
	}
	return false
}
