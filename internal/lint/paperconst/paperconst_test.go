package paperconst_test

import (
	"testing"

	"busprobe/internal/lint/analysistest"
	"busprobe/internal/lint/paperconst"
)

// TestPaperConstFixture proves the cross-package case: a consumer
// package re-stating γ/s₀/t₀/ε/b/T literals is flagged, while named
// defaults, test files, and justified allows stay clean.
func TestPaperConstFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), paperconst.Analyzer, "paperconst_a")
}
