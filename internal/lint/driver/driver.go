// Package driver runs the busprobe-vet analyzer suite two ways:
//
//   - Standalone: `busprobe-vet ./...` walks the module, parses each
//     package, and prints findings — no build cache, no toolchain
//     handshake, fast enough to run on every save.
//   - As a vet tool: `go vet -vettool=$(which busprobe-vet) ./...`
//     speaks the go command's unit-checker protocol (the -V=full
//     handshake, the -flags query, and per-package vet.cfg files);
//     see unitchecker.go. This is the CI path: go vet handles package
//     graph walking and caching.
//
// Both paths build the same analysis.Pass per package, so a finding is
// identical whichever way the suite runs.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"busprobe/internal/lint/analysis"
	"busprobe/internal/lint/loader"
)

// Finding is one diagnostic with its position resolved.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the file:line:col style editors jump
// on.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// stderrln prints one diagnostic line. All of the driver's output goes
// through here: a CLI has no channel to report a failed stderr write
// on, so the error is discarded in exactly one place.
func stderrln(args ...any) {
	fmt.Fprintln(os.Stderr, args...) //lint:allow errcheckio a CLI cannot report a failed stderr write anywhere
}

// Main is the busprobe-vet entry point. It returns the process exit
// code: 0 clean, 1 findings (standalone), 2 findings (vet protocol),
// 3 usage or load errors.
func Main(analyzers []*analysis.Analyzer) int {
	jsonOut := false
	var patterns []string
	for _, a := range os.Args[1:] {
		switch {
		case a == "-V=full", a == "--V=full":
			printVersion()
			return 0
		case a == "-flags", a == "--flags":
			// No analyzer flags: the suite is configuration-free by
			// design (invariants are not tunable per invocation).
			fmt.Println("[]")
			return 0
		case a == "-json", a == "--json":
			jsonOut = true
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return unitcheck(analyzers, patterns[0])
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		stderrln("busprobe-vet:", err)
		return 3
	}
	findings, err := AnalyzePatterns(analyzers, wd, patterns)
	if err != nil {
		stderrln("busprobe-vet:", err)
		return 3
	}
	if jsonOut {
		if err := WriteJSON(os.Stdout, wd, findings); err != nil {
			stderrln("busprobe-vet:", err)
			return 3
		}
	} else {
		for _, f := range findings {
			stderrln(f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable diagnostic record the -json flag
// emits, one per finding, in the same deterministic file/line/column
// order the human output uses.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as an indented JSON array. File paths are
// made relative to dir when possible, so CI artifacts compare equal
// across checkouts.
func WriteJSON(w io.Writer, dir string, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		name := f.Position.Filename
		if rel, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		out = append(out, jsonFinding{
			File:     name,
			Line:     f.Position.Line,
			Col:      f.Position.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// AnalyzePatterns loads the packages matching the ./...-style patterns
// relative to dir and runs every analyzer over each, returning
// position-sorted findings. It resolves import paths against the
// enclosing module's go.mod, so analyzer package exemptions
// ("busprobe/internal/clock", the defining packages of paperconst)
// behave exactly as they do under go vet. Every package is fully
// type-checked (one loader shared across the walk, so dependencies and
// the standard library are checked once), and the pass each analyzer
// receives carries the resulting Pkg and TypesInfo.
func AnalyzePatterns(analyzers []*analysis.Analyzer, dir string, patterns []string) ([]Finding, error) {
	root, modPath, err := loader.ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := matchPackageDirs(root, dir, patterns)
	if err != nil {
		return nil, err
	}
	ld := loader.New(token.NewFileSet(), root, modPath)
	var findings []Finding
	for _, pkgDir := range dirs {
		rel, err := filepath.Rel(root, pkgDir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		fs, err := analyzeDir(analyzers, ld, pkgDir, importPath)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// analyzeDir parses one package directory (tests included — analyzers
// exempt _test.go themselves where appropriate), type-checks it
// through the shared loader, and runs the suite.
func analyzeDir(analyzers []*analysis.Analyzer, ld *loader.Loader, dir, importPath string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(ld.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkg, info, err := ld.CheckPackage(importPath, files)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return runAnalyzers(analyzers, ld.Fset, files, importPath, pkg, info)
}

// runAnalyzers applies each analyzer to one type-checked package, then
// appends an "allowcheck" finding for every //lint:allow comment that
// lacks a justification — a bare allow suppresses nothing, so it must
// fail the build rather than masquerade as an exemption.
func runAnalyzers(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, importPath string, pkg *types.Package, info *types.Info) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Path:      importPath,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Position: fset.Position(d.Pos),
					Analyzer: d.Category,
					Message:  d.Message,
				})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, importPath, err)
		}
	}
	for _, f := range files {
		for _, pos := range analysis.MalformedAllows(f) {
			findings = append(findings, Finding{
				Position: fset.Position(pos),
				Analyzer: "allowcheck",
				Message:  "//lint:allow without a justification suppresses nothing; add a reason after the analyzer name",
			})
		}
	}
	return findings, nil
}

// matchPackageDirs expands ./...-style patterns into package
// directories, skipping testdata, vendor, and hidden trees exactly as
// the go tool does.
func matchPackageDirs(root, cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, pat)
		}
		info, err := os.Stat(base)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory under %s", pat, root)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
