// Package driver runs the busprobe-vet analyzer suite two ways:
//
//   - Standalone: `busprobe-vet ./...` walks the module, parses each
//     package, and prints findings — no build cache, no toolchain
//     handshake, fast enough to run on every save.
//   - As a vet tool: `go vet -vettool=$(which busprobe-vet) ./...`
//     speaks the go command's unit-checker protocol (the -V=full
//     handshake, the -flags query, and per-package vet.cfg files);
//     see unitchecker.go. This is the CI path: go vet handles package
//     graph walking and caching.
//
// Both paths build the same analysis.Pass per package, so a finding is
// identical whichever way the suite runs.
package driver

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"busprobe/internal/lint/analysis"
)

// Finding is one diagnostic with its position resolved.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the file:line:col style editors jump
// on.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// stderrln prints one diagnostic line. All of the driver's output goes
// through here: a CLI has no channel to report a failed stderr write
// on, so the error is discarded in exactly one place.
func stderrln(args ...any) {
	fmt.Fprintln(os.Stderr, args...) //lint:allow errcheckio a CLI cannot report a failed stderr write anywhere
}

// Main is the busprobe-vet entry point. It returns the process exit
// code: 0 clean, 1 findings (standalone), 2 findings (vet protocol),
// 3 usage or load errors.
func Main(analyzers []*analysis.Analyzer) int {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-V=full", a == "--V=full":
			printVersion()
			return 0
		case a == "-flags", a == "--flags":
			// No analyzer flags: the suite is configuration-free by
			// design (invariants are not tunable per invocation).
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(analyzers, args[0])
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		stderrln("busprobe-vet:", err)
		return 3
	}
	findings, err := AnalyzePatterns(analyzers, wd, patterns)
	if err != nil {
		stderrln("busprobe-vet:", err)
		return 3
	}
	for _, f := range findings {
		stderrln(f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// AnalyzePatterns loads the packages matching the ./...-style patterns
// relative to dir and runs every analyzer over each, returning
// position-sorted findings. It resolves import paths against the
// enclosing module's go.mod, so analyzer package exemptions
// ("busprobe/internal/clock", the defining packages of paperconst)
// behave exactly as they do under go vet.
func AnalyzePatterns(analyzers []*analysis.Analyzer, dir string, patterns []string) ([]Finding, error) {
	root, modPath, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := matchPackageDirs(root, dir, patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkgDir := range dirs {
		rel, err := filepath.Rel(root, pkgDir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		fs, err := analyzeDir(analyzers, pkgDir, importPath)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// analyzeDir parses one package directory (tests included — analyzers
// exempt _test.go themselves where appropriate) and runs the suite.
func analyzeDir(analyzers []*analysis.Analyzer, dir, importPath string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", filepath.Join(dir, e.Name()), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return runAnalyzers(analyzers, fset, files, importPath)
}

// runAnalyzers applies each analyzer to one parsed package.
func runAnalyzers(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, importPath string) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Path:     importPath,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Position: fset.Position(d.Pos),
					Analyzer: d.Category,
					Message:  d.Message,
				})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, importPath, err)
		}
	}
	return findings, nil
}

// moduleRoot walks up from dir to the enclosing go.mod and returns the
// root directory and module path.
func moduleRoot(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// matchPackageDirs expands ./...-style patterns into package
// directories, skipping testdata, vendor, and hidden trees exactly as
// the go tool does.
func matchPackageDirs(root, cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, pat)
		}
		info, err := os.Stat(base)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory under %s", pat, root)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
