// The go command's external vet-tool protocol, reimplemented over the
// standard library (the canonical implementation lives in
// golang.org/x/tools/go/analysis/unitchecker, which this build
// environment cannot vendor).
//
// `go vet -vettool=<binary> ./...` drives the tool in three steps:
//
//  1. `<binary> -V=full` — a content-addressed version line that the
//     build cache keys vet results on.
//  2. `<binary> -flags` — a JSON description of supported flags (the
//     suite has none, so it prints []).
//  3. `<binary> <objdir>/vet.cfg` once per package — a JSON config
//     naming the package's Go files and its dependencies' export-data
//     files; the tool parses and type-checks the unit, writes the
//     facts file the config asks for, prints diagnostics to stderr,
//     and exits 2 when it found anything.
//
// The suite's analyzers exchange no facts across packages, so the
// facts output is an empty placeholder; it must still be written,
// because the go command treats a missing output as a tool failure.
// Type information, by contrast, is rebuilt per unit: dependency types
// come from the export files the go command already compiled
// (PackageFile/ImportMap), so only the unit's own files are
// type-checked from source.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"busprobe/internal/lint/analysis"
	"busprobe/internal/lint/loader"
)

// vetConfig mirrors the fields of the go command's vet.cfg that the
// suite consumes, including the type-checking inputs: ImportMap
// resolves the unit's import spellings to canonical package paths
// (vendoring, test variants), PackageFile locates each dependency's
// compiled export data, and Standard marks stdlib packages.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// unitImporter resolves the unit's imports: through the go command's
// export-data files when the vet.cfg provides them (the `go vet` path
// — no dependency is ever re-type-checked), falling back to a source
// loader rooted at the unit's enclosing module for minimal configs
// that omit type inputs (the hand-written configs the protocol tests
// drive the tool with).
func unitImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export file for %q", path)
		}
		return os.Open(file)
	})
	var ld *loader.Loader
	return loader.Func(func(path string) (*types.Package, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if _, ok := cfg.PackageFile[path]; ok {
			return gc.Import(path)
		}
		if ld == nil {
			root, modPath, err := loader.ModuleRoot(cfg.Dir)
			if err != nil {
				return nil, fmt.Errorf("import %q: no export file and no enclosing module: %w", path, err)
			}
			ld = loader.New(fset, root, modPath)
		}
		return ld.Import(path)
	})
}

// unitcheck runs one vet.cfg invocation and returns the exit code.
func unitcheck(analyzers []*analysis.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		stderrln("busprobe-vet:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		stderrln(fmt.Sprintf("busprobe-vet: parse %s: %v", cfgPath, err))
		return 3
	}

	// The facts file must exist even when empty (or when analysis is
	// skipped): the go command records it as the action's output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			stderrln("busprobe-vet:", err)
			return 3
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: the go command only wants facts, and the
		// suite has none.
		return 0
	}

	// The test variant of a package is named "pkg [pkg.test]"; the
	// analyzers' package exemptions key on the plain import path.
	importPath := cfg.ImportPath
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			stderrln("busprobe-vet:", err)
			return 3
		}
		files = append(files, f)
	}

	// Type-check the unit. The go command hands each test variant to
	// the tool as its own unit (base, in-package test, external test),
	// so unlike the standalone walker there is no package split here —
	// one Check covers exactly the files of this unit.
	info := loader.NewInfo()
	tc := &types.Config{Importer: unitImporter(fset, &cfg)}
	if strings.HasPrefix(cfg.GoVersion, "go1") {
		tc.GoVersion = cfg.GoVersion
	}
	pkg, err := tc.Check(importPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// go vet runs alongside the compiler, which reports the
			// error with better context; the tool stays quiet.
			return 0
		}
		stderrln("busprobe-vet: typecheck:", err)
		return 3
	}

	findings, err := runAnalyzers(analyzers, fset, files, importPath, pkg, info)
	if err != nil {
		stderrln("busprobe-vet:", err)
		return 3
	}
	for _, f := range findings {
		stderrln(f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// printVersion answers the -V=full handshake. The line must have the
// shape "<name> version <semver-or-devel> … buildID=<content-id>"; the
// go command hashes it into the build-cache key for vet results, so
// the content ID is a digest of the tool binary itself — edit an
// analyzer, rebuild, and previously cached "clean" verdicts are
// invalidated automatically.
func printVersion() {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	fmt.Printf("%s version devel buildID=%s\n", name, selfDigest())
}

// selfDigest hashes the running executable.
func selfDigest() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
