// The go command's external vet-tool protocol, reimplemented over the
// standard library (the canonical implementation lives in
// golang.org/x/tools/go/analysis/unitchecker, which this build
// environment cannot vendor).
//
// `go vet -vettool=<binary> ./...` drives the tool in three steps:
//
//  1. `<binary> -V=full` — a content-addressed version line that the
//     build cache keys vet results on.
//  2. `<binary> -flags` — a JSON description of supported flags (the
//     suite has none, so it prints []).
//  3. `<binary> <objdir>/vet.cfg` once per package — a JSON config
//     naming the package's Go files; the tool analyzes them, writes
//     the facts file the config asks for, prints diagnostics to
//     stderr, and exits 2 when it found anything.
//
// The suite's analyzers are purely syntactic and exchange no facts
// across packages, so the facts output is an empty placeholder; it
// must still be written, because the go command treats a missing
// output as a tool failure.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"busprobe/internal/lint/analysis"
)

// vetConfig mirrors the fields of the go command's vet.cfg that the
// suite consumes (the full config also carries type-checking inputs —
// ImportMap, PackageFile, Standard — which syntactic analyzers do not
// need).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// unitcheck runs one vet.cfg invocation and returns the exit code.
func unitcheck(analyzers []*analysis.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		stderrln("busprobe-vet:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		stderrln(fmt.Sprintf("busprobe-vet: parse %s: %v", cfgPath, err))
		return 3
	}

	// The facts file must exist even when empty (or when analysis is
	// skipped): the go command records it as the action's output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			stderrln("busprobe-vet:", err)
			return 3
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: the go command only wants facts, and the
		// suite has none.
		return 0
	}

	// The test variant of a package is named "pkg [pkg.test]"; the
	// analyzers' package exemptions key on the plain import path.
	importPath := cfg.ImportPath
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			stderrln("busprobe-vet:", err)
			return 3
		}
		files = append(files, f)
	}
	findings, err := runAnalyzers(analyzers, fset, files, importPath)
	if err != nil {
		stderrln("busprobe-vet:", err)
		return 3
	}
	for _, f := range findings {
		stderrln(f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// printVersion answers the -V=full handshake. The line must have the
// shape "<name> version <semver-or-devel> … buildID=<content-id>"; the
// go command hashes it into the build-cache key for vet results, so
// the content ID is a digest of the tool binary itself — edit an
// analyzer, rebuild, and previously cached "clean" verdicts are
// invalidated automatically.
func printVersion() {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	fmt.Printf("%s version devel buildID=%s\n", name, selfDigest())
}

// selfDigest hashes the running executable.
func selfDigest() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
