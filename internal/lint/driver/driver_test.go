package driver

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"busprobe/internal/lint"
	"busprobe/internal/lint/analysis"
	"busprobe/internal/lint/loader"
)

// suite is the full eight-analyzer stack the production drivers run.
func suite() []*analysis.Analyzer {
	return lint.Suite()
}

// repoRoot walks up from the test's working directory to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := loader.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRepoIsClean is the acceptance gate in test form: the full suite
// over the whole module must report nothing. A failure here lists the
// exact findings a CI `go vet -vettool` run would fail on.
func TestRepoIsClean(t *testing.T) {
	root := repoRoot(t)
	findings, err := AnalyzePatterns(suite(), root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestAnalyzePatternsFindsPlantedViolation proves the standalone path
// actually runs the analyzers: a scratch module with a time.Now call
// must produce exactly one nowallclock finding.
func TestAnalyzePatternsFindsPlantedViolation(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "pkg", "p.go"), `package pkg

import "time"

func now() time.Time { return time.Now() }
`)
	findings, err := AnalyzePatterns(suite(), dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly one", findings)
	}
	if f := findings[0]; f.Analyzer != "nowallclock" || !strings.Contains(f.Message, "time.Now") {
		t.Fatalf("unexpected finding: %s", f)
	}
}

// TestUnitcheckProtocol drives the vet.cfg path the way the go command
// does: the tool must write the facts file, print findings, strip the
// "pkg [pkg.test]" import-path variant, and honor VetxOnly.
func TestUnitcheckProtocol(t *testing.T) {
	dir := t.TempDir()
	// The config below carries no PackageFile table, so the unit
	// checker falls back to source-loading imports against the
	// enclosing module — give the scratch dir one.
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	src := filepath.Join(dir, "p.go")
	writeFile(t, src, `package pkg

import "time"

func now() time.Time { return time.Now() }
`)
	vetx := filepath.Join(dir, "out.vetx")
	cfg := filepath.Join(dir, "vet.cfg")
	writeFile(t, cfg, `{
  "ID": "scratch/pkg",
  "Dir": "`+dir+`",
  "ImportPath": "scratch/pkg [scratch/pkg.test]",
  "GoFiles": ["p.go"],
  "VetxOutput": "`+vetx+`"
}`)

	if code := unitcheck(suite(), cfg); code != 2 {
		t.Fatalf("unitcheck exit = %d, want 2 (findings)", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}

	// VetxOnly skips analysis entirely but still writes the output.
	if err := os.Remove(vetx); err != nil {
		t.Fatal(err)
	}
	writeFile(t, cfg, `{
  "ID": "scratch/pkg",
  "Dir": "`+dir+`",
  "ImportPath": "scratch/pkg",
  "GoFiles": ["p.go"],
  "VetxOnly": true,
  "VetxOutput": "`+vetx+`"
}`)
	if code := unitcheck(suite(), cfg); code != 0 {
		t.Fatalf("VetxOnly exit = %d, want 0", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written on VetxOnly pass: %v", err)
	}
}

// TestUnitcheckExemptImportPathVariant proves the test-variant suffix
// is stripped before package exemptions apply: the clock package's own
// test binary must not be flagged for reading the wall clock.
func TestUnitcheckExemptImportPathVariant(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module busprobe2\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "clock.go"), `package clock

import "time"

func now() time.Time { return time.Now() }
`)
	vetx := filepath.Join(dir, "out.vetx")
	cfg := filepath.Join(dir, "vet.cfg")
	writeFile(t, cfg, `{
  "ID": "busprobe/internal/clock",
  "Dir": "`+dir+`",
  "ImportPath": "busprobe/internal/clock [busprobe/internal/clock.test]",
  "GoFiles": ["clock.go"],
  "VetxOutput": "`+vetx+`"
}`)
	if code := unitcheck(suite(), cfg); code != 0 {
		t.Fatalf("exit = %d, want 0 (clock package is exempt)", code)
	}
}

// TestGoVetPlantedViolations proves each type-aware analyzer fires
// through the real `go vet -vettool` path — the go command's own
// handshake, vet.cfg files, and export-data type inputs — not just the
// standalone walker. One scratch module, one planted violation per
// analyzer.
func TestGoVetPlantedViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vet tool and runs go vet")
	}
	root := repoRoot(t)
	tool := filepath.Join(t.TempDir(), "busprobe-vet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/busprobe-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build vet tool: %v\n%s", err, out)
	}

	// The scratch module's path sits under busprobe/ so it may import
	// the repo's internal packages (snapshotmut keys on the real
	// traffic.Snapshot type); the replace directive resolves the
	// dependency to the local checkout, no network involved.
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), `module busprobe/scratch

go 1.22

require busprobe v0.0.0

replace busprobe => `+root+"\n")
	writeFile(t, filepath.Join(dir, "gb", "gb.go"), `package gb

import "sync"

type C struct {
	mu sync.Mutex
	n  int //lint:guardedby mu
}

func (c *C) Bump() { c.n++ }
`)
	writeFile(t, filepath.Join(dir, "mo", "mo.go"), `package mo

import (
	"fmt"
	"io"
)

func Dump(w io.Writer, m map[int]string) error {
	for k, v := range m {
		if _, err := fmt.Fprintf(w, "%d=%s\n", k, v); err != nil {
			return err
		}
	}
	return nil
}
`)
	writeFile(t, filepath.Join(dir, "cp", "cp.go"), `package cp

import "context"

func Detach() error {
	ctx := context.Background()
	return ctx.Err()
}
`)
	writeFile(t, filepath.Join(dir, "sm", "sm.go"), `package sm

import (
	"busprobe/internal/core/traffic"
	"busprobe/internal/road"
)

func Poke(s *traffic.Snapshot, sid road.SegmentID, est traffic.Estimate) {
	s.Estimates[sid] = est
}
`)

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on planted violations:\n%s", out)
	}
	for _, want := range []string{"guardedby:", "maporder:", "ctxpropagate:", "snapshotmut:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("go vet output missing %q finding:\n%s", want, out)
		}
	}
}

// TestWriteJSON checks the -json rendering: deterministic order is the
// caller's (AnalyzePatterns sorts), paths inside dir become relative
// with forward slashes, paths outside stay absolute.
func TestWriteJSON(t *testing.T) {
	dir := t.TempDir()
	findings := []Finding{
		{
			Position: token.Position{Filename: filepath.Join(dir, "pkg", "a.go"), Line: 3, Column: 7},
			Analyzer: "nowallclock",
			Message:  "time.Now read",
		},
		{
			Position: token.Position{Filename: "/elsewhere/b.go", Line: 10, Column: 1},
			Analyzer: "maporder",
			Message:  "unsorted range",
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, dir, findings); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("records = %d, want 2", len(got))
	}
	if got[0].File != "pkg/a.go" || got[0].Line != 3 || got[0].Col != 7 || got[0].Analyzer != "nowallclock" {
		t.Errorf("first record = %+v", got[0])
	}
	if got[1].File != "/elsewhere/b.go" || got[1].Analyzer != "maporder" {
		t.Errorf("second record = %+v", got[1])
	}
}

// TestMalformedAllowFailsBuild proves a bare //lint:allow (no
// justification) both fails to suppress the underlying finding and
// adds an allowcheck finding of its own.
func TestMalformedAllowFailsBuild(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "pkg", "p.go"), `package pkg

import "time"

func now() time.Time {
	return time.Now() //lint:allow nowallclock
}
`)
	findings, err := AnalyzePatterns(suite(), dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var sawAllowcheck, sawOriginal bool
	for _, f := range findings {
		switch f.Analyzer {
		case "allowcheck":
			sawAllowcheck = true
		case "nowallclock":
			sawOriginal = true
		}
	}
	if !sawAllowcheck {
		t.Errorf("no allowcheck finding for bare //lint:allow: %v", findings)
	}
	if !sawOriginal {
		t.Errorf("bare //lint:allow suppressed the finding it cannot justify: %v", findings)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
