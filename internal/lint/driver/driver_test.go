package driver

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busprobe/internal/lint/analysis"
	"busprobe/internal/lint/errcheckio"
	"busprobe/internal/lint/lockorder"
	"busprobe/internal/lint/nowallclock"
	"busprobe/internal/lint/paperconst"
)

func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nowallclock.Analyzer,
		paperconst.Analyzer,
		lockorder.Analyzer,
		errcheckio.Analyzer,
	}
}

// repoRoot walks up from the test's working directory to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := moduleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRepoIsClean is the acceptance gate in test form: the full suite
// over the whole module must report nothing. A failure here lists the
// exact findings a CI `go vet -vettool` run would fail on.
func TestRepoIsClean(t *testing.T) {
	root := repoRoot(t)
	findings, err := AnalyzePatterns(suite(), root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestAnalyzePatternsFindsPlantedViolation proves the standalone path
// actually runs the analyzers: a scratch module with a time.Now call
// must produce exactly one nowallclock finding.
func TestAnalyzePatternsFindsPlantedViolation(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "pkg", "p.go"), `package pkg

import "time"

func now() time.Time { return time.Now() }
`)
	findings, err := AnalyzePatterns(suite(), dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly one", findings)
	}
	if f := findings[0]; f.Analyzer != "nowallclock" || !strings.Contains(f.Message, "time.Now") {
		t.Fatalf("unexpected finding: %s", f)
	}
}

// TestUnitcheckProtocol drives the vet.cfg path the way the go command
// does: the tool must write the facts file, print findings, strip the
// "pkg [pkg.test]" import-path variant, and honor VetxOnly.
func TestUnitcheckProtocol(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	writeFile(t, src, `package pkg

import "time"

func now() time.Time { return time.Now() }
`)
	vetx := filepath.Join(dir, "out.vetx")
	cfg := filepath.Join(dir, "vet.cfg")
	writeFile(t, cfg, `{
  "ID": "scratch/pkg",
  "Dir": "`+dir+`",
  "ImportPath": "scratch/pkg [scratch/pkg.test]",
  "GoFiles": ["p.go"],
  "VetxOutput": "`+vetx+`"
}`)

	if code := unitcheck(suite(), cfg); code != 2 {
		t.Fatalf("unitcheck exit = %d, want 2 (findings)", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}

	// VetxOnly skips analysis entirely but still writes the output.
	if err := os.Remove(vetx); err != nil {
		t.Fatal(err)
	}
	writeFile(t, cfg, `{
  "ID": "scratch/pkg",
  "Dir": "`+dir+`",
  "ImportPath": "scratch/pkg",
  "GoFiles": ["p.go"],
  "VetxOnly": true,
  "VetxOutput": "`+vetx+`"
}`)
	if code := unitcheck(suite(), cfg); code != 0 {
		t.Fatalf("VetxOnly exit = %d, want 0", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written on VetxOnly pass: %v", err)
	}
}

// TestUnitcheckExemptImportPathVariant proves the test-variant suffix
// is stripped before package exemptions apply: the clock package's own
// test binary must not be flagged for reading the wall clock.
func TestUnitcheckExemptImportPathVariant(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "clock.go"), `package clock

import "time"

func now() time.Time { return time.Now() }
`)
	vetx := filepath.Join(dir, "out.vetx")
	cfg := filepath.Join(dir, "vet.cfg")
	writeFile(t, cfg, `{
  "ID": "busprobe/internal/clock",
  "Dir": "`+dir+`",
  "ImportPath": "busprobe/internal/clock [busprobe/internal/clock.test]",
  "GoFiles": ["clock.go"],
  "VetxOutput": "`+vetx+`"
}`)
	if code := unitcheck(suite(), cfg); code != 0 {
		t.Fatalf("exit = %d, want 0 (clock package is exempt)", code)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
