package snapshotmut_test

import (
	"testing"

	"busprobe/internal/lint/analysistest"
	"busprobe/internal/lint/snapshotmut"
)

// TestSnapshotMutFixture proves writes to snapshot-owned maps —
// direct, aliased, or after publication into a Snapshot literal — are
// flagged while the copy-before-write idiom, accessor clones, reads,
// and justified allows stay clean.
func TestSnapshotMutFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), snapshotmut.Analyzer, "snapshotmut_a")
}
