// Package snapshotmut locks in PR 8's immutability contract: a
// traffic.Snapshot is copy-on-write — once NextSnapshot returns it,
// its maps are shared by every reader holding the atomic pointer, and
// a single write tears the version history for all of them. The
// analyzer forbids writes to maps and slices reachable from a
// Snapshot anywhere outside the type's constructors (EmptySnapshot
// and NextSnapshot in busprobe/internal/core/traffic, the only
// functions that may touch a snapshot's maps before publication).
//
// Reachability is tracked through the type checker plus a local taint
// walk, in source order within each function:
//
//   - a direct write through a snapshot field — s.Estimates[k] = v,
//     delete(s.RemovedAt, k), s.ChangedAt = … — is always a finding;
//   - an alias of a snapshot map (m := s.Estimates) taints the local
//     variable, and indexed writes or deletes through it are findings
//     until it is reassigned from something fresh (make, a clone
//     helper) — the copy-before-write idiom NextSnapshot itself uses;
//   - placing a map variable into a Snapshot composite literal taints
//     it in the other direction: &traffic.Snapshot{Estimates: m}
//     publishes m, so writes to m after that line are
//     mutations-after-publish, the classic construct-then-tweak bug.
//
// The taint is per-function and intentionally shallow: values
// returned from calls are never considered snapshot-backed (Snapshot
// accessors that expose maps, like CloneEstimates, return copies by
// contract, and that contract is the constructor's to keep).
package snapshotmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"busprobe/internal/lint/analysis"
)

// Analyzer is the snapshotmut check.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotmut",
	Doc: "flag writes to maps/slices reachable from a traffic.Snapshot " +
		"outside its constructors",
	Run: run,
}

// trafficPath is the defining package of Snapshot.
const trafficPath = "busprobe/internal/core/traffic"

// constructors are the only functions allowed to write a snapshot's
// maps, and only inside the defining package.
var constructors = map[string]bool{
	"EmptySnapshot": true,
	"NextSnapshot":  true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.Path == trafficPath && constructors[fn.Name.Name] {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc walks one function body in source order, maintaining the
// set of tainted local objects (variables aliasing snapshot-owned
// maps or published into a snapshot literal).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, x, tainted)
		case *ast.IncDecStmt:
			checkWriteTarget(pass, x.X, tainted, "incremented")
		case *ast.CallExpr:
			checkCall(pass, x, tainted)
		case *ast.CompositeLit:
			taintLiteral(pass, x, tainted)
		}
		return true
	})
}

// checkAssign flags writes through snapshot fields or tainted aliases
// and updates the taint set for plain variable assignments.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, tainted map[types.Object]bool) {
	for _, lhs := range as.Lhs {
		checkWriteTarget(pass, lhs, tainted, "assigned")
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if aliasesSnapshot(pass, as.Rhs[i], tainted) {
			tainted[obj] = true
		} else if tainted[obj] {
			// Reassigned from something fresh — the copy-before-write
			// idiom. The alias no longer points into the snapshot.
			delete(tainted, obj)
		}
	}
}

// checkWriteTarget reports a write whose ultimate base is a snapshot
// field or a tainted alias. verb describes the write for the message.
func checkWriteTarget(pass *analysis.Pass, lhs ast.Expr, tainted map[types.Object]bool, verb string) {
	switch x := lhs.(type) {
	case *ast.IndexExpr:
		reportIfSnapshotBacked(pass, x.X, tainted, x.Pos(), verb+" through")
	case *ast.SelectorExpr:
		if isSnapshotExpr(pass, x.X) && !pass.Allowed(x.Pos(), "snapshotmut") {
			pass.Reportf(x.Pos(),
				"field %s of a traffic.Snapshot %s outside its constructor; snapshots are immutable once published — build a new one with NextSnapshot (or annotate //lint:allow snapshotmut <reason>)",
				analysis.ExprString(x), verb)
		}
	case *ast.StarExpr:
		checkWriteTarget(pass, x.X, tainted, verb)
	}
}

// checkCall flags delete() and append-into through snapshot-backed
// maps/slices.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, tainted map[types.Object]bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if obj := pass.TypesInfo.Uses[id]; obj == nil || obj.Pkg() != nil {
		return // not a builtin
	}
	if id.Name == "delete" {
		reportIfSnapshotBacked(pass, call.Args[0], tainted, call.Pos(), "deleted from")
	}
}

// reportIfSnapshotBacked reports a mutation through expr when expr is
// a snapshot field selector or a tainted alias.
func reportIfSnapshotBacked(pass *analysis.Pass, expr ast.Expr, tainted map[types.Object]bool, pos token.Pos, how string) {
	if pass.Allowed(pos, "snapshotmut") {
		return
	}
	switch x := expr.(type) {
	case *ast.SelectorExpr:
		if isSnapshotExpr(pass, x.X) {
			pass.Reportf(pos,
				"map owned by a traffic.Snapshot %s (%s) outside its constructor; snapshots are immutable once published — copy before writing (or annotate //lint:allow snapshotmut <reason>)",
				how, analysis.ExprString(x))
		}
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj != nil && tainted[obj] {
			pass.Reportf(pos,
				"%s aliases a traffic.Snapshot map and is %s without copying first; snapshots are immutable once published (or annotate //lint:allow snapshotmut <reason>)",
				x.Name, how)
		}
	}
}

// aliasesSnapshot reports whether the RHS expression yields a
// reference into a snapshot's maps: a field selector on a snapshot
// value, or an already-tainted identifier.
func aliasesSnapshot(pass *analysis.Pass, rhs ast.Expr, tainted map[types.Object]bool) bool {
	switch x := rhs.(type) {
	case *ast.SelectorExpr:
		if !isSnapshotExpr(pass, x.X) {
			return false
		}
		tv, ok := pass.TypesInfo.Types[x]
		if !ok || tv.Type == nil {
			return false
		}
		switch tv.Type.Underlying().(type) {
		case *types.Map, *types.Slice:
			return true
		}
		return false
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		return obj != nil && tainted[obj]
	}
	return false
}

// taintLiteral marks map/slice variables placed into a Snapshot
// composite literal: the literal publishes them, so later writes are
// mutations of a published snapshot.
func taintLiteral(pass *analysis.Pass, lit *ast.CompositeLit, tainted map[types.Object]bool) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !isSnapshotType(tv.Type) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		id, ok := kv.Value.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			continue
		}
		switch obj.Type().Underlying().(type) {
		case *types.Map, *types.Slice:
			tainted[obj] = true
		}
	}
}

// isSnapshotExpr reports whether the expression's static type is
// traffic.Snapshot or a pointer to it.
func isSnapshotExpr(pass *analysis.Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	return isSnapshotType(tv.Type)
}

// isSnapshotType peels pointers and reports whether t is the named
// type Snapshot from the traffic package.
func isSnapshotType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == trafficPath && obj.Name() == "Snapshot"
}
