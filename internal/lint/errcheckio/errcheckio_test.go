package errcheckio_test

import (
	"testing"

	"busprobe/internal/lint/analysistest"
	"busprobe/internal/lint/errcheckio"
)

// TestErrCheckIOFixture proves the analyzer flags silently and
// blank-discarded I/O errors and accepts handled, deferred, and
// buffer-bound writes.
func TestErrCheckIOFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errcheckio.Analyzer, "errcheckio_a")
}
