// Package errcheckio flags dropped errors on the I/O surfaces the
// backend's durability story depends on: journal writes and closes on
// the persistence paths, JSON encodes onto http.ResponseWriter, and
// buffered-writer flushes. A journal Append whose flush error vanishes
// is a trip the server acknowledged but will not replay after a crash
// — exactly the failure the journal exists to prevent.
//
// Flagged in non-test files:
//
//   - expression statements that discard the result of a call to
//     Close, Flush, Sync, or Encode (f.Close(), w.Flush(), …)
//   - blank assignments of those calls (_ = f.Close()) — discarding
//     explicitly still needs a why; annotate it
//   - fmt.Fprint/Fprintf/Fprintln whose writer is not a local buffer
//     (writes to &buf never fail; writes to files and ResponseWriters
//     do)
//
// Deferred closes are not flagged: `defer f.Close()` on a read path is
// idiomatic, and write paths are expected to flush/close explicitly
// before returning (which this analyzer does check). Intentional
// discards are annotated //lint:allow errcheckio <reason>.
package errcheckio

import (
	"go/ast"
	"go/token"

	"busprobe/internal/lint/analysis"
)

// Analyzer is the errcheckio check.
var Analyzer = &analysis.Analyzer{
	Name: "errcheckio",
	Doc: "flag dropped errors on journal/persistence writes, " +
		"ResponseWriter encodes, and file closes",
	Run: run,
}

// ioMethods are the error-returning I/O methods whose failures the
// persistence paths must not drop.
var ioMethods = map[string]bool{
	"Close":  true,
	"Flush":  true,
	"Sync":   true,
	"Encode": true,
}

// fprintFuncs are the fmt writers that return a write error.
var fprintFuncs = map[string]bool{
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		imports := analysis.ImportAliases(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				return false // deferred closes are idiomatic; go bodies detach
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					checkDropped(pass, imports, call, "dropped")
				}
				// Keep descending: handler registrations pass function
				// literals as call arguments, and their bodies drop
				// errors too.
			case *ast.AssignStmt:
				if allBlank(stmt.Lhs) && len(stmt.Rhs) == 1 {
					if call, ok := stmt.Rhs[0].(*ast.CallExpr); ok {
						checkDropped(pass, imports, call, "discarded")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkDropped reports a call in discard position whose error the
// persistence story needs.
func checkDropped(pass *analysis.Pass, imports map[string]string, call *ast.CallExpr, how string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return // bare F() is a local helper, not the io.Closer method
	}
	name := sel.Sel.Name
	recv := analysis.ExprString(sel.X)
	qual, _ := analysis.CalleeName(call)
	switch {
	// A method on a value (x.Close(), j.f.Close() — not pkg.Close()):
	// the receiver's base qualifier must not resolve to an import.
	case ioMethods[name] && (qual == "" || imports[qual] == ""):
		if pass.Allowed(call.Pos(), "errcheckio") {
			return
		}
		pass.Reportf(call.Pos(),
			"%s error from %s.%s on an I/O path; handle it, fold it into the returned error, or annotate //lint:allow errcheckio <reason>",
			how, recv, name)
	case imports[qual] == "fmt" && fprintFuncs[name]:
		if len(call.Args) > 0 && isBufferAddress(call.Args[0]) {
			return // writes to a local buffer cannot fail
		}
		if pass.Allowed(call.Pos(), "errcheckio") {
			return
		}
		pass.Reportf(call.Pos(),
			"%s error from fmt.%s; writer failures (closed connections, full disks) vanish here — handle it or annotate //lint:allow errcheckio <reason>",
			how, name)
	}
}

// isBufferAddress matches the &b first argument of the
// strings.Builder / bytes.Buffer rendering idiom.
func isBufferAddress(e ast.Expr) bool {
	u, ok := e.(*ast.UnaryExpr)
	return ok && u.Op == token.AND
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}
