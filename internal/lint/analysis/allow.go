package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix starts an escape-hatch comment. The convention is
//
//	//lint:allow <analyzer> <justification>
//
// on the offending line or on the line immediately above it. The
// justification is mandatory: an allow comment without one does not
// suppress anything, so every exemption in the tree explains itself.
const allowPrefix = "lint:allow"

// allowIndex maps a source line to the analyzer names allowed there.
type allowIndex map[int]map[string]bool

// Allowed reports whether a //lint:allow comment for the named
// analyzer covers pos (same line or the line above).
func (p *Pass) Allowed(pos token.Pos, name string) bool {
	file := p.fileOf(pos)
	if file == nil {
		return false
	}
	if p.allow == nil {
		p.allow = make(map[*ast.File]allowIndex)
	}
	idx, ok := p.allow[file]
	if !ok {
		idx = buildAllowIndex(p.Fset, file)
		p.allow[file] = idx
	}
	line := p.Fset.Position(pos).Line
	return idx[line][name] || idx[line-1][name]
}

func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// MalformedAllows returns the positions of //lint:allow comments in f
// that lack a justification after the analyzer name. The allow index
// ignores such comments (they suppress nothing), and the drivers
// report each one as an "allowcheck" finding, so a bare escape hatch
// fails the build loudly instead of silently not taking effect.
func MalformedAllows(f *ast.File) []token.Pos {
	var out []token.Pos
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			if len(strings.Fields(strings.TrimPrefix(text, allowPrefix))) < 2 {
				out = append(out, c.Pos())
			}
		}
	}
	return out
}

func buildAllowIndex(fset *token.FileSet, f *ast.File) allowIndex {
	idx := make(allowIndex)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
			// fields[0] is the analyzer name; a justification after it
			// is mandatory for the allow to take effect.
			if len(fields) < 2 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if idx[line] == nil {
				idx[line] = make(map[string]bool)
			}
			idx[line][fields[0]] = true
		}
	}
	return idx
}
