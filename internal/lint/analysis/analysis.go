// Package analysis is a dependency-free mirror of the
// golang.org/x/tools/go/analysis API subset that busprobe-vet needs.
// The build environment vendors no third-party modules, so the real
// x/tools framework is unavailable; this package reproduces its
// Analyzer/Pass/Diagnostic contract over the standard library's go/ast
// and go/token alone. Analyzers written against it are drop-in
// portable to the upstream API — swapping the import path is the whole
// migration — which is deliberate: the analyzer code is the asset, the
// harness is scaffolding.
//
// A Pass carries the package's parsed files plus full type information
// (go/types Info and Package), so analyzers range from purely
// syntactic (import tables and statement structure) to type-aware
// (field resolution through Selections, map-type detection, signature
// inspection). The same Pass is built three ways — by the standalone
// package walker, by a `go vet -vettool` unit-check config, and by
// analysistest fixtures — and all three type-check their units, so a
// finding is identical whichever way the suite runs.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow comments. It must be a valid identifier.
	Name string
	// Doc is the analyzer's help text: a one-line summary, a blank
	// line, then detail.
	Doc string
	// Run applies the analyzer to one package worth of files,
	// reporting findings through pass.Report.
	Run func(*Pass) error
}

// Pass is one analyzer's view of one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Path is the package's import path ("busprobe/internal/sim").
	// Test-variant suffixes (" [pkg.test]") are stripped by the
	// drivers before the pass runs.
	Path string
	// Pkg is the type-checked package. For a directory holding both a
	// base package and an external _test package, this is the base.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for every file in
	// Files (for split test variants, the drivers accumulate both
	// Checks into the one Info). All three drivers populate it, so
	// analyzers may rely on it being non-nil.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)

	allow map[*ast.File]allowIndex
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos, tagged with the
// analyzer's name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      pos,
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Several analyzers exempt tests (fixtures explore off-canon
// constants; tests drop errors deliberately).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ImportAliases returns the file's mapping from local name to import
// path for every import, resolving aliases. Unnamed imports map from
// the path's last element, which is the convention for every package
// the suite cares about ("time", "math/rand" → "rand"). Dot and blank
// imports are returned under "." and "_".
func ImportAliases(f *ast.File) map[string]string {
	out := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		out[name] = path
	}
	return out
}

// CalleeName splits a call's function expression into a qualifier and
// a name: "x.F(...)" yields ("x", "F") when x is a plain identifier,
// and "F(...)" yields ("", "F"). Calls through more complex expressions
// ("a.b.F(...)", "f()(…)") yield ("", "") for the qualifier cases the
// analyzers key on package identifiers.
func CalleeName(call *ast.CallExpr) (qual, name string) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return "", fn.Name
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name, fn.Sel.Name
		}
		return "", fn.Sel.Name
	}
	return "", ""
}

// ExprString renders a small expression (lock receivers, channel
// operands) for diagnostics. It covers the identifier/selector shapes
// that appear as mutex receivers; anything else renders as "?".
func ExprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return ExprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return ExprString(x.X)
	case *ast.StarExpr:
		return "*" + ExprString(x.X)
	case *ast.CallExpr:
		return ExprString(x.Fun) + "()"
	case *ast.IndexExpr:
		return ExprString(x.X) + "[...]"
	}
	return "?"
}
