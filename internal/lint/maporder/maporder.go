// Package maporder protects the repo's byte-identity guarantee at the
// source: a `range` over a map whose iteration order can escape into
// output is flagged unless the escaping data is sorted. Go randomizes
// map iteration order per run, so one unsorted range in an encoder
// turns /v1/traffic into a coin flip — the exact failure class the
// conformance harness exists to catch, found here at compile time
// instead.
//
// The map-ness of the ranged expression is resolved through the type
// checker (types.Info.Types, underlying *types.Map), so ranging a
// named map type or a map-valued field is seen for what it is. Inside
// such a loop two escape shapes are flagged:
//
//   - an order-preserving write: fmt.Fprint*/fmt.Print*, a
//     Write/WriteString/WriteByte/WriteRune method, or an Encode call.
//     Whatever the sink — an http response, a strings.Builder, a
//     hash — the bytes land in iteration order, so this is always a
//     finding.
//   - a self-append (`rows = append(rows, …)`) to a variable declared
//     outside the loop: the slice accumulates in iteration order. This
//     is clean only if the function visibly sorts that variable
//     somewhere — a call whose callee name contains "sort" (sort.Slice,
//     sort.Strings, slices.SortFunc, the repo's sortRows helper) with
//     the variable as an argument or receiver. Appends to loop-local
//     variables are ignored; they die with the iteration.
//
// The "sorted somewhere in the function" rule is deliberately
// position-insensitive: the repo's idiom is range-append-sort
// (http.go's /v1/traffic rows, the obs registry's family walk), and
// demanding the sort lexically after the loop would buy precision the
// idiom never exploits. A map range that only feeds another map, or
// aggregates (sums, counters), has no escaping order and is clean.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"busprobe/internal/lint/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map ranges whose iteration order escapes into output " +
		"without a sort",
	Run: run,
}

// writeMethods are method names that emit their arguments in call
// order onto some sink.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
}

// fmtPrinters are fmt functions that write through an io.Writer or
// stdout in call order.
var fmtPrinters = map[string]bool{
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
	"Print":    true,
	"Printf":   true,
	"Println":  true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc audits one function body: collect the set of expressions
// the function sorts, then flag every map-range escape not covered by
// it.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	sorted := collectSorted(body)
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !isMapType(pass, rng.X) {
			return true
		}
		checkLoop(pass, rng, sorted)
		return true
	})
}

// collectSorted returns the renderings of every expression the
// function passes to a sorting call: any call whose callee name
// contains "sort" (case-insensitive) contributes its receiver and its
// identifier/selector arguments. That covers sort.Slice(rows, …),
// sort.Strings(keys), slices.SortFunc(fams, …), a custom sortRows
// helper, and a Sort method on a named slice type.
func collectSorted(body *ast.BlockStmt) map[string]bool {
	sorted := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			name = fn.Name
		case *ast.SelectorExpr:
			name = fn.Sel.Name
			if strings.Contains(strings.ToLower(name), "sort") {
				sorted[analysis.ExprString(fn.X)] = true
			}
		default:
			return true
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			// sort.Strings/Ints/Float64s spell the element type, not
			// "sort" — the package qualifier carries the intent.
			if sel, ok := call.Fun.(*ast.SelectorExpr); !ok || analysis.ExprString(sel.X) != "sort" {
				return true
			}
		}
		for _, arg := range call.Args {
			switch arg.(type) {
			case *ast.Ident, *ast.SelectorExpr:
				sorted[analysis.ExprString(arg)] = true
			}
		}
		return true
	})
	return sorted
}

// checkLoop flags the escape shapes inside one map-range body.
// Function literals are not descended into: a closure's execution
// order is not the loop's (and sort comparators would self-flag).
func checkLoop(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[string]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if target := writeSink(x); target != "" && !pass.Allowed(x.Pos(), "maporder") {
				pass.Reportf(x.Pos(),
					"map iteration order written to %s inside range over %s; iterate a sorted key slice instead (or annotate //lint:allow maporder <reason>)",
					target, analysis.ExprString(rng.X))
			}
		case *ast.AssignStmt:
			checkAppend(pass, rng, x, sorted)
		}
		return true
	})
}

// checkAppend flags `target = append(target, …)` accumulations into
// variables declared outside the loop when nothing in the function
// sorts the target.
func checkAppend(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt, sorted map[string]bool) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || len(call.Args) == 0 {
			continue
		}
		target := analysis.ExprString(as.Lhs[i])
		if target != analysis.ExprString(call.Args[0]) {
			continue // not a self-append accumulation
		}
		if declaredInside(pass, as.Lhs[i], rng) {
			continue // loop-local; dies with the iteration
		}
		if sorted[target] {
			continue
		}
		if pass.Allowed(as.Pos(), "maporder") {
			continue
		}
		pass.Reportf(as.Pos(),
			"%s accumulates in map iteration order from range over %s and is never sorted; sort %s before it is read, or iterate sorted keys (or annotate //lint:allow maporder <reason>)",
			target, analysis.ExprString(rng.X), target)
	}
}

// declaredInside reports whether the append target resolves to a
// variable whose declaration lies within the range statement itself.
func declaredInside(pass *analysis.Pass, lhs ast.Expr, rng *ast.RangeStmt) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false // selector targets are fields — always outer
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End()
}

// writeSink classifies a call inside the loop as an order-preserving
// write and returns the sink's rendering, or "".
func writeSink(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if base, okBase := sel.X.(*ast.Ident); okBase && base.Name == "fmt" && fmtPrinters[sel.Sel.Name] {
		if strings.HasPrefix(sel.Sel.Name, "F") && len(call.Args) > 0 {
			return analysis.ExprString(call.Args[0])
		}
		return "stdout"
	}
	if writeMethods[sel.Sel.Name] {
		return analysis.ExprString(sel.X)
	}
	return ""
}

// isMapType reports whether the ranged expression's type is a map.
func isMapType(pass *analysis.Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
