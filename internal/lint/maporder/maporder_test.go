package maporder_test

import (
	"testing"

	"busprobe/internal/lint/analysistest"
	"busprobe/internal/lint/maporder"
)

// TestMapOrderFixture proves map-range escapes (sink writes, unsorted
// self-appends) are flagged while the range-append-sort idiom,
// loop-local slices, aggregations, and justified allows stay clean.
func TestMapOrderFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer, "maporder_a")
}
