// Package loader type-checks packages for the busprobe-vet suite with
// the standard library alone. The build environment vendors no
// third-party modules, so golang.org/x/tools/go/packages is
// unavailable; this package reproduces the slice of it the lint
// framework needs: resolve an import path to a checked *types.Package,
// from source for both the enclosing module's packages (resolved
// against go.mod) and the standard library (go/importer's "source"
// compiler — Go ships no precompiled stdlib export data since 1.20,
// so source is the only importer that works without driving the build
// cache).
//
// A Loader memoizes every package it checks, so the first unit pays
// the stdlib walk (a couple of seconds when net/http is in the import
// graph) and the rest of the module reuses it. All positions land in
// the Loader's single FileSet, which the analyzers rely on for
// file/line diagnostics. Loaders are not safe for concurrent use.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Loader resolves import paths to type-checked packages.
type Loader struct {
	// Fset is the single FileSet every package the loader touches is
	// parsed into; diagnostics resolve positions against it.
	Fset *token.FileSet

	root    string // module root directory
	modPath string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*types.Package
	loading map[string]bool
}

// New returns a Loader that resolves imports under modPath against the
// source tree rooted at root, and everything else through the standard
// library's source importer.
func New(fset *token.FileSet, root, modPath string) *Loader {
	return &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
}

// Func adapts a function to the types.Importer interface, for drivers
// that need to interpose on import resolution (the unit checker
// consults the go command's export-data tables first).
type Func func(path string) (*types.Package, error)

// Import implements types.Importer.
func (f Func) Import(path string) (*types.Package, error) { return f(path) }

// Import implements types.Importer: module-local paths are checked
// from source under the module root (non-test files only, as the go
// compiler would see the dependency), everything else is delegated to
// the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if l.loading[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.checkDir(path, filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// checkDir parses the non-test Go files of one directory and
// type-checks them as the package at path.
func (l *Loader) checkDir(path, dir string) (*types.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, fmt.Errorf("import %q: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("import %q: no Go files in %s", path, dir)
	}
	cfg := &types.Config{Importer: l}
	return cfg.Check(path, l.Fset, files, nil)
}

// NewInfo returns a types.Info with every map allocated, ready to
// accumulate the results of one or more Checks.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// CheckPackage type-checks one package directory's already-parsed
// files the way `go test` compiles them: the base package (in-package
// _test.go files included) in one Check, then the external "_test"
// package, if present, in a second Check whose importer serves the
// freshly-checked base so its test-only symbols are visible. Both
// Checks fill the same returned Info, so an analysis pass sees type
// information for every file it was handed regardless of variant. The
// returned package is the base package (or the external test package
// when the directory holds nothing else).
func (l *Loader) CheckPackage(importPath string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := NewInfo()
	baseName := ""
	for _, f := range files {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			baseName = f.Name.Name
		}
	}
	var base, xtest []*ast.File
	for _, f := range files {
		if strings.HasSuffix(f.Name.Name, "_test") && f.Name.Name != baseName {
			xtest = append(xtest, f)
		} else {
			base = append(base, f)
		}
	}
	var pkg *types.Package
	if len(base) > 0 {
		p, err := (&types.Config{Importer: l}).Check(importPath, l.Fset, base, info)
		if err != nil {
			return nil, nil, err
		}
		pkg = p
	}
	if len(xtest) > 0 {
		imp := Func(func(path string) (*types.Package, error) {
			if path == importPath && pkg != nil {
				return pkg, nil
			}
			return l.Import(path)
		})
		p, err := (&types.Config{Importer: imp}).Check(importPath+"_test", l.Fset, xtest, info)
		if err != nil {
			return nil, nil, err
		}
		if pkg == nil {
			pkg = p
		}
	}
	return pkg, info, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod and returns the
// module's root directory and path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
