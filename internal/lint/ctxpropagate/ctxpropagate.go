// Package ctxpropagate locks in PR 5's context threading: cancellation
// flows from the caller, never materializes mid-stack. Two rules,
// both resolved through the type checker:
//
//  1. context.Background() and context.TODO() are forbidden outside
//     package main and _test.go files. A Background deep in a library
//     silently detaches everything below it from the caller's
//     deadline; the one legitimate root lives in main. Deliberate
//     detachments (a drain that must finish after the scenario ctx is
//     canceled, read paths kept ctx-free by design) carry
//     //lint:allow ctxpropagate <reason> at the call.
//
//  2. An exported function or method that blocks — a channel send or
//     receive, a select with no default, a range over a channel, or a
//     call to any callee whose signature takes a context.Context —
//     must itself accept a context.Context, or its callers have no
//     way to bound it. Receivers of unexported types are skipped
//     (not public API), as are test files, ServeHTTP (signature fixed
//     by net/http; the ctx arrives inside the request), and function
//     literals (goroutine bodies capture their ctx). A select with a
//     default case is non-blocking admission-gate idiom, not a block.
//
// When a function's only ctx source is an allowed Background (rule 1
// annotated), rule 2 stays quiet: the allow already documents the
// decision to keep that entry point ctx-free, and demanding a second
// annotation on the declaration would say nothing new.
package ctxpropagate

import (
	"go/ast"
	"go/token"
	"go/types"

	"busprobe/internal/lint/analysis"
)

// Analyzer is the ctxpropagate check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpropagate",
	Doc: "flag context.Background/TODO outside main and exported " +
		"blocking functions without a context parameter",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	inMain := pass.Pkg != nil && pass.Pkg.Name() == "main"

	// Rule 1: flag Background/TODO everywhere in the body, closures
	// included. Track whether an annotated one exists — it doubles as
	// the documented decision for rule 2.
	allowedRoot := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := contextRootCall(pass, call)
		if name == "" || inMain {
			return true
		}
		if pass.Allowed(call.Pos(), "ctxpropagate") {
			allowedRoot = true
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() detaches this path from the caller's cancellation; thread a ctx parameter instead (or annotate //lint:allow ctxpropagate <reason>)",
			name)
		return true
	})

	// Rule 2: exported blocking API must accept a ctx.
	if inMain || !fn.Name.IsExported() || !exportedReceiver(fn) ||
		fn.Name.Name == "ServeHTTP" || hasCtxParam(pass, fn) || allowedRoot {
		return
	}
	if why := blockingOp(pass, fn.Body); why != "" && !pass.Allowed(fn.Name.Pos(), "ctxpropagate") {
		pass.Reportf(fn.Name.Pos(),
			"exported %s %s but takes no context.Context; callers cannot bound or cancel it (or annotate //lint:allow ctxpropagate <reason>)",
			fn.Name.Name, why)
	}
}

// contextRootCall returns "Background" or "TODO" when the call is
// context.Background()/context.TODO() (resolved through the type
// checker, so aliased imports are seen), or "".
func contextRootCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if name := obj.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

// exportedReceiver reports whether fn is public API: a plain function,
// or a method on an exported named type.
func exportedReceiver(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// hasCtxParam reports whether any of fn's parameters is a
// context.Context.
func hasCtxParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	obj := pass.TypesInfo.Defs[fn.Name]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// blockingOp scans a body (function literals excluded — their bodies
// run on their own goroutines with captured contexts) for the first
// operation rule 2 considers blocking, returning a description or "".
func blockingOp(pass *analysis.Pass, body *ast.BlockStmt) string {
	return blockingOpNode(pass, body)
}

// blockingOpStmt is blockingOp over a single statement.
func blockingOpStmt(pass *analysis.Pass, stmt ast.Stmt) string {
	return blockingOpNode(pass, stmt)
}

func blockingOpNode(pass *analysis.Pass, root ast.Node) string {
	why := ""
	ast.Inspect(root, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			why = "performs a channel send"
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				why = "performs a channel receive"
				return false
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				why = "selects on channels"
				return false
			}
			// A select with a default never blocks, and its case
			// channel ops are attempts, not blocks — scan only the
			// clause bodies.
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						if w := blockingOpStmt(pass, s); w != "" {
							why = w
							return false
						}
					}
				}
			}
			return false
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					why = "ranges over a channel"
					return false
				}
			}
		case *ast.CallExpr:
			if calleeTakesCtx(pass, x) {
				why = "calls a context-taking function"
				return false
			}
		}
		return true
	})
	return why
}

// calleeTakesCtx reports whether the call's callee signature includes
// a context.Context parameter.
func calleeTakesCtx(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return false // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
