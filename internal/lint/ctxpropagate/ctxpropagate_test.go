package ctxpropagate_test

import (
	"testing"

	"busprobe/internal/lint/analysistest"
	"busprobe/internal/lint/ctxpropagate"
)

// TestCtxPropagateFixture proves Background/TODO roots in library code
// and exported blocking API without a ctx parameter are flagged, while
// threaded contexts, unexported helpers, non-blocking selects,
// ServeHTTP, and allow-documented detachments stay clean.
func TestCtxPropagateFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxpropagate.Analyzer, "ctxpropagate_a")
}
