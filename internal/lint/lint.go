// Package lint assembles the busprobe-vet analyzer suite: the custom
// go/analysis-style checks that enforce the repository's determinism,
// lock-discipline, and paper-constant invariants. cmd/busprobe-vet
// runs the suite under `go vet -vettool` in CI; internal/lint/driver
// also runs it standalone (`go run ./cmd/busprobe-vet ./...`), and the
// suite-over-repo test in the driver package keeps the tree clean
// between CI runs.
//
// The suite has two tiers. The syntactic four (nowallclock,
// paperconst, lockorder, errcheckio) need only parsed files; the
// type-aware four (guardedby, maporder, ctxpropagate, snapshotmut)
// resolve fields, signatures, and map-ness through the go/types
// information every driver now attaches to the pass. Syntactic() and
// Typed() expose the split so CI can time the tiers separately;
// Suite() remains the everything list in reporting order.
package lint

import (
	"busprobe/internal/lint/analysis"
	"busprobe/internal/lint/ctxpropagate"
	"busprobe/internal/lint/errcheckio"
	"busprobe/internal/lint/guardedby"
	"busprobe/internal/lint/lockorder"
	"busprobe/internal/lint/maporder"
	"busprobe/internal/lint/nowallclock"
	"busprobe/internal/lint/paperconst"
	"busprobe/internal/lint/snapshotmut"
)

// Syntactic returns the analyzers that consume only parsed syntax.
func Syntactic() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nowallclock.Analyzer,
		paperconst.Analyzer,
		lockorder.Analyzer,
		errcheckio.Analyzer,
	}
}

// Typed returns the analyzers that require type information.
func Typed() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		guardedby.Analyzer,
		maporder.Analyzer,
		ctxpropagate.Analyzer,
		snapshotmut.Analyzer,
	}
}

// Suite returns the full busprobe-vet suite in reporting order.
func Suite() []*analysis.Analyzer {
	return append(Syntactic(), Typed()...)
}
