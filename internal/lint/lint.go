// Package lint assembles the busprobe-vet analyzer suite: the custom
// go/analysis-style checks that enforce the repository's determinism,
// lock-discipline, and paper-constant invariants. cmd/busprobe-vet
// runs the suite under `go vet -vettool` in CI; internal/lint/driver
// also runs it standalone (`go run ./cmd/busprobe-vet ./...`), and the
// suite-over-repo test in the driver package keeps the tree clean
// between CI runs.
package lint

import (
	"busprobe/internal/lint/analysis"
	"busprobe/internal/lint/errcheckio"
	"busprobe/internal/lint/lockorder"
	"busprobe/internal/lint/nowallclock"
	"busprobe/internal/lint/paperconst"
)

// Suite returns the busprobe-vet analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nowallclock.Analyzer,
		paperconst.Analyzer,
		lockorder.Analyzer,
		errcheckio.Analyzer,
	}
}
