package guardedby_test

import (
	"testing"

	"busprobe/internal/lint/analysistest"
	"busprobe/internal/lint/guardedby"
)

// TestGuardedByFixture proves annotated fields are flagged when
// accessed without the named mutex and accepted under Lock /
// defer-Unlock, in Locked-suffixed helpers and constructors, and with
// justified allows.
func TestGuardedByFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guardedby.Analyzer, "guardedby_a")
}
