// Package guardedby enforces annotated lock invariants: a struct
// field carrying
//
//	//lint:guardedby <mutex>
//
// (on the field's line or in its doc comment, naming a sibling mutex
// field) may only be accessed while that mutex is held. The walk is
// the same defer-aware held-set scan lockorder uses — x.Lock()/
// x.RLock() add the rendered receiver, x.Unlock()/x.RUnlock() remove
// it, a deferred unlock holds to function end, and branches are
// scanned with a copy of the set — but the access side is resolved
// through the type checker: every selector expression that
// types.Info.Selections says lands on an annotated field must have
// "<base>.<mutex>" in the held set, where <base> is the rendering of
// the expression the field was selected from. String-matching the
// lock expression keeps the check aligned with lockorder's receiver
// rendering, so `b.statsMu.Lock(); b.stats.offered++` pairs up and a
// bare `b.stats.offered++` is flagged.
//
// Exemptions, in the spirit of Google's checklocks annotations:
//
//   - functions whose name ends in "Locked" (the caller holds the
//     lock by contract — the repo's settleLocked/publishLocked idiom)
//   - constructors (name prefixed new/New/open/Open/make/Make): the
//     value is unpublished, so no lock can or need be held
//   - _test.go files (tests reach into structs directly; the race
//     detector covers them)
//   - composite-literal field keys (initializing a fresh value is not
//     an access to shared state)
//
// RLock is treated as holding the guard for reads and writes alike —
// the suite's annotated fields all sit behind plain sync.Mutex, so
// the read/write distinction is deliberately out of scope.
//
// Function literals are scanned with a copy of the enclosing held set:
// a comparator passed to sort.Slice under the lock is checked as
// locked code, while a closure that takes the lock itself is tracked
// through its own Lock statements.
package guardedby

import (
	"go/ast"
	"go/types"
	"strings"

	"busprobe/internal/lint/analysis"
)

// Analyzer is the guardedby check.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "flag accesses to //lint:guardedby-annotated struct fields " +
		"without the named mutex held",
	Run: run,
}

const guardPrefix = "lint:guardedby"

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	w := &walker{pass: pass, guards: guards}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || exemptFunc(fn.Name.Name) {
				continue
			}
			w.scanStmts(fn.Body.List, map[string]bool{})
		}
	}
	return nil
}

// exemptFunc reports whether a function's body is outside the check:
// "Locked"-suffixed helpers run under the caller's lock by contract,
// and constructors initialize fields before the value is shared.
func exemptFunc(name string) bool {
	if strings.HasSuffix(name, "Locked") {
		return true
	}
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "new") ||
		strings.HasPrefix(lower, "open") ||
		strings.HasPrefix(lower, "make")
}

// collectGuards finds every //lint:guardedby annotation in the
// package's struct declarations and maps the annotated field objects
// to the named guard field.
func collectGuards(pass *analysis.Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardName(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardName extracts the mutex name from a field's doc or trailing
// comment, or "" when the field carries no annotation.
func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, guardPrefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, guardPrefix))
			if len(fields) >= 1 {
				return fields[0]
			}
		}
	}
	return ""
}

// walker carries the per-package state for the held-set scan.
type walker struct {
	pass   *analysis.Pass
	guards map[types.Object]string
}

// scanStmts walks one statement list in order, maintaining the set of
// held locks as rendered receiver strings ("b.statsMu"). Mirrors
// lockorder's walk: nested blocks get a copy of the set, a deferred
// unlock stays held.
func (w *walker) scanStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		if recv, method, ok := lockCall(stmt); ok {
			switch method {
			case "Lock", "RLock":
				held[recv] = true
				continue
			case "Unlock", "RUnlock":
				delete(held, recv)
				continue
			}
		}
		if d, ok := stmt.(*ast.DeferStmt); ok {
			// defer x.Unlock() keeps the lock held to function end.
			// Other deferred calls run after the critical section; a
			// deferred closure is scanned as its own scope below.
			if recv, method, ok := lockCall(&ast.ExprStmt{X: d.Call}); ok &&
				(method == "Unlock" || method == "RUnlock") {
				_ = recv
				continue
			}
		}
		w.checkStmt(stmt, held)
		w.scanNested(stmt, held)
	}
}

// scanNested recurses into compound statements with a copy of the
// held set.
func (w *walker) scanNested(stmt ast.Stmt, held map[string]bool) {
	recurse := func(body *ast.BlockStmt) {
		if body == nil {
			return
		}
		w.scanStmts(body.List, copyHeld(held))
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		w.scanStmts(s.List, copyHeld(held))
	case *ast.IfStmt:
		recurse(s.Body)
		if s.Else != nil {
			w.scanNested(s.Else, held)
		}
	case *ast.ForStmt:
		recurse(s.Body)
	case *ast.RangeStmt:
		recurse(s.Body)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.scanStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.scanStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.scanStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		w.scanNested(s.Stmt, held)
	}
}

// checkStmt inspects the expressions of one statement for guarded
// field accesses. Nested blocks are left to scanNested (they need
// their own held-set copies); function literals are scanned here as
// fresh scopes seeded with a copy of the current held set.
func (w *walker) checkStmt(stmt ast.Stmt, held map[string]bool) {
	switch stmt.(type) {
	case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Headers of these (init/cond expressions) rarely touch guarded
		// fields and their bodies are handled by scanNested; checking
		// the header too would double-visit the body. Check only the
		// header expressions.
		w.checkHeader(stmt, held)
		return
	}
	w.checkExprTree(stmt, held)
}

// checkHeader checks the non-body expressions of a compound statement.
func (w *walker) checkHeader(stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.checkExprTree(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExprTree(s.Cond, held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.checkExprTree(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExprTree(s.Cond, held)
		}
		if s.Post != nil {
			w.checkExprTree(s.Post, held)
		}
	case *ast.RangeStmt:
		w.checkExprTree(s.X, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.checkExprTree(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExprTree(s.Tag, held)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.checkExprTree(s.Init, held)
		}
		w.checkExprTree(s.Assign, held)
	}
}

// checkExprTree inspects one node's expression tree for guarded-field
// selectors, descending into function literals as fresh scopes.
func (w *walker) checkExprTree(node ast.Node, held map[string]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.scanStmts(x.Body.List, copyHeld(held))
			return false
		case *ast.SelectorExpr:
			w.checkAccess(x, held)
		}
		return true
	})
}

// checkAccess resolves one selector through the type checker and
// reports it if it lands on an annotated field whose guard is not in
// the held set.
func (w *walker) checkAccess(sel *ast.SelectorExpr, held map[string]bool) {
	selection := w.pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	guard, ok := w.guards[selection.Obj()]
	if !ok {
		return
	}
	base := analysis.ExprString(sel.X)
	want := base + "." + guard
	if held[want] {
		return
	}
	if w.pass.Allowed(sel.Pos(), "guardedby") {
		return
	}
	w.pass.Reportf(sel.Pos(),
		"%s.%s is guarded by %s but accessed without %s held (or annotate //lint:allow guardedby <reason>)",
		base, sel.Sel.Name, guard, want)
}

// lockCall decomposes a statement of the form x.Lock()/x.Unlock()
// (and RLock/RUnlock) into the receiver's rendering and the method.
func lockCall(stmt ast.Stmt) (recv, method string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return analysis.ExprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
