package nowallclock_test

import (
	"testing"

	"busprobe/internal/lint/analysistest"
	"busprobe/internal/lint/nowallclock"
)

// TestNoWallClockFixture proves the analyzer fires on wall-clock and
// global-rand reads (and stays quiet on seeded generators and
// justified allows) against the shared fixture tree.
func TestNoWallClockFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nowallclock.Analyzer, "nowallclock_a")
}

// TestNoWallClockLabFixture runs the harness-shaped fixture: a latency
// recorder timing requests off the wall clock is flagged at every read,
// while the injected-clock shape (what lab.LatencyRecorder does) is
// clean.
func TestNoWallClockLabFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nowallclock.Analyzer, "nowallclock_lab")
}
