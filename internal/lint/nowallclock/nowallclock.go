// Package nowallclock forbids wall-clock and global-RNG reads outside
// the sanctioned clock package: determinism is the backend's headline
// guarantee (byte-identical /v1/traffic across monolith vs. N shards
// and under dup/reorder/delay faults), and a single stray time.Now or
// math/rand call in a deterministic path silently breaks it.
//
// Flagged:
//   - time.Now(...) and time.Since(...) — Since reads the wall clock
//     implicitly. Inject a busprobe/internal/clock.Clock instead.
//   - package-level math/rand and math/rand/v2 calls (rand.Intn,
//     rand.Float64, rand.Shuffle, …), which draw from the shared
//     global source. Use stats.RNG streams forked from the campaign
//     seed instead. Constructing an explicit generator (rand.New,
//     rand.NewSource, …) is not flagged.
//   - dot-imports of "time" or "math/rand", which would let the
//     forbidden calls hide as bare identifiers.
//
// busprobe/internal/clock is exempt — it is the one sanctioned home of
// time.Now. Entry points that genuinely need boot timestamps annotate
// the call site with //lint:allow nowallclock <reason>.
package nowallclock

import (
	"go/ast"

	"busprobe/internal/lint/analysis"
)

// Analyzer is the nowallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc: "forbid time.Now/time.Since and global math/rand in favor of " +
		"the injected clock and seeded stats.RNG streams",
	Run: run,
}

// exemptPkgs may read the wall clock: the clock package is its
// sanctioned home.
var exemptPkgs = map[string]bool{
	"busprobe/internal/clock": true,
}

// timeFuncs are the forbidden wall-clock reads in package time.
var timeFuncs = map[string]bool{"Now": true, "Since": true}

// randConstructors are the math/rand names that build an explicit,
// seedable generator rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 additions.
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if exemptPkgs[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		imports := analysis.ImportAliases(f)
		checkDotImports(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			qual, name := analysis.CalleeName(call)
			if qual == "" {
				return true
			}
			switch imports[qual] {
			case "time":
				if timeFuncs[name] && !pass.Allowed(call.Pos(), "nowallclock") {
					pass.Reportf(call.Pos(),
						"wall clock: %s.%s in deterministic code; inject a busprobe/internal/clock.Clock (or annotate //lint:allow nowallclock <reason>)",
						qual, name)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] && !pass.Allowed(call.Pos(), "nowallclock") {
					pass.Reportf(call.Pos(),
						"global math/rand: %s.%s draws from the shared global source; fork a stats.RNG stream from the campaign seed (or annotate //lint:allow nowallclock <reason>)",
						qual, name)
				}
			}
			return true
		})
	}
	return nil
}

// checkDotImports flags `import . "time"` and friends, which would let
// the forbidden calls appear as bare Now()/Intn() and evade the
// qualifier-based check above.
func checkDotImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		if imp.Name == nil || imp.Name.Name != "." {
			continue
		}
		switch imp.Path.Value {
		case `"time"`, `"math/rand"`, `"math/rand/v2"`:
			if !pass.Allowed(imp.Pos(), "nowallclock") {
				pass.Reportf(imp.Pos(),
					"dot-import of %s hides wall-clock/global-rand calls from the nowallclock check",
					imp.Path.Value)
			}
		}
	}
}
