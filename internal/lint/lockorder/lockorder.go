// Package lockorder enforces the backend's lock discipline: a mutex
// must never be held across a channel send/receive, a select, a hook
// invocation, or the acquisition of a second backend lock. The PR 1
// dedupMu/statsMu split and the PR 2/3 admission gates rely on exactly
// this — a lock held across a channel operation deadlocks under load
// shedding, and a hook fired under a lock re-enters user code with
// backend state frozen.
//
// The check is a conservative syntactic walk of each function body: it
// tracks x.Lock()/x.RLock() statements until the matching
// x.Unlock()/x.RUnlock() (a deferred unlock holds to function end) and
// flags, while any lock is held:
//
//   - channel sends (ch <- v) and receives (<-ch)
//   - select statements
//   - calls through fields or variables named like hooks ("hook",
//     "Hook", "onX" callbacks)
//   - a Lock/RLock on a *different* receiver (nested backend locks)
//
// Function literals are skipped (goroutine bodies run after the
// critical section), and branches are scanned with a copy of the held
// set, so a conditional early-unlock never leaks state between
// branches. Intentional nesting is annotated
// //lint:allow lockorder <reason>.
package lockorder

import (
	"go/ast"
	"go/token"
	"strings"

	"busprobe/internal/lint/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flag mutexes held across channel operations, hook " +
		"invocations, or a second lock acquisition",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			scanStmts(pass, fn.Body.List, map[string]token.Pos{})
		}
	}
	return nil
}

// lockCall decomposes a statement of the form x.Lock()/x.Unlock()
// (and RLock/RUnlock) into the receiver's rendering and the method.
func lockCall(stmt ast.Stmt) (recv, method string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return analysis.ExprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// scanStmts walks one statement list in order, maintaining the set of
// held locks (receiver rendering → Lock position). Nested blocks and
// control-flow bodies are scanned with a copy of the set: a branch
// that unlocks cannot release the lock for the code after the branch,
// which keeps the check conservative without flow analysis.
func scanStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		if recv, method, ok := lockCall(stmt); ok {
			switch method {
			case "Lock", "RLock":
				if len(held) > 0 && !pass.Allowed(stmt.Pos(), "lockorder") {
					for other := range held {
						if other != recv {
							pass.Reportf(stmt.Pos(),
								"%s.%s acquired while %s is still held; release one lock before taking the other (or annotate //lint:allow lockorder <reason>)",
								recv, method, other)
							break
						}
					}
				}
				held[recv] = stmt.Pos()
				continue
			case "Unlock", "RUnlock":
				delete(held, recv)
				continue
			}
		}
		if _, ok := stmt.(*ast.DeferStmt); ok {
			// defer x.Unlock() keeps the lock held to function end —
			// leave it in the set. Other defers run after the critical
			// section; don't scan their bodies as held-lock code.
			continue
		}
		if len(held) > 0 {
			checkHeld(pass, stmt, held)
		}
		scanNested(pass, stmt, held)
	}
}

// scanNested recurses into compound statements with a copy of the
// held-lock set.
func scanNested(pass *analysis.Pass, stmt ast.Stmt, held map[string]token.Pos) {
	recurse := func(body *ast.BlockStmt) {
		if body == nil {
			return
		}
		scanStmts(pass, body.List, copyHeld(held))
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		scanStmts(pass, s.List, copyHeld(held))
	case *ast.IfStmt:
		recurse(s.Body)
		if s.Else != nil {
			scanNested(pass, s.Else, held)
		}
	case *ast.ForStmt:
		recurse(s.Body)
	case *ast.RangeStmt:
		recurse(s.Body)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		scanNested(pass, s.Stmt, held)
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// checkHeld inspects one statement executed under a held lock for the
// forbidden operations. Function literals are not descended into —
// their bodies run later, typically on another goroutine.
func checkHeld(pass *analysis.Pass, stmt ast.Stmt, held map[string]token.Pos) {
	lock := anyLock(held)
	switch stmt.(type) {
	case *ast.SelectStmt:
		if !pass.Allowed(stmt.Pos(), "lockorder") {
			pass.Reportf(stmt.Pos(),
				"select while holding %s; a blocked case freezes every other holder (or annotate //lint:allow lockorder <reason>)", lock)
		}
		return
	case *ast.GoStmt:
		return // the spawned body runs outside the critical section
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.SelectStmt, *ast.BlockStmt:
			// Blocks/selects are visited as statements by scanNested;
			// function literals run later.
			return false
		case *ast.SendStmt:
			if !pass.Allowed(x.Pos(), "lockorder") {
				pass.Reportf(x.Pos(),
					"channel send on %s while holding %s; sends can block indefinitely under a lock (or annotate //lint:allow lockorder <reason>)",
					analysis.ExprString(x.Chan), lock)
			}
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !pass.Allowed(x.Pos(), "lockorder") {
				pass.Reportf(x.Pos(),
					"channel receive from %s while holding %s; receives can block indefinitely under a lock (or annotate //lint:allow lockorder <reason>)",
					analysis.ExprString(x.X), lock)
			}
		case *ast.CallExpr:
			if name := hookCallee(x); name != "" && !pass.Allowed(x.Pos(), "lockorder") {
				pass.Reportf(x.Pos(),
					"hook %s invoked while holding %s; hooks re-enter user code and must run outside critical sections (or annotate //lint:allow lockorder <reason>)",
					name, lock)
			}
		}
		return true
	})
}

// hookCallee reports the rendering of a call through a hook-shaped
// callee: an identifier or field whose name is "hook"/"Hook", ends in
// "Hook", or is an "onX" callback.
func hookCallee(call *ast.CallExpr) string {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return ""
	}
	lower := strings.ToLower(name)
	if lower == "hook" || strings.HasSuffix(lower, "hook") ||
		(strings.HasPrefix(name, "on") && len(name) > 2 && name[2] >= 'A' && name[2] <= 'Z') {
		return analysis.ExprString(call.Fun)
	}
	return ""
}

// anyLock returns one held lock's rendering for diagnostics.
func anyLock(held map[string]token.Pos) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
