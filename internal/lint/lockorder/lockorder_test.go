package lockorder_test

import (
	"testing"

	"busprobe/internal/lint/analysistest"
	"busprobe/internal/lint/lockorder"
)

// TestLockOrderFixture proves the analyzer flags channel operations,
// hook invocations, and nested acquisitions under a held mutex, and
// accepts the released / goroutine-detached / justified variants.
func TestLockOrderFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "lockorder_a")
}
