package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"

	"busprobe/internal/clock"
)

// TraceHeader is the HTTP header carrying a request's trace ID between
// the client and the backend. The server echoes it into the request
// context; the client injects it from the caller's context.
const TraceHeader = "X-Busprobe-Trace"

// DefaultTraceCapacity bounds the tracer's in-memory span ring. A trip
// emits about six spans, so the default retains the last ~170 trips —
// enough to reconstruct any recent request — while keeping the ring's
// cache footprint (~100 KiB) small enough not to crowd the matcher's
// working set on the ingest path.
const DefaultTraceCapacity = 1024

// seqCap bounds the per-trace span-sequence map; past it the map is
// reset so a long-lived tracer cannot grow without bound (span indices
// then restart per trace, which only matters for traces still in
// flight across the reset).
const seqCap = 16384

// Attr is one key/value annotation on a span. Values are strings so
// spans marshal deterministically.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one completed operation of a trace. Span indices count from
// zero within their trace in emission order; a single trip's stages run
// sequentially, so its span sequence is deterministic.
type Span struct {
	Trace string    `json:"trace"`
	Span  int       `json:"span"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// DurationNs returns the span's duration in nanoseconds.
func (s Span) DurationNs() int64 { return s.End.Sub(s.Start).Nanoseconds() }

// Tracer collects completed spans into a bounded in-memory ring and,
// optionally, an append-only JSONL sink. Timestamps come from the
// injected clock, so tests running a clock.Fake get byte-stable spans.
// Safe for concurrent use; the mutex guards only the ring and sequence
// map — never a channel operation or a user callback.
type Tracer struct {
	clk clock.Clock

	mu      sync.Mutex
	seq     map[string]int //lint:guardedby mu
	ring    []Span         //lint:guardedby mu
	next    int            //lint:guardedby mu ring write cursor
	full    bool           //lint:guardedby mu
	sink    io.Writer      //lint:guardedby mu
	emitted int64          //lint:guardedby mu
}

// NewTracer returns a tracer holding up to capacity spans (<= 0 uses
// DefaultTraceCapacity) and timestamping with clk (nil = wall clock).
func NewTracer(clk clock.Clock, capacity int) *Tracer {
	if clk == nil {
		clk = clock.Wall{}
	}
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		clk:  clk,
		seq:  make(map[string]int),
		ring: make([]Span, capacity),
	}
}

// Now reads the tracer's clock; span boundaries should come from here
// so every span of a deployment shares one time base.
func (t *Tracer) Now() time.Time { return t.clk.Now() }

// SetSink directs every emitted span to w as one JSON line, in addition
// to the in-memory ring. Pass nil to detach. The write happens under
// the tracer mutex so lines never interleave.
func (t *Tracer) SetSink(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = w
}

// Emit records one completed span. Nil-safe: a nil tracer drops it.
func (t *Tracer) Emit(trace, name string, start, end time.Time, attrs ...Attr) {
	if t == nil || trace == "" {
		return
	}
	t.mu.Lock()
	if len(t.seq) >= seqCap {
		t.seq = make(map[string]int)
	}
	idx := t.seq[trace]
	t.seq[trace] = idx + 1
	sp := Span{Trace: trace, Span: idx, Name: name, Start: start, End: end, Attrs: attrs}
	t.ring[t.next] = sp
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.emitted++
	sink := t.sink
	var line []byte
	if sink != nil {
		// Encode under the lock so sink lines never interleave; the
		// sink is a local file or buffer, not a network hop.
		line, _ = json.Marshal(sp)
		line = append(line, '\n')
		sink.Write(line) //lint:allow errcheckio a failed trace-sink write must not fail the traced request; the ring still holds the span
	}
	t.mu.Unlock()
}

// Emitted returns the total number of spans emitted (including any that
// have since rotated out of the ring).
func (t *Tracer) Emitted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// snapshotLocked copies the ring oldest-first.
func (t *Tracer) snapshotLocked() []Span {
	if !t.full {
		out := make([]Span, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

// Spans returns the retained spans of one trace, oldest first — the
// reconstruction of that request's path through the pipeline.
func (t *Tracer) Spans(trace string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for _, sp := range t.snapshotLocked() {
		if sp.Trace == trace {
			out = append(out, sp)
		}
	}
	return out
}

// ctxKey keys the trace ID in a context.
type ctxKey struct{}

// WithTrace returns ctx carrying the given trace ID. An empty ID
// returns ctx unchanged.
func WithTrace(ctx context.Context, trace string) context.Context {
	if trace == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, trace)
}

// TraceID extracts the trace ID from ctx ("" if none).
func TraceID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	if v, ok := ctx.Value(ctxKey{}).(string); ok {
		return v
	}
	return ""
}

// TripTrace derives the deterministic trace ID of a trip: uploads that
// arrive without a caller-provided trace are still traceable, and the
// same trip always maps to the same trace across replays and shards.
func TripTrace(tripID string) string { return "trip-" + tripID }

// EnsureTrip returns ctx guaranteed to carry a trace ID, deriving the
// trip's deterministic one when the caller supplied none.
func EnsureTrip(ctx context.Context, tripID string) context.Context {
	if TraceID(ctx) != "" {
		return ctx
	}
	return WithTrace(ctx, TripTrace(tripID))
}
