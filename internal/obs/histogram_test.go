package obs

import (
	"math"
	"testing"
)

func TestHistogramBucketSelection(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	// Exactly on a bound lands in that bound's bucket (le semantics).
	h.Observe(1)
	// Strictly inside a bucket.
	h.Observe(5)
	// On the last finite bound.
	h.Observe(100)
	// Past every bound: overflow bucket.
	h.Observe(1e9)
	// Below the first bound.
	h.Observe(0.5)

	s := h.Snapshot()
	// le=1 gets {1, 0.5}; le=10 gets {5}; le=100 gets {100}; +Inf gets {1e9}.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if got := s.Sum; math.Abs(got-(1+5+100+1e9+0.5)) > 1e-6 {
		t.Errorf("sum = %g", got)
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if len(s.Bounds) != len(LatencyBuckets) {
		t.Fatalf("bounds = %v, want LatencyBuckets", s.Bounds)
	}
	if len(s.Counts) != len(LatencyBuckets)+1 {
		t.Fatalf("counts = %d cells, want %d", len(s.Counts), len(LatencyBuckets)+1)
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if q := h.Snapshot().Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty histogram quantile = %g, want NaN", q)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(3)
	s := h.Snapshot()
	// Every quantile of a single sample interpolates within its bucket
	// (2, 4]; the result must stay inside that bucket.
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		v := s.Quantile(q)
		if v < 2 || v > 4 {
			t.Errorf("Quantile(%g) = %g, want within (2, 4]", q, v)
		}
	}
	if v := s.Quantile(1); v != 4 {
		t.Errorf("Quantile(1) = %g, want upper bound 4", v)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(50)
	h.Observe(60)
	// All mass in +Inf: clamp to the largest finite bound.
	if v := h.Snapshot().Quantile(0.5); v != 2 {
		t.Errorf("overflow quantile = %g, want 2", v)
	}
}

func TestQuantileClampsRange(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	s := h.Snapshot()
	if v := s.Quantile(-3); v != s.Quantile(0) {
		t.Errorf("Quantile(-3) = %g, want Quantile(0) = %g", v, s.Quantile(0))
	}
	if v := s.Quantile(7); v != s.Quantile(1) {
		t.Errorf("Quantile(7) = %g, want Quantile(1) = %g", v, s.Quantile(1))
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	// Ten samples in (10, 20]: the median interpolates to the bucket
	// midpoint exactly, like Prometheus histogram_quantile.
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	if v := h.Snapshot().Quantile(0.5); math.Abs(v-15) > 1e-9 {
		t.Errorf("median = %g, want 15 (linear interpolation)", v)
	}
}

func TestHistogramUnsortedBoundsSorted(t *testing.T) {
	h := NewHistogram([]float64{100, 1, 10})
	s := h.Snapshot()
	for i := 1; i < len(s.Bounds); i++ {
		if s.Bounds[i-1] >= s.Bounds[i] {
			t.Fatalf("bounds not ascending: %v", s.Bounds)
		}
	}
}
