package obs

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// buildSampleRegistry populates a registry with one instrument of every
// kind, labeled and unlabeled, including scrape-time collectors.
func buildSampleRegistry() *Registry {
	r := NewRegistry()
	r.Counter("bp_trips_total", "Trips ingested.").Add(7)
	r.Counter("bp_trips_total", "Trips ingested.", Label{Name: "shard", Value: "1"}).Add(3)
	r.Gauge("bp_inflight", "In-flight batches.").Set(2)
	h := r.Histogram("bp_latency_seconds", "Stage latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.CounterFunc("bp_scraped_total", "Collector-backed counter.", func() float64 { return 42 })
	r.GaugeFunc("bp_temp", "Collector-backed gauge.", func() float64 { return 1.5 },
		Label{Name: "zone", Value: "a"})
	return r
}

// goldenExposition is the exact text the sample registry must render:
// families sorted by name, series sorted by label signature, histogram
// buckets cumulative with the implicit +Inf.
const goldenExposition = `# HELP bp_inflight In-flight batches.
# TYPE bp_inflight gauge
bp_inflight 2
# HELP bp_latency_seconds Stage latency.
# TYPE bp_latency_seconds histogram
bp_latency_seconds_bucket{le="0.1"} 1
bp_latency_seconds_bucket{le="1"} 2
bp_latency_seconds_bucket{le="+Inf"} 3
bp_latency_seconds_sum 5.55
bp_latency_seconds_count 3
# HELP bp_scraped_total Collector-backed counter.
# TYPE bp_scraped_total counter
bp_scraped_total 42
# HELP bp_temp Collector-backed gauge.
# TYPE bp_temp gauge
bp_temp{zone="a"} 1.5
# HELP bp_trips_total Trips ingested.
# TYPE bp_trips_total counter
bp_trips_total 7
bp_trips_total{shard="1"} 3
`

func TestWritePrometheusGolden(t *testing.T) {
	r := buildSampleRegistry()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenExposition {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), goldenExposition)
	}
}

func TestWritePrometheusByteStable(t *testing.T) {
	r := buildSampleRegistry()
	var first bytes.Buffer
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again bytes.Buffer
		if err := r.WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("scrape %d differs from first:\n%s\nvs\n%s", i, again.String(), first.String())
		}
	}
}

// TestExpositionParses walks every line as a Prometheus text-format
// consumer would: comment lines declare known families, sample lines
// belong to the most recent TYPE, values parse as floats, and histogram
// bucket counts are monotonically non-decreasing toward +Inf.
func TestExpositionParses(t *testing.T) {
	var b bytes.Buffer
	if err := buildSampleRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var family, kind string
	var lastBucket int64
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			if parts[1] == "TYPE" {
				family, kind = parts[2], parts[3]
				lastBucket = -1
				switch kind {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("unknown TYPE %q in %q", kind, line)
				}
			}
			continue
		}
		name := line
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		} else if i := strings.IndexByte(name, ' '); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if base != family && name != family {
			t.Fatalf("sample %q outside its family %q", line, family)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if strings.HasSuffix(name, "_bucket") {
			if int64(f) < lastBucket {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			lastBucket = int64(f)
		}
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	l1 := r.Gauge("g", "g", Label{Name: "a", Value: "1"}, Label{Name: "b", Value: "2"})
	// Label order must not matter for identity.
	l2 := r.Gauge("g", "g", Label{Name: "b", Value: "2"}, Label{Name: "a", Value: "1"})
	if l1 != l2 {
		t.Error("label order changed series identity")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "first")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dual", "second")
}

func TestCounterFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("cf_total", "cf", func() float64 { return 1 })
	r.CounterFunc("cf_total", "cf", func() float64 { return 2 })
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cf_total 2\n") {
		t.Errorf("re-registered func not replaced:\n%s", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "e", Label{Name: "p", Value: `a"b\c` + "\n"}).Inc()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{p="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped series %q not found in:\n%s", want, b.String())
	}
}

func TestCounterNeverDecreases(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter accepted a negative delta: %d", c.Value())
	}
}

func TestMetricsHandler(t *testing.T) {
	h := buildSampleRegistry().Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if rec.Body.String() != goldenExposition {
		t.Errorf("handler body differs from WritePrometheus golden")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	}
}
