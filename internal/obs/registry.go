package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing instrument. The hot path is a
// single atomic add; readers never block writers.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0; negative deltas are
// ignored so a counter can never run backwards).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instrument that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric kinds, named by their Prometheus TYPE keyword.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labeled instance of a family. Exactly one of the value
// fields is set; fn-backed series are evaluated at scrape time with no
// registry lock held.
type series struct {
	labels string // rendered {k="v",...} signature, "" for unlabeled
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	kind   string
	series map[string]*series
}

// Registry is the process-wide metric store. Instrument registration is
// idempotent — asking for the same (name, labels) again returns the
// existing instrument — so shards and handlers can register without
// coordinating. Safe for concurrent use; the mutex guards only the
// family/series maps, never a user callback or a channel operation.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family //lint:guardedby mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels builds the deterministic series signature: labels sorted
// by name, values escaped per the Prometheus text format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string per the text format.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	h = strings.ReplaceAll(h, "\n", `\n`)
	return h
}

// lookup finds or creates the (family, series) cell, enforcing that a
// name keeps one kind for the registry's lifetime.
func (r *Registry) lookup(name, help, kind string, labels []Label) *series {
	sig := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, fam.kind, kind))
	}
	s := fam.series[sig]
	if s == nil {
		s = &series{labels: sig}
		fam.series[sig] = s
	}
	return s
}

// Counter returns the counter named name with the given labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ctr == nil && s.fn == nil {
		s.ctr = &Counter{}
	}
	if s.ctr == nil {
		panic(fmt.Sprintf("obs: counter %q already registered as a func", name))
	}
	return s.ctr
}

// Gauge returns the gauge named name with the given labels, creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil && s.fn == nil {
		s.gauge = &Gauge{}
	}
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: gauge %q already registered as a func", name))
	}
	return s.gauge
}

// Histogram returns the histogram named name with the given bucket
// upper bounds and labels, creating it on first use. Bounds must be
// sorted ascending; the +Inf overflow bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// CounterFunc registers a scrape-time collector as a counter series:
// fn is evaluated at exposition with no registry lock held. Use it to
// project existing atomically-maintained counters (backend stats, stage
// metrics) into the registry without double bookkeeping. Re-registering
// the same (name, labels) replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.ctr = nil
	s.fn = fn
}

// GaugeFunc registers a scrape-time collector as a gauge series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gauge = nil
	s.fn = fn
}

// formatFloat renders a float64 the way Prometheus clients do.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every family in the Prometheus text format
// (version 0.0.4), deterministically: families sorted by name, series
// sorted by label signature. Func-backed series are evaluated after the
// registry lock is released, so a collector may itself take locks.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type pendingSeries struct {
		labels string
		ctr    *Counter
		gauge  *Gauge
		hist   *Histogram
		fn     func() float64
	}
	type pendingFamily struct {
		name, help, kind string
		series           []pendingSeries
	}

	// Snapshot structure under the lock, read values after.
	r.mu.Lock()
	fams := make([]pendingFamily, 0, len(r.families))
	for _, fam := range r.families {
		pf := pendingFamily{name: fam.name, help: fam.help, kind: fam.kind}
		for _, s := range fam.series {
			pf.series = append(pf.series, pendingSeries{
				labels: s.labels, ctr: s.ctr, gauge: s.gauge, hist: s.hist, fn: s.fn,
			})
		}
		sort.Slice(pf.series, func(i, j int) bool { return pf.series[i].labels < pf.series[j].labels })
		fams = append(fams, pf)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, fam := range fams {
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.name, escapeHelp(fam.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind); err != nil {
			return err
		}
		for _, s := range fam.series {
			if err := writeSeries(w, fam.name, s.labels, s.ctr, s.gauge, s.hist, s.fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series' sample lines.
func writeSeries(w io.Writer, name, labels string, ctr *Counter, gauge *Gauge, hist *Histogram, fn func() float64) error {
	switch {
	case fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(fn()))
		return err
	case ctr != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, ctr.Value())
		return err
	case gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, gauge.Value())
		return err
	case hist != nil:
		return writeHistogram(w, name, labels, hist.Snapshot())
	}
	return nil
}

// writeHistogram renders the cumulative bucket lines plus _sum and
// _count, merging the le label into the series' label set.
func writeHistogram(w io.Writer, name, labels string, snap HistogramSnapshot) error {
	var cum int64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, mergeLE(labels, formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += snap.Counts[len(snap.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(labels, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, snap.Count)
	return err
}

// mergeLE appends the le label to a rendered label signature.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// Handler serves the registry in the Prometheus text format (the
// GET /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The status line is on the wire once writing starts; a failed
		// scrape write only means the scraper went away.
		_ = r.WritePrometheus(w) //lint:allow errcheckio headers already sent; a mid-scrape disconnect has no one to tell
	})
}
