package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// LatencyBuckets are the default upper bounds (seconds) for stage and
// request latency histograms: log-spaced from 1 µs to 10 s, matching
// the pipeline's sub-millisecond stage times while still resolving slow
// HTTP requests. The +Inf overflow bucket is implicit.
var LatencyBuckets = []float64{
	0.000001, 0.00001, 0.0001, 0.001, 0.01, 0.1, 1, 10,
}

// Histogram is a fixed-bucket histogram. Observations are two atomic
// adds (bucket count, sum), so the hot path never takes a lock and
// concurrent observers never serialize.
type Histogram struct {
	bounds []float64 // ascending upper bounds, excluding +Inf
	counts []atomic.Int64
	// sum accumulates float64 bits under CAS; total count lives in the
	// dedicated counter so Snapshot never has to sum the buckets twice.
	sumBits atomic.Uint64
	count   atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds; the +Inf overflow bucket is added implicitly. A nil or empty
// bounds slice uses LatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Int64, len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound contains v; past the last bound,
	// the overflow bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts has one entry per bound plus the trailing +Inf overflow
// bucket; entries are per-bucket (non-cumulative).
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's counters. Concurrent observers may
// land between the reads, so the snapshot is only guaranteed coherent
// once writers are quiescent — the same contract as stage.Metrics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts by linear interpolation inside the target bucket, the same
// estimate Prometheus's histogram_quantile gives:
//
//   - An empty histogram returns NaN.
//   - q <= 0 returns the lower edge of the first occupied bucket
//     (0 for the first bucket, its lower bound otherwise).
//   - If the target lands in the +Inf overflow bucket, the largest
//     finite bound is returned (there is no upper edge to interpolate
//     toward).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			// Overflow bucket: clamp to the largest finite bound.
			if i >= len(s.Bounds) {
				if len(s.Bounds) == 0 {
					return math.NaN()
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			within := rank - float64(cum)
			if within <= 0 {
				return lower
			}
			return lower + (upper-lower)*(within/float64(c))
		}
		cum += c
	}
	// Unreachable when Count matches the bucket sum; be safe anyway.
	if len(s.Bounds) == 0 {
		return math.NaN()
	}
	return s.Bounds[len(s.Bounds)-1]
}
