package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"busprobe/internal/clock"
)

var traceEpoch = time.Date(2015, 6, 29, 0, 0, 0, 0, time.UTC)

func TestTracerSpanSequence(t *testing.T) {
	tr := NewTracer(clock.NewFake(traceEpoch, time.Millisecond), 16)
	a, b := tr.Now(), tr.Now()
	tr.Emit("trip-1", "match", a, b)
	tr.Emit("trip-1", "cluster", a, b)
	tr.Emit("trip-2", "match", a, b)
	tr.Emit("trip-1", "map", a, b)

	spans := tr.Spans("trip-1")
	if len(spans) != 3 {
		t.Fatalf("trip-1 spans = %d, want 3", len(spans))
	}
	for i, sp := range spans {
		if sp.Span != i {
			t.Errorf("span %d has index %d; indices must count emission order per trace", i, sp.Span)
		}
	}
	if got := []string{spans[0].Name, spans[1].Name, spans[2].Name}; got[0] != "match" || got[1] != "cluster" || got[2] != "map" {
		t.Errorf("span order = %v", got)
	}
	if sp := tr.Spans("trip-2"); len(sp) != 1 || sp[0].Span != 0 {
		t.Errorf("trip-2 spans = %+v", sp)
	}
}

func TestTracerRingRotation(t *testing.T) {
	tr := NewTracer(clock.NewFake(traceEpoch, time.Millisecond), 4)
	a := tr.Now()
	for i := 0; i < 6; i++ {
		tr.Emit("t", "op", a, a.Add(time.Duration(i)))
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want capacity 4", len(spans))
	}
	// Oldest-first: the two earliest spans rotated out.
	if spans[0].Span != 2 || spans[3].Span != 5 {
		t.Errorf("ring order = [%d..%d], want [2..5]", spans[0].Span, spans[3].Span)
	}
	if tr.Emitted() != 6 {
		t.Errorf("emitted = %d, want 6", tr.Emitted())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit("t", "op", time.Time{}, time.Time{})
	if tr.Snapshot() != nil || tr.Spans("t") != nil || tr.Emitted() != 0 {
		t.Error("nil tracer must be inert")
	}
}

func TestTracerSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(clock.NewFake(traceEpoch, time.Millisecond), 16)
	tr.SetSink(&buf)
	a := tr.Now()
	tr.Emit("trip-9", "estimate", a, a.Add(time.Millisecond), Attr{Key: "shard", Value: "2"})

	var sp Span
	if err := json.Unmarshal(buf.Bytes(), &sp); err != nil {
		t.Fatalf("sink line is not JSON: %v (%q)", err, buf.String())
	}
	if sp.Trace != "trip-9" || sp.Name != "estimate" || len(sp.Attrs) != 1 || sp.Attrs[0].Value != "2" {
		t.Errorf("sink span = %+v", sp)
	}
	if sp.DurationNs() != time.Millisecond.Nanoseconds() {
		t.Errorf("duration = %d ns", sp.DurationNs())
	}
}

func TestTracerByteStableUnderFakeClock(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		tr := NewTracer(clock.NewFake(traceEpoch, time.Millisecond), 16)
		tr.SetSink(&buf)
		for i := 0; i < 3; i++ {
			start := tr.Now()
			tr.Emit("trip-x", "stage", start, tr.Now())
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("identical emission sequences under a Fake clock rendered different bytes")
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Error("fresh context carries a trace")
	}
	ctx2 := WithTrace(ctx, "abc")
	if TraceID(ctx2) != "abc" {
		t.Errorf("TraceID = %q", TraceID(ctx2))
	}
	if WithTrace(ctx, "") != ctx {
		t.Error("empty trace must leave ctx untouched")
	}

	// EnsureTrip derives the deterministic trip trace only when absent.
	if got := TraceID(EnsureTrip(ctx, "T1")); got != TripTrace("T1") {
		t.Errorf("EnsureTrip derived %q", got)
	}
	if got := TraceID(EnsureTrip(ctx2, "T1")); got != "abc" {
		t.Errorf("EnsureTrip overrode caller trace with %q", got)
	}
	if TraceID(nil) != "" {
		t.Error("nil ctx must report no trace")
	}
}

func TestCoreNilDisabled(t *testing.T) {
	var c *Core
	if c.Enabled() {
		t.Error("nil core reports enabled")
	}
	if !NewCore(nil).Enabled() {
		t.Error("fresh core reports disabled")
	}
}
