package obs

import (
	"context"
	"testing"
	"time"

	"busprobe/internal/clock"
)

// These micro-benchmarks price the observability primitives a single
// trip pays on the ingest path: roughly six Emits, one EnsureTrip, five
// histogram observations, and a dozen clock reads. Their sum is the
// per-trip overhead recorded in BENCH_obs.json; the macro ingest A/B is
// far noisier than that sum on shared hardware.

var microEpoch = time.Date(2015, 6, 29, 0, 0, 0, 0, time.UTC)

func BenchmarkEmit(b *testing.B) {
	tr := NewTracer(clock.Wall{}, DefaultTraceCapacity)
	attrs := []Attr{{Key: "shard", Value: "0"}}
	for i := 0; i < b.N; i++ {
		tr.Emit("trip-batch-17", "stage.match", microEpoch, microEpoch, attrs...)
	}
}

func BenchmarkEnsureTrip(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		_ = EnsureTrip(ctx, "batch-17")
	}
}

func BenchmarkHistObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets)
	for i := 0; i < b.N; i++ {
		h.Observe(0.0003)
	}
}

func BenchmarkWallNow(b *testing.B) {
	c := clock.Wall{}
	for i := 0; i < b.N; i++ {
		_ = c.Now()
	}
}
