// Package obs is the unified observability core of the serving stack:
// a lock-disciplined metrics registry (counters, gauges, fixed-bucket
// latency histograms) with Prometheus text-format exposition, and a
// deterministic trip-scoped tracer whose span IDs and timestamps are
// pure functions of the ingest stream under an injected clock.Clock.
//
// The package is stdlib-only and rides on context.Context: a trace ID
// enters the system once (the X-Busprobe-Trace header, or derived from
// the trip ID at ingest), travels in the request context through every
// pipeline stage, and each stage run emits a span through the stage
// hook — so a single trip's match→cluster→map→estimate path is
// reconstructable from the trace log across shards.
//
// Lock discipline matches the repo-wide busprobe-vet rules: instrument
// hot paths are pure atomics, registry and tracer mutexes guard only
// map/slice state, and no lock is ever held across a channel operation
// or a user callback. All timestamps come from an injected clock.Clock
// so the nowallclock analyzer stays clean and tests pin exact output.
package obs

import (
	"busprobe/internal/clock"
)

// Core bundles the observability surfaces a deployment shares: one
// metrics registry, one tracer, one clock. A nil *Core disables
// observability at zero cost — every consumer treats nil as "off".
type Core struct {
	Registry *Registry
	Tracer   *Tracer
	Clock    clock.Clock
}

// NewCore assembles an enabled observability core on the given clock.
// A nil clk uses the wall clock (production); tests pass a clock.Fake
// so metrics and spans are byte-reproducible.
func NewCore(clk clock.Clock) *Core {
	if clk == nil {
		clk = clock.Wall{}
	}
	return &Core{
		Registry: NewRegistry(),
		Tracer:   NewTracer(clk, DefaultTraceCapacity),
		Clock:    clk,
	}
}

// Enabled reports whether the core is live (nil-safe).
func (c *Core) Enabled() bool { return c != nil }
