package lab

import (
	"strings"
	"testing"
	"time"

	"busprobe/internal/clock"
)

// gateBaseline is the anchor the gate tests run against: clean suite
// at p95 2 ms, p99 5 ms, 1000 trips/s, with the default 4x tolerances.
func gateBaseline(t *testing.T) *Baseline {
	t.Helper()
	b, err := DecodeBaseline([]byte(`{
  "schema": "busprobe-lab-baseline/1",
  "latencyTolerance": 4,
  "throughputTolerance": 4,
  "suites": [
    {"suite": "clean", "p95S": 0.002, "p99S": 0.005, "tripsPerS": 1000}
  ]
}`))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func gateResult(p95, p99, tput float64) *Result {
	return &Result{
		Schema: SchemaVersion, Suite: "clean", Pass: true,
		Latency:    Latency{Count: 100, P95S: p95, P99S: p99},
		Throughput: Throughput{TripsPerS: tput},
	}
}

// TestGateWithinEnvelope: a run inside every bound produces no
// violations, even when somewhat slower than the anchor.
func TestGateWithinEnvelope(t *testing.T) {
	b := gateBaseline(t)
	if v := b.Gate([]*Result{gateResult(0.004, 0.01, 600)}, 1); len(v) != 0 {
		t.Fatalf("violations for an in-envelope run: %v", v)
	}
}

// TestGateCatchesSlowRun: a deliberately slowed run — the ISSUE's
// acceptance probe — trips the gate on every breached bound.
func TestGateCatchesSlowRun(t *testing.T) {
	b := gateBaseline(t)
	v := b.Gate([]*Result{gateResult(0.05, 0.2, 40)}, 1)
	if len(v) != 3 {
		t.Fatalf("want 3 violations (p95, p99, throughput), got %v", v)
	}
	for _, s := range v {
		if !strings.HasPrefix(s, "clean: ") {
			t.Errorf("violation not attributed to suite: %q", s)
		}
	}
}

// TestGateToleranceScale: the -tolerance knob loosens the envelope
// multiplicatively.
func TestGateToleranceScale(t *testing.T) {
	b := gateBaseline(t)
	slow := gateResult(0.05, 0.2, 40)
	if v := b.Gate([]*Result{slow}, 100); len(v) != 0 {
		t.Fatalf("x100 tolerance still violated: %v", v)
	}
	if v := b.Gate([]*Result{gateResult(0.004, 0.01, 600)}, 0.1); len(v) == 0 {
		t.Fatal("x0.1 tolerance passed a run 2x over the anchor")
	}
}

// TestGateSkipsUnanchoredSuites: results for suites the baseline does
// not anchor pass unexamined.
func TestGateSkipsUnanchoredSuites(t *testing.T) {
	b := gateBaseline(t)
	r := gateResult(10, 10, 0.1)
	r.Suite = "surge"
	if v := b.Gate([]*Result{r}, 1); len(v) != 0 {
		t.Fatalf("unanchored suite gated: %v", v)
	}
}

// TestDecodeBaselineRejections covers schema and field hygiene.
func TestDecodeBaselineRejections(t *testing.T) {
	if _, err := DecodeBaseline([]byte(`{"schema": "nope", "latencyTolerance": 1, "throughputTolerance": 1, "suites": []}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := DecodeBaseline([]byte(`{"schema": "busprobe-lab-baseline/1", "latencyTolerance": 1, "throughputTolerance": 1, "suites": [], "bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeBaseline([]byte(`{"schema": "busprobe-lab-baseline/1", "latencyTolerance": -1, "throughputTolerance": 1, "suites": []}`)); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := DecodeBaseline([]byte(`{"schema": "busprobe-lab-baseline/1", "latencyTolerance": 1, "throughputTolerance": 1, "suites": [{"suite": ""}]}`)); err == nil {
		t.Error("unnamed suite accepted")
	}
}

// TestLatencyRecorderFakeClock drives the recorder with the
// deterministic clock: a frozen Fake plus explicit Advances yields
// exact per-request durations, so the digest is reproducible down to
// the histogram's bucket interpolation — no wall-clock read anywhere
// (the nowallclock analyzer enforces the same discipline statically).
func TestLatencyRecorderFakeClock(t *testing.T) {
	fake := clock.NewFake(time.Unix(1700000000, 0), 0)
	rec := NewLatencyRecorder(fake)
	observe := func(d time.Duration, n int) {
		for i := 0; i < n; i++ {
			start := rec.Start()
			fake.Advance(d)
			rec.Stop(start)
		}
	}
	observe(time.Millisecond, 90)    // bucket (0.0005, 0.001]
	observe(40*time.Millisecond, 9)  // bucket (0.02, 0.05]
	observe(800*time.Millisecond, 1) // bucket (0.5, 1]

	s := rec.Summary()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantMean := (90*0.001 + 9*0.040 + 0.800) / 100
	if diff := s.MeanS - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mean = %v, want %v", s.MeanS, wantMean)
	}
	if s.P50S <= 0.0005 || s.P50S > 0.001 {
		t.Errorf("p50 = %v, want in (0.0005, 0.001]", s.P50S)
	}
	if s.P95S <= 0.02 || s.P95S > 0.05 {
		t.Errorf("p95 = %v, want in (0.02, 0.05]", s.P95S)
	}
	// Rank 99 of 100 is exactly the cumulative count through the 40 ms
	// bucket, so the interpolation lands on that bucket's upper bound;
	// only quantiles past 0.99 reach into the 800 ms outlier's bucket.
	if s.P99S <= 0.02 || s.P99S > 0.05 {
		t.Errorf("p99 = %v, want in (0.02, 0.05]", s.P99S)
	}

	// The digest is a pure function of the observations: a second
	// recorder fed the same durations produces identical numbers.
	fake2 := clock.NewFake(time.Unix(1800000000, 0), 0)
	rec2 := NewLatencyRecorder(fake2)
	for _, d := range []time.Duration{time.Millisecond, 40 * time.Millisecond, 800 * time.Millisecond} {
		n := map[time.Duration]int{time.Millisecond: 90, 40 * time.Millisecond: 9, 800 * time.Millisecond: 1}[d]
		for i := 0; i < n; i++ {
			start := rec2.Start()
			fake2.Advance(d)
			rec2.Stop(start)
		}
	}
	if got := rec2.Summary(); got != s {
		t.Errorf("same observations, different digest: %+v vs %+v", got, s)
	}
}
