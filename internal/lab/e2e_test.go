package lab

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// serverBinPath is the busprobe-server binary the e2e tests boot,
// compiled once in TestMain.
var serverBinPath string

func TestMain(m *testing.M) {
	os.Exit(func() int {
		dir, err := os.MkdirTemp("", "lab-e2e-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		serverBinPath = filepath.Join(dir, "busprobe-server")
		cmd := exec.Command("go", "build", "-o", serverBinPath, "busprobe/cmd/busprobe-server")
		if out, err := cmd.CombinedOutput(); err != nil {
			// Leave the binary unset: the e2e tests skip, the unit
			// tests still run (e.g. under restricted build sandboxes).
			println("lab e2e: go build busprobe-server failed, skipping e2e:", err.Error(), string(out))
			serverBinPath = ""
		}
		return m.Run()
	}())
}

// e2eOptions shrinks the load so each e2e scenario finishes in about a
// second of wall clock on top of the process boots.
func e2eOptions(t *testing.T) Options {
	t.Helper()
	if testing.Short() {
		t.Skip("e2e harness run skipped in -short")
	}
	if serverBinPath == "" {
		t.Skip("busprobe-server binary unavailable")
	}
	return Options{
		ServerBin: serverBinPath,
		Seed:      1,
		Scale:     "small",
		Riders:    10,
		Days:      1,
		OutDir:    t.TempDir(),
	}
}

// runOne executes a single scenario end to end against the real binary
// and returns its (already schema-validated) result.
func runOne(t *testing.T, opts Options, name string) *Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	results, err := Run(ctx, opts, []string{name})
	if err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	if len(results) != 1 {
		t.Fatalf("Run(%s): %d results", name, len(results))
	}
	r := results[0]
	// The run also wrote <suite>.json; decoding it proves the artifact
	// on disk round-trips through the strict decoder.
	data, err := os.ReadFile(filepath.Join(opts.OutDir, name+".json"))
	if err != nil {
		t.Fatalf("result artifact: %v", err)
	}
	onDisk, err := DecodeResult(data)
	if err != nil {
		t.Fatalf("result artifact invalid: %v", err)
	}
	if onDisk.Suite != name {
		t.Fatalf("artifact suite %q, want %q", onDisk.Suite, name)
	}
	return r
}

// findCheck locates a named check in a result.
func findCheck(t *testing.T, r *Result, name string) Check {
	t.Helper()
	for _, c := range r.Checks {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("%s: no check named %q (have %v)", r.Suite, name, r.Checks)
	return Check{}
}

// TestE2ECleanScenario boots the real binary and requires the full
// clean contract, byte-equivalence included.
func TestE2ECleanScenario(t *testing.T) {
	r := runOne(t, e2eOptions(t), "clean")
	if !r.Pass {
		t.Fatalf("clean suite failed: %v", r.Reasons)
	}
	if r.Equivalence == nil || !r.Equivalence.ByteIdentical {
		t.Fatalf("equivalence = %+v", r.Equivalence)
	}
	if r.Latency.Count == 0 || r.Throughput.TripsPerS <= 0 {
		t.Fatalf("latency/throughput not measured: %+v %+v", r.Latency, r.Throughput)
	}
}

// TestE2EShardProcsDegradedReads is the regression test for the PR-6
// multi-process contract: with one shard process SIGKILLed mid-drive,
// the coordinator must report it unhealthy on /v1/shards, keep
// answering merged reads with 200, and serve a final map byte-identical
// to the surviving shard's own reference.
func TestE2EShardProcsDegradedReads(t *testing.T) {
	r := runOne(t, e2eOptions(t), "shard-procs")
	if !r.Pass {
		t.Fatalf("shard-procs suite failed: %v", r.Reasons)
	}
	for _, name := range []string{
		"dead shard reported unhealthy",
		"merged reads answer 200 degraded",
		"degraded map equals surviving shard's reference",
	} {
		if c := findCheck(t, r, name); !c.Pass {
			t.Errorf("check %q failed: %s", name, c.Detail)
		}
	}
	if r.Equivalence == nil || !r.Equivalence.ByteIdentical {
		t.Fatalf("degraded equivalence = %+v", r.Equivalence)
	}
}

// TestE2EReadStormScenario is the regression test for the versioned-
// snapshot read path on a real process: concurrent pollers and watchers
// during chaos ingest must see monotone versions, and a watcher's
// delta-reconstructed map must be byte-identical to a fresh GET.
func TestE2EReadStormScenario(t *testing.T) {
	r := runOne(t, e2eOptions(t), "read-storm")
	if !r.Pass {
		t.Fatalf("read-storm suite failed: %v", r.Reasons)
	}
	for _, name := range []string{
		"readers saw no contract violation",
		"readers actually ran under ingest",
		"watcher 0 delta reconstruction byte-identical",
		"watcher 1 delta reconstruction byte-identical",
		"quiescent conditional GET answers 304",
	} {
		if c := findCheck(t, r, name); !c.Pass {
			t.Errorf("check %q failed: %s", name, c.Detail)
		}
	}
	if r.Reads == nil || r.Reads.PolledReads == 0 || r.Reads.WatchPolls == 0 {
		t.Fatalf("read load not recorded: %+v", r.Reads)
	}
	if r.Equivalence == nil || !r.Equivalence.ByteIdentical {
		t.Fatalf("reconstruction equivalence = %+v", r.Equivalence)
	}
}

// TestE2ERestartRecovery is the regression test for the durable-store
// contract on real processes: a store-backed monolith and a 2-shard
// topology each SIGKILLed mid-corpus must reboot from their stores and
// serve a map byte-identical to an uninterrupted replay, and a legacy
// journal must migrate into the store on first -store-dir boot.
func TestE2ERestartRecovery(t *testing.T) {
	r := runOne(t, e2eOptions(t), "restart-recovery")
	if !r.Pass {
		t.Fatalf("restart-recovery suite failed: %v", r.Reasons)
	}
	for _, name := range []string{
		"monolith: snapshot restart replays only the tail",
		"monolith: map byte-identical after kill+reboot",
		"monolith: post-drain reboot restarts from the snapshot alone",
		"shard-procs: merged map byte-identical after kill+reboot",
		"legacy: journal migrated into the store",
		"legacy: map byte-identical after migration",
	} {
		if c := findCheck(t, r, name); !c.Pass {
			t.Errorf("check %q failed: %s", name, c.Detail)
		}
	}
	if r.Equivalence == nil || !r.Equivalence.ByteIdentical {
		t.Fatalf("equivalence = %+v", r.Equivalence)
	}
}

// TestRunRejectsUnknownScenario keeps the CLI surface honest.
func TestRunRejectsUnknownScenario(t *testing.T) {
	if serverBinPath == "" {
		t.Skip("busprobe-server binary unavailable")
	}
	_, err := Run(context.Background(), Options{ServerBin: serverBinPath}, []string{"no-such-suite"})
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
