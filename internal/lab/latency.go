package lab

import (
	"time"

	"busprobe/internal/clock"
	"busprobe/internal/obs"
)

// LatencyBounds are the upper bounds (seconds) of the scenario latency
// histograms: log-ish spacing from 50 µs to 30 s, finer than
// obs.LatencyBuckets so loopback-HTTP percentiles interpolate inside
// meaningful buckets instead of collapsing into one decade.
var LatencyBounds = []float64{
	0.00005, 0.0001, 0.0002, 0.0005,
	0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
	0.1, 0.2, 0.5, 1, 2, 5, 10, 30,
}

// LatencyRecorder times requests with an injected clock into a
// fixed-bucket obs.Histogram. No wall-clock read escapes the clock
// package — busprobe-vet's nowallclock analyzer holds over the harness
// exactly as over the serving path, so a Fake clock yields exact,
// reproducible percentiles in tests.
type LatencyRecorder struct {
	clk  clock.Clock
	hist *obs.Histogram
}

// NewLatencyRecorder builds a recorder over the scenario buckets. A
// nil clock gets the wall clock (the harness's production mode).
func NewLatencyRecorder(clk clock.Clock) *LatencyRecorder {
	if clk == nil {
		clk = clock.Wall{}
	}
	return &LatencyRecorder{clk: clk, hist: obs.NewHistogram(LatencyBounds)}
}

// Start stamps the beginning of one timed request.
func (r *LatencyRecorder) Start() time.Time { return r.clk.Now() }

// Stop records the elapsed time since start as one observation.
func (r *LatencyRecorder) Stop(start time.Time) {
	r.hist.Observe(clock.Since(r.clk, start).Seconds())
}

// Summary digests the recorded observations into the standard result
// fields.
func (r *LatencyRecorder) Summary() Latency {
	s := r.hist.Snapshot()
	out := Latency{Count: s.Count}
	if s.Count == 0 {
		return out
	}
	out.P50S = s.Quantile(0.50)
	out.P95S = s.Quantile(0.95)
	out.P99S = s.Quantile(0.99)
	out.MeanS = s.Sum / float64(s.Count)
	return out
}
