package lab

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"busprobe/internal/clock"
	"busprobe/internal/probe"
	"busprobe/internal/server"
	"busprobe/internal/sim"
)

// Options configures a harness run. Zero values pick the defaults the
// CI smoke uses.
type Options struct {
	// ServerBin is the busprobe-server binary the scenarios boot.
	ServerBin string
	// OutDir, when set, receives one <suite>.json per scenario run.
	OutDir string
	// Seed is the master world seed (default 1). The harness and every
	// booted process derive the same city and fingerprint DB from it.
	Seed uint64
	// Scale is the world preset: "small" (default) or "paper".
	Scale string
	// SurveyRuns is the fingerprint survey passes per stop (default 4;
	// must match the booted server's -survey-runs).
	SurveyRuns int
	// Riders / Days override the scenario's default campaign shape
	// (0 = default: 22 riders, 2 days).
	Riders int
	Days   int
	// SurgeRiders is the surge scenario's rider population
	// (0 = 100000).
	SurgeRiders int
	// MemoryBoundBytes is the surge driver's heap-growth ceiling
	// (0 = 256 MiB).
	MemoryBoundBytes uint64
	// Clock times the run; nil uses the wall clock.
	Clock clock.Clock
	// Log receives progress lines; nil discards them.
	Log io.Writer
	// BootTimeout bounds one server process's boot (0 = 120s).
	BootTimeout time.Duration
	// DrainTimeout bounds a graceful shutdown wait (0 = 30s).
	DrainTimeout time.Duration
}

// withDefaults fills the zero values in.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale == "" {
		o.Scale = "small"
	}
	if o.SurveyRuns <= 0 {
		o.SurveyRuns = 4
	}
	if o.Riders <= 0 {
		o.Riders = 22
	}
	if o.Days <= 0 {
		o.Days = 2
	}
	if o.SurgeRiders <= 0 {
		o.SurgeRiders = 100000
	}
	if o.MemoryBoundBytes == 0 {
		o.MemoryBoundBytes = 256 << 20
	}
	if o.Clock == nil {
		o.Clock = clock.Wall{}
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	if o.BootTimeout <= 0 {
		o.BootTimeout = 120 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	return o
}

// Scenario is one named conformance suite.
type Scenario struct {
	// Name is the CLI-facing identifier.
	Name string
	// Description restates what the suite proves.
	Description string
	run         func(ctx context.Context, e *env, r *Result) error
}

// Scenarios lists the registered suites in run order.
func Scenarios() []Scenario {
	return []Scenario{
		scenarioClean,
		scenarioChaos,
		scenarioSharded,
		scenarioShardProcs,
		scenarioDrain,
		scenarioRestart,
		scenarioReadStorm,
		scenarioSurge,
	}
}

// Lookup resolves a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// env is the shared run state scenarios draw on: options, the
// in-process deployment mirror, and a memoized clean corpus.
type env struct {
	opts Options
	dep  *Deployment

	corpus      []probe.Trip
	corpusShape [2]int // riders, days the memoized corpus was built for
}

// newEnv builds the deployment mirror for the configured scale.
func newEnv(opts Options) (*env, error) {
	worldCfg, err := sim.PresetWorldConfig(opts.Scale)
	if err != nil {
		return nil, err
	}
	worldCfg.Seed = opts.Seed
	dep, err := NewDeployment(worldCfg, opts.SurveyRuns)
	if err != nil {
		return nil, err
	}
	return &env{opts: opts, dep: dep}, nil
}

// logf emits one progress line.
func (e *env) logf(format string, args ...any) {
	fmt.Fprintf(e.opts.Log, "lab: "+format+"\n", args...) //lint:allow errcheckio a lost progress line must not fail the scenario; the result document carries the verdict
}

// campaign shapes the scenario's load: a flat trips-per-day campaign
// over the configured riders and days, seeded off the master seed the
// way busprobe-sim seeds its campaigns.
func (e *env) campaign(riders, days int) sim.CampaignConfig {
	cfg := sim.DefaultCampaignConfig()
	cfg.Days = days
	cfg.Participants = riders
	cfg.SparseTripsPerDay = 3
	cfg.IntensiveTripsPerDay = 3
	cfg.IntensiveFromDay = 0
	cfg.Seed = e.opts.Seed ^ 0xca
	return cfg
}

// cleanCorpus memoizes the fault-free recorded corpus for the run's
// load shape; every scenario replaying "the same trips" shares it.
func (e *env) cleanCorpus(ctx context.Context) ([]probe.Trip, error) {
	shape := [2]int{e.opts.Riders, e.opts.Days}
	if e.corpus != nil && e.corpusShape == shape {
		return e.corpus, nil
	}
	trips, err := CollectTrips(ctx, e.dep, e.campaign(shape[0], shape[1]))
	if err != nil {
		return nil, err
	}
	e.corpus, e.corpusShape = trips, shape
	return trips, nil
}

// serverProc is one booted busprobe-server with its public base URL.
type serverProc struct {
	*Proc
	URL    string
	Client *server.Client
}

// bootArgs are the flags every booted process shares so it derives the
// same world as the harness.
func (e *env) bootArgs(addr string) []string {
	return []string{
		"-addr", addr,
		"-seed", strconv.FormatUint(e.opts.Seed, 10),
		"-world", e.opts.Scale,
		"-survey-runs", strconv.Itoa(e.opts.SurveyRuns),
	}
}

// bootServer starts one busprobe-server with the shared world flags
// plus extra, and waits for it to answer its liveness probe.
func (e *env) bootServer(ctx context.Context, name string, extra ...string) (*serverProc, error) {
	port, err := FreePort()
	if err != nil {
		return nil, err
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	url := "http://" + addr
	args := append(e.bootArgs(addr), extra...)
	p, err := StartProc(name, e.opts.ServerBin, args...)
	if err != nil {
		return nil, err
	}
	bootCtx, cancel := context.WithTimeout(ctx, e.opts.BootTimeout)
	defer cancel()
	if err := p.AwaitHealthy(bootCtx, url); err != nil {
		_ = p.Kill()
		return nil, err
	}
	cli, err := server.NewClient(url, nil)
	if err != nil {
		_ = p.Kill()
		return nil, err
	}
	e.logf("%s healthy at %s", name, url)
	return &serverProc{Proc: p, URL: url, Client: cli}, nil
}

// shutdownCtx is the cleanup-path context for deferred Shutdowns.
func (e *env) shutdownCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), e.opts.DrainTimeout) //lint:allow ctxpropagate cleanup must drain even after the scenario ctx is cancelled; bounded by DrainTimeout
}

// checkDrain SIGTERMs a process and records the graceful-drain checks
// on the result: exit code 0 within the drain timeout, and the drain
// completion line in the log.
func checkDrain(e *env, r *Result, p *serverProc) {
	ctx, cancel := e.shutdownCtx()
	defer cancel()
	code, err := p.Stop(ctx)
	if err != nil {
		r.check("drain: "+p.Name+" exits before timeout", false, err.Error())
		return
	}
	r.check("drain: "+p.Name+" exits 0 on SIGTERM", code == 0, fmt.Sprintf("exit code %d", code))
}

// fetchRaw GETs a path from a booted server, returning status and raw
// body bytes — the exact wire encoding, for byte-equivalence checks.
func fetchRaw(ctx context.Context, baseURL, path string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+path, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := (&http.Client{Timeout: 30 * time.Second}).Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

// trafficBytes renders an in-process API's /v1/traffic exactly as the
// wire serves it, by running the real handler against a recorded
// request — the reference side of every byte-equivalence check.
func trafficBytes(api server.API) ([]byte, error) {
	h := server.NewHandler(api, server.HandlerConfig{})
	req := httptest.NewRequest(http.MethodGet, "/v1/traffic", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("lab: reference /v1/traffic status %d", rec.Code)
	}
	return rec.Body.Bytes(), nil
}

// compareTraffic runs the byte-equivalence check of a system under
// test's raw /v1/traffic bytes against the reference bytes.
func compareTraffic(reference string, refBytes, sutBytes []byte, segments int) *Equivalence {
	eq := &Equivalence{Reference: reference, Segments: segments}
	if string(refBytes) == string(sutBytes) {
		eq.ByteIdentical = true
		return eq
	}
	n := len(refBytes)
	if len(sutBytes) < n {
		n = len(sutBytes)
	}
	at := n
	for i := 0; i < n; i++ {
		if refBytes[i] != sutBytes[i] {
			at = i
			break
		}
	}
	eq.Detail = fmt.Sprintf("diverges at byte %d (reference %d bytes, run %d bytes)", at, len(refBytes), len(sutBytes))
	return eq
}

// Run executes the named scenarios in order against one shared
// deployment, returning one standard Result per suite. When outDir is
// non-empty each result is also written to <outDir>/<suite>.json. A
// scenario whose infrastructure fails (boot error, corpus error)
// yields a failing Result rather than aborting the run, so CI always
// gets the full artifact set; the error return is reserved for
// unusable configurations (unknown scenario, missing binary).
func Run(ctx context.Context, opts Options, names []string) ([]*Result, error) {
	opts = opts.withDefaults()
	if opts.ServerBin == "" {
		return nil, fmt.Errorf("lab: no server binary configured")
	}
	if _, err := os.Stat(opts.ServerBin); err != nil {
		return nil, fmt.Errorf("lab: server binary: %w", err)
	}
	var scens []Scenario
	for _, name := range names {
		s, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("lab: unknown scenario %q", name)
		}
		scens = append(scens, s)
	}
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return nil, fmt.Errorf("lab: out dir: %w", err)
		}
	}
	e, err := newEnv(opts)
	if err != nil {
		return nil, err
	}
	var results []*Result
	for _, s := range scens {
		e.logf("=== %s: %s", s.Name, s.Description)
		r := &Result{
			Schema:      SchemaVersion,
			Suite:       s.Name,
			Description: s.Description,
			Seed:        opts.Seed,
			Scale:       opts.Scale,
			Pass:        true,
			Reasons:     []string{},
			Checks:      []Check{},
		}
		start := opts.Clock.Now()
		if err := s.run(ctx, e, r); err != nil {
			r.check("scenario completes", false, err.Error())
		}
		r.DurationS = clock.Since(opts.Clock, start).Seconds()
		e.logf("=== %s: pass=%t (%.1fs)", s.Name, r.Pass, r.DurationS)
		results = append(results, r)
		if opts.OutDir != "" {
			data, err := r.Encode()
			if err != nil {
				return results, err
			}
			path := filepath.Join(opts.OutDir, s.Name+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return results, fmt.Errorf("lab: write %s: %w", path, err)
			}
		}
	}
	return results, nil
}
