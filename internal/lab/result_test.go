package lab

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// exemplarResult is a fully-populated result — every section present —
// so the golden file pins the complete wire surface of the schema.
func exemplarResult() *Result {
	r := &Result{
		Schema:      SchemaVersion,
		Suite:       "clean",
		Description: "fault-free singles vs monolith",
		Topology:    "monolith",
		Seed:        1,
		Scale:       "small",
		Pass:        true,
		Reasons:     []string{},
		Checks: []Check{
			{Name: "every offered trip delivered", Pass: true, Detail: "offered 116 delivered 116 duplicate 0 failed 0"},
			{Name: "traffic map byte-identical to reference", Pass: true},
		},
		Load: Load{
			Riders: 22, Days: 2,
			TripsOffered: 116, TripsDelivered: 116,
		},
		Latency: Latency{
			Count: 116, P50S: 0.00061, P95S: 0.0014, P99S: 0.0031, MeanS: 0.00072,
		},
		Throughput: Throughput{
			TripsPerS: 1350.5, RequestsPerS: 1350.5, WallS: 0.0859,
		},
		Equivalence: &Equivalence{
			Reference: "in-process serial replay", Segments: 214, ByteIdentical: true,
		},
		Memory: &Memory{
			BoundBytes: 268435456, MaxHeapDeltaBytes: 9437184, Samples: 20, Bounded: true,
		},
		Reads: &ReadStorm{
			Pollers: 4, Watchers: 2, PolledReads: 1800, NotModified: 240,
			WatchPolls: 90, ReadsPerS: 24000.5,
		},
		DurationS: 0.31,
	}
	return r
}

// TestResultGoldenFile pins the encoded schema byte for byte: struct
// field order is the wire order, so any reordering, renaming, or type
// change shows up as a golden diff instead of silently shifting the
// format consumers parse.
func TestResultGoldenFile(t *testing.T) {
	golden := filepath.Join("testdata", "result_golden.json")
	got, err := exemplarResult().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("encoded result drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestResultRoundTrip proves decode∘encode is the identity on bytes:
// the schema holds no maps and field order is fixed, so a re-encoded
// document is byte-identical.
func TestResultRoundTrip(t *testing.T) {
	first, err := exemplarResult().Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeResult(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := decoded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("round trip not byte-stable\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestEncodeDeterministic re-encodes the same value repeatedly and
// demands identical bytes every time.
func TestEncodeDeterministic(t *testing.T) {
	r := exemplarResult()
	first, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := r.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("encode %d differs from first", i)
		}
	}
}

// TestDecodeResultRejectsUnknownFields makes schema drift loud: a
// document with a field this build does not know is an error, not a
// silent drop.
func TestDecodeResultRejectsUnknownFields(t *testing.T) {
	data, err := exemplarResult().Encode()
	if err != nil {
		t.Fatal(err)
	}
	poisoned := strings.Replace(string(data), `"suite"`, `"surprise": 1, "suite"`, 1)
	if _, err := DecodeResult([]byte(poisoned)); err == nil {
		t.Fatal("decoder accepted a document with an unknown field")
	}
}

// TestResultValidate covers the verdict-consistency rules.
func TestResultValidate(t *testing.T) {
	r := exemplarResult()
	if err := r.Validate(); err != nil {
		t.Fatalf("exemplar invalid: %v", err)
	}
	bad := *r
	bad.Schema = "busprobe-lab/0"
	if err := bad.Validate(); err == nil {
		t.Error("wrong schema accepted")
	}
	bad = *r
	bad.Reasons = []string{"leftover"}
	if err := bad.Validate(); err == nil {
		t.Error("passing result with reasons accepted")
	}
	bad = *r
	bad.Pass = false
	bad.Reasons = []string{}
	if err := bad.Validate(); err == nil {
		t.Error("failing result without reasons accepted")
	}
}

// TestResultCheckFoldsFailures exercises the check helper the
// scenarios build their verdicts with.
func TestResultCheckFoldsFailures(t *testing.T) {
	r := &Result{Schema: SchemaVersion, Suite: "t", Pass: true, Reasons: []string{}, Checks: []Check{}}
	r.check("a", true, "fine")
	if !r.Pass || len(r.Reasons) != 0 {
		t.Fatal("passing check flipped the verdict")
	}
	r.check("b", false, "broke")
	if r.Pass {
		t.Fatal("failing check did not flip the verdict")
	}
	if len(r.Reasons) != 1 || r.Reasons[0] != "b: broke" {
		t.Fatalf("reasons = %v", r.Reasons)
	}
	if len(r.Checks) != 2 {
		t.Fatalf("checks = %v", r.Checks)
	}
}
